// Package tnb is a Go implementation of TnB (Rathi & Zhang, CoNEXT 2022):
// a LoRa gateway receiver that decodes collided packets. Its two core
// algorithms are Thrive, which assigns demodulation peaks to packets by a
// matching cost built from the symbol boundary, the CFO and the peak-height
// history, and BEC (Block Error Correction), which jointly decodes the
// (8,4) Hamming code over whole code blocks and corrects well beyond the
// default decoder's 1-bit bound.
//
// The package re-exports the pieces a downstream user needs: LoRa frame
// encoding and waveform synthesis, the synthetic trace builder, the TnB
// receiver and its ablations, the comparison baselines, and the experiment
// harness that regenerates the paper's figures.
//
// Quick start:
//
//	params := tnb.Params(8, 4)              // SF 8, CR 4
//	rx := tnb.NewReceiver(tnb.ReceiverConfig{Params: params, UseBEC: true})
//	packets := rx.Decode(trace)             // trace: *tnb.Trace
//
// See examples/ for runnable end-to-end programs.
package tnb

import (
	"math/rand"

	"tnb/internal/baseline"
	"tnb/internal/bec"
	"tnb/internal/core"
	"tnb/internal/lora"
	"tnb/internal/sim"
	"tnb/internal/thrive"
	"tnb/internal/trace"
)

// Re-exported core types. The aliases keep one import path for users while
// the implementation stays split across internal packages.
type (
	// LoRaParams bundles SF, CR, bandwidth and over-sampling factor.
	LoRaParams = lora.Params
	// Trace is a (possibly multi-antenna) baseband capture.
	Trace = trace.Trace
	// TxRecord is the ground truth of one transmitted packet.
	TxRecord = trace.TxRecord
	// TraceBuilder composes synthetic multi-node traces.
	TraceBuilder = trace.Builder
	// Receiver is the TnB receiver.
	Receiver = core.Receiver
	// ReceiverConfig selects the receiver variant.
	ReceiverConfig = core.Config
	// Decoded is one decoded packet.
	Decoded = core.Decoded
	// Block is a LoRa code block (rows = codewords).
	Block = lora.Block
	// BECResult is the outcome of BEC block decoding.
	BECResult = bec.Result
	// Experiment configures one evaluation run.
	Experiment = sim.Config
	// ExperimentResult scores one scheme on one run.
	ExperimentResult = sim.Result
	// Scheme identifies a decoder under test.
	Scheme = sim.Scheme
	// Deployment is a testbed node population.
	Deployment = sim.Deployment
)

// Assignment policies (paper §5 and §8.2/§8.4).
const (
	PolicyThrive     = thrive.PolicyThrive
	PolicySibling    = thrive.PolicySibling
	PolicyAlignTrack = thrive.PolicyAlignTrack
)

// Schemes for the experiment harness.
const (
	SchemeTnB           = sim.SchemeTnB
	SchemeThrive        = sim.SchemeThrive
	SchemeSibling       = sim.SchemeSibling
	SchemeAlignTrack    = sim.SchemeAlignTrack
	SchemeAlignTrackBEC = sim.SchemeAlignTrackBEC
	SchemeCIC           = sim.SchemeCIC
	SchemeCICBEC        = sim.SchemeCICBEC
	SchemeLoRaPHY       = sim.SchemeLoRaPHY
	SchemeTnB2Ant       = sim.SchemeTnB2Ant
)

// Params returns the paper's default radio parameters (125 kHz bandwidth,
// OSF 8) for the given spreading factor and coding rate.
func Params(sf, cr int) LoRaParams {
	return lora.MustParams(sf, cr, 125e3, 8)
}

// NewReceiver builds a TnB receiver.
func NewReceiver(cfg ReceiverConfig) *Receiver { return core.NewReceiver(cfg) }

// NewTraceBuilder creates a builder for a synthetic trace of the given
// duration (seconds) and antenna count.
func NewTraceBuilder(p LoRaParams, durationSec float64, antennas int, rng *rand.Rand) *TraceBuilder {
	return trace.NewBuilder(p, durationSec, antennas, rng)
}

// Encode maps a payload to its data-symbol chirp shifts.
func Encode(p LoRaParams, payload []byte) ([]int, error) {
	shifts, _, err := lora.Encode(p, payload)
	return shifts, err
}

// DecodeBlockBEC runs BEC on one received code block.
func DecodeBlockBEC(r *Block, cr int) BECResult { return bec.DecodeBlock(r, cr) }

// RunExperiment generates the trace for cfg and scores the scheme on it.
func RunExperiment(cfg Experiment, s Scheme) (ExperimentResult, error) {
	return sim.Run(cfg, s)
}

// NewCICReceiver builds the CIC baseline (optionally with BEC: CIC+).
func NewCICReceiver(p LoRaParams, useBEC bool) *baseline.CIC {
	return baseline.NewCIC(baseline.Config{Params: p, UseBEC: useBEC})
}

// NewLoRaPHYReceiver builds the standard single-user decoder baseline.
func NewLoRaPHYReceiver(p LoRaParams) *baseline.LoRaPHY {
	return baseline.NewLoRaPHY(baseline.Config{Params: p})
}

// Deployments mirror the paper's three testbeds.
var (
	DeploymentIndoor   = sim.Indoor
	DeploymentOutdoor1 = sim.Outdoor1
	DeploymentOutdoor2 = sim.Outdoor2
)
