package tnb

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§8). Each benchmark regenerates its table/figure at a
// CI-friendly scale (sim.BenchScale: shorter traces and fewer nodes than
// the paper's 30 s × 19-25 nodes; scheme ordering is preserved) and reports
// the headline quantities as custom metrics. Run with:
//
//	go test -bench=. -benchmem
//
// The full-scale series are produced by cmd/tnbsim and cmd/becprob.

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"tnb/internal/bec"
	"tnb/internal/core"
	"tnb/internal/lora"
	"tnb/internal/metrics"
	"tnb/internal/obs"
	"tnb/internal/sim"
	"tnb/internal/trace"
)

// BenchmarkTable1BECCapability measures BEC's block decoding across the
// error-column counts of Table 1 and reports the correction rate of the
// hardest case per CR.
func BenchmarkTable1BECCapability(b *testing.B) {
	cases := []struct {
		name string
		cr   int
		cols int
	}{
		{"CR1_1col", 1, 1},
		{"CR2_1col", 2, 1},
		{"CR3_2col", 3, 2},
		{"CR4_2col", 4, 2},
		{"CR4_3col", 4, 3},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			corrected := 0
			for i := 0; i < b.N; i++ {
				truth := randomBlock(rng, 8, c.cr)
				r := corruptCols(rng, truth, c.cols)
				res := bec.DecodeBlock(r, c.cr)
				for _, cand := range res.Candidates {
					if cand.Equal(truth) {
						corrected++
						break
					}
				}
			}
			b.ReportMetric(float64(corrected)/float64(b.N), "corrected/op")
		})
	}
}

// BenchmarkTable2BECComplexity measures the repair cost per block: the
// number of packet-level CRC tests stays within Table 2's budget.
func BenchmarkTable2BECComplexity(b *testing.B) {
	for _, cr := range []int{1, 2, 3, 4} {
		b.Run(lora.MustParams(8, cr, 125e3, 8).String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			maxCands := 0
			for i := 0; i < b.N; i++ {
				truth := randomBlock(rng, 8, cr)
				ncols := 1
				if cr >= 3 {
					ncols = cr - 1
				}
				r := corruptCols(rng, truth, ncols)
				res := bec.DecodeBlock(r, cr)
				if len(res.Candidates) > maxCands {
					maxCands = len(res.Candidates)
				}
			}
			b.ReportMetric(float64(maxCands), "max-candidates")
		})
	}
}

// BenchmarkFig1PeakSensitivity sweeps timing and CFO error and reports the
// peak height degradation (Fig. 1(b), 1(c)).
func BenchmarkFig1PeakSensitivity(b *testing.B) {
	p := Params(8, 4)
	d := lora.NewDemodulator(p)
	sig := make([]complex128, 2*p.SymbolSamples())
	lora.ModulateSymbol(sig[:p.SymbolSamples()], 100, p.N(), p.Bandwidth, p.OSF)
	aligned := peakOf(d.SignalVector(sig, 0, 0, 0))
	b.Run("timing_quarter_symbol", func(b *testing.B) {
		var h float64
		for i := 0; i < b.N; i++ {
			h = peakOf(d.SignalVector(sig, float64(p.SymbolSamples())/4, 0, 0))
		}
		b.ReportMetric(h/aligned, "peak-ratio")
	})
	b.Run("cfo_half_cycle", func(b *testing.B) {
		var h float64
		for i := 0; i < b.N; i++ {
			h = peakOf(d.SignalVector(sig, 0, -0.5, 0))
		}
		b.ReportMetric(h/aligned, "peak-ratio")
	})
}

// BenchmarkFig8SyncSurface runs the 3-phase fractional synchronization
// search on a commodity-like packet (Fig. 8's Q/Q* surfaces drive it).
func BenchmarkFig8SyncSurface(b *testing.B) {
	p := Params(8, 4)
	rng := rand.New(rand.NewSource(3))
	builder := NewTraceBuilder(p, 0.6, 1, rng)
	if err := builder.AddPacket(0, 0, sim.MakePayload(0, 0, 14), 20000.37, 12, 2741, nil); err != nil {
		b.Fatal(err)
	}
	tr, recs := builder.Build()
	rx := NewReceiver(ReceiverConfig{Params: p, UseBEC: true})
	b.ResetTimer()
	var timingErr float64
	for i := 0; i < b.N; i++ {
		decoded := rx.Decode(tr)
		if len(decoded) != 1 {
			b.Fatal("packet lost")
		}
		timingErr = decoded[0].Start - recs[0].StartSample
	}
	b.ReportMetric(timingErr, "timing-err-samples")
}

// BenchmarkFig10SNRCDF regenerates the estimated-SNR CDFs.
func BenchmarkFig10SNRCDF(b *testing.B) {
	scale := sim.BenchScale()
	for i := 0; i < b.N; i++ {
		cdf, err := sim.FigSNRCDF(sim.Indoor, 8, scale, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cdf.Quantile(0.5), "median-snr-db")
		}
	}
}

// BenchmarkFig11MediumUsage regenerates the medium-usage series.
func BenchmarkFig11MediumUsage(b *testing.B) {
	scale := sim.BenchScale()
	for i := 0; i < b.N; i++ {
		usage, err := sim.FigMediumUsage(sim.Indoor, 8, scale, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			maxU := 0
			for _, u := range usage {
				if u > maxU {
					maxU = u
				}
			}
			b.ReportMetric(float64(maxU), "peak-usage")
		}
	}
}

// BenchmarkFig12_14Throughput regenerates one throughput-vs-load panel per
// deployment (Figs. 12, 13, 14) and reports TnB's gain over CIC at the
// highest load.
func BenchmarkFig12_14Throughput(b *testing.B) {
	schemes := []sim.Scheme{sim.SchemeTnB, sim.SchemeCIC, sim.SchemeAlignTrack, sim.SchemeLoRaPHY}
	for _, dep := range sim.Deployments {
		b.Run(dep.Name, func(b *testing.B) {
			scale := sim.BenchScale()
			var gain float64
			for i := 0; i < b.N; i++ {
				series, err := sim.FigThroughput(dep, 8, 4, schemes, scale, 5)
				if err != nil {
					b.Fatal(err)
				}
				tnbT := series[0].Points[len(series[0].Points)-1].Throughput
				cicT := series[1].Points[len(series[1].Points)-1].Throughput
				if cicT > 0 {
					gain = tnbT / cicT
				}
			}
			b.ReportMetric(gain, "tnb/cic-gain")
		})
	}
}

// BenchmarkFig15Ablation regenerates the component ablation and reports
// the TnB/Thrive ratio (the paper's 1.31× BEC contribution).
func BenchmarkFig15Ablation(b *testing.B) {
	schemes := []sim.Scheme{sim.SchemeTnB, sim.SchemeThrive, sim.SchemeSibling, sim.SchemeCIC}
	scale := sim.BenchScale()
	scale.Loads = scale.Loads[len(scale.Loads)-1:]
	var ratio float64
	for i := 0; i < b.N; i++ {
		series, err := sim.FigThroughput(sim.Indoor, 8, 4, schemes, scale, 6)
		if err != nil {
			b.Fatal(err)
		}
		tnbT := series[0].Points[0].Throughput
		thriveT := series[1].Points[0].Throughput
		if thriveT > 0 {
			ratio = tnbT / thriveT
		}
	}
	b.ReportMetric(ratio, "tnb/thrive-gain")
}

// BenchmarkFig16RescuedCodewords regenerates the rescued-codewords CDF.
func BenchmarkFig16RescuedCodewords(b *testing.B) {
	scale := sim.BenchScale()
	var fracRescued float64
	for i := 0; i < b.N; i++ {
		cdf, err := sim.FigRescuedCDF(sim.Indoor, 8, 3, scale, 7)
		if err != nil {
			b.Fatal(err)
		}
		if cdf.Len() > 0 {
			fracRescued = 1 - cdf.At(0)
		}
	}
	b.ReportMetric(fracRescued, "frac-rescued")
}

// BenchmarkFig17PRRvsSNR regenerates the PRR-by-SNR buckets.
func BenchmarkFig17PRRvsSNR(b *testing.B) {
	scale := sim.BenchScale()
	var advantage float64
	for i := 0; i < b.N; i++ {
		buckets, err := sim.FigPRRvsSNR(sim.Indoor, 8, 4, scale, 8)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var n int
		for _, bk := range buckets {
			if bk.Packets > 0 {
				sum += bk.PRRTnB - bk.PRRCIC
				n++
			}
		}
		if n > 0 {
			advantage = sum / float64(n)
		}
	}
	b.ReportMetric(advantage, "mean-prr-advantage")
}

// BenchmarkFig18CollisionLevels regenerates the collision-level
// distribution of decoded packets.
func BenchmarkFig18CollisionLevels(b *testing.B) {
	scale := sim.BenchScale()
	var collidedFrac float64
	for i := 0; i < b.N; i++ {
		dist, err := sim.FigCollisionLevels(sim.Indoor, 8, scale, 9)
		if err != nil {
			b.Fatal(err)
		}
		collidedFrac = 1 - dist[0]
	}
	b.ReportMetric(collidedFrac, "frac-collided")
}

// BenchmarkFig19ETU regenerates the ETU-channel comparison and reports the
// PRRs of TnB2ant and CIC.
func BenchmarkFig19ETU(b *testing.B) {
	schemes := []sim.Scheme{
		sim.SchemeCIC, sim.SchemeCICBEC, sim.SchemeAlignTrack, sim.SchemeAlignTrackBEC,
		sim.SchemeThrive, sim.SchemeTnB, sim.SchemeTnB2Ant,
	}
	scale := sim.BenchScale()
	scale.Loads = []float64{5}
	var tnb2, cic float64
	for i := 0; i < b.N; i++ {
		prr, err := sim.FigETU(8, 3, schemes, scale, 10)
		if err != nil {
			b.Fatal(err)
		}
		tnb2, cic = prr[sim.SchemeTnB2Ant], prr[sim.SchemeCIC]
	}
	b.ReportMetric(tnb2, "tnb2ant-prr")
	b.ReportMetric(cic, "cic-prr")
}

// BenchmarkFig20ErrorProbability runs the Lemma 4 analysis plus a Monte
// Carlo check for SF 7 and reports both probabilities.
func BenchmarkFig20ErrorProbability(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	failures, trials := 0, 0
	for i := 0; i < b.N; i++ {
		truth := randomBlock(rng, 7, 4)
		cols := rng.Perm(8)[:3]
		r := truth.Clone()
		for _, c := range cols {
			for row := 0; row < r.Rows; row++ {
				if rng.Intn(2) == 1 {
					r.Bits[row][c] ^= 1
				}
			}
		}
		res := bec.DecodeBlock(r, 4)
		ok := false
		for _, cand := range res.Candidates {
			if cand.Equal(truth) {
				ok = true
				break
			}
		}
		if !ok {
			failures++
		}
		trials++
	}
	b.ReportMetric(float64(failures)/float64(trials), "simulated-err")
	b.ReportMetric(bec.ErrorProbCR4ThreeColumns(7), "analytic-err")
}

// BenchmarkAblationSecondPass contrasts TnB with and without the second
// decoding pass (design decision of §4, ablation hook from DESIGN.md).
func BenchmarkAblationSecondPass(b *testing.B) {
	cfg := sim.Config{
		Deployment: sim.UniformSNR("ab", 8, 0, 20),
		SF:         8, CR: 4,
		LoadPktPerSec: 12, DurationSec: 1.5, Seed: 12,
	}
	gt, err := sim.Generate(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, second := range []bool{true, false} {
		name := "with-second-pass"
		if !second {
			name = "single-pass"
		}
		b.Run(name, func(b *testing.B) {
			var decoded int
			for i := 0; i < b.N; i++ {
				rx := NewReceiver(ReceiverConfig{Params: Params(8, 4), UseBEC: true,
					DisableSecondPass: !second})
				decoded = len(rx.Decode(gt.Trace))
			}
			b.ReportMetric(float64(decoded), "decoded")
		})
	}
}

// BenchmarkAblationW measures BEC's sensitivity to the W budget for CR 1
// (the §6.9 note: W=25 loses under 5% versus 125).
func BenchmarkAblationW(b *testing.B) {
	p := Params(8, 1)
	rng := rand.New(rand.NewSource(13))
	payload := sim.MakePayload(1, 2, 14)
	shifts, _, err := lora.Encode(p, payload)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{125, 25} {
		b.Run(benchName("W", w), func(b *testing.B) {
			ok := 0
			for i := 0; i < b.N; i++ {
				c := append([]int(nil), shifts...)
				// Corrupt one symbol in each of two blocks.
				c[lora.HeaderSymbols+rng.Intn(5)] = rng.Intn(p.N())
				c[lora.HeaderSymbols+5+rng.Intn(5)] = rng.Intn(p.N())
				pd := bec.NewPacketDecoder(w, rng)
				if res := pd.DecodePacket(p, c); res.OK {
					ok++
				}
			}
			b.ReportMetric(float64(ok)/float64(b.N), "decode-rate")
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

func randomBlock(rng *rand.Rand, rows, cr int) *lora.Block {
	b := lora.NewBlock(rows, 4+cr)
	for r := 0; r < rows; r++ {
		b.SetRowCodeword(r, lora.HammingEncode(uint8(rng.Intn(16)), cr))
	}
	return b
}

func corruptCols(rng *rand.Rand, b *lora.Block, n int) *lora.Block {
	out := b.Clone()
	cols := rng.Perm(b.Cols)[:n]
	for _, c := range cols {
		flipped := false
		for r := 0; r < out.Rows; r++ {
			if rng.Intn(2) == 1 {
				out.Bits[r][c] ^= 1
				flipped = true
			}
		}
		if !flipped {
			out.Bits[rng.Intn(out.Rows)][c] ^= 1
		}
	}
	return out
}

func peakOf(y []float64) float64 {
	var m float64
	for _, v := range y {
		if v > m {
			m = v
		}
	}
	return m
}

// BenchmarkAblationOmega sweeps the history-cost weight ω (paper §5.3.3
// fixes ω = 0.1; DESIGN.md exposes it as an ablation hook) and reports the
// decode count at each setting.
func BenchmarkAblationOmega(b *testing.B) {
	cfg := sim.Config{
		Deployment: sim.UniformSNR("omega", 8, 0, 20),
		SF:         8, CR: 4,
		LoadPktPerSec: 12, DurationSec: 1.5, Seed: 21,
	}
	gt, err := sim.Generate(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, omega := range []float64{0.01, 0.1, 0.5, 2} {
		b.Run("omega="+formatFloat(omega), func(b *testing.B) {
			var decoded int
			for i := 0; i < b.N; i++ {
				rx := NewReceiver(ReceiverConfig{Params: Params(8, 4), UseBEC: true, Omega: omega})
				decoded = len(rx.Decode(gt.Trace))
			}
			b.ReportMetric(float64(decoded), "decoded")
		})
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// BenchmarkExtendedBaselines runs the mLoRa and Choir related-work schemes
// on the shared bench trace, extending the Fig. 12 comparison.
func BenchmarkExtendedBaselines(b *testing.B) {
	cfg := sim.Config{
		Deployment: sim.UniformSNR("ext", 8, 0, 20),
		SF:         8, CR: 4,
		LoadPktPerSec: 12, DurationSec: 1.5, Seed: 22,
	}
	gt, err := sim.Generate(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []sim.Scheme{sim.SchemeTnB, sim.SchemeMLoRa, sim.SchemeChoir, sim.SchemeLoRaPHY} {
		b.Run(s.String(), func(b *testing.B) {
			var prr float64
			for i := 0; i < b.N; i++ {
				prr = sim.Score(cfg, s, gt).PRR
			}
			b.ReportMetric(prr, "prr")
		})
	}
}

// BenchmarkReceiver measures one full pipeline run (detect → signal calc →
// Thrive → BEC, both passes) over a collided trace: bare, with the metrics
// subsystem recording, and with full per-packet decode tracing. Bare and
// instrumented must be indistinguishable (atomics plus four clock reads per
// window); traced pays for per-symbol decision capture and bounds the
// overhead of running a gateway with -trace-out.
func BenchmarkReceiver(b *testing.B) {
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(7))
	tb := trace.NewBuilder(p, 1.5, 1, rng)
	starts := tb.ScheduleUniform(6, 14)
	for i, s := range starts {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := tb.AddPacket(i, 0, payload, s, 10, -3000+float64(i)*1200, nil); err != nil {
			b.Fatal(err)
		}
	}
	tr, _ := tb.Build()

	run := func(b *testing.B, workers int, met *core.PipelineMetrics, tracer *obs.Tracer) {
		rx := core.NewReceiver(core.Config{Params: p, UseBEC: true, Workers: workers,
			Metrics: met, Tracer: tracer})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(rx.Decode(tr)) == 0 {
				b.Fatal("nothing decoded")
			}
		}
		b.StopTimer()
		samples := float64(len(tr.Antennas[0])) * float64(b.N)
		b.ReportMetric(samples/b.Elapsed().Seconds(), "samples/sec")
	}
	b.Run("bare", func(b *testing.B) { run(b, 1, nil, nil) })
	b.Run("instrumented", func(b *testing.B) {
		run(b, 1, core.NewPipelineMetrics(metrics.NewRegistry()), nil)
	})
	b.Run("traced", func(b *testing.B) {
		run(b, 1, nil, obs.New(obs.Options{RingSize: 64}))
	})
	// The worker-pool scaling curve: identical output at every width (the
	// determinism tests assert it), so the deltas here are pure wall-clock.
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			run(b, workers, nil, nil)
		})
	}
}
