package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// sameMedian reports whether two medians agree bit-for-bit, treating the
// signs of zero as equal (the one place the selector's docs allow a
// difference).
func sameMedian(a, b float64) bool {
	if a == 0 && b == 0 {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestSelectorMatchesPercentile pins the selector's contract: for NaN-free
// input of any shape, Selector.Median equals Percentile(x, 50) bit for bit.
func TestSelectorMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sel Selector
	gens := map[string]func(n int) []float64{
		"normal": func(n int) []float64 {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64() * 1e6
			}
			return x
		},
		"magsq": func(n int) []float64 {
			// The hot-path shape: non-negative |FFT|^2 values.
			x := make([]float64, n)
			for i := range x {
				v := rng.NormFloat64()
				x[i] = v * v
			}
			return x
		},
		"duplicates": func(n int) []float64 {
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(rng.Intn(4))
			}
			return x
		},
		"constant": func(n int) []float64 {
			x := make([]float64, n)
			for i := range x {
				x[i] = 3.25
			}
			return x
		},
		"sorted": func(n int) []float64 {
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(i) - float64(n)/3
			}
			return x
		},
		"reversed": func(n int) []float64 {
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(n - i)
			}
			return x
		},
		"signed_zeros": func(n int) []float64 {
			x := make([]float64, n)
			for i := range x {
				switch rng.Intn(3) {
				case 0:
					x[i] = 0.0
				case 1:
					x[i] = math.Copysign(0, -1)
				default:
					x[i] = rng.NormFloat64()
				}
			}
			return x
		},
		"extremes": func(n int) []float64 {
			x := make([]float64, n)
			for i := range x {
				switch rng.Intn(5) {
				case 0:
					x[i] = math.Inf(1)
				case 1:
					x[i] = math.Inf(-1)
				case 2:
					x[i] = 5e-324 // smallest subnormal
				default:
					x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(600)-300))
				}
			}
			return x
		},
	}
	sizes := []int{1, 2, 3, 7, 31, 32, 33, 100, 256, 1023, 4096}
	for name, gen := range gens {
		for _, n := range sizes {
			for trial := 0; trial < 5; trial++ {
				x := gen(n)
				want := Percentile(x, 50)
				got := sel.Median(x)
				if !sameMedian(got, want) {
					t.Fatalf("%s n=%d trial=%d: Selector.Median=%v (bits %x), Percentile=%v (bits %x)",
						name, n, trial, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
		}
	}
}

// TestMedianScratchDistributeMatchesPercentile pins MedianScratch's 2n fast
// path (the distribute selection) against Percentile(x, 50) bit for bit on
// the same input shapes as the Selector, and checks that the n-sized
// fallback path agrees with it.
func TestMedianScratchDistributeMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gens := []func(n int) []float64{
		func(n int) []float64 { // normal
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64() * 1e6
			}
			return x
		},
		func(n int) []float64 { // magsq, the scan's shape
			x := make([]float64, n)
			for i := range x {
				v := rng.NormFloat64()
				x[i] = v * v
			}
			return x
		},
		func(n int) []float64 { // duplicates
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(rng.Intn(4))
			}
			return x
		},
		func(n int) []float64 { // constant
			x := make([]float64, n)
			for i := range x {
				x[i] = 3.25
			}
			return x
		},
		func(n int) []float64 { // extremes
			x := make([]float64, n)
			for i := range x {
				switch rng.Intn(5) {
				case 0:
					x[i] = math.Inf(1)
				case 1:
					x[i] = math.Inf(-1)
				case 2:
					x[i] = 5e-324
				default:
					x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(600)-300))
				}
			}
			return x
		},
	}
	for gi, gen := range gens {
		for _, n := range []int{1, 2, 3, 15, 16, 17, 33, 256, 1023} {
			for trial := 0; trial < 5; trial++ {
				x := gen(n)
				want := Percentile(x, 50)
				wide := make([]float64, 2*n)
				if got := MedianScratch(x, wide); !sameMedian(got, want) {
					t.Fatalf("gen=%d n=%d trial=%d: distribute MedianScratch=%v (bits %x), Percentile=%v (bits %x)",
						gi, n, trial, got, math.Float64bits(got), want, math.Float64bits(want))
				}
				narrow := make([]float64, n)
				if got := MedianScratch(x, narrow); !sameMedian(got, want) {
					t.Fatalf("gen=%d n=%d trial=%d: fallback MedianScratch=%v, Percentile=%v",
						gi, n, trial, got, want)
				}
			}
		}
	}
}

// TestSelectPairTerminatesOnNaN pins the distribute selection's escape hatch:
// all-NaN and mixed-NaN inputs terminate (result unspecified, as for every
// median in this package).
func TestSelectPairTerminatesOnNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{17, 64, 256} {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.NaN()
		}
		MedianScratch(x, make([]float64, 2*n))
		for i := range x {
			if rng.Intn(2) == 0 {
				x[i] = rng.NormFloat64()
			}
		}
		MedianScratch(x, make([]float64, 2*n))
	}
}

// TestSelectorMedianAbsResiduals pins the residual form against the
// allocating reference.
func TestSelectorMedianAbsResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var sel Selector
	for _, n := range []int{1, 2, 9, 64, 257} {
		x := make([]float64, n)
		fit := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			fit[i] = rng.NormFloat64()
		}
		want := MedianAbsResiduals(x, fit)
		got := sel.MedianAbsResiduals(x, fit)
		if !sameMedian(got, want) {
			t.Fatalf("n=%d: Selector %v vs reference %v", n, got, want)
		}
	}
	if got := sel.MedianAbsResiduals(nil, nil); got != 0 {
		t.Fatalf("empty input: got %v, want 0", got)
	}
}

// TestSelectorZeroSteadyStateAllocs pins the pool contract: after the first
// call sized the key buffer, Median and MedianAbsResiduals allocate nothing.
func TestSelectorZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var sel Selector
	x := make([]float64, 256)
	fit := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
		fit[i] = rng.NormFloat64()
	}
	sel.Median(x) // size the buffer
	if n := testing.AllocsPerRun(100, func() { sel.Median(x) }); n != 0 {
		t.Fatalf("Selector.Median allocates %v/op in steady state", n)
	}
	if n := testing.AllocsPerRun(100, func() { sel.MedianAbsResiduals(x, fit) }); n != 0 {
		t.Fatalf("Selector.MedianAbsResiduals allocates %v/op in steady state", n)
	}
}

// BenchmarkMedianSelector contrasts the selector with the allocating
// sort-based Median on the signal-vector lengths the decode loop sees.
func BenchmarkMedianSelector(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{256, 1024} {
		x := make([]float64, n)
		for i := range x {
			v := rng.NormFloat64()
			x[i] = v * v
		}
		b.Run(fmt.Sprintf("selector/n=%d", n), func(b *testing.B) {
			var sel Selector
			sel.Median(x)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sel.Median(x)
			}
		})
		b.Run(fmt.Sprintf("sorted/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Median(x)
			}
		})
	}
}

// TestMedianArgMinMatchesPercentile pins the hinted selection: under every
// hint — useful, useless, infinite, or NaN — MedianArgMin returns the same
// bits as Percentile(x, 50), its input is untouched, and argMin is the first
// index of the minimum. The pivot sequence may differ wildly between hints;
// the order statistics must not.
func TestMedianArgMinMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	gens := []func(n int) []float64{
		func(n int) []float64 { // magsq, the scan's shape
			x := make([]float64, n)
			for i := range x {
				v := rng.NormFloat64()
				x[i] = v * v
			}
			return x
		},
		func(n int) []float64 { // duplicates, including ties at the minimum
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(rng.Intn(4))
			}
			return x
		},
		func(n int) []float64 { // constant
			x := make([]float64, n)
			for i := range x {
				x[i] = 3.25
			}
			return x
		},
	}
	for gi, gen := range gens {
		for _, n := range []int{1, 2, 15, 16, 17, 33, 256, 1023} {
			for trial := 0; trial < 5; trial++ {
				x := gen(n)
				want := Percentile(x, 50)
				wantArg := 0
				for i, v := range x {
					if v < x[wantArg] {
						wantArg = i
					}
				}
				orig := append([]float64(nil), x...)
				hints := []float64{
					want,                 // perfect
					want * 1.02,          // the neighboring-window case
					0,                    // at or below the minimum
					math.Inf(1),          // everything below the pivot
					math.Inf(-1),         // nothing below the pivot
					math.NaN(),           // no hint: MedianScratch fallback
					x[rng.Intn(len(x))],  // an arbitrary element
					-x[rng.Intn(len(x))], // likely below the minimum
				}
				for hi, hint := range hints {
					got, arg := MedianArgMin(x, make([]float64, 2*n), hint)
					if !sameMedian(got, want) {
						t.Fatalf("gen=%d n=%d trial=%d hint[%d]=%v: MedianArgMin=%v (bits %x), Percentile=%v (bits %x)",
							gi, n, trial, hi, hint, got, math.Float64bits(got), want, math.Float64bits(want))
					}
					if arg != wantArg {
						t.Fatalf("gen=%d n=%d trial=%d hint[%d]=%v: argMin=%d, want first minimum at %d",
							gi, n, trial, hi, hint, arg, wantArg)
					}
					for i := range x {
						if x[i] != orig[i] {
							t.Fatalf("gen=%d n=%d trial=%d hint[%d]: input modified at %d", gi, n, trial, hi, i)
						}
					}
				}
			}
		}
	}
}

// TestMedianArgMinSeededChain replays the detection scan's usage: each
// median seeds the next call's hint over a drifting noise floor, and every
// result must still match Percentile exactly.
func TestMedianArgMinSeededChain(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	scratch := make([]float64, 512)
	hint := 0.0
	for win := 0; win < 200; win++ {
		scale := 1 + 5*math.Sin(float64(win)/13)*math.Sin(float64(win)/13)
		x := make([]float64, 256)
		for i := range x {
			v := rng.NormFloat64() * scale
			x[i] = v * v
		}
		want := Percentile(x, 50)
		got, _ := MedianArgMin(x, scratch, hint)
		if !sameMedian(got, want) {
			t.Fatalf("window %d (hint %v): MedianArgMin=%v, Percentile=%v", win, hint, got, want)
		}
		hint = got
	}
}
