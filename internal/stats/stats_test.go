package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-slice mean/median should be 0")
	}
	x := []float64{3, 1, 2}
	if !almostEq(Mean(x), 2, 1e-12) {
		t.Errorf("Mean = %g", Mean(x))
	}
	if !almostEq(Median(x), 2, 1e-12) {
		t.Errorf("Median = %g", Median(x))
	}
	y := []float64{4, 1, 3, 2}
	if !almostEq(Median(y), 2.5, 1e-12) {
		t.Errorf("even Median = %g", Median(y))
	}
	// Median must not modify its input.
	if x[0] != 3 || x[1] != 1 {
		t.Error("Median modified its input")
	}
}

func TestPercentileBounds(t *testing.T) {
	x := []float64{10, 20, 30, 40}
	if Percentile(x, 0) != 10 || Percentile(x, 100) != 40 {
		t.Error("percentile endpoints wrong")
	}
	if !almostEq(Percentile(x, 50), 25, 1e-12) {
		t.Errorf("P50 = %g", Percentile(x, 50))
	}
	if Percentile(x, -5) != 10 || Percentile(x, 105) != 40 {
		t.Error("out-of-range percentiles should clamp")
	}
}

func TestMedianIsOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		m1 := Median(x)
		shuffled := append([]float64(nil), x...)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return almostEq(m1, Median(shuffled), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMedianAbsDeviation(t *testing.T) {
	x := []float64{1, 2, 3, 100}
	// |x - 2| = {1, 0, 1, 98}; median = 1.
	if got := MedianAbsDeviation(x, 2); !almostEq(got, 1, 1e-12) {
		t.Errorf("MAD = %g", got)
	}
	if MedianAbsDeviation(nil, 0) != 0 {
		t.Error("MAD of empty slice should be 0")
	}
}

func TestMedianAbsResiduals(t *testing.T) {
	x := []float64{1, 2, 3}
	fit := []float64{1.5, 2, 2}
	// residuals {0.5, 0, 1} → median 0.5
	if got := MedianAbsResiduals(x, fit); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("residual MAD = %g", got)
	}
	if MedianAbsResiduals(x, nil) != 0 {
		t.Error("empty fit should give 0")
	}
}

func TestStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(x); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
}

func TestMovingAverageConstantSignal(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5}
	for _, w := range []int{1, 2, 3, 9} {
		got := MovingAverage(x, w)
		for i, v := range got {
			if !almostEq(v, 5, 1e-12) {
				t.Errorf("w=%d i=%d: %g", w, i, v)
			}
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	x := []float64{0, 10, 0, 10, 0, 10}
	got := MovingAverage(x, 3)
	// Interior points average their neighborhoods.
	want := []float64{5, 10.0 / 3, 20.0 / 3, 10.0 / 3, 20.0 / 3, 5}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-9) {
			t.Errorf("i=%d: got %g want %g", i, got[i], want[i])
		}
	}
}

func TestMovingAveragePreservesLinearTrendInterior(t *testing.T) {
	x := make([]float64, 20)
	for i := range x {
		x[i] = 2 * float64(i)
	}
	got := MovingAverage(x, 5)
	for i := 2; i < len(x)-2; i++ {
		if !almostEq(got[i], x[i], 1e-9) {
			t.Errorf("linear trend not preserved at %d: %g", i, got[i])
		}
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ v, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.v); !almostEq(got, cse.want, 1e-12) {
			t.Errorf("At(%g) = %g, want %g", cse.v, got, cse.want)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if c.Quantile(0.25) != 10 || c.Quantile(0.5) != 20 || c.Quantile(1) != 40 {
		t.Errorf("quantiles: %g %g %g", c.Quantile(0.25), c.Quantile(0.5), c.Quantile(1))
	}
	if c.Quantile(0) != 10 || c.Quantile(2) != 40 {
		t.Error("quantile clamping failed")
	}
}

func TestCDFQuantileInvertsAt(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		c := NewCDF(x)
		for _, q := range []float64{0.1, 0.5, 0.9} {
			v := c.Quantile(q)
			if c.At(v) < q-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	vals, probs := c.Points(5)
	if len(vals) != 5 || len(probs) != 5 {
		t.Fatalf("got %d points", len(vals))
	}
	if !sort.Float64sAreSorted(vals) || !sort.Float64sAreSorted(probs) {
		t.Error("points should be nondecreasing")
	}
	if probs[len(probs)-1] != 1 {
		t.Errorf("last prob %g, want 1", probs[len(probs)-1])
	}
	if v, p := c.Points(0); v != nil || p != nil {
		t.Error("Points(0) should be nil")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.1, 0.9, 1.5, 2.5, -1, 5}, 0, 3, 3)
	// bins: [0,1): {0.1, 0.9, -1 clamped} = 3, [1,2): {1.5} = 1, [2,3]: {2.5, 5 clamped} = 2
	want := []int{3, 1, 2}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("bin %d = %d, want %d", i, h[i], want[i])
		}
	}
	if Histogram(nil, 1, 0, 3) != nil {
		t.Error("invalid range should return nil")
	}
	if Histogram(nil, 0, 1, 0) != nil {
		t.Error("zero bins should return nil")
	}
}

func TestMedianInPlaceMatchesMedianExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(300)
		x := make([]float64, n)
		for i := range x {
			switch rng.Intn(10) {
			case 0:
				x[i] = 0
			case 1:
				x[i] = x[max(0, i-1)] // duplicates
			default:
				x[i] = rng.ExpFloat64() * 1e3
			}
		}
		want := Median(x)
		cp := append([]float64(nil), x...)
		got := MedianInPlace(cp)
		if got != want { // bit-exact, not approximate: hot paths swap this in
			t.Fatalf("n=%d: MedianInPlace = %v, Median = %v", n, got, want)
		}
		if gotS := MedianScratch(x, make([]float64, 0, n)); gotS != want {
			t.Fatalf("n=%d: MedianScratch = %v, Median = %v", n, gotS, want)
		}
	}
}

func TestMedianScratchDoesNotModifyInput(t *testing.T) {
	x := []float64{5, 1, 4, 2, 3}
	scratch := make([]float64, 5)
	if got := MedianScratch(x, scratch); got != 3 {
		t.Fatalf("MedianScratch = %v", got)
	}
	if x[0] != 5 || x[1] != 1 || x[4] != 3 {
		t.Fatal("MedianScratch modified its input")
	}
	// Undersized scratch still works (allocates internally).
	if got := MedianScratch(x, nil); got != 3 {
		t.Fatalf("MedianScratch(nil scratch) = %v", got)
	}
}

func TestMedianInPlaceSortedAndReversed(t *testing.T) {
	for _, n := range []int{1, 2, 3, 12, 13, 100, 101} {
		asc := make([]float64, n)
		for i := range asc {
			asc[i] = float64(i)
		}
		desc := make([]float64, n)
		for i := range desc {
			desc[i] = float64(n - i)
		}
		wantAsc := Median(asc)
		wantDesc := Median(desc)
		if got := MedianInPlace(append([]float64(nil), asc...)); got != wantAsc {
			t.Fatalf("sorted n=%d: got %v want %v", n, got, wantAsc)
		}
		if got := MedianInPlace(append([]float64(nil), desc...)); got != wantDesc {
			t.Fatalf("reversed n=%d: got %v want %v", n, got, wantDesc)
		}
	}
}

func BenchmarkMedian(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.ExpFloat64()
	}
	b.Run("copy-sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Median(x)
		}
	})
	scratch := make([]float64, 256)
	b.Run("scratch-select", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MedianScratch(x, scratch)
		}
	})
}
