// Package stats provides the small statistical toolkit used across the
// receiver and the evaluation harness: central tendencies, robust deviation
// measures, empirical CDFs, histograms and a moving-average smoother.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Median returns the median of x, or 0 for an empty slice. x is not
// modified.
func Median(x []float64) float64 {
	return Percentile(x, 50)
}

// MedianInPlace returns the median of x, reordering x (but not resizing or
// copying it). It is the zero-allocation counterpart of Median for hot paths
// that own their buffer: a quickselect finds the order statistics instead of
// a full sort, and the interpolation arithmetic matches Percentile(x, 50)
// bit for bit so callers can swap it in without perturbing results.
func MedianInPlace(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	// Percentile(50): pos = (n-1)/2, i = floor(pos), frac = pos - i.
	i := (n - 1) / 2
	frac := 0.5 * float64((n-1)%2)
	quickselect(x, i)
	if i+1 >= n {
		return x[i]
	}
	// The (i+1)-th order statistic is the minimum of the partition right of
	// i, which quickselect left with only >= elements.
	next := x[i+1]
	for _, v := range x[i+2:] {
		if v < next {
			next = v
		}
	}
	return x[i]*(1-frac) + next*frac
}

// MedianScratch returns the median of x without modifying it, using scratch
// as working space. With cap(scratch) >= 2·len(x) it runs the distribute
// selection (selectPair) — the fast path for hot scans, where the in-place
// quickselect's data-dependent partition branches mispredict on every
// unseen window; with a smaller scratch it falls back to the in-place
// quickselect, and allocates only when scratch is smaller than len(x).
// Both paths return the same bits as Percentile(x, 50).
func MedianScratch(x, scratch []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	if cap(scratch) >= 2*n {
		s := scratch[:2*n]
		copy(s[:n], x)
		return median(s, n)
	}
	if cap(scratch) < n {
		scratch = make([]float64, n)
	}
	s := scratch[:n]
	copy(s, x)
	return MedianInPlace(s)
}

// MedianScratchHint is MedianScratch with a caller-supplied pivot for the
// first selection round. The hint never changes the result — selection
// returns the exact order statistics under any pivot sequence — but a hint
// near the median (a neighboring scan window's, say) shrinks the active
// range to the rank error in one pass, and the hint round reads x directly,
// skipping MedianScratch's protective copy. Callers with no usable hint
// (NaN, or a cold start) get plain MedianScratch behavior.
func MedianScratchHint(x, scratch []float64, hint float64) float64 {
	med, _ := MedianArgMin(x, scratch, hint)
	return med
}

// MedianArgMin returns MedianScratchHint's median together with the index of
// the first occurrence of the minimum of x, folded into the hint round's
// streaming pass so the detection scan walks each window once for both its
// selectivity threshold and its peak-finder rotation. For empty x it returns
// (0, 0).
func MedianArgMin(x, scratch []float64, hint float64) (med float64, argMin int) {
	n := len(x)
	if n > 16 && cap(scratch) >= 2*n && !math.IsNaN(hint) {
		s := scratch[:2*n]
		i := (n - 1) / 2
		frac := 0.5 * float64((n-1)%2)
		kth, next, am := selectPairHint(x, s[:n], s[n:], i, hint)
		if i+1 >= n {
			return kth, am
		}
		return kth*(1-frac) + next*frac, am
	}
	am := 0
	if n > 0 {
		minV := x[0]
		for t, v := range x {
			if v < minV {
				minV, am = v, t
			}
		}
	}
	return MedianScratch(x, scratch), am
}

// selectPair returns the k-th and (k+1)-th order statistics of a, destroying
// a and using b (same length) as the distribute target. Each round streams
// the active range through a two-ended distribute — every element is stored
// unconditionally at both the low and high cursor and a comparison flag
// advances exactly one of them — so the partition has no data-dependent
// branches to mispredict, unlike an in-place quickselect swap walk. The
// buffers ping-pong between rounds. When k is the last index the second
// return value is meaningless (+Inf at worst); callers guard on k+1.
func selectPair(a, b []float64, k int) (kth, next float64) {
	return selectRounds(a, b, 0, len(a), k, math.Inf(1))
}

// selectPairHint is selectPair preceded by one distribute round that reads x
// without modifying it and uses the caller's pivot instead of a sampled one.
// The pivot sequence changes only how fast the active range shrinks, never
// the order statistics returned, so any hint yields the same bits as
// selectPair over a copy of x; a hint near the k-th order statistic (e.g.
// the previous scan window's median) collapses the range to the rank error
// in a single streaming pass. A hint at or below the minimum degenerates to
// a reversed copy of x and the usual sampled rounds take over.
//
// Since the hint round already streams all of x, it also reports the index
// of the first occurrence of the minimum, which the detection scan feeds to
// the peak finder as its rotation point.
func selectPairHint(x, a, b []float64, k int, hint float64) (kth, next float64, argMin int) {
	n := len(x)
	i, j := 0, n-1
	minV := math.Inf(1)
	for t := 0; t < n; t++ {
		v := x[t]
		a[i] = v
		a[j] = v
		c := 0
		if v < hint {
			c = 1
		}
		i += c
		j += c - 1
		if v < minV {
			minV, argMin = v, t
		}
	}
	// a[0:i] holds everything < hint, a[i:n] everything >= it — a partitioned
	// permutation of x in every case, including the degenerate i == 0 (where
	// a is x reversed), so no separate copy is ever needed.
	if k < i {
		rightMin := math.Inf(1)
		for _, v := range a[i:] {
			if v < rightMin {
				rightMin = v
			}
		}
		kth, next = selectRounds(a, b, 0, i, k, rightMin)
		return kth, next, argMin
	}
	kth, next = selectRounds(a, b, i, n, k, math.Inf(1))
	return kth, next, argMin
}

// selectRounds runs the sampled-pivot distribute rounds of selectPair over
// the active range src[lo:hi], with rightMin the minimum of everything
// already discarded to the right of it — the (k+1)-th order statistic when
// k+1 falls past the final range.
func selectRounds(src, dst []float64, lo, hi, k int, rightMin float64) (kth, next float64) {
rounds:
	for hi-lo > 16 {
		mid := lo + (hi-lo)/2
		p0, p1, p2 := src[lo], src[mid], src[hi-1]
		if p1 < p0 {
			p0, p1 = p1, p0
		}
		if p2 < p1 {
			p1 = p2
			if p1 < p0 {
				p1 = p0
			}
		}
		pivot := p1

		i, j := lo, hi-1
		for t := lo; t < hi; t++ {
			v := src[t]
			dst[i] = v
			dst[j] = v
			c := 0
			if v < pivot {
				c = 1
			}
			i += c
			j += c - 1
		}
		// dst[lo:i] holds everything < pivot, dst[i:hi] everything >= it.
		switch {
		case k < i:
			for _, v := range dst[i:hi] {
				if v < rightMin {
					rightMin = v
				}
			}
			hi = i
		case i > lo:
			lo = i
		default:
			// Nothing below the pivot (constant stretches are common in
			// gated signal vectors): split equals from greaters so the
			// range still shrinks.
			i, j = lo, hi-1
			for t := lo; t < hi; t++ {
				v := src[t]
				dst[i] = v
				dst[j] = v
				c := 0
				if v <= pivot {
					c = 1
				}
				i += c
				j += c - 1
			}
			if k < i {
				// dst[lo:i] are all == pivot.
				if k+1 < i {
					return pivot, pivot
				}
				for _, v := range dst[i:hi] {
					if v < rightMin {
						rightMin = v
					}
				}
				return pivot, rightMin
			}
			if i == lo {
				// No comparison holds (NaN data): bail to the sort below,
				// which terminates on any input.
				break rounds
			}
			lo = i
		}
		src, dst = dst, src
	}
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && src[j] < src[j-1]; j-- {
			src[j], src[j-1] = src[j-1], src[j]
		}
	}
	kth = src[k]
	if k+1 < hi {
		next = src[k+1]
	} else {
		next = rightMin
	}
	return kth, next
}

// quickselect partially orders x so that x[k] holds the k-th order
// statistic, everything left of k is <=, and everything right is >=.
// Median-of-three pivoting keeps the walk deterministic and robust on the
// sorted and constant inputs common in signal vectors.
func quickselect(x []float64, k int) {
	lo, hi := 0, len(x)-1
	for lo < hi {
		if hi-lo < 12 {
			// Insertion sort for small ranges.
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && x[j] < x[j-1]; j-- {
					x[j], x[j-1] = x[j-1], x[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		if x[mid] < x[lo] {
			x[mid], x[lo] = x[lo], x[mid]
		}
		if x[hi] < x[lo] {
			x[hi], x[lo] = x[lo], x[hi]
		}
		if x[hi] < x[mid] {
			x[hi], x[mid] = x[mid], x[hi]
		}
		pivot := x[mid]
		i, j := lo, hi
		for i <= j {
			for x[i] < pivot {
				i++
			}
			for x[j] > pivot {
				j--
			}
			if i <= j {
				x[i], x[j] = x[j], x[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// Percentile returns the p-th percentile (0..100) of x using linear
// interpolation between order statistics. x is not modified.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// MedianAbsDeviation returns the median of |x[i] - center|. It is the
// robust deviation estimate used by Thrive's history cost.
func MedianAbsDeviation(x []float64, center float64) float64 {
	if len(x) == 0 {
		return 0
	}
	d := make([]float64, len(x))
	for i, v := range x {
		d[i] = math.Abs(v - center)
	}
	return Median(d)
}

// MedianAbsResiduals returns the median of |x[i] - fit[i]|, the per-sample
// residual deviation against a fitted curve.
func MedianAbsResiduals(x, fit []float64) float64 {
	n := min(len(x), len(fit))
	if n == 0 {
		return 0
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = math.Abs(x[i] - fit[i])
	}
	return Median(d)
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(x)))
}

// MovingAverage returns the centered moving average of x with the given
// window (forced odd, at least 1). Near the edges the window shrinks
// symmetrically, matching MATLAB's smoothdata(..,'movmean') behaviour.
func MovingAverage(x []float64, window int) []float64 {
	return MovingAverageInto(make([]float64, len(x)), x, window)
}

// MovingAverageInto is MovingAverage writing into dst, which is resized
// (reallocated only when its capacity is short of len(x)) and returned, so a
// caller reusing the returned slice pays no steady-state allocations. dst
// must not alias x.
func MovingAverageInto(dst, x []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	out := dst[:len(x)]
	for i := range x {
		lo := max(0, i-half)
		hi := min(len(x)-1, i+half)
		var s float64
		for j := lo; j <= hi; j++ {
			s += x[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the samples. The input is copied.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= v).
func (c *CDF) At(v float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, v)
	// Advance over equal values so At is right-continuous.
	for i < len(c.sorted) && c.sorted[i] == v {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample v with P(X <= v) >= q, clamping q to
// (0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q > 1 {
		q = 1
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Points returns up to n evenly spaced (value, probability) points of the
// CDF, convenient for printing a figure series.
func (c *CDF) Points(n int) (values, probs []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	values = make([]float64, n)
	probs = make([]float64, n)
	for k := 0; k < n; k++ {
		i := k * (len(c.sorted) - 1) / max(1, n-1)
		if n == 1 {
			i = len(c.sorted) - 1
		}
		values[k] = c.sorted[i]
		probs[k] = float64(i+1) / float64(len(c.sorted))
	}
	return values, probs
}

// Len returns the number of samples behind the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// Histogram counts samples into nbins equal-width bins over [lo, hi].
// Samples outside the range are clamped into the edge bins.
func Histogram(samples []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, v := range samples {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
