// Package stats provides the small statistical toolkit used across the
// receiver and the evaluation harness: central tendencies, robust deviation
// measures, empirical CDFs, histograms and a moving-average smoother.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Median returns the median of x, or 0 for an empty slice. x is not
// modified.
func Median(x []float64) float64 {
	return Percentile(x, 50)
}

// Percentile returns the p-th percentile (0..100) of x using linear
// interpolation between order statistics. x is not modified.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// MedianAbsDeviation returns the median of |x[i] - center|. It is the
// robust deviation estimate used by Thrive's history cost.
func MedianAbsDeviation(x []float64, center float64) float64 {
	if len(x) == 0 {
		return 0
	}
	d := make([]float64, len(x))
	for i, v := range x {
		d[i] = math.Abs(v - center)
	}
	return Median(d)
}

// MedianAbsResiduals returns the median of |x[i] - fit[i]|, the per-sample
// residual deviation against a fitted curve.
func MedianAbsResiduals(x, fit []float64) float64 {
	n := min(len(x), len(fit))
	if n == 0 {
		return 0
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = math.Abs(x[i] - fit[i])
	}
	return Median(d)
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(x)))
}

// MovingAverage returns the centered moving average of x with the given
// window (forced odd, at least 1). Near the edges the window shrinks
// symmetrically, matching MATLAB's smoothdata(..,'movmean') behaviour.
func MovingAverage(x []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make([]float64, len(x))
	for i := range x {
		lo := max(0, i-half)
		hi := min(len(x)-1, i+half)
		var s float64
		for j := lo; j <= hi; j++ {
			s += x[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the samples. The input is copied.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= v).
func (c *CDF) At(v float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, v)
	// Advance over equal values so At is right-continuous.
	for i < len(c.sorted) && c.sorted[i] == v {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample v with P(X <= v) >= q, clamping q to
// (0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q > 1 {
		q = 1
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Points returns up to n evenly spaced (value, probability) points of the
// CDF, convenient for printing a figure series.
func (c *CDF) Points(n int) (values, probs []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	values = make([]float64, n)
	probs = make([]float64, n)
	for k := 0; k < n; k++ {
		i := k * (len(c.sorted) - 1) / max(1, n-1)
		if n == 1 {
			i = len(c.sorted) - 1
		}
		values[k] = c.sorted[i]
		probs[k] = float64(i+1) / float64(len(c.sorted))
	}
	return values, probs
}

// Len returns the number of samples behind the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// Histogram counts samples into nbins equal-width bins over [lo, hi].
// Samples outside the range are clamped into the edge bins.
func Histogram(samples []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, v := range samples {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
