package stats

import "math"

// Selector computes exact medians over float64 slices without modifying the
// input and without steady-state allocations. It exists for the hot loops in
// Thrive's checking points and the detection scan, which previously paid an
// allocation (and a full sort) per Median / MedianAbsResiduals call: the
// Selector copies the values into an internal scratch buffer that grows to
// the largest input seen and is reused, then runs the branch-predictable
// distribute selection (selectPair) over it.
//
// The result is bit-identical to Percentile(x, 50) for any NaN-free input
// (for signed zeros the result can differ in the sign of zero only, never in
// value), so callers can swap it in without perturbing results. A Selector
// is not safe for concurrent use.
type Selector struct {
	scratch []float64
}

// grow returns the scratch buffer resized to 2n (working copy plus
// distribute target).
func (s *Selector) grow(n int) []float64 {
	if cap(s.scratch) < 2*n {
		s.scratch = make([]float64, 2*n)
	}
	return s.scratch[:2*n]
}

// median selects the median over buf[:n], with buf[n:2n] as the distribute
// target, mirroring Percentile(50)'s interpolation bit for bit.
func median(buf []float64, n int) float64 {
	i := (n - 1) / 2
	frac := 0.5 * float64((n-1)%2)
	kth, next := selectPair(buf[:n], buf[n:], i)
	if i+1 >= n {
		return kth
	}
	return kth*(1-frac) + next*frac
}

// Median returns the median of x — bit-identical to Percentile(x, 50) for
// NaN-free input (see the type comment for the ±0 caveat) — without
// modifying x and without steady-state allocations.
func (s *Selector) Median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	buf := s.grow(len(x))
	copy(buf, x)
	return median(buf, len(x))
}

// MedianAbsResiduals returns the median of |x[i] - fit[i]| over the common
// prefix of x and fit — the same value as stats.MedianAbsResiduals — with
// no steady-state allocations.
func (s *Selector) MedianAbsResiduals(x, fit []float64) float64 {
	n := min(len(x), len(fit))
	if n == 0 {
		return 0
	}
	buf := s.grow(n)
	for i := 0; i < n; i++ {
		buf[i] = math.Abs(x[i] - fit[i])
	}
	return median(buf, n)
}
