package bec

import (
	"math/bits"

	"tnb/internal/lora"
)

// Result is the outcome of BEC block decoding.
type Result struct {
	// Candidates holds the BEC-fixed blocks. Every row of every candidate
	// is a valid codeword. When NoError is true there is exactly one
	// candidate: the cleaned block, trusted without packet-level checks.
	Candidates []*lora.Block
	// NoError reports that BEC concluded the default decoder suffices
	// (R == Γ, or all differences in a single column for CR ≥ 3).
	NoError bool
	// Failed reports that the error pattern exceeded BEC's capability.
	Failed bool
	// ErrorCols is |Ξ|, the error columns observed before companion
	// expansion (for CR 1, 1 when any row's checksum fails).
	ErrorCols int
	// Companion reports that companion columns were added to the repair
	// set (§6.2).
	Companion bool
}

// diffStats compares R and Γ: phi[i] lists the rows differing in i bits and
// xi is Ξ, the set of columns where single-difference rows differ.
func diffStats(R, gamma *lora.Block) (phi [9][]int, xi ColSet, diffCols ColSet) {
	for r := 0; r < R.Rows; r++ {
		d := (R.RowCodeword(r) ^ gamma.RowCodeword(r)) & colWidth(R.Cols)
		n := bits.OnesCount8(d)
		phi[n] = append(phi[n], r)
		diffCols |= ColSet(d)
		if n == 1 {
			xi |= ColSet(d)
		}
	}
	return phi, xi, diffCols
}

func colWidth(cols int) uint8 { return 0xFF << uint(8-cols) }

// rowDiffCols returns the columns where R and Γ differ in row r.
func rowDiffCols(R, gamma *lora.Block, r int) ColSet {
	return ColSet((R.RowCodeword(r) ^ gamma.RowCodeword(r)) & colWidth(R.Cols))
}

// DecodeBlock runs the BEC decoder for one received block at the given
// coding rate (paper §6.4–§6.7) and returns the candidate BEC-fixed blocks.
func DecodeBlock(R *lora.Block, cr int) Result {
	switch cr {
	case 1:
		return decodeCR1(R)
	case 2:
		return decodeCR2(R)
	case 3:
		return decodeCR3(R)
	case 4:
		return decodeCR4(R)
	default:
		return Result{Failed: true}
	}
}

// decodeCR1 (§6.4): if the checksum passes in every row, assume no error;
// otherwise repair with each of the 5 columns via Δ'.
func decodeCR1(R *lora.Block) Result {
	allPass := true
	for r := 0; r < R.Rows; r++ {
		row := R.RowCodeword(r)
		var parity uint8
		for c := 1; c <= 5; c++ {
			parity ^= row >> uint(8-c) & 1
		}
		if parity != 0 {
			allPass = false
			break
		}
	}
	if allPass {
		return Result{Candidates: []*lora.Block{R.Clone()}, NoError: true}
	}
	res := Result{ErrorCols: 1}
	for k := 1; k <= 5; k++ {
		res.Candidates = append(res.Candidates, RepairChecksum(R, k))
	}
	return res
}

// decodeCR2 (§6.5): correct up to one error column.
func decodeCR2(R *lora.Block) Result {
	gamma := lora.CleanBlock(R, 2)
	_, xi, _ := diffStats(R, gamma)
	res := Result{ErrorCols: xi.Size()}
	switch {
	case xi.Size() == 0:
		return Result{Candidates: []*lora.Block{gamma}, NoError: true}
	case xi.Size() >= 3:
		res.Failed = true
		return res
	case xi.Size() == 1:
		xi |= CompanionOf(xi, 2)
		res.Companion = true
	}
	for _, k := range xi.Columns() {
		if fixed := RepairMask(R, Col(k), 2); fixed != nil {
			res.Candidates = append(res.Candidates, fixed)
		}
	}
	res.Failed = len(res.Candidates) == 0
	return res
}

// decodeCR3 (§6.6): one error column is handled by the default decoder;
// two error columns via companion-expanded Δ1.
func decodeCR3(R *lora.Block) Result {
	gamma := lora.CleanBlock(R, 3)
	_, xi, _ := diffStats(R, gamma)
	res := Result{ErrorCols: xi.Size()}
	switch {
	case xi.Size() == 0:
		return Result{Candidates: []*lora.Block{gamma}, NoError: true}
	case xi.Size() == 1:
		return Result{Candidates: []*lora.Block{gamma}, NoError: true, ErrorCols: 1}
	case xi.Size() >= 4:
		res.Failed = true
		return res
	case xi.Size() == 2:
		xi |= CompanionOf(xi, 3)
		res.Companion = true
	}
	cols := xi.Columns()
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			if fixed := RepairMask(R, Col(cols[i])|Col(cols[j]), 3); fixed != nil {
				res.Candidates = append(res.Candidates, fixed)
			}
		}
	}
	res.Failed = len(res.Candidates) == 0
	return res
}

// decodeCR4 (§6.7): attempt 2-column errors, then 3-column errors.
func decodeCR4(R *lora.Block) Result {
	gamma := lora.CleanBlock(R, 4)
	phi, xi, diffCols := diffStats(R, gamma)

	identical := len(phi[0]) == R.Rows
	if identical || diffCols.Size() <= 1 {
		return Result{Candidates: []*lora.Block{gamma}, NoError: true, ErrorCols: diffCols.Size()}
	}

	if xi.Size() <= 2 {
		if res, ok := decodeCR4TwoColumns(R, gamma, phi, xi); ok {
			res.ErrorCols = xi.Size()
			return res
		}
	}
	if xi.Size() >= 1 && xi.Size() <= 4 {
		if res, ok := decodeCR4ThreeColumns(R, gamma, phi, xi); ok {
			res.ErrorCols = xi.Size()
			return res
		}
	}
	return Result{Failed: true, ErrorCols: xi.Size()}
}

// decodeCR4TwoColumns handles the 2-error-column hypothesis (§6.7.1).
func decodeCR4TwoColumns(R, gamma *lora.Block, phi [9][]int, xi ColSet) (Result, bool) {
	var res Result
	switch xi.Size() {
	case 0:
		// Very rare: every difference row has two bits. All phi2 rows must
		// yield the same companion group of pairs; Δ3 each pair.
		if len(phi[2]) == 0 {
			return Result{}, false
		}
		group := companionGroup(rowDiffCols(R, gamma, phi[2][0]))
		if group == nil {
			return Result{}, false
		}
		for _, r := range phi[2][1:] {
			g2 := companionGroup(rowDiffCols(R, gamma, r))
			if !sameGroup(group, g2) {
				return Result{}, false
			}
		}
		res.Companion = true
		for _, pair := range group {
			cols := pair.Columns()
			if fixed := RepairFlipTwo(R, gamma, phi[2], cols[0], cols[1], 4); fixed != nil {
				res.Candidates = append(res.Candidates, fixed)
			}
		}
	case 1:
		k := xi.Columns()[0]
		if fixed, _ := RepairFlipOne(R, gamma, phi[2], k, 4); fixed != nil {
			res.Candidates = append(res.Candidates, fixed)
		}
	case 2:
		if fixed := RepairMask(R, xi, 4); fixed != nil {
			res.Candidates = append(res.Candidates, fixed)
		}
	}
	return res, len(res.Candidates) > 0
}

// companionGroup returns the 4 pairs of a CR 4 companion group containing
// the given pair, or nil if pi is not a 2-column set.
func companionGroup(pi ColSet) []ColSet {
	if pi.Size() != 2 {
		return nil
	}
	group := []ColSet{pi}
	group = append(group, Companions(pi, 4)...)
	return group
}

func sameGroup(a, b []ColSet) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[ColSet]bool{}
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		if !set[s] {
			return false
		}
	}
	return true
}

// decodeCR4ThreeColumns handles the 3-error-column hypothesis (§6.7.2).
func decodeCR4ThreeColumns(R, gamma *lora.Block, phi [9][]int, xi ColSet) (Result, bool) {
	var res Result
	tryTriples := func(cols []int) {
		for i := 0; i < len(cols); i++ {
			for j := i + 1; j < len(cols); j++ {
				for k := j + 1; k < len(cols); k++ {
					pi := Col(cols[i]) | Col(cols[j]) | Col(cols[k])
					if fixed := RepairMask(R, pi, 4); fixed != nil {
						res.Candidates = append(res.Candidates, fixed)
					}
				}
			}
		}
	}

	switch xi.Size() {
	case 1:
		// Δ2 with the Ξ column reveals 2 or 3 distinct mismatch columns
		// (Lemma 3); together with Ξ and, when needed, the companion, they
		// form 4 columns whose four triples are tested.
		k1 := xi.Columns()[0]
		_, mismatch := RepairFlipOne(R, gamma, phi[2], k1, 4)
		cols := ColSet(0)
		cols |= Col(k1)
		for _, m := range mismatch {
			cols |= Col(m)
		}
		switch len(mismatch) {
		case 2:
			comp := Companions(cols, 4)
			if len(comp) != 1 || comp[0].Size() != 1 {
				return Result{}, false
			}
			cols |= comp[0]
			res.Companion = true
		case 3:
			// The fourth column is already the companion (Lemma 3).
		default:
			return Result{}, false
		}
		tryTriples(cols.Columns())
	case 2:
		pair := xi.Columns()
		var successes []int
		for k := 1; k <= 8; k++ {
			if xi.Has(k) {
				continue
			}
			if fixed := RepairMask(R, xi|Col(k), 4); fixed != nil {
				res.Candidates = append(res.Candidates, fixed)
				successes = append(successes, k)
			}
		}
		if len(successes) == 2 {
			k3, k4 := successes[0], successes[1]
			for _, kx := range pair {
				if fixed := RepairMask(R, Col(k3)|Col(k4)|Col(kx), 4); fixed != nil {
					res.Candidates = append(res.Candidates, fixed)
				}
			}
		}
	case 3:
		comp := Companions(xi, 4)
		if len(comp) == 1 && comp[0].Size() == 1 {
			xi |= comp[0]
			res.Companion = true
		}
		tryTriples(xi.Columns())
	case 4:
		tryTriples(xi.Columns())
	}
	res.Candidates = dedupBlocks(res.Candidates)
	return res, len(res.Candidates) > 0
}

// dedupBlocks removes duplicate candidates (different repairs can converge
// on the same block).
func dedupBlocks(in []*lora.Block) []*lora.Block {
	var out []*lora.Block
	for _, b := range in {
		dup := false
		for _, o := range out {
			if b.Equal(o) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, b)
		}
	}
	return out
}
