package bec

import (
	"math/rand"

	"tnb/internal/lora"
	"tnb/internal/obs"
)

// Packet decoding (paper §6.9): the BEC-fixed blocks of the header and
// payload blocks are assembled into repaired packets and tested against the
// packet-level CRC, capped at W CRC computations.

// DefaultW returns the paper's W limit for the coding rate: 125 for CR 1
// and 16 otherwise.
func DefaultW(cr int) int {
	if cr == 1 {
		return 125
	}
	return 16
}

// PacketResult reports a BEC packet decode.
type PacketResult struct {
	Header   lora.Header
	Payload  []uint8
	OK       bool
	Rescued  int // codeword rows fixed beyond the default decoder (Fig. 16)
	CRCTests int // packet CRC evaluations performed

	// Failure attribution (all false on success):
	// HeaderOK reports at least one checksum-valid header candidate.
	HeaderOK bool
	// BlockFailed reports a payload block whose error pattern exceeded
	// BEC's correction capability.
	BlockFailed bool
	// Exhausted reports the W budget ran out with candidate combinations
	// still untested (§6.9).
	Exhausted bool
}

// PacketDecoder decodes packets with BEC. W overrides the per-CR CRC
// budget when positive. The RNG drives the random candidate sampling when
// the candidate space exceeds W; a nil RNG falls back to a fixed seed so
// decoding stays deterministic.
type PacketDecoder struct {
	W   int
	rng *rand.Rand
	// Trace, when non-nil, receives one BlockOutcome per decoded block
	// (header and payload). Nil costs nothing.
	Trace *obs.PacketTrace
}

// NewPacketDecoder builds a decoder. Pass w <= 0 to use the paper's
// defaults.
func NewPacketDecoder(w int, rng *rand.Rand) *PacketDecoder {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &PacketDecoder{W: w, rng: rng}
}

// DecodePacket decodes a packet from its data-symbol shifts. It first
// BEC-decodes the header block (always CR 4), then, for each valid header
// candidate, BEC-decodes the payload blocks and searches the candidate
// cross-product for a CRC pass.
func (pd *PacketDecoder) DecodePacket(p lora.Params, shifts []int) PacketResult {
	headerR := lora.HeaderBlockFromShifts(p, shifts)
	hres := DecodeBlock(headerR, 4)
	pd.Trace.AddBlock(obs.BlockOutcome{
		Index: -1, CR: 4, ErrorCols: hres.ErrorCols,
		Candidates: len(hres.Candidates),
		NoError:    hres.NoError, Failed: hres.Failed, Companion: hres.Companion,
	})
	if hres.Failed {
		return PacketResult{}
	}

	var out PacketResult
	seenHeaders := map[lora.Header]bool{}
	first := true
	for _, hCand := range hres.Candidates {
		hdr, ok := lora.HeaderFromCleanBlock(hCand)
		if !ok || seenHeaders[hdr] {
			continue
		}
		seenHeaders[hdr] = true
		out.HeaderOK = true
		res := pd.decodeWithHeader(p, shifts, hCand, hdr, &out, first)
		first = false
		if res.OK {
			res.HeaderOK = true
			return res
		}
	}
	return out
}

func (pd *PacketDecoder) decodeWithHeader(p lora.Params, shifts []int, hCand *lora.Block, hdr lora.Header, partial *PacketResult, record bool) PacketResult {
	pp := p
	pp.CR = hdr.CR
	lay, err := lora.NewLayout(pp, hdr.PayloadLen)
	if err != nil {
		return PacketResult{Header: hdr}
	}
	blocks := lora.PayloadBlocksFromShifts(pp, shifts, lay.PayloadBlocks)
	cands := make([][]*lora.Block, len(blocks))
	cleaned := make([]*lora.Block, len(blocks))
	for i, b := range blocks {
		res := DecodeBlock(b, pp.CR)
		if record {
			// Payload-block outcomes are traced for the first header
			// candidate only, to keep one row per block in the trace.
			pd.Trace.AddBlock(obs.BlockOutcome{
				Index: i, CR: pp.CR, ErrorCols: res.ErrorCols,
				Candidates: len(res.Candidates),
				NoError:    res.NoError, Failed: res.Failed, Companion: res.Companion,
			})
		}
		if res.Failed || len(res.Candidates) == 0 {
			partial.BlockFailed = true
			return PacketResult{Header: hdr}
		}
		cands[i] = res.Candidates
		cleaned[i] = lora.CleanBlock(b, pp.CR)
	}

	w := pd.W
	if w <= 0 {
		w = DefaultW(pp.CR)
	}
	hClean := lora.CleanBlock(lora.HeaderBlockFromShifts(p, shifts), 4)

	total := 1
	overflow := false
	for _, c := range cands {
		total *= len(c)
		if total > 1<<20 {
			overflow = true
			break
		}
	}

	test := func(choice []int) (PacketResult, bool) {
		chosen := make([]*lora.Block, len(blocks))
		for i, ci := range choice {
			chosen[i] = cands[i][ci]
		}
		payload, ok := lora.AssemblePayload(hCand, chosen, hdr.PayloadLen)
		partial.CRCTests++
		if !ok {
			return PacketResult{}, false
		}
		rescued := 0
		for i, blk := range chosen {
			for r := 0; r < blk.Rows; r++ {
				if blk.RowCodeword(r) != cleaned[i].RowCodeword(r) {
					rescued++
				}
			}
		}
		for r := 0; r < hCand.Rows; r++ {
			if hCand.RowCodeword(r) != hClean.RowCodeword(r) {
				rescued++
			}
		}
		return PacketResult{
			Header: hdr, Payload: payload, OK: true,
			Rescued: rescued, CRCTests: partial.CRCTests,
		}, true
	}

	if !overflow && total <= w {
		// Exhaustive mixed-radix enumeration.
		choice := make([]int, len(blocks))
		for n := 0; n < total; n++ {
			v := n
			for i := range choice {
				choice[i] = v % len(cands[i])
				v /= len(cands[i])
			}
			if res, ok := test(choice); ok {
				return res
			}
		}
		return PacketResult{Header: hdr, CRCTests: partial.CRCTests}
	}

	// Random sampling of W combinations (paper §6.9), deduplicated.
	tried := map[string]bool{}
	choice := make([]int, len(blocks))
	key := make([]byte, len(blocks))
	for attempts := 0; attempts < 4*w && len(tried) < w; attempts++ {
		for i := range choice {
			choice[i] = pd.rng.Intn(len(cands[i]))
			key[i] = byte(choice[i])
		}
		k := string(key)
		if tried[k] {
			continue
		}
		tried[k] = true
		if res, ok := test(choice); ok {
			return res
		}
	}
	// The sampled search only runs when total > w (or overflowed), so
	// reaching here always leaves combinations untested.
	partial.Exhausted = true
	return PacketResult{Header: hdr, CRCTests: partial.CRCTests}
}
