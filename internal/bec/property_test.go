package bec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tnb/internal/lora"
)

// Property-based tests of BEC's structural invariants.

func TestPropCompanionSymmetry(t *testing.T) {
	// If Π' is a companion of Π, then Π is a companion of Π'.
	f := func(seed int64, crRaw uint8) bool {
		cr := 2 + int(crRaw%3) // 2, 3, 4
		rng := rand.New(rand.NewSource(seed))
		size := 1
		if cr >= 3 {
			size = 1 + rng.Intn(cr-1)
		}
		cols := rng.Perm(4 + cr)[:size]
		var pi ColSet
		for _, c := range cols {
			pi |= Col(c + 1)
		}
		for _, comp := range Companions(pi, cr) {
			back := Companions(comp, cr)
			found := false
			for _, b := range back {
				if b == pi {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropCompanionSizesSumToCR(t *testing.T) {
	// |Π| + |Π'| = CR for every companion (paper §6.2).
	for cr := 2; cr <= 4; cr++ {
		for mask := 1; mask < 1<<(4+cr); mask++ {
			pi := ColSet(uint8(mask) << uint(8-(4+cr)))
			if pi.Size() >= cr {
				continue
			}
			for _, comp := range Companions(pi, cr) {
				if pi.Size()+comp.Size() != cr {
					t.Fatalf("CR%d: |%v|+|%v| != %d", cr, pi.Columns(), comp.Columns(), cr)
				}
				if pi&comp != 0 {
					t.Fatalf("CR%d: companion overlaps Π", cr)
				}
			}
		}
	}
}

func TestPropDecodeNeverPanicsOnRandomBlocks(t *testing.T) {
	// Arbitrary (even non-codeword) received blocks must decode without
	// panicking, and every returned candidate must consist of valid
	// codewords.
	f := func(seed int64, crRaw, rowsRaw uint8) bool {
		cr := 1 + int(crRaw%4)
		rows := 7 + int(rowsRaw%6)
		rng := rand.New(rand.NewSource(seed))
		b := lora.NewBlock(rows, 4+cr)
		for r := 0; r < rows; r++ {
			for c := 0; c < b.Cols; c++ {
				b.Bits[r][c] = uint8(rng.Intn(2))
			}
		}
		res := DecodeBlock(b, cr)
		for _, cand := range res.Candidates {
			for r := 0; r < cand.Rows; r++ {
				row := cand.RowCodeword(r)
				ok := false
				for d := 0; d < 16; d++ {
					if lora.HammingEncode(uint8(d), cr) == row {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropRepairMaskIdempotent(t *testing.T) {
	// Repairing an already-valid block with any column set returns the
	// block itself.
	f := func(seed int64, crRaw uint8) bool {
		cr := 2 + int(crRaw%3)
		rng := rand.New(rand.NewSource(seed))
		b := lora.NewBlock(8, 4+cr)
		for r := 0; r < 8; r++ {
			b.SetRowCodeword(r, lora.HammingEncode(uint8(rng.Intn(16)), cr))
		}
		size := 1 + rng.Intn(2)
		if size >= MinDistanceOf(cr) {
			size = MinDistanceOf(cr) - 1
		}
		cols := rng.Perm(4 + cr)[:size]
		var pi ColSet
		for _, c := range cols {
			pi |= Col(c + 1)
		}
		fixed := RepairMask(b, pi, cr)
		return fixed != nil && fixed.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// MinDistanceOf re-exports the punctured code's minimum distance for the
// property tests.
func MinDistanceOf(cr int) int { return lora.MinDistance(cr) }

func TestPropPacketDecoderDeterministic(t *testing.T) {
	// The same corrupted packet decodes identically across decoder
	// instances with the same seed.
	p := lora.MustParams(8, 4, 125e3, 8)
	payload := []uint8("determinism!!!")
	shifts, _, err := lora.Encode(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(500))
	for trial := 0; trial < 20; trial++ {
		c := corruptShiftSymbols(rng, p, shifts, 2, true)
		a := NewPacketDecoder(0, rand.New(rand.NewSource(7))).DecodePacket(p, c)
		b := NewPacketDecoder(0, rand.New(rand.NewSource(7))).DecodePacket(p, c)
		if a.OK != b.OK || string(a.Payload) != string(b.Payload) {
			t.Fatalf("trial %d: nondeterministic decode", trial)
		}
	}
}

func TestPropNoErrorImpliesCleanEqualsReceivedOrDistOne(t *testing.T) {
	// When BEC reports NoError for CR >= 3, the cleaned block differs
	// from the received block in at most one column.
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 300; trial++ {
		cr := 3 + trial%2
		b := lora.NewBlock(8, 4+cr)
		for r := 0; r < 8; r++ {
			b.SetRowCodeword(r, lora.HammingEncode(uint8(rng.Intn(16)), cr))
		}
		// Corrupt at most one column lightly.
		if trial%3 != 0 {
			col := rng.Intn(4 + cr)
			b.Bits[rng.Intn(8)][col] ^= 1
		}
		res := DecodeBlock(b, cr)
		if !res.NoError {
			continue
		}
		diffCols := map[int]bool{}
		clean := res.Candidates[0]
		for r := 0; r < 8; r++ {
			for c := 0; c < b.Cols; c++ {
				if clean.Bits[r][c] != b.Bits[r][c] {
					diffCols[c] = true
				}
			}
		}
		if len(diffCols) > 1 {
			t.Fatalf("trial %d: NoError with %d differing columns", trial, len(diffCols))
		}
	}
}
