package bec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"tnb/internal/lora"
)

// corruptShiftSymbols corrupts n distinct payload-section symbols by adding
// random bin offsets, modeling demodulation errors. Symbols within a single
// block are chosen when sameBlock is true.
func corruptShiftSymbols(rng *rand.Rand, p lora.Params, shifts []int, n int, sameBlock bool) []int {
	out := append([]int(nil), shifts...)
	cw := 4 + p.CR
	nblocks := (len(shifts) - lora.HeaderSymbols) / cw
	var idxs []int
	if sameBlock {
		b := rng.Intn(nblocks)
		perm := rng.Perm(cw)
		for i := 0; i < n; i++ {
			idxs = append(idxs, lora.HeaderSymbols+b*cw+perm[i])
		}
	} else {
		perm := rng.Perm(len(shifts) - lora.HeaderSymbols)
		for i := 0; i < n; i++ {
			idxs = append(idxs, lora.HeaderSymbols+perm[i])
		}
	}
	for _, i := range idxs {
		off := 1 + rng.Intn(p.N()-1)
		out[i] = (out[i] + off) % p.N()
	}
	return out
}

func TestPacketDecodeClean(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, sf := range []int{8, 10} {
		for cr := 1; cr <= 4; cr++ {
			p := lora.MustParams(sf, cr, 125e3, 8)
			payload := make([]uint8, 14)
			rng.Read(payload)
			shifts, _, err := lora.Encode(p, payload)
			if err != nil {
				t.Fatal(err)
			}
			pd := NewPacketDecoder(0, rng)
			res := pd.DecodePacket(p, shifts)
			if !res.OK || !bytes.Equal(res.Payload, payload) {
				t.Fatalf("SF%d CR%d: clean packet decode failed", sf, cr)
			}
			if res.Rescued != 0 {
				t.Errorf("SF%d CR%d: %d rescued rows on a clean packet", sf, cr, res.Rescued)
			}
		}
	}
}

func TestPacketDecodeRescuesBeyondDefault(t *testing.T) {
	// Corrupt 2 symbols of one CR4 block: the default decoder usually
	// fails, BEC must recover.
	rng := rand.New(rand.NewSource(71))
	p := lora.MustParams(8, 4, 125e3, 8)
	payload := []uint8("fourteen bytes")
	shifts, _, err := lora.Encode(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	pd := NewPacketDecoder(0, rng)
	becOK, defOK, rescuedSeen := 0, 0, 0
	const trials = 150
	for i := 0; i < trials; i++ {
		c := corruptShiftSymbols(rng, p, shifts, 2, true)
		if res := pd.DecodePacket(p, c); res.OK && bytes.Equal(res.Payload, payload) {
			becOK++
			if res.Rescued > 0 {
				rescuedSeen++
			}
		}
		if res := lora.DecodeDefault(p, c); res.OK && bytes.Equal(res.Payload, payload) {
			defOK++
		}
	}
	if becOK != trials {
		t.Errorf("BEC decoded %d/%d 2-symbol-corrupted packets", becOK, trials)
	}
	if defOK > trials/2 {
		t.Errorf("default decoder decoded %d/%d; corruption too weak to discriminate", defOK, trials)
	}
	if rescuedSeen == 0 {
		t.Error("no packets reported rescued codewords")
	}
}

func TestPacketDecodeThreeSymbolErrorsCR4(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	p := lora.MustParams(8, 4, 125e3, 8)
	payload := []uint8("three col test")
	shifts, _, err := lora.Encode(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	pd := NewPacketDecoder(0, rng)
	ok := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		c := corruptShiftSymbols(rng, p, shifts, 3, true)
		if res := pd.DecodePacket(p, c); res.OK && bytes.Equal(res.Payload, payload) {
			ok++
		}
	}
	// Paper Table 1: over 96% of 3-symbol errors corrected (SF 8 ≈ 98%).
	if rate := float64(ok) / float64(trials); rate < 0.9 {
		t.Errorf("CR4 3-symbol packet recovery rate %.2f", rate)
	}
}

func TestPacketDecodeScatteredErrors(t *testing.T) {
	// One corrupted symbol in each of two different blocks: both blocks
	// repair independently and the cross-product search finds the truth.
	rng := rand.New(rand.NewSource(73))
	p := lora.MustParams(8, 3, 125e3, 8)
	payload := []uint8("scatter errors")
	shifts, _, err := lora.Encode(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	pd := NewPacketDecoder(0, rng)
	ok := 0
	const trials = 150
	for i := 0; i < trials; i++ {
		c := corruptShiftSymbols(rng, p, shifts, 2, false)
		if res := pd.DecodePacket(p, c); res.OK && bytes.Equal(res.Payload, payload) {
			ok++
		}
	}
	if rate := float64(ok) / float64(trials); rate < 0.9 {
		t.Errorf("scattered-error recovery rate %.2f", rate)
	}
}

func TestPacketDecodeHeaderCorruption(t *testing.T) {
	// Corrupt one header symbol: the header block is CR4 so BEC must
	// recover the header and then the payload.
	rng := rand.New(rand.NewSource(74))
	p := lora.MustParams(8, 2, 125e3, 8)
	payload := []uint8("header corrupt")
	shifts, _, err := lora.Encode(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	pd := NewPacketDecoder(0, rng)
	ok := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		c := append([]int(nil), shifts...)
		idx := rng.Intn(lora.HeaderSymbols)
		c[idx] = (c[idx] + 4*(1+rng.Intn(p.N()/4-1))) % p.N()
		if res := pd.DecodePacket(p, c); res.OK && bytes.Equal(res.Payload, payload) {
			ok++
		}
	}
	if ok < trials*9/10 {
		t.Errorf("header-corruption recovery %d/%d", ok, trials)
	}
}

func TestPacketDecodeCRCBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	p := lora.MustParams(8, 1, 125e3, 8)
	payload := []uint8("budget check!!")
	shifts, _, err := lora.Encode(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one symbol per block in 2 blocks: candidate space 5^k.
	c := corruptShiftSymbols(rng, p, shifts, 2, false)
	pd := NewPacketDecoder(0, rng)
	res := pd.DecodePacket(p, c)
	if res.CRCTests > 125+5 {
		t.Errorf("CR1 used %d CRC tests, budget 125", res.CRCTests)
	}
	// The paper notes W=25 still decodes most CR1 packets.
	pd25 := NewPacketDecoder(25, rng)
	res25 := pd25.DecodePacket(p, c)
	if res25.CRCTests > 25+5 {
		t.Errorf("W=25 used %d CRC tests", res25.CRCTests)
	}
}

func TestPacketDecodeGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	p := lora.MustParams(8, 4, 125e3, 8)
	shifts := make([]int, 48)
	for i := range shifts {
		shifts[i] = rng.Intn(p.N())
	}
	pd := NewPacketDecoder(0, rng)
	res := pd.DecodePacket(p, shifts)
	if res.OK {
		t.Error("garbage symbols should not decode")
	}
}

func TestDefaultW(t *testing.T) {
	if DefaultW(1) != 125 || DefaultW(2) != 16 || DefaultW(4) != 16 {
		t.Error("DefaultW mismatch with paper §6.9")
	}
}

func TestPsiRecursionSumsToOne(t *testing.T) {
	// Σ_{x=1..8} C(8,x)·Ψx = 1: some combination count always occurs.
	for _, sf := range []int{7, 8, 10, 12} {
		psi := Psi(sf, 8)
		var sum float64
		for x := 1; x <= 8; x++ {
			sum += binom(8, x) * psi[x]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("SF%d: ΣC(8,x)Ψx = %g", sf, sum)
		}
	}
}

func TestErrorProbMatchesPaperFig20(t *testing.T) {
	// Fig. 20: error probability < 0.04 at SF 7 and decreasing in SF.
	p7 := ErrorProbCR4ThreeColumns(7)
	if p7 <= 0 || p7 >= 0.04 {
		t.Errorf("SF7 analytical error prob %g, want (0, 0.04)", p7)
	}
	prev := p7
	for sf := 8; sf <= 12; sf++ {
		p := ErrorProbCR4ThreeColumns(sf)
		if p >= prev {
			t.Errorf("error prob not decreasing at SF%d: %g >= %g", sf, p, prev)
		}
		prev = p
	}
}

func TestMonteCarloMatchesAnalysis(t *testing.T) {
	// Independence-assumption Monte Carlo vs Lemma 4, the comparison in
	// Fig. 20. Under the independence assumption bits flip with p=0.5
	// without the at-least-one-flip conditioning.
	rng := rand.New(rand.NewSource(77))
	sf := 7
	trials, failures := 4000, 0
	for trial := 0; trial < trials; trial++ {
		truth := encodeBlock(rng, sf, 4)
		cols := pickCols(rng, 8, 3)
		R := truth.Clone()
		for _, k := range cols {
			for r := 0; r < R.Rows; r++ {
				if rng.Intn(2) == 1 {
					R.Bits[r][k-1] ^= 1
				}
			}
		}
		res := DecodeBlock(R, 4)
		// Under the independence assumption a decode "error" includes
		// returning prematurely without the truth among candidates.
		if !containsBlock(res.Candidates, truth) {
			failures++
		}
	}
	got := float64(failures) / float64(trials)
	want := ErrorProbCR4ThreeColumns(sf)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("Monte Carlo %g vs analysis %g", got, want)
	}
}

func TestErrorProbCR3(t *testing.T) {
	if got := ErrorProbCR3TwoColumns(8); got != math.Pow(2, -8) {
		t.Errorf("CR3 analytical prob %g", got)
	}
}

func BenchmarkDecodeBlockCR4TwoColumns(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	truth := encodeBlock(rng, 8, 4)
	R := corruptColumns(rng, truth, []int{2, 6})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeBlock(R, 4)
	}
}

func BenchmarkPacketDecodeCR4(b *testing.B) {
	rng := rand.New(rand.NewSource(79))
	p := lora.MustParams(8, 4, 125e3, 8)
	shifts, _, _ := lora.Encode(p, make([]uint8, 14))
	c := corruptShiftSymbols(rng, p, shifts, 2, true)
	pd := NewPacketDecoder(0, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd.DecodePacket(p, c)
	}
}
