package bec

import (
	"math/rand"
	"testing"

	"tnb/internal/lora"
)

// Exhaustive verification of Table 1's absolute claims at SF 7 (the
// smallest practical block: exhaustiveness is what distinguishes
// "corrects all" from "corrected in our samples"). Guarded by -short.

// enumerate2ColumnPatterns calls fn for every nonzero error pattern over
// two columns of an SF-row block: every pair of (column, per-row flip
// mask) with both columns actually hit.
func enumerate2ColumnPatterns(sf, cols int, fn func(c1, c2 int, m1, m2 uint32) bool) bool {
	rows := uint32(1) << uint(sf)
	for c1 := 0; c1 < cols; c1++ {
		for c2 := c1 + 1; c2 < cols; c2++ {
			for m1 := uint32(1); m1 < rows; m1++ {
				for m2 := uint32(1); m2 < rows; m2++ {
					if !fn(c1, c2, m1, m2) {
						return false
					}
				}
			}
		}
	}
	return true
}

func applyPattern(truth *lora.Block, c int, mask uint32) func() {
	for r := 0; r < truth.Rows; r++ {
		if mask>>uint(r)&1 == 1 {
			truth.Bits[r][c] ^= 1
		}
	}
	return func() {
		for r := 0; r < truth.Rows; r++ {
			if mask>>uint(r)&1 == 1 {
				truth.Bits[r][c] ^= 1
			}
		}
	}
}

func TestExhaustiveCR4TwoColumnsSF7(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	// One fixed random codeword block; the code is linear, so correction
	// success depends only on the error pattern, not the codewords.
	rng := rand.New(rand.NewSource(2000))
	truth := encodeBlock(rng, 7, 4)
	checked := 0
	ok := enumerate2ColumnPatterns(7, 8, func(c1, c2 int, m1, m2 uint32) bool {
		undo1 := applyPattern(truth, c1, m1)
		undo2 := applyPattern(truth, c2, m2)
		res := DecodeBlock(truth, 4) // truth currently holds R
		good := false
		undo2()
		undo1()
		// After undo, truth is the original again; compare candidates.
		for _, cand := range res.Candidates {
			if cand.Equal(truth) {
				good = true
				break
			}
		}
		checked++
		if !good {
			t.Errorf("pattern c%d/c%d m1=%#x m2=%#x not corrected", c1+1, c2+1, m1, m2)
			return false
		}
		return true
	})
	if ok {
		t.Logf("all %d CR4 2-column error patterns corrected", checked)
	}
}

func TestExhaustiveCR1OneColumnSF7(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	rng := rand.New(rand.NewSource(2001))
	truth := encodeBlock(rng, 7, 1)
	checked := 0
	for c := 0; c < 5; c++ {
		for m := uint32(1); m < 1<<7; m++ {
			undo := applyPattern(truth, c, m)
			res := DecodeBlock(truth, 1)
			undo()
			good := false
			for _, cand := range res.Candidates {
				if cand.Equal(truth) {
					good = true
					break
				}
			}
			checked++
			if !good {
				t.Fatalf("CR1 pattern c%d m=%#x not corrected", c+1, m)
			}
		}
	}
	t.Logf("all %d CR1 1-column error patterns corrected", checked)
}

func TestExhaustiveCR2OneColumnSF7(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	rng := rand.New(rand.NewSource(2002))
	truth := encodeBlock(rng, 7, 2)
	checked := 0
	for c := 0; c < 6; c++ {
		for m := uint32(1); m < 1<<7; m++ {
			undo := applyPattern(truth, c, m)
			res := DecodeBlock(truth, 2)
			undo()
			good := false
			for _, cand := range res.Candidates {
				if cand.Equal(truth) {
					good = true
					break
				}
			}
			checked++
			if !good {
				t.Fatalf("CR2 pattern c%d m=%#x not corrected", c+1, m)
			}
		}
	}
	t.Logf("all %d CR2 1-column error patterns corrected", checked)
}

func TestExhaustiveCR3TwoColumnFailureRateSF7(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	// CR 3 cannot correct every 2-column pattern (A.5: error ≈ 2^-SF under
	// independence; exactly, patterns with m1 == m2 alias to the companion
	// column). Enumerate and check the failure rate against the analysis.
	rng := rand.New(rand.NewSource(2003))
	truth := encodeBlock(rng, 7, 3)
	checked, failures := 0, 0
	enumerate2ColumnPatterns(7, 7, func(c1, c2 int, m1, m2 uint32) bool {
		undo1 := applyPattern(truth, c1, m1)
		undo2 := applyPattern(truth, c2, m2)
		res := DecodeBlock(truth, 3)
		undo2()
		undo1()
		good := false
		for _, cand := range res.Candidates {
			if cand.Equal(truth) {
				good = true
				break
			}
		}
		checked++
		if !good {
			failures++
			if m1 != m2 {
				t.Errorf("unexpected CR3 failure with m1 != m2: c%d/c%d %#x %#x", c1+1, c2+1, m1, m2)
				return false
			}
		}
		return true
	})
	rate := float64(failures) / float64(checked)
	// Exactly the m1 == m2 patterns fail: (2^SF - 1) of (2^SF - 1)^2.
	want := 1.0 / float64(1<<7-1)
	if rate > want*1.01 || rate < want*0.99 {
		t.Errorf("CR3 2-column failure rate %.5f, want %.5f", rate, want)
	}
	t.Logf("CR3: %d/%d patterns fail (%.4f), exactly the aliased m1==m2 set", failures, checked, rate)
}
