package bec

import (
	"math/rand"
	"testing"

	"tnb/internal/lora"
)

// encodeBlock builds a valid block of random codewords at the given CR.
func encodeBlock(rng *rand.Rand, rows, cr int) *lora.Block {
	b := lora.NewBlock(rows, 4+cr)
	for r := 0; r < rows; r++ {
		b.SetRowCodeword(r, lora.HammingEncode(uint8(rng.Intn(16)), cr))
	}
	return b
}

// corruptColumns flips random bits in the chosen 1-based columns: every
// column gets at least one flipped bit (it is a true error column), and
// each row/column bit flips with probability 1/2.
func corruptColumns(rng *rand.Rand, b *lora.Block, cols []int) *lora.Block {
	out := b.Clone()
	for _, k := range cols {
		flipped := false
		for r := 0; r < out.Rows; r++ {
			if rng.Intn(2) == 1 {
				out.Bits[r][k-1] ^= 1
				flipped = true
			}
		}
		if !flipped {
			r := rng.Intn(out.Rows)
			out.Bits[r][k-1] ^= 1
		}
	}
	return out
}

// containsBlock reports whether want appears among the candidates.
func containsBlock(cands []*lora.Block, want *lora.Block) bool {
	for _, c := range cands {
		if c.Equal(want) {
			return true
		}
	}
	return false
}

// pickCols selects n distinct 1-based columns of a width-cols block.
func pickCols(rng *rand.Rand, cols, n int) []int {
	perm := rng.Perm(cols)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = perm[i] + 1
	}
	return out
}

func TestCompanionsCR2Pairs(t *testing.T) {
	// Appendix A.1: CR 2 companion pairs are (c1,c5), (c2,c3), (c4,c6).
	pairs := map[int]int{1: 5, 2: 3, 4: 6}
	for a, b := range pairs {
		got := Companions(Col(a), 2)
		if len(got) != 1 || got[0] != Col(b) {
			t.Errorf("companion of c%d: %v, want c%d", a, got, b)
		}
		back := Companions(Col(b), 2)
		if len(back) != 1 || back[0] != Col(a) {
			t.Errorf("companion of c%d: %v, want c%d", b, back, a)
		}
	}
}

func TestCompanionCR3PairUnique(t *testing.T) {
	// §6.1: companion of {c2,c7} is {c3} for CR 3.
	got := Companions(Col(2)|Col(7), 3)
	if len(got) != 1 || got[0] != Col(3) {
		t.Errorf("companion of {c2,c7} = %v, want {c3}", got)
	}
	// Uniqueness for all pairs (appendix A.1).
	for a := 1; a <= 7; a++ {
		for b := a + 1; b <= 7; b++ {
			cs := Companions(Col(a)|Col(b), 3)
			if len(cs) != 1 || cs[0].Size() != 1 {
				t.Errorf("CR3 companion of {c%d,c%d} not a unique column: %v", a, b, cs)
			}
		}
	}
}

func TestCompanionGroupCR4(t *testing.T) {
	// Appendix A.1: companions of {c1,c2} are {c6,c8}, {c3,c5}, {c4,c7}.
	got := Companions(Col(1)|Col(2), 4)
	want := map[ColSet]bool{Col(6) | Col(8): true, Col(3) | Col(5): true, Col(4) | Col(7): true}
	if len(got) != 3 {
		t.Fatalf("%d companions of {c1,c2}", len(got))
	}
	for _, c := range got {
		if !want[c] {
			t.Errorf("unexpected companion %v", c.Columns())
		}
	}
	// Every CR4 pair has exactly 3 companions; every triple exactly 1.
	for a := 1; a <= 8; a++ {
		for b := a + 1; b <= 8; b++ {
			if n := len(Companions(Col(a)|Col(b), 4)); n != 3 {
				t.Errorf("pair {c%d,c%d}: %d companions", a, b, n)
			}
		}
	}
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 30; trial++ {
		cols := pickCols(rng, 8, 3)
		pi := Col(cols[0]) | Col(cols[1]) | Col(cols[2])
		cs := Companions(pi, 4)
		if len(cs) != 1 || cs[0].Size() != 1 {
			t.Errorf("triple %v: companions %v", cols, cs)
		}
	}
}

func TestColSetBasics(t *testing.T) {
	s := Col(1) | Col(8)
	if !s.Has(1) || !s.Has(8) || s.Has(4) {
		t.Error("Has failed")
	}
	if s.Size() != 2 {
		t.Errorf("Size = %d", s.Size())
	}
	cols := s.Columns()
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 8 {
		t.Errorf("Columns = %v", cols)
	}
}

func TestDecodePaperExampleFig7(t *testing.T) {
	// Reconstruct the structure of Fig. 2/7: SF 8, CR 3, true error
	// columns 2 and 7, with one row (row 7) having errors in both, which
	// the default decoder mis-corrects via companion column 3. BEC must
	// include the true block among its candidates.
	rng := rand.New(rand.NewSource(51))
	truth := encodeBlock(rng, 8, 3)
	R := truth.Clone()
	// Rows 2..6, 8 (1-indexed): single error in column 2 or 7.
	for _, rc := range []struct{ row, col int }{
		{1, 1}, // unusued marker to keep 0-indexed mapping clear below
	} {
		_ = rc
	}
	R.Bits[1][1] ^= 1 // row 2, col 2
	R.Bits[2][6] ^= 1 // row 3, col 7
	R.Bits[3][1] ^= 1
	R.Bits[4][6] ^= 1
	R.Bits[5][1] ^= 1
	R.Bits[7][6] ^= 1
	// Row 7: errors in both columns 2 and 7.
	R.Bits[6][1] ^= 1
	R.Bits[6][6] ^= 1

	res := DecodeBlock(R, 3)
	if res.Failed {
		t.Fatal("BEC failed on the paper's example structure")
	}
	if res.NoError {
		t.Fatal("BEC wrongly concluded no error")
	}
	if !containsBlock(res.Candidates, truth) {
		t.Fatal("true block not among BEC candidates")
	}
	if len(res.Candidates) > 3 {
		t.Errorf("%d candidates for CR3 2-column errors, want <= 3", len(res.Candidates))
	}
}

func TestDecodeNoErrorAllCRs(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for cr := 1; cr <= 4; cr++ {
		b := encodeBlock(rng, 8, cr)
		res := DecodeBlock(b, cr)
		if !res.NoError || res.Failed {
			t.Errorf("CR%d: clean block not recognized (noerr=%v failed=%v)", cr, res.NoError, res.Failed)
		}
		if len(res.Candidates) != 1 || !res.Candidates[0].Equal(b) {
			t.Errorf("CR%d: clean block candidates wrong", cr)
		}
	}
}

// Table 1 row: CR 1 corrects 1-symbol (1-column) errors.
func TestCR1CorrectsOneColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		truth := encodeBlock(rng, 8, 1)
		col := 1 + rng.Intn(5)
		R := corruptColumns(rng, truth, []int{col})
		res := DecodeBlock(R, 1)
		if res.Failed {
			t.Fatalf("trial %d: CR1 failed on 1-column error", trial)
		}
		if !containsBlock(res.Candidates, truth) {
			t.Fatalf("trial %d: truth not among CR1 candidates (col %d)", trial, col)
		}
		if len(res.Candidates) > 5 {
			t.Fatalf("trial %d: %d candidates, want <= 5", trial, len(res.Candidates))
		}
	}
}

// Table 1 row: CR 2 corrects 1-symbol errors.
func TestCR2CorrectsOneColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 200; trial++ {
		truth := encodeBlock(rng, 8, 2)
		col := 1 + rng.Intn(6)
		R := corruptColumns(rng, truth, []int{col})
		res := DecodeBlock(R, 2)
		if res.Failed {
			t.Fatalf("trial %d: CR2 failed on 1-column error (col %d)", trial, col)
		}
		if !containsBlock(res.Candidates, truth) {
			t.Fatalf("trial %d: truth not among CR2 candidates (col %d)", trial, col)
		}
	}
}

// Table 1 row: CR 3 corrects 1-column errors (via the default decoder) and
// almost all 2-column errors.
func TestCR3CorrectsOneColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		truth := encodeBlock(rng, 8, 3)
		R := corruptColumns(rng, truth, []int{1 + rng.Intn(7)})
		res := DecodeBlock(R, 3)
		if res.Failed || !containsBlock(res.Candidates, truth) {
			t.Fatalf("trial %d: CR3 1-column error not corrected", trial)
		}
	}
}

func TestCR3CorrectsTwoColumnsAlmostAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	trials, failures := 2000, 0
	for trial := 0; trial < trials; trial++ {
		truth := encodeBlock(rng, 8, 3)
		cols := pickCols(rng, 7, 2)
		R := corruptColumns(rng, truth, cols)
		res := DecodeBlock(R, 3)
		if res.Failed || !containsBlock(res.Candidates, truth) {
			failures++
		}
	}
	// Analysis (A.5): error probability ≈ 2^-SF = 1/256 ≈ 0.4%. Allow
	// slack for the at-least-one-flip conditioning.
	if rate := float64(failures) / float64(trials); rate > 0.03 {
		t.Errorf("CR3 2-column failure rate %.3f, want < 0.03", rate)
	}
}

// Table 1 row: CR 4 corrects all 1- and 2-column errors.
func TestCR4CorrectsOneAndTwoColumnsAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 1500; trial++ {
		truth := encodeBlock(rng, 8, 4)
		n := 1 + trial%2
		cols := pickCols(rng, 8, n)
		R := corruptColumns(rng, truth, cols)
		res := DecodeBlock(R, 4)
		if res.Failed || !containsBlock(res.Candidates, truth) {
			t.Fatalf("trial %d: CR4 %d-column error not corrected (cols %v)", trial, n, cols)
		}
	}
}

// Table 1 row: CR 4 corrects over 96%% of 3-column errors.
func TestCR4CorrectsThreeColumnsUsually(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	trials, failures := 3000, 0
	for trial := 0; trial < trials; trial++ {
		truth := encodeBlock(rng, 8, 4)
		cols := pickCols(rng, 8, 3)
		R := corruptColumns(rng, truth, cols)
		res := DecodeBlock(R, 4)
		if res.Failed || !containsBlock(res.Candidates, truth) {
			failures++
		}
	}
	rate := float64(failures) / float64(trials)
	// Paper: > 96% corrected at SF 7; error decreases with SF. At SF 8
	// the analysis gives ≈ 2%.
	if rate > 0.05 {
		t.Errorf("CR4 3-column failure rate %.3f, want < 0.05", rate)
	}
}

func TestCR4CandidateBudgetMatchesTable2(t *testing.T) {
	// Table 2: CR 4 produces ≤ 4 BEC-fixed blocks for both 2- and
	// 3-column errors.
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 800; trial++ {
		truth := encodeBlock(rng, 10, 4)
		n := 2 + trial%2
		cols := pickCols(rng, 8, n)
		R := corruptColumns(rng, truth, cols)
		res := DecodeBlock(R, 4)
		if res.Failed {
			continue
		}
		if len(res.Candidates) > 4 {
			t.Fatalf("trial %d: %d candidates for %d-column CR4 errors", trial, len(res.Candidates), n)
		}
	}
}

func TestCR3CandidateBudgetMatchesTable2(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 500; trial++ {
		truth := encodeBlock(rng, 8, 3)
		cols := pickCols(rng, 7, 2)
		R := corruptColumns(rng, truth, cols)
		res := DecodeBlock(R, 3)
		if res.Failed {
			continue
		}
		if len(res.Candidates) > 3 {
			t.Fatalf("trial %d: %d candidates for CR3 2-column errors", trial, len(res.Candidates))
		}
	}
}

func TestBECBeatsDefaultDecoder(t *testing.T) {
	// The headline claim: on 2-column CR3 errors with at least one row
	// corrupted in both columns, the default decoder produces a wrong
	// block while BEC's candidate set contains the truth.
	rng := rand.New(rand.NewSource(61))
	becWins := 0
	trials := 0
	for trials < 300 {
		truth := encodeBlock(rng, 8, 3)
		cols := pickCols(rng, 7, 2)
		R := corruptColumns(rng, truth, cols)
		gamma := lora.CleanBlock(R, 3)
		if gamma.Equal(truth) {
			continue // default decoder got lucky; not the interesting case
		}
		trials++
		res := DecodeBlock(R, 3)
		if !res.Failed && containsBlock(res.Candidates, truth) {
			becWins++
		}
	}
	if rate := float64(becWins) / float64(trials); rate < 0.95 {
		t.Errorf("BEC rescued only %.2f of default-decoder failures", rate)
	}
}

func TestDecodeBlockBadCR(t *testing.T) {
	b := lora.NewBlock(8, 8)
	if res := DecodeBlock(b, 0); !res.Failed {
		t.Error("CR 0 should fail")
	}
	if res := DecodeBlock(b, 5); !res.Failed {
		t.Error("CR 5 should fail")
	}
}

func TestAllCandidatesAreValidCodewordBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	valid := func(b *lora.Block, cr int) bool {
		for r := 0; r < b.Rows; r++ {
			row := b.RowCodeword(r)
			match := false
			for d := 0; d < 16; d++ {
				if lora.HammingEncode(uint8(d), cr) == row {
					match = true
					break
				}
			}
			if !match {
				return false
			}
		}
		return true
	}
	for cr := 1; cr <= 4; cr++ {
		for trial := 0; trial < 200; trial++ {
			truth := encodeBlock(rng, 8, cr)
			n := 1 + rng.Intn(3)
			maxN := map[int]int{1: 1, 2: 1, 3: 2, 4: 3}[cr]
			if n > maxN {
				n = maxN
			}
			R := corruptColumns(rng, truth, pickCols(rng, 4+cr, n))
			res := DecodeBlock(R, cr)
			for ci, c := range res.Candidates {
				if !valid(c, cr) {
					t.Fatalf("CR%d trial %d: candidate %d has invalid rows", cr, trial, ci)
				}
			}
		}
	}
}
