package bec

import (
	"testing"

	"tnb/internal/lora"
)

// FuzzBECDecode throws arbitrary received blocks at every coding rate and
// checks the decoder's structural invariants: no panic, NoError and Failed
// are mutually exclusive, NoError yields exactly one candidate, and every
// candidate row is a valid codeword (re-encoding its data reproduces it).
func FuzzBECDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// A clean CR 4 block: rows that are already valid codewords.
	clean := []byte{3}
	for _, d := range []uint8{0x3, 0x7, 0xa, 0x5, 0xc, 0x1, 0xe} {
		clean = append(clean, lora.HammingEncode(d, 4))
	}
	f.Add(clean)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Byte 0 picks the coding rate (including the invalid ones the
		// dispatcher must reject); the rest become row codewords. Rows span
		// the SF range the pipeline produces (header blocks and payload
		// blocks at SF 6..12).
		cr := int(data[0]%6) - 1 // -1..4: exercises the default arm too
		rows := len(data) - 1
		if rows > 12 {
			rows = 12
		}
		if rows < 1 {
			return
		}
		cols := 8
		if cr >= 1 && cr <= 4 {
			cols = 4 + cr
		}
		R := lora.NewBlock(rows, cols)
		for r := 0; r < rows; r++ {
			R.SetRowCodeword(r, data[1+r])
		}
		before := R.Clone()

		res := DecodeBlock(R, cr)

		if !R.Equal(before) {
			t.Fatal("DecodeBlock mutated its input block")
		}
		if res.NoError && res.Failed {
			t.Fatal("result is both NoError and Failed")
		}
		if res.NoError && len(res.Candidates) != 1 {
			t.Fatalf("NoError with %d candidates, want exactly 1", len(res.Candidates))
		}
		if cr < 1 || cr > 4 {
			if !res.Failed {
				t.Fatalf("cr %d accepted", cr)
			}
			return
		}
		for ci, cand := range res.Candidates {
			if cand.Rows != rows || cand.Cols != cols {
				t.Fatalf("candidate %d has shape %dx%d, want %dx%d",
					ci, cand.Rows, cand.Cols, rows, cols)
			}
			for r := 0; r < rows; r++ {
				cw := cand.RowCodeword(r)
				d, dist, _ := lora.HammingDecodeDefault(cw, cr)
				if dist != 0 || lora.HammingEncode(d, cr) != cw {
					t.Fatalf("candidate %d row %d codeword %#02x is not valid at cr %d",
						ci, r, cw, cr)
				}
			}
		}
	})
}
