package bec

import (
	"math/bits"

	"tnb/internal/lora"
)

// Repair methods Δ', Δ1, Δ2, Δ3 (paper §6.3). Each takes the received block
// R and produces a BEC-fixed block, or reports failure.

// RepairChecksum is Δ': CR 1 only. The block is repaired with column k by
// recomputing that column from the checksum relation of the other four
// columns. It always succeeds and returns a full block of valid CR 1
// codewords.
func RepairChecksum(R *lora.Block, k int) *lora.Block {
	out := R.Clone()
	for r := 0; r < out.Rows; r++ {
		row := out.RowCodeword(r)
		// The 5 columns are the 4 data bits and the checksum; the parity
		// of all 5 bits must be even. Recompute bit k accordingly.
		var parityOthers uint8
		for c := 1; c <= 5; c++ {
			if c == k {
				continue
			}
			parityOthers ^= row >> uint(8-c) & 1
		}
		if row>>uint(8-k)&1 != parityOthers {
			row ^= uint8(Col(k))
		}
		out.SetRowCodeword(r, row)
	}
	return out
}

// matchMasked returns the unique codeword matching word on all columns
// outside mask, or (0, false) when none matches. Uniqueness holds whenever
// |mask| is below the code's minimum distance.
func matchMasked(word uint8, mask ColSet, cws *[16]uint8, width uint8) (uint8, bool) {
	keep := width &^ uint8(mask)
	for _, cw := range cws {
		if (cw^word)&keep == 0 {
			return cw & width, true
		}
	}
	return 0, false
}

// RepairMask is Δ1: mask the columns in pi and replace every row with the
// codeword that matches it on the remaining columns. It returns nil when
// any row has no matching codeword (paper §6.3: "R is repairable only if
// every row is repairable").
func RepairMask(R *lora.Block, pi ColSet, cr int) *lora.Block {
	cws := codewords(cr)
	width := uint8(0xFF) << uint(8-(4+cr))
	out := lora.NewBlock(R.Rows, R.Cols)
	for r := 0; r < R.Rows; r++ {
		cw, ok := matchMasked(R.RowCodeword(r), pi, &cws, width)
		if !ok {
			return nil
		}
		out.SetRowCodeword(r, cw)
	}
	return out
}

// RepairFlipOne is Δ2 (CR 4): assume column k1 is a true error column. For
// every row in phi2 (rows where R and Γ differ in two bits), flip the bit
// in k1 and find a codeword at distance exactly one; the differing column
// is that row's column of mismatch. The repair succeeds when all phi2 rows
// share the same column of mismatch; other rows take their Γ values.
//
// The mismatch columns discovered along the way are returned even on
// failure — the 3-column decoder uses them to identify the error columns
// (paper §6.7.2 and Lemma 3).
func RepairFlipOne(R, gamma *lora.Block, phi2 []int, k1 int, cr int) (fixed *lora.Block, mismatch []int) {
	cws := codewords(cr)
	width := uint8(0xFF) << uint(8-(4+cr))
	out := gamma.Clone()
	seen := map[int]bool{}
	ok := true
	for _, r := range phi2 {
		word := R.RowCodeword(r) ^ uint8(Col(k1))
		found := false
		for _, cw := range cws {
			diff := (cw ^ word) & width
			if bits.OnesCount8(diff) == 1 {
				col := 8 - bits.Len8(diff) + 1 // bit position → column index
				if !seen[col] {
					seen[col] = true
					mismatch = append(mismatch, col)
				}
				out.SetRowCodeword(r, cw)
				found = true
				break
			}
		}
		if !found {
			ok = false
		}
	}
	if !ok || len(mismatch) != 1 {
		return nil, mismatch
	}
	return out, mismatch
}

// RepairFlipTwo is Δ3 (CR 4, |Ξ| = 0): flip the bits in columns k1 and k2
// of every phi2 row and require an exact codeword match; other rows take
// their Γ values. Returns nil if any phi2 row fails.
func RepairFlipTwo(R, gamma *lora.Block, phi2 []int, k1, k2 int, cr int) *lora.Block {
	cws := codewords(cr)
	width := uint8(0xFF) << uint(8-(4+cr))
	out := gamma.Clone()
	flip := uint8(Col(k1) | Col(k2))
	for _, r := range phi2 {
		word := (R.RowCodeword(r) ^ flip) & width
		matched := false
		for _, cw := range cws {
			if cw&width == word {
				out.SetRowCodeword(r, cw&width)
				matched = true
				break
			}
		}
		if !matched {
			return nil
		}
	}
	return out
}
