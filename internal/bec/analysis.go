package bec

import "math"

// Analytical error model for CR 4 with three error columns (paper appendix
// A.7), under the independence assumption: bits in the error columns flip
// independently with probability 0.5.

// Psi returns Ψ₁..Ψ_xMax: Ψx is the probability that exactly x distinct
// error combinations (out of the 8 possible per-row patterns over 3 error
// columns) occur across the SF rows of a block (Lemma 4's recursion):
//
//	Ψx = (x/8)^SF − Σ_{y<x} C(x,y)·Ψy
func Psi(sf int, xMax int) []float64 {
	psi := make([]float64, xMax+1)
	for x := 1; x <= xMax; x++ {
		v := math.Pow(float64(x)/8, float64(sf))
		for y := 1; y < x; y++ {
			v -= binom(x, y) * psi[y]
		}
		psi[x] = v
	}
	return psi
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

// ErrorProbCR4ThreeColumns returns the analytical decoding error
// probability of BEC for CR 4 with three error columns (Lemma 4):
//
//	Ψ₁ + 7Ψ₂ + 9Ψ₃ + 3Ψ₄ + 2^(−SF)
func ErrorProbCR4ThreeColumns(sf int) float64 {
	psi := Psi(sf, 4)
	return psi[1] + 7*psi[2] + 9*psi[3] + 3*psi[4] + math.Pow(2, -float64(sf))
}

// ErrorProbCR3TwoColumns returns the analytical decoding error probability
// of BEC for CR 3 with two error columns: 2^(−SF) (appendix A.5).
func ErrorProbCR3TwoColumns(sf int) float64 {
	return math.Pow(2, -float64(sf))
}
