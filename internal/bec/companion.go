// Package bec implements Block Error Correction (paper §6 and appendix A):
// joint decoding of the LoRa (8,4) Hamming code over whole code blocks.
// A corrupted symbol corrupts one column of a block, so errors are column-
// correlated; BEC compares the received block R with the default-decoder
// cleaned block Γ, reasons about the true error columns and their
// "companions" (column sets that complete a codeword), produces a small set
// of BEC-fixed candidate blocks, and lets the packet-level CRC pick the
// right one.
package bec

import (
	"math/bits"

	"tnb/internal/lora"
)

// ColSet is a set of block columns packed like the codeword representation:
// column k (1-based) is bit 8-k, so column 1 is the MSB. Only the first
// 4+CR bits are ever used.
type ColSet uint8

// Col returns the singleton set for 1-based column k.
func Col(k int) ColSet { return 1 << uint(8-k) }

// Has reports whether 1-based column k is in the set.
func (s ColSet) Has(k int) bool { return s&Col(k) != 0 }

// Size returns the number of columns in the set.
func (s ColSet) Size() int { return bits.OnesCount8(uint8(s)) }

// Columns lists the 1-based column indices in the set, ascending.
func (s ColSet) Columns() []int {
	var out []int
	for k := 1; k <= 8; k++ {
		if s.Has(k) {
			out = append(out, k)
		}
	}
	return out
}

// codewords returns the 16 punctured codewords of the coding rate as
// left-aligned bit patterns. For cr 1 the checksum construction is used.
func codewords(cr int) [16]uint8 {
	var cw [16]uint8
	for d := 0; d < 16; d++ {
		cw[d] = lora.HammingEncode(uint8(d), cr)
	}
	return cw
}

// Companions returns every companion of the column set pi at the given
// coding rate: the sets pi' disjoint from pi with V(pi ∪ pi') a
// minimum-weight codeword, so that |pi| + |pi'| = CR (paper §6.2: "Clearly,
// |Π| + |Π'| = CR"). For CR 3 with |pi| = 2 the companion is a single
// column; for CR 4 with |pi| = 2 there are three two-column companions (the
// companion group, appendix A.1).
func Companions(pi ColSet, cr int) []ColSet {
	width := uint8(0xFF) << uint(8-(4+cr))
	var out []ColSet
	for _, w := range codewords(cr) {
		w &= width
		if bits.OnesCount8(w) != cr {
			continue
		}
		// V(pi ∪ pi') == w requires w ⊇ pi, with pi' = w \ pi.
		if uint8(pi)&^w != 0 {
			continue
		}
		c := ColSet(w &^ uint8(pi))
		if c == 0 {
			continue
		}
		out = append(out, c)
	}
	return out
}

// CompanionOf returns the unique companion of pi, panicking if it is not
// unique — callers use it only where the paper proves uniqueness (CR 2
// single columns, CR 3 pairs, CR 4 triples).
func CompanionOf(pi ColSet, cr int) ColSet {
	cs := Companions(pi, cr)
	if len(cs) != 1 {
		panic("bec: companion not unique")
	}
	return cs[0]
}
