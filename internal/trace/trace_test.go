package trace

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"tnb/internal/channel"
	"tnb/internal/dsp"
	"tnb/internal/lora"
)

func testParams() lora.Params { return lora.MustParams(8, 4, 125e3, 8) }

func TestIQ16RoundTrip(t *testing.T) {
	tr := NewTrace(1e6, 1, 100)
	rng := rand.New(rand.NewSource(30))
	for i := range tr.Antennas[0] {
		tr.Antennas[0][i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := WriteIQ16(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIQ16(&buf, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("length %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Antennas[0] {
		if cmplx.Abs(got.Antennas[0][i]-tr.Antennas[0][i]) > 1.0/iq16Scale {
			t.Fatalf("sample %d: %v vs %v", i, got.Antennas[0][i], tr.Antennas[0][i])
		}
	}
}

func TestReadIQ16Truncated(t *testing.T) {
	if _, err := ReadIQ16(bytes.NewReader([]byte{1, 2, 3}), 1e6); err == nil {
		t.Error("expected error for truncated stream")
	}
}

func TestWriteIQ16NoAntennas(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteIQ16(&buf, &Trace{SampleRate: 1e6}); err == nil {
		t.Error("expected error for empty trace")
	}
}

func TestBuilderSinglePacketPower(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(31))
	b := NewBuilder(p, 0.5, 1, rng)
	b.NoisePower = 0 // noiseless to measure signal power
	if err := b.AddPacket(1, 0, []uint8{1, 2, 3, 4}, 1000, 10, 0, nil); err != nil {
		t.Fatal(err)
	}
	tr, recs := b.Build()
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	rec := recs[0]
	seg := tr.Antennas[0][int(rec.StartSample)+10 : int(rec.StartSample)+rec.NumSamples-10]
	power := dsp.Power(seg)
	want := dsp.DBToLinear(10)
	if math.Abs(power-want)/want > 0.05 {
		t.Errorf("signal power %g, want %g", power, want)
	}
}

func TestBuilderNoiseFloor(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(32))
	b := NewBuilder(p, 0.2, 1, rng)
	tr, _ := b.Build() // no packets: pure noise
	power := dsp.Power(tr.Antennas[0])
	if math.Abs(power-1) > 0.05 {
		t.Errorf("noise power %g, want 1", power)
	}
}

func TestBuilderRejectsOutOfRangePacket(t *testing.T) {
	p := testParams()
	b := NewBuilder(p, 0.05, 1, rand.New(rand.NewSource(33)))
	err := b.AddPacket(1, 0, make([]uint8, 16), float64(b.DurationSamples())-100, 10, 0, nil)
	if err == nil {
		t.Error("expected error for packet past trace end")
	}
	if err := b.AddPacket(1, 0, make([]uint8, 16), -5, 10, 0, nil); err == nil {
		t.Error("expected error for negative start")
	}
}

func TestBuilderRejectsChannelCountMismatch(t *testing.T) {
	p := testParams()
	b := NewBuilder(p, 0.5, 2, rand.New(rand.NewSource(34)))
	err := b.AddPacket(1, 0, []uint8{1}, 0, 10, 0, []channel.Model{channel.Flat{Gain: 1}})
	if err == nil {
		t.Error("expected error for 1 channel on 2 antennas")
	}
}

func TestBuilderMultiAntenna(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(35))
	b := NewBuilder(p, 0.3, 2, rng)
	b.NoisePower = 0
	if err := b.AddPacket(1, 0, []uint8{9, 8, 7}, 500, 6, 1000, nil); err != nil {
		t.Fatal(err)
	}
	tr, recs := b.Build()
	if tr.NumAntennas() != 2 {
		t.Fatalf("antennas = %d", tr.NumAntennas())
	}
	rec := recs[0]
	for a := 0; a < 2; a++ {
		seg := tr.Antennas[a][int(rec.StartSample)+10 : int(rec.StartSample)+rec.NumSamples-10]
		if dsp.Power(seg) < 1 {
			t.Errorf("antenna %d carries too little signal", a)
		}
	}
	// Antennas must differ (independent phases).
	s0 := tr.Antennas[0][600]
	s1 := tr.Antennas[1][600]
	if cmplx.Abs(s0-s1) < 1e-9 {
		t.Error("antennas are identical; expected independent phases")
	}
}

func TestBuiltPacketDecodesWithKnownParameters(t *testing.T) {
	// End-to-end: builder → trace → demodulate at the known start/CFO →
	// default decode recovers the payload.
	p := testParams()
	rng := rand.New(rand.NewSource(36))
	b := NewBuilder(p, 0.5, 1, rng)
	payload := []uint8("tnb end-to-end!!")
	start := 2345.678
	cfoHz := -2500.0
	if err := b.AddPacket(3, 7, payload, start, 25, cfoHz, nil); err != nil {
		t.Fatal(err)
	}
	tr, recs := b.Build()
	rec := recs[0]

	d := lora.NewDemodulator(p)
	w := lora.NewWaveform(p, rec.Shifts)
	dataStart := rec.StartSample + w.DataStart()*p.SampleRate()
	cfoCycles := cfoHz * p.SymbolDuration()
	shifts := make([]int, len(rec.Shifts))
	for k := range shifts {
		shifts[k] = d.HardDemod(tr.Antennas[0], dataStart+float64(k*p.SymbolSamples()), cfoCycles, k)
	}
	res := lora.DecodeDefault(p, shifts)
	if !res.OK {
		t.Fatal("decode failed")
	}
	if string(res.Payload) != string(payload) {
		t.Fatalf("payload %q, want %q", res.Payload, payload)
	}
}

func TestTxRecordOverlaps(t *testing.T) {
	a := TxRecord{StartSample: 0, NumSamples: 100}
	b := TxRecord{StartSample: 50, NumSamples: 100}
	c := TxRecord{StartSample: 100, NumSamples: 10}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c touch but do not overlap")
	}
}

func TestScheduleUniformFitsPackets(t *testing.T) {
	p := testParams()
	b := NewBuilder(p, 1.0, 1, rand.New(rand.NewSource(37)))
	starts := b.ScheduleUniform(20, 16)
	if len(starts) != 20 {
		t.Fatalf("%d starts", len(starts))
	}
	pkt := p.PacketSamples(16)
	for _, s := range starts {
		if s < 0 || int(s)+pkt > b.DurationSamples() {
			t.Errorf("start %g does not fit", s)
		}
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			t.Error("starts not sorted")
		}
	}
}
