// Package trace provides the received-signal containers and the synthetic
// trace builder that substitutes for the paper's USRP captures. A trace
// holds per-antenna complex baseband sample streams; the builder composes
// LoRa packets from many nodes at arbitrary (fractional) start times with
// per-node SNR, CFO and channel models, then adds unit-power AWGN.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Trace is a multi-antenna baseband capture.
type Trace struct {
	SampleRate float64
	Antennas   [][]complex128
}

// NewTrace allocates a zeroed capture of n samples on the given number of
// antennas.
func NewTrace(sampleRate float64, antennas, n int) *Trace {
	t := &Trace{SampleRate: sampleRate, Antennas: make([][]complex128, antennas)}
	for a := range t.Antennas {
		t.Antennas[a] = make([]complex128, n)
	}
	return t
}

// Len returns the number of samples per antenna.
func (t *Trace) Len() int {
	if len(t.Antennas) == 0 {
		return 0
	}
	return len(t.Antennas[0])
}

// NumAntennas returns the antenna count.
func (t *Trace) NumAntennas() int { return len(t.Antennas) }

// iq16Scale maps the unit float range onto int16, leaving headroom for
// constructive collisions.
const iq16Scale = 4096

// WriteIQ16 writes antenna 0 as interleaved little-endian int16 I/Q pairs,
// the layout of the paper's USRP B210 dumps (artifact appendix B.3.4).
func WriteIQ16(w io.Writer, t *Trace) error {
	if t.NumAntennas() == 0 {
		return fmt.Errorf("trace: no antennas to write")
	}
	bw := bufio.NewWriter(w)
	buf := make([]byte, 4)
	for _, v := range t.Antennas[0] {
		i := clampInt16(real(v) * iq16Scale)
		q := clampInt16(imag(v) * iq16Scale)
		binary.LittleEndian.PutUint16(buf[0:2], uint16(i))
		binary.LittleEndian.PutUint16(buf[2:4], uint16(q))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadIQ16 reads an interleaved int16 I/Q stream into a single-antenna
// trace.
func ReadIQ16(r io.Reader, sampleRate float64) (*Trace, error) {
	br := bufio.NewReader(r)
	var samples []complex128
	buf := make([]byte, 4)
	for {
		_, err := io.ReadFull(br, buf)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("trace: truncated IQ pair at sample %d", len(samples))
		}
		if err != nil {
			return nil, err
		}
		i := int16(binary.LittleEndian.Uint16(buf[0:2]))
		q := int16(binary.LittleEndian.Uint16(buf[2:4]))
		samples = append(samples, complex(float64(i)/iq16Scale, float64(q)/iq16Scale))
	}
	return &Trace{SampleRate: sampleRate, Antennas: [][]complex128{samples}}, nil
}

func clampInt16(v float64) int16 {
	r := math.Round(v)
	if r > math.MaxInt16 {
		return math.MaxInt16
	}
	if r < math.MinInt16 {
		return math.MinInt16
	}
	return int16(r)
}
