package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tnb/internal/channel"
	"tnb/internal/dsp"
	"tnb/internal/lora"
)

// TxRecord is the ground truth for one transmitted packet, used by the
// evaluation harness to score decoders.
type TxRecord struct {
	Node        int
	Seq         int
	Payload     []uint8
	StartSample float64 // fractional receiver sample of the packet start
	CFOHz       float64
	SNRdB       float64 // per-sample SNR against the unit noise floor
	Shifts      []int   // data symbol shifts actually transmitted
	NumSamples  int     // packet length in receiver samples
}

// EndSample returns the last receiver sample covered by the packet.
func (r TxRecord) EndSample() float64 { return r.StartSample + float64(r.NumSamples) }

// Overlaps reports whether two packets overlap in time.
func (r TxRecord) Overlaps(o TxRecord) bool {
	return r.StartSample < o.EndSample() && o.StartSample < r.EndSample()
}

// Builder composes a synthetic multi-node trace.
type Builder struct {
	Params     lora.Params
	Antennas   int
	NoisePower float64 // per-sample AWGN power; 0 disables noise
	rng        *rand.Rand
	duration   int // samples
	pending    []pendingPacket
}

type pendingPacket struct {
	rec      TxRecord
	channels []channel.Model // one per antenna; nil means random-phase flat
}

// NewBuilder creates a builder for a trace of the given duration in
// seconds. The RNG drives noise, random phases and any random scheduling.
func NewBuilder(p lora.Params, durationSec float64, antennas int, rng *rand.Rand) *Builder {
	if antennas < 1 {
		antennas = 1
	}
	return &Builder{
		Params:     p,
		Antennas:   antennas,
		NoisePower: 1,
		rng:        rng,
		duration:   int(durationSec * p.SampleRate()),
	}
}

// DurationSamples returns the trace length in samples.
func (b *Builder) DurationSamples() int { return b.duration }

// AddPacket schedules a packet from node with the given payload at the
// (fractional) start sample, per-sample SNR (dB) and CFO (Hz). channels, if
// non-nil, provides one channel model per antenna; otherwise a flat channel
// with a random phase per antenna is used.
func (b *Builder) AddPacket(node, seq int, payload []uint8, startSample, snrDB, cfoHz float64, channels []channel.Model) error {
	shifts, _, err := lora.Encode(b.Params, payload)
	if err != nil {
		return err
	}
	numSamples := b.Params.PreambleSamples() + len(shifts)*b.Params.SymbolSamples()
	if startSample < 0 || int(startSample)+numSamples > b.duration {
		return fmt.Errorf("trace: packet [%g, %g) outside trace of %d samples",
			startSample, startSample+float64(numSamples), b.duration)
	}
	if channels != nil && len(channels) != b.Antennas {
		return fmt.Errorf("trace: %d channel models for %d antennas", len(channels), b.Antennas)
	}
	b.pending = append(b.pending, pendingPacket{
		rec: TxRecord{
			Node: node, Seq: seq,
			Payload:     append([]uint8(nil), payload...),
			StartSample: startSample, CFOHz: cfoHz, SNRdB: snrDB,
			Shifts: shifts, NumSamples: numSamples,
		},
		channels: channels,
	})
	return nil
}

// Build renders all scheduled packets, adds noise, and returns the trace
// along with the ground-truth records sorted by start time.
func (b *Builder) Build() (*Trace, []TxRecord) {
	tr := NewTrace(b.Params.SampleRate(), b.Antennas, b.duration)
	noise := b.NoisePower
	if noise < 0 {
		noise = 0
	}
	for _, pp := range b.pending {
		b.renderPacket(tr, pp)
	}
	if noise > 0 {
		for a := range tr.Antennas {
			dsp.AddNoise(tr.Antennas[a], noise, b.rng)
		}
	}
	recs := make([]TxRecord, len(b.pending))
	for i, pp := range b.pending {
		recs[i] = pp.rec
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].StartSample < recs[j].StartSample })
	return tr, recs
}

func (b *Builder) renderPacket(tr *Trace, pp pendingPacket) {
	rec := pp.rec
	w := lora.NewWaveform(b.Params, rec.Shifts)
	n0 := int(math.Floor(rec.StartSample))
	frac := rec.StartSample - float64(n0)
	amp := math.Sqrt(dsp.DBToLinear(rec.SNRdB) * math.Max(b.NoisePower, 1e-30))
	if b.NoisePower == 0 {
		amp = math.Sqrt(dsp.DBToLinear(rec.SNRdB))
	}
	phase0 := 2 * math.Pi * b.rng.Float64()
	base := w.Render(frac, rec.CFOHz, phase0)
	dsp.Scale(base, amp)

	for a := 0; a < b.Antennas; a++ {
		var faded []complex128
		if pp.channels != nil {
			faded = pp.channels[a].Apply(base, b.Params.SampleRate(), n0)
		} else if b.Antennas > 1 || a > 0 {
			g := dsp.Cis(2 * math.Pi * b.rng.Float64())
			faded = make([]complex128, len(base))
			for i, v := range base {
				faded[i] = v * g
			}
		} else {
			faded = base
		}
		dst := tr.Antennas[a]
		for i, v := range faded {
			if idx := n0 + i; idx >= 0 && idx < len(dst) {
				dst[idx] += v
			}
		}
	}
}

// ScheduleUniform draws nPackets start times uniformly over the trace such
// that each packet fits, returning sorted fractional start samples.
func (b *Builder) ScheduleUniform(nPackets, payloadLen int) []float64 {
	pktSamples := b.Params.PacketSamples(payloadLen)
	span := b.duration - pktSamples - 1
	if span <= 0 {
		return nil
	}
	starts := make([]float64, nPackets)
	for i := range starts {
		starts[i] = b.rng.Float64() * float64(span)
	}
	sort.Float64s(starts)
	return starts
}
