package baseline

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"tnb/internal/dsp"
	"tnb/internal/lora"
	"tnb/internal/trace"
)

func TestMLoRaSinglePacket(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, recs := makeTrace(t, 700, p, 0.8, []txSpec{
		{start: 20000.4, snr: 10, cfo: 1500, payload: payloadOf(1)},
	})
	m := NewMLoRa(Config{Params: p})
	if got := countDecoded(m.Decode(tr), recs); got != 1 {
		t.Errorf("mLoRa decoded %d/1", got)
	}
}

func TestMLoRaSICRescuesWeakPacket(t *testing.T) {
	// A strong and a weak packet heavily overlapped: after subtracting
	// the strong one, the weak one becomes collision-free.
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	tr, recs := makeTrace(t, 701, p, 1.2, []txSpec{
		{start: 20000.4, snr: 16, cfo: 2100, payload: payloadOf(1)},
		{start: 20000.4 + 7.5*sym, snr: 6, cfo: -2900, payload: payloadOf(2)},
	})
	m := NewMLoRa(Config{Params: p})
	decoded := m.Decode(tr)
	if got := countDecoded(decoded, recs); got != 2 {
		t.Errorf("mLoRa SIC decoded %d/2", got)
	}
}

func TestMLoRaSubtractionDepth(t *testing.T) {
	// Subtracting a cleanly decoded packet must remove the bulk of its
	// energy from the residual.
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(702))
	b := trace.NewBuilder(p, 0.8, 1, rng)
	b.NoisePower = 0.01 // nearly noiseless to measure cancellation depth
	payload := payloadOf(3)
	if err := b.AddPacket(0, 0, payload, 20000.42, 20, 1800, nil); err != nil {
		t.Fatal(err)
	}
	tr, recs := b.Build()
	before := dsp.Power(tr.Antennas[0][int(recs[0].StartSample)+100 : int(recs[0].StartSample)+recs[0].NumSamples-100])

	m := NewMLoRa(Config{Params: p})
	residual := [][]complex128{append([]complex128(nil), tr.Antennas[0]...)}
	pkts := m.detector.Detect(residual)
	if len(pkts) != 1 {
		t.Fatalf("detected %d packets", len(pkts))
	}
	shifts := demodAll(m.demod, residual, pkts[0], maxSymbols(m.cfg, residual, pkts[0]), nil)
	dec, ok := finish(m.cfg, m.rng, shifts, pkts[0])
	if !ok || !bytes.Equal(dec.Payload, payload) {
		t.Fatal("clean decode failed")
	}
	m.subtract(residual, pkts[0], dec)
	after := ResidualPower(residual[0], int(recs[0].StartSample)+100, int(recs[0].StartSample)+recs[0].NumSamples-100)
	if after > before/20 {
		t.Errorf("cancellation depth too shallow: %.4g -> %.4g (%.1f dB)",
			before, after, 10*math.Log10(after/before))
	}
}

func TestMLoRaFailsWhenEqualPowerFullyOverlapped(t *testing.T) {
	// SIC needs a power gap or collision-free regions; two equal-power
	// fully synchronized packets defeat it (mLoRa's documented limit).
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, recs := makeTrace(t, 703, p, 1.0, []txSpec{
		{start: 20000, snr: 10, cfo: 2100, payload: payloadOf(1)},
		{start: 20100, snr: 10, cfo: -2900, payload: payloadOf(2)},
	})
	m := NewMLoRa(Config{Params: p})
	got := countDecoded(m.Decode(tr), recs)
	if got > 1 {
		t.Logf("mLoRa decoded %d/2 on near-synchronized equal power (lucky)", got)
	}
}

func TestMLoRaResidualPowerBounds(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	if ResidualPower(x, -5, 10) != 1 {
		t.Error("clamping failed")
	}
	if ResidualPower(x, 3, 2) != 0 {
		t.Error("empty range should be 0")
	}
}
