package baseline

import (
	"math"
	"math/rand"

	"tnb/internal/detect"
	"tnb/internal/lora"
	"tnb/internal/peaks"
	"tnb/internal/stats"
	"tnb/internal/trace"
)

// Choir implements the core idea of Choir (Eletreby et al., SIGCOMM'17):
// hardware imperfections give every node a distinct fractional CFO, so the
// sub-bin fractional position of a demodulation peak identifies its
// transmitter. After the detector estimates and corrects each packet's CFO,
// the packet's own peaks sit on (near-)integer bins of its own signal
// vectors while interfering peaks land at the interferers' fractional
// offsets; Choir keeps the strongest near-integer peak per symbol.
type Choir struct {
	cfg      Config
	detector *detect.Detector
	demod    *lora.Demodulator
	rng      *rand.Rand

	// FracTolerance is the maximum |fractional part| for a peak to count
	// as the packet's own.
	FracTolerance float64
}

// NewChoir builds a Choir receiver.
func NewChoir(cfg Config) *Choir {
	cfg.defaults()
	d := detect.NewDetector(cfg.Params)
	return &Choir{
		cfg:           cfg,
		detector:      d,
		demod:         d.Demodulator(),
		rng:           rand.New(rand.NewSource(cfg.Seed + 1)),
		FracTolerance: 0.15,
	}
}

// Decode runs fractional-position peak selection over the trace.
func (c *Choir) Decode(tr *trace.Trace) []Decoded {
	ants := tr.Antennas
	pkts := c.detector.Detect(ants)
	var out []Decoded
	for _, pk := range pkts {
		numData := maxSymbols(c.cfg, ants, pk)
		shifts := demodAll(c.demod, ants, pk, numData, func(k int, start float64) int {
			return c.selectBin(ants, pk, k, start)
		})
		if dec, ok := finish(c.cfg, c.rng, shifts, pk); ok {
			out = append(out, dec)
		}
	}
	return out
}

// selectBin picks the strongest peak whose interpolated position is within
// FracTolerance of an integer bin; falls back to the strongest peak.
func (c *Choir) selectBin(ants [][]complex128, pk detect.Packet, k int, start float64) int {
	p := c.cfg.Params
	acc := make([]float64, p.N())
	scratch := make([]float64, p.N())
	buf := make([]complex128, p.N())
	for _, ant := range ants {
		c.demod.SignalVectorInto(scratch, buf, ant, start, pk.CFOCycles, k)
		for i := range acc {
			acc[i] += scratch[i]
		}
	}
	ps := peaks.Find(acc, 6*stats.Median(acc), 8)
	var best *peaks.Peak
	for i := range ps {
		pos := peaks.InterpolateBin(acc, ps[i].Bin)
		frac := math.Abs(pos - math.Round(pos))
		if frac <= c.FracTolerance {
			if best == nil || ps[i].Height > best.Height {
				best = &ps[i]
			}
		}
	}
	if best != nil {
		return best.Bin
	}
	return peaks.HighestBin(acc)
}
