package baseline

import (
	"math"
	"math/rand"
	"sort"

	"tnb/internal/detect"
	"tnb/internal/dsp"
	"tnb/internal/lora"
	"tnb/internal/trace"
)

// MLoRa implements the successive-interference-cancellation decoder of
// mLoRa (Wang et al., ICNP'19): packets are decoded strongest-first from
// the residual signal; each successful decode is re-synthesized from the
// CRC-verified payload, channel-fitted per symbol, and subtracted, which
// progressively frees the weaker packets from interference.
type MLoRa struct {
	cfg      Config
	detector *detect.Detector
	demod    *lora.Demodulator
	rng      *rand.Rand

	// MaxRounds bounds the decode/subtract sweeps over the packet set.
	MaxRounds int
}

// NewMLoRa builds an mLoRa receiver.
func NewMLoRa(cfg Config) *MLoRa {
	cfg.defaults()
	d := detect.NewDetector(cfg.Params)
	return &MLoRa{
		cfg:       cfg,
		detector:  d,
		demod:     d.Demodulator(),
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
		MaxRounds: 3,
	}
}

// Decode runs iterative decode-and-subtract over the trace.
func (m *MLoRa) Decode(tr *trace.Trace) []Decoded {
	// Work on a mutable copy of the samples: subtraction is destructive.
	residual := make([][]complex128, tr.NumAntennas())
	for a := range residual {
		residual[a] = append([]complex128(nil), tr.Antennas[a]...)
	}

	pkts := m.detector.Detect(residual)
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].Quality > pkts[j].Quality })
	done := make([]bool, len(pkts))

	var out []Decoded
	for round := 0; round < m.MaxRounds; round++ {
		progress := false
		for i, pk := range pkts {
			if done[i] {
				continue
			}
			shifts := demodAll(m.demod, residual, pk, maxSymbols(m.cfg, residual, pk), nil)
			dec, ok := finish(m.cfg, m.rng, shifts, pk)
			if !ok {
				continue
			}
			done[i] = true
			progress = true
			out = append(out, dec)
			m.subtract(residual, pk, dec)
		}
		if !progress {
			break
		}
	}
	return out
}

// subtract re-synthesizes the decoded packet and removes it from the
// residual, fitting a complex gain per symbol so that residual CFO and
// slow fading do not leave energy behind.
func (m *MLoRa) subtract(residual [][]complex128, pk detect.Packet, dec Decoded) {
	p := m.cfg.Params
	pp := p
	pp.CR = dec.Header.CR
	shifts, _, err := lora.Encode(pp, dec.Payload)
	if err != nil {
		return
	}
	w := lora.NewWaveform(pp, shifts)

	n0 := math.Floor(pk.Start)
	frac := pk.Start - n0
	cfoHz := pk.CFOCycles / p.SymbolDuration()
	ref := w.Render(frac, cfoHz, 0)

	start := int(n0)
	seg := p.SymbolSamples()
	for a := range residual {
		rx := residual[a]
		for off := 0; off < len(ref); off += seg {
			end := off + seg
			if end > len(ref) {
				end = len(ref)
			}
			lo, hi := start+off, start+end
			if lo < 0 || hi > len(rx) {
				continue
			}
			// Per-symbol least-squares gain: g = <rx, ref>/<ref, ref>.
			var num complex128
			var den float64
			for k := off; k < end; k++ {
				r := ref[k]
				num += rx[start+k] * complex(real(r), -imag(r))
				den += real(r)*real(r) + imag(r)*imag(r)
			}
			if den == 0 {
				continue
			}
			g := num / complex(den, 0)
			for k := off; k < end; k++ {
				rx[start+k] -= g * ref[k]
			}
		}
	}
}

// ResidualPower measures the mean power of a sample range; exported for
// tests validating the cancellation depth.
func ResidualPower(samples []complex128, lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(samples) {
		hi = len(samples)
	}
	if hi <= lo {
		return 0
	}
	return dsp.Power(samples[lo:hi])
}
