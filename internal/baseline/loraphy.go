// Package baseline implements the comparison schemes of the paper's
// evaluation (§8.2): LoRaPHY, the standard single-user decoder, and CIC,
// the sub-window spectra intersection decoder of SIGCOMM'21. Both reuse
// TnB's packet detection (as in the paper, where every scheme processes the
// same traces and CIC/AlignTrack* outputs are decoded by the open-source
// LoRa implementation); each can be paired with the default Hamming decoder
// or with BEC (the CIC+ configuration of §8.5).
package baseline

import (
	"math/rand"

	"tnb/internal/bec"
	"tnb/internal/detect"
	"tnb/internal/lora"
	"tnb/internal/trace"
)

// Decoded mirrors core.Decoded for baseline receivers.
type Decoded struct {
	Payload   []uint8
	Header    lora.Header
	Start     float64
	CFOCycles float64
}

// Config configures a baseline receiver.
type Config struct {
	Params lora.Params
	// UseBEC decodes with Block Error Correction (CIC+ / AlignTrack*+).
	UseBEC bool
	// MaxPayloadLen bounds the provisional packet length (0 → 48).
	MaxPayloadLen int
	// Seed drives BEC candidate sampling.
	Seed int64
}

func (c *Config) defaults() {
	if c.MaxPayloadLen == 0 {
		c.MaxPayloadLen = 48
	}
}

// LoRaPHY is the standard LoRa decoder: strongest bin per symbol, default
// Hamming decoding, no collision resolution.
type LoRaPHY struct {
	cfg      Config
	detector *detect.Detector
	demod    *lora.Demodulator
	rng      *rand.Rand
}

// NewLoRaPHY builds the standard decoder.
func NewLoRaPHY(cfg Config) *LoRaPHY {
	cfg.defaults()
	d := detect.NewDetector(cfg.Params)
	return &LoRaPHY{cfg: cfg, detector: d, demod: d.Demodulator(),
		rng: rand.New(rand.NewSource(cfg.Seed + 1))}
}

// Decode detects packets and hard-demodulates each symbol independently.
func (l *LoRaPHY) Decode(tr *trace.Trace) []Decoded {
	ants := tr.Antennas
	var out []Decoded
	for _, pk := range l.detector.Detect(ants) {
		shifts := demodAll(l.demod, ants, pk, maxSymbols(l.cfg, ants, pk), nil)
		if dec, ok := finish(l.cfg, l.rng, shifts, pk); ok {
			out = append(out, dec)
		}
	}
	return out
}

// maxSymbols bounds the provisional data-symbol count of a detected packet.
func maxSymbols(cfg Config, ants [][]complex128, pk detect.Packet) int {
	p := cfg.Params
	lay, err := lora.NewLayout(p, cfg.MaxPayloadLen)
	maxSyms := 0
	if err == nil {
		maxSyms = lay.DataSymbols
	}
	dataStart := pk.Start + (lora.PreambleUpchirps+lora.SyncSymbols+
		float64(lora.DownchirpQuarters)/4)*float64(p.SymbolSamples())
	avail := int((float64(len(ants[0])) - dataStart) / float64(p.SymbolSamples()))
	if avail < 0 {
		avail = 0
	}
	if maxSyms == 0 || avail < maxSyms {
		maxSyms = avail
	}
	return maxSyms
}

// demodAll hard-demodulates numData symbols of a packet, summing signal
// vectors across antennas. A non-nil selector overrides the per-symbol bin
// decision.
func demodAll(demod *lora.Demodulator, ants [][]complex128, pk detect.Packet,
	numData int, selector func(symIdx int, start float64) int) []int {

	p := demod.Params()
	dataStart := pk.Start + (lora.PreambleUpchirps+lora.SyncSymbols+
		float64(lora.DownchirpQuarters)/4)*float64(p.SymbolSamples())
	shifts := make([]int, numData)
	acc := make([]float64, p.N())
	buf := make([]complex128, p.N())
	scratch := make([]float64, p.N())
	for k := 0; k < numData; k++ {
		s := dataStart + float64(k*p.SymbolSamples())
		if selector != nil {
			shifts[k] = selector(k, s)
			continue
		}
		for i := range acc {
			acc[i] = 0
		}
		for _, ant := range ants {
			demod.SignalVectorInto(scratch, buf, ant, s, pk.CFOCycles, k)
			for i := range acc {
				acc[i] += scratch[i]
			}
		}
		best, bi := 0.0, 0
		for i, v := range acc {
			if v > best {
				best, bi = v, i
			}
		}
		shifts[k] = bi
	}
	return shifts
}

// finish decodes assigned shifts with BEC or the default decoder.
func finish(cfg Config, rng *rand.Rand, shifts []int, pk detect.Packet) (Decoded, bool) {
	if len(shifts) < lora.HeaderSymbols {
		return Decoded{}, false
	}
	if cfg.UseBEC {
		pd := bec.NewPacketDecoder(0, rng)
		res := pd.DecodePacket(cfg.Params, shifts)
		if !res.OK {
			return Decoded{}, false
		}
		return Decoded{Payload: res.Payload, Header: res.Header,
			Start: pk.Start, CFOCycles: pk.CFOCycles}, true
	}
	res := lora.DecodeDefault(cfg.Params, shifts)
	if !res.OK {
		return Decoded{}, false
	}
	return Decoded{Payload: res.Payload, Header: res.Header,
		Start: pk.Start, CFOCycles: pk.CFOCycles}, true
}
