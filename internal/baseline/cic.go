package baseline

import (
	"math"
	"math/rand"
	"sort"

	"tnb/internal/detect"
	"tnb/internal/dsp"
	"tnb/internal/lora"
	"tnb/internal/peaks"
	"tnb/internal/stats"
	"tnb/internal/trace"
)

// CIC implements the core idea of Concurrent Interference Cancellation
// (Shahid et al., SIGCOMM'21): for every symbol of the target packet, the
// window is cut into sub-windows at the symbol boundaries of the
// interfering packets. The target's chirp keeps a single frequency across
// all sub-windows, while each interferer changes symbols at its boundary;
// intersecting the peak sets of the sub-window spectra therefore cancels
// the interference and leaves the target peak.
type CIC struct {
	cfg      Config
	detector *detect.Detector
	demod    *lora.Demodulator
	ref      *lora.RefChirps
	plan     *dsp.FFTPlan
	rng      *rand.Rand

	// MinSubWindowChips drops sub-windows shorter than this many chips;
	// very short segments have too little frequency resolution.
	MinSubWindowChips int
}

// NewCIC builds a CIC receiver.
func NewCIC(cfg Config) *CIC {
	cfg.defaults()
	d := detect.NewDetector(cfg.Params)
	return &CIC{
		cfg:               cfg,
		detector:          d,
		demod:             d.Demodulator(),
		ref:               lora.NewRefChirps(cfg.Params.SF),
		plan:              dsp.MustPlan(cfg.Params.N()),
		rng:               rand.New(rand.NewSource(cfg.Seed + 1)),
		MinSubWindowChips: cfg.Params.N() / 8,
	}
}

// Decode runs CIC over a trace.
func (c *CIC) Decode(tr *trace.Trace) []Decoded {
	ants := tr.Antennas
	pkts := c.detector.Detect(ants)
	var out []Decoded
	for i, pk := range pkts {
		others := make([]detect.Packet, 0, len(pkts)-1)
		for j, o := range pkts {
			if j != i {
				others = append(others, o)
			}
		}
		numData := maxSymbols(c.cfg, ants, pk)
		shifts := demodAll(c.demod, ants, pk, numData, func(k int, start float64) int {
			return c.selectBin(ants, pk, others, k, start)
		})
		if dec, ok := finish(c.cfg, c.rng, shifts, pk); ok {
			out = append(out, dec)
		}
	}
	return out
}

// selectBin picks the bin of symbol k of the target packet by intersecting
// sub-window spectra.
func (c *CIC) selectBin(ants [][]complex128, pk detect.Packet, others []detect.Packet, k int, start float64) int {
	p := c.cfg.Params
	n := p.N()
	sym := float64(p.SymbolSamples())

	// Sub-window boundaries in chips within [0, N): each interferer whose
	// packet is active here contributes the offset of its symbol boundary.
	cuts := []float64{0, float64(n)}
	for _, o := range others {
		if pk.Start == o.Start {
			continue
		}
		// A non-overlapping interferer's boundary still cuts the window;
		// the only cost is an extra sub-window, so no pruning is needed.
		off := math.Mod(o.Start-start, sym) / float64(p.OSF)
		if off < 0 {
			off += float64(n)
		}
		if off > 1 && off < float64(n)-1 {
			cuts = append(cuts, off)
		}
	}
	sort.Float64s(cuts)

	// Spectrum of each sufficiently long sub-window, summed over antennas.
	var subSpectra [][]float64
	buf := make([]complex128, n)
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		if b-a < float64(c.MinSubWindowChips) {
			continue
		}
		acc := make([]float64, n)
		for _, ant := range ants {
			c.subSpectrum(buf, ant, start, pk.CFOCycles, k, int(a), int(b))
			for j, v := range buf {
				acc[j] += real(v)*real(v) + imag(v)*imag(v)
			}
		}
		subSpectra = append(subSpectra, acc)
	}
	if len(subSpectra) == 0 {
		subSpectra = append(subSpectra, c.fullSpectrum(ants, start, pk.CFOCycles, k))
	}

	// Peak sets per sub-window; intersect.
	maxPeaks := 2 * (len(others) + 2)
	sets := make([][]peaks.Peak, len(subSpectra))
	for i, sp := range subSpectra {
		sets[i] = peaks.Find(sp, 6*stats.Median(sp), maxPeaks)
	}
	type cand struct {
		bin   int
		total float64
	}
	var cands []cand
	for _, pk0 := range sets[0] {
		total := pk0.Height
		inAll := true
		for i := 1; i < len(sets); i++ {
			found := false
			for _, pkI := range sets[i] {
				if circDist(pkI.Bin, pk0.Bin, n) <= 1 {
					total += pkI.Height
					found = true
					break
				}
			}
			if !found {
				inAll = false
				break
			}
		}
		if inAll {
			cands = append(cands, cand{bin: pk0.Bin, total: total})
		}
	}
	if len(cands) == 0 {
		// Intersection empty: fall back to the strongest full-window bin.
		full := c.fullSpectrum(ants, start, pk.CFOCycles, k)
		return peaks.HighestBin(full)
	}
	best := cands[0]
	for _, cd := range cands[1:] {
		if cd.total > best.total {
			best = cd
		}
	}
	return best.bin
}

// subSpectrum computes the N-point spectrum of the dechirped sub-window
// [a, b) chips of symbol k, zero-padding outside the segment.
func (c *CIC) subSpectrum(buf []complex128, rx []complex128, start, cfo float64, k, a, b int) {
	p := c.cfg.Params
	n := p.N()
	for i := range buf {
		buf[i] = 0
	}
	seg := buf[a:b]
	dsp.Resample(seg, rx, start+float64(a*p.OSF), float64(p.OSF))
	for i := a; i < b; i++ {
		v := buf[i] * conj(c.ref.Up[i])
		if cfo != 0 {
			ph := -2 * math.Pi * cfo * (float64(k) + float64(i)/float64(n))
			v *= dsp.Cis(ph)
		}
		buf[i] = v
	}
	c.plan.Forward(buf)
}

func (c *CIC) fullSpectrum(ants [][]complex128, start, cfo float64, k int) []float64 {
	p := c.cfg.Params
	acc := make([]float64, p.N())
	scratch := make([]float64, p.N())
	buf := make([]complex128, p.N())
	for _, ant := range ants {
		c.demod.SignalVectorInto(scratch, buf, ant, start, cfo, k)
		for i := range acc {
			acc[i] += scratch[i]
		}
	}
	return acc
}

func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }

func circDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d > n/2 {
		d = n - d
	}
	return d
}
