package baseline

import (
	"bytes"
	"math/rand"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/trace"
)

type txSpec struct {
	start, snr, cfo float64
	payload         []uint8
}

func makeTrace(t *testing.T, seed int64, p lora.Params, dur float64, specs []txSpec) (*trace.Trace, []trace.TxRecord) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(p, dur, 1, rng)
	for i, s := range specs {
		if err := b.AddPacket(i, i, s.payload, s.start, s.snr, s.cfo, nil); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func payloadOf(i int) []uint8 {
	p := make([]uint8, 14)
	for j := range p {
		p[j] = uint8(i*31 + j)
	}
	return p
}

func countDecoded(decoded []Decoded, recs []trace.TxRecord) int {
	n := 0
	for _, rec := range recs {
		for _, d := range decoded {
			if bytes.Equal(d.Payload, rec.Payload) {
				n++
				break
			}
		}
	}
	return n
}

func TestLoRaPHYSinglePacket(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, recs := makeTrace(t, 300, p, 1.0, []txSpec{
		{start: 20000.4, snr: 8, cfo: 1500, payload: payloadOf(1)},
	})
	l := NewLoRaPHY(Config{Params: p})
	if got := countDecoded(l.Decode(tr), recs); got != 1 {
		t.Errorf("LoRaPHY decoded %d/1 clean packets", got)
	}
}

func TestLoRaPHYFailsOnHeavyCollision(t *testing.T) {
	// Two equal-power packets heavily overlapped: the standard decoder
	// should lose at least one (its per-symbol argmax mixes them).
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	tr, recs := makeTrace(t, 301, p, 1.2, []txSpec{
		{start: 20000.4, snr: 10, cfo: 1500, payload: payloadOf(1)},
		{start: 20000.4 + 2.5*sym, snr: 10, cfo: -2500, payload: payloadOf(2)},
	})
	l := NewLoRaPHY(Config{Params: p})
	if got := countDecoded(l.Decode(tr), recs); got >= 2 {
		t.Errorf("LoRaPHY decoded %d/2 heavily collided equal-power packets; expected failure", got)
	}
}

func TestCICSinglePacket(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, recs := makeTrace(t, 302, p, 1.0, []txSpec{
		{start: 20000.4, snr: 8, cfo: 1500, payload: payloadOf(1)},
	})
	c := NewCIC(Config{Params: p})
	if got := countDecoded(c.Decode(tr), recs); got != 1 {
		t.Errorf("CIC decoded %d/1 clean packets", got)
	}
}

func TestCICResolvesCollision(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	tr, recs := makeTrace(t, 303, p, 1.2, []txSpec{
		{start: 20000.4, snr: 12, cfo: 1500, payload: payloadOf(1)},
		{start: 20000.4 + 11.4*sym, snr: 9, cfo: -2500, payload: payloadOf(2)},
	})
	c := NewCIC(Config{Params: p})
	if got := countDecoded(c.Decode(tr), recs); got < 1 {
		t.Errorf("CIC decoded %d/2 collided packets", got)
	}
}

func TestCICPlusBECAtLeastAsGood(t *testing.T) {
	// CIC+ (with BEC) must decode at least as many packets as CIC across
	// a few seeds (paper §8.5: "BEC can be combined with CIC and
	// AlignTrack* and always improve the performance").
	p := lora.MustParams(8, 3, 125e3, 8)
	sym := float64(p.SymbolSamples())
	tot, totBEC := 0, 0
	for seed := int64(0); seed < 3; seed++ {
		tr, recs := makeTrace(t, 310+seed, p, 1.4, []txSpec{
			{start: 20000.4, snr: 8, cfo: 1500, payload: payloadOf(1)},
			{start: 20000.4 + (9.4+2*float64(seed))*sym, snr: 4, cfo: -2500, payload: payloadOf(2)},
		})
		tot += countDecoded(NewCIC(Config{Params: p, Seed: seed}).Decode(tr), recs)
		totBEC += countDecoded(NewCIC(Config{Params: p, UseBEC: true, Seed: seed}).Decode(tr), recs)
	}
	if totBEC < tot {
		t.Errorf("CIC+ decoded %d vs CIC %d", totBEC, tot)
	}
}

func TestCICSubWindowCuts(t *testing.T) {
	// With one interferer offset by half a symbol, selectBin must still
	// recover the true bins of a strong target.
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	tr, recs := makeTrace(t, 304, p, 1.2, []txSpec{
		{start: 20000, snr: 12, cfo: 0, payload: payloadOf(1)},
		{start: 20000 + 9.5*sym, snr: 12, cfo: 0, payload: payloadOf(2)},
	})
	c := NewCIC(Config{Params: p})
	pkts := c.detector.Detect(tr.Antennas)
	if len(pkts) != 2 {
		t.Fatalf("detected %d packets", len(pkts))
	}
	rec := recs[0]
	dataStart := pkts[0].Start + (lora.PreambleUpchirps+lora.SyncSymbols+2.25)*sym
	errs := 0
	for k := 0; k < len(rec.Shifts); k++ {
		bin := c.selectBin(tr.Antennas, pkts[0], pkts[1:], k, dataStart+float64(k)*sym)
		if bin != rec.Shifts[k] {
			errs++
		}
	}
	if errs > len(rec.Shifts)/8 {
		t.Errorf("CIC selectBin: %d/%d errors", errs, len(rec.Shifts))
	}
}

func TestCircDist(t *testing.T) {
	if circDist(0, 255, 256) != 1 || circDist(5, 5, 256) != 0 || circDist(0, 128, 256) != 128 {
		t.Error("circDist broken")
	}
}

func TestChoirSinglePacket(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, recs := makeTrace(t, 920, p, 1.0, []txSpec{
		{start: 20000.4, snr: 10, cfo: 1500, payload: payloadOf(1)},
	})
	c := NewChoir(Config{Params: p})
	if got := countDecoded(c.Decode(tr), recs); got != 1 {
		t.Errorf("Choir decoded %d/1 clean packets", got)
	}
}

func TestChoirDistinguishesByFractionalCFO(t *testing.T) {
	// Two packets whose CFOs differ by a clearly fractional number of
	// bins: Choir's fractional filter should separate them.
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	// CFO difference of ~1221 Hz = 2.5 bins: fractional part 0.5.
	tr, recs := makeTrace(t, 921, p, 1.2, []txSpec{
		{start: 20000.0, snr: 10, cfo: 0, payload: payloadOf(1)},
		{start: 20000.0 + 10.5*sym, snr: 10, cfo: 1221, payload: payloadOf(2)},
	})
	c := NewChoir(Config{Params: p})
	got := countDecoded(c.Decode(tr), recs)
	if got < 1 {
		t.Errorf("Choir decoded %d/2", got)
	}
	t.Logf("Choir decoded %d/2 fractional-CFO-separated packets", got)
}

func TestChoirFractionalSelectionUnit(t *testing.T) {
	// Direct unit check of selectBin: the true symbol peak (integer bin
	// after CFO correction) must win over a stronger half-bin interloper.
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(922))
	b := trace.NewBuilder(p, 0.5, 1, rng)
	payload := payloadOf(3)
	if err := b.AddPacket(0, 0, payload, 20000, 10, 0, nil); err != nil {
		t.Fatal(err)
	}
	tr, recs := b.Build()
	c := NewChoir(Config{Params: p})
	pkts := c.detector.Detect(tr.Antennas)
	if len(pkts) != 1 {
		t.Fatalf("%d packets", len(pkts))
	}
	sym := float64(p.SymbolSamples())
	dataStart := pkts[0].Start + (lora.PreambleUpchirps+lora.SyncSymbols+2.25)*sym
	errs := 0
	for k := range recs[0].Shifts {
		if c.selectBin(tr.Antennas, pkts[0], k, dataStart+float64(k)*sym) != recs[0].Shifts[k] {
			errs++
		}
	}
	if errs > 1 {
		t.Errorf("Choir selectBin: %d symbol errors on a clean packet", errs)
	}
}
