package faultinject

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"
)

func sampleRamp(n int) []complex128 {
	s := make([]complex128, n)
	for i := range s {
		s[i] = complex(float64(i%100)/100, -float64(i%37)/37)
	}
	return s
}

// pipeConns returns a connected TCP pair so the Conn wrapper is exercised
// over the same transport the gateway uses.
func pipeConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestSamplesDeterministic(t *testing.T) {
	in := sampleRamp(20_000)
	for _, kind := range []Kind{IQSaturate, IQNaN, IQSilence} {
		sc := Scenario{Kind: kind, Seed: 7}
		a := sc.Samples(in)
		b := sc.Samples(in)
		for i := range a {
			ar, ai := real(a[i]), imag(a[i])
			br, bi := real(b[i]), imag(b[i])
			// NaN != NaN, so compare bit patterns.
			if math.Float64bits(ar) != math.Float64bits(br) || math.Float64bits(ai) != math.Float64bits(bi) {
				t.Fatalf("%s: sample %d differs between runs", kind, i)
			}
		}
		// A different seed must damage different samples.
		c := Scenario{Kind: kind, Seed: 8}.Samples(in)
		same := true
		for i := range a {
			if math.Float64bits(real(a[i])) != math.Float64bits(real(c[i])) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 7 and 8 injected identical damage", kind)
		}
		// The input must not be modified.
		ref := sampleRamp(20_000)
		for i := range in {
			if in[i] != ref[i] {
				t.Fatalf("%s: input mutated at %d", kind, i)
			}
		}
	}
}

func TestSamplesFaultDensity(t *testing.T) {
	in := sampleRamp(50_000)
	sc := Scenario{Kind: IQNaN, Seed: 3, Rate: 0.1}
	out := sc.Samples(in)
	bad := 0
	for _, v := range out {
		if math.IsNaN(real(v)) || math.IsInf(real(v), 0) ||
			math.IsNaN(imag(v)) || math.IsInf(imag(v), 0) {
			bad++
		}
	}
	if bad < 3000 || bad > 7000 {
		t.Errorf("poisoned %d/50000 samples, want ~5000", bad)
	}

	sil := Scenario{Kind: IQSilence, Seed: 3, Rate: 0.1}.Samples(in)
	zeros := 0
	for _, v := range sil {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 2000 {
		t.Errorf("silenced only %d samples", zeros)
	}
}

func TestChunksPreserveSamplesForOrderKinds(t *testing.T) {
	in := sampleRamp(100_000)
	for _, kind := range []Kind{None, SlowIO, Reorder} {
		sc := Scenario{Kind: kind, Seed: 11}
		total := 0
		for _, c := range sc.Chunks(in) {
			total += len(c)
		}
		if total != len(in) {
			t.Errorf("%s: chunks hold %d samples, want %d", kind, total, len(in))
		}
	}
	// Duplicate must re-send at least one chunk across a few seeds.
	dup := false
	for seed := int64(0); seed < 8 && !dup; seed++ {
		sc := Scenario{Kind: Duplicate, Seed: seed}
		total := 0
		for _, c := range sc.Chunks(in) {
			total += len(c)
		}
		dup = total > len(in)
	}
	if !dup {
		t.Error("duplicate scenario never duplicated a chunk in 8 seeds")
	}
	// Reorder must swap at least one adjacent pair across a few seeds.
	swapped := false
	for seed := int64(0); seed < 8 && !swapped; seed++ {
		sc := Scenario{Kind: Reorder, Seed: seed}
		chunks := sc.Chunks(in)
		off := 0
		for _, c := range chunks {
			if &c[0] != &in[off] {
				swapped = true
				break
			}
			off += len(c)
		}
	}
	if !swapped {
		t.Error("reorder scenario never swapped a pair in 8 seeds")
	}
}

func TestCorruptLine(t *testing.T) {
	line := []byte(`{"sf": 8, "cr": 4}` + "\n")
	sc := Scenario{Kind: CorruptHello, Seed: 5}
	a := sc.CorruptLine(line)
	b := sc.CorruptLine(line)
	if !bytes.Equal(a, b) {
		t.Error("corruption not deterministic")
	}
	if bytes.Equal(a, line) {
		t.Error("line not corrupted")
	}
	if a[len(a)-1] != '\n' {
		t.Error("trailing newline destroyed")
	}
	if bytes.ContainsRune(a[:len(a)-1], '\n') {
		t.Error("corruption split the line")
	}
	// Other kinds must not touch the line.
	if got := (Scenario{Kind: Truncate, Seed: 5}).CorruptLine(line); !bytes.Equal(got, line) {
		t.Error("non-corrupt kind modified the line")
	}
}

func TestWrapConnTruncate(t *testing.T) {
	client, server := pipeConns(t)
	fc := WrapConn(client, Scenario{Kind: Truncate, Seed: 1, TruncateAfter: 1000})

	payload := bytes.Repeat([]byte{0xAB}, 4096)
	n, err := fc.Write(payload)
	if n != 1000 {
		t.Errorf("wrote %d bytes before truncation, want 1000", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("truncation error = %v, want ErrInjected", err)
	}
	if _, err := fc.Write(payload); !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip write error = %v, want ErrInjected", err)
	}

	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatalf("server read: %v", err)
	}
	if len(got) != 1000 {
		t.Errorf("server received %d bytes, want exactly 1000", len(got))
	}
}

func TestWrapConnSlowIODeliversEverything(t *testing.T) {
	client, server := pipeConns(t)
	fc := WrapConn(client, Scenario{Kind: SlowIO, Seed: 2, BurstBytes: 256, Delay: 100 * time.Microsecond})

	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() {
		if _, err := fc.Write(payload); err != nil {
			done <- err
			return
		}
		done <- fc.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatal(werr)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("slow I/O corrupted the stream: got %d bytes", len(got))
	}
}

func TestWrapConnDisconnect(t *testing.T) {
	client, server := pipeConns(t)
	fc := WrapConn(client, Scenario{Kind: Disconnect, Seed: 3, DisconnectAfter: 500})

	if _, err := fc.Write(make([]byte, 2000)); !errors.Is(err, ErrInjected) {
		t.Errorf("disconnect error = %v, want ErrInjected", err)
	}
	// The server eventually sees the stream end — as an error (RST) or EOF
	// after at most the budgeted bytes.
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := io.Copy(io.Discard, server)
	if err == nil && n > 500 {
		t.Errorf("server read %d bytes cleanly, want ≤500 or an error", n)
	}
}

// TestWireBytesDeterministic serializes an IQ-faulted, chunked feed the way
// a client would and checks the exact wire bytes repeat across runs.
func TestWireBytesDeterministic(t *testing.T) {
	in := sampleRamp(30_000)
	render := func() []byte {
		sc := Scenario{Kind: IQSaturate, Seed: 9}
		var buf bytes.Buffer
		for _, chunk := range sc.Chunks(sc.Samples(in)) {
			var quad [4]byte
			for _, v := range chunk {
				binary.LittleEndian.PutUint16(quad[0:2], uint16(int16(real(v))))
				binary.LittleEndian.PutUint16(quad[2:4], uint16(int16(imag(v))))
				buf.Write(quad[:])
			}
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("wire bytes differ between identical scenario runs")
	}
}
