// Package faultinject is a deterministic, seedable fault-injection layer
// for exercising the gateway ingest path. A Scenario names one class of
// client misbehavior — truncated streams, slow or short I/O, duplicated and
// reordered sample chunks, mid-stream disconnects, corrupted hello bytes,
// and IQ-level signal faults (int16 saturation, NaN/Inf floats, silence
// gaps) — and every byte of injected damage is reproducible from
// (Kind, Seed): the same scenario against the same input produces the same
// wire bytes, so a chaos failure replays as a unit test.
//
// The package attacks from the client side: WrapConn decorates the
// client's net.Conn so its writes reach the server mangled, and the
// Samples/Chunks helpers mangle the IQ feed before it is serialized. The
// server-side hardening that each scenario exercises lives in
// internal/gateway and internal/stream.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"time"
)

// Kind names one fault class.
type Kind string

const (
	// None passes traffic through untouched (the control scenario).
	None Kind = "none"
	// Truncate ends the stream early: after a seed-chosen byte budget the
	// connection is closed mid-chunk, possibly splitting an int16 IQ quad.
	Truncate Kind = "truncate"
	// SlowIO delivers the same bytes in tiny bursts separated by delays —
	// a trickling client that exercises read deadlines.
	SlowIO Kind = "slow_io"
	// Duplicate re-sends some sample chunks immediately after themselves.
	Duplicate Kind = "duplicate"
	// Reorder swaps adjacent sample chunks before sending.
	Reorder Kind = "reorder"
	// Disconnect aborts the connection (RST, no half-close) mid-stream.
	Disconnect Kind = "disconnect"
	// CorruptHello flips bytes inside the opening JSON hello line.
	CorruptHello Kind = "corrupt_hello"
	// IQSaturate drives a fraction of samples to int16 full scale.
	IQSaturate Kind = "iq_saturate"
	// IQNaN replaces a fraction of samples with NaN/Inf components.
	IQNaN Kind = "iq_nan"
	// IQSilence zeroes seed-chosen gaps in the sample feed.
	IQSilence Kind = "iq_silence"
)

// Kinds lists every fault class, the order chaos tests cycle through.
var Kinds = []Kind{
	Truncate, SlowIO, Duplicate, Reorder, Disconnect,
	CorruptHello, IQSaturate, IQNaN, IQSilence,
}

// ErrInjected marks I/O failures the scenario itself caused, so callers can
// tell injected damage from unexpected breakage.
var ErrInjected = errors.New("faultinject: injected fault")

// Scenario is one reproducible fault configuration. The zero value of every
// knob selects a seed-derived default, so {Kind, Seed} alone is a complete
// scenario.
type Scenario struct {
	Kind Kind
	Seed int64

	// TruncateAfter / DisconnectAfter are wire-byte budgets for the
	// Truncate and Disconnect kinds (0 → seed-chosen in [64, 256 KiB)).
	TruncateAfter   int
	DisconnectAfter int
	// Delay is the pause between SlowIO bursts (0 → 2ms).
	Delay time.Duration
	// BurstBytes is the SlowIO write size (0 → seed-chosen in [16, 512)).
	BurstBytes int
	// Rate is the fault density for the IQ kinds: the fraction of samples
	// saturated/poisoned, or the fraction of the feed silenced
	// (0 → 0.05).
	Rate float64
	// CorruptBytes is how many hello bytes are flipped (0 → 3).
	CorruptBytes int
}

// String renders the scenario identity, the replay key for failures.
func (sc Scenario) String() string {
	return fmt.Sprintf("%s/seed=%d", sc.Kind, sc.Seed)
}

// rng returns the scenario's private deterministic stream. Every helper
// derives its randomness from a fresh rng so the order helpers are called
// in does not change any one helper's behavior.
func (sc Scenario) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(sc.Seed*1000003 + salt))
}

func (sc Scenario) byteBudget(explicit int, salt int64) int {
	if explicit > 0 {
		return explicit
	}
	return 64 + sc.rng(salt).Intn(1<<18-64)
}

func (sc Scenario) rate() float64 {
	if sc.Rate > 0 {
		return sc.Rate
	}
	return 0.05
}

// Samples applies the scenario's IQ-level faults to a copy of the feed.
// Non-IQ kinds return the input unchanged (no copy).
func (sc Scenario) Samples(in []complex128) []complex128 {
	switch sc.Kind {
	case IQSaturate, IQNaN, IQSilence:
	default:
		return in
	}
	out := make([]complex128, len(in))
	copy(out, in)
	rng := sc.rng(1)
	switch sc.Kind {
	case IQSaturate:
		// Full-scale int16 maps to ±32767/4096 ≈ ±8.0 after the gateway's
		// fixed-point conversion; drive well past it so clamping engages.
		for i := range out {
			if rng.Float64() < sc.rate() {
				out[i] = complex(64*sign(rng), 64*sign(rng))
			}
		}
	case IQNaN:
		poison := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
		for i := range out {
			if rng.Float64() < sc.rate() {
				out[i] = complex(poison[rng.Intn(len(poison))], poison[rng.Intn(len(poison))])
			}
		}
	case IQSilence:
		// Silence the feed in gaps whose total length is Rate of the feed.
		total := int(float64(len(out)) * sc.rate())
		for total > 0 {
			gap := 1 + rng.Intn(4096)
			if gap > total {
				gap = total
			}
			at := rng.Intn(len(out))
			end := at + gap
			if end > len(out) {
				end = len(out)
			}
			for i := at; i < end; i++ {
				out[i] = 0
			}
			total -= gap
		}
	}
	return out
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

// Chunks splits the feed into seed-sized chunks and applies the scenario's
// order faults: Duplicate re-sends ~10% of chunks, Reorder swaps ~10% of
// adjacent pairs. Other kinds get a plain deterministic chunking.
func (sc Scenario) Chunks(samples []complex128) [][]complex128 {
	rng := sc.rng(2)
	var chunks [][]complex128
	for off := 0; off < len(samples); {
		n := 4096 + rng.Intn(61440)
		if off+n > len(samples) {
			n = len(samples) - off
		}
		chunks = append(chunks, samples[off:off+n])
		off += n
	}
	switch sc.Kind {
	case Duplicate:
		var out [][]complex128
		for _, c := range chunks {
			out = append(out, c)
			if rng.Float64() < 0.1 {
				out = append(out, c)
			}
		}
		return out
	case Reorder:
		for i := 0; i+1 < len(chunks); i += 2 {
			if rng.Float64() < 0.3 {
				chunks[i], chunks[i+1] = chunks[i+1], chunks[i]
			}
		}
		return chunks
	default:
		return chunks
	}
}

// CorruptLine flips the scenario's byte budget inside line (the hello),
// avoiding the trailing newline so the line stays a single line. Only the
// CorruptHello kind corrupts; other kinds return the input unchanged.
func (sc Scenario) CorruptLine(line []byte) []byte {
	if sc.Kind != CorruptHello || len(line) == 0 {
		return line
	}
	out := make([]byte, len(line))
	copy(out, line)
	rng := sc.rng(3)
	n := sc.CorruptBytes
	if n == 0 {
		n = 3
	}
	span := len(out)
	if out[span-1] == '\n' {
		span--
	}
	if span == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		at := rng.Intn(span)
		bit := byte(1) << uint(rng.Intn(7)) // stay clear of bit 7: keep it ASCII-ish, and never form '\n' (0x0a→0x8a would)
		out[at] ^= bit
		if out[at] == '\n' {
			out[at] ^= bit // undo a flip that would split the line
		}
	}
	return out
}

// Conn wraps a client connection so that writes toward the server suffer
// the scenario's byte-level faults. Reads pass through untouched (replies
// are the server's to mangle). Close is idempotent.
type Conn struct {
	net.Conn
	sc      Scenario
	written int
	budget  int // Truncate/Disconnect wire budget; 0 when unused
	burst   int
	tripped bool
}

// WrapConn decorates c with the scenario's wire faults. Kinds without a
// wire-level component (IQ faults, Duplicate/Reorder, CorruptHello) pass
// writes through unchanged — their damage is injected before serialization.
func WrapConn(c net.Conn, sc Scenario) *Conn {
	fc := &Conn{Conn: c, sc: sc}
	switch sc.Kind {
	case Truncate:
		fc.budget = sc.byteBudget(sc.TruncateAfter, 4)
	case Disconnect:
		fc.budget = sc.byteBudget(sc.DisconnectAfter, 5)
	case SlowIO:
		fc.burst = sc.BurstBytes
		if fc.burst == 0 {
			fc.burst = 16 + sc.rng(6).Intn(496)
		}
	}
	return fc
}

// Write applies the wire faults. Once a budgeted fault trips, every later
// write fails with ErrInjected.
func (c *Conn) Write(p []byte) (int, error) {
	if c.tripped {
		return 0, ErrInjected
	}
	switch c.sc.Kind {
	case Truncate:
		return c.writeBudget(p, false)
	case Disconnect:
		return c.writeBudget(p, true)
	case SlowIO:
		return c.writeSlow(p)
	default:
		n, err := c.Conn.Write(p)
		c.written += n
		return n, err
	}
}

// writeBudget writes until the byte budget is spent, then ends the stream:
// a Truncate scenario closes cleanly (FIN — the server sees EOF mid-quad),
// a Disconnect scenario aborts (RST via SetLinger(0) when supported).
func (c *Conn) writeBudget(p []byte, abort bool) (int, error) {
	left := c.budget - c.written
	if left > len(p) {
		n, err := c.Conn.Write(p)
		c.written += n
		return n, err
	}
	n := 0
	if left > 0 {
		n, _ = c.Conn.Write(p[:left])
		c.written += n
	}
	c.tripped = true
	if abort {
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
	}
	c.Conn.Close()
	return n, fmt.Errorf("%w: %s after %d bytes", ErrInjected, c.sc.Kind, c.written)
}

// writeSlow trickles p in fixed bursts separated by the scenario delay.
func (c *Conn) writeSlow(p []byte) (int, error) {
	delay := c.sc.Delay
	if delay == 0 {
		delay = 2 * time.Millisecond
	}
	total := 0
	for off := 0; off < len(p); off += c.burst {
		end := off + c.burst
		if end > len(p) {
			end = len(p)
		}
		n, err := c.Conn.Write(p[off:end])
		total += n
		c.written += n
		if err != nil {
			return total, err
		}
		if end < len(p) {
			time.Sleep(delay)
		}
	}
	return total, nil
}
