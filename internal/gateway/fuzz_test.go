package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzHelloValidate replays arbitrary hello lines through the exact server
// ingest path: bounded line read, strict JSON decode (unknown members
// rejected), Validate. Properties: no panic, the line reader honors its
// cap, and an accepted hello survives a marshal round-trip still valid (so
// a logged/forwarded hello cannot turn invalid downstream).
func FuzzHelloValidate(f *testing.F) {
	f.Add([]byte(`{"sf": 8, "cr": 4}` + "\n"))
	f.Add([]byte(`{"sf": 99}` + "\n"))
	f.Add([]byte(`{"sf": 7, "cr": 1, "bandwidth_hz": 250000, "osf": 2, "use_bec": false, "trace": true}` + "\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte(`{"sf": 8, "bandwidth_hz": -1}` + "\n"))
	f.Add([]byte(`{"sf": 8, "osf": 1e308}` + "\n"))
	f.Add([]byte("\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n'})
	// Channelized hellos: every (channel, SF) shard corner, the typo'd
	// member the strict decoder must refuse, and out-of-range channels.
	f.Add([]byte(`{"sf": 8, "channel": 0}` + "\n"))
	f.Add([]byte(`{"sf": 12, "channel": 7}` + "\n"))
	f.Add([]byte(`{"sf": 7, "channel": 8}` + "\n"))
	f.Add([]byte(`{"sf": 7, "channel": -1}` + "\n"))
	f.Add([]byte(`{"sf": 8, "chanel": 3}` + "\n"))
	f.Add([]byte(`{"sf": 8, "channel": 3, "trace": true}{"sf": 9}` + "\n"))

	f.Fuzz(func(t *testing.T, line []byte) {
		br := bufio.NewReader(bytes.NewReader(line))
		raw, err := readLineLimit(br, maxHelloBytes)
		if len(raw) > maxHelloBytes {
			t.Fatalf("readLineLimit returned %d bytes past its %d cap", len(raw), maxHelloBytes)
		}
		if err != nil {
			return // oversized or unterminated line: rejected before JSON
		}
		h, err := ParseHello(raw)
		if err != nil {
			return // malformed or unknown-member hello: rejected with bad_hello
		}
		if err := h.Validate(); err != nil {
			return // out-of-range radio parameters: rejected with bad_hello
		}
		// Accepted: the hello must survive re-encoding still acceptable.
		out, err := json.Marshal(h)
		if err != nil {
			t.Fatalf("accepted hello %+v does not marshal: %v", h, err)
		}
		var h2 Hello
		if err := json.Unmarshal(out, &h2); err != nil {
			t.Fatalf("round-trip unmarshal of %s: %v", out, err)
		}
		if err := h2.Validate(); err != nil {
			t.Fatalf("hello %+v valid before round-trip, invalid after: %v", h, err)
		}
	})
}
