package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tnb/internal/metrics"
	"tnb/internal/trace"
)

func startServerWithRegistry(t *testing.T, reg *metrics.Registry) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &Server{Log: testLogger(t), Registry: reg}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	}
}

// TestGatewayConcurrentClientsMetrics streams two clients concurrently in
// small interleaved chunks (run under -race in CI), asserting each client
// receives reports for its own packets only and that the connection gauge
// returns to zero once both connections close.
func TestGatewayConcurrentClientsMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	addr, stop := startServerWithRegistry(t, reg)
	defer stop()
	met := NewMetrics(reg) // same instruments the server registered

	type clientRun struct {
		recs    []trace.TxRecord
		reports []Report
		err     error
	}
	runs := make([]clientRun, 2)
	var wg sync.WaitGroup
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, recs, p := buildGatewayTrace(t, 950+int64(i), 3)
			runs[i].recs = recs
			c, err := Dial(addr, Hello{SF: p.SF, CR: p.CR})
			if err != nil {
				runs[i].err = err
				return
			}
			// Small chunks so the two streams interleave on the server.
			samples := tr.Antennas[0]
			for off := 0; off < len(samples); off += 60_000 {
				end := off + 60_000
				if end > len(samples) {
					end = len(samples)
				}
				if err := c.Send(samples[off:end]); err != nil {
					runs[i].err = err
					return
				}
			}
			runs[i].reports, runs[i].err = c.Finish()
		}(i)
	}
	wg.Wait()

	for i, r := range runs {
		if r.err != nil {
			t.Fatalf("client %d: %v", i, r.err)
		}
		if len(r.reports) == 0 {
			t.Errorf("client %d received no reports", i)
		}
		// Every report must match one of this client's own transmissions —
		// connections must not leak each other's packets.
		other := runs[1-i].recs
		for _, rep := range r.reports {
			own := false
			for _, rec := range r.recs {
				if bytes.Equal(rep.Payload, rec.Payload) {
					own = true
					break
				}
			}
			for _, rec := range other {
				if bytes.Equal(rep.Payload, rec.Payload) {
					t.Errorf("client %d received client %d's packet", i, 1-i)
				}
			}
			if !own {
				t.Errorf("client %d received an unknown payload %x", i, rep.Payload)
			}
		}
	}

	if v := met.ConnectionsTotal.Value(); v != 2 {
		t.Errorf("connections total = %d, want 2", v)
	}
	if v := met.ConnectionsActive.Value(); v != 0 {
		t.Errorf("connections active = %d after close, want 0", v)
	}
	if met.BytesIn.Value() == 0 {
		t.Error("no bytes counted in")
	}
	var want uint64
	for _, r := range runs {
		want += uint64(len(r.reports))
	}
	if v := met.ReportsOut.Value(); v != want {
		t.Errorf("reports out = %d, want %d", v, want)
	}

	// The per-stage pipeline instruments must have fired for all four
	// stages via the connections' receivers.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"detect", "sigcalc", "thrive", "decode"} {
		needle := `tnb_stage_duration_seconds_count{stage="` + stage + `"}`
		out := sb.String()
		idx := strings.Index(out, needle)
		if idx < 0 {
			t.Errorf("stage %q missing from exposition", stage)
			continue
		}
		line := out[idx:]
		if nl := strings.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
		}
		if strings.HasSuffix(line, " 0") {
			t.Errorf("stage %q recorded no samples: %s", stage, line)
		}
	}
}

// TestGatewayHelloValidation sends out-of-range radio parameters and checks
// each is rejected with a one-line JSON error object and counted.
func TestGatewayHelloValidation(t *testing.T) {
	reg := metrics.NewRegistry()
	addr, stop := startServerWithRegistry(t, reg)
	defer stop()
	met := NewMetrics(reg)

	cases := []string{
		`{"sf": 5}`,                     // SF below range
		`{"sf": 13}`,                    // SF above range
		`{"sf": 8, "cr": 9}`,            // CR out of range
		`{"sf": 8, "bandwidth_hz": -1}`, // negative bandwidth
		`{"sf": 8, "osf": -2}`,          // negative OSF
		`this is not json`,              // malformed hello
	}
	for _, hello := range cases {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte(hello + "\n")); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		var resp map[string]string
		if err := json.NewDecoder(conn).Decode(&resp); err != nil {
			t.Errorf("hello %q: no JSON error reply: %v", hello, err)
		} else if resp["error"] == "" {
			t.Errorf("hello %q: empty error message: %v", hello, resp)
		}
		conn.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for met.HelloRejected.Value() != uint64(len(cases)) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if v := met.HelloRejected.Value(); v != uint64(len(cases)) {
		t.Errorf("hello rejected = %d, want %d", v, len(cases))
	}
}
