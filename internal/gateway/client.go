package gateway

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"
)

// Client streams IQ samples to a gateway and collects reports. Its Send
// and Finish surface the server's typed verdicts: an error reply on the
// wire comes back as a *GatewayError instead of an opaque io.EOF or
// connection reset.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	// br sits between conn and dec so reply bytes can be peeked at under
	// a deadline without poisoning the decoder: json.Decoder keeps the
	// first I/O error it sees forever, bufio.Reader clears it.
	br  *bufio.Reader
	dec *json.Decoder
}

// sendChunkBytes bounds each Send write so a mid-stream server verdict is
// noticed within one chunk instead of after megabytes of doomed writes.
const sendChunkBytes = 1 << 16

// Backoff is a bounded exponential retry policy with jitter. The zero
// value selects the defaults noted per field; Attempts ≤ 1 disables retry.
type Backoff struct {
	// Attempts is the total number of tries (0 → 4).
	Attempts int
	// Base is the delay before the second try (0 → 50ms); each further
	// try doubles it.
	Base time.Duration
	// Max caps the per-try delay (0 → 2s).
	Max time.Duration
	// Jitter spreads each delay uniformly over ±Jitter×delay
	// (0 → 0.25; negative disables jitter).
	Jitter float64
	// Seed drives the jitter stream, so retry schedules are reproducible
	// (0 → 1).
	Seed int64
}

func (b Backoff) attempts() int {
	if b.Attempts <= 0 {
		return 4
	}
	return b.Attempts
}

// delays returns the deterministic sleep schedule between tries.
func (b Backoff) delays() []time.Duration {
	base, max, jitter, seed := b.Base, b.Max, b.Jitter, b.Seed
	if base == 0 {
		base = 50 * time.Millisecond
	}
	if max == 0 {
		max = 2 * time.Second
	}
	if jitter == 0 {
		jitter = 0.25
	}
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, 0, b.attempts()-1)
	d := base
	for i := 1; i < b.attempts(); i++ {
		j := d
		if jitter > 0 {
			j = d + time.Duration((rng.Float64()*2-1)*jitter*float64(d))
		}
		if j < 0 {
			j = 0
		}
		out = append(out, j)
		d *= 2
		if d > max {
			d = max
		}
	}
	return out
}

// Dial connects to a gateway and sends the hello line.
func Dial(addr string, hello Hello) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}
	c.dec = json.NewDecoder(c.br)
	hb, err := json.Marshal(hello)
	if err != nil {
		conn.Close()
		return nil, err
	}
	hb = append(hb, '\n')
	if _, err := c.bw.Write(hb); err != nil {
		conn.Close()
		return nil, err
	}
	return c, c.bw.Flush()
}

// DialBackoff dials with bounded exponential backoff: transient transport
// errors and retryable server verdicts (overload shedding) are retried per
// the policy; a permanent verdict (e.g. bad_hello) fails immediately.
//
// Note the shed probe costs one connection: the server's verdict only
// arrives after the hello, so DialBackoff peeks for an early error reply
// after connecting.
func DialBackoff(addr string, hello Hello, b Backoff) (*Client, error) {
	delays := b.delays()
	var lastErr error
	for i := 0; i < b.attempts(); i++ {
		if i > 0 {
			time.Sleep(delays[i-1])
		}
		c, err := Dial(addr, hello)
		if err == nil {
			// A rejecting or shedding server answers the hello
			// immediately; surface that verdict now so callers can back
			// off instead of streaming into a closed door.
			if ge := c.peekErrorReply(200 * time.Millisecond); ge != nil {
				c.Close()
				err = ge
			} else {
				return c, nil
			}
		}
		lastErr = err
		var ge *GatewayError
		if errors.As(err, &ge) && !ge.Retryable() {
			return nil, err
		}
	}
	return nil, fmt.Errorf("gateway: dial %s: attempts exhausted: %w", addr, lastErr)
}

// peekErrorReply checks whether the server has already written an error
// line (rejection verdicts arrive right after the hello, before any
// report can exist). The probe peeks through the bufio layer so a quiet
// wire leaves the decoder clean.
func (c *Client) peekErrorReply(wait time.Duration) *GatewayError {
	c.conn.SetReadDeadline(time.Now().Add(wait))
	defer c.conn.SetReadDeadline(time.Time{})
	if _, err := c.br.Peek(1); err != nil {
		return nil // nothing pending: a healthy accept
	}
	var raw json.RawMessage
	if err := c.dec.Decode(&raw); err != nil {
		return nil
	}
	return parseErrorReply(raw)
}

// Send streams samples as int16 IQ in bounded chunks. A write failure is
// upgraded to the server's typed verdict when one is on the wire (e.g. the
// sample-limit reply that preceded the close).
func (c *Client) Send(samples []complex128) error {
	var quad [4]byte
	written := 0
	for _, v := range samples {
		binary16(quad[0:2], real(v))
		binary16(quad[2:4], imag(v))
		if _, err := c.bw.Write(quad[:]); err != nil {
			return c.upgradeWriteError(err)
		}
		written += 4
		if written >= sendChunkBytes {
			written = 0
			if err := c.bw.Flush(); err != nil {
				return c.upgradeWriteError(err)
			}
		}
	}
	return nil
}

// upgradeWriteError turns a broken-pipe style failure into the server's
// typed reply when one can be read within a short grace window. Report
// lines that raced ahead of the verdict are skipped; the connection is
// already failed, so they are not deliverable in order anyway.
func (c *Client) upgradeWriteError(orig error) error {
	c.conn.SetReadDeadline(time.Now().Add(time.Second))
	defer c.conn.SetReadDeadline(time.Time{})
	for {
		if _, err := c.br.Peek(1); err != nil {
			return orig
		}
		var raw json.RawMessage
		if err := c.dec.Decode(&raw); err != nil {
			return orig
		}
		if ge := parseErrorReply(raw); ge != nil {
			return ge
		}
	}
}

// Finish flushes, half-closes the write side and drains all reports until
// the server closes the connection. A server error line comes back as a
// *GatewayError alongside the reports received before it.
func (c *Client) Finish() ([]Report, error) {
	if err := c.bw.Flush(); err != nil {
		return nil, c.upgradeWriteError(err)
	}
	if tc, ok := c.conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil {
			return nil, err
		}
	}
	var out []Report
	for {
		var raw json.RawMessage
		if err := c.dec.Decode(&raw); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return out, err
		}
		if ge := parseErrorReply(raw); ge != nil {
			c.conn.Close()
			return out, ge
		}
		var r Report
		if err := json.Unmarshal(raw, &r); err != nil {
			return out, fmt.Errorf("gateway: malformed report line: %w", err)
		}
		out = append(out, r)
	}
	return out, c.conn.Close()
}

// Close releases the connection without draining reports.
func (c *Client) Close() error { return c.conn.Close() }

// Stream is the resilient one-shot exchange: dial with backoff, send all
// samples in chunks, finish, and — when the transport dies or the server
// sheds before any report arrived — redial and resend from the start
// (chunked resend), bounded by the same policy. A permanent server verdict
// (bad hello, sample limit) fails immediately.
func Stream(addr string, hello Hello, samples []complex128, b Backoff) ([]Report, error) {
	delays := b.delays()
	var lastErr error
	for i := 0; i < b.attempts(); i++ {
		if i > 0 {
			time.Sleep(delays[i-1])
		}
		reports, err := func() ([]Report, error) {
			c, err := DialBackoff(addr, hello, Backoff{Attempts: 1})
			if err != nil {
				return nil, err
			}
			if err := c.Send(samples); err != nil {
				c.Close()
				return nil, err
			}
			return c.Finish()
		}()
		if err == nil {
			return reports, nil
		}
		lastErr = err
		var ge *GatewayError
		if errors.As(err, &ge) && !ge.Retryable() {
			return reports, err
		}
		if len(reports) > 0 {
			// Progress was made; a resend would duplicate reports.
			return reports, err
		}
	}
	return nil, fmt.Errorf("gateway: stream to %s: attempts exhausted: %w", addr, lastErr)
}

// binary16 stores v as a little-endian fixed-point int16 (the wire format).
func binary16(dst []byte, v float64) {
	u := uint16(clampI16(v * 4096))
	dst[0] = byte(u)
	dst[1] = byte(u >> 8)
}

func clampI16(v float64) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	// NaN fails both comparisons; map it to silence so the wire encoding
	// is total (int16 cannot carry a NaN anyway).
	if v != v {
		return 0
	}
	return int16(v)
}
