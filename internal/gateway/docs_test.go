package gateway

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"tnb/internal/core"
	"tnb/internal/metrics"
	"tnb/internal/netserver"
	"tnb/internal/stream"
	"tnb/internal/tracestore"
)

// TestMetricsDocumented keeps the README metric table exact in both
// directions: every instrument the gateway process registers appears in
// the table, and the table names nothing that no longer exists. Labeled
// variants collapse to their base name, matching how the table documents
// `tnb_stage_duration_seconds{stage=...}` once for all stages.
func TestMetricsDocumented(t *testing.T) {
	reg := metrics.NewRegistry()
	// The full instrumentation stack of a running gateway process, plus the
	// netserver layer and one probe shard so the labeled per-shard
	// instruments register under their base names.
	NewMetrics(reg)
	stream.NewMetrics(reg)
	core.NewPipelineMetrics(reg)
	netserver.NewMetrics(reg)
	tracestore.NewMetrics(reg)
	NewShardMetrics(reg, ShardKey{Channel: 0, SF: 8})

	registered := map[string]bool{}
	for name := range reg.Snapshot() {
		registered[baseName(name)] = true
	}

	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range regexp.MustCompile("`(tnb_[a-z0-9_]+)[^`]*`").FindAllStringSubmatch(string(readme), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no tnb_* metric names found in README.md")
	}

	for _, name := range sortedKeys(registered) {
		if !documented[name] {
			t.Errorf("metric %s is registered but missing from the README table", name)
		}
	}
	for _, name := range sortedKeys(documented) {
		if !registered[name] {
			t.Errorf("README documents %s, which no gateway instrument registers", name)
		}
	}
}

// baseName strips a {label="..."} suffix and the _bucket/_count/_sum
// expansions a histogram may carry in snapshots.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	return name
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
