package gateway

import "tnb/internal/netserver"

// Uplinks is the shard → netserver hand-off: it converts one (gateway,
// channel, SF) shard's decoded reports into the netserver's ingest shape.
// AbsStart is rebased from samples to seconds against the shard's capture
// origin t0; the SF comes from the hello (reports do not echo it) and the
// channel from the report itself, so a consumer can funnel every shard of
// every gateway into a single Ingest stream and still satisfy the
// netserver's DevEUI-sharded routing. Appends to dst and returns it, so a
// caller merging many shards reuses one slice.
func Uplinks(dst []netserver.Uplink, reports []Report, gatewayID string, sf int, t0, sampleRate float64) []netserver.Uplink {
	for _, r := range reports {
		dst = append(dst, netserver.Uplink{
			GatewayID: gatewayID,
			Channel:   r.Channel,
			SF:        sf,
			TimeSec:   t0 + r.AbsStart/sampleRate,
			SNRdB:     r.SNRdB,
			Payload:   r.Payload,
		})
	}
	return dst
}
