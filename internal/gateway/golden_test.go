package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tnb/internal/lora"
	"tnb/internal/trace"
)

// updateGolden regenerates the committed traces and expectations:
//
//	go test ./internal/gateway -run TestGatewayGolden -update
var updateGolden = flag.Bool("update", false, "regenerate golden IQ traces and expected reports")

// goldenCase pins one committed trace. The IQ bytes and the expected
// report lines live under testdata/golden/; the builder parameters here
// only matter in -update mode.
type goldenCase struct {
	name string
	seed int64
	n    int // packets scheduled in the trace
	sf   int
	osf  int
	dur  float64
}

var goldenCases = []goldenCase{
	// Two clean packets, the everyday case.
	{name: "sf8_two_packets", seed: 940, n: 2, sf: 8, osf: 2, dur: 0.35},
	// Three packets in the same span: collisions resolved by peak
	// matching, the paper's core scenario.
	{name: "sf8_collision", seed: 941, n: 3, sf: 8, osf: 2, dur: 0.4},
}

// TestGatewayGolden replays the committed IQ traces through a live gateway
// at several worker-pool widths and requires the emitted report stream to
// match the committed expectation byte for byte. Any drift in the DSP
// chain, the BEC decoder, report field encoding, or worker scheduling
// determinism fails here first.
func TestGatewayGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			iqPath := filepath.Join("testdata", "golden", tc.name+".iq")
			wantPath := filepath.Join("testdata", "golden", tc.name+".json")

			if *updateGolden {
				writeGolden(t, tc, iqPath, wantPath)
			}

			f, err := os.Open(iqPath)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			p := lora.MustParams(tc.sf, 4, 125e3, tc.osf)
			tr, err := trace.ReadIQ16(f, p.SampleRate())
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(wantPath)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}

			for _, workers := range []int{1, 2, 4} {
				got := decodeGolden(t, tc, workers, tr.Antennas[0])
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: report stream drifted from %s\ngot:\n%swant:\n%s",
						workers, wantPath, got, want)
				}
			}
		})
	}
}

// decodeGolden runs one trace through a loopback gateway with the given
// worker-pool width and returns the canonical serialization of its reports.
func decodeGolden(t *testing.T, tc goldenCase, workers int, samples []complex128) []byte {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Log: testLogger(t), Workers: workers}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("golden server did not stop")
		}
	}()

	c, err := Dial(ln.Addr().String(), Hello{SF: tc.sf, CR: 4, OSF: tc.osf})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(samples); err != nil {
		t.Fatal(err)
	}
	reports, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return marshalReports(t, reports)
}

// marshalReports renders reports exactly as committed: one JSON line each.
func marshalReports(t *testing.T, reports []Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range reports {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// writeGolden rebuilds one committed trace and its expectation from the
// deterministic builder. The expectation is produced by the serial decode
// (workers=1); the test then proves the parallel widths agree with it.
func writeGolden(t *testing.T, tc goldenCase, iqPath, wantPath string) {
	t.Helper()
	p := lora.MustParams(tc.sf, 4, 125e3, tc.osf)
	rng := rand.New(rand.NewSource(tc.seed))
	b := trace.NewBuilder(p, tc.dur, 1, rng)
	starts := b.ScheduleUniform(tc.n, 14)
	for i, s := range starts {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := b.AddPacket(i, 0, payload, s, 10, -3000+float64(i)*1500, nil); err != nil {
			t.Fatal(err)
		}
	}
	tr, recs := b.Build()
	if err := os.MkdirAll(filepath.Dir(iqPath), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(iqPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteIQ16(f, tr); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Decode what was just written (not the in-memory float trace): the
	// expectation must match the quantized bytes future runs will read.
	rf, err := os.Open(iqPath)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := trace.ReadIQ16(rf, p.SampleRate())
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := decodeGolden(t, tc, 1, rt.Antennas[0])
	if err := os.WriteFile(wantPath, got, 0o644); err != nil {
		t.Fatal(err)
	}

	// Sanity: an expectation that decodes nothing would freeze a broken
	// baseline into the repo.
	var reports int
	for _, line := range bytes.Split(bytes.TrimSpace(got), []byte("\n")) {
		if len(line) > 0 {
			reports++
		}
	}
	if reports < tc.n-1 {
		t.Fatalf("golden %s decoded %d/%d packets; pick a friendlier seed", tc.name, reports, tc.n)
	}
	fmt.Printf("golden %s: %d samples, %d/%d packets decoded\n",
		tc.name, len(rt.Antennas[0]), reports, len(recs))
}
