package gateway

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"tnb/internal/faultinject"
	"tnb/internal/lora"
	"tnb/internal/metrics"
	"tnb/internal/obs"
	"tnb/internal/trace"
)

// startFaultServer boots a server with a private registry and tracer so
// each test reads exactly what its own connections recorded. mutate tunes
// the hardening knobs before the listener starts.
func startFaultServer(t *testing.T, mutate func(*Server)) (addr string, met *Metrics, tracer *obs.Tracer, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	tracer = obs.New(obs.Options{})
	srv := &Server{Log: testLogger(t), Registry: reg, Tracer: tracer}
	if mutate != nil {
		mutate(srv)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), NewMetrics(reg), tracer, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("server did not stop")
		}
	}
}

// quadBytes serializes samples in the int16 IQ wire layout.
func quadBytes(samples []complex128) []byte {
	out := make([]byte, 0, 4*len(samples))
	var quad [4]byte
	for _, v := range samples {
		binary.LittleEndian.PutUint16(quad[0:2], uint16(clampI16(real(v)*4096)))
		binary.LittleEndian.PutUint16(quad[2:4], uint16(clampI16(imag(v)*4096)))
		out = append(out, quad[:]...)
	}
	return out
}

// runScenario drives one faulty client end to end: hello (optionally
// corrupted), the IQ stream mangled per the scenario, half-close, drain.
// Transport errors are expected outcomes, never test failures; the
// server's replies and any typed verdict are returned for assertions.
func runScenario(t *testing.T, addr string, sc faultinject.Scenario, samples []complex128, hello Hello) (reports []Report, verdict *GatewayError, err error) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	defer raw.Close()
	fc := faultinject.WrapConn(raw, sc)

	hb, err := json.Marshal(hello)
	if err != nil {
		t.Fatal(err)
	}
	hb = append(hb, '\n')
	if _, err := fc.Write(sc.CorruptLine(hb)); err != nil {
		return nil, nil, err
	}

	wire := quadBytes(nil)
	for _, chunk := range sc.Chunks(sc.Samples(samples)) {
		wire = append(wire, quadBytes(chunk)...)
	}
	var sendErr error
	for off := 0; off < len(wire); off += 1 << 16 {
		end := off + 1<<16
		if end > len(wire) {
			end = len(wire)
		}
		if _, sendErr = fc.Write(wire[off:end]); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		if tc, ok := raw.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}

	raw.SetReadDeadline(time.Now().Add(20 * time.Second))
	dec := json.NewDecoder(raw)
	for {
		var rawMsg json.RawMessage
		if derr := dec.Decode(&rawMsg); derr != nil {
			if errors.Is(derr, io.EOF) {
				return reports, verdict, sendErr
			}
			return reports, verdict, derr
		}
		if ge := parseErrorReply(rawMsg); ge != nil {
			verdict = ge
			continue
		}
		var r Report
		if uerr := json.Unmarshal(rawMsg, &r); uerr == nil {
			reports = append(reports, r)
		}
	}
}

// soakTrace is a shorter trace than the e2e one, shared by the fault and
// chaos tests so a dozen scenario runs stay fast.
func soakTrace(t *testing.T, seed int64, n int) (*trace.Trace, []trace.TxRecord) {
	t.Helper()
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(p, 1.0, 1, rng)
	starts := b.ScheduleUniform(n, 14)
	for i, s := range starts {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := b.AddPacket(i, 0, payload, s, 10, -3000+float64(i)*1500, nil); err != nil {
			t.Fatal(err)
		}
	}
	tr, recs := b.Build()
	return tr, recs
}

// payloadSet indexes the transmitted payloads for membership checks.
func payloadSet(recs []trace.TxRecord) map[string]bool {
	set := make(map[string]bool, len(recs))
	for _, r := range recs {
		set[string(r.Payload)] = true
	}
	return set
}

// TestGatewayFaultTruncation cuts the stream mid-quad three quarters in:
// packets before the cut must still decode, the tail is dropped cleanly,
// and the connection terminates without an error verdict.
func TestGatewayFaultTruncation(t *testing.T) {
	addr, met, _, stop := startFaultServer(t, nil)
	defer stop()

	tr, _ := soakTrace(t, 910, 3)
	wireLen := 4 * len(tr.Antennas[0])
	sc := faultinject.Scenario{Kind: faultinject.Truncate, Seed: 1,
		TruncateAfter: wireLen*3/4 + 2} // +2 splits an IQ quad
	// The fault closes the client's own socket at the cut, so the replies
	// are unreadable client-side; the server's metrics carry the proof.
	_, verdict, _ := runScenario(t, addr, sc, tr.Antennas[0], Hello{SF: 8, CR: 4})

	if verdict != nil {
		t.Errorf("truncation drew an error verdict: %v", verdict)
	}
	waitCounter(t, met.ReportsOut, 1) // packets before the cut still decode
	waitCounter(t, met.BytesIn, uint64(wireLen/2))
	waitGauge(t, met.ConnectionsActive, 0)
}

// TestGatewayFaultSlowIO trickles bytes slower than the read deadline and
// checks the stall is cut off, counted, and attributed.
func TestGatewayFaultSlowIO(t *testing.T) {
	addr, met, tracer, stop := startFaultServer(t, func(s *Server) {
		s.ReadTimeout = 150 * time.Millisecond
	})
	defer stop()

	tr, _ := soakTrace(t, 911, 2)
	sc := faultinject.Scenario{Kind: faultinject.SlowIO, Seed: 2,
		BurstBytes: 64, Delay: 400 * time.Millisecond}
	// Only the first few bursts matter; the server must hang up first.
	runScenario(t, addr, sc, tr.Antennas[0][:20_000], Hello{SF: 8, CR: 4})

	waitCounter(t, met.ReadTimeouts, 1)
	if n := tracer.ConnCounts()[obs.ConnReadTimeout]; n == 0 {
		t.Error("read timeout not attributed in obs conn events")
	}
	waitGauge(t, met.ConnectionsActive, 0)
}

// TestGatewayFaultDuplicateReorder replays and swaps sample chunks. The
// server must stay live, and everything it does decode must be a payload
// that was really transmitted.
func TestGatewayFaultDuplicateReorder(t *testing.T) {
	addr, met, _, stop := startFaultServer(t, nil)
	defer stop()

	tr, recs := soakTrace(t, 912, 3)
	sent := payloadSet(recs)
	for _, kind := range []faultinject.Kind{faultinject.Duplicate, faultinject.Reorder} {
		sc := faultinject.Scenario{Kind: kind, Seed: 3}
		reports, verdict, err := runScenario(t, addr, sc, tr.Antennas[0], Hello{SF: 8, CR: 4})
		if err != nil {
			t.Errorf("%s: transport error: %v", kind, err)
		}
		if verdict != nil {
			t.Errorf("%s: unexpected verdict: %v", kind, verdict)
		}
		for _, r := range reports {
			if !sent[string(r.Payload)] {
				t.Errorf("%s: decoded a payload nobody sent: %x", kind, r.Payload)
			}
		}
		t.Logf("%s: %d reports", kind, len(reports))
	}
	if met.ReportsOut.Value() == 0 {
		t.Error("no reports emitted across duplicate/reorder runs")
	}
	waitGauge(t, met.ConnectionsActive, 0)
}

// TestGatewayFaultDisconnect aborts the transport mid-stream (RST) and
// checks the death is counted as a client abort, not a crash.
func TestGatewayFaultDisconnect(t *testing.T) {
	addr, met, tracer, stop := startFaultServer(t, nil)
	defer stop()

	tr, _ := soakTrace(t, 913, 2)
	sc := faultinject.Scenario{Kind: faultinject.Disconnect, Seed: 4, DisconnectAfter: 300_000}
	runScenario(t, addr, sc, tr.Antennas[0], Hello{SF: 8, CR: 4})

	waitCounter(t, met.ClientAborts, 1)
	if n := tracer.ConnCounts()[obs.ConnClientAbort]; n == 0 {
		t.Error("client abort not attributed in obs conn events")
	}
	waitGauge(t, met.ConnectionsActive, 0)
}

// TestGatewayFaultCorruptHello flips bytes in the hello line and checks
// the typed bad_hello verdict, the metric, and the obs attribution.
func TestGatewayFaultCorruptHello(t *testing.T) {
	addr, met, tracer, stop := startFaultServer(t, nil)
	defer stop()

	// Across several seeds every corrupted hello must either draw a typed
	// bad_hello verdict or — if the flips happened to keep the JSON valid
	// and in range — decode as a normal session. Nothing else.
	rejections := 0
	for seed := int64(0); seed < 5; seed++ {
		sc := faultinject.Scenario{Kind: faultinject.CorruptHello, Seed: seed}
		_, verdict, _ := runScenario(t, addr, sc, nil, Hello{SF: 8, CR: 4})
		if verdict != nil {
			if verdict.Code != CodeBadHello {
				t.Errorf("seed %d: verdict code %q, want %q", seed, verdict.Code, CodeBadHello)
			}
			rejections++
		}
	}
	if rejections == 0 {
		t.Fatal("no corrupted hello drew a rejection in 5 seeds")
	}
	waitCounter(t, met.HelloRejected, uint64(rejections))
	if n := tracer.ConnCounts()[obs.ConnHelloRejected]; n != uint64(rejections) {
		t.Errorf("obs hello_rejected = %d, want %d", n, rejections)
	}
}

// TestGatewayFaultIQSaturation drives samples to full scale. The
// fixed-point wire clamps them; the server must survive and anything it
// decodes must be genuine.
func TestGatewayFaultIQSaturation(t *testing.T) {
	addr, met, _, stop := startFaultServer(t, nil)
	defer stop()

	tr, recs := soakTrace(t, 914, 3)
	sc := faultinject.Scenario{Kind: faultinject.IQSaturate, Seed: 5, Rate: 0.02}
	reports, verdict, err := runScenario(t, addr, sc, tr.Antennas[0], Hello{SF: 8, CR: 4})
	if err != nil {
		t.Errorf("transport error: %v", err)
	}
	if verdict != nil {
		t.Errorf("unexpected verdict: %v", verdict)
	}
	sent := payloadSet(recs)
	for _, r := range reports {
		if !sent[string(r.Payload)] {
			t.Errorf("bogus payload from saturated stream: %x", r.Payload)
		}
	}
	if met.BytesIn.Value() == 0 {
		t.Error("no bytes counted")
	}
	waitGauge(t, met.ConnectionsActive, 0)
}

// TestGatewayFaultIQNaN checks the NaN/Inf fault class at the gateway
// boundary: the int16 wire format cannot carry non-finite values (the
// client encoder maps NaN to silence), so the server-side non-finite
// counter must stay at zero while the stream still decodes. The
// stream-layer sanitizer itself is covered in internal/stream.
func TestGatewayFaultIQNaN(t *testing.T) {
	reg := metrics.NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Log: testLogger(t), Registry: reg}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() { cancel(); <-done }()

	tr, _ := soakTrace(t, 915, 2)
	sc := faultinject.Scenario{Kind: faultinject.IQNaN, Seed: 6, Rate: 0.01}
	_, verdict, err := runScenario(t, ln.Addr().String(), sc, tr.Antennas[0], Hello{SF: 8, CR: 4})
	if err != nil {
		t.Errorf("transport error: %v", err)
	}
	if verdict != nil {
		t.Errorf("unexpected verdict: %v", verdict)
	}
	smet := streamMetricsOn(reg)
	if v := smet.NonFinite.Value(); v != 0 {
		t.Errorf("non-finite samples crossed the int16 wire: %d", v)
	}
}

// TestGatewayFaultIQSilence blanks gaps in the feed; the server must ride
// through them and keep the connection accountable.
func TestGatewayFaultIQSilence(t *testing.T) {
	addr, met, _, stop := startFaultServer(t, nil)
	defer stop()

	tr, recs := soakTrace(t, 916, 3)
	sc := faultinject.Scenario{Kind: faultinject.IQSilence, Seed: 7, Rate: 0.2}
	reports, verdict, err := runScenario(t, addr, sc, tr.Antennas[0], Hello{SF: 8, CR: 4})
	if err != nil {
		t.Errorf("transport error: %v", err)
	}
	if verdict != nil {
		t.Errorf("unexpected verdict: %v", verdict)
	}
	sent := payloadSet(recs)
	for _, r := range reports {
		if !sent[string(r.Payload)] {
			t.Errorf("bogus payload from silenced stream: %x", r.Payload)
		}
	}
	waitGauge(t, met.ConnectionsActive, 0)
}

// TestGatewaySampleLimit streams past the per-connection cap and checks
// the typed sample_limit verdict, the metric, and the obs event.
func TestGatewaySampleLimit(t *testing.T) {
	const sampleCap = 200_000
	addr, met, tracer, stop := startFaultServer(t, func(s *Server) {
		s.MaxSamplesPerConn = sampleCap
	})
	defer stop()

	tr, _ := soakTrace(t, 917, 2)
	c, err := Dial(addr, Hello{SF: 8, CR: 4})
	if err != nil {
		t.Fatal(err)
	}
	sendErr := c.Send(tr.Antennas[0]) // well past the cap
	_, finErr := c.Finish()

	var ge *GatewayError
	if !errors.As(sendErr, &ge) && !errors.As(finErr, &ge) {
		t.Fatalf("no typed verdict: send=%v finish=%v", sendErr, finErr)
	}
	if ge.Code != CodeSampleLimit {
		t.Errorf("verdict code %q, want %q", ge.Code, CodeSampleLimit)
	}
	waitCounter(t, met.SampleLimit, 1)
	if n := tracer.ConnCounts()[obs.ConnSampleLimit]; n != 1 {
		t.Errorf("obs sample_limit = %d, want 1", n)
	}
	waitGauge(t, met.ConnectionsActive, 0)
}

// TestGatewayOverloadShed fills the connection budget and checks the
// surplus client gets a retryable typed verdict, then succeeds once the
// budget frees up via DialBackoff.
func TestGatewayOverloadShed(t *testing.T) {
	addr, met, tracer, stop := startFaultServer(t, func(s *Server) {
		s.MaxConns = 1
	})
	defer stop()

	blocker, err := Dial(addr, Hello{SF: 8, CR: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Give the server a beat to register the blocker before probing.
	waitGaugeAtLeast(t, met.ConnectionsActive, 1)

	_, err = DialBackoff(addr, Hello{SF: 8, CR: 4}, Backoff{Attempts: 1})
	var ge *GatewayError
	if !errors.As(err, &ge) {
		t.Fatalf("shed dial error = %v, want *GatewayError", err)
	}
	if ge.Code != CodeOverloaded || !ge.Retryable() {
		t.Errorf("verdict = %+v, want retryable %s", ge, CodeOverloaded)
	}
	waitCounter(t, met.OverloadShed, 1)
	if n := tracer.ConnCounts()[obs.ConnOverloadShed]; n != 1 {
		t.Errorf("obs overload_shed = %d, want 1", n)
	}

	// Free the budget mid-backoff: the retrying dial must get through.
	go func() {
		time.Sleep(120 * time.Millisecond)
		blocker.Close()
	}()
	c, err := DialBackoff(addr, Hello{SF: 8, CR: 4}, Backoff{Attempts: 5, Base: 80 * time.Millisecond, Seed: 42})
	if err != nil {
		t.Fatalf("backoff dial never got through: %v", err)
	}
	c.Close()
}

// TestGatewayBadHelloTyped checks the client surfaces a hello rejection as
// a typed, non-retryable *GatewayError at dial time.
func TestGatewayBadHelloTyped(t *testing.T) {
	addr, _, _, stop := startFaultServer(t, nil)
	defer stop()

	start := time.Now()
	_, err := DialBackoff(addr, Hello{SF: 99}, Backoff{Attempts: 5, Base: 300 * time.Millisecond})
	var ge *GatewayError
	if !errors.As(err, &ge) {
		t.Fatalf("bad hello error = %v, want *GatewayError", err)
	}
	if ge.Code != CodeBadHello || ge.Retryable() {
		t.Errorf("verdict = %+v, want non-retryable %s", ge, CodeBadHello)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("non-retryable verdict burned the backoff schedule (%v)", elapsed)
	}
}

// TestGatewayStreamRetries exercises the chunked-resend path: the first
// exchange dies at the connection budget, the retry succeeds end to end.
func TestGatewayStreamRetries(t *testing.T) {
	addr, met, _, stop := startFaultServer(t, func(s *Server) {
		s.MaxConns = 1
	})
	defer stop()

	blocker, err := Dial(addr, Hello{SF: 8, CR: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitGaugeAtLeast(t, met.ConnectionsActive, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		blocker.Close()
	}()

	tr, recs := soakTrace(t, 918, 2)
	reports, err := Stream(addr, Hello{SF: 8, CR: 4}, tr.Antennas[0],
		Backoff{Attempts: 6, Base: 100 * time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatalf("stream with retry failed: %v", err)
	}
	if len(reports) == 0 {
		t.Fatal("retry exchange decoded nothing")
	}
	sent := payloadSet(recs)
	for _, r := range reports {
		if !sent[string(r.Payload)] {
			t.Errorf("unknown payload %x", r.Payload)
		}
	}
}

// TestGatewayShutdownDrains begins a stream, shuts the server down behind
// it, and checks the in-flight connection still completes its decodes.
func TestGatewayShutdownDrains(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv := &Server{Log: testLogger(t), Registry: reg}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), ln) }()

	tr, recs := soakTrace(t, 919, 2)
	c, err := Dial(ln.Addr().String(), Hello{SF: 8, CR: 4})
	if err != nil {
		t.Fatal(err)
	}
	// First half now, then shut down, then the rest: the handler must be
	// allowed to finish the whole exchange.
	samples := tr.Antennas[0]
	if err := c.Send(samples[:len(samples)/2]); err != nil {
		t.Fatal(err)
	}
	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	// New connections must be refused once shutdown began.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, derr := net.DialTimeout("tcp", ln.Addr().String(), time.Second); derr != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Error("listener still accepting after Shutdown")
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Send(samples[len(samples)/2:]); err != nil {
		t.Fatalf("in-flight send broken by shutdown: %v", err)
	}
	reports, err := c.Finish()
	if err != nil {
		t.Fatalf("in-flight finish broken by shutdown: %v", err)
	}
	if len(reports) == 0 {
		t.Error("drained connection decoded nothing")
	}
	sent := payloadSet(recs)
	for _, r := range reports {
		if !sent[string(r.Payload)] {
			t.Errorf("unknown payload %x", r.Payload)
		}
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown = %v, want nil (drained)", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve = %v, want nil", err)
	}
}

// TestGatewayShutdownForceCloses checks the escalation: a wedged client
// that never finishes is force-closed when the drain budget expires.
func TestGatewayShutdownForceCloses(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Log: testLogger(t)}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte(`{"sf": 8}` + "\n")) // valid hello, then wedge

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown = %v, want DeadlineExceeded", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("Serve did not return after forced shutdown")
	}
}

// --- small polling helpers -------------------------------------------------

func waitCounter(t *testing.T, c *metrics.Counter, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Value() < want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if v := c.Value(); v < want {
		t.Errorf("counter = %d, want ≥ %d", v, want)
	}
}

func waitGauge(t *testing.T, g *metrics.Gauge, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.Value() != want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if v := g.Value(); v != want {
		t.Errorf("gauge = %d, want %d", v, want)
	}
}

func waitGaugeAtLeast(t *testing.T, g *metrics.Gauge, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.Value() < want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if v := g.Value(); v < want {
		t.Errorf("gauge = %d, want ≥ %d", v, want)
	}
}

// streamMetricsOn returns the streamer instruments registered on reg (the
// registry get-or-create contract makes this the server's own handles).
func streamMetricsOn(reg *metrics.Registry) *streamMetricsView {
	return &streamMetricsView{NonFinite: reg.Counter("tnb_stream_nonfinite_samples_total")}
}

type streamMetricsView struct {
	NonFinite *metrics.Counter
}
