package gateway

import (
	"encoding/json"
	"fmt"
)

// Error codes carried in the server's one-line JSON error replies. Clients
// switch on the code, not the message.
const (
	// CodeBadHello: the opening hello line was unparseable or its radio
	// parameters were out of range.
	CodeBadHello = "bad_hello"
	// CodeOverloaded: the server is at its connection budget; retry with
	// backoff.
	CodeOverloaded = "overloaded"
	// CodeSampleLimit: the connection exceeded the per-connection sample
	// cap and was closed.
	CodeSampleLimit = "sample_limit"
	// CodeStreamOverflow: the decode buffer hit its hard ceiling.
	CodeStreamOverflow = "stream_overflow"
	// CodeShardOverload: the (channel, SF) decode shard's queue stayed full
	// past the grace period; retry with backoff or move to another channel.
	CodeShardOverload = "shard_overload"
)

// GatewayError is the server's typed one-line JSON error reply, and the
// error type the Client returns when it receives one. Retryable reports
// whether a fresh attempt may succeed.
type GatewayError struct {
	Code    string `json:"code"`
	Message string `json:"error"`
}

func (e *GatewayError) Error() string {
	return fmt.Sprintf("gateway: %s: %s", e.Code, e.Message)
}

// Retryable reports whether the verdict is a transient server condition
// (overload shedding at the connection budget or at a shard queue) rather
// than a client mistake.
func (e *GatewayError) Retryable() bool {
	return e.Code == CodeOverloaded || e.Code == CodeShardOverload
}

// parseErrorReply recognizes a server error line among report lines: any
// JSON object with a non-empty "error" member. Returns nil for reports.
func parseErrorReply(raw []byte) *GatewayError {
	var ge GatewayError
	if err := json.Unmarshal(raw, &ge); err != nil || ge.Message == "" {
		return nil
	}
	return &ge
}
