package gateway

import (
	"context"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"tnb/internal/faultinject"
	"tnb/internal/metrics"
)

// TestGatewayChaosSoak hammers one server with concurrent clients cycling
// through every fault scenario class, then asserts the three properties a
// gateway must keep under abuse: no panic, no goroutine leak, no wedged
// connection. Scenario seeds are deterministic, so a failure here replays.
//
// -short trims the client and round counts to CI scale; the full matrix
// runs in the default mode.
func TestGatewayChaosSoak(t *testing.T) {
	clients, rounds := 6, 3
	if testing.Short() {
		clients, rounds = 4, 2
	}

	before := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv := &Server{
		Log:      testLogger(t),
		Registry: reg,
		// Aggressive knobs so the soak exercises every rejection path:
		// stalls are cut quickly and long streams hit the cap.
		ReadTimeout:       250 * time.Millisecond,
		MaxSamplesPerConn: 3_000_000,
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()
	addr := ln.Addr().String()

	// One shared trace: the soak is about transport chaos, not decode
	// variety, and building IQ is the expensive part.
	tr, _ := soakTrace(t, 930, 2)
	samples := tr.Antennas[0]

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				kind := faultinject.Kinds[(client*rounds+round)%len(faultinject.Kinds)]
				sc := faultinject.Scenario{
					Kind: kind,
					Seed: int64(1000 + client*17 + round),
					// Keep slow-IO stalls shorter than the watchdog but
					// longer than the server's read deadline.
					Delay:      400 * time.Millisecond,
					BurstBytes: 4096,
				}
				// Outcomes are scenario-dependent (verdict, transport
				// error, or clean decode); the soak only demands that every
				// exchange terminates.
				runScenario(t, addr, sc, samples, Hello{SF: 8, CR: 4})
			}
		}(i)
	}

	// Wedge watchdog: every faulty exchange must terminate.
	soakDone := make(chan struct{})
	go func() { wg.Wait(); close(soakDone) }()
	select {
	case <-soakDone:
	case <-time.After(120 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("chaos soak wedged; goroutines:\n%s", buf[:runtime.Stack(buf, true)])
	}

	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not stop after the soak")
	}

	// Every connection must be accounted for...
	met := NewMetrics(reg)
	waitGauge(t, met.ConnectionsActive, 0)
	if got, want := met.ConnectionsTotal.Value(), uint64(clients*rounds); got < want {
		t.Errorf("connections_total = %d, want ≥ %d", got, want)
	}

	// ...and every goroutine must be gone. Decode workers and TCP handlers
	// wind down asynchronously, so poll with a small tolerance.
	deadline := time.Now().Add(10 * time.Second)
	var after int
	for {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before+3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if after > before+3 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before, %d after\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}
