package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"tnb/internal/lora"
	"tnb/internal/metrics"
	"tnb/internal/trace"
)

// buildShardTrace renders a short two-packet trace at the golden-test
// radio parameters (SF 8, OSF 2), cheap enough to decode many times.
func buildShardTrace(t *testing.T, seed int64) ([]complex128, [][]uint8, lora.Params) {
	t.Helper()
	p := lora.MustParams(8, 4, 125e3, 2)
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(p, 0.35, 1, rng)
	starts := b.ScheduleUniform(2, 14)
	payloads := make([][]uint8, 0, len(starts))
	for i, s := range starts {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := b.AddPacket(i, 0, payload, s, 10, -3000+float64(i)*1500, nil); err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, payload)
	}
	tr, _ := b.Build()
	return tr.Antennas[0], payloads, p
}

// TestShardRoutingChannels drives two connections on different channels
// through one server and checks that each lands on its own (channel, SF)
// shard, that reports echo the hello's channel, and that the per-shard
// instruments appear under the shard label.
func TestShardRoutingChannels(t *testing.T) {
	reg := metrics.NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Log: testLogger(t), Registry: reg}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not stop")
		}
	}()

	samples, payloads, p := buildShardTrace(t, 940)
	for _, ch := range []int{1, 3} {
		c, err := Dial(ln.Addr().String(), Hello{SF: p.SF, CR: p.CR, OSF: p.OSF, Channel: ch})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Send(samples); err != nil {
			t.Fatal(err)
		}
		reports, err := c.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) < len(payloads)-1 {
			t.Fatalf("channel %d: decoded %d/%d packets", ch, len(reports), len(payloads))
		}
		for _, r := range reports {
			if r.Channel != ch {
				t.Errorf("report on channel %d carries channel %d", ch, r.Channel)
			}
		}
	}

	if got := srv.ShardCount(); got != 2 {
		t.Errorf("ShardCount = %d, want 2 (channels 1 and 3 at SF 8)", got)
	}
	m := NewMetrics(reg)
	if m.ShardsActive.Value() != 2 {
		t.Errorf("shards_active = %d, want 2", m.ShardsActive.Value())
	}
	if m.ShardBatches.Value() == 0 {
		t.Error("aggregate shard batch counter never moved")
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		`tnb_gateway_shard_batches_by_shard_total{shard="c1_sf8"}`,
		`tnb_gateway_shard_batches_by_shard_total{shard="c3_sf8"}`,
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("per-shard metric %s not registered", name)
		}
	}
}

// TestShardOverload exercises the bounded queue directly: with the single
// worker wedged and the one-deep queue full, an immediate-shed submit must
// fail with the typed *ShardOverloadError.
func TestShardOverload(t *testing.T) {
	sh := newSharder(1, nil, nil)
	lane := sh.get(ShardKey{Channel: 0, SF: 8})

	block := make(chan struct{})
	wedged := shardJob{do: func() shardResult { <-block; return shardResult{} }, done: make(chan shardResult, 1)}
	if err := lane.submit(wedged, -1); err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has taken the wedged job off the queue, then
	// fill the queue again so the next submit finds it at capacity.
	deadline := time.Now().Add(5 * time.Second)
	filler := shardJob{do: func() shardResult { return shardResult{} }, done: make(chan shardResult, 1)}
	for {
		if err := lane.submit(filler, -1); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the wedged job")
		}
		time.Sleep(time.Millisecond)
	}

	extra := shardJob{do: func() shardResult { return shardResult{} }, done: make(chan shardResult, 1)}
	err := lane.submit(extra, -1)
	var soe *ShardOverloadError
	if !errors.As(err, &soe) {
		t.Fatalf("submit on a full queue: %v, want *ShardOverloadError", err)
	}
	if soe.Key != (ShardKey{Channel: 0, SF: 8}) || soe.Queue != 1 {
		t.Errorf("overload error fields: %+v", soe)
	}
	if !strings.Contains(soe.Error(), "c0_sf8") {
		t.Errorf("overload error does not name the shard: %s", soe)
	}

	close(block)
	<-wedged.done
	<-filler.done
	sh.close()
}

// TestShardOverloadRetryable keeps the client contract: a shard_overload
// verdict must be classified as transient, like connection-budget shedding.
func TestShardOverloadRetryable(t *testing.T) {
	ge := &GatewayError{Code: CodeShardOverload, Message: "queue full"}
	if !ge.Retryable() {
		t.Error("shard_overload must be retryable")
	}
}

// TestHelloRejectsUnknownFields pins the strict hello contract end to end:
// a typo'd member ("chanel") must draw a bad_hello verdict instead of
// silently decoding on the default channel.
func TestHelloRejectsUnknownFields(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"sf": 8, "chanel": 3}` + "\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var resp map[string]string
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no error response: %v", err)
	}
	if resp["code"] != CodeBadHello {
		t.Errorf("typo'd hello field answered with %v, want %s", resp, CodeBadHello)
	}
}

// TestParseHello covers the strict-parse edges the fuzz target also walks.
func TestParseHello(t *testing.T) {
	cases := []struct {
		name string
		line string
		ok   bool
	}{
		{"plain", `{"sf": 8, "cr": 4}`, true},
		{"channelized", `{"sf": 7, "cr": 1, "channel": 5}`, true},
		{"typo", `{"sf": 8, "chanel": 3}`, false},
		{"unknown", `{"sf": 8, "frequency_hz": 868100000}`, false},
		{"trailing", `{"sf": 8}{"sf": 9}`, false},
		{"trailing_ws", `{"sf": 8}` + " \n", true},
	}
	for _, tc := range cases {
		_, err := ParseHello([]byte(tc.line))
		if (err == nil) != tc.ok {
			t.Errorf("%s: ParseHello(%q) err=%v, want ok=%v", tc.name, tc.line, err, tc.ok)
		}
	}
}

// TestHelloChannelRange: channels outside [0, MaxChannels) are rejected at
// Validate, in range accepted.
func TestHelloChannelRange(t *testing.T) {
	for ch, ok := range map[int]bool{0: true, 7: true, -1: false, 8: false, 100: false} {
		err := Hello{SF: 8, Channel: ch}.Validate()
		if (err == nil) != ok {
			t.Errorf("channel %d: Validate err=%v, want ok=%v", ch, err, ok)
		}
	}
}
