package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math/rand"
	"net"
	"testing"
	"time"

	"tnb/internal/lora"
	"tnb/internal/trace"
)

// testLogger routes the server's slog output to the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func startServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &Server{Log: testLogger(t)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	}
}

func buildGatewayTrace(t *testing.T, seed int64, n int) (*trace.Trace, []trace.TxRecord, lora.Params) {
	t.Helper()
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(p, 2.0, 1, rng)
	starts := b.ScheduleUniform(n, 14)
	for i, s := range starts {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := b.AddPacket(i, 0, payload, s, 10, -3000+float64(i)*1500, nil); err != nil {
			t.Fatal(err)
		}
	}
	tr, recs := b.Build()
	return tr, recs, p
}

func TestGatewayEndToEnd(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	tr, recs, p := buildGatewayTrace(t, 900, 4)
	c, err := Dial(addr, Hello{SF: p.SF, CR: p.CR})
	if err != nil {
		t.Fatal(err)
	}
	// Stream in chunks, as a radio would.
	samples := tr.Antennas[0]
	for off := 0; off < len(samples); off += 123_457 {
		end := off + 123_457
		if end > len(samples) {
			end = len(samples)
		}
		if err := c.Send(samples[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	reports, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}

	matched := 0
	for _, rec := range recs {
		for _, r := range reports {
			if bytes.Equal(r.Payload, rec.Payload) {
				matched++
				if d := r.AbsStart - rec.StartSample; d > 3 || d < -3 {
					t.Errorf("abs start %.1f vs truth %.1f", r.AbsStart, rec.StartSample)
				}
				break
			}
		}
	}
	if matched < len(recs)-1 {
		t.Errorf("gateway decoded %d/%d packets", matched, len(recs))
	}
	for _, r := range reports {
		if r.PayloadLen != 14 || r.CR != 4 {
			t.Errorf("report header fields: %+v", r)
		}
	}
}

func TestGatewayRejectsBadHello(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"sf": 99}` + "\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var resp map[string]string
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no error response: %v", err)
	}
	if resp["error"] == "" {
		t.Errorf("expected error message, got %v", resp)
	}
}

func TestGatewayGarbageHello(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("not json at all\n"))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Log("server kept the connection open briefly; acceptable")
	}
}

func TestGatewayMultipleClients(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	type result struct {
		reports []Report
		err     error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func(seed int64) {
			tr, _, p := buildGatewayTrace(t, seed, 2)
			c, err := Dial(addr, Hello{SF: p.SF, CR: p.CR})
			if err != nil {
				results <- result{err: err}
				return
			}
			if err := c.Send(tr.Antennas[0]); err != nil {
				results <- result{err: err}
				return
			}
			reports, err := c.Finish()
			results <- result{reports: reports, err: err}
		}(901 + int64(i))
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.reports) == 0 {
			t.Error("client received no reports")
		}
	}
}

func TestGatewayNoBEC(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	tr, _, p := buildGatewayTrace(t, 903, 2)
	noBEC := false
	c, err := Dial(addr, Hello{SF: p.SF, CR: p.CR, UseBEC: &noBEC})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(tr.Antennas[0]); err != nil {
		t.Fatal(err)
	}
	reports, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Rescued != 0 {
			t.Error("rescued codewords reported without BEC")
		}
	}
}

func TestGatewayTraceSummaries(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	tr, _, p := buildGatewayTrace(t, 904, 3)
	c, err := Dial(addr, Hello{SF: p.SF, CR: p.CR, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(tr.Antennas[0]); err != nil {
		t.Fatal(err)
	}
	reports, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	for i, r := range reports {
		if r.Trace == nil {
			t.Fatalf("report %d: trace summary missing despite hello.trace", i)
		}
		if r.Trace.Pass != 1 && r.Trace.Pass != 2 {
			t.Errorf("report %d: summary pass %d", i, r.Trace.Pass)
		}
		if r.Trace.SyncScore < 0 || r.Trace.SyncScore > 1 {
			t.Errorf("report %d: sync score %.2f", i, r.Trace.SyncScore)
		}
		if r.Trace.FailureReason != "" {
			t.Errorf("report %d: decoded packet carries failure reason %q", i, r.Trace.FailureReason)
		}
		if r.DataSymbols <= 0 || r.AirtimeSec <= 0 {
			t.Errorf("report %d: airtime fields: symbols=%d airtime=%g", i, r.DataSymbols, r.AirtimeSec)
		}
	}
}

func TestGatewayNoTraceByDefault(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	tr, _, p := buildGatewayTrace(t, 905, 2)
	c, err := Dial(addr, Hello{SF: p.SF, CR: p.CR})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(tr.Antennas[0]); err != nil {
		t.Fatal(err)
	}
	reports, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reports {
		if r.Trace != nil {
			t.Errorf("report %d: trace summary sent without hello.trace", i)
		}
	}
}
