// Package gateway provides the network front-end of the TnB receiver: a
// TCP server that accepts raw int16-interleaved IQ sample streams (the
// USRP wire layout) and emits one JSON line per decoded packet on the same
// connection. It is the glue a deployment would run next to an SDR.
//
// Protocol: the client first sends a single JSON header line declaring the
// radio parameters, then streams raw IQ bytes. The server answers with
// JSON lines (Report) as packets decode, and closes after the client
// half-closes and the final flush completes.
package gateway

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"

	"tnb/internal/core"
	"tnb/internal/lora"
	"tnb/internal/metrics"
	"tnb/internal/obs"
	"tnb/internal/stream"
)

// Hello is the client's opening line.
type Hello struct {
	SF        int     `json:"sf"`
	CR        int     `json:"cr"` // used for re-encoding; header decides per packet
	Bandwidth float64 `json:"bandwidth_hz,omitempty"`
	OSF       int     `json:"osf,omitempty"`
	UseBEC    *bool   `json:"use_bec,omitempty"` // default true
	// Trace requests a per-packet decode-trace summary on every report
	// (sync score, ambiguous symbols, CRC tests — see obs.Summary).
	Trace bool `json:"trace,omitempty"`
}

// Validate checks the hello's radio parameters before a receiver is built.
// Zero values select defaults (CR 4, 125 kHz, OSF 8); anything else out of
// range is rejected so the client gets a clear one-line JSON error instead
// of a silent mid-stream failure.
func (h Hello) Validate() error {
	if h.SF < 6 || h.SF > 12 {
		return fmt.Errorf("hello: sf %d out of range [6, 12]", h.SF)
	}
	if h.CR < 0 || h.CR > 4 {
		return fmt.Errorf("hello: cr %d out of range [1, 4] (0 selects CR 4)", h.CR)
	}
	if h.Bandwidth < 0 {
		return fmt.Errorf("hello: bandwidth_hz %g must be positive (0 selects 125 kHz)", h.Bandwidth)
	}
	if h.OSF < 0 || h.OSF > 64 {
		return fmt.Errorf("hello: osf %d out of range [1, 64] (0 selects 8)", h.OSF)
	}
	return nil
}

// Report is one decoded packet, emitted as a JSON line.
type Report struct {
	Payload     []byte  `json:"payload"`
	PayloadLen  int     `json:"payload_len"`
	CR          int     `json:"cr"`
	AbsStart    float64 `json:"abs_start_sample"`
	CFOHz       float64 `json:"cfo_hz"`
	SNRdB       float64 `json:"snr_db"`
	Pass        int     `json:"pass"`
	Rescued     int     `json:"rescued_codewords"`
	DataSymbols int     `json:"data_symbols,omitempty"`
	AirtimeSec  float64 `json:"airtime_sec,omitempty"`
	// Trace is the decode-trace summary, present when the hello requested
	// tracing.
	Trace *obs.Summary `json:"trace,omitempty"`
}

// Server decodes LoRa IQ streams for its clients.
type Server struct {
	// Log receives structured connection-level diagnostics with
	// per-connection attributes (remote addr, radio parameters, packet
	// counts); nil silences them, matching the old nil-Logf behavior.
	Log *slog.Logger
	// Registry, when non-nil, wires the full instrumentation stack:
	// gateway connection metrics plus the per-stage receiver and streamer
	// instruments of every connection. Use metrics.Default to share the
	// process-wide registry served by the -metrics endpoint.
	Registry *metrics.Registry
	// Tracer, when non-nil, records every connection's decode traces
	// (JSONL sink and /debug/traces ring, see internal/obs). Clients that
	// set "trace" in the hello get per-report summaries even without a
	// server tracer.
	Tracer *obs.Tracer
	// Workers is the per-connection receiver pool width
	// (core.Config.Workers semantics: 0 → GOMAXPROCS, 1 → serial). A
	// gateway serving many concurrent connections may prefer 1 so each
	// connection stays on one core.
	Workers int

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup

	metOnce sync.Once
	met     *Metrics
	pmet    *core.PipelineMetrics
	smet    *stream.Metrics
}

// instruments lazily builds the server's metric handles from s.Registry.
// With no registry everything stays nil, and the nil-safe methods make the
// whole instrumentation a no-op.
func (s *Server) instruments() (*Metrics, *core.PipelineMetrics, *stream.Metrics) {
	s.metOnce.Do(func() {
		if s.Registry == nil {
			return
		}
		s.met = NewMetrics(s.Registry)
		s.pmet = core.NewPipelineMetrics(s.Registry)
		s.smet = stream.NewMetrics(s.Registry)
	})
	return s.met, s.pmet, s.smet
}

// Serve accepts connections on ln until the context is canceled or the
// listener fails. It blocks; use Shutdown or cancel the context to stop.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()

	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			log := s.logger().With("remote", conn.RemoteAddr().String())
			if err := s.handle(conn, log); err != nil && !errors.Is(err, io.EOF) {
				log.Error("connection failed", "err", err)
			}
		}()
	}
}

// discardLog swallows records without formatting them; the nil-Log default.
var discardLog = slog.New(slog.NewTextHandler(io.Discard, nil))

func (s *Server) logger() *slog.Logger {
	if s.Log != nil {
		return s.Log
	}
	return discardLog
}

// handle runs one client connection.
func (s *Server) handle(conn net.Conn, log *slog.Logger) error {
	met, pmet, smet := s.instruments()
	met.onConnOpen()
	defer met.onConnClose()

	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriter(conn)
	enc := json.NewEncoder(bw)

	// reject sends the client a one-line JSON error object before the
	// connection closes, so misconfigured clients fail loudly at the hello
	// instead of silently mid-stream.
	reject := func(err error) error {
		met.onHelloRejected()
		enc.Encode(map[string]string{"error": err.Error()})
		bw.Flush()
		return err
	}

	line, err := br.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	var hello Hello
	if err := json.Unmarshal(line, &hello); err != nil {
		return reject(fmt.Errorf("parsing hello: %w", err))
	}
	if err := hello.Validate(); err != nil {
		return reject(err)
	}
	params, err := lora.NewParams(hello.SF, orDefault(hello.CR, 4), hello.Bandwidth, hello.OSF)
	if err != nil {
		return reject(err)
	}
	useBEC := hello.UseBEC == nil || *hello.UseBEC

	// Tracing: the server's tracer (ops export) if present; a hello that
	// requests summaries without one gets a connection-local tracer so
	// traces exist for summarizing.
	tracer := s.Tracer
	if tracer == nil && hello.Trace {
		tracer = obs.New(obs.Options{})
	}

	st, err := stream.New(stream.Config{
		Receiver: core.Config{Params: params, UseBEC: useBEC, Workers: s.Workers, Metrics: pmet, Tracer: tracer},
		Metrics:  smet,
	})
	if err != nil {
		return err
	}
	log = log.With("sf", params.SF, "cr", params.CR, "bec", useBEC)
	log.Info("stream configured", "bandwidth_hz", params.Bandwidth,
		"osf", params.OSF, "trace", tracer != nil)

	reports, bytesIn := 0, 0
	defer func() {
		log.Info("connection closed", "reports", reports, "bytes_in", bytesIn)
	}()

	emit := func(ds []stream.Decoded, err error) error {
		if err != nil {
			return err
		}
		for _, d := range ds {
			rep := toReport(d, params)
			if hello.Trace && d.Trace != nil {
				sum := obs.Summarize(d.Trace)
				rep.Trace = &sum
			}
			if err := enc.Encode(rep); err != nil {
				return err
			}
		}
		met.onReports(len(ds))
		reports += len(ds)
		return bw.Flush()
	}

	// Read raw IQ: 4 bytes per sample (int16 I, int16 Q, little endian).
	const chunkSamples = 1 << 16
	raw := make([]byte, 4*chunkSamples)
	samples := make([]complex128, 0, chunkSamples)
	for {
		n, err := io.ReadFull(br, raw)
		if n > 0 {
			met.onBytesIn(n)
			bytesIn += n
			n -= n % 4
			samples = samples[:0]
			for i := 0; i < n; i += 4 {
				re := int16(binary.LittleEndian.Uint16(raw[i : i+2]))
				im := int16(binary.LittleEndian.Uint16(raw[i+2 : i+4]))
				samples = append(samples, complex(float64(re)/4096, float64(im)/4096))
			}
			if err := emit(st.Feed(samples)); err != nil {
				return err
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return emit(st.Flush())
			}
			return err
		}
	}
}

func toReport(d stream.Decoded, p lora.Params) Report {
	return Report{
		Payload:     d.Payload,
		PayloadLen:  d.Header.PayloadLen,
		CR:          d.Header.CR,
		AbsStart:    d.AbsStart,
		CFOHz:       d.CFOCycles / p.SymbolDuration(),
		SNRdB:       d.SNRdB,
		Pass:        d.Pass,
		Rescued:     d.Rescued,
		DataSymbols: d.DataSymbols,
		AirtimeSec:  d.AirtimeSec,
	}
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// ListenAndServe listens on addr and serves until the context ends.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.logger().Info("gateway listening", "addr", ln.Addr().String())
	return s.Serve(ctx, ln)
}

// Client streams IQ samples to a gateway and collects reports.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	dec  *json.Decoder
}

// Dial connects to a gateway and sends the hello line.
func Dial(addr string, hello Hello) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, bw: bufio.NewWriter(conn), dec: json.NewDecoder(conn)}
	hb, err := json.Marshal(hello)
	if err != nil {
		conn.Close()
		return nil, err
	}
	hb = append(hb, '\n')
	if _, err := c.bw.Write(hb); err != nil {
		conn.Close()
		return nil, err
	}
	return c, c.bw.Flush()
}

// Send streams samples as int16 IQ.
func (c *Client) Send(samples []complex128) error {
	var quad [4]byte
	for _, v := range samples {
		binary.LittleEndian.PutUint16(quad[0:2], uint16(clampI16(real(v)*4096)))
		binary.LittleEndian.PutUint16(quad[2:4], uint16(clampI16(imag(v)*4096)))
		if _, err := c.bw.Write(quad[:]); err != nil {
			return err
		}
	}
	return nil
}

// Finish flushes, half-closes the write side and drains all reports until
// the server closes the connection.
func (c *Client) Finish() ([]Report, error) {
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	if tc, ok := c.conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil {
			return nil, err
		}
	}
	var out []Report
	for {
		var r Report
		if err := c.dec.Decode(&r); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return out, err
		}
		out = append(out, r)
	}
	return out, c.conn.Close()
}

func clampI16(v float64) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}
