// Package gateway provides the network front-end of the TnB receiver: a
// TCP server that accepts raw int16-interleaved IQ sample streams (the
// USRP wire layout) and emits one JSON line per decoded packet on the same
// connection. It is the glue a deployment would run next to an SDR.
//
// Protocol: the client first sends a single JSON header line declaring the
// radio parameters, then streams raw IQ bytes. The server answers with
// JSON lines (Report) as packets decode, and closes after the client
// half-closes and the final flush completes. Protocol violations and
// resource-limit verdicts are answered with a one-line JSON error object
// carrying a machine-readable code (see GatewayError) before the close.
//
// The server is hardened for adversarial clients: every read and write
// carries a deadline, the opening hello line is length-capped, each
// connection's sample intake can be capped, and new connections past a
// configurable budget are shed with a typed "overloaded" reply. Every
// degradation increments a gateway metric and emits an internal/obs
// connection event, so chaos runs are attributable from the trace stream.
package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tnb/internal/core"
	"tnb/internal/lora"
	"tnb/internal/metrics"
	"tnb/internal/obs"
	"tnb/internal/stream"
)

// Hello is the client's opening line.
type Hello struct {
	SF        int     `json:"sf"`
	CR        int     `json:"cr"` // used for re-encoding; header decides per packet
	Bandwidth float64 `json:"bandwidth_hz,omitempty"`
	OSF       int     `json:"osf,omitempty"`
	UseBEC    *bool   `json:"use_bec,omitempty"` // default true
	// Channel is the logical uplink channel this connection's samples were
	// captured on, in [0, MaxChannels). It selects the (channel, SF) decode
	// shard; the default 0 preserves the single-channel protocol.
	Channel int `json:"channel,omitempty"`
	// Trace requests a per-packet decode-trace summary on every report
	// (sync score, ambiguous symbols, CRC tests — see obs.Summary).
	Trace bool `json:"trace,omitempty"`
}

// Validate checks the hello's radio parameters before a receiver is built.
// Zero values select defaults (CR 4, 125 kHz, OSF 8, channel 0); anything
// else out of range is rejected so the client gets a clear one-line JSON
// error instead of a silent mid-stream failure.
func (h Hello) Validate() error {
	if h.SF < 6 || h.SF > 12 {
		return fmt.Errorf("hello: sf %d out of range [6, 12]", h.SF)
	}
	if h.CR < 0 || h.CR > 4 {
		return fmt.Errorf("hello: cr %d out of range [1, 4] (0 selects CR 4)", h.CR)
	}
	if h.Bandwidth < 0 {
		return fmt.Errorf("hello: bandwidth_hz %g must be positive (0 selects 125 kHz)", h.Bandwidth)
	}
	if h.OSF < 0 || h.OSF > 64 {
		return fmt.Errorf("hello: osf %d out of range [1, 64] (0 selects 8)", h.OSF)
	}
	if h.Channel < 0 || h.Channel >= MaxChannels {
		return fmt.Errorf("hello: channel %d out of range [0, %d)", h.Channel, MaxChannels)
	}
	return nil
}

// ParseHello decodes one hello line strictly: unknown JSON members are
// rejected, so a typo'd field (e.g. "chanel") fails loudly at the hello
// instead of silently decoding on the default channel. Trailing bytes
// after the object (other than whitespace) are rejected for the same
// reason.
func ParseHello(line []byte) (Hello, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var h Hello
	if err := dec.Decode(&h); err != nil {
		return Hello{}, err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return Hello{}, errors.New("hello: trailing data after the hello object")
	}
	return h, nil
}

// Report is one decoded packet, emitted as a JSON line.
type Report struct {
	Payload    []byte `json:"payload"`
	PayloadLen int    `json:"payload_len"`
	CR         int    `json:"cr"`
	// Channel echoes the hello's channel, so a multi-channel consumer can
	// merge report streams without tracking which connection is which.
	Channel     int     `json:"channel,omitempty"`
	AbsStart    float64 `json:"abs_start_sample"`
	CFOHz       float64 `json:"cfo_hz"`
	SNRdB       float64 `json:"snr_db"`
	Pass        int     `json:"pass"`
	Rescued     int     `json:"rescued_codewords"`
	DataSymbols int     `json:"data_symbols,omitempty"`
	AirtimeSec  float64 `json:"airtime_sec,omitempty"`
	// Trace is the decode-trace summary, present when the hello requested
	// tracing.
	Trace *obs.Summary `json:"trace,omitempty"`
}

// Default per-operation I/O deadlines and the hello line-length cap.
const (
	DefaultReadTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
	maxHelloBytes       = 1 << 12
)

// Server decodes LoRa IQ streams for its clients.
type Server struct {
	// ID names this gateway in the fleet. It is stamped (with each
	// connection's channel and SF) into the origin of every trace record
	// the server emits, so a shared trace store can be filtered by
	// gateway. Empty is fine for single-gateway deployments.
	ID string
	// Log receives structured connection-level diagnostics with
	// per-connection attributes (remote addr, radio parameters, packet
	// counts); nil silences them, matching the old nil-Logf behavior.
	Log *slog.Logger
	// Registry, when non-nil, wires the full instrumentation stack:
	// gateway connection metrics plus the per-stage receiver and streamer
	// instruments of every connection. Use metrics.Default to share the
	// process-wide registry served by the -metrics endpoint.
	Registry *metrics.Registry
	// Tracer, when non-nil, records every connection's decode traces
	// (JSONL sink and /debug/traces ring, see internal/obs). Clients that
	// set "trace" in the hello get per-report summaries even without a
	// server tracer.
	Tracer *obs.Tracer
	// Workers is the per-connection receiver pool width
	// (core.Config.Workers semantics: 0 → GOMAXPROCS, 1 → serial). A
	// gateway serving many concurrent connections may prefer 1 so each
	// connection stays on one core.
	Workers int
	// ReadTimeout bounds every network read; a client that stalls longer
	// is dropped and counted. 0 selects DefaultReadTimeout; negative
	// disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds every reply write; a client that stops draining
	// reports is dropped and counted. 0 selects DefaultWriteTimeout;
	// negative disables the deadline.
	WriteTimeout time.Duration
	// MaxSamplesPerConn caps the IQ samples one connection may stream.
	// Past the cap the server replies {"code":"sample_limit"} and closes.
	// 0 means unlimited.
	MaxSamplesPerConn int64
	// MaxConns is the overload-shedding budget: a connection accepted
	// while MaxConns others are already open is answered with
	// {"code":"overloaded"} and closed before any receiver state is
	// built. 0 means unlimited.
	MaxConns int
	// MaxBufferSamples overrides the per-connection decode-buffer ceiling
	// (stream.Config.MaxBufferSamples semantics).
	MaxBufferSamples int
	// ShardQueue is the per-(channel, SF) shard queue depth in decode
	// batches. 0 selects DefaultShardQueue.
	ShardQueue int
	// ShardWait bounds how long a connection waits for room on its shard's
	// queue before being shed with a shard_overload verdict. 0 selects
	// DefaultShardWait; negative sheds immediately.
	ShardWait time.Duration

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	active   atomic.Int64
	shutdown atomic.Bool

	metOnce sync.Once
	met     *Metrics
	pmet    *core.PipelineMetrics
	smet    *stream.Metrics

	shOnce sync.Once
	sh     *sharder
}

// shards lazily builds the server's (channel, SF) shard table.
func (s *Server) shards() *sharder {
	s.shOnce.Do(func() {
		met, _, _ := s.instruments()
		var newSM func(ShardKey) *ShardMetrics
		if s.Registry != nil {
			reg := s.Registry
			newSM = func(k ShardKey) *ShardMetrics { return NewShardMetrics(reg, k) }
		}
		s.sh = newSharder(s.ShardQueue, met, newSM)
	})
	return s.sh
}

// ShardCount reports how many (channel, SF) decode shards are live.
func (s *Server) ShardCount() int { return s.shards().size() }

// instruments lazily builds the server's metric handles from s.Registry.
// With no registry everything stays nil, and the nil-safe methods make the
// whole instrumentation a no-op.
func (s *Server) instruments() (*Metrics, *core.PipelineMetrics, *stream.Metrics) {
	s.metOnce.Do(func() {
		if s.Registry == nil {
			return
		}
		s.met = NewMetrics(s.Registry)
		s.pmet = core.NewPipelineMetrics(s.Registry)
		s.smet = stream.NewMetrics(s.Registry)
	})
	return s.met, s.pmet, s.smet
}

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout == 0 {
		return DefaultReadTimeout
	}
	if s.ReadTimeout < 0 {
		return 0
	}
	return s.ReadTimeout
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout == 0 {
		return DefaultWriteTimeout
	}
	if s.WriteTimeout < 0 {
		return 0
	}
	return s.WriteTimeout
}

// track registers/unregisters a live connection for Shutdown's force-close.
func (s *Server) track(conn net.Conn, on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	if on {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// Serve accepts connections on ln until the context is canceled, Shutdown
// is called, or the listener fails. It blocks, and on the way out waits for
// every in-flight connection to finish its decodes (the drain).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()

	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Every handler has a shard reference only while it lives, so
			// the shard workers stop once the handler WaitGroup drains.
			s.wg.Wait()
			s.shards().close()
			if ctx.Err() != nil || s.shutdown.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		s.active.Add(1)
		s.track(conn, true)
		go func() {
			defer s.wg.Done()
			defer s.active.Add(-1)
			defer s.track(conn, false)
			defer conn.Close()
			log := s.logger().With("remote", conn.RemoteAddr().String())
			if err := s.handle(conn, log); err != nil && !errors.Is(err, io.EOF) {
				log.Error("connection failed", "err", err)
			}
		}()
	}
}

// Shutdown stops accepting and drains in-flight connections: it blocks
// until every handler has finished (flushing its final decodes) or the
// context expires, at which point lingering connections are force-closed
// and their handlers reaped. Safe to call concurrently with Serve.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdown.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// discardLog swallows records without formatting them; the nil-Log default.
var discardLog = slog.New(slog.NewTextHandler(io.Discard, nil))

func (s *Server) logger() *slog.Logger {
	if s.Log != nil {
		return s.Log
	}
	return discardLog
}

// deadlineConn arms a fresh deadline before every read and write, so the
// per-operation timeouts apply to idle time, not total connection life.
type deadlineConn struct {
	net.Conn
	read, write time.Duration
}

func (c *deadlineConn) Read(p []byte) (int, error) {
	if c.read > 0 {
		c.SetReadDeadline(time.Now().Add(c.read))
	}
	return c.Conn.Read(p)
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	if c.write > 0 {
		c.SetWriteDeadline(time.Now().Add(c.write))
	}
	return c.Conn.Write(p)
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// readLineLimit reads one newline-terminated line of at most max bytes;
// longer lines fail instead of buffering without bound.
func readLineLimit(br *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		frag, err := br.ReadSlice('\n')
		line = append(line, frag...)
		if len(line) > max {
			return nil, fmt.Errorf("line exceeds %d bytes", max)
		}
		if err == nil {
			return line, nil
		}
		if !errors.Is(err, bufio.ErrBufferFull) {
			return line, err
		}
	}
}

// handle runs one client connection.
func (s *Server) handle(conn net.Conn, log *slog.Logger) error {
	met, pmet, smet := s.instruments()
	met.onConnOpen()
	defer met.onConnClose()

	remote := conn.RemoteAddr().String()
	dc := &deadlineConn{Conn: conn, read: s.readTimeout(), write: s.writeTimeout()}
	br := bufio.NewReaderSize(dc, 1<<16)
	bw := bufio.NewWriter(dc)
	enc := json.NewEncoder(bw)

	// replyErr sends the one-line typed JSON error object; the connection
	// closes right after, so misbehaving clients fail loudly with a code
	// they can switch on instead of a silent drop.
	replyErr := func(code, msg string) {
		enc.Encode(GatewayError{Code: code, Message: msg})
		bw.Flush()
	}

	// Overload shedding: past the connection budget, refuse before any
	// receiver state is built. s.active includes this connection.
	if s.MaxConns > 0 && s.active.Load() > int64(s.MaxConns) {
		met.onOverloadShed()
		s.Tracer.OnConn(obs.ConnOverloadShed, remote, "")
		log.Warn("connection shed", "budget", s.MaxConns)
		replyErr(CodeOverloaded, fmt.Sprintf("server at its %d-connection budget, retry with backoff", s.MaxConns))
		return nil
	}

	// reject drops the client at the hello line with a typed reply.
	reject := func(err error) error {
		met.onHelloRejected()
		s.Tracer.OnConn(obs.ConnHelloRejected, remote, err.Error())
		replyErr(CodeBadHello, err.Error())
		return err
	}

	line, err := readLineLimit(br, maxHelloBytes)
	if err != nil {
		if isTimeout(err) {
			met.onReadTimeout()
			s.Tracer.OnConn(obs.ConnReadTimeout, remote, "reading hello")
			return fmt.Errorf("reading hello: %w", err)
		}
		if errors.Is(err, io.EOF) {
			return io.EOF // connected and left without a word; not an error
		}
		return reject(fmt.Errorf("reading hello: %w", err))
	}
	hello, err := ParseHello(line)
	if err != nil {
		return reject(fmt.Errorf("parsing hello: %w", err))
	}
	if err := hello.Validate(); err != nil {
		return reject(err)
	}
	params, err := lora.NewParams(hello.SF, orDefault(hello.CR, 4), hello.Bandwidth, hello.OSF)
	if err != nil {
		return reject(err)
	}
	useBEC := hello.UseBEC == nil || *hello.UseBEC

	// Tracing: the server's tracer (ops export) if present; a hello that
	// requests summaries without one gets a connection-local tracer so
	// traces exist for summarizing.
	tracer := s.Tracer
	if tracer == nil && hello.Trace {
		tracer = obs.New(obs.Options{})
	}
	// From here on every trace record carries the connection's fleet
	// position; pre-hello events above can't, since the channel is only
	// known once the hello parses.
	tracer = tracer.WithOrigin(obs.Origin{Gateway: s.ID, Channel: hello.Channel, SF: params.SF})

	st, err := stream.New(stream.Config{
		Receiver:         core.Config{Params: params, UseBEC: useBEC, Workers: s.Workers, Metrics: pmet, Tracer: tracer},
		MaxBufferSamples: s.MaxBufferSamples,
		Metrics:          smet,
	})
	if err != nil {
		return err
	}

	// Route this connection's decode work to its (channel, SF) shard: a
	// bounded-queue worker serializing all streams on that logical radio.
	key := ShardKey{Channel: hello.Channel, SF: params.SF}
	shard := s.shards().get(key)
	if shard == nil {
		return errors.New("gateway: server is draining")
	}
	runShard := func(do func() shardResult) ([]stream.Decoded, error) {
		ds, err := shard.exec(s.ShardWait, do)
		var soe *ShardOverloadError
		if errors.As(err, &soe) {
			met.onShardOverload()
			tracer.OnConn(obs.ConnShardOverload, remote, soe.Error())
			log.Warn("connection shed at shard queue", "shard", key.String())
			replyErr(CodeShardOverload, soe.Error())
		}
		return ds, err
	}

	log = log.With("sf", params.SF, "cr", params.CR, "bec", useBEC, "shard", key.String())
	log.Info("stream configured", "bandwidth_hz", params.Bandwidth,
		"osf", params.OSF, "trace", tracer != nil)

	reports, bytesIn := 0, 0
	defer func() {
		log.Info("connection closed", "reports", reports, "bytes_in", bytesIn)
	}()

	feed := func(samples []complex128) ([]stream.Decoded, error) {
		return runShard(func() shardResult {
			d, e := st.Feed(samples)
			return shardResult{decoded: d, err: e}
		})
	}
	flush := func() ([]stream.Decoded, error) {
		return runShard(func() shardResult {
			d, e := st.Flush()
			return shardResult{decoded: d, err: e}
		})
	}

	emit := func(ds []stream.Decoded, err error) error {
		if err != nil {
			return err
		}
		for _, d := range ds {
			rep := toReport(d, params, hello.Channel)
			if hello.Trace && d.Trace != nil {
				sum := obs.Summarize(d.Trace)
				rep.Trace = &sum
			}
			if err := enc.Encode(rep); err != nil {
				return err
			}
		}
		met.onReports(len(ds))
		reports += len(ds)
		return bw.Flush()
	}

	// classify attributes a mid-stream failure: deadline expiries and
	// transport deaths get their own counters and obs events so injected
	// faults stay distinguishable in the exported state.
	classify := func(err error, writing bool) error {
		switch {
		case isTimeout(err) && writing:
			met.onWriteTimeout()
			tracer.OnConn(obs.ConnWriteTimeout, remote, err.Error())
		case isTimeout(err):
			met.onReadTimeout()
			tracer.OnConn(obs.ConnReadTimeout, remote, err.Error())
		default:
			met.onClientAbort()
			tracer.OnConn(obs.ConnClientAbort, remote, err.Error())
		}
		return err
	}

	// Read raw IQ: 4 bytes per sample (int16 I, int16 Q, little endian).
	const chunkSamples = 1 << 16
	raw := make([]byte, 4*chunkSamples)
	samples := make([]complex128, 0, chunkSamples)
	var samplesFed int64
	for {
		n, err := io.ReadFull(br, raw)
		if n > 0 {
			met.onBytesIn(n)
			bytesIn += n
			n -= n % 4
			samples = samples[:0]
			for i := 0; i < n; i += 4 {
				re := int16(binary.LittleEndian.Uint16(raw[i : i+2]))
				im := int16(binary.LittleEndian.Uint16(raw[i+2 : i+4]))
				samples = append(samples, complex(float64(re)/4096, float64(im)/4096))
			}
			samplesFed += int64(len(samples))
			if s.MaxSamplesPerConn > 0 && samplesFed > s.MaxSamplesPerConn {
				met.onSampleLimit()
				tracer.OnConn(obs.ConnSampleLimit, remote,
					fmt.Sprintf("fed %d samples, cap %d", samplesFed, s.MaxSamplesPerConn))
				log.Warn("sample cap exceeded", "cap", s.MaxSamplesPerConn)
				replyErr(CodeSampleLimit, fmt.Sprintf("connection exceeded its %d-sample cap", s.MaxSamplesPerConn))
				return nil
			}
			if err := emit(feed(samples)); err != nil {
				var oe *stream.OverflowError
				if errors.As(err, &oe) {
					met.onStreamOverflow()
					tracer.OnConn(obs.ConnStreamOverflow, remote, oe.Error())
					replyErr(CodeStreamOverflow, oe.Error())
					return nil
				}
				var soe *ShardOverloadError
				if errors.As(err, &soe) {
					return nil // runShard already replied and counted
				}
				return classify(err, true)
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				// Clean end of stream (half-close), possibly mid-quad: a
				// truncated trailing sample is dropped, the buffered tail
				// is flushed and the final reports are emitted.
				if err := emit(flush()); err != nil {
					var soe *ShardOverloadError
					if errors.As(err, &soe) {
						return nil
					}
					return classify(err, true)
				}
				return nil
			}
			return classify(err, false)
		}
	}
}

func toReport(d stream.Decoded, p lora.Params, ch int) Report {
	return Report{
		Payload:     d.Payload,
		PayloadLen:  d.Header.PayloadLen,
		CR:          d.Header.CR,
		Channel:     ch,
		AbsStart:    d.AbsStart,
		CFOHz:       d.CFOCycles / p.SymbolDuration(),
		SNRdB:       d.SNRdB,
		Pass:        d.Pass,
		Rescued:     d.Rescued,
		DataSymbols: d.DataSymbols,
		AirtimeSec:  d.AirtimeSec,
	}
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// ListenAndServe listens on addr and serves until the context ends.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.logger().Info("gateway listening", "addr", ln.Addr().String())
	return s.Serve(ctx, ln)
}
