package gateway

import (
	"fmt"
	"sync"
	"time"

	"tnb/internal/stream"
)

// A real LoRaWAN gateway listens on several channels at several spreading
// factors at once. This file gives the server that shape: every accepted
// connection declares its (channel, SF) in the hello, and its decode work
// is routed to the shard for that pair — a bounded-queue worker goroutine
// owning all decodes on that logical radio. Connections sharing a shard
// serialize behind its queue (decode order within one stream is preserved
// because a connection has at most one batch in flight), while distinct
// shards decode concurrently, one goroutine each, with the receiver's own
// worker pool (Server.Workers) fanning out inside a decode.
//
// Backpressure follows the PR-5 pattern: the queue is bounded, a submit
// that cannot enqueue within the grace period fails with a typed
// *ShardOverloadError, and the server answers the client with a
// {"code":"shard_overload"} verdict instead of buffering without bound.

// MaxChannels is the number of logical uplink channels a gateway serves
// (the EU868/US915 8-channel baseline). Hello.Channel must be below it.
const MaxChannels = 8

// Default shard-queue sizing: how many decode batches may wait per shard,
// and how long a submit waits for room before the connection is shed.
const (
	DefaultShardQueue = 16
	DefaultShardWait  = 10 * time.Second
)

// ShardKey identifies one (channel, SF) decode shard.
type ShardKey struct {
	Channel int
	SF      int
}

// String renders the key the way shard metric labels spell it.
func (k ShardKey) String() string { return fmt.Sprintf("c%d_sf%d", k.Channel, k.SF) }

// ShardOverloadError is returned by a shard submit that found the queue
// full past the grace period: the shard is processing as fast as it can
// and the connection must back off.
type ShardOverloadError struct {
	Key   ShardKey
	Queue int // the configured queue depth
}

func (e *ShardOverloadError) Error() string {
	return fmt.Sprintf("gateway: shard %s queue full (%d batches waiting)", e.Key, e.Queue)
}

// shardJob is one unit of shard work. do runs on the shard worker
// goroutine; its result is delivered on done (buffered, never blocking the
// worker). Jobs carry a closure rather than a streamer so the queueing
// machinery stays independent of the decode types (and testable without
// samples).
type shardJob struct {
	do   func() shardResult
	done chan shardResult
}

type shardResult struct {
	decoded []stream.Decoded
	err     error
}

// shard is one (channel, SF) decode lane: a bounded queue drained by a
// single worker goroutine.
type shard struct {
	key  ShardKey
	jobs chan shardJob
	met  *ShardMetrics
	amet *Metrics
}

func (sh *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for job := range sh.jobs {
		res := job.do()
		sh.met.onBatch()
		sh.amet.onShardBatch()
		job.done <- res
	}
}

// submit enqueues a job, waiting up to wait for room. wait == 0 selects
// DefaultShardWait; negative sheds immediately when the queue is full.
func (sh *shard) submit(job shardJob, wait time.Duration) error {
	select {
	case sh.jobs <- job:
		sh.met.onEnqueue()
		return nil
	default:
	}
	if wait == 0 {
		wait = DefaultShardWait
	}
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case sh.jobs <- job:
			sh.met.onEnqueue()
			return nil
		case <-t.C:
		}
	}
	return &ShardOverloadError{Key: sh.key, Queue: cap(sh.jobs)}
}

// exec submits do and waits for its result. The caller blocks until the
// shard worker has run the job, so one connection never has two batches in
// flight — that is what keeps per-stream decode order intact.
func (sh *shard) exec(wait time.Duration, do func() shardResult) ([]stream.Decoded, error) {
	job := shardJob{do: do, done: make(chan shardResult, 1)}
	if err := sh.submit(job, wait); err != nil {
		return nil, err
	}
	res := <-job.done
	sh.met.onDequeue()
	return res.decoded, res.err
}

// sharder owns the lazily created shards of one Server.
type sharder struct {
	mu     sync.Mutex
	shards map[ShardKey]*shard
	wg     sync.WaitGroup
	closed bool

	queue int
	reg   registryRef
	amet  *Metrics
}

// registryRef is the subset of metric wiring a sharder needs; kept as a
// tiny indirection so shard creation works with a nil registry.
type registryRef struct {
	newShardMetrics func(ShardKey) *ShardMetrics
}

func newSharder(queue int, amet *Metrics, newSM func(ShardKey) *ShardMetrics) *sharder {
	if queue <= 0 {
		queue = DefaultShardQueue
	}
	return &sharder{
		shards: make(map[ShardKey]*shard),
		queue:  queue,
		reg:    registryRef{newShardMetrics: newSM},
		amet:   amet,
	}
}

// get returns the shard for key, creating and starting it on first use.
// After close it returns nil (the server is draining).
func (s *sharder) get(key ShardKey) *shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if sh, ok := s.shards[key]; ok {
		return sh
	}
	var sm *ShardMetrics
	if s.reg.newShardMetrics != nil {
		sm = s.reg.newShardMetrics(key)
	}
	sh := &shard{key: key, jobs: make(chan shardJob, s.queue), met: sm, amet: s.amet}
	s.shards[key] = sh
	s.amet.onShardOpen()
	s.wg.Add(1)
	go sh.run(&s.wg)
	return sh
}

// size returns the number of live shards.
func (s *sharder) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// close stops every shard worker after its queue drains and waits for
// them. Callers must ensure no connection will submit again (the server
// closes only after its handler WaitGroup drains).
func (s *sharder) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.jobs)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
