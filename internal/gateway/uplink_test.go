package gateway

import (
	"testing"

	"tnb/internal/netserver"
)

// TestUplinksHandoff: the report → netserver adapter rebases time against
// the shard origin, carries the hello's SF, and appends into the caller's
// slice.
func TestUplinksHandoff(t *testing.T) {
	reports := []Report{
		{Payload: []byte{1, 2}, Channel: 3, AbsStart: 125e3, SNRdB: -4},
		{Payload: []byte{9}, Channel: 3, AbsStart: 250e3, SNRdB: 2},
	}
	dst := make([]netserver.Uplink, 0, 2)
	got := Uplinks(dst, reports, "gw-7", 8, 10.0, 125e3)
	if len(got) != 2 {
		t.Fatalf("got %d uplinks, want 2", len(got))
	}
	u := got[0]
	if u.GatewayID != "gw-7" || u.Channel != 3 || u.SF != 8 || u.SNRdB != -4 {
		t.Errorf("identity fields wrong: %+v", u)
	}
	if u.TimeSec != 11.0 || got[1].TimeSec != 12.0 {
		t.Errorf("time rebase wrong: %v, %v", u.TimeSec, got[1].TimeSec)
	}
	if string(u.Payload) != string(reports[0].Payload) {
		t.Errorf("payload not carried through")
	}
}
