package gateway

import (
	"context"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"tnb/internal/lora"
	"tnb/internal/obs"
	"tnb/internal/trace"
	"tnb/internal/tracestore"
)

// TestTraceQueryEndpointDeterministic is the fleet-debugging acceptance
// path end to end: a live gateway decodes a collided trace on channel 3
// while spilling every trace record into a persistent store, and the
// /debug/traces/query endpoint answers filtered questions about the run.
// Because trace emission is deterministic at every worker-pool width, the
// HTTP response bytes must be identical for -workers 1, 2 and 4.
func TestTraceQueryEndpointDeterministic(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 2)
	rng := rand.New(rand.NewSource(77))
	b := trace.NewBuilder(p, 1.0, 1, rng)
	starts := b.ScheduleUniform(5, 14)
	for i, s := range starts {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := b.AddPacket(i, 0, payload, s, 10, -3000+float64(i)*1200, nil); err != nil {
			t.Fatal(err)
		}
	}
	tr, _ := b.Build()

	// run decodes the trace at one worker width and returns the HTTP body
	// for the given query string against that run's store.
	run := func(workers int, query string) string {
		t.Helper()
		st, err := tracestore.Open(tracestore.Options{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &Server{
			Log: testLogger(t), Workers: workers,
			ID: "gw-e2e", Tracer: obs.New(obs.Options{Spill: st}),
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ctx, ln) }()
		defer func() {
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Error("gateway did not stop")
			}
		}()

		c, err := Dial(ln.Addr().String(), Hello{SF: 8, CR: 4, OSF: 2, Channel: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Send(tr.Antennas[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Finish(); err != nil {
			t.Fatal(err)
		}
		st.Flush()

		hs := httptest.NewServer(st.Handler())
		defer hs.Close()
		resp, err := http.Get(hs.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d %s: status %d: %s", workers, query, resp.StatusCode, body)
		}
		return string(body)
	}

	// Packet records on channel 3, newest first — the everyday triage query.
	const packetQuery = "?type=packet&channel=3&limit=100"
	ref := run(1, packetQuery)
	if ref == "" {
		t.Fatal("serial run produced no packet records on channel 3")
	}

	// Every record carries the origin the server stamped at hello time, and
	// the run surfaces at least one failure reason to filter on.
	var reasons []string
	for _, line := range splitLines(ref) {
		m, err := obs.MetaOf([]byte(line))
		if err != nil {
			t.Fatalf("bad record in response: %v", err)
		}
		if m.Gateway != "gw-e2e" || m.Channel != 3 || m.SF != 8 {
			t.Fatalf("record origin = %s/%d/%d, want gw-e2e/3/8", m.Gateway, m.Channel, m.SF)
		}
		if m.Reason != "" {
			reasons = append(reasons, m.Reason)
		}
	}
	if len(reasons) == 0 {
		t.Fatal("collided trace produced no failure reasons to query by")
	}
	sort.Strings(reasons)
	reasonQuery := "?reason=" + reasons[0] + "&channel=3&limit=100"
	refReason := run(1, reasonQuery)
	if len(splitLines(refReason)) == 0 {
		t.Fatalf("reason query %s returned no rows", reasonQuery)
	}

	for _, workers := range []int{2, 4} {
		if got := run(workers, packetQuery); got != ref {
			t.Errorf("workers=%d: %s diverged from serial run\nserial:\n%s\nparallel:\n%s",
				workers, packetQuery, ref, got)
		}
		if got := run(workers, reasonQuery); got != refReason {
			t.Errorf("workers=%d: %s diverged from serial run", workers, reasonQuery)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}
