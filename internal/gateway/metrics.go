package gateway

import (
	"sync"

	"tnb/internal/metrics"
)

// Metrics instruments the network front-end. All methods are nil-safe.
type Metrics struct {
	ConnectionsActive *metrics.Gauge   // currently open client connections
	ConnectionsTotal  *metrics.Counter // connections accepted since start
	HelloRejected     *metrics.Counter // connections dropped at the hello line
	BytesIn           *metrics.Counter // raw IQ bytes read from clients
	ReportsOut        *metrics.Counter // decoded-packet reports written
}

// NewMetrics registers the gateway instruments on reg. Registration is
// get-or-create, so calling it twice with the same registry returns the
// same instruments — tests use that to read what a Server recorded.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		ConnectionsActive: reg.Gauge("tnb_gateway_connections_active"),
		ConnectionsTotal:  reg.Counter("tnb_gateway_connections_total"),
		HelloRejected:     reg.Counter("tnb_gateway_hello_rejected_total"),
		BytesIn:           reg.Counter("tnb_gateway_bytes_in_total"),
		ReportsOut:        reg.Counter("tnb_gateway_reports_out_total"),
	}
}

var (
	defaultMetricsOnce sync.Once
	defaultMetrics     *Metrics
)

// DefaultMetrics returns the shared gateway instruments on metrics.Default.
func DefaultMetrics() *Metrics {
	defaultMetricsOnce.Do(func() { defaultMetrics = NewMetrics(metrics.Default) })
	return defaultMetrics
}

func (m *Metrics) onConnOpen() {
	if m != nil {
		m.ConnectionsTotal.Inc()
		m.ConnectionsActive.Inc()
	}
}

func (m *Metrics) onConnClose() {
	if m != nil {
		m.ConnectionsActive.Dec()
	}
}

func (m *Metrics) onHelloRejected() {
	if m != nil {
		m.HelloRejected.Inc()
	}
}

func (m *Metrics) onBytesIn(n int) {
	if m != nil {
		m.BytesIn.Add(uint64(n))
	}
}

func (m *Metrics) onReports(n int) {
	if m != nil {
		m.ReportsOut.Add(uint64(n))
	}
}
