package gateway

import (
	"fmt"
	"sync"

	"tnb/internal/metrics"
)

// Metrics instruments the network front-end. All methods are nil-safe.
type Metrics struct {
	ConnectionsActive *metrics.Gauge   // currently open client connections
	ConnectionsTotal  *metrics.Counter // connections accepted since start
	HelloRejected     *metrics.Counter // connections dropped at the hello line
	BytesIn           *metrics.Counter // raw IQ bytes read from clients
	ReportsOut        *metrics.Counter // decoded-packet reports written
	OverloadShed      *metrics.Counter // connections refused at the connection budget
	SampleLimit       *metrics.Counter // connections closed at the per-conn sample cap
	ReadTimeouts      *metrics.Counter // connections dropped by the read deadline
	WriteTimeouts     *metrics.Counter // connections dropped by the write deadline
	ClientAborts      *metrics.Counter // transports that died mid-stream (reset/broken pipe)
	StreamOverflow    *metrics.Counter // connections closed at the decode-buffer ceiling
	ShardsActive      *metrics.Gauge   // live (channel, SF) decode shards
	ShardBatches      *metrics.Counter // decode batches processed across all shards
	ShardOverload     *metrics.Counter // connections shed at a full shard queue
}

// NewMetrics registers the gateway instruments on reg. Registration is
// get-or-create, so calling it twice with the same registry returns the
// same instruments — tests use that to read what a Server recorded.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		ConnectionsActive: reg.Gauge("tnb_gateway_connections_active"),
		ConnectionsTotal:  reg.Counter("tnb_gateway_connections_total"),
		HelloRejected:     reg.Counter("tnb_gateway_hello_rejected_total"),
		BytesIn:           reg.Counter("tnb_gateway_bytes_in_total"),
		ReportsOut:        reg.Counter("tnb_gateway_reports_out_total"),
		OverloadShed:      reg.Counter("tnb_gateway_overload_shed_total"),
		SampleLimit:       reg.Counter("tnb_gateway_sample_limit_total"),
		ReadTimeouts:      reg.Counter("tnb_gateway_read_timeouts_total"),
		WriteTimeouts:     reg.Counter("tnb_gateway_write_timeouts_total"),
		ClientAborts:      reg.Counter("tnb_gateway_client_aborts_total"),
		StreamOverflow:    reg.Counter("tnb_gateway_stream_overflow_total"),
		ShardsActive:      reg.Gauge("tnb_gateway_shards_active"),
		ShardBatches:      reg.Counter("tnb_gateway_shard_batches_total"),
		ShardOverload:     reg.Counter("tnb_gateway_shard_overload_total"),
	}
}

// ShardMetrics instruments one (channel, SF) decode shard; the shard key is
// carried as a metric label, so every shard's queue behavior is visible
// individually on the ops endpoint. All methods are nil-safe.
type ShardMetrics struct {
	Batches    *metrics.Counter // decode batches processed by this shard
	QueueDepth *metrics.Gauge   // batches waiting or in flight on this shard
}

// NewShardMetrics registers the per-shard instruments for key on reg.
// Registration is get-or-create, matching NewMetrics.
func NewShardMetrics(reg *metrics.Registry, key ShardKey) *ShardMetrics {
	label := fmt.Sprintf("{shard=%q}", key.String())
	return &ShardMetrics{
		Batches:    reg.Counter("tnb_gateway_shard_batches_by_shard_total" + label),
		QueueDepth: reg.Gauge("tnb_gateway_shard_queue_depth" + label),
	}
}

func (m *ShardMetrics) onBatch() {
	if m != nil {
		m.Batches.Inc()
	}
}

func (m *ShardMetrics) onEnqueue() {
	if m != nil {
		m.QueueDepth.Inc()
	}
}

func (m *ShardMetrics) onDequeue() {
	if m != nil {
		m.QueueDepth.Dec()
	}
}

var (
	defaultMetricsOnce sync.Once
	defaultMetrics     *Metrics
)

// DefaultMetrics returns the shared gateway instruments on metrics.Default.
func DefaultMetrics() *Metrics {
	defaultMetricsOnce.Do(func() { defaultMetrics = NewMetrics(metrics.Default) })
	return defaultMetrics
}

func (m *Metrics) onConnOpen() {
	if m != nil {
		m.ConnectionsTotal.Inc()
		m.ConnectionsActive.Inc()
	}
}

func (m *Metrics) onConnClose() {
	if m != nil {
		m.ConnectionsActive.Dec()
	}
}

func (m *Metrics) onHelloRejected() {
	if m != nil {
		m.HelloRejected.Inc()
	}
}

func (m *Metrics) onBytesIn(n int) {
	if m != nil {
		m.BytesIn.Add(uint64(n))
	}
}

func (m *Metrics) onReports(n int) {
	if m != nil {
		m.ReportsOut.Add(uint64(n))
	}
}

func (m *Metrics) onOverloadShed() {
	if m != nil {
		m.OverloadShed.Inc()
	}
}

func (m *Metrics) onSampleLimit() {
	if m != nil {
		m.SampleLimit.Inc()
	}
}

func (m *Metrics) onReadTimeout() {
	if m != nil {
		m.ReadTimeouts.Inc()
	}
}

func (m *Metrics) onWriteTimeout() {
	if m != nil {
		m.WriteTimeouts.Inc()
	}
}

func (m *Metrics) onClientAbort() {
	if m != nil {
		m.ClientAborts.Inc()
	}
}

func (m *Metrics) onStreamOverflow() {
	if m != nil {
		m.StreamOverflow.Inc()
	}
}

func (m *Metrics) onShardOpen() {
	if m != nil {
		m.ShardsActive.Inc()
	}
}

func (m *Metrics) onShardBatch() {
	if m != nil {
		m.ShardBatches.Inc()
	}
}

func (m *Metrics) onShardOverload() {
	if m != nil {
		m.ShardOverload.Inc()
	}
}
