package gateway

import (
	"sync"

	"tnb/internal/metrics"
)

// Metrics instruments the network front-end. All methods are nil-safe.
type Metrics struct {
	ConnectionsActive *metrics.Gauge   // currently open client connections
	ConnectionsTotal  *metrics.Counter // connections accepted since start
	HelloRejected     *metrics.Counter // connections dropped at the hello line
	BytesIn           *metrics.Counter // raw IQ bytes read from clients
	ReportsOut        *metrics.Counter // decoded-packet reports written
	OverloadShed      *metrics.Counter // connections refused at the connection budget
	SampleLimit       *metrics.Counter // connections closed at the per-conn sample cap
	ReadTimeouts      *metrics.Counter // connections dropped by the read deadline
	WriteTimeouts     *metrics.Counter // connections dropped by the write deadline
	ClientAborts      *metrics.Counter // transports that died mid-stream (reset/broken pipe)
	StreamOverflow    *metrics.Counter // connections closed at the decode-buffer ceiling
}

// NewMetrics registers the gateway instruments on reg. Registration is
// get-or-create, so calling it twice with the same registry returns the
// same instruments — tests use that to read what a Server recorded.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		ConnectionsActive: reg.Gauge("tnb_gateway_connections_active"),
		ConnectionsTotal:  reg.Counter("tnb_gateway_connections_total"),
		HelloRejected:     reg.Counter("tnb_gateway_hello_rejected_total"),
		BytesIn:           reg.Counter("tnb_gateway_bytes_in_total"),
		ReportsOut:        reg.Counter("tnb_gateway_reports_out_total"),
		OverloadShed:      reg.Counter("tnb_gateway_overload_shed_total"),
		SampleLimit:       reg.Counter("tnb_gateway_sample_limit_total"),
		ReadTimeouts:      reg.Counter("tnb_gateway_read_timeouts_total"),
		WriteTimeouts:     reg.Counter("tnb_gateway_write_timeouts_total"),
		ClientAborts:      reg.Counter("tnb_gateway_client_aborts_total"),
		StreamOverflow:    reg.Counter("tnb_gateway_stream_overflow_total"),
	}
}

var (
	defaultMetricsOnce sync.Once
	defaultMetrics     *Metrics
)

// DefaultMetrics returns the shared gateway instruments on metrics.Default.
func DefaultMetrics() *Metrics {
	defaultMetricsOnce.Do(func() { defaultMetrics = NewMetrics(metrics.Default) })
	return defaultMetrics
}

func (m *Metrics) onConnOpen() {
	if m != nil {
		m.ConnectionsTotal.Inc()
		m.ConnectionsActive.Inc()
	}
}

func (m *Metrics) onConnClose() {
	if m != nil {
		m.ConnectionsActive.Dec()
	}
}

func (m *Metrics) onHelloRejected() {
	if m != nil {
		m.HelloRejected.Inc()
	}
}

func (m *Metrics) onBytesIn(n int) {
	if m != nil {
		m.BytesIn.Add(uint64(n))
	}
}

func (m *Metrics) onReports(n int) {
	if m != nil {
		m.ReportsOut.Add(uint64(n))
	}
}

func (m *Metrics) onOverloadShed() {
	if m != nil {
		m.OverloadShed.Inc()
	}
}

func (m *Metrics) onSampleLimit() {
	if m != nil {
		m.SampleLimit.Inc()
	}
}

func (m *Metrics) onReadTimeout() {
	if m != nil {
		m.ReadTimeouts.Inc()
	}
}

func (m *Metrics) onWriteTimeout() {
	if m != nil {
		m.WriteTimeouts.Inc()
	}
}

func (m *Metrics) onClientAbort() {
	if m != nil {
		m.ClientAborts.Inc()
	}
}

func (m *Metrics) onStreamOverflow() {
	if m != nil {
		m.StreamOverflow.Inc()
	}
}
