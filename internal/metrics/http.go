package metrics

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Handler returns the ops endpoint for a registry:
//
//	GET /metrics       Prometheus text exposition
//	GET /metrics.json  the same registry as JSON (tnbsim's dump schema)
//	GET /healthz       200 "ok" — liveness only
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// ListenAndServe serves Handler(r) on addr until ctx is canceled. It returns
// the error from the HTTP server, or nil on clean shutdown.
func ListenAndServe(ctx context.Context, addr string, r *Registry) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(ctx, ln, r)
}

// Serve is ListenAndServe on an existing listener.
func Serve(ctx context.Context, ln net.Listener, r *Registry) error {
	return ServeHandler(ctx, ln, Handler(r))
}

// ListenAndServeHandler is ListenAndServe for a caller-composed handler —
// e.g. the metrics mux extended with /debug/traces and /debug/pprof.
func ListenAndServeHandler(ctx context.Context, addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeHandler(ctx, ln, h)
}

// ServeHandler serves an arbitrary handler on ln with the same lifecycle as
// Serve (shutdown on ctx cancel, nil on clean exit).
func ServeHandler(ctx context.Context, ln net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(shutCtx)
		case <-done:
		}
	}()
	err := srv.Serve(ln)
	close(done)
	if ctx.Err() != nil && err == http.ErrServerClosed {
		return nil
	}
	return err
}
