package metrics

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestOpsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Add(42)
	r.Histogram("ops_seconds", []float64{1}).Observe(0.5)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, r) }()

	base := "http://" + ln.Addr().String()
	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "ops_total 42") || !strings.Contains(body, "ops_seconds_count 1") {
		t.Errorf("/metrics body:\n%s", body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type %q", ct)
	}

	body, ct = get("/metrics.json")
	if ct != "application/json" {
		t.Errorf("/metrics.json content-type %q", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if snap["ops_total"] != float64(42) {
		t.Errorf("ops_total = %v", snap["ops_total"])
	}

	body, _ = get("/healthz")
	if body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("ops server did not shut down")
	}
}
