package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Metrics are emitted in sorted-name order; label
// variants of one base name share a single # TYPE line.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastTyped := ""
	for _, name := range r.sortedNames() {
		e := r.get(name)
		if e == nil {
			continue // deleted concurrently; registry has no delete today, but stay safe
		}
		base, labels := splitName(name)
		if base != lastTyped {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typeString(e.kind)); err != nil {
				return err
			}
			lastTyped = base
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", name, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", name, e.g.Value())
		case kindHistogram:
			err = writePromHistogram(w, base, labels, e.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// writePromHistogram emits the _bucket/_sum/_count triplet, splicing the
// le label into any existing label block.
func writePromHistogram(w io.Writer, base, labels string, h *Histogram) error {
	cum, count, sum := h.snapshot()
	for i, ub := range h.upper {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, spliceLabel(labels, "le", formatBound(ub)), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, spliceLabel(labels, "le", "+Inf"), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, count)
	return err
}

// spliceLabel appends key="value" to a (possibly empty) {…} label block.
func spliceLabel(labels, key, value string) string {
	if labels == "" {
		return fmt.Sprintf("{%s=%q}", key, value)
	}
	return fmt.Sprintf("%s,%s=%q}", strings.TrimSuffix(labels, "}"), key, value)
}

// formatBound renders a bucket upper bound the way Prometheus expects:
// shortest decimal form, no exponent switch surprises for common values.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histogramJSON is the JSON shape of one histogram.
type histogramJSON struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"` // upper bound → cumulative count
}

// Snapshot returns the registry as a plain name → value map: counters and
// gauges as numbers, histograms as {count, sum, buckets}. It is the schema
// shared by the gateway's /metrics.json endpoint and tnbsim's -metrics-out
// dump, so offline experiments and live gateways are directly comparable.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, name := range r.sortedNames() {
		e := r.get(name)
		if e == nil {
			continue
		}
		switch e.kind {
		case kindCounter:
			out[name] = e.c.Value()
		case kindGauge:
			out[name] = e.g.Value()
		case kindHistogram:
			cum, count, sum := e.h.snapshot()
			bk := make(map[string]uint64, len(cum)+1)
			for i, ub := range e.h.upper {
				bk[formatBound(ub)] = cum[i]
			}
			bk["+Inf"] = count
			out[name] = histogramJSON{Count: count, Sum: sum, Buckets: bk}
		}
	}
	return out
}

// WriteJSON renders Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
