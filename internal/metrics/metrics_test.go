package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("test_total") != c {
		t.Error("get-or-create returned a different counter")
	}

	g := r.Gauge("test_gauge")
	g.Inc()
	g.Add(10)
	g.Dec()
	if g.Value() != 10 {
		t.Errorf("gauge = %d, want 10", g.Value())
	}
	g.Set(-3)
	if g.Value() != -3 {
		t.Errorf("gauge = %d, want -3", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if math.Abs(sum-556.5) > 1e-9 {
		t.Errorf("sum = %g, want 556.5", sum)
	}
	// ≤1: {0.5, 1}; ≤10: +{5}; ≤100: +{50}; +Inf picks up 500.
	want := []uint64{2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
}

func TestHistogramTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("timer_seconds", DurationBuckets)
	tm := h.Start()
	time.Sleep(time.Millisecond)
	tm.Stop()
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Sum() <= 0 {
		t.Errorf("sum = %g, want > 0", h.Sum())
	}
	// Zero timer and zero start are safe no-ops.
	Timer{}.Stop()
	h.ObserveSince(time.Time{})
	if h.Count() != 1 {
		t.Errorf("zero-start observation was recorded")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x_total")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "9leading", "has space", `bad{unclosed`, `{label="only"}`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name)
		}()
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("tnb_packets_total").Add(7)
	r.Gauge("tnb_active").Set(2)
	h := r.Histogram(`tnb_stage_duration_seconds{stage="detect"}`, []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE tnb_packets_total counter",
		"tnb_packets_total 7",
		"# TYPE tnb_active gauge",
		"tnb_active 2",
		"# TYPE tnb_stage_duration_seconds histogram",
		`tnb_stage_duration_seconds_bucket{stage="detect",le="0.01"} 1`,
		`tnb_stage_duration_seconds_bucket{stage="detect",le="+Inf"} 2`,
		`tnb_stage_duration_seconds_sum{stage="detect"} 0.505`,
		`tnb_stage_duration_seconds_count{stage="detect"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
}

func TestTypeLineSharedAcrossLabelVariants(t *testing.T) {
	r := NewRegistry()
	r.Counter(`x_total{k="a"}`).Inc()
	r.Counter(`x_total{k="b"}`).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "# TYPE x_total"); n != 1 {
		t.Errorf("got %d TYPE lines, want 1\n%s", n, sb.String())
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Gauge("g").Set(-1)
	r.Histogram("h_seconds", []float64{1}).Observe(2)

	snap := r.Snapshot()
	if snap["c_total"] != uint64(3) {
		t.Errorf("c_total = %v", snap["c_total"])
	}
	if snap["g"] != int64(-1) {
		t.Errorf("g = %v", snap["g"])
	}
	hj, ok := snap["h_seconds"].(histogramJSON)
	if !ok {
		t.Fatalf("h_seconds has type %T", snap["h_seconds"])
	}
	if hj.Count != 1 || hj.Sum != 2 || hj.Buckets["+Inf"] != 1 || hj.Buckets["1"] != 0 {
		t.Errorf("histogram snapshot: %+v", hj)
	}
}

func TestConcurrentSamplePath(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("con_total")
			g := r.Gauge("con_gauge")
			h := r.Histogram("con_seconds", DurationBuckets)
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("con_total").Value(); v != 8000 {
		t.Errorf("counter = %d, want 8000", v)
	}
	if v := r.Gauge("con_gauge").Value(); v != 8000 {
		t.Errorf("gauge = %d, want 8000", v)
	}
	if c := r.Histogram("con_seconds", DurationBuckets).Count(); c != 8000 {
		t.Errorf("histogram count = %d, want 8000", c)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("b[%d] = %g, want %g", i, b[i], want[i])
		}
	}
}
