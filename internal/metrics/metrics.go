// Package metrics is the gateway's observability subsystem: a small,
// dependency-free instrumentation library with atomic counters, gauges and
// fixed-bucket streaming histograms, plus a registry that renders both the
// Prometheus text exposition format and JSON.
//
// The sample path (Inc, Add, Set, Observe) is lock-free — a handful of
// atomic operations — so instruments can sit on the receiver hot path
// without measurable cost. Registration (Registry.Counter and friends) takes
// a mutex and is meant to be done once, at setup; it is get-or-create, so
// repeated registration of the same name returns the same instrument.
//
// Metric names follow the Prometheus convention and may carry a fixed label
// set inline, e.g.
//
//	reg.Counter(`tnb_packets_decoded_total`)
//	reg.Histogram(`tnb_stage_duration_seconds{stage="detect"}`, metrics.DurationBuckets)
//
// The label block, if present, must be last and is emitted verbatim.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a streaming histogram with a fixed bucket layout decided at
// registration. Observations are cumulative-bucket counts in the Prometheus
// style: bucket i counts observations ≤ upper[i], with an implicit +Inf
// bucket equal to the total count.
type Histogram struct {
	upper   []float64 // sorted upper bounds, exclusive of +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, buckets: make([]atomic.Uint64, len(upper))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v; equal bounds are inclusive.
	i := sort.SearchFloat64s(h.upper, v)
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. A zero start is
// ignored, so callers can thread a zero time.Time through disabled paths.
func (h *Histogram) ObserveSince(start time.Time) {
	if start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Start returns a named-timer handle for this histogram. Usage:
//
//	defer h.Start().Stop()
func (h *Histogram) Start() Timer { return Timer{h: h, start: time.Now()} }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts aligned with h.upper, plus the
// total count and sum. Reads are atomic per field; a concurrent Observe may
// straddle the snapshot, which Prometheus scraping tolerates.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.upper))
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), h.Sum()
}

// Timer measures one interval into a histogram, in seconds.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Stop records the elapsed time. Safe on the zero Timer (no-op).
func (t Timer) Stop() {
	if t.h != nil {
		t.h.ObserveSince(t.start)
	}
}

// DurationBuckets is the default layout for stage latencies: exponential
// from 50 µs to ~27 s, wide enough for both a single detection window and a
// full offline simulation pass.
var DurationBuckets = ExpBuckets(50e-6, 3, 12)

// SizeBuckets is the default layout for byte/sample sizes: exponential from
// 1 KiB to 1 GiB.
var SizeBuckets = ExpBuckets(1024, 4, 11)

// ExpBuckets returns n exponentially spaced upper bounds starting at start
// and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// metricKind discriminates the registry's stored instruments.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type entry struct {
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments and renders them. The zero value is not
// usable; use NewRegistry or the package-level Default.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// Default is the process-wide registry. Commands serve or dump it;
// instruments created without an explicit registry land here.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on first
// use. It panics if name is invalid or already holds a different kind.
func (r *Registry) Counter(name string) *Counter {
	return r.lookup(name, kindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.lookup(name, kindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket layout on first use. Later calls ignore buckets and
// return the existing instrument.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	return r.lookup(name, kindHistogram, func(e *entry) { e.h = newHistogram(buckets) }).h
}

// lookup returns the entry for name, creating and filling it (under r.mu)
// with the requested kind on first use.
func (r *Registry) lookup(name string, kind metricKind, fill func(*entry)) *entry {
	if err := checkName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %q already registered with a different kind", name))
		}
		return e
	}
	e := &entry{kind: kind}
	fill(e)
	r.entries[name] = e
	return e
}

// checkName enforces "identifier, optionally followed by a {label} block at
// the end" — enough structure for the renderers to splice histogram suffixes
// correctly.
func checkName(name string) error {
	base, labels := splitName(name)
	if base == "" {
		return fmt.Errorf("metrics: empty metric name in %q", name)
	}
	for i, c := range base {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("metrics: invalid metric name %q", name)
		}
	}
	if labels != "" && (!strings.HasPrefix(labels, "{") || !strings.HasSuffix(labels, "}") || len(labels) < 3) {
		return fmt.Errorf("metrics: malformed label block in %q", name)
	}
	return nil
}

// splitName separates `base{labels}` into base and the `{...}` block
// (empty when absent).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// sortedNames returns registered names sorted so that output is stable and
// same-base metrics (label variants) are adjacent.
func (r *Registry) sortedNames() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

func (r *Registry) get(name string) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[name]
}
