// Package thrive implements TnB's peak assignment (paper §5): at every
// checking point, the symbols of all collided packets that intersect it are
// each assigned one FFT peak, chosen by a matching cost that combines the
// sibling cost (Eq. 1: relative height among the copies of the same
// transmitted peak across packets' signal vectors) and the history cost
// (Eq. 2: deviation from a curve fit of the node's past peak heights).
//
// The package also provides the AlignTrack* assignment policy (paper §8.2),
// which assigns a peak to a symbol when the peak is highest in that
// symbol's own signal vector — the comparison baseline.
package thrive

import (
	"math"

	"tnb/internal/lora"
	"tnb/internal/obs"
	"tnb/internal/peaks"
	"tnb/internal/stats"
)

// Policy selects the peak-assignment algorithm.
type Policy int

const (
	// PolicyThrive uses the full matching cost (sibling + history).
	PolicyThrive Policy = iota
	// PolicySibling uses the sibling cost only (the "Sibling"
	// configuration of paper §8.4).
	PolicySibling
	// PolicyAlignTrack is the AlignTrack* baseline: a peak belongs to the
	// symbol where it is highest among its siblings.
	PolicyAlignTrack
)

// Config tunes the engine. The zero value selects the paper's settings via
// NewEngine.
type Config struct {
	Policy Policy
	// Omega is the history-cost weight ω (paper §5.3.3; 0.1).
	Omega float64
	// SmoothWindow is the moving-average window of the history curve fit.
	SmoothWindow int
	// HistorySpread is the multiple of the deviation D used for the upper
	// and lower estimates (paper: U = A + 4D, L = A - 4D).
	HistorySpread float64
}

// DefaultConfig returns the paper's parameter choices.
func DefaultConfig() Config {
	return Config{Policy: PolicyThrive, Omega: 0.1, SmoothWindow: 7, HistorySpread: 4}
}

// PacketState tracks one detected packet through peak assignment.
type PacketState struct {
	ID   int
	Calc *peaks.Calculator

	// Known marks a packet whose peaks are known: decoded correctly in a
	// previous pass. Its peaks are masked rather than assigned.
	Known bool
	// KnownShifts holds the true data-symbol shifts of a Known packet.
	KnownShifts []int
	// PriorHeights, when non-nil, holds the peak heights observed in a
	// previous pass; the history fit then runs over the full packet
	// (paper §5.3.3, second decoding attempt).
	PriorHeights []float64

	// Assigned receives the assigned peak bin per data symbol (-1 until
	// assigned).
	Assigned []int
	// Heights receives the assigned peak heights, feeding the history.
	Heights []float64
	// Alternates receives the runner-up peak bin per symbol (-1 when the
	// symbol had no second candidate); list decoding uses it to retry
	// failed packets.
	Alternates []int

	// Trace, when non-nil, records each symbol's assignment decision
	// (winning peak, runner-up, cost split, margin). Nil costs nothing.
	Trace *obs.PacketTrace

	historySeed []float64 // preamble peak heights (bootstrap)
}

// Assignment is one packet's output of the peak-assignment stage: the
// chosen peak bin, its height, and the runner-up bin per data symbol. It is
// the typed boundary the stage graph records and diffs; the slices alias
// the PacketState's, so it is a view, not a copy.
type Assignment struct {
	Assigned   []int
	Heights    []float64
	Alternates []int
}

// Assignment returns the packet's peak-assignment boundary view.
func (ps *PacketState) Assignment() Assignment {
	return Assignment{Assigned: ps.Assigned, Heights: ps.Heights, Alternates: ps.Alternates}
}

// NewPacketState wraps a calculator for assignment.
func NewPacketState(id int, calc *peaks.Calculator) *PacketState {
	n := calc.NumData()
	ps := &PacketState{
		ID:         id,
		Calc:       calc,
		Assigned:   make([]int, n),
		Heights:    make([]float64, n),
		Alternates: make([]int, n),
	}
	for i := range ps.Assigned {
		ps.Assigned[i] = -1
		ps.Alternates[i] = -1
	}
	return ps
}

// Engine runs peak assignment over a trace. It owns per-checking-point
// scratch (a symbol pool, history buffers, and a median selector) that grows
// to the densest checking point seen and is reused, so Run performs no
// steady-state allocations; an Engine is therefore not safe for concurrent
// use, matching the serial greedy assignment it implements.
type Engine struct {
	cfg Config
	p   lora.Params

	pool []*symbol // pooled symbol slots, grow-once
	syms []*symbol // symbols of the current checking point, reused
	sel  stats.Selector
	hist []float64 // observed-heights scratch for the history fit
	fit  []float64 // moving-average scratch for the history fit
}

// NewEngine builds an engine; zero-value config fields fall back to the
// paper's defaults.
func NewEngine(p lora.Params, cfg Config) *Engine {
	def := DefaultConfig()
	if cfg.Omega == 0 {
		cfg.Omega = def.Omega
	}
	if cfg.SmoothWindow == 0 {
		cfg.SmoothWindow = def.SmoothWindow
	}
	if cfg.HistorySpread == 0 {
		cfg.HistorySpread = def.HistorySpread
	}
	return &Engine{cfg: cfg, p: p}
}

// symbol is one data symbol intersecting the current checking point. Symbols
// live in the engine's pool: every slice field keeps its capacity across
// checking points and is re-sliced rather than reallocated.
type symbol struct {
	pkt   *PacketState
	idx   int
	start float64
	y     []float64 // masked working copy of the signal vector
	ps    []peaks.Peak
	costs []float64
	// sibCosts/histCosts keep the per-peak cost split for tracing; they are
	// filled only when traced is set (the packet carries a trace).
	sibCosts  []float64
	histCosts []float64
	traced    bool
	alive     bool
}

// Run assigns peaks for every unknown packet across the trace of traceLen
// samples. Packets must be sorted by start time (any order works, but
// sorted keeps the history causal).
func (e *Engine) Run(pkts []*PacketState, traceLen int) {
	sym := e.p.SymbolSamples()
	for _, ps := range pkts {
		if ps.historySeed == nil {
			ps.historySeed = ps.Calc.PreamblePeakHeights()
		}
	}
	for cp := 0; cp <= traceLen+sym; cp += sym {
		e.runCheckingPoint(pkts, float64(cp))
	}
}

// symbolAt returns the data-symbol index of the packet whose symbol
// interior contains the checking point, or -1.
func symbolAt(ps *PacketState, cp float64, symSamples int) int {
	s0 := ps.Calc.SymbolStart(0)
	idx := int(math.Ceil((cp-s0)/float64(symSamples))) - 1
	if idx < 0 || idx >= ps.Calc.NumData() {
		return -1
	}
	return idx
}

func (e *Engine) runCheckingPoint(pkts []*PacketState, cp float64) {
	symSamples := e.p.SymbolSamples()
	n := e.p.N()

	// Collect the unknown symbols intersecting this checking point into
	// pooled slots: the pool grows to the densest checking point and the
	// per-slot buffers keep their capacity, so a steady-state call copies
	// the signal vectors without allocating.
	e.syms = e.syms[:0]
	for _, ps := range pkts {
		if ps.Known {
			continue
		}
		idx := symbolAt(ps, cp, symSamples)
		if idx < 0 || ps.Assigned[idx] >= 0 {
			continue
		}
		var s *symbol
		if len(e.syms) < len(e.pool) {
			s = e.pool[len(e.syms)]
		} else {
			s = &symbol{}
			e.pool = append(e.pool, s)
		}
		s.pkt, s.idx = ps, idx
		s.start = ps.Calc.SymbolStart(idx)
		s.y = append(s.y[:0], ps.Calc.SigVec(idx)...)
		s.ps = s.ps[:0]
		s.costs = s.costs[:0]
		s.sibCosts, s.histCosts = s.sibCosts[:0], s.histCosts[:0]
		s.traced = false
		s.alive = true
		e.syms = append(e.syms, s)
	}
	syms := e.syms
	if len(syms) == 0 {
		return
	}
	m := len(syms)

	// Mask peaks that are already known: preamble symbols and decoded
	// packets (paper §5.3.4).
	for _, s := range syms {
		for _, other := range pkts {
			if other == s.pkt {
				continue
			}
			e.maskKnownInto(s, other, symSamples, n)
		}
	}

	// Locate peaks: at most 2M per symbol (paper §5.3.1). The selectivity
	// is tied to the noise floor (median of the vector) rather than the
	// peak range, so a weak node's peak survives next to a 20 dB stronger
	// collider; the 2M cap bounds the list.
	for _, s := range syms {
		s.ps = peaks.FindInto(s.ps, s.y, 6*e.sel.Median(s.y), 2*m)
	}

	if e.cfg.Policy == PolicyAlignTrack {
		e.assignAlignTrack(syms, n)
		return
	}

	// Matching costs.
	for _, s := range syms {
		s.costs = growFloats(s.costs, len(s.ps))
		if s.pkt.Trace != nil {
			s.traced = true
			s.sibCosts = growFloats(s.sibCosts, len(s.ps))
			s.histCosts = growFloats(s.histCosts, len(s.ps))
		}
		var hist historyFit
		haveHist := false
		if e.cfg.Policy == PolicyThrive {
			hist, haveHist = e.fitHistory(s.pkt, s.idx)
		}
		for pi, pk := range s.ps {
			sc := e.siblingCost(s, pk, syms, n)
			hc := 0.0
			if haveHist {
				hc = e.historyCost(&hist, pk.Height)
			}
			if s.traced {
				s.sibCosts[pi] = sc
				s.histCosts[pi] = hc
			}
			s.costs[pi] = sc + hc
		}
	}

	// Greedy assignment (paper §5.3.4).
	for remaining := m; remaining > 0; remaining-- {
		sel := e.selectSymbol(syms)
		if sel == nil {
			break
		}
		e.assignBest(sel, syms, n)
	}
	// Any symbol left without peaks falls back to its strongest bin.
	for _, s := range syms {
		if s.alive {
			hb := peaks.HighestBin(s.y)
			e.finalize(s, hb, s.y[hb], fallbackDecision)
		}
	}
}

// fallbackDecision marks a symbol assigned without a surviving peak; the
// finalize call fills in the bin and height.
var fallbackDecision = obs.SymbolDecision{Alt: -1, Margin: -1, Fallback: true}

// maskKnownInto removes peaks of a known source (preamble of any packet, or
// all symbols of a decoded packet) from the target symbol's working vector.
func (e *Engine) maskKnownInto(target *symbol, src *PacketState, symSamples, n int) {
	// The target symbol overlaps at most two of src's (possibly preamble)
	// symbols, j0 and j0+1.
	s0 := src.Calc.SymbolStart(0)
	j0 := int(math.Floor((target.start - s0) / float64(symSamples)))
	for _, j := range [2]int{j0, j0 + 1} {
		if !src.Calc.InRange(j) {
			continue
		}
		bin, ok := knownBin(src, j)
		if !ok {
			continue
		}
		pos := math.Mod(float64(bin)+target.pkt.Calc.Alpha()-src.Calc.Alpha(), float64(n))
		peaks.MaskPeak(target.y, pos)
		if j >= 0 {
			// Data-symbol masks come from decoded colliders (second-pass
			// masking); preamble masks (j < 0) are routine and not counted.
			target.pkt.Trace.OnMask(1)
		}
	}
}

// growFloats returns s resized to length n, reusing its backing array when
// the capacity suffices. The contents are unspecified; callers overwrite
// every element.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// knownBin returns the known peak bin of packet symbol j: preamble upchirps
// and sync symbols are always known; data symbols only for decoded packets.
// The 2.25 downchirps spread in up-dechirped windows and produce no peak.
func knownBin(ps *PacketState, j int) (int, bool) {
	if j < 0 {
		k := j + lora.PreambleUpchirps + lora.SyncSymbols
		switch {
		case k < 0:
			return 0, false
		case k < lora.PreambleUpchirps:
			return 0, true
		case k == lora.PreambleUpchirps:
			return lora.SyncShift1, true
		default:
			return lora.SyncShift2, true
		}
	}
	if ps.Known && j < len(ps.KnownShifts) {
		return ps.KnownShifts[j], true
	}
	// Peaks assigned in this pass but not yet CRC-verified are NOT known
	// (paper §5.3.4): masking them would let one wrong assignment cascade
	// into masking a victim packet's true peak at the next checking point.
	return 0, false
}

// siblingHeight returns the height of the sibling of (bin in s) inside
// other symbol os: a located peak within ±1 bin of the expected position,
// or the raw signal-vector value there (paper §5.3.3).
func siblingHeight(s *symbol, bin float64, os *symbol, n int) float64 {
	pos := math.Mod(bin+os.pkt.Calc.Alpha()-s.pkt.Calc.Alpha(), float64(n))
	if pos < 0 {
		pos += float64(n)
	}
	best := 0.0
	found := false
	for _, pk := range os.ps {
		if circDist(float64(pk.Bin), pos, n) <= 1.5 {
			if pk.Height > best {
				best, found = pk.Height, true
			}
		}
	}
	if found {
		return best
	}
	return os.pkt.Calc.ValueAt(os.idx, pos)
}

// siblingCost computes Eq. 1 for a peak of symbol s: its height relative to
// the tallest sibling across the signal vectors of the other packets'
// overlapping symbols, including the packet's own adjacent symbols' view.
func (e *Engine) siblingCost(s *symbol, pk peaks.Peak, syms []*symbol, n int) float64 {
	hStar := pk.Height
	for _, os := range syms {
		if os == s || os.pkt == s.pkt {
			continue
		}
		if h := siblingHeight(s, float64(pk.Bin), os, n); h > hStar {
			hStar = h
		}
		// The same transmitted peak also lands in the neighbor symbols of
		// the other packet; approximate their view with the raw vector
		// value at the expected position.
		for _, dj := range [2]int{-1, 1} {
			j := os.idx + dj
			if !os.pkt.Calc.InRange(j) {
				continue
			}
			pos := math.Mod(float64(pk.Bin)+os.pkt.Calc.Alpha()-s.pkt.Calc.Alpha(), float64(n))
			if h := os.pkt.Calc.ValueAt(j, pos); h > hStar {
				hStar = h
			}
		}
	}
	if hStar <= 0 {
		return 0
	}
	r := 1 - pk.Height/hStar
	return r * r
}

type historyFit struct {
	a, d float64
}

// fitHistory estimates the expected peak height A and deviation D for the
// packet's symbol idx from the smoothed history of observed heights
// (preamble peaks plus assigned data peaks; paper §5.3.3 and Fig. 6). The
// boolean is false when the packet has no history yet. The history and fit
// live in engine scratch, valid until the next fitHistory call.
func (e *Engine) fitHistory(ps *PacketState, idx int) (historyFit, bool) {
	h := e.hist[:0]
	if ps.PriorHeights != nil {
		// Second pass: fit over the full prior observation and read the
		// fitted value at the symbol itself.
		h = append(h, ps.historySeed...)
		h = append(h, ps.PriorHeights...)
		e.hist = h
		e.fit = stats.MovingAverageInto(e.fit, h, e.cfg.SmoothWindow)
		fit := e.fit
		at := len(ps.historySeed) + idx
		if at >= len(fit) {
			at = len(fit) - 1
		}
		return historyFit{a: fit[at], d: e.sel.MedianAbsResiduals(h, fit)}, true
	}
	h = append(h, ps.historySeed...)
	for j := 0; j < idx; j++ {
		if ps.Assigned[j] >= 0 {
			h = append(h, ps.Heights[j])
		}
	}
	e.hist = h
	if len(h) == 0 {
		return historyFit{}, false
	}
	e.fit = stats.MovingAverageInto(e.fit, h, e.cfg.SmoothWindow)
	fit := e.fit
	return historyFit{a: fit[len(fit)-1], d: e.sel.MedianAbsResiduals(h, fit)}, true
}

// historyCost computes Eq. 2.
func (e *Engine) historyCost(f *historyFit, eta float64) float64 {
	u := f.a + e.cfg.HistorySpread*f.d
	l := math.Max(0, f.a-e.cfg.HistorySpread*f.d)
	switch {
	case eta > u:
		if eta <= 0 {
			return 0
		}
		r := 1 - u/eta
		return e.cfg.Omega * r * r
	case eta >= l:
		return 0
	default:
		if l <= 0 {
			return 0
		}
		r := 1 - eta/l
		return e.cfg.Omega * r * r
	}
}

// selectSymbol picks the next symbol per §5.3.4: the symbol owning a
// minimum-cost peak; ties break toward the symbol with the fewest
// minimum-cost peaks.
func (e *Engine) selectSymbol(syms []*symbol) *symbol {
	const eps = 1e-12
	minCost := math.Inf(1)
	for _, s := range syms {
		if !s.alive {
			continue
		}
		for pi := range s.ps {
			if s.costs[pi] < minCost {
				minCost = s.costs[pi]
			}
		}
	}
	if math.IsInf(minCost, 1) {
		return nil
	}
	var sel *symbol
	selCount := 0
	for _, s := range syms {
		if !s.alive {
			continue
		}
		count := 0
		for pi := range s.ps {
			if s.costs[pi] <= minCost+eps {
				count++
			}
		}
		if count == 0 {
			continue
		}
		if sel == nil || count < selCount {
			sel, selCount = s, count
		}
	}
	return sel
}

// assignBest assigns the minimum-cost peak of sel, records the runner-up
// as the symbol's alternate, masks the chosen peak's siblings in the
// remaining symbols, and retires sel.
func (e *Engine) assignBest(sel *symbol, syms []*symbol, n int) {
	best, bi := math.Inf(1), -1
	second, si := math.Inf(1), -1
	for pi := range sel.ps {
		switch {
		case sel.costs[pi] < best:
			second, si = best, bi
			best, bi = sel.costs[pi], pi
		case sel.costs[pi] < second:
			second, si = sel.costs[pi], pi
		}
	}
	if bi < 0 {
		hb := peaks.HighestBin(sel.y)
		e.finalize(sel, hb, sel.y[hb], fallbackDecision)
		return
	}
	d := obs.SymbolDecision{Alt: -1, Margin: -1, Cost: best}
	if sel.traced {
		d.SiblingCost = sel.sibCosts[bi]
		d.HistoryCost = sel.histCosts[bi]
	}
	if si >= 0 {
		sel.pkt.Alternates[sel.idx] = sel.ps[si].Bin
		d.Alt = sel.ps[si].Bin
		d.Margin = second - best
	}
	pk := sel.ps[bi]
	e.finalize(sel, pk.Bin, pk.Height, d)
	for _, os := range syms {
		if !os.alive || os == sel {
			continue
		}
		pos := math.Mod(float64(pk.Bin)+os.pkt.Calc.Alpha()-sel.pkt.Calc.Alpha(), float64(n))
		if pos < 0 {
			pos += float64(n)
		}
		// Filter in place: each kept element lands at an index already
		// visited, so re-slicing from [:0] never clobbers a pending read.
		filtered := os.ps[:0]
		kept := os.costs[:0]
		keptSib, keptHist := os.sibCosts[:0], os.histCosts[:0]
		for pi, opk := range os.ps {
			if circDist(float64(opk.Bin), pos, n) <= 1.5 {
				continue
			}
			filtered = append(filtered, opk)
			kept = append(kept, os.costs[pi])
			if os.traced {
				keptSib = append(keptSib, os.sibCosts[pi])
				keptHist = append(keptHist, os.histCosts[pi])
			}
		}
		os.ps, os.costs = filtered, kept
		if os.traced {
			os.sibCosts, os.histCosts = keptSib, keptHist
		}
		peaks.MaskPeak(os.y, pos)
	}
}

// finalize commits the assignment and records the traced decision; d's Idx,
// Bin, and Height are filled here so callers only supply the cost fields.
func (e *Engine) finalize(s *symbol, bin int, height float64, d obs.SymbolDecision) {
	s.pkt.Assigned[s.idx] = bin
	s.pkt.Heights[s.idx] = height
	s.alive = false
	if s.pkt.Trace != nil {
		d.Idx = s.idx
		d.Bin = bin
		d.Height = height
		s.pkt.Trace.SetSymbol(d)
	}
}

// assignAlignTrack implements the AlignTrack* policy: every symbol takes
// the peak that is higher in its own signal vector than in any other
// symbol's vector. When several peaks qualify, the choice is arbitrary
// (the strongest is taken) — the failure mode paper §8.4 analyzes.
func (e *Engine) assignAlignTrack(syms []*symbol, n int) {
	for _, s := range syms {
		// Arbitrary choice among aligned peaks: the first qualifying one
		// (peaks are sorted by height, so the strongest), tracked directly
		// instead of collecting the full aligned list.
		alignedBin, alignedHeight := -1, 0.0
		for _, pk := range s.ps {
			highest := true
			for _, os := range syms {
				if os == s || os.pkt == s.pkt {
					continue
				}
				if siblingHeight(s, float64(pk.Bin), os, n) > pk.Height {
					highest = false
					break
				}
			}
			if highest {
				alignedBin, alignedHeight = pk.Bin, pk.Height
				break
			}
		}
		switch {
		case alignedBin >= 0:
			e.finalize(s, alignedBin, alignedHeight, obs.SymbolDecision{Alt: -1, Margin: -1})
		case len(s.ps) > 0:
			e.finalize(s, s.ps[0].Bin, s.ps[0].Height, obs.SymbolDecision{Alt: -1, Margin: -1})
		default:
			hb := peaks.HighestBin(s.y)
			e.finalize(s, hb, s.y[hb], fallbackDecision)
		}
	}
}

func circDist(a, b float64, n int) float64 {
	d := math.Abs(math.Mod(a-b, float64(n)))
	if d > float64(n)/2 {
		d = float64(n) - d
	}
	return d
}
