package thrive

import (
	"math"
	"math/rand"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/peaks"
	"tnb/internal/trace"
)

// buildScenario renders packets into a trace and returns packet states with
// the true (oracle) detection parameters, isolating Thrive from detection.
func buildScenario(t *testing.T, seed int64, p lora.Params, specs []spec) ([]*PacketState, []trace.TxRecord, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(p, 1.8, 1, rng)
	for i, s := range specs {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := b.AddPacket(i, i, payload, s.start, s.snr, s.cfo, nil); err != nil {
			t.Fatal(err)
		}
	}
	tr, recs := b.Build()
	d := lora.NewDemodulator(p)
	var states []*PacketState
	for i, rec := range recs {
		calc := peaks.NewCalculator(d, tr.Antennas, rec.StartSample,
			rec.CFOHz*p.SymbolDuration(), len(rec.Shifts))
		states = append(states, NewPacketState(i, calc))
	}
	return states, recs, tr.Len()
}

type spec struct {
	start, snr, cfo float64
}

func symbolErrors(got []int, want []int) int {
	e := 0
	for i := range want {
		if got[i] != want[i] {
			e++
		}
	}
	return e
}

func TestSinglePacketAssignment(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	states, recs, tl := buildScenario(t, 100, p, []spec{{start: 20000.3, snr: 10, cfo: 1500}})
	e := NewEngine(p, DefaultConfig())
	e.Run(states, tl)
	if errs := symbolErrors(states[0].Assigned, recs[0].Shifts); errs != 0 {
		t.Errorf("%d symbol errors on a collision-free packet", errs)
	}
}

func TestTwoPacketCollision(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	states, recs, tl := buildScenario(t, 101, p, []spec{
		{start: 20000.3, snr: 12, cfo: 1500},
		{start: 20000.3 + 10.4*sym, snr: 8, cfo: -2600},
	})
	e := NewEngine(p, DefaultConfig())
	e.Run(states, tl)
	for i, rec := range recs {
		errs := symbolErrors(states[i].Assigned, rec.Shifts)
		if errs > 2 {
			t.Errorf("packet %d: %d/%d symbol errors", i, errs, len(rec.Shifts))
		}
	}
}

func TestThreePacketCollision(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	states, recs, tl := buildScenario(t, 102, p, []spec{
		{start: 20000.3, snr: 15, cfo: 1500},
		{start: 20000.3 + 9.4*sym, snr: 10, cfo: -2600},
		{start: 20000.3 + 20.7*sym, snr: 5, cfo: 3700},
	})
	e := NewEngine(p, DefaultConfig())
	e.Run(states, tl)
	for i, rec := range recs {
		errs := symbolErrors(states[i].Assigned, rec.Shifts)
		// With BEC downstream, a handful of symbol errors is tolerable;
		// the assignment itself should get the vast majority right.
		if errs > len(rec.Shifts)/6 {
			t.Errorf("packet %d (snr %.0f): %d/%d symbol errors",
				i, rec.SNRdB, errs, len(rec.Shifts))
		}
	}
}

func TestSiblingOnlyStillWorksOnEqualPower(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	states, recs, tl := buildScenario(t, 103, p, []spec{
		{start: 20000.3, snr: 10, cfo: 2100},
		{start: 20000.3 + 12.6*sym, snr: 10, cfo: -1400},
	})
	cfg := DefaultConfig()
	cfg.Policy = PolicySibling
	e := NewEngine(p, cfg)
	e.Run(states, tl)
	for i, rec := range recs {
		errs := symbolErrors(states[i].Assigned, rec.Shifts)
		if errs > len(rec.Shifts)/5 {
			t.Errorf("packet %d: %d/%d errors with sibling-only", i, errs, len(rec.Shifts))
		}
	}
}

func TestHistoryHelpsWithPowerGap(t *testing.T) {
	// A strong and a weak packet: history should keep the weak packet
	// from grabbing the strong packet's leftovers. Thrive must do at
	// least as well as Sibling-only on the weak packet.
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	specs := []spec{
		{start: 20000.3, snr: 20, cfo: 2100},
		{start: 20000.3 + 11.5*sym, snr: 4, cfo: -1400},
	}
	run := func(policy Policy) int {
		states, recs, tl := buildScenario(t, 104, p, specs)
		cfg := DefaultConfig()
		cfg.Policy = policy
		NewEngine(p, cfg).Run(states, tl)
		return symbolErrors(states[1].Assigned, recs[1].Shifts)
	}
	thriveErrs := run(PolicyThrive)
	siblingErrs := run(PolicySibling)
	if thriveErrs > siblingErrs+2 {
		t.Errorf("history hurt: thrive %d errs vs sibling %d", thriveErrs, siblingErrs)
	}
}

func TestKnownPacketMasking(t *testing.T) {
	// Marking the strong packet as Known (decoded) must not degrade the
	// weak packet's assignment.
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	specs := []spec{
		{start: 20000.3, snr: 18, cfo: 2100},
		{start: 20000.3 + 8.5*sym, snr: 3, cfo: -3400},
	}
	states, recs, tl := buildScenario(t, 105, p, specs)
	states[0].Known = true
	states[0].KnownShifts = recs[0].Shifts
	e := NewEngine(p, DefaultConfig())
	e.Run(states, tl)
	if got := states[0].Assigned[0]; got != -1 {
		t.Error("known packet should not be assigned")
	}
	errs := symbolErrors(states[1].Assigned, recs[1].Shifts)
	if errs > len(recs[1].Shifts)/6 {
		t.Errorf("weak packet: %d/%d errors with strong packet masked", errs, len(recs[1].Shifts))
	}
}

func TestSecondPassWithPriorHeights(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	specs := []spec{
		{start: 20000.3, snr: 12, cfo: 2100},
		{start: 20000.3 + 9.5*sym, snr: 7, cfo: -3400},
	}
	states, recs, tl := buildScenario(t, 106, p, specs)
	e := NewEngine(p, DefaultConfig())
	e.Run(states, tl)
	firstErrs := symbolErrors(states[1].Assigned, recs[1].Shifts)

	// Second pass: packet 0 known, packet 1 retried with prior heights.
	states2, _, _ := buildScenario(t, 106, p, specs)
	states2[0].Known = true
	states2[0].KnownShifts = recs[0].Shifts
	states2[1].PriorHeights = append([]float64(nil), states[1].Heights...)
	e.Run(states2, tl)
	secondErrs := symbolErrors(states2[1].Assigned, recs[1].Shifts)
	if secondErrs > firstErrs+2 {
		t.Errorf("second pass worse: %d vs %d errors", secondErrs, firstErrs)
	}
}

func TestAlignTrackPolicyRuns(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	states, recs, tl := buildScenario(t, 107, p, []spec{
		{start: 20000.3, snr: 12, cfo: 1500},
		{start: 20000.3 + 10.4*sym, snr: 9, cfo: -2600},
	})
	cfg := DefaultConfig()
	cfg.Policy = PolicyAlignTrack
	e := NewEngine(p, cfg)
	e.Run(states, tl)
	for i, rec := range recs {
		errs := symbolErrors(states[i].Assigned, rec.Shifts)
		if errs > len(rec.Shifts)/4 {
			t.Errorf("AlignTrack* packet %d: %d/%d errors", i, errs, len(rec.Shifts))
		}
	}
}

func TestHistoryCostEquation2(t *testing.T) {
	e := NewEngine(lora.MustParams(8, 4, 125e3, 8), DefaultConfig())
	f := &historyFit{a: 100, d: 10} // U = 140, L = 60
	if c := e.historyCost(f, 100); c != 0 {
		t.Errorf("in-band cost %g", c)
	}
	if c := e.historyCost(f, 140); c != 0 {
		t.Errorf("at upper bound cost %g", c)
	}
	c := e.historyCost(f, 280) // η = 2U → (1 - 1/2)² · ω
	want := 0.1 * 0.25
	if math.Abs(c-want) > 1e-12 {
		t.Errorf("above-band cost %g, want %g", c, want)
	}
	c = e.historyCost(f, 30) // η = L/2 → (1 - 1/2)² · ω
	if math.Abs(c-want) > 1e-12 {
		t.Errorf("below-band cost %g, want %g", c, want)
	}
	// Degenerate: L clamped at 0 never divides by zero.
	f2 := &historyFit{a: 10, d: 10}
	if c := e.historyCost(f2, 0); c != 0 {
		t.Errorf("zero-η cost %g", c)
	}
}

func TestSymbolAtMapsUniquely(t *testing.T) {
	// Every data symbol must map to exactly one checking point.
	p := lora.MustParams(8, 4, 125e3, 8)
	states, _, tl := buildScenario(t, 108, p, []spec{{start: 23456.7, snr: 10, cfo: 900}})
	ps := states[0]
	sym := p.SymbolSamples()
	counts := make([]int, ps.Calc.NumData())
	for cp := 0; cp <= tl+sym; cp += sym {
		if idx := symbolAt(ps, float64(cp), sym); idx >= 0 {
			counts[idx]++
		}
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("symbol %d visited %d times", i, c)
		}
	}
}

func BenchmarkTwoPacketAssignment(b *testing.B) {
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(109))
	bl := trace.NewBuilder(p, 1.5, 1, rng)
	payload := make([]uint8, 14)
	sym := float64(p.SymbolSamples())
	if err := bl.AddPacket(0, 0, payload, 20000, 12, 1500, nil); err != nil {
		b.Fatal(err)
	}
	if err := bl.AddPacket(1, 1, payload, 20000+10.4*sym, 8, -2600, nil); err != nil {
		b.Fatal(err)
	}
	tr, recs := bl.Build()
	d := lora.NewDemodulator(p)
	e := NewEngine(p, DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var states []*PacketState
		for j, rec := range recs {
			calc := peaks.NewCalculator(d, tr.Antennas, rec.StartSample,
				rec.CFOHz*p.SymbolDuration(), len(rec.Shifts))
			states = append(states, NewPacketState(j, calc))
		}
		e.Run(states, tr.Len())
	}
}
