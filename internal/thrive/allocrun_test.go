package thrive

import (
	"testing"

	"tnb/internal/lora"
)

// resetStates rewinds packet states to their pre-assignment condition so
// Engine.Run re-does the full assignment over the same calculators.
func resetStates(states []*PacketState) {
	for _, ps := range states {
		for i := range ps.Assigned {
			ps.Assigned[i] = -1
			ps.Alternates[i] = -1
			ps.Heights[i] = 0
		}
	}
}

// TestEngineRunSteadyStateAllocs pins the engine's pool contract: once the
// first Run has sized the symbol pool and scratch buffers, re-running the
// full assignment allocates nothing.
func TestEngineRunSteadyStateAllocs(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	states, _, tl := buildScenario(t, 77, p, []spec{
		{start: 20000.3, snr: 12, cfo: 1500},
		{start: 20000.3 + 10.4*sym, snr: 8, cfo: -2600},
		{start: 20000.3 + 21.7*sym, snr: 10, cfo: 3100},
	})
	e := NewEngine(p, DefaultConfig())
	e.Run(states, tl) // sizes the pool and every grow-once buffer
	allocs := testing.AllocsPerRun(5, func() {
		resetStates(states)
		e.Run(states, tl)
	})
	if allocs != 0 {
		t.Fatalf("Engine.Run allocates %v/op in steady state, want 0", allocs)
	}
}
