package thrive

import (
	"math"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/peaks"
)

func TestDebugThreePacket(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic only")
	}
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	states, recs, tl := buildScenario(t, 102, p, []spec{
		{start: 20000.3, snr: 15, cfo: 1500},
		{start: 20000.3 + 9.4*sym, snr: 10, cfo: -2600},
		{start: 20000.3 + 20.7*sym, snr: 5, cfo: 3700},
	})
	e := NewEngine(p, DefaultConfig())
	e.Run(states, tl)
	for i, rec := range recs {
		for j := range rec.Shifts {
			if states[i].Assigned[j] != rec.Shifts[j] {
				y := states[i].Calc.SigVec(j)
				ps := peaks.Find(y, 0, 8)
				trueH := y[rec.Shifts[j]]
				t.Logf("pkt %d sym %d: got %d want %d (trueY=%.3e) peaks=%v",
					i, j, states[i].Assigned[j], rec.Shifts[j], trueH, ps)
				// Which other packets overlap this symbol?
				st := states[i].Calc.SymbolStart(j)
				for k, o := range states {
					if k == i {
						continue
					}
					rel := (st - o.Calc.SymbolStart(0)) / sym
					t.Logf("   pkt %d overlap at sym %.2f alpha=%.2f (mine %.2f)",
						k, rel, o.Calc.Alpha(), states[i].Calc.Alpha())
				}

			}
		}
	}
	_ = math.Pi
}
