package fleet

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tnb/internal/netserver"
)

// updateGolden regenerates the committed fleet traces:
//
//	go test ./internal/fleet -run TestFleetGolden -update
var updateGolden = flag.Bool("update", false, "regenerate golden fleet event streams")

// goldenFleet is the committed scenario: enough nodes and gateways for
// cross-gateway dedup, corruption for the drop taxonomy, and a quota tight
// enough that one tenant hits it.
func goldenFleet() (Config, netserver.Config) {
	fc := Config{
		Seed:            4242,
		Nodes:           8,
		Gateways:        3,
		Channels:        []int{1, 3},
		SFs:             []int{7, 8},
		PacketsPerNode:  3,
		DurationSec:     30,
		CorruptPermille: 60,
	}
	nc := netserver.Config{
		Quotas: map[string]netserver.Quota{"tenant-1": {RatePerSec: 0.2, Burst: 2}},
	}
	return fc, nc
}

// runGolden drives the committed scenario at one worker width and returns
// the event stream as JSON lines plus the run report.
func runGolden(t *testing.T, workers, batch int) ([]byte, Report) {
	t.Helper()
	return runGoldenSharded(t, workers, batch, 0)
}

// runGoldenSharded additionally pins the netserver's state-shard count.
func runGoldenSharded(t *testing.T, workers, batch, shards int) ([]byte, Report) {
	t.Helper()
	fc, nc := goldenFleet()
	f, err := New(fc)
	if err != nil {
		t.Fatal(err)
	}
	nc.Devices = f.Devices()
	nc.Workers = workers
	nc.Shards = shards
	ns, err := netserver.New(nc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	rep, err := Drive(f, ns, batch, func(ev netserver.Event) {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestFleetGolden pins the end-to-end netserver behavior: the committed
// scenario's full event stream (joins, dedup'd deliveries, drops, quota
// hits) must match testdata/golden byte for byte at every worker width and
// batch size. Any drift in the MAC crypto, the dedup window, quota math or
// the two-phase commit order fails here first.
func TestFleetGolden(t *testing.T) {
	wantPath := filepath.Join("testdata", "golden", "fleet_seed4242.jsonl")

	if *updateGolden {
		got, rep := runGolden(t, 1, 0)
		if err := os.MkdirAll(filepath.Dir(wantPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(wantPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("golden fleet: %d events, %d/%d nodes joined, %d delivered, %d dups, %d dropped, %d quota\n",
			rep.Events, rep.Activated, 8, rep.Stats.Delivered, rep.Stats.DupSuppressed,
			rep.Stats.Dropped, rep.Stats.QuotaDropped)
	}

	want, err := os.ReadFile(wantPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, batch := range []int{0, 7} {
			got, rep := runGolden(t, workers, batch)
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d batch=%d: event stream drifted from %s\ngot %d bytes, want %d",
					workers, batch, wantPath, len(got), len(want))
			}
			// The scenario must stay interesting: a config change that
			// silences dedup, drops or quotas would hollow out the pin.
			if rep.Stats.DupSuppressed == 0 || rep.Stats.Dropped == 0 ||
				rep.Stats.QuotaDropped == 0 || rep.Stats.Joins == 0 {
				t.Errorf("workers=%d: golden scenario lost coverage: %+v", workers, rep.Stats)
			}
			if rep.Activated < 6 {
				t.Errorf("workers=%d: only %d/8 nodes joined", workers, rep.Activated)
			}
		}
	}
}

// TestFleetGoldenAcrossShards pins the sharded-ingest determinism contract:
// the committed event stream is byte-identical at every state-shard count ×
// worker width combination. Any ordering leak in the per-shard commit or
// the cross-shard merge fails here first.
func TestFleetGoldenAcrossShards(t *testing.T) {
	wantPath := filepath.Join("testdata", "golden", "fleet_seed4242.jsonl")
	want, err := os.ReadFile(wantPath)
	if err != nil {
		t.Fatalf("%v (run TestFleetGolden with -update to regenerate)", err)
	}
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 2, 4} {
			got, _ := runGoldenSharded(t, workers, 0, shards)
			if !bytes.Equal(got, want) {
				t.Errorf("shards=%d workers=%d: event stream drifted from %s\ngot %d bytes, want %d",
					shards, workers, wantPath, len(got), len(want))
			}
		}
	}
}

// TestFleetDeterministicConstruction: two fleets from the same seed are
// identical; a different seed diverges.
func TestFleetDeterministicConstruction(t *testing.T) {
	fc, _ := goldenFleet()
	a, err := New(fc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(fc)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.JoinRequests()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JoinRequests()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ja) != fmt.Sprint(jb) {
		t.Error("same seed produced different join traffic")
	}
	fc.Seed++
	c, err := New(fc)
	if err != nil {
		t.Fatal(err)
	}
	jc, err := c.JoinRequests()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ja) == fmt.Sprint(jc) {
		t.Error("different seeds produced identical join traffic")
	}
}

// TestFleetConfigRejects: invalid shapes fail at New.
func TestFleetConfigRejects(t *testing.T) {
	for name, cfg := range map[string]Config{
		"negative_nodes":   {Nodes: -1},
		"negative_channel": {Channels: []int{-2}},
		"bad_duration":     {DurationSec: -5},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
