// Package fleet simulates a LoRaWAN deployment for driving the netserver
// at scale without a radio: a population of battery-class nodes spread
// over several gateways, each node duty-cycled, channel-hopping and
// heard — with different SNRs — by every gateway inside its coverage.
//
// The simulator is honest about the MAC layer: nodes marshal real
// JoinRequest and data frames with internal/lorawan, parse the real
// JoinAccept the netserver returns, and derive their own session keys, so
// a key-schedule regression breaks the fleet golden trace, not just a
// unit test. The RF layer is abstracted to per-(node, gateway) coverage
// with SNR jitter plus an optional in-flight corruption rate that feeds
// the netserver's drop taxonomy.
//
// Everything is driven by a single seed: node identities, keys, coverage,
// timing phases, jitter and corruption all come from per-node PRNGs
// seeded from (seed, node index), so a run is byte-reproducible and
// independent of netserver worker width.
package fleet

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"tnb/internal/lorawan"
	"tnb/internal/netserver"
)

// Defaults for Config zero values.
const (
	DefaultNodes          = 8
	DefaultGateways       = 2
	DefaultPacketsPerNode = 3
	DefaultDurationSec    = 30.0
)

// Config shapes a fleet.
type Config struct {
	// Seed drives every random choice. Same seed, same traffic.
	Seed int64
	// Nodes is the device population size. 0 selects DefaultNodes.
	Nodes int
	// Gateways is the gateway count. 0 selects DefaultGateways.
	Gateways int
	// Channels is the hop set; nil selects {0, 1}.
	Channels []int
	// SFs are the spreading factors assigned round-robin; nil selects {7, 8}.
	SFs []int
	// PacketsPerNode is each node's data uplink budget (its duty cycle
	// across DurationSec). 0 selects DefaultPacketsPerNode.
	PacketsPerNode int
	// DurationSec is the traffic-phase span. 0 selects DefaultDurationSec.
	DurationSec float64
	// CorruptPermille is the per-copy probability (×1000) that a reception
	// is corrupted in flight, exercising the netserver drop paths.
	CorruptPermille int
}

// joinStaggerSec spaces consecutive nodes' join requests.
const joinStaggerSec = 0.05

// trafficGapSec separates the join phase from the traffic phase.
const trafficGapSec = 1.0

// coverage is one (node, gateway) link.
type coverage struct {
	heard bool
	snr   float64 // mean SNR; per-copy jitter is added on top
}

// node is one simulated device: identity, radio plan and session state.
type node struct {
	idx      int
	dev      netserver.Device
	sf       int
	devNonce uint16
	phase    float64 // per-node start offset inside the traffic phase
	cov      []coverage
	rng      *rand.Rand

	// Session state, populated by ApplyJoinAccepts.
	joined  bool
	devAddr lorawan.DevAddr
	nwkSKey []byte
	appSKey []byte
}

// Fleet is a simulated deployment. Build with New; it is not safe for
// concurrent use (the drivers are single-goroutine, like the netserver).
type Fleet struct {
	cfg   Config
	nodes []*node
}

// New builds a deterministic fleet from cfg.
func New(cfg Config) (*Fleet, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = DefaultNodes
	}
	if cfg.Gateways == 0 {
		cfg.Gateways = DefaultGateways
	}
	if len(cfg.Channels) == 0 {
		cfg.Channels = []int{0, 1}
	}
	if len(cfg.SFs) == 0 {
		cfg.SFs = []int{7, 8}
	}
	if cfg.PacketsPerNode == 0 {
		cfg.PacketsPerNode = DefaultPacketsPerNode
	}
	if cfg.DurationSec == 0 {
		cfg.DurationSec = DefaultDurationSec
	}
	if cfg.Nodes < 1 || cfg.Gateways < 1 {
		return nil, fmt.Errorf("fleet: need at least one node and one gateway (have %d, %d)", cfg.Nodes, cfg.Gateways)
	}
	if cfg.DurationSec <= 0 || cfg.PacketsPerNode < 1 {
		return nil, fmt.Errorf("fleet: need a positive duration and packet budget")
	}
	for _, ch := range cfg.Channels {
		if ch < 0 {
			return nil, fmt.Errorf("fleet: negative channel %d", ch)
		}
	}

	f := &Fleet{cfg: cfg, nodes: make([]*node, cfg.Nodes)}
	for i := range f.nodes {
		// Per-node PRNG from (seed, index): adding or removing one node
		// never perturbs another node's identity or timing.
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
		key := make([]byte, 16)
		for j := range key {
			key[j] = byte(rng.Intn(256))
		}
		n := &node{
			idx: i,
			dev: netserver.Device{
				DevEUI: lorawan.EUI(0x70B3_0000_0000_0000 + uint64(i)),
				AppEUI: lorawan.EUI(0x70B3_0000_FFFF_0000),
				AppKey: key,
				Tenant: fmt.Sprintf("tenant-%d", i%2),
			},
			sf:       cfg.SFs[i%len(cfg.SFs)],
			devNonce: uint16(1 + i),
			phase:    rng.Float64() * cfg.DurationSec / float64(cfg.PacketsPerNode),
			cov:      make([]coverage, cfg.Gateways),
			rng:      rng,
		}
		// Every node has a home gateway that always hears it; the rest
		// cover it with 40% probability at a distance-penalized SNR.
		home := i % cfg.Gateways
		for g := range n.cov {
			switch {
			case g == home:
				n.cov[g] = coverage{heard: true, snr: 2 + rng.Float64()*8}
			case rng.Float64() < 0.4:
				n.cov[g] = coverage{heard: true, snr: -8 + rng.Float64()*8}
			}
		}
		f.nodes[i] = n
	}
	return f, nil
}

// GatewayID names gateway g ("gw-00", "gw-01", ...).
func GatewayID(g int) string { return fmt.Sprintf("gw-%02d", g) }

// Gateways returns the gateway count.
func (f *Fleet) Gateways() int { return f.cfg.Gateways }

// Devices returns the provisioning table for netserver.Config.
func (f *Fleet) Devices() []netserver.Device {
	devs := make([]netserver.Device, len(f.nodes))
	for i, n := range f.nodes {
		devs[i] = n.dev
	}
	return devs
}

// TrafficStartSec is when the data phase begins: after the last join
// window has had time to settle.
func (f *Fleet) TrafficStartSec() float64 {
	return float64(len(f.nodes))*joinStaggerSec + trafficGapSec
}

// EndSec is the logical end of the run.
func (f *Fleet) EndSec() float64 { return f.TrafficStartSec() + f.cfg.DurationSec }

// JoinRequests returns every node's join request as heard by its covering
// gateways, sorted by receive time: the input for the activation phase.
func (f *Fleet) JoinRequests() ([]netserver.Uplink, error) {
	var ups []netserver.Uplink
	for _, n := range f.nodes {
		jr := &lorawan.JoinRequestFrame{AppEUI: n.dev.AppEUI, DevEUI: n.dev.DevEUI, DevNonce: n.devNonce}
		wire, err := jr.Marshal(n.dev.AppKey)
		if err != nil {
			return nil, fmt.Errorf("fleet: node %d join: %w", n.idx, err)
		}
		at := float64(n.idx) * joinStaggerSec
		ch := f.cfg.Channels[n.idx%len(f.cfg.Channels)]
		ups = append(ups, n.receptions(wire, at, ch, n.sf, f.cfg.CorruptPermille)...)
	}
	SortUplinks(ups)
	return ups, nil
}

// ApplyJoinAccepts completes activation device-side: each join event's
// JoinAccept is decrypted with the node's AppKey and the session keys are
// derived exactly as a real device would. Returns how many nodes joined.
func (f *Fleet) ApplyJoinAccepts(evs []netserver.Event) (int, error) {
	byEUI := make(map[string]*node, len(f.nodes))
	for _, n := range f.nodes {
		byEUI[n.dev.DevEUI.String()] = n
	}
	joined := 0
	for _, ev := range evs {
		if ev.Type != "join" {
			continue
		}
		n, ok := byEUI[ev.DevEUI]
		if !ok {
			return joined, fmt.Errorf("fleet: join for unknown device %s", ev.DevEUI)
		}
		acc, err := lorawan.ParseJoinAccept(ev.JoinAccept, n.dev.AppKey)
		if err != nil {
			return joined, fmt.Errorf("fleet: node %d cannot parse its join accept: %w", n.idx, err)
		}
		nwk, app, err := lorawan.DeriveSessionKeys(n.dev.AppKey, acc.AppNonce, acc.NetID, n.devNonce)
		if err != nil {
			return joined, err
		}
		n.joined = true
		n.devAddr = acc.DevAddr
		n.nwkSKey, n.appSKey = nwk, app
		joined++
	}
	return joined, nil
}

// Traffic returns the data phase: every joined node's duty-cycled,
// channel-hopping uplinks with all gateway copies, sorted by receive
// time. Nodes that never joined stay silent, like real hardware.
func (f *Fleet) Traffic() ([]netserver.Uplink, error) {
	start := f.TrafficStartSec()
	interval := f.cfg.DurationSec / float64(f.cfg.PacketsPerNode)
	var ups []netserver.Uplink
	for _, n := range f.nodes {
		if !n.joined {
			continue
		}
		for k := 0; k < f.cfg.PacketsPerNode; k++ {
			frame := &lorawan.DataFrame{
				MType:   lorawan.UnconfirmedDataUp,
				DevAddr: n.devAddr,
				FCnt:    uint16(k + 1),
				HasPort: true,
				FPort:   1,
				FRMPayload: []byte(fmt.Sprintf("n%03d-p%03d-%04x",
					n.idx, k, n.rng.Intn(1<<16))),
			}
			wire, err := frame.Marshal(n.nwkSKey, n.appSKey)
			if err != nil {
				return nil, fmt.Errorf("fleet: node %d packet %d: %w", n.idx, k, err)
			}
			at := start + n.phase + float64(k)*interval
			ch := f.cfg.Channels[(n.idx+k)%len(f.cfg.Channels)] // hop sequence
			ups = append(ups, n.receptions(wire, at, ch, n.sf, f.cfg.CorruptPermille)...)
		}
	}
	SortUplinks(ups)
	return ups, nil
}

// receptions fans one transmission out to the node's covering gateways,
// adding per-copy SNR jitter, a small propagation skew per gateway, and
// optional in-flight corruption.
func (n *node) receptions(wire []byte, at float64, ch, sf, corruptPermille int) []netserver.Uplink {
	var ups []netserver.Uplink
	for g, cov := range n.cov {
		if !cov.heard {
			continue
		}
		payload := wire
		if corruptPermille > 0 && n.rng.Intn(1000) < corruptPermille {
			payload = append([]byte(nil), wire...)
			payload[n.rng.Intn(len(payload))] ^= 1 << uint(n.rng.Intn(8))
		}
		ups = append(ups, netserver.Uplink{
			GatewayID: GatewayID(g),
			Channel:   ch,
			SF:        sf,
			TimeSec:   at + float64(g)*1e-4,
			SNRdB:     round1(cov.snr + (n.rng.Float64()-0.5)*2),
			Payload:   payload,
		})
	}
	return ups
}

// round1 quantizes SNR to 0.1 dB so golden traces stay readable.
func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }

// SortUplinks orders receptions by time with a full deterministic
// tie-break, so the netserver sees one canonical stream regardless of how
// the generating loops were arranged. cmd/tnbnet uses it to canonicalize
// report streams decoded from separate per-gateway PHY traces.
func SortUplinks(ups []netserver.Uplink) {
	sort.Slice(ups, func(i, j int) bool {
		a, b := &ups[i], &ups[j]
		if a.TimeSec != b.TimeSec {
			return a.TimeSec < b.TimeSec
		}
		if a.GatewayID != b.GatewayID {
			return a.GatewayID < b.GatewayID
		}
		return bytes.Compare(a.Payload, b.Payload) < 0
	})
}
