package fleet

import "tnb/internal/netserver"

// DefaultBatch is the uplink batch size Drive hands the netserver when the
// caller passes 0.
const DefaultBatch = 64

// Report summarizes one Drive run.
type Report struct {
	Activated int             `json:"activated"` // nodes that completed OTAA
	Events    int             `json:"events"`
	Stats     netserver.Stats `json:"stats"`
}

// Drive runs the whole fleet lifecycle against ns: join phase (requests
// ingested, windows closed, accepts applied device-side), then the data
// phase in batches of batch uplinks, then a final flush. Every event is
// passed to emit in order; emit may be nil. The emitted stream is a pure
// function of the fleet seed and the netserver config — worker width and
// batch size only change wall-clock, never bytes.
func Drive(f *Fleet, ns *netserver.Server, batch int, emit func(netserver.Event)) (Report, error) {
	if batch <= 0 {
		batch = DefaultBatch
	}
	var rep Report
	var joinPhase []netserver.Event
	sink := func(evs []netserver.Event, collect bool) {
		rep.Events += len(evs)
		if collect {
			joinPhase = append(joinPhase, evs...)
		}
		if emit != nil {
			for _, ev := range evs {
				emit(ev)
			}
		}
	}
	ingest := func(ups []netserver.Uplink, collect bool) error {
		for len(ups) > 0 {
			n := batch
			if n > len(ups) {
				n = len(ups)
			}
			evs, err := ns.Ingest(ups[:n])
			if err != nil {
				return err
			}
			sink(evs, collect)
			ups = ups[n:]
		}
		return nil
	}

	joins, err := f.JoinRequests()
	if err != nil {
		return rep, err
	}
	if err := ingest(joins, true); err != nil {
		return rep, err
	}
	// Close every join window before the devices look for their accepts.
	evs, err := ns.AdvanceTo(f.TrafficStartSec())
	if err != nil {
		return rep, err
	}
	sink(evs, true)
	if rep.Activated, err = f.ApplyJoinAccepts(joinPhase); err != nil {
		return rep, err
	}

	traffic, err := f.Traffic()
	if err != nil {
		return rep, err
	}
	if err := ingest(traffic, false); err != nil {
		return rep, err
	}
	evs, err = ns.Flush()
	if err != nil {
		return rep, err
	}
	sink(evs, false)
	rep.Stats = ns.Stats()
	return rep, nil
}
