package dsp

import "math"

// RotatorRenormBlock is the number of phase-recurrence steps a Rotator takes
// between exact re-evaluations of the oscillator. Each complex multiply
// contributes O(ε) ≈ 1e-16 of phase/amplitude error, so a 64-step block
// keeps the accumulated drift near 1e-14 — far inside the 1e-9 contract the
// kernel tests pin — while amortizing one math.Sincos over 64 samples.
const RotatorRenormBlock = 64

// Rotator generates e^{i(phase0 + k·dphase)} for k = 0, 1, 2, … by complex
// phase recurrence: one multiply per sample instead of one math.Sincos per
// sample, renormalized by an exact Sincos evaluation every
// RotatorRenormBlock steps. It replaces the per-sample Cis calls in the
// dechirp and tone-mixing hot paths.
type Rotator struct {
	phase0 float64 // exact phase at k = 0
	dphase float64 // per-step phase increment
	cur    complex128
	step   complex128
	k      int // index of the value Next returns
}

// NewRotator returns a rotator positioned at phase0 advancing by dphase
// radians per step.
func NewRotator(phase0, dphase float64) Rotator {
	s0, c0 := math.Sincos(phase0)
	ss, cs := math.Sincos(dphase)
	return Rotator{phase0: phase0, dphase: dphase,
		cur: complex(c0, s0), step: complex(cs, ss)}
}

// Next returns e^{i(phase0 + k·dphase)} for the current index k and
// advances. The (k+1)-th value comes from one complex multiply unless k+1
// crosses a renormalization boundary, where it is re-evaluated exactly.
func (r *Rotator) Next() complex128 {
	v := r.cur
	r.k++
	if r.k&(RotatorRenormBlock-1) == 0 {
		r.renorm()
	} else {
		r.cur *= r.step
	}
	return v
}

// renorm re-seeds the recurrence from an exact evaluation at the current
// index, bounding the drift of the complex-multiply chain.
func (r *Rotator) renorm() {
	s, c := math.Sincos(r.phase0 + r.dphase*float64(r.k))
	r.cur = complex(c, s)
}
