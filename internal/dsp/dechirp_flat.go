//go:build !tnb_noflat

package dsp

import "math"

// rotFlat is the Rotator recurrence on split re/im scalars. It performs the
// exact multiply/renorm sequence of Rotator (same naive complex product,
// same RotatorRenormBlock boundaries), so its stream is bit-identical.
type rotFlat struct {
	phase0, dphase float64
	curRe, curIm   float64
	stepRe, stepIm float64
	k              int
}

func newRotFlat(phase0, dphase float64) rotFlat {
	s0, c0 := math.Sincos(phase0)
	ss, cs := math.Sincos(dphase)
	return rotFlat{phase0: phase0, dphase: dphase,
		curRe: c0, curIm: s0, stepRe: cs, stepIm: ss}
}

func (r *rotFlat) next() (re, im float64) {
	re, im = r.curRe, r.curIm
	r.k++
	if r.k&(RotatorRenormBlock-1) == 0 {
		s, c := math.Sincos(r.phase0 + r.dphase*float64(r.k))
		r.curRe, r.curIm = c, s
	} else {
		r.curRe, r.curIm = r.curRe*r.stepRe-r.curIm*r.stepIm,
			r.curRe*r.stepIm+r.curIm*r.stepRe
	}
	return re, im
}

// DechirpFusedFlat is DechirpFused writing split re/im outputs: dstRe[k] and
// dstIm[k] receive the real and imaginary parts of the dechirped sample the
// complex kernel would store in dst[k]. Downstream split-layout transforms
// (ForwardMagBatchFlat) consume the planes directly, so the symbol never
// round-trips through []complex128. Every arithmetic expression matches the
// complex kernel's IEEE sequence, so the planes are bit-identical to the
// complex result; the kernel contract only requires ≤1e-9. len(ref),
// len(dstRe) and len(dstIm) must be equal.
//
// Builds with the tnb_noflat tag replace this file with a fallback that
// routes through DechirpFused (see dechirp_flat_fallback.go).
func DechirpFusedFlat(dstRe, dstIm []float64, x []complex128, start, step float64, ref []complex128, phase0, dphase float64) {
	n := len(x)
	rotate := phase0 != 0 || dphase != 0
	if s0, si := int(start), int(step); float64(s0) == start && float64(si) == step {
		if rotate {
			rot := newRotFlat(phase0, dphase)
			for k := range dstRe {
				wr, wi := rot.next()
				pos := s0 + k*si
				if uint(pos) >= uint(n) {
					dstRe[k], dstIm[k] = 0, 0
					continue
				}
				v, r := x[pos], ref[k]
				mr := real(v)*real(r) + imag(v)*imag(r)
				mi := imag(v)*real(r) - real(v)*imag(r)
				dstRe[k] = mr*wr - mi*wi
				dstIm[k] = mr*wi + mi*wr
			}
			return
		}
		for k := range dstRe {
			pos := s0 + k*si
			if uint(pos) >= uint(n) {
				dstRe[k], dstIm[k] = 0, 0
				continue
			}
			v, r := x[pos], ref[k]
			dstRe[k] = real(v)*real(r) + imag(v)*imag(r)
			dstIm[k] = imag(v)*real(r) - real(v)*imag(r)
		}
		return
	}

	if rotate {
		rot := newRotFlat(phase0, dphase)
		pos := start
		for k := range dstRe {
			wr, wi := rot.next()
			v := sampleLinear(x, pos, n)
			pos += step
			r := ref[k]
			mr := real(v)*real(r) + imag(v)*imag(r)
			mi := imag(v)*real(r) - real(v)*imag(r)
			dstRe[k] = mr*wr - mi*wi
			dstIm[k] = mr*wi + mi*wr
		}
		return
	}
	pos := start
	for k := range dstRe {
		v := sampleLinear(x, pos, n)
		pos += step
		r := ref[k]
		dstRe[k] = real(v)*real(r) + imag(v)*imag(r)
		dstIm[k] = imag(v)*real(r) - real(v)*imag(r)
	}
}
