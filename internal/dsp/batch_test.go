package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func randRows(rng *rand.Rand, rows, n int) []complex128 {
	x := make([]complex128, rows*n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// TestForwardMagBatchMatchesPerRow pins the batch contract: each row of
// ForwardMagBatch equals ForwardMag on that row, bit for bit.
func TestForwardMagBatchMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		p := MustPlan(n)
		for _, rows := range []int{1, 2, 3, 8} {
			x := randRows(rng, rows, n)
			want := make([]float64, rows*n)
			for r := 0; r < rows; r++ {
				row := append([]complex128(nil), x[r*n:(r+1)*n]...)
				p.ForwardMag(want[r*n:(r+1)*n], row)
			}
			got := make([]float64, rows*n)
			p.ForwardMagBatch(got, append([]complex128(nil), x...), rows)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d rows=%d: batch[%d]=%v, per-row=%v", n, rows, i, got[i], want[i])
				}
			}
		}
	}
}

// TestForwardMagBatchFlatMatchesBatch pins the split-plane kernel against the
// complex batch at the bit level (the contract only requires ≤1e-9).
func TestForwardMagBatchFlatMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{1, 4, 8, 64, 256, 1024} {
		p := MustPlan(n)
		for _, rows := range []int{1, 3, 8} {
			x := randRows(rng, rows, n)
			want := make([]float64, rows*n)
			p.ForwardMagBatch(want, append([]complex128(nil), x...), rows)
			re := make([]float64, rows*n)
			im := make([]float64, rows*n)
			for i, v := range x {
				re[i], im[i] = real(v), imag(v)
			}
			got := make([]float64, rows*n)
			p.ForwardMagBatchFlat(got, re, im, rows)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d rows=%d: flat[%d]=%v, batch=%v", n, rows, i, got[i], want[i])
				}
			}
		}
	}
}

// TestForwardMagBatchRevMatchesBatch pins the pre-reversed entry points:
// feeding rev-permuted rows must reproduce the plain batch result exactly,
// in both layouts.
func TestForwardMagBatchRevMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, n := range []int{8, 64, 256} {
		p := MustPlan(n)
		rev := p.Rev()
		for _, rows := range []int{1, 4} {
			x := randRows(rng, rows, n)
			want := make([]float64, rows*n)
			p.ForwardMagBatch(want, append([]complex128(nil), x...), rows)

			perm := make([]complex128, rows*n)
			for r := 0; r < rows; r++ {
				for i := 0; i < n; i++ {
					perm[r*n+i] = x[r*n+int(rev[i])]
				}
			}
			got := make([]float64, rows*n)
			p.ForwardMagBatchRev(got, append([]complex128(nil), perm...), rows)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d rows=%d: rev[%d]=%v, batch=%v", n, rows, i, got[i], want[i])
				}
			}

			re := make([]float64, rows*n)
			im := make([]float64, rows*n)
			for i, v := range perm {
				re[i], im[i] = real(v), imag(v)
			}
			gotFlat := make([]float64, rows*n)
			p.ForwardMagBatchFlatRev(gotFlat, re, im, rows)
			for i := range want {
				if math.Float64bits(gotFlat[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d rows=%d: flatRev[%d]=%v, batch=%v", n, rows, i, gotFlat[i], want[i])
				}
			}
		}
	}
}

// TestDechirpFusedFlatMatchesComplex pins the split-output dechirp against
// DechirpFused across the integer fast path, the fractional path, and the
// rotated variants of both.
func TestDechirpFusedFlatMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 256
	x := randRows(rng, 1, 4*n)
	ref := randRows(rng, 1, n)
	cases := []struct {
		name           string
		start, step    float64
		phase0, dphase float64
	}{
		{"integer", 512, 2, 0, 0},
		{"integer_tail", 4*n - 100, 2, 0, 0}, // runs off the end of x
		{"integer_rotated", 512, 2, 0.3, -0.001},
		{"fractional", 511.25, 2.5, 0, 0},
		{"fractional_rotated", 511.25, 2.5, 0.3, -0.001},
	}
	for _, tc := range cases {
		want := make([]complex128, n)
		DechirpFused(want, x, tc.start, tc.step, ref, tc.phase0, tc.dphase)
		re := make([]float64, n)
		im := make([]float64, n)
		DechirpFusedFlat(re, im, x, tc.start, tc.step, ref, tc.phase0, tc.dphase)
		for k := range want {
			if math.Float64bits(re[k]) != math.Float64bits(real(want[k])) ||
				math.Float64bits(im[k]) != math.Float64bits(imag(want[k])) {
				t.Fatalf("%s: k=%d flat=(%v,%v), complex=%v", tc.name, k, re[k], im[k], want[k])
			}
		}
	}
}

// TestForwardMagBatchZeroAllocs pins the batch kernels' allocation-free
// steady state (the flat variant's zero-alloc guarantee holds in default
// builds; the tnb_noflat fallback trades it away and is excluded there).
func TestForwardMagBatchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const n, rows = 256, 8
	p := MustPlan(n)
	x := randRows(rng, rows, n)
	y := make([]float64, rows*n)
	if a := testing.AllocsPerRun(50, func() { p.ForwardMagBatch(y, x, rows) }); a != 0 {
		t.Fatalf("ForwardMagBatch allocates %v/op", a)
	}
	re := make([]float64, rows*n)
	im := make([]float64, rows*n)
	if a := testing.AllocsPerRun(50, func() { p.ForwardMagBatchFlat(y, re, im, rows) }); a != 0 {
		if FlatKernels {
			t.Fatalf("ForwardMagBatchFlat allocates %v/op", a)
		}
	}
}

func BenchmarkForwardMagBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	const n, rows = 256, 16
	p := MustPlan(n)
	x := randRows(rng, rows, n)
	y := make([]float64, rows*n)
	b.Run("per-row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < rows; r++ {
				p.ForwardMag(y[r*n:(r+1)*n], x[r*n:(r+1)*n])
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.ForwardMagBatch(y, x, rows)
		}
	})
	re := make([]float64, rows*n)
	im := make([]float64, rows*n)
	for i, v := range x {
		re[i], im[i] = real(v), imag(v)
	}
	b.Run("batch-flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.ForwardMagBatchFlat(y, re, im, rows)
		}
	})
}
