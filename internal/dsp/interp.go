package dsp

// SampleAt linearly interpolates the complex sequence x at the real-valued
// position pos (in samples). Positions outside [0, len(x)-1] return 0, which
// models the silence beyond the edges of a capture.
func SampleAt(x []complex128, pos float64) complex128 {
	if pos < 0 || len(x) == 0 {
		return 0
	}
	i := int(pos)
	if i >= len(x)-1 {
		if i == len(x)-1 && pos == float64(i) {
			return x[i]
		}
		return 0
	}
	frac := pos - float64(i)
	if frac == 0 {
		return x[i]
	}
	a, b := x[i], x[i+1]
	f := complex(frac, 0)
	return a + (b-a)*f
}

// Resample fills dst[k] with the interpolated value of x at
// start + k*step. It is the workhorse of the decimating dechirper: step is
// the over-sampling factor, start the (fractional) symbol boundary.
func Resample(dst []complex128, x []complex128, start, step float64) {
	pos := start
	n := len(x)
	for k := range dst {
		// Inline the common fast path: integral position strictly inside x.
		i := int(pos)
		if pos >= 0 && i < n-1 {
			frac := pos - float64(i)
			if frac == 0 {
				dst[k] = x[i]
			} else {
				a, b := x[i], x[i+1]
				dst[k] = a + (b-a)*complex(frac, 0)
			}
		} else {
			dst[k] = SampleAt(x, pos)
		}
		pos += step
	}
}
