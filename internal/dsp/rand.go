package dsp

import (
	"math"
	"math/rand"
)

// Gaussian draws one sample from N(0, 1) using the given source. It is a
// thin wrapper over rand.Rand.NormFloat64, kept here so callers in the
// channel package depend only on dsp for their randomness needs.
func Gaussian(rng *rand.Rand) float64 {
	return rng.NormFloat64()
}

// ComplexGaussian draws a circularly-symmetric complex Gaussian sample with
// the given standard deviation per real dimension.
func ComplexGaussian(rng *rand.Rand, sigma float64) complex128 {
	return complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
}

// AddNoise adds circularly-symmetric complex Gaussian noise with total
// variance noisePower (i.e. E|n|² = noisePower) to every element of x.
func AddNoise(x []complex128, noisePower float64, rng *rand.Rand) {
	if noisePower <= 0 {
		return
	}
	sigma := math.Sqrt(noisePower / 2)
	for i := range x {
		x[i] += complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
	}
}

// DBToLinear converts a decibel power ratio to linear scale.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to decibels. Non-positive inputs
// map to -Inf.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}
