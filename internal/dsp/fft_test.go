package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference transform used to validate the FFT.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		x := randomVec(rng, n)
		got := FFT(x)
		want := naiveDFT(x)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: max error %g vs naive DFT", n, e)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 256, 2048} {
		x := randomVec(rng, n)
		y := IFFT(FFT(x))
		if e := maxErr(x, y); e > 1e-9*float64(n) {
			t.Errorf("n=%d: round-trip error %g", n, e)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// An impulse transforms to a flat spectrum of ones.
	n := 128
	x := make([]complex128, n)
	x[0] = 1
	y := FFT(x)
	for k, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d: got %v, want 1", k, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex tone at bin k concentrates all energy in bin k.
	n := 256
	for _, k := range []int{0, 1, 17, 255} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = Cis(2 * math.Pi * float64(k) * float64(i) / float64(n))
		}
		y := FFT(x)
		idx, mag := MaxAbs(y)
		if idx != k {
			t.Errorf("tone k=%d: peak at %d", k, idx)
		}
		if math.Abs(math.Sqrt(mag)-float64(n)) > 1e-6 {
			t.Errorf("tone k=%d: peak magnitude %g, want %d", k, math.Sqrt(mag), n)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Parseval: sum |x|² == (1/n) sum |X|². Checked as a property.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(10))
		x := randomVec(rng, n)
		tx := Energy(x)
		fx := Energy(FFT(x)) / float64(n)
		return math.Abs(tx-fx) < 1e-6*tx+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(8))
		a := randomVec(rng, n)
		b := randomVec(rng, n)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + 2*b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fa[i]+2*fb[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestForwardMagMatchesForwardPlusMagSq checks the fused spectrum-magnitude
// path against the two-pass reference. For sizes ≥ 8 the final fused stage
// runs the same stored-twiddle butterflies as Forward, so the match is
// bit-exact; the tiny sizes (where Forward's last stage is one of the
// unrolled exact-twiddle specializations) are held to 1e-12 relative.
func TestForwardMagMatchesForwardPlusMagSq(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 4, 8, 64, 256, 1024} {
		x := randomVec(rng, n)
		p := MustPlan(n)

		spec := make([]complex128, n)
		copy(spec, x)
		p.Forward(spec)
		want := make([]float64, n)
		MagSq(want, spec)

		buf := make([]complex128, n)
		copy(buf, x)
		got := make([]float64, n)
		p.ForwardMag(got, buf)

		for i := range got {
			if n >= 8 {
				if got[i] != want[i] {
					t.Fatalf("n=%d bin %d: ForwardMag %v != Forward+MagSq %v", n, i, got[i], want[i])
				}
			} else if math.Abs(got[i]-want[i]) > 1e-12*(want[i]+1) {
				t.Fatalf("n=%d bin %d: ForwardMag %v vs Forward+MagSq %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestNewFFTPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 100} {
		if _, err := NewFFTPlan(n); err == nil {
			t.Errorf("NewFFTPlan(%d): expected error", n)
		}
	}
}

func TestPlanCacheReuse(t *testing.T) {
	a := MustPlan(512)
	b := MustPlan(512)
	if a != b {
		t.Error("expected cached plan to be reused")
	}
	if a.Size() != 512 {
		t.Errorf("plan size %d, want 512", a.Size())
	}
}

func BenchmarkFFT256(b *testing.B)  { benchFFT(b, 256) }
func BenchmarkFFT1024(b *testing.B) { benchFFT(b, 1024) }

func BenchmarkForwardMag256(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randomVec(rng, 256)
	p := MustPlan(256)
	buf := make([]complex128, 256)
	y := make([]float64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.ForwardMag(y, buf)
	}
}

func benchFFT(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(3))
	x := randomVec(rng, n)
	p := MustPlan(n)
	buf := make([]complex128, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.Forward(buf)
	}
}
