//go:build tnb_noflat

package dsp

// FlatKernels: this build carries the tnb_noflat fallbacks.
const FlatKernels = false

// ForwardMagBatchFlat under the tnb_noflat tag: interleave the split planes
// into a complex stack and route through ForwardMagBatch. Numerically
// identical to the flat kernel (both compute the same naive IEEE
// expressions); it trades the vectorization win — and the zero-allocation
// guarantee — for not carrying the flat inner loops on targets that opt
// out. re and im are still consumed as scratch to keep the contract
// uniform.
func (p *FFTPlan) ForwardMagBatchFlat(y, re, im []float64, rows int) {
	n := p.n
	if len(re) != rows*n || len(im) != rows*n || len(y) != rows*n {
		panic("dsp: ForwardMagBatchFlat length mismatch")
	}
	if rows <= 0 {
		return
	}
	x := make([]complex128, rows*n)
	for i := range x {
		x[i] = complex(re[i], im[i])
	}
	p.ForwardMagBatch(y, x, rows)
	for i, v := range x {
		re[i], im[i] = real(v), imag(v)
	}
}

// ForwardMagBatchFlatRev under the tnb_noflat tag: interleave and route
// through the complex pre-reversed batch transform.
func (p *FFTPlan) ForwardMagBatchFlatRev(y, re, im []float64, rows int) {
	n := p.n
	if len(re) != rows*n || len(im) != rows*n || len(y) != rows*n {
		panic("dsp: ForwardMagBatchFlatRev length mismatch")
	}
	if rows <= 0 {
		return
	}
	x := make([]complex128, rows*n)
	for i := range x {
		x[i] = complex(re[i], im[i])
	}
	p.ForwardMagBatchRev(y, x, rows)
	for i, v := range x {
		re[i], im[i] = real(v), imag(v)
	}
}
