package dsp

import "math"

// MulConj writes a[i] * conj(b[i]) into dst. All three slices must have the
// same length; dst may alias a or b.
func MulConj(dst, a, b []complex128) {
	for i := range dst {
		br, bi := real(b[i]), imag(b[i])
		ar, ai := real(a[i]), imag(a[i])
		dst[i] = complex(ar*br+ai*bi, ai*br-ar*bi)
	}
}

// Mul writes a[i] * b[i] into dst. dst may alias a or b.
func Mul(dst, a, b []complex128) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// AddTo accumulates src into dst element-wise.
func AddTo(dst, src []complex128) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies every element of x by s in place.
func Scale(x []complex128, s float64) {
	c := complex(s, 0)
	for i := range x {
		x[i] *= c
	}
}

// Energy returns the sum of |x[i]|².
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// Power returns the mean of |x[i]|², or 0 for an empty slice.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// MagSq writes |x[i]|² into dst. The slices must have the same length.
func MagSq(dst []float64, x []complex128) {
	for i, v := range x {
		dst[i] = real(v)*real(v) + imag(v)*imag(v)
	}
}

// MaxAbs returns the index and squared magnitude of the largest-magnitude
// element of x. It returns (-1, 0) for an empty slice.
func MaxAbs(x []complex128) (idx int, magSq float64) {
	idx = -1
	for i, v := range x {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > magSq {
			magSq, idx = m, i
		}
	}
	return idx, magSq
}

// Cis returns e^{iθ}.
func Cis(theta float64) complex128 {
	s, c := math.Sincos(theta)
	return complex(c, s)
}

// ApplyTone multiplies x[i] by e^{i(phase0 + 2π f i)} in place, i.e. mixes x
// with a complex tone of normalized frequency f (cycles per sample). The
// tone comes from a Rotator phase recurrence (one Sincos per
// RotatorRenormBlock samples) rather than per-sample Cis evaluation.
func ApplyTone(x []complex128, f, phase0 float64) {
	rot := NewRotator(phase0, 2*math.Pi*f)
	for i := range x {
		x[i] *= rot.Next()
	}
}
