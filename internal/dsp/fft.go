// Package dsp provides the signal-processing primitives used by the LoRa
// receiver: an iterative radix-2 FFT with cached twiddle factors, complex
// vector helpers, fractional-delay interpolation and a Gaussian sampler.
//
// Everything here is pure Go on top of the standard library. FFT sizes in
// this repository are always powers of two (2^SF, optionally times the
// over-sampling factor), so a radix-2 transform is sufficient.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFTPlan holds precomputed twiddle factors and the bit-reversal permutation
// for one transform size. A plan is safe for concurrent use once built.
type FFTPlan struct {
	n       int
	logN    int
	rev     []int32      // bit-reversal permutation
	twiddle []complex128 // e^{-2πik/n} for k in [0, n/2)
	twRe    []float64    // real(twiddle), for the split re/im kernels
	twIm    []float64    // imag(twiddle)
	// twStage[s] holds the twiddles of generic stage size 8<<s compacted to
	// stride 1 — twStage[s][i] == twiddle[i·(n/(8<<s))], the same bits — so
	// the stage loops walk their table sequentially instead of re-striding
	// the shared one.
	twStage [][]complex128
}

var (
	planMu    sync.RWMutex
	planCache = map[int]*FFTPlan{}
)

// NewFFTPlan builds (or returns a cached) plan for transforms of length n.
// n must be a power of two and at least 1.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two", n)
	}
	planMu.RLock()
	p, ok := planCache[n]
	planMu.RUnlock()
	if ok {
		return p, nil
	}

	p = &FFTPlan{
		n:       n,
		logN:    bits.TrailingZeros(uint(n)),
		rev:     make([]int32, n),
		twiddle: make([]complex128, n/2),
		twRe:    make([]float64, n/2),
		twIm:    make([]float64, n/2),
	}
	shift := 32 - p.logN
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse32(uint32(i)) >> uint(shift))
	}
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = complex(math.Cos(ang), math.Sin(ang))
		p.twRe[k] = math.Cos(ang)
		p.twIm[k] = math.Sin(ang)
	}
	for size := 8; size <= n>>1; size <<= 1 {
		half, step := size>>1, n/size
		tw := make([]complex128, half)
		for i := range tw {
			tw[i] = p.twiddle[i*step]
		}
		p.twStage = append(p.twStage, tw)
	}

	planMu.Lock()
	planCache[n] = p
	planMu.Unlock()
	return p, nil
}

// MustPlan is NewFFTPlan that panics on invalid sizes. Intended for sizes
// derived from a SpreadingFactor, which are powers of two by construction.
func MustPlan(n int) *FFTPlan {
	p, err := NewFFTPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// Rev returns the plan's bit-reversal permutation: Rev()[i] is the input
// index whose value lands in slot i after the reversal pass. Kernels that
// fuse their load with the reversal (reading input already permuted, so the
// transform skips its swap pass) index their tables through it. The slice is
// shared plan state — callers must not modify it.
func (p *FFTPlan) Rev() []int32 { return p.rev }

// Forward computes the in-place forward DFT of x. len(x) must equal the plan
// size. The transform is unnormalized: Forward followed by Inverse returns
// the original vector.
func (p *FFTPlan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalization.
func (p *FFTPlan) Inverse(x []complex128) {
	p.transform(x, true)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= scale
	}
}

// ForwardMag computes y[i] = |FFT(x)[i]|² in a single pass: the final
// butterfly stage feeds squared magnitudes straight into y instead of
// materializing the spectrum and re-walking it with MagSq. x is consumed as
// scratch — after the call it holds the two half-size sub-transforms, not
// the spectrum. len(y) and len(x) must equal the plan size.
func (p *FFTPlan) ForwardMag(y []float64, x []complex128) {
	n := p.n
	if len(x) != n || len(y) != n {
		panic(fmt.Sprintf("dsp: ForwardMag lengths (%d, %d) != plan size %d", len(y), len(x), n))
	}
	if n == 1 {
		y[0] = real(x[0])*real(x[0]) + imag(x[0])*imag(x[0])
		return
	}
	p.bitReverse(x)
	p.butterflies(x, false, n>>1)
	// Final stage fused with the magnitude computation: the butterfly
	// outputs a = x[i] + w·x[i+half] and b = x[i] − w·x[i+half] are squared
	// in registers and never stored.
	half := n >> 1
	for i := 0; i < half; i++ {
		u := x[i]
		t := x[i+half]
		if i != 0 {
			t = p.twiddle[i] * t
		}
		a, b := u+t, u-t
		y[i] = real(a)*real(a) + imag(a)*imag(a)
		y[i+half] = real(b)*real(b) + imag(b)*imag(b)
	}
}

// ForwardMagBatch is ForwardMag over rows stacked symbols: x and y hold
// rows contiguous segments of the plan size, and row r is transformed
// exactly as ForwardMag(y[r·n:(r+1)·n], x[r·n:(r+1)·n]) would — bit for bit
// — but with one twiddle sweep shared by the whole stack. After the
// twiddle-free size-2/4 stages (which run across the flat buffer, since row
// boundaries are multiples of every stage size), each generic-stage twiddle
// is loaded once and applied to the matching butterfly of every block of
// every row, amortizing the table walk that dominates small transforms. x is
// consumed as scratch. Rows are independent, so interleaving stages across
// rows cannot change any row's result.
func (p *FFTPlan) ForwardMagBatch(y []float64, x []complex128, rows int) {
	n := p.n
	if len(x) != rows*n || len(y) != rows*n {
		panic(fmt.Sprintf("dsp: ForwardMagBatch lengths (%d, %d) != %d rows of plan size %d",
			len(y), len(x), rows, n))
	}
	if rows <= 0 {
		return
	}
	if n < 8 {
		// Tiny transforms have no generic stages to batch; the stage layout
		// below needs n to be a multiple of the size-4 stage.
		for r := 0; r < rows; r++ {
			p.ForwardMag(y[r*n:(r+1)*n], x[r*n:(r+1)*n])
		}
		return
	}
	total := rows * n
	for r := 0; r < total; r += n {
		p.bitReverse(x[r : r+n])
	}
	p.forwardMagStages(y, x, total)
}

// ForwardMagBatchRev is ForwardMagBatch for rows whose samples are already
// stored in bit-reversed order — the layout a kernel produces when it fuses
// its load with the reversal permutation (see Rev). Skipping the swap pass
// saves one full walk of the stack; everything after it is the exact
// ForwardMagBatch stage sequence. Requires the plan size to be ≥ 8 (every
// 2^SF transform is).
func (p *FFTPlan) ForwardMagBatchRev(y []float64, x []complex128, rows int) {
	n := p.n
	if len(x) != rows*n || len(y) != rows*n {
		panic(fmt.Sprintf("dsp: ForwardMagBatchRev lengths (%d, %d) != %d rows of plan size %d",
			len(y), len(x), rows, n))
	}
	if rows <= 0 {
		return
	}
	if n < 8 {
		panic(fmt.Sprintf("dsp: ForwardMagBatchRev needs plan size >= 8, have %d", n))
	}
	p.forwardMagStages(y, x, rows*n)
}

// forwardMagStages runs the shared post-reversal stage sequence of the
// batched magnitude transforms over a flat stack of total = rows·n samples.
func (p *FFTPlan) forwardMagStages(y []float64, x []complex128, total int) {
	n := p.n
	// Size-2 stage: w = 1 everywhere.
	for i := 0; i+1 < total; i += 2 {
		a, b := x[i], x[i+1]
		x[i], x[i+1] = a+b, a-b
	}
	// Size-4 stage: w ∈ {1, -i}.
	for s := 0; s < total; s += 4 {
		a, b := x[s], x[s+2]
		x[s], x[s+2] = a+b, a-b
		c, d := x[s+1], x[s+3]
		t := complex(imag(d), -real(d)) // -i·d
		x[s+1], x[s+3] = c+t, c-t
	}
	// Size-8 stage, fully unrolled: its three twiddles are loop constants
	// shared by every block, and unrolling removes the 3-iteration inner
	// loop's overhead — the per-butterfly arithmetic and operand order are
	// exactly the generic stage's.
	if n >= 16 {
		w1, w2, w3 := p.twStage[0][1], p.twStage[0][2], p.twStage[0][3]
		for s := 0; s < total; s += 8 {
			blk := x[s : s+8 : s+8]
			a, b := blk[0], blk[4]
			blk[0], blk[4] = a+b, a-b
			u, t := blk[1], w1*blk[5]
			blk[1], blk[5] = u+t, u-t
			u, t = blk[2], w2*blk[6]
			blk[2], blk[6] = u+t, u-t
			u, t = blk[3], w3*blk[7]
			blk[3], blk[7] = u+t, u-t
		}
	}
	// Generic stages up to n/2, block-major with three-index subslices so
	// the lo/hi indexing needs no bounds checks, each stage walking its
	// compacted sequential twiddle table. Butterflies of a stage touch
	// disjoint pairs, so the visit order cannot change any row's result.
	si := 1
	for size := 16; size <= n>>1; size <<= 1 {
		half := size >> 1
		tw := p.twStage[si][:half:half]
		si++
		for base := 0; base < total; base += size {
			lo := x[base : base+half : base+half]
			hi := x[base+half : base+size : base+size]
			a, b := lo[0], hi[0]
			lo[0], hi[0] = a+b, a-b
			for i := 1; i < half; i++ {
				w := tw[i]
				t := w * hi[i]
				hi[i] = lo[i] - t
				lo[i] += t
			}
		}
	}
	// Final stage fused with the magnitude computation, per row, with the
	// w == 1 butterfly hoisted out of the twiddled loop.
	half := n >> 1
	twf := p.twiddle[:half:half]
	for r := 0; r < total; r += n {
		lo := x[r : r+half : r+half]
		hi := x[r+half : r+n : r+n]
		ylo := y[r : r+half : r+half]
		yhi := y[r+half : r+n : r+n]
		u, t := lo[0], hi[0]
		a, b := u+t, u-t
		ylo[0] = real(a)*real(a) + imag(a)*imag(a)
		yhi[0] = real(b)*real(b) + imag(b)*imag(b)
		for i := 1; i < half; i++ {
			u := lo[i]
			t := twf[i] * hi[i]
			a, b := u+t, u-t
			ylo[i] = real(a)*real(a) + imag(a)*imag(a)
			yhi[i] = real(b)*real(b) + imag(b)*imag(b)
		}
	}
}

func (p *FFTPlan) transform(x []complex128, inverse bool) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("dsp: FFT input length %d != plan size %d", len(x), n))
	}
	p.bitReverse(x)
	p.butterflies(x, inverse, n)
}

// bitReverse applies the plan's bit-reversal permutation in place.
func (p *FFTPlan) bitReverse(x []complex128) {
	for i := 0; i < p.n; i++ {
		j := int(p.rev[i])
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// butterflies runs the iterative Cooley-Tukey stages from size 2 up to and
// including upTo (a power of two ≤ n). The size-2 and size-4 stages are
// unrolled — their twiddles are exactly 1 and ∓i, so they need no complex
// multiplies — and every later stage skips the w == 1 multiply of its first
// butterfly. Multiplying by (1+0i) or (0∓i) is exact in IEEE arithmetic, so
// the specialized stages are bit-identical to the generic loop.
func (p *FFTPlan) butterflies(x []complex128, inverse bool, upTo int) {
	n := p.n
	if upTo >= 2 {
		// Size-2 stage: w = 1 for every butterfly.
		for i := 0; i+1 < n; i += 2 {
			a, b := x[i], x[i+1]
			x[i], x[i+1] = a+b, a-b
		}
	}
	if upTo >= 4 {
		// Size-4 stage: w ∈ {1, -i} forward, {1, +i} inverse.
		for s := 0; s < n; s += 4 {
			a, b := x[s], x[s+2]
			x[s], x[s+2] = a+b, a-b
			c, d := x[s+1], x[s+3]
			var t complex128
			if inverse {
				t = complex(-imag(d), real(d)) // +i·d
			} else {
				t = complex(imag(d), -real(d)) // -i·d
			}
			x[s+1], x[s+3] = c+t, c-t
		}
	}
	for size := 8; size <= upTo; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			// k == 0: w = 1, no multiply.
			a, b := x[start], x[start+half]
			x[start], x[start+half] = a+b, a-b
			k := step
			for i := start + 1; i < start+half; i++ {
				w := p.twiddle[k]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				t := w * x[i+half]
				x[i+half] = x[i] - t
				x[i] += t
				k += step
			}
		}
	}
}

// FFT returns the forward DFT of x in a newly allocated slice, leaving x
// untouched. len(x) must be a power of two.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	MustPlan(len(x)).Forward(out)
	return out
}

// IFFT returns the normalized inverse DFT of x in a newly allocated slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	MustPlan(len(x)).Inverse(out)
	return out
}
