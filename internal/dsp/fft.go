// Package dsp provides the signal-processing primitives used by the LoRa
// receiver: an iterative radix-2 FFT with cached twiddle factors, complex
// vector helpers, fractional-delay interpolation and a Gaussian sampler.
//
// Everything here is pure Go on top of the standard library. FFT sizes in
// this repository are always powers of two (2^SF, optionally times the
// over-sampling factor), so a radix-2 transform is sufficient.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFTPlan holds precomputed twiddle factors and the bit-reversal permutation
// for one transform size. A plan is safe for concurrent use once built.
type FFTPlan struct {
	n       int
	logN    int
	rev     []int32      // bit-reversal permutation
	twiddle []complex128 // e^{-2πik/n} for k in [0, n/2)
}

var (
	planMu    sync.RWMutex
	planCache = map[int]*FFTPlan{}
)

// NewFFTPlan builds (or returns a cached) plan for transforms of length n.
// n must be a power of two and at least 1.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two", n)
	}
	planMu.RLock()
	p, ok := planCache[n]
	planMu.RUnlock()
	if ok {
		return p, nil
	}

	p = &FFTPlan{
		n:       n,
		logN:    bits.TrailingZeros(uint(n)),
		rev:     make([]int32, n),
		twiddle: make([]complex128, n/2),
	}
	shift := 32 - p.logN
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse32(uint32(i)) >> uint(shift))
	}
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = complex(math.Cos(ang), math.Sin(ang))
	}

	planMu.Lock()
	planCache[n] = p
	planMu.Unlock()
	return p, nil
}

// MustPlan is NewFFTPlan that panics on invalid sizes. Intended for sizes
// derived from a SpreadingFactor, which are powers of two by construction.
func MustPlan(n int) *FFTPlan {
	p, err := NewFFTPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the in-place forward DFT of x. len(x) must equal the plan
// size. The transform is unnormalized: Forward followed by Inverse returns
// the original vector.
func (p *FFTPlan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalization.
func (p *FFTPlan) Inverse(x []complex128) {
	p.transform(x, true)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= scale
	}
}

func (p *FFTPlan) transform(x []complex128, inverse bool) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("dsp: FFT input length %d != plan size %d", len(x), n))
	}
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(p.rev[i])
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for i := start; i < start+half; i++ {
				w := p.twiddle[k]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				t := w * x[i+half]
				x[i+half] = x[i] - t
				x[i] += t
				k += step
			}
		}
	}
}

// FFT returns the forward DFT of x in a newly allocated slice, leaving x
// untouched. len(x) must be a power of two.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	MustPlan(len(x)).Forward(out)
	return out
}

// IFFT returns the normalized inverse DFT of x in a newly allocated slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	MustPlan(len(x)).Inverse(out)
	return out
}
