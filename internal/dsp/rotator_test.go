package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

// TestRotatorMatchesDirectEvaluation pins the kernel-layer accuracy
// contract: over runs much longer than any symbol, the phase-recurrence
// oscillator stays within 1e-9 relative error of the direct per-sample
// Cis evaluation it replaces.
func TestRotatorMatchesDirectEvaluation(t *testing.T) {
	cases := []struct {
		name           string
		phase0, dphase float64
	}{
		{"zero", 0, 0},
		{"slow_positive", 0.3, 1e-4},
		{"cfo_like", -1.7, -2 * math.Pi * 2.25 / 256},
		{"fast_negative", 2.9, -1.3},
		{"near_pi_step", 0.1, math.Pi - 1e-3},
	}
	const steps = 1 << 16
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rot := NewRotator(c.phase0, c.dphase)
			worst := 0.0
			for k := 0; k < steps; k++ {
				got := rot.Next()
				want := Cis(c.phase0 + c.dphase*float64(k))
				// |want| = 1, so absolute error is relative error.
				if e := cmplx.Abs(got - want); e > worst {
					worst = e
				}
			}
			if worst > 1e-9 {
				t.Errorf("max relative error %g over %d steps, want <= 1e-9", worst, steps)
			}
		})
	}
}

// TestRotatorRenormalizationResets checks the recurrence is re-seeded
// exactly at block boundaries: the value right after a renormalization is
// the direct evaluation, bit for bit.
func TestRotatorRenormalizationResets(t *testing.T) {
	phase0, dphase := 0.37, 0.01183
	rot := NewRotator(phase0, dphase)
	for k := 0; k < 4*RotatorRenormBlock; k++ {
		got := rot.Next()
		if k%RotatorRenormBlock == 0 {
			if want := Cis(phase0 + dphase*float64(k)); got != want {
				t.Fatalf("step %d (block boundary): got %v, want exact %v", k, got, want)
			}
		}
	}
}

func TestApplyToneMatchesDirectEvaluation(t *testing.T) {
	n := 4096
	f, phase0 := 3.7/float64(n), 0.9
	x := make([]complex128, n)
	want := make([]complex128, n)
	for i := range x {
		x[i] = complex(1, -0.5)
		want[i] = x[i] * Cis(phase0+2*math.Pi*f*float64(i))
	}
	ApplyTone(x, f, phase0)
	for i := range x {
		if e := cmplx.Abs(x[i] - want[i]); e > 1e-9 {
			t.Fatalf("sample %d: error %g", i, e)
		}
	}
}

func BenchmarkRotator(b *testing.B) {
	dst := make([]complex128, 256)
	b.Run("recurrence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rot := NewRotator(0.3, 0.01)
			for k := range dst {
				dst[k] = rot.Next()
			}
		}
	})
	b.Run("direct_cis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k := range dst {
				dst[k] = Cis(0.3 + 0.01*float64(k))
			}
		}
	})
}
