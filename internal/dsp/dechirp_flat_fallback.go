//go:build tnb_noflat

package dsp

// DechirpFusedFlat under the tnb_noflat tag: run the complex kernel into a
// temporary and split the planes. Numerically identical to the flat kernel;
// allocates one scratch symbol per call, which only matters on targets that
// opted out of the flat inner loops.
func DechirpFusedFlat(dstRe, dstIm []float64, x []complex128, start, step float64, ref []complex128, phase0, dphase float64) {
	tmp := make([]complex128, len(dstRe))
	DechirpFused(tmp, x, start, step, ref, phase0, dphase)
	for i, v := range tmp {
		dstRe[i], dstIm[i] = real(v), imag(v)
	}
}
