package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// dechirp3Pass is the legacy reference: Resample, then MulConj, then the
// per-sample direct-evaluation CFO rotation — the three passes DechirpFused
// replaces.
func dechirp3Pass(dst, x []complex128, start, step float64, ref []complex128, phase0, dphase float64) {
	Resample(dst, x, start, step)
	MulConj(dst, dst, ref)
	if phase0 != 0 || dphase != 0 {
		for i := range dst {
			dst[i] *= Cis(phase0 + dphase*float64(i))
		}
	}
}

// TestDechirpFusedMatchesThreePass is the kernel equivalence property test:
// across random starts, steps, rotations and out-of-range overhangs, the
// fused single-pass kernel matches the legacy 3-pass path within 1e-9
// relative error.
func TestDechirpFusedMatchesThreePass(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 256
	x := randomVec(rng, 4*n)
	ref := make([]complex128, n)
	for i := range ref {
		s, c := math.Sincos(2 * math.Pi * float64(i*i) / float64(n))
		ref[i] = complex(c, s)
	}
	got := make([]complex128, n)
	want := make([]complex128, n)

	scale := 0.0
	for _, v := range x {
		if a := cmplx.Abs(v); a > scale {
			scale = a
		}
	}
	for trial := 0; trial < 300; trial++ {
		// Starts span negative offsets, interior positions and overhangs
		// past the end of x; steps include the oversampling-factor cases.
		start := rng.Float64()*float64(5*n) - float64(n)
		step := []float64{1, 2, 4, 8, 1.5, rng.Float64()*7 + 0.5}[trial%6]
		var phase0, dphase float64
		if trial%3 != 0 {
			phase0 = rng.Float64()*2*math.Pi - math.Pi
			dphase = rng.Float64()*0.2 - 0.1
		}
		DechirpFused(got, x, start, step, ref, phase0, dphase)
		dechirp3Pass(want, x, start, step, ref, phase0, dphase)
		for i := range got {
			if e := cmplx.Abs(got[i] - want[i]); e > 1e-9*scale {
				t.Fatalf("trial %d (start=%g step=%g ph0=%g dph=%g) sample %d: fused %v vs 3-pass %v (err %g)",
					trial, start, step, phase0, dphase, i, got[i], want[i], e)
			}
		}
	}
}

// TestDechirpFusedIntegerFastPathExact pins the detection-scan case: with an
// integer start, an integer step and no rotation, the kernel is a strided
// copy times conj(ref) — bit-identical to the general path, including the
// zero fill past the edges of x.
func TestDechirpFusedIntegerFastPathExact(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 64
	x := randomVec(rng, 3*n)
	ref := randomVec(rng, n)
	got := make([]complex128, n)
	want := make([]complex128, n)
	for _, start := range []float64{0, float64(n), float64(2*n + 17), -8} {
		DechirpFused(got, x, start, 4, ref, 0, 0)
		// Reference: explicit strided gather with SampleAt semantics.
		for k := range want {
			v := SampleAt(x, start+4*float64(k))
			want[k] = v * cmplx.Conj(ref[k])
		}
		for i := range got {
			if got[i] != want[i] && cmplx.Abs(got[i]-want[i]) > 1e-15 {
				t.Fatalf("start=%g sample %d: got %v, want %v", start, i, got[i], want[i])
			}
		}
	}
}

// TestSampleAtEdgeCases covers the contract at and beyond the ends of x:
// negative positions, the exact last sample, fractional positions inside
// (len(x)-1, len(x)), and the frac == 0 fast path.
func TestSampleAtEdgeCases(t *testing.T) {
	x := []complex128{1 + 1i, 2, 3 - 1i, 4i}
	cases := []struct {
		pos  float64
		want complex128
	}{
		{-1e-9, 0},               // just below the start
		{-5, 0},                  // far negative
		{0, 1 + 1i},              // frac==0 at the first sample
		{2, 3 - 1i},              // frac==0 interior
		{3, 4i},                  // exactly the last sample
		{3.0000001, 0},           // inside (len-1, len): silence
		{3.999, 0},               // still inside (len-1, len)
		{4, 0},                   // one past the end
		{2.5, (3 - 1i + 4i) / 2}, // interpolation into the last sample
	}
	for _, c := range cases {
		if got := SampleAt(x, c.pos); cmplx.Abs(got-c.want) > 1e-12 {
			t.Errorf("SampleAt(%g) = %v, want %v", c.pos, got, c.want)
		}
	}
	if SampleAt([]complex128{}, 0) != 0 {
		t.Error("SampleAt on empty input should be 0")
	}
}

// TestResampleEdgeCases checks Resample keeps SampleAt's edge semantics when
// the sweep starts negative or runs off the end of x.
func TestResampleEdgeCases(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	dst := make([]complex128, 8)

	// Negative start: leading zeros, then the in-range samples.
	Resample(dst, x, -2, 1)
	want := []complex128{0, 0, 1, 2, 3, 4, 0, 0}
	for i := range dst {
		if dst[i] != want[i] {
			t.Errorf("negative start: dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}

	// Fractional sweep entering (len-1, len): interpolated until the last
	// sample, zero beyond it.
	Resample(dst[:4], x, 2.5, 0.25)
	wantF := []complex128{3.5, 3.75, 4, 0}
	for i, w := range wantF {
		if cmplx.Abs(dst[i]-w) > 1e-12 {
			t.Errorf("tail sweep: dst[%d] = %v, want %v", i, dst[i], w)
		}
	}

	// Exact-integer positions hit the frac==0 fast path: bit-identical to
	// direct indexing.
	Resample(dst[:4], x, 0, 1)
	for i := range x {
		if dst[i] != x[i] {
			t.Errorf("frac==0: dst[%d] = %v, want %v", i, dst[i], x[i])
		}
	}
}

func BenchmarkDechirpKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	n := 256
	x := randomVec(rng, 16*n)
	ref := make([]complex128, n)
	for i := range ref {
		ref[i] = Cis(math.Pi * (float64(i)*float64(i)/float64(n) - float64(i)))
	}
	dst := make([]complex128, n)
	phase0, dphase := -1.2, -2*math.Pi*2.25/float64(n)
	b.Run("fused_frac_cfo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DechirpFused(dst, x, 100.37, 8, ref, phase0, dphase)
		}
	})
	b.Run("fused_int_nocfo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DechirpFused(dst, x, 2048, 8, ref, 0, 0)
		}
	})
	b.Run("legacy_3pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dechirp3Pass(dst, x, 100.37, 8, ref, phase0, dphase)
		}
	})
}
