package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulConj(t *testing.T) {
	a := []complex128{1 + 2i, 3 - 1i, -2 + 0.5i}
	b := []complex128{2 - 1i, 1 + 1i, 0 + 3i}
	dst := make([]complex128, len(a))
	MulConj(dst, a, b)
	for i := range a {
		want := a[i] * cmplx.Conj(b[i])
		if cmplx.Abs(dst[i]-want) > 1e-12 {
			t.Errorf("i=%d: got %v, want %v", i, dst[i], want)
		}
	}
}

func TestMulConjAliasing(t *testing.T) {
	a := []complex128{1 + 2i, 3 - 1i}
	b := []complex128{2 - 1i, 1 + 1i}
	want := make([]complex128, len(a))
	MulConj(want, a, b)
	MulConj(a, a, b) // dst aliases a
	for i := range a {
		if cmplx.Abs(a[i]-want[i]) > 1e-12 {
			t.Errorf("aliased MulConj differs at %d", i)
		}
	}
}

func TestEnergyAndPower(t *testing.T) {
	x := []complex128{3 + 4i, 0, 1i}
	if got := Energy(x); math.Abs(got-26) > 1e-12 {
		t.Errorf("Energy = %g, want 26", got)
	}
	if got := Power(x); math.Abs(got-26.0/3) > 1e-12 {
		t.Errorf("Power = %g, want %g", got, 26.0/3)
	}
	if Power(nil) != 0 {
		t.Error("Power(nil) should be 0")
	}
}

func TestMaxAbs(t *testing.T) {
	x := []complex128{1, 5i, -3, 2 + 2i}
	idx, mag := MaxAbs(x)
	if idx != 1 || math.Abs(mag-25) > 1e-12 {
		t.Errorf("MaxAbs = (%d, %g), want (1, 25)", idx, mag)
	}
	if idx, _ := MaxAbs(nil); idx != -1 {
		t.Error("MaxAbs(nil) index should be -1")
	}
}

func TestMagSq(t *testing.T) {
	x := []complex128{3 + 4i, 1 - 1i}
	dst := make([]float64, 2)
	MagSq(dst, x)
	if dst[0] != 25 || math.Abs(dst[1]-2) > 1e-12 {
		t.Errorf("MagSq = %v", dst)
	}
}

func TestCisUnitCircle(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) || math.Abs(theta) > 1e6 {
			return true
		}
		v := Cis(theta)
		return math.Abs(cmplx.Abs(v)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyToneShiftsSpectrum(t *testing.T) {
	n := 256
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	ApplyTone(x, 10.0/float64(n), 0)
	y := FFT(x)
	idx, _ := MaxAbs(y)
	if idx != 10 {
		t.Errorf("tone peak at bin %d, want 10", idx)
	}
}

func TestScaleAndAddTo(t *testing.T) {
	x := []complex128{1 + 1i, 2}
	Scale(x, 2)
	if x[0] != 2+2i || x[1] != 4 {
		t.Errorf("Scale result %v", x)
	}
	y := []complex128{1, 1i}
	AddTo(x, y)
	if x[0] != 3+2i || x[1] != 4+1i {
		t.Errorf("AddTo result %v", x)
	}
}

func TestSampleAtEndpoints(t *testing.T) {
	x := []complex128{1, 2, 3}
	cases := []struct {
		pos  float64
		want complex128
	}{
		{0, 1}, {1, 2}, {2, 3}, {0.5, 1.5}, {1.25, 2.25},
		{-0.1, 0}, {2.5, 0}, {3, 0},
	}
	for _, c := range cases {
		if got := SampleAt(x, c.pos); cmplx.Abs(got-c.want) > 1e-12 {
			t.Errorf("SampleAt(%g) = %v, want %v", c.pos, got, c.want)
		}
	}
	if SampleAt(nil, 0) != 0 {
		t.Error("SampleAt(nil) should be 0")
	}
}

func TestResampleIntegerStepMatchesDecimation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomVec(rng, 64)
	dst := make([]complex128, 16)
	Resample(dst, x, 0, 4)
	for k := range dst {
		if dst[k] != x[4*k] {
			t.Errorf("k=%d: got %v, want %v", k, dst[k], x[4*k])
		}
	}
}

func TestResampleLinearRamp(t *testing.T) {
	// A linear ramp is reproduced exactly by linear interpolation.
	x := make([]complex128, 32)
	for i := range x {
		x[i] = complex(float64(i), -float64(i))
	}
	dst := make([]complex128, 10)
	Resample(dst, x, 1.5, 2.25)
	for k := range dst {
		pos := 1.5 + 2.25*float64(k)
		want := complex(pos, -pos)
		if cmplx.Abs(dst[k]-want) > 1e-9 {
			t.Errorf("k=%d: got %v, want %v", k, dst[k], want)
		}
	}
}

func TestAddNoisePower(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 200000
	x := make([]complex128, n)
	AddNoise(x, 4.0, rng)
	p := Power(x)
	if math.Abs(p-4) > 0.1 {
		t.Errorf("noise power %g, want ≈4", p)
	}
	// Zero/negative power is a no-op.
	y := []complex128{1 + 1i}
	AddNoise(y, 0, rng)
	AddNoise(y, -1, rng)
	if y[0] != 1+1i {
		t.Error("AddNoise with non-positive power should not modify input")
	}
}

func TestDBConversions(t *testing.T) {
	if math.Abs(DBToLinear(10)-10) > 1e-12 {
		t.Error("DBToLinear(10) != 10")
	}
	if math.Abs(LinearToDB(100)-20) > 1e-12 {
		t.Error("LinearToDB(100) != 20")
	}
	if !math.IsInf(LinearToDB(0), -1) {
		t.Error("LinearToDB(0) should be -Inf")
	}
	f := func(db float64) bool {
		if math.Abs(db) > 100 {
			return true
		}
		return math.Abs(LinearToDB(DBToLinear(db))-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
