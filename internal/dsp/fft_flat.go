//go:build !tnb_noflat

package dsp

// FlatKernels reports whether this build carries the split re/im
// kernels (true) or the tnb_noflat fallbacks (false); tests use it to skip
// guarantees the fallbacks intentionally trade away.
const FlatKernels = true

// ForwardMagBatchFlat is ForwardMagBatch on split re/im rows: re and im hold
// the real and imaginary parts of rows stacked symbols, and y receives the
// squared magnitudes. Split []float64 loops vectorize far better than
// []complex128 ones, and every arithmetic step below is the same naive
// IEEE expression the complex kernels compile to (Go emits the textbook
// 4-multiply complex product with no FMA contraction on the supported
// targets), so the result is bit-identical to ForwardMagBatch on the
// interleaved data — the parity tests pin it at the bit level, the kernel
// contract only requires ≤1e-9. re and im are consumed as scratch.
//
// Builds with the tnb_noflat tag replace this file with a fallback that
// routes through the complex kernels (see fft_flat_fallback.go).
func (p *FFTPlan) ForwardMagBatchFlat(y, re, im []float64, rows int) {
	n := p.n
	if len(re) != rows*n || len(im) != rows*n || len(y) != rows*n {
		panic("dsp: ForwardMagBatchFlat length mismatch")
	}
	if rows <= 0 {
		return
	}
	if n < 8 {
		// Tiny transforms are interleaved back and routed through the
		// complex kernel; no pipeline size hits this path.
		x := make([]complex128, n)
		for r := 0; r < rows; r++ {
			for i := 0; i < n; i++ {
				x[i] = complex(re[r*n+i], im[r*n+i])
			}
			p.ForwardMag(y[r*n:(r+1)*n], x)
		}
		return
	}
	total := rows * n
	// Bit-reversal per row, swapping both planes.
	for r := 0; r < total; r += n {
		for i := 0; i < n; i++ {
			j := int(p.rev[i])
			if i < j {
				re[r+i], re[r+j] = re[r+j], re[r+i]
				im[r+i], im[r+j] = im[r+j], im[r+i]
			}
		}
	}
	p.forwardMagStagesFlat(y, re, im, total)
}

// ForwardMagBatchFlatRev is ForwardMagBatchRev on split re/im planes: the
// rows are already stored in bit-reversed order, so the swap pass is
// skipped. Requires the plan size to be ≥ 8.
func (p *FFTPlan) ForwardMagBatchFlatRev(y, re, im []float64, rows int) {
	n := p.n
	if len(re) != rows*n || len(im) != rows*n || len(y) != rows*n {
		panic("dsp: ForwardMagBatchFlatRev length mismatch")
	}
	if rows <= 0 {
		return
	}
	if n < 8 {
		panic("dsp: ForwardMagBatchFlatRev needs plan size >= 8")
	}
	p.forwardMagStagesFlat(y, re, im, rows*n)
}

// forwardMagStagesFlat runs the shared post-reversal stage sequence on split
// planes over a flat stack of total samples.
func (p *FFTPlan) forwardMagStagesFlat(y, re, im []float64, total int) {
	n := p.n
	// Size-2 stage: w = 1 everywhere.
	for i := 0; i+1 < total; i += 2 {
		ar, ai := re[i], im[i]
		br, bi := re[i+1], im[i+1]
		re[i], im[i] = ar+br, ai+bi
		re[i+1], im[i+1] = ar-br, ai-bi
	}
	// Size-4 stage: w ∈ {1, -i}; -i·d = (imag(d), -real(d)).
	for s := 0; s < total; s += 4 {
		ar, ai := re[s], im[s]
		br, bi := re[s+2], im[s+2]
		re[s], im[s] = ar+br, ai+bi
		re[s+2], im[s+2] = ar-br, ai-bi
		cr, ci := re[s+1], im[s+1]
		dr, di := re[s+3], im[s+3]
		tr, ti := di, -dr
		re[s+1], im[s+1] = cr+tr, ci+ti
		re[s+3], im[s+3] = cr-tr, ci-ti
	}
	// Generic stages up to n/2, block-major: the twiddle table is tiny and
	// cache-resident, so walking each block sequentially beats sweeping a
	// twiddle across strided blocks. Subslices bound to the block length
	// let the compiler drop the inner-loop bounds checks.
	for size := 8; size <= n>>1; size <<= 1 {
		half := size >> 1
		step := n / size
		for base := 0; base < total; base += size {
			loRe := re[base : base+half : base+half]
			loIm := im[base : base+half : base+half]
			hiRe := re[base+half : base+size : base+size]
			hiIm := im[base+half : base+size : base+size]
			ar, ai := loRe[0], loIm[0]
			br, bi := hiRe[0], hiIm[0]
			loRe[0], loIm[0] = ar+br, ai+bi
			hiRe[0], hiIm[0] = ar-br, ai-bi
			k := step
			for i := 1; i < half; i++ {
				wr, wi := p.twRe[k], p.twIm[k]
				xr, xi := hiRe[i], hiIm[i]
				tr := wr*xr - wi*xi
				ti := wr*xi + wi*xr
				hiRe[i], hiIm[i] = loRe[i]-tr, loIm[i]-ti
				loRe[i] += tr
				loIm[i] += ti
				k += step
			}
		}
	}
	// Final stage fused with the magnitude computation, per row.
	half := n >> 1
	for r := 0; r < total; r += n {
		for i := 0; i < half; i++ {
			lo, hi := r+i, r+i+half
			ur, ui := re[lo], im[lo]
			tr, ti := re[hi], im[hi]
			if i != 0 {
				wr, wi := p.twRe[i], p.twIm[i]
				tr, ti = wr*tr-wi*ti, wr*ti+wi*tr
			}
			ar, ai := ur+tr, ui+ti
			br, bi := ur-tr, ui-ti
			y[lo] = ar*ar + ai*ai
			y[hi] = br*br + bi*bi
		}
	}
}
