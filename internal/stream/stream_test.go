package stream

import (
	"bytes"
	"math/rand"
	"testing"

	"tnb/internal/core"
	"tnb/internal/lora"
	"tnb/internal/obs"
	"tnb/internal/trace"
)

func streamParams() lora.Params { return lora.MustParams(8, 4, 125e3, 8) }

// buildLongTrace returns a multi-packet trace and its records.
func buildLongTrace(t *testing.T, seed int64, n int, durSec float64) (*trace.Trace, []trace.TxRecord) {
	t.Helper()
	p := streamParams()
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(p, durSec, 1, rng)
	starts := b.ScheduleUniform(n, 14)
	for i, s := range starts {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := b.AddPacket(i, 0, payload, s, 8+4*rng.Float64(), -4000+8000*rng.Float64(), nil); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func newStreamer(t *testing.T) *Streamer {
	t.Helper()
	s, err := New(Config{Receiver: core.Config{Params: streamParams(), UseBEC: true}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustFeed(t *testing.T, s *Streamer, samples []complex128) []Decoded {
	t.Helper()
	out, err := s.Feed(samples)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mustFlush(t *testing.T, s *Streamer) []Decoded {
	t.Helper()
	out, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func decodedSet(ds []Decoded) map[string]bool {
	set := map[string]bool{}
	for _, d := range ds {
		set[string(d.Payload)] = true
	}
	return set
}

func TestStreamerMatchesWholeTraceDecode(t *testing.T) {
	tr, _ := buildLongTrace(t, 800, 8, 3.0)

	// Reference: one-shot decode.
	rx := core.NewReceiver(core.Config{Params: streamParams(), UseBEC: true})
	ref := map[string]bool{}
	for _, d := range rx.Decode(tr) {
		ref[string(d.Payload)] = true
	}
	if len(ref) == 0 {
		t.Fatal("reference decoded nothing")
	}

	// Streamed in fixed chunks.
	s := newStreamer(t)
	var got []Decoded
	chunk := 100_000
	samples := tr.Antennas[0]
	for off := 0; off < len(samples); off += chunk {
		end := off + chunk
		if end > len(samples) {
			end = len(samples)
		}
		got = append(got, mustFeed(t, s, samples[off:end])...)
	}
	got = append(got, mustFlush(t, s)...)

	gotSet := decodedSet(got)
	for pl := range ref {
		if !gotSet[pl] {
			t.Errorf("streamer missed a packet the one-shot decode found")
		}
	}
}

func TestStreamerRandomChunkSizes(t *testing.T) {
	tr, _ := buildLongTrace(t, 801, 6, 2.5)
	s := newStreamer(t)
	rng := rand.New(rand.NewSource(802))
	samples := tr.Antennas[0]
	var got []Decoded
	off := 0
	for off < len(samples) {
		n := 1 + rng.Intn(200_000)
		if off+n > len(samples) {
			n = len(samples) - off
		}
		got = append(got, mustFeed(t, s, samples[off:off+n])...)
		off += n
	}
	got = append(got, mustFlush(t, s)...)
	if len(got) == 0 {
		t.Fatal("nothing decoded from random-size chunks")
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, d := range got {
		k := string(d.Payload)
		if seen[k] {
			t.Errorf("duplicate emission of %x", d.Payload)
		}
		seen[k] = true
	}
}

func TestStreamerAbsoluteTimestamps(t *testing.T) {
	p := streamParams()
	rng := rand.New(rand.NewSource(803))
	b := trace.NewBuilder(p, 3.0, 1, rng)
	payload := []uint8("timestamped!!")
	truth := 2_000_000.5 // deep into the second processing window
	if err := b.AddPacket(0, 0, payload, truth, 12, 1000, nil); err != nil {
		t.Fatal(err)
	}
	tr, _ := b.Build()
	s := newStreamer(t)
	var got []Decoded
	for off := 0; off < tr.Len(); off += 250_000 {
		end := off + 250_000
		if end > tr.Len() {
			end = tr.Len()
		}
		got = append(got, mustFeed(t, s, tr.Antennas[0][off:end])...)
	}
	got = append(got, mustFlush(t, s)...)
	found := false
	for _, d := range got {
		if bytes.Equal(d.Payload, payload) {
			found = true
			if e := d.AbsStart - truth; e > 2 || e < -2 {
				t.Errorf("absolute start %.2f, want %.2f", d.AbsStart, truth)
			}
		}
	}
	if !found {
		t.Fatal("packet not decoded by the streamer")
	}
}

func TestStreamerPacketAcrossWindowBoundary(t *testing.T) {
	// Place a packet straddling the first window boundary exactly.
	p := streamParams()
	s := newStreamer(t)
	rng := rand.New(rand.NewSource(804))
	total := s.WindowSamples()*2 + s.OverlapSamples() + 1000
	b := trace.NewBuilder(p, float64(total)/p.SampleRate(), 1, rng)
	payload := []uint8("boundary rider")
	start := float64(s.WindowSamples()) - float64(p.PacketSamples(len(payload)))/2
	if err := b.AddPacket(0, 0, payload, start, 12, -2000, nil); err != nil {
		t.Fatal(err)
	}
	tr, _ := b.Build()
	var got []Decoded
	got = append(got, mustFeed(t, s, tr.Antennas[0])...)
	got = append(got, mustFlush(t, s)...)
	count := 0
	for _, d := range got {
		if bytes.Equal(d.Payload, payload) {
			count++
		}
	}
	if count != 1 {
		t.Errorf("boundary packet decoded %d times, want exactly 1", count)
	}
}

func TestStreamerEmptyAndFlushOnly(t *testing.T) {
	s := newStreamer(t)
	if out := mustFeed(t, s, nil); len(out) != 0 {
		t.Error("feeding nothing produced decodes")
	}
	if out := mustFlush(t, s); len(out) != 0 {
		t.Error("flushing an empty stream produced decodes")
	}
}

func TestNewStreamerValidation(t *testing.T) {
	if _, err := New(Config{Receiver: core.Config{Params: lora.Params{}}}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := New(Config{
		Receiver:      core.Config{Params: streamParams()},
		WindowSamples: 10, // smaller than the overlap
	}); err == nil {
		t.Error("window smaller than overlap accepted")
	}
}

func TestStreamerTraceEvents(t *testing.T) {
	// A traced streaming run must export stream-layer events (at least the
	// final flush) alongside the packet traces, and every committed packet's
	// trace must carry its stream-absolute start.
	tr, _ := buildLongTrace(t, 806, 4, 2.0)
	var jsonl bytes.Buffer
	tracer := obs.New(obs.Options{Sink: &jsonl, RingSize: 32})
	s, err := New(Config{Receiver: core.Config{
		Params: streamParams(), UseBEC: true, Tracer: tracer}})
	if err != nil {
		t.Fatal(err)
	}

	samples := tr.Antennas[0]
	var got []Decoded
	chunk := 150_000
	for off := 0; off < len(samples); off += chunk {
		end := off + chunk
		if end > len(samples) {
			end = len(samples)
		}
		got = append(got, mustFeed(t, s, samples[off:end])...)
	}
	got = append(got, mustFlush(t, s)...)
	if len(got) == 0 {
		t.Fatal("nothing decoded")
	}

	for i, d := range got {
		if d.Trace == nil {
			t.Fatalf("decoded %d has no trace", i)
		}
		if d.Trace.AbsStart != d.AbsStart {
			t.Errorf("decoded %d: trace abs start %.1f, report start %.1f",
				i, d.Trace.AbsStart, d.AbsStart)
		}
	}

	counts, err := obs.ValidateJSONL(&jsonl)
	if err != nil {
		t.Fatalf("exported JSONL invalid: %v", err)
	}
	if counts[obs.TypeStream] == 0 {
		t.Errorf("no stream events exported: %v", counts)
	}
	if counts[obs.TypePacket] == 0 {
		t.Errorf("no packet traces exported: %v", counts)
	}
}
