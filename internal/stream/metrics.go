package stream

import (
	"sync"

	"tnb/internal/metrics"
)

// Metrics instruments the streamer. All methods are nil-safe so an
// un-instrumented Streamer pays only nil checks.
type Metrics struct {
	WindowPasses    *metrics.Counter // completed window decodes (Feed)
	Flushes         *metrics.Counter // end-of-stream flush decodes
	DeferredPackets *metrics.Counter // decodes pushed to the next window (overlap re-scan)
	DedupSuppressed *metrics.Counter // duplicate decodes dropped across overlaps
	BufferSamples   *metrics.Gauge   // samples currently buffered
	Overflows       *metrics.Counter // Feed chunks rejected at the buffer ceiling
	NonFinite       *metrics.Counter // NaN/Inf samples zeroed before decoding
}

// NewMetrics registers the streamer instruments on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		WindowPasses:    reg.Counter("tnb_stream_window_passes_total"),
		Flushes:         reg.Counter("tnb_stream_flushes_total"),
		DeferredPackets: reg.Counter("tnb_stream_deferred_packets_total"),
		DedupSuppressed: reg.Counter("tnb_stream_dedup_suppressed_total"),
		BufferSamples:   reg.Gauge("tnb_stream_buffer_samples"),
		Overflows:       reg.Counter("tnb_stream_overflow_total"),
		NonFinite:       reg.Counter("tnb_stream_nonfinite_samples_total"),
	}
}

var (
	defaultMetricsOnce sync.Once
	defaultMetrics     *Metrics
)

// DefaultMetrics returns the shared streamer instruments on metrics.Default.
func DefaultMetrics() *Metrics {
	defaultMetricsOnce.Do(func() { defaultMetrics = NewMetrics(metrics.Default) })
	return defaultMetrics
}

func (m *Metrics) onWindowPass() {
	if m != nil {
		m.WindowPasses.Inc()
	}
}

func (m *Metrics) onFlush() {
	if m != nil {
		m.Flushes.Inc()
	}
}

func (m *Metrics) onDeferred() {
	if m != nil {
		m.DeferredPackets.Inc()
	}
}

func (m *Metrics) onDedup() {
	if m != nil {
		m.DedupSuppressed.Inc()
	}
}

func (m *Metrics) setBuffer(n int) {
	if m != nil {
		m.BufferSamples.Set(int64(n))
	}
}

func (m *Metrics) onOverflow() {
	if m != nil {
		m.Overflows.Inc()
	}
}

func (m *Metrics) onNonFinite(n int) {
	if m != nil {
		m.NonFinite.Add(uint64(n))
	}
}
