package stream

import (
	"errors"
	"sync"
	"testing"

	"tnb/internal/core"
	"tnb/internal/metrics"
)

// TestReentrantFeedRejected drives Feed from the receiver's own callback
// path by hammering the streamer from two goroutines and checking that
// overlapping calls get ErrConcurrentUse while the buffer stays coherent
// (total samples accepted == samples fed by callers that saw no error).
func TestReentrantFeedRejected(t *testing.T) {
	s := newStreamer(t)
	chunk := make([]complex128, 50_000)

	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, rejected := 0, 0
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := s.Feed(chunk)
				mu.Lock()
				switch {
				case err == nil:
					accepted++
				case errors.Is(err, ErrConcurrentUse):
					rejected++
				default:
					t.Errorf("unexpected error: %v", err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if accepted == 0 {
		t.Error("no Feed call succeeded")
	}
	if accepted+rejected != 200 {
		t.Errorf("accepted %d + rejected %d != 200", accepted, rejected)
	}
	// The streamer must still be usable afterwards.
	if _, err := s.Flush(); err != nil {
		t.Errorf("Flush after contention: %v", err)
	}
}

func TestStreamMetricsRecorded(t *testing.T) {
	reg := metrics.NewRegistry()
	met := NewMetrics(reg)
	s, err := New(Config{
		Receiver: core.Config{Params: streamParams(), UseBEC: true},
		Metrics:  met,
	})
	if err != nil {
		t.Fatal(err)
	}

	tr, _ := buildLongTrace(t, 810, 4, 2.5)
	mustFeed(t, s, tr.Antennas[0])
	if met.WindowPasses.Value() == 0 {
		t.Error("no window passes recorded")
	}
	if met.BufferSamples.Value() <= 0 {
		t.Error("buffer gauge not set after Feed")
	}
	mustFlush(t, s)
	if met.Flushes.Value() != 1 {
		t.Errorf("flushes = %d, want 1", met.Flushes.Value())
	}
	if met.BufferSamples.Value() != 0 {
		t.Errorf("buffer gauge = %d after Flush, want 0", met.BufferSamples.Value())
	}
}

func TestDefaultMetricsShared(t *testing.T) {
	if DefaultMetrics() != DefaultMetrics() {
		t.Error("DefaultMetrics not a singleton")
	}
}
