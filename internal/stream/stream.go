// Package stream adapts the block-oriented TnB receiver to a continuous
// sample stream, the shape a live gateway consumes: samples arrive in
// arbitrary-size chunks, packets may straddle chunk boundaries, and decoded
// packets must be emitted exactly once with absolute timestamps.
//
// The streamer buffers one processing window plus an overlap region long
// enough to hold the longest packet. Each processing pass decodes the
// whole window but only commits packets that start before the overlap;
// later starters are re-seen (complete) in the next window.
package stream

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"tnb/internal/core"
	"tnb/internal/lora"
	"tnb/internal/obs"
)

// ErrConcurrentUse is returned by Feed and Flush when a call overlaps
// another: a Streamer is a stateful single-stream decoder and must be
// driven from one goroutine at a time.
var ErrConcurrentUse = errors.New("stream: concurrent Feed/Flush call; Streamer is not safe for concurrent use")

// OverflowError is returned by Feed when accepting a chunk would push the
// sample buffer past its hard ceiling. The buffer is left untouched: the
// caller can shrink its chunks, drop the stream, or (as the gateway does)
// reply with a typed error instead of letting one client grow the process
// without bound.
type OverflowError struct {
	Buffered int // samples already buffered
	Incoming int // samples in the rejected chunk
	Limit    int // the configured ceiling
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("stream: buffer overflow: %d buffered + %d incoming exceeds ceiling %d",
		e.Buffered, e.Incoming, e.Limit)
}

// Decoded is a stream-level decode: a core decode with the stream-absolute
// sample position.
type Decoded struct {
	core.Decoded
	// AbsStart is the packet start in samples since the first Feed call.
	AbsStart float64
}

// Streamer incrementally decodes a single-antenna sample stream. It is NOT
// safe for concurrent use: Feed and Flush mutate the sample buffer and the
// dedup state in place, so overlapping calls would corrupt both. The
// contract is enforced by a cheap guard — a reentrant call returns
// ErrConcurrentUse instead of corrupting the buffer.
type Streamer struct {
	rx     *core.Receiver
	params lora.Params
	met    *Metrics
	tracer *obs.Tracer
	inUse  atomic.Bool

	// window is the number of samples decoded per pass; overlap is the
	// carry-over that lets boundary packets be seen whole.
	window  int
	overlap int
	// maxBuffer is the hard sample-buffer ceiling; Feed rejects chunks
	// that would exceed it with an OverflowError. 0 disables the ceiling.
	maxBuffer int

	buf       []complex128
	absBase   int // absolute sample index of buf[0]
	emitted   map[string]bool
	maxEmit   int // cap on the dedup set
	collected []Decoded
}

// Config tunes the streamer.
type Config struct {
	Receiver core.Config
	// MaxPayloadLen bounds the packet length the overlap must cover
	// (0 → the receiver's own default of 48 bytes).
	MaxPayloadLen int
	// WindowSamples is the processing block size (0 → 4× the maximum
	// packet length).
	WindowSamples int
	// MaxBufferSamples is the hard ceiling on buffered samples. A Feed
	// that would exceed it is rejected with a typed *OverflowError
	// instead of growing the buffer. 0 selects 4× (window + overlap) —
	// comfortably above steady state, which never exceeds
	// window + overlap + one chunk; negative disables the ceiling.
	MaxBufferSamples int
	// Metrics receives streamer counters and the buffer-occupancy gauge;
	// nil disables them. The receiver's own instruments are configured
	// separately via Receiver.Metrics.
	Metrics *Metrics
}

// New builds a streamer.
func New(cfg Config) (*Streamer, error) {
	p := cfg.Receiver.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxPayload := cfg.MaxPayloadLen
	if maxPayload == 0 {
		maxPayload = 48
	}
	if cfg.Receiver.MaxPayloadLen == 0 {
		cfg.Receiver.MaxPayloadLen = maxPayload
	}
	pktLen := p.PacketSamples(maxPayload)
	overlap := pktLen + 2*p.SymbolSamples()
	window := cfg.WindowSamples
	if window <= 0 {
		window = 4 * pktLen
	}
	if window < overlap {
		return nil, fmt.Errorf("stream: window %d smaller than overlap %d", window, overlap)
	}
	maxBuffer := cfg.MaxBufferSamples
	switch {
	case maxBuffer == 0:
		maxBuffer = 4 * (window + overlap)
	case maxBuffer < 0:
		maxBuffer = 0
	case maxBuffer < window+overlap:
		return nil, fmt.Errorf("stream: buffer ceiling %d smaller than window+overlap %d",
			maxBuffer, window+overlap)
	}
	return &Streamer{
		rx:        core.NewReceiver(cfg.Receiver),
		params:    p,
		met:       cfg.Metrics,
		tracer:    cfg.Receiver.Tracer,
		window:    window,
		overlap:   overlap,
		maxBuffer: maxBuffer,
		emitted:   map[string]bool{},
		maxEmit:   4096,
	}, nil
}

// WindowSamples returns the processing block size.
func (s *Streamer) WindowSamples() int { return s.window }

// OverlapSamples returns the boundary carry-over length.
func (s *Streamer) OverlapSamples() int { return s.overlap }

// MaxBufferSamples returns the hard buffer ceiling (0 when disabled).
func (s *Streamer) MaxBufferSamples() int { return s.maxBuffer }

// Feed appends samples to the stream and returns any packets newly decoded
// by processing passes this chunk completed. It returns ErrConcurrentUse if
// it overlaps another Feed or Flush call.
func (s *Streamer) Feed(samples []complex128) ([]Decoded, error) {
	if !s.inUse.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer s.inUse.Store(false)

	if s.maxBuffer > 0 && len(s.buf)+len(samples) > s.maxBuffer {
		s.met.onOverflow()
		return nil, &OverflowError{Buffered: len(s.buf), Incoming: len(samples), Limit: s.maxBuffer}
	}
	at := len(s.buf)
	s.buf = append(s.buf, samples...)
	// Sanitize the appended region in place (the caller's slice is never
	// touched): NaN/Inf samples would propagate through every FFT in the
	// window and poison detection for well-behaved packets, so they are
	// zeroed — a silence fault, the least damaging interpretation.
	if n := zeroNonFinite(s.buf[at:]); n > 0 {
		s.met.onNonFinite(n)
		s.tracer.OnStream("sanitized", float64(s.absBase+at))
	}
	var out []Decoded
	for len(s.buf) >= s.window+s.overlap {
		out = append(out, s.process(s.window+s.overlap, float64(s.window))...)
		s.met.onWindowPass()
		// Slide: drop the committed region, keep the overlap.
		s.buf = append(s.buf[:0], s.buf[s.window:]...)
		s.absBase += s.window
	}
	s.met.setBuffer(len(s.buf))
	return out, nil
}

// Flush decodes whatever remains in the buffer (end of stream) and returns
// the final packets. It returns ErrConcurrentUse if it overlaps another
// Feed or Flush call.
func (s *Streamer) Flush() ([]Decoded, error) {
	if !s.inUse.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer s.inUse.Store(false)

	if len(s.buf) == 0 {
		return nil, nil
	}
	out := s.process(len(s.buf), float64(len(s.buf)))
	s.met.onFlush()
	s.tracer.OnStream("flush", float64(s.absBase))
	s.buf = s.buf[:0]
	s.met.setBuffer(0)
	return out, nil
}

// process decodes buf[:n] and commits packets starting before commitBefore
// (relative to the window).
func (s *Streamer) process(n int, commitBefore float64) []Decoded {
	var out []Decoded
	for _, d := range s.rx.DecodeSamples([][]complex128{s.buf[:n]}) {
		if d.Start >= commitBefore {
			s.met.onDeferred()
			s.tracer.OnStream("deferred", d.Start+float64(s.absBase))
			continue // will be seen whole in the next window
		}
		abs := d.Start + float64(s.absBase)
		// Dedup across overlapping windows: same payload within one
		// symbol-quantized cell (neighboring cells checked so a decode
		// re-estimated a fraction of a sample apart still matches).
		cell := int(abs) / s.params.SymbolSamples()
		dup := false
		for _, c := range []int{cell - 1, cell, cell + 1} {
			if s.emitted[dedupKey(d.Payload, c)] {
				dup = true
				break
			}
		}
		if dup {
			s.met.onDedup()
			s.tracer.OnStream("dedup", abs)
			continue
		}
		if len(s.emitted) >= s.maxEmit {
			s.emitted = map[string]bool{}
		}
		s.emitted[dedupKey(d.Payload, cell)] = true
		s.tracer.SetAbsStart(d.Trace, abs)
		out = append(out, Decoded{Decoded: d, AbsStart: abs})
	}
	return out
}

// dedupKey identifies a decode: payload bytes plus a time cell.
func dedupKey(payload []uint8, cell int) string {
	return fmt.Sprintf("%x@%d", payload, cell)
}

// zeroNonFinite replaces NaN/±Inf samples with silence, returning how many
// were hit.
func zeroNonFinite(s []complex128) int {
	n := 0
	for i, v := range s {
		re, im := real(v), imag(v)
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			s[i] = 0
			n++
		}
	}
	return n
}
