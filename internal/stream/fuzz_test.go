package stream

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"tnb/internal/core"
	"tnb/internal/lora"
)

// FuzzStreamFeed feeds arbitrary sample chunks — including NaN/Inf bit
// patterns, which the int16 gateway wire cannot produce but a direct API
// caller can — through Feed and Flush. Properties: no panic, the buffer
// ceiling is enforced with the typed OverflowError, non-finite input is
// sanitized (counted, never decoded into garbage), and any decode that
// does come out respects the configured payload bound.
func FuzzStreamFeed(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	// One NaN/Inf pair to seed the sanitizer path.
	nan := make([]byte, 16)
	binary.LittleEndian.PutUint64(nan[0:8], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(nan[8:16], math.Float64bits(math.Inf(1)))
	f.Add(nan)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Small radio parameters keep each iteration cheap: SF 6 at OSF 1
		// with an 8-byte payload bound gives a window of a few thousand
		// samples, so Flush always runs a full decode pass.
		s, err := New(Config{
			Receiver:      core.Config{Params: lora.MustParams(6, 4, 125e3, 1), Workers: 1},
			MaxPayloadLen: 8,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Interpret the fuzz bytes as raw float64 bit patterns — the widest
		// possible input domain, NaN and ±Inf included.
		n := len(data) / 16
		if n > 8192 {
			n = 8192
		}
		samples := make([]complex128, n)
		poison := 0
		for i := range samples {
			re := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:]))
			samples[i] = complex(re, im)
			if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
				poison++
			}
		}

		decoded, err := s.Feed(samples)
		if err != nil {
			var oe *OverflowError
			if !errors.As(err, &oe) {
				t.Fatalf("Feed error is not an OverflowError: %v", err)
			}
			return
		}
		flushed, err := s.Flush()
		if err != nil {
			t.Fatalf("Flush: %v", err)
		}
		for _, d := range append(decoded, flushed...) {
			if len(d.Payload) > 8 {
				t.Fatalf("decoded payload of %d bytes past the 8-byte bound", len(d.Payload))
			}
		}
		// Whatever the decoder did, the poisoned samples must have been
		// zeroed in the internal buffer before any arithmetic saw them.
		if poison > 0 && countNonFinite(samples) == 0 {
			t.Fatal("input slice was sanitized in place; Feed must copy first")
		}
	})
}

// countNonFinite reports how many entries are NaN or ±Inf in either part.
func countNonFinite(v []complex128) int {
	n := 0
	for _, s := range v {
		re, im := real(s), imag(s)
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			n++
		}
	}
	return n
}
