package stream

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"tnb/internal/core"
	"tnb/internal/faultinject"
	"tnb/internal/metrics"
)

// TestFeedBufferCeiling checks the hard ceiling: an oversized chunk is
// rejected with a typed *OverflowError, the buffer is untouched, and the
// streamer keeps working afterwards.
func TestFeedBufferCeiling(t *testing.T) {
	reg := metrics.NewRegistry()
	met := NewMetrics(reg)
	s, err := New(Config{
		Receiver: core.Config{Params: streamParams(), UseBEC: true},
		Metrics:  met,
	})
	if err != nil {
		t.Fatal(err)
	}
	limit := s.MaxBufferSamples()
	if limit != 4*(s.WindowSamples()+s.OverlapSamples()) {
		t.Fatalf("default ceiling = %d, want 4×(window+overlap) = %d",
			limit, 4*(s.WindowSamples()+s.OverlapSamples()))
	}

	if _, err := s.Feed(make([]complex128, 1000)); err != nil {
		t.Fatal(err)
	}
	_, err = s.Feed(make([]complex128, limit))
	var oe *OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("oversized Feed error = %v, want *OverflowError", err)
	}
	if oe.Buffered != 1000 || oe.Limit != limit {
		t.Errorf("overflow error fields = %+v", oe)
	}
	if v := met.Overflows.Value(); v != 1 {
		t.Errorf("overflow counter = %d, want 1", v)
	}
	if v := met.BufferSamples.Value(); v != 0 {
		// setBuffer only runs on success; the gauge still shows the state
		// before the rejected chunk (1000 was never committed to it
		// because the first Feed ran no window pass). Re-feed and check
		// the streamer still works.
		t.Logf("buffer gauge after rejection: %d", v)
	}
	if _, err := s.Feed(make([]complex128, 1000)); err != nil {
		t.Fatalf("streamer wedged after overflow rejection: %v", err)
	}
}

func TestNewRejectsTinyCeiling(t *testing.T) {
	_, err := New(Config{
		Receiver:         core.Config{Params: streamParams()},
		MaxBufferSamples: 10,
	})
	if err == nil {
		t.Fatal("ceiling below window+overlap accepted")
	}
}

func TestNegativeCeilingDisables(t *testing.T) {
	s, err := New(Config{
		Receiver:         core.Config{Params: streamParams()},
		MaxBufferSamples: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxBufferSamples() != 0 {
		t.Errorf("ceiling = %d, want 0 (disabled)", s.MaxBufferSamples())
	}
}

// TestFeedSanitizesNonFinite poisons a clean packet trace with NaN/Inf
// samples and checks they are zeroed (counted in the metric) without
// panicking the receiver, and that packets clear of the poison still decode.
func TestFeedSanitizesNonFinite(t *testing.T) {
	tr, recs := buildLongTrace(t, 777, 3, 2.0)
	sc := faultinject.Scenario{Kind: faultinject.IQNaN, Seed: 1, Rate: 0.01}
	samples := sc.Samples(tr.Antennas[0])

	reg := metrics.NewRegistry()
	met := NewMetrics(reg)
	s, err := New(Config{
		Receiver: core.Config{Params: streamParams(), UseBEC: true},
		Metrics:  met,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []Decoded
	for off := 0; off < len(samples); off += 100_000 {
		end := off + 100_000
		if end > len(samples) {
			end = len(samples)
		}
		out, err := s.Feed(samples[off:end])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, out...)
	}
	out, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, out...)

	if met.NonFinite.Value() == 0 {
		t.Error("no non-finite samples counted despite IQNaN fault")
	}
	// The caller's slice must keep its poison (sanitization copies).
	dirty := false
	for _, v := range samples {
		if math.IsNaN(real(v)) || math.IsNaN(imag(v)) ||
			math.IsInf(real(v), 0) || math.IsInf(imag(v), 0) {
			dirty = true
			break
		}
	}
	if !dirty {
		t.Error("input slice was sanitized in place")
	}
	// At 1% poison density most packets lose symbols, but the stream as a
	// whole must keep decoding: every decode that does come out is real.
	for _, d := range got {
		matched := false
		for _, rec := range recs {
			if bytes.Equal(d.Payload, rec.Payload) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("bogus decode from poisoned stream: %x", d.Payload)
		}
	}
}

// TestFeedCleanStreamNoSanitizeCost checks a finite stream counts nothing.
func TestFeedCleanStreamNoSanitizeCost(t *testing.T) {
	reg := metrics.NewRegistry()
	met := NewMetrics(reg)
	s, err := New(Config{
		Receiver: core.Config{Params: streamParams()},
		Metrics:  met,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	chunk := make([]complex128, 50_000)
	for i := range chunk {
		chunk[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	if _, err := s.Feed(chunk); err != nil {
		t.Fatal(err)
	}
	if v := met.NonFinite.Value(); v != 0 {
		t.Errorf("clean stream counted %d non-finite samples", v)
	}
}
