package peaks

import (
	"math"
	"math/rand"
	"testing"

	"tnb/internal/stats"
)

func BenchmarkFindIntoNoise(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, rowsN = 256, 64
	rows := make([][]float64, rowsN)
	sels := make([]float64, rowsN)
	med := make([]float64, 2*n)
	for r := range rows {
		y := make([]float64, n)
		for i := range y {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = real(v)*real(v) + imag(v)*imag(v)
		}
		if r%3 == 0 { // every third row carries a strong tone
			y[rng.Intn(n)] += 40 * math.Sqrt(float64(n))
		}
		rows[r] = y
		sels[r] = 6 * stats.MedianScratch(y, med)
	}
	var dst []Peak
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := i % rowsN
		dst = FindInto(dst, rows[r], sels[r], 8)
	}
}
