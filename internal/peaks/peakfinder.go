// Package peaks provides the peak-finding primitive used throughout TnB
// (the role of the MATLAB peakfinder the paper cites) and the per-packet
// signal-vector calculator (the paper's "signal calculation component").
package peaks

import "math"

// Peak is one local maximum of a signal vector.
type Peak struct {
	Bin    int
	Height float64
}

// Find locates local maxima of y that stand out from their surroundings by
// at least sel (the selectivity rule of the MATLAB peakfinder: a candidate
// maximum counts only if it exceeds the lowest point between it and the
// previous accepted extremum by sel). When sel <= 0 it defaults to
// (max-min)/4. At most maxPeaks peaks are returned, highest first; pass
// maxPeaks <= 0 for no limit.
//
// The spectrum of a dechirped LoRa symbol is circular, so y is treated as a
// circular buffer: a maximum spanning the wrap point is found once.
func Find(y []float64, sel float64, maxPeaks int) []Peak {
	return FindInto(nil, y, sel, maxPeaks)
}

// FindInto is Find appending into dst[:0], so a caller that reuses the
// returned slice across calls pays no steady-state allocations. The result
// aliases dst's backing array when its capacity suffices.
func FindInto(dst []Peak, y []float64, sel float64, maxPeaks int) []Peak {
	found := dst[:0]
	n := len(y)
	if n == 0 {
		return found
	}
	// One fused pass finds the range and the first global minimum: the
	// strict `<` update lands on the same index as a separate first-match
	// scan, so the rotation below is unchanged.
	minV, maxV := y[0], y[0]
	rot := 0
	for i, v := range y {
		if v < minV {
			minV, rot = v, i
		}
		maxV = max(maxV, v)
	}
	if sel <= 0 {
		sel = (maxV - minV) / 4
	}
	if maxV == minV {
		return found
	}
	if maxV-minV < sel {
		// No excursion can satisfy the hysteresis (every accepted peak
		// needs curMax-curMin >= sel with both inside [minV, maxV]), so the
		// walk cannot emit anything.
		return found
	}
	return findFrom(found, y, sel, maxPeaks, rot)
}

// FindIntoAt is FindInto for a caller that already knows where y's minimum
// first occurs (the detection scan extracts it from the same pass that
// computes its selectivity median): the extrema pass is skipped and the
// hysteresis walk starts at rot directly. rot must be the first index of
// min(y) and sel must be positive, and then the result is identical to
// FindInto — the extrema pass only chose the rotation point and gated walks
// that provably emit nothing.
func FindIntoAt(dst []Peak, y []float64, sel float64, maxPeaks, rot int) []Peak {
	if len(y) == 0 {
		return dst[:0]
	}
	return findFrom(dst[:0], y, sel, maxPeaks, rot)
}

// findFrom is the hysteresis walk shared by FindInto and FindIntoAt,
// starting from a global minimum at rot.
func findFrom(found []Peak, y []float64, sel float64, maxPeaks, rot int) []Peak {
	// Rotate so the scan starts at a global minimum: every true peak then
	// lies strictly inside the scan, making the circular handling exact. The
	// walk keeps a physical index that wraps once instead of reducing
	// (i+rot) mod n on every access — the modulo dominated this loop.

	// Hysteresis walk: track the running minimum since the last accepted
	// peak and the running maximum since the last valley. The circular walk
	// runs as two linear segments ([rot+1, n) then [0, rot)) — the same
	// visit order as a wrapping index, without the per-bin wrap test and
	// bounds check.
	curMin, curMax := y[rot], y[rot]
	maxBin := rot
	lookingForMax := true
	for seg := 0; seg < 2; seg++ {
		ys, base := y[rot+1:], rot+1
		if seg == 1 {
			ys, base = y[:rot], 0
		}
		for jj, v := range ys {
			if lookingForMax {
				if v > curMax {
					curMax, maxBin = v, base+jj
				} else if curMax-v >= sel && curMax-curMin >= sel {
					found = append(found, Peak{Bin: maxBin, Height: curMax})
					lookingForMax = false
					curMin = v
				}
			} else {
				if v < curMin {
					curMin = v
				} else if v-curMin >= sel {
					lookingForMax = true
					curMax, maxBin = v, base+jj
				}
			}
		}
	}
	// Close the circle: the final rising run may form a peak against the
	// starting minimum.
	if lookingForMax && curMax-curMin >= sel && curMax-y[rot] >= sel && maxBin != rot {
		found = append(found, Peak{Bin: maxBin, Height: curMax})
	}

	// Stable insertion sort, highest first. Peak counts are bounded by the
	// caller's maxPeaks budget (a handful), where this beats sort.Slice and
	// its per-call closure/Swapper allocations.
	for i := 1; i < len(found); i++ {
		p := found[i]
		k := i
		for ; k > 0 && found[k-1].Height < p.Height; k-- {
			found[k] = found[k-1]
		}
		found[k] = p
	}
	if maxPeaks > 0 && len(found) > maxPeaks {
		found = found[:maxPeaks]
	}
	return found
}

// HighestBin returns the bin of the largest element of y, a convenience for
// single-user demodulation paths.
func HighestBin(y []float64) int {
	best, bi := 0.0, 0
	for i, v := range y {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// InterpolateBin refines a peak location to sub-bin precision. For the
// magnitude-squared spectrum of a rectangular-windowed tone (exactly the
// dechirped LoRa symbol), the two-bin amplitude ratio estimator
// δ = |X[k±1]| / (|X[k]| + |X[k±1]|) is exact in the noiseless case; the
// larger neighbor selects the side. Used by Choir-style fractional peak
// matching and diagnostics; returns the fractional bin position.
func InterpolateBin(y []float64, bin int) float64 {
	n := len(y)
	if n < 3 {
		return float64(bin)
	}
	l := math.Sqrt(y[(bin-1+n)%n])
	c := math.Sqrt(y[bin])
	r := math.Sqrt(y[(bin+1)%n])
	if c <= 0 {
		return float64(bin)
	}
	if r >= l {
		if c+r == 0 {
			return float64(bin)
		}
		return float64(bin) + r/(c+r)
	}
	return float64(bin) - l/(c+l)
}
