// Package peaks provides the peak-finding primitive used throughout TnB
// (the role of the MATLAB peakfinder the paper cites) and the per-packet
// signal-vector calculator (the paper's "signal calculation component").
package peaks

import (
	"math"
	"sort"
)

// Peak is one local maximum of a signal vector.
type Peak struct {
	Bin    int
	Height float64
}

// Find locates local maxima of y that stand out from their surroundings by
// at least sel (the selectivity rule of the MATLAB peakfinder: a candidate
// maximum counts only if it exceeds the lowest point between it and the
// previous accepted extremum by sel). When sel <= 0 it defaults to
// (max-min)/4. At most maxPeaks peaks are returned, highest first; pass
// maxPeaks <= 0 for no limit.
//
// The spectrum of a dechirped LoRa symbol is circular, so y is treated as a
// circular buffer: a maximum spanning the wrap point is found once.
func Find(y []float64, sel float64, maxPeaks int) []Peak {
	n := len(y)
	if n == 0 {
		return nil
	}
	minV, maxV := y[0], y[0]
	for _, v := range y {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if sel <= 0 {
		sel = (maxV - minV) / 4
	}
	if maxV == minV {
		return nil
	}

	// Rotate so the scan starts at a global minimum: every true peak then
	// lies strictly inside the scan, making the circular handling exact.
	rot := 0
	for i, v := range y {
		if v == minV {
			rot = i
			break
		}
	}
	at := func(i int) float64 { return y[(i+rot)%n] }

	var found []Peak
	// Hysteresis walk: track the running minimum since the last accepted
	// peak and the running maximum since the last valley.
	curMin, curMax := at(0), at(0)
	maxPos := 0
	lookingForMax := true
	for i := 1; i < n; i++ {
		v := at(i)
		if lookingForMax {
			if v > curMax {
				curMax, maxPos = v, i
			} else if curMax-v >= sel && curMax-curMin >= sel {
				found = append(found, Peak{Bin: (maxPos + rot) % n, Height: curMax})
				lookingForMax = false
				curMin = v
			}
		} else {
			if v < curMin {
				curMin = v
			} else if v-curMin >= sel {
				lookingForMax = true
				curMax, maxPos = v, i
			}
		}
	}
	// Close the circle: the final rising run may form a peak against the
	// starting minimum.
	if lookingForMax && curMax-curMin >= sel && curMax-at(0) >= sel && maxPos != 0 {
		found = append(found, Peak{Bin: (maxPos + rot) % n, Height: curMax})
	}

	sort.Slice(found, func(i, j int) bool { return found[i].Height > found[j].Height })
	if maxPeaks > 0 && len(found) > maxPeaks {
		found = found[:maxPeaks]
	}
	return found
}

// HighestBin returns the bin of the largest element of y, a convenience for
// single-user demodulation paths.
func HighestBin(y []float64) int {
	best, bi := 0.0, 0
	for i, v := range y {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// InterpolateBin refines a peak location to sub-bin precision. For the
// magnitude-squared spectrum of a rectangular-windowed tone (exactly the
// dechirped LoRa symbol), the two-bin amplitude ratio estimator
// δ = |X[k±1]| / (|X[k]| + |X[k±1]|) is exact in the noiseless case; the
// larger neighbor selects the side. Used by Choir-style fractional peak
// matching and diagnostics; returns the fractional bin position.
func InterpolateBin(y []float64, bin int) float64 {
	n := len(y)
	if n < 3 {
		return float64(bin)
	}
	l := math.Sqrt(y[(bin-1+n)%n])
	c := math.Sqrt(y[bin])
	r := math.Sqrt(y[(bin+1)%n])
	if c <= 0 {
		return float64(bin)
	}
	if r >= l {
		if c+r == 0 {
			return float64(bin)
		}
		return float64(bin) + r/(c+r)
	}
	return float64(bin) - l/(c+l)
}
