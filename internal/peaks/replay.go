package peaks

import (
	"fmt"

	"tnb/internal/lora"
)

// SymbolRange returns the half-open symbol-index range [lo, hi) addressable
// by a packet with numData data symbols: the negative preamble/sync indices
// plus the data symbols.
func SymbolRange(numData int) (lo, hi int) { return -preambleOffset, numData }

// CachedVec returns the signal vector of symbol idx only if it is already
// cached, never computing it. Unlike SigVec it is a pure read regardless of
// prefill state, which is what lets a stage recorder snapshot exactly the
// vectors a run materialized without perturbing the calculator.
func (c *Calculator) CachedVec(idx int) ([]float64, bool) {
	if !c.InRange(idx) {
		return nil, false
	}
	y := c.vecs[idx+preambleOffset]
	return y, y != nil
}

// NewReplayCalculator builds a calculator whose signal vectors come from a
// stage recording instead of rx samples: vecs maps the symbol index
// (negative indices address the preamble, as everywhere) to the recorded
// vector. Geometry accessors (SymbolStart, Alpha, InRange) work as usual
// from the demodulator's parameters; reading a vector that was not recorded
// panics, since there are no samples to compute it from — a recording that
// triggers this is missing a boundary the original run materialized.
func NewReplayCalculator(d *lora.Demodulator, start, cfoCycles float64, numData int, vecs map[int][]float64) *Calculator {
	c := NewCalculator(d, nil, start, cfoCycles, numData)
	c.replay = true
	n := d.Params().N()
	for idx, y := range vecs {
		if !c.InRange(idx) {
			panic(fmt.Sprintf("peaks: replay vector for symbol %d outside packet range [%d,%d)", idx, -preambleOffset, numData))
		}
		if len(y) != n {
			panic(fmt.Sprintf("peaks: replay vector for symbol %d has %d bins, want %d", idx, len(y), n))
		}
		slot := c.slot(idx)
		copy(slot, y)
		c.vecs[idx+preambleOffset] = slot
	}
	return c
}
