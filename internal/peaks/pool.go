package peaks

import "tnb/internal/lora"

// CalcPool recycles Calculators across decode windows and passes. A packet's
// calculator owns a slots×N arena (~100 KB at SF8 for a full-length packet),
// which dominated the receiver's per-decode allocations; the pool keeps the
// arenas alive and Reset re-targets them, so a steady-state decode pays no
// arena allocations at all.
//
// Usage is cursor-based: Rewind at the start of a decode, then Get once per
// packet (both passes share the cursor, so a two-pass decode draws up to
// 2·npackets calculators). Get must be called from a single goroutine; the
// returned calculators can then be prefilled and read concurrently as usual.
// A CalcPool is not safe for concurrent use.
type CalcPool struct {
	calcs []*Calculator
	next  int
}

// Rewind returns every pooled calculator to the free list. Vectors cached in
// pooled calculators become invalid after the next Get reuses their slot.
func (p *CalcPool) Rewind() { p.next = 0 }

// Get returns a calculator reset for the packet, reusing a pooled one when
// available.
func (p *CalcPool) Get(d *lora.Demodulator, antennas [][]complex128, start, cfoCycles float64, numData int) *Calculator {
	if p.next < len(p.calcs) {
		c := p.calcs[p.next]
		p.next++
		c.Reset(d, antennas, start, cfoCycles, numData)
		return c
	}
	c := NewCalculator(d, antennas, start, cfoCycles, numData)
	p.calcs = append(p.calcs, c)
	p.next++
	return c
}
