package peaks

import (
	"math"
	"strconv"

	"tnb/internal/lora"
	"tnb/internal/parallel"
)

// Calculator computes and caches the signal vectors of one detected packet:
// for each data symbol, Y = |FFT(symbol ⊙ C')|² aligned to the packet's
// estimated boundary and corrected by its estimated CFO, summed over
// antennas (paper §3–§4). Negative symbol indices address the preamble
// upchirps, used to bootstrap Thrive's peak-height history.
//
// The cache is a dense slice indexed by idx + preambleOffset over one
// contiguous arena, so a fully materialized packet costs two allocations
// instead of one map entry plus one vector per symbol. Vectors are computed
// lazily by SigVec — which mutates the shared scratch and is therefore
// single-goroutine — or all at once by Prefill, after which every accessor
// is a pure read and safe for concurrent readers.
type Calculator struct {
	demod     *lora.Demodulator
	antennas  [][]complex128
	start     float64 // packet start in rx samples
	cfoCycles float64
	numData   int
	dataOff   float64 // rx samples from packet start to first data symbol

	// vecs[idx+preambleOffset] is the signal vector of symbol idx, nil
	// until computed; every non-nil entry aliases arena.
	vecs  [][]float64
	arena []float64

	buf     []complex128
	scratch []float64

	// Batched-prefill scratch for the first worker: prefillBatchRows
	// dechirped rows stacked for one ForwardMagBatch twiddle sweep.
	batchBuf []complex128
	batchY   []float64

	// replay marks a calculator built from recorded vectors with no
	// samples behind it (NewReplayCalculator): reading an unrecorded
	// vector then panics instead of silently computing zeros.
	replay bool
}

// preambleOffset is the number of negative (preamble + sync) symbol indices
// addressable below data symbol 0.
const preambleOffset = lora.PreambleUpchirps + lora.SyncSymbols

// NewCalculator builds a signal-vector calculator for a packet detected at
// the (fractional) rx-sample position start with the given CFO in cycles
// per symbol, carrying numData data symbols.
func NewCalculator(d *lora.Demodulator, antennas [][]complex128, start, cfoCycles float64, numData int) *Calculator {
	c := &Calculator{}
	c.Reset(d, antennas, start, cfoCycles, numData)
	return c
}

// Reset re-targets the calculator at a new packet, invalidating every cached
// vector while keeping the arena and scratch buffers (regrown only when the
// new packet needs more slots than any before). It is what lets a CalcPool
// recycle calculators across decode passes without re-paying the arena
// allocation per packet.
func (c *Calculator) Reset(d *lora.Demodulator, antennas [][]complex128, start, cfoCycles float64, numData int) {
	p := d.Params()
	n := p.N()
	slots := numData + preambleOffset
	c.demod = d
	c.antennas = antennas
	c.start = start
	c.cfoCycles = cfoCycles
	c.numData = numData
	c.dataOff = (lora.PreambleUpchirps + lora.SyncSymbols + float64(lora.DownchirpQuarters)/4) *
		float64(p.SymbolSamples())
	if cap(c.vecs) < slots {
		c.vecs = make([][]float64, slots)
	} else {
		c.vecs = c.vecs[:slots]
		for i := range c.vecs {
			c.vecs[i] = nil
		}
	}
	if cap(c.arena) < slots*n {
		c.arena = make([]float64, slots*n)
	} else {
		c.arena = c.arena[:slots*n]
	}
	if len(c.buf) != n {
		c.buf = make([]complex128, n)
		c.scratch = make([]float64, n)
	}
}

// NumData returns the number of data symbols covered.
func (c *Calculator) NumData() int { return c.numData }

// Start returns the packet start in rx samples.
func (c *Calculator) Start() float64 { return c.start }

// CFOCycles returns the packet CFO estimate in cycles per symbol.
func (c *Calculator) CFOCycles() float64 { return c.cfoCycles }

// SymbolStart returns the rx-sample position of data symbol idx (negative
// idx addresses preamble symbols).
func (c *Calculator) SymbolStart(idx int) float64 {
	return c.start + c.dataOff + float64(idx*c.demod.Params().SymbolSamples())
}

// Alpha returns the packet's α: the symbol-boundary offset in chips
// combined with the CFO in cycles per symbol (paper §5.3.1). With this
// implementation's sign conventions a peak observed at bin b in packet k's
// signal vectors appears in packet i's vectors at bin
// mod(b + αᵢ - αₖ, N): a window that starts later sees the chirp's peak at
// a higher bin, and a packet's own CFO correction shifts foreign peaks the
// opposite way. α is reported modulo N.
func (c *Calculator) Alpha() float64 {
	p := c.demod.Params()
	n := float64(p.N())
	a := c.SymbolStart(0)/float64(p.OSF) - c.cfoCycles
	a = math.Mod(a, n)
	if a < 0 {
		a += n
	}
	return a
}

// InRange reports whether data symbol idx exists (preamble indices are
// valid down to -PreambleUpchirps).
func (c *Calculator) InRange(idx int) bool {
	return idx >= -preambleOffset && idx < c.numData
}

// symStart returns the rx-sample position of symbol idx, skipping the 2.25
// downchirps for preamble indices: idx -1 is the second sync symbol, and so
// on backwards.
func (c *Calculator) symStart(idx int) float64 {
	if idx >= 0 {
		return c.SymbolStart(idx)
	}
	p := c.demod.Params()
	return c.start + float64((preambleOffset+idx)*p.SymbolSamples())
}

// computeInto fills y (an arena slot) with symbol idx's signal vector,
// using the caller's scratch so concurrent prefill workers don't collide.
func (c *Calculator) computeInto(y []float64, buf []complex128, scratch []float64, idx int) {
	for i := range y {
		y[i] = 0
	}
	start := c.symStart(idx)
	for _, ant := range c.antennas {
		c.demod.SignalVectorInto(scratch, buf, ant, start, c.cfoCycles, idx)
		for i := range y {
			y[i] += scratch[i]
		}
	}
}

// slot returns the arena-backed storage of symbol idx.
func (c *Calculator) slot(idx int) []float64 {
	n := c.demod.Params().N()
	s := idx + preambleOffset
	return c.arena[s*n : (s+1)*n : (s+1)*n]
}

// SigVec returns the cached signal vector of data symbol idx, computing it
// on first use. Lazy computation mutates the calculator's shared scratch:
// callers that read concurrently must Prefill first (or PrefillPreamble for
// preamble-only readers), after which cached reads are pure.
func (c *Calculator) SigVec(idx int) []float64 {
	if y := c.vecs[idx+preambleOffset]; y != nil {
		return y
	}
	if c.replay {
		panic("peaks: symbol " + strconv.Itoa(idx) + " was not recorded; replay calculators cannot compute vectors")
	}
	y := c.slot(idx)
	c.computeInto(y, c.buf, c.scratch, idx)
	c.vecs[idx+preambleOffset] = y
	return y
}

// prefillBatchRows is the number of symbols whose FFTs share one batched
// twiddle sweep during prefill (the same batch depth the preamble scan uses).
const prefillBatchRows = 8

// Prefill computes every signal vector (preamble and data) that is not yet
// cached, fanning out across workers (parallel.Workers semantics; <= 1 runs
// inline). Symbols are processed in batches of prefillBatchRows whose FFTs
// run as one dsp.ForwardMagBatch twiddle sweep — bit-identical per symbol to
// the lazy SigVec path. Each worker gets its own stacked scratch, so
// prefilled calculators are safe for any number of concurrent SigVec/ValueAt
// readers afterwards.
func (c *Calculator) Prefill(workers int) {
	var missing []int
	for s, y := range c.vecs {
		if y == nil {
			missing = append(missing, s-preambleOffset)
		}
	}
	if len(missing) == 0 {
		return
	}
	n := c.demod.Params().N()
	batches := (len(missing) + prefillBatchRows - 1) / prefillBatchRows
	workers = parallel.Workers(workers)
	if workers > batches {
		workers = batches
	}
	type ws struct {
		xb []complex128
		yb []float64
	}
	if cap(c.batchBuf) < prefillBatchRows*n {
		c.batchBuf = make([]complex128, prefillBatchRows*n)
		c.batchY = make([]float64, prefillBatchRows*n)
	}
	scratches := make([]ws, workers)
	scratches[0] = ws{xb: c.batchBuf[:prefillBatchRows*n], yb: c.batchY[:prefillBatchRows*n]}
	for w := 1; w < workers; w++ {
		scratches[w] = ws{xb: make([]complex128, prefillBatchRows*n), yb: make([]float64, prefillBatchRows*n)}
	}
	parallel.ForEach(workers, batches, func(w, b int) {
		chunk := missing[b*prefillBatchRows : min((b+1)*prefillBatchRows, len(missing))]
		c.prefillChunk(chunk, scratches[w].xb, scratches[w].yb)
	})
}

// prefillChunk fills the arena slots of the given symbol indices: per
// antenna, every symbol is dechirped into its stacked row and the whole
// stack runs through one batched magnitude FFT, accumulated per antenna in
// the same order as computeInto — so each vector is bit-identical to the
// per-symbol path.
func (c *Calculator) prefillChunk(idxs []int, xb []complex128, yb []float64) {
	n := c.demod.Params().N()
	rows := len(idxs)
	for _, idx := range idxs {
		y := c.slot(idx)
		for i := range y {
			y[i] = 0
		}
	}
	for _, ant := range c.antennas {
		for r, idx := range idxs {
			c.demod.DechirpInto(xb[r*n:(r+1)*n], ant, c.symStart(idx), c.cfoCycles, idx)
		}
		c.demod.ForwardMagBatch(yb[:rows*n], xb[:rows*n], rows)
		for r, idx := range idxs {
			y := c.slot(idx)
			row := yb[r*n : (r+1)*n]
			for i := range y {
				y[i] += row[i]
			}
		}
	}
	for _, idx := range idxs {
		c.vecs[idx+preambleOffset] = c.slot(idx)
	}
}

// PrefillPreamble computes only the preamble and sync signal vectors — the
// slice the history bootstrap and SNR estimate read. Known packets in the
// second decoding pass need nothing else, so skipping the data symbols
// avoids recomputing vectors whose peaks are masked, not read.
func (c *Calculator) PrefillPreamble() {
	for idx := -preambleOffset; idx < 0; idx++ {
		c.SigVec(idx)
	}
}

// ValueAt returns the signal vector value of symbol idx at (rounded,
// wrapped) bin position pos; used when a sibling is too weak to register as
// a peak (paper §5.3.3).
func (c *Calculator) ValueAt(idx int, pos float64) float64 {
	y := c.SigVec(idx)
	return y[wrapBin(pos, len(y))]
}

// wrapBin rounds a real bin position to the nearest integer bin modulo n.
func wrapBin(pos float64, n int) int {
	b := int(math.Floor(pos+0.5)) % n
	if b < 0 {
		b += n
	}
	return b
}

// PreamblePeakHeights returns the peak heights of the preamble upchirps,
// which bootstrap the history fit (paper §5.2). The peak is read at the
// expected bin (the maximum of the vector, since the preamble is clean for
// the packet's own alignment).
func (c *Calculator) PreamblePeakHeights() []float64 {
	hs := make([]float64, 0, lora.PreambleUpchirps)
	for k := 0; k < lora.PreambleUpchirps; k++ {
		idx := k - preambleOffset
		y := c.SigVec(idx)
		_, m := maxOf(y)
		hs = append(hs, m)
	}
	return hs
}

func maxOf(y []float64) (int, float64) {
	bi, best := 0, 0.0
	for i, v := range y {
		if v > best {
			best, bi = v, i
		}
	}
	return bi, best
}

// MaskPeak subtracts a decoded packet's known peak from a signal vector by
// zeroing the bins within ±1 of pos. Used in the second decoding pass
// (paper §4) and for preamble masking.
func MaskPeak(y []float64, pos float64) {
	n := len(y)
	b := wrapBin(pos, n)
	for _, d := range [3]int{-1, 0, 1} {
		y[(b+d+n)%n] = 0
	}
}
