package peaks

import (
	"math"

	"tnb/internal/lora"
)

// Calculator computes and caches the signal vectors of one detected packet:
// for each data symbol, Y = |FFT(symbol ⊙ C')|² aligned to the packet's
// estimated boundary and corrected by its estimated CFO, summed over
// antennas (paper §3–§4). Negative symbol indices address the preamble
// upchirps, used to bootstrap Thrive's peak-height history.
type Calculator struct {
	demod     *lora.Demodulator
	antennas  [][]complex128
	start     float64 // packet start in rx samples
	cfoCycles float64
	numData   int
	dataOff   float64 // rx samples from packet start to first data symbol
	cache     map[int][]float64
	buf       []complex128
	scratch   []float64
}

// NewCalculator builds a signal-vector calculator for a packet detected at
// the (fractional) rx-sample position start with the given CFO in cycles
// per symbol, carrying numData data symbols.
func NewCalculator(d *lora.Demodulator, antennas [][]complex128, start, cfoCycles float64, numData int) *Calculator {
	p := d.Params()
	dataOff := (lora.PreambleUpchirps + lora.SyncSymbols + float64(lora.DownchirpQuarters)/4) *
		float64(p.SymbolSamples())
	return &Calculator{
		demod:     d,
		antennas:  antennas,
		start:     start,
		cfoCycles: cfoCycles,
		numData:   numData,
		dataOff:   dataOff,
		cache:     make(map[int][]float64),
		buf:       make([]complex128, p.N()),
		scratch:   make([]float64, p.N()),
	}
}

// NumData returns the number of data symbols covered.
func (c *Calculator) NumData() int { return c.numData }

// Start returns the packet start in rx samples.
func (c *Calculator) Start() float64 { return c.start }

// CFOCycles returns the packet CFO estimate in cycles per symbol.
func (c *Calculator) CFOCycles() float64 { return c.cfoCycles }

// SymbolStart returns the rx-sample position of data symbol idx (negative
// idx addresses preamble symbols).
func (c *Calculator) SymbolStart(idx int) float64 {
	return c.start + c.dataOff + float64(idx*c.demod.Params().SymbolSamples())
}

// Alpha returns the packet's α: the symbol-boundary offset in chips
// combined with the CFO in cycles per symbol (paper §5.3.1). With this
// implementation's sign conventions a peak observed at bin b in packet k's
// signal vectors appears in packet i's vectors at bin
// mod(b + αᵢ - αₖ, N): a window that starts later sees the chirp's peak at
// a higher bin, and a packet's own CFO correction shifts foreign peaks the
// opposite way. α is reported modulo N.
func (c *Calculator) Alpha() float64 {
	p := c.demod.Params()
	n := float64(p.N())
	a := c.SymbolStart(0)/float64(p.OSF) - c.cfoCycles
	a = math.Mod(a, n)
	if a < 0 {
		a += n
	}
	return a
}

// InRange reports whether data symbol idx exists (preamble indices are
// valid down to -PreambleUpchirps).
func (c *Calculator) InRange(idx int) bool {
	return idx >= -(lora.PreambleUpchirps+lora.SyncSymbols) && idx < c.numData
}

// SigVec returns the cached signal vector of data symbol idx. For preamble
// indices the downchirp section is skipped: idx -1 is the second sync
// symbol, and so on backwards.
func (c *Calculator) SigVec(idx int) []float64 {
	if y, ok := c.cache[idx]; ok {
		return y
	}
	p := c.demod.Params()
	y := make([]float64, p.N())
	var start float64
	if idx >= 0 {
		start = c.SymbolStart(idx)
	} else {
		// Preamble upchirps and sync symbols lie before the 2.25
		// downchirps.
		start = c.start + float64((lora.PreambleUpchirps+lora.SyncSymbols+idx)*p.SymbolSamples())
	}
	symIndexForPhase := idx
	for _, ant := range c.antennas {
		c.demod.SignalVectorInto(c.scratch, c.buf, ant, start, c.cfoCycles, symIndexForPhase)
		for i := range y {
			y[i] += c.scratch[i]
		}
	}
	c.cache[idx] = y
	return y
}

// ValueAt returns the signal vector value of symbol idx at (rounded,
// wrapped) bin position pos; used when a sibling is too weak to register as
// a peak (paper §5.3.3).
func (c *Calculator) ValueAt(idx int, pos float64) float64 {
	y := c.SigVec(idx)
	return y[wrapBin(pos, len(y))]
}

// wrapBin rounds a real bin position to the nearest integer bin modulo n.
func wrapBin(pos float64, n int) int {
	b := int(math.Floor(pos+0.5)) % n
	if b < 0 {
		b += n
	}
	return b
}

// PreamblePeakHeights returns the peak heights of the preamble upchirps,
// which bootstrap the history fit (paper §5.2). The peak is read at the
// expected bin (the maximum of the vector, since the preamble is clean for
// the packet's own alignment).
func (c *Calculator) PreamblePeakHeights() []float64 {
	hs := make([]float64, 0, lora.PreambleUpchirps)
	for k := 0; k < lora.PreambleUpchirps; k++ {
		idx := k - (lora.PreambleUpchirps + lora.SyncSymbols)
		y := c.SigVec(idx)
		_, m := maxOf(y)
		hs = append(hs, m)
	}
	return hs
}

func maxOf(y []float64) (int, float64) {
	bi, best := 0, 0.0
	for i, v := range y {
		if v > best {
			best, bi = v, i
		}
	}
	return bi, best
}

// MaskPeak subtracts a decoded packet's known peak from a signal vector by
// zeroing the bins within ±1 of pos. Used in the second decoding pass
// (paper §4) and for preamble masking.
func MaskPeak(y []float64, pos float64) {
	n := len(y)
	b := wrapBin(pos, n)
	for _, d := range []int{-1, 0, 1} {
		y[(b+d+n)%n] = 0
	}
}
