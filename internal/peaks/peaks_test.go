package peaks

import (
	"math"
	"math/rand"
	"testing"

	"tnb/internal/dsp"
	"tnb/internal/lora"
)

func TestFindSinglePeak(t *testing.T) {
	y := make([]float64, 64)
	y[20] = 10
	ps := Find(y, 0, 0)
	if len(ps) != 1 || ps[0].Bin != 20 || ps[0].Height != 10 {
		t.Fatalf("peaks = %v", ps)
	}
}

func TestFindMultiplePeaksSorted(t *testing.T) {
	y := make([]float64, 128)
	y[10], y[50], y[90] = 5, 9, 7
	ps := Find(y, 1, 0)
	if len(ps) != 3 {
		t.Fatalf("found %d peaks", len(ps))
	}
	if ps[0].Bin != 50 || ps[1].Bin != 90 || ps[2].Bin != 10 {
		t.Errorf("order: %v", ps)
	}
}

func TestFindSelectivityFiltersRipple(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	y := make([]float64, 256)
	for i := range y {
		y[i] = rng.Float64() * 0.5 // ripple below sel
	}
	y[100] = 10
	ps := Find(y, 2, 0)
	if len(ps) != 1 || ps[0].Bin != 100 {
		t.Fatalf("ripple leaked through: %v", ps)
	}
}

func TestFindWrapAroundPeak(t *testing.T) {
	// Peak exactly at bin 0 with energy spilling to the last bin: the
	// circular scan must report it once.
	y := make([]float64, 64)
	y[0] = 10
	y[63] = 6
	y[32] = 8
	ps := Find(y, 1, 0)
	if len(ps) != 2 {
		t.Fatalf("peaks = %v", ps)
	}
	bins := map[int]bool{ps[0].Bin: true, ps[1].Bin: true}
	if !bins[0] || !bins[32] {
		t.Errorf("expected bins 0 and 32, got %v", ps)
	}
}

func TestFindMaxPeaksLimit(t *testing.T) {
	y := make([]float64, 256)
	for i := 0; i < 8; i++ {
		y[i*32+5] = float64(10 + i)
	}
	ps := Find(y, 1, 3)
	if len(ps) != 3 {
		t.Fatalf("limit not applied: %d peaks", len(ps))
	}
	if ps[0].Height != 17 || ps[2].Height != 15 {
		t.Errorf("kept wrong peaks: %v", ps)
	}
}

func TestFindFlatSignal(t *testing.T) {
	y := []float64{3, 3, 3, 3}
	if ps := Find(y, 0, 0); len(ps) != 0 {
		t.Errorf("flat signal produced peaks: %v", ps)
	}
	if ps := Find(nil, 0, 0); ps != nil {
		t.Error("nil input should give nil")
	}
}

func TestFindDefaultSelectivity(t *testing.T) {
	// Default sel is (max-min)/4; a bump of 20% of range must be dropped.
	y := make([]float64, 100)
	y[50] = 100
	y[20] = 15
	ps := Find(y, 0, 0)
	if len(ps) != 1 || ps[0].Bin != 50 {
		t.Errorf("default selectivity: %v", ps)
	}
}

// TestFindIntoMatchesFind pins FindInto as a drop-in for Find on random
// noisy vectors, and checks the reused buffer never allocates once grown.
func TestFindIntoMatchesFind(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf []Peak
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(300)
		y := make([]float64, n)
		for i := range y {
			v := rng.NormFloat64()
			y[i] = v * v
		}
		// A few injected tones so most trials have real peaks.
		for k := 0; k < 1+rng.Intn(4); k++ {
			y[rng.Intn(n)] += 10 + 10*rng.Float64()
		}
		sel := 6 * stableMedian(y)
		maxPeaks := rng.Intn(6) // includes 0 = unlimited
		want := Find(y, sel, maxPeaks)
		buf = FindInto(buf, y, sel, maxPeaks)
		if len(want) != len(buf) {
			t.Fatalf("trial %d: Find=%d peaks, FindInto=%d", trial, len(want), len(buf))
		}
		for i := range want {
			if want[i] != buf[i] {
				t.Fatalf("trial %d peak %d: Find=%+v FindInto=%+v", trial, i, want[i], buf[i])
			}
		}
	}
}

func stableMedian(y []float64) float64 {
	s := append([]float64(nil), y...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// TestFindIntoZeroSteadyStateAllocs pins the reuse contract.
func TestFindIntoZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	y := make([]float64, 256)
	for i := range y {
		v := rng.NormFloat64()
		y[i] = v * v
	}
	y[40] += 25
	y[90] += 18
	buf := FindInto(nil, y, 3, 0)
	if n := testing.AllocsPerRun(100, func() { buf = FindInto(buf, y, 3, 0) }); n != 0 {
		t.Fatalf("FindInto allocates %v/op with a reused buffer", n)
	}
}

// TestFindSortIsStable pins that equal-height peaks keep scan order, so the
// truncation to maxPeaks is deterministic.
func TestFindSortIsStable(t *testing.T) {
	y := make([]float64, 64)
	for _, bin := range []int{5, 20, 40, 57} {
		y[bin] = 10
	}
	got := Find(y, 3, 0)
	if len(got) != 4 {
		t.Fatalf("got %d peaks, want 4", len(got))
	}
	for i, wantBin := range []int{5, 20, 40, 57} {
		if got[i].Bin != wantBin {
			t.Fatalf("peak %d at bin %d, want %d (stable order)", i, got[i].Bin, wantBin)
		}
	}
}

func TestHighestBin(t *testing.T) {
	if HighestBin([]float64{1, 5, 2}) != 1 {
		t.Error("HighestBin failed")
	}
}

func buildSinglePacketCalc(t *testing.T, start, cfoHz float64) (*Calculator, []int, lora.Params) {
	t.Helper()
	p := lora.MustParams(8, 4, 125e3, 8)
	payload := []uint8{1, 2, 3, 4, 5}
	shifts, _, err := lora.Encode(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	w := lora.NewWaveform(p, shifts)
	n0 := math.Floor(start)
	frac := start - n0
	sig := w.Render(frac, cfoHz, 0.3)
	rx := make([]complex128, int(n0)+len(sig)+100)
	copy(rx[int(n0):], sig)
	d := lora.NewDemodulator(p)
	calc := NewCalculator(d, [][]complex128{rx}, start, cfoHz*p.SymbolDuration(), len(shifts))
	return calc, shifts, p
}

func TestCalculatorSigVecPeaksAtShift(t *testing.T) {
	calc, shifts, _ := buildSinglePacketCalc(t, 1000.25, 1500)
	for k, h := range shifts {
		y := calc.SigVec(k)
		if got := HighestBin(y); got != h {
			t.Fatalf("symbol %d: peak at %d, want %d", k, got, h)
		}
	}
}

func TestCalculatorCachesVectors(t *testing.T) {
	calc, _, _ := buildSinglePacketCalc(t, 500, 0)
	a := calc.SigVec(0)
	b := calc.SigVec(0)
	if &a[0] != &b[0] {
		t.Error("SigVec should return the cached slice")
	}
}

func TestCalculatorPreamblePeaks(t *testing.T) {
	calc, _, p := buildSinglePacketCalc(t, 2000, -2000)
	hs := calc.PreamblePeakHeights()
	if len(hs) != lora.PreambleUpchirps {
		t.Fatalf("%d preamble heights", len(hs))
	}
	// All preamble peaks should be near the full coherent gain N².
	n2 := float64(p.N()) * float64(p.N())
	for i, h := range hs {
		if h < 0.8*n2 {
			t.Errorf("preamble peak %d height %g, want ≈%g", i, h, n2)
		}
	}
	// Preamble upchirps peak at bin 0 for the packet's own alignment.
	idx := -(lora.PreambleUpchirps + lora.SyncSymbols)
	if got := HighestBin(calc.SigVec(idx)); got != 0 {
		t.Errorf("first preamble symbol peak at %d", got)
	}
}

func TestCalculatorValueAtWraps(t *testing.T) {
	calc, shifts, p := buildSinglePacketCalc(t, 100, 0)
	y := calc.SigVec(0)
	want := y[shifts[0]]
	if got := calc.ValueAt(0, float64(shifts[0])+float64(p.N())); got != want {
		t.Errorf("ValueAt wrap: %g vs %g", got, want)
	}
	if got := calc.ValueAt(0, float64(shifts[0])-float64(p.N())); got != want {
		t.Errorf("ValueAt negative wrap: %g vs %g", got, want)
	}
}

func TestCalculatorInRange(t *testing.T) {
	calc, shifts, _ := buildSinglePacketCalc(t, 100, 0)
	if !calc.InRange(0) || !calc.InRange(len(shifts)-1) {
		t.Error("data symbols should be in range")
	}
	if calc.InRange(len(shifts)) {
		t.Error("past-the-end symbol should be out of range")
	}
	if !calc.InRange(-lora.PreambleUpchirps - lora.SyncSymbols) {
		t.Error("first preamble symbol should be in range")
	}
	if calc.InRange(-lora.PreambleUpchirps - lora.SyncSymbols - 1) {
		t.Error("before-preamble index should be out of range")
	}
}

func TestMaskPeakZeroesNeighborhood(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	MaskPeak(y, 0)
	if y[7] != 0 || y[0] != 0 || y[1] != 0 {
		t.Errorf("mask at 0 failed: %v", y)
	}
	if y[2] == 0 || y[6] == 0 {
		t.Error("mask too wide")
	}
}

func TestSiblingOffsetRelation(t *testing.T) {
	// Two packets offset in time and CFO: a symbol transmitted by packet B
	// must appear in packet A's signal vectors at the bin predicted by the
	// α difference (paper §5.3.2).
	p := lora.MustParams(8, 4, 125e3, 8)
	payloadB := []uint8{42, 43, 44, 45, 46, 47}
	shiftsB, _, err := lora.Encode(p, payloadB)
	if err != nil {
		t.Fatal(err)
	}
	wB := lora.NewWaveform(p, shiftsB)
	startB := 3000.5
	cfoB := 2200.0
	sigB := wB.Render(startB-math.Floor(startB), cfoB, 0)
	rx := make([]complex128, 400000)
	copy(rx[int(startB):], sigB)

	d := lora.NewDemodulator(p)
	// Packet A is imaginary (no signal) but has its own alignment.
	startA := 1000.25
	cfoA := -1800.0
	calcA := NewCalculator(d, [][]complex128{rx}, startA, cfoA*p.SymbolDuration(), 60)
	calcB := NewCalculator(d, [][]complex128{rx}, startB, cfoB*p.SymbolDuration(), len(shiftsB))

	n := float64(p.N())
	for _, k := range []int{3, 10, 20} {
		// True peak bin in B's own vector.
		binB := HighestBin(calcB.SigVec(k))
		if binB != shiftsB[k] {
			t.Fatalf("symbol %d of B demodulates to %d, want %d", k, binB, shiftsB[k])
		}
		// Where does B's symbol k land in A's timeline?
		tSym := calcB.SymbolStart(k)
		idxA := int(math.Floor((tSym - calcA.SymbolStart(0)) / float64(p.SymbolSamples())))
		// Predicted bin in A's vector: b + αA − αB (mod N).
		pred := math.Mod(float64(binB)+calcA.Alpha()-calcB.Alpha(), n)
		if pred < 0 {
			pred += n
		}
		for _, ai := range []int{idxA, idxA + 1} {
			y := calcA.SigVec(ai)
			pb := int(pred+0.5) % p.N()
			// The predicted bin (±1 for rounding) should hold substantial
			// energy in at least one of the two straddling symbols.
			v := math.Max(y[pb], math.Max(y[(pb+1)%p.N()], y[(pb+p.N()-1)%p.N()]))
			mean := 0.0
			for _, vv := range y {
				mean += vv
			}
			mean /= n
			if v > 10*mean {
				goto found
			}
		}
		t.Fatalf("symbol %d: no sibling energy at predicted bin %.1f", k, pred)
	found:
	}
}

func TestInterpolateBinExactTone(t *testing.T) {
	// A tone at a fractional frequency produces an FFT lobe whose
	// interpolated peak recovers the fraction to within ~0.05 bins.
	n := 256
	for _, fracBin := range []float64{10.0, 10.25, 10.5, 200.75} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = cisTestPeaks(2 * mathPi * fracBin * float64(i) / float64(n))
		}
		y := make([]float64, n)
		f := fftMag(x)
		copy(y, f)
		bi := HighestBin(y)
		got := InterpolateBin(y, bi)
		// Wrap-aware error.
		err := got - fracBin
		if err > float64(n)/2 {
			err -= float64(n)
		}
		if err < 0 {
			err = -err
		}
		if err > 0.02 {
			t.Errorf("fracBin %.2f: interpolated %.3f (err %.3f)", fracBin, got, err)
		}
	}
}

func TestInterpolateBinDegenerate(t *testing.T) {
	if got := InterpolateBin([]float64{1, 2}, 0); got != 0 {
		t.Errorf("short input: %g", got)
	}
	if got := InterpolateBin([]float64{0, 0, 0, 0}, 1); got != 1 {
		t.Errorf("flat zero input: %g", got)
	}
	// A symmetric lobe interpolates to the half-bin ambiguity boundary at
	// most; for equal neighbors the estimator picks +side by convention.
	y := []float64{0.1, 1, 4, 1, 0.1}
	got := InterpolateBin(y, 2)
	if got < 2 || got > 2.5 {
		t.Errorf("symmetric lobe: %g", got)
	}
}

// test helpers for the interpolation tests
func cisTestPeaks(th float64) complex128 {
	s, c := math.Sincos(th)
	return complex(c, s)
}

const mathPi = math.Pi

func fftMag(x []complex128) []float64 {
	fx := dsp.FFT(x)
	y := make([]float64, len(fx))
	dsp.MagSq(y, fx)
	return y
}

// TestFindIntoAtMatchesFindInto pins the scan's fused path: given the first
// index of the minimum and a positive selectivity, FindIntoAt must return the
// same peaks as FindInto, which recomputes both itself. Covers ties at the
// minimum (the "first index" contract), minimum at index 0, and selectivities
// large enough that nothing survives.
func TestFindIntoAtMatchesFindInto(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var bufA, bufB []Peak
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.Intn(300)
		y := make([]float64, n)
		for i := range y {
			v := rng.NormFloat64()
			y[i] = v * v
		}
		switch trial % 5 {
		case 1: // ties at the minimum
			for i := range y {
				y[i] = math.Trunc(y[i] * 2)
			}
		case 2: // minimum at index 0
			y[0] = -1
		case 3: // injected tones
			for k := 0; k < 1+rng.Intn(4); k++ {
				y[rng.Intn(n)] += 10 + 10*rng.Float64()
			}
		}
		rot := 0
		for i, v := range y {
			if v < y[rot] {
				rot = i
			}
		}
		sel := 0.1 + 6*stableMedian(y) // keep sel > 0 per the contract
		if trial%7 == 0 {
			sel = 1e6 // provably nothing survives; both must return empty
		}
		maxPeaks := rng.Intn(6)
		bufA = FindInto(bufA, y, sel, maxPeaks)
		bufB = FindIntoAt(bufB, y, sel, maxPeaks, rot)
		if len(bufA) != len(bufB) {
			t.Fatalf("trial %d (n=%d sel=%v): FindInto=%d peaks, FindIntoAt=%d", trial, n, sel, len(bufA), len(bufB))
		}
		for i := range bufA {
			if bufA[i] != bufB[i] {
				t.Fatalf("trial %d peak %d: FindInto=%+v FindIntoAt=%+v", trial, i, bufA[i], bufB[i])
			}
		}
	}
	if got := FindIntoAt(bufB, nil, 1, 0, 0); len(got) != 0 {
		t.Fatalf("empty input: got %v", got)
	}
}
