package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/metrics"
	"tnb/internal/obs"
	"tnb/internal/trace"
)

// buildCollidedTrace synthesizes the multi-packet collided trace the
// receiver benchmarks use: six packets at staggered offsets and distinct
// CFOs over a 14-symbol span.
func buildCollidedTrace(t testing.TB, p lora.Params, seed int64) (*trace.Trace, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(p, 1.5, 1, rng)
	starts := b.ScheduleUniform(6, 14)
	for i, s := range starts {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := b.AddPacket(i, 0, payload, s, 10, -3000+float64(i)*1200, nil); err != nil {
			t.Fatalf("add packet %d: %v", i, err)
		}
	}
	tr, _ := b.Build()
	return tr, len(starts)
}

// decodeSummary renders everything the determinism contract covers: the
// decoded set (payloads, starts, CFO, SNR, pass, rescued, symbol counts) and
// the pipeline counters.
func decodeSummary(out []Decoded, m *PipelineMetrics) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "decoded=%d\n", len(out))
	for _, d := range out {
		fmt.Fprintf(&buf, "payload=%x start=%.6f cfo=%.9f snr=%.9f pass=%d rescued=%d syms=%d air=%.9f\n",
			d.Payload, d.Start, d.CFOCycles, d.SNRdB, d.Pass, d.Rescued, d.DataSymbols, d.AirtimeSec)
	}
	fmt.Fprintf(&buf, "detected=%d decoded_total=%d second=%d failed=%d rescued=%d windows=%d\n",
		m.PacketsDetected.Value(), m.PacketsDecoded.Value(), m.SecondPasspkts.Value(),
		m.DecodeFailed.Value(), m.RescuedCodewords.Value(), m.Windows.Value())
	return buf.String()
}

// traceCounters summarizes the decode traces: per-packet outcome lines in
// ring order plus the tracer's aggregate failure counters.
func traceCounters(tr *obs.Tracer) string {
	var buf bytes.Buffer
	for _, pt := range tr.Snapshot() {
		fmt.Fprintf(&buf, "w=%d id=%d pass=%d ok=%t final=%t reason=%s crc=%d\n",
			pt.Window, pt.ID, pt.Pass, pt.OK, pt.Final, pt.FailureReason, pt.CRCTests)
	}
	packets, decoded, byReason := tr.FailureCounts()
	fmt.Fprintf(&buf, "packets=%d decoded=%d reasons=%v\n", packets, decoded, byReason)
	return buf.String()
}

// TestDecodeDeterministicAcrossWorkerCounts is the PR's core contract: the
// worker pool must never change what the receiver outputs. The same collided
// trace is decoded with several pool widths and every observable — decoded
// packets, pipeline counters, decode traces — must match the serial run
// byte for byte. Run under -race this also shakes out data races in the
// fan-out joints.
func TestDecodeDeterministicAcrossWorkerCounts(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	for _, seed := range []int64{7, 21} {
		tr, _ := buildCollidedTrace(t, p, seed)

		run := func(workers int) (string, string) {
			met := NewPipelineMetrics(metrics.NewRegistry())
			tracer := obs.New(obs.Options{RingSize: 64})
			r := NewReceiver(Config{Params: p, UseBEC: true, Seed: seed,
				Workers: workers, Metrics: met, Tracer: tracer})
			out := r.Decode(tr)
			return decodeSummary(out, met), traceCounters(tracer)
		}

		refDec, refTr := run(1)
		if refDec == "decoded=0\n" {
			t.Fatalf("seed %d: serial reference decoded nothing", seed)
		}
		for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0), 0} {
			gotDec, gotTr := run(workers)
			if gotDec != refDec {
				t.Errorf("seed %d workers=%d: decoded set diverged from serial\nserial:\n%s\nworkers:\n%s",
					seed, workers, refDec, gotDec)
			}
			if gotTr != refTr {
				t.Errorf("seed %d workers=%d: decode traces diverged from serial\nserial:\n%s\nworkers:\n%s",
					seed, workers, refTr, gotTr)
			}
		}
	}
}

// TestWorkerGaugesRecorded checks that a parallel decode publishes the pool
// gauges: the resolved width and per-stage speedup/utilization permille.
func TestWorkerGaugesRecorded(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, _ := buildCollidedTrace(t, p, 7)
	met := NewPipelineMetrics(metrics.NewRegistry())
	r := NewReceiver(Config{Params: p, UseBEC: true, Seed: 7, Workers: 4, Metrics: met})
	if len(r.Decode(tr)) == 0 {
		t.Fatal("decoded nothing")
	}
	if got := met.PoolWorkers.Value(); got != 4 {
		t.Errorf("PoolWorkers = %d, want 4", got)
	}
	for name, g := range map[string]*metrics.Gauge{
		"scan speedup":        met.ScanSpeedup,
		"scan utilization":    met.ScanUtilization,
		"refine speedup":      met.RefineSpeedup,
		"sigcalc speedup":     met.SigCalcSpeedup,
		"decode speedup":      met.DecodeSpeedup,
		"refine utilization":  met.RefineUtilization,
		"sigcalc utilization": met.SigCalcUtilization,
		"decode utilization":  met.DecodeUtilization,
	} {
		if g.Value() <= 0 {
			t.Errorf("%s gauge not recorded (%d)", name, g.Value())
		}
	}
}
