// Package core assembles the TnB receiver (paper Fig. 3): packet detection,
// per-packet signal calculation, Thrive peak assignment, and BEC decoding,
// including the second decoding pass that masks the peaks of packets
// decoded in the first attempt (paper §4).
//
// The pipeline itself lives in internal/stagegraph as an explicit stage
// graph (detect → sigcalc → thrive → bec) with a deterministic scheduler
// and a record/replay harness; this package re-exports it under the names
// the rest of the repository — gateway, stream, sim, the cmds — has always
// used. The aliases are exact: core.Receiver IS stagegraph.Pipeline.
package core

import (
	"tnb/internal/metrics"
	"tnb/internal/stagegraph"
)

// Config selects the receiver variant. The zero value of optional fields
// picks the paper's settings. See stagegraph.Config for field docs.
type Config = stagegraph.Config

// Decoded is one successfully decoded packet.
type Decoded = stagegraph.Decoded

// Receiver is the TnB gateway-side decoder. Create with NewReceiver; a
// Receiver may be reused across traces but is not safe for concurrent use.
type Receiver = stagegraph.Pipeline

// PipelineMetrics instruments the receiver pipeline of Fig. 3. All methods
// are safe on a nil receiver, so an un-instrumented Receiver pays only a
// nil check per stage.
type PipelineMetrics = stagegraph.PipelineMetrics

// NewReceiver builds a receiver for the parameter set in cfg.
func NewReceiver(cfg Config) *Receiver { return stagegraph.New(cfg) }

// NewPipelineMetrics registers the pipeline instruments on reg.
func NewPipelineMetrics(reg *metrics.Registry) *PipelineMetrics {
	return stagegraph.NewPipelineMetrics(reg)
}

// DefaultPipelineMetrics returns the shared instruments on metrics.Default —
// what cmd/tnbgateway serves and cmd/tnbsim dumps.
func DefaultPipelineMetrics() *PipelineMetrics {
	return stagegraph.DefaultPipelineMetrics()
}
