// Package core assembles the TnB receiver (paper Fig. 3): packet detection,
// per-packet signal calculation, Thrive peak assignment, and BEC decoding,
// including the second decoding pass that masks the peaks of packets
// decoded in the first attempt (paper §4).
package core

import (
	"math"
	"math/rand"
	"sort"

	"tnb/internal/bec"
	"tnb/internal/detect"
	"tnb/internal/lora"
	"tnb/internal/obs"
	"tnb/internal/parallel"
	"tnb/internal/peaks"
	"tnb/internal/stats"
	"tnb/internal/thrive"
	"tnb/internal/trace"
)

// Config selects the receiver variant. The zero value of optional fields
// picks the paper's settings.
type Config struct {
	Params lora.Params
	// Policy selects the peak-assignment algorithm: Thrive (default),
	// Sibling (no history cost) or AlignTrack* (baseline).
	Policy thrive.Policy
	// UseBEC enables Block Error Correction; false uses the default
	// per-codeword Hamming decoder (the "Thrive" configuration of §8.4).
	UseBEC bool
	// SecondPass re-decodes failed packets with decoded packets' peaks
	// masked (paper §4). Default on; set DisableSecondPass to turn off.
	DisableSecondPass bool
	// W caps BEC's packet CRC tests; 0 selects the paper's defaults.
	W int
	// MaxPayloadLen bounds the provisional packet length before the PHY
	// header is decoded. 0 defaults to 48 bytes.
	MaxPayloadLen int
	// Omega overrides the history-cost weight ω (0 → paper's 0.1).
	Omega float64
	// ListDecode retries a failed packet with Thrive's runner-up peak
	// substituted one symbol at a time — a list-decoding extension in the
	// spirit of the papers §2 cites ([16, 17]), applied per collided
	// packet. Off by default to match the paper's configuration.
	ListDecode bool
	// ListDecodeBudget caps the substitution attempts per packet
	// (0 → 24).
	ListDecodeBudget int
	// Seed drives BEC's random candidate sampling. Each packet gets its own
	// deterministic stream derived from (Seed, pass, packet index), so the
	// sampling is independent of decode order and worker count.
	Seed int64
	// Workers caps the goroutines used by the parallel pipeline stages
	// (candidate refinement, signal-vector prefill, packet decoding).
	// 0 uses GOMAXPROCS; 1 runs fully serial. The decoded output is
	// byte-identical for every value.
	Workers int
	// Metrics receives per-stage latencies and pipeline counters; nil
	// disables instrumentation (the sample path is then a nil check).
	// Use DefaultPipelineMetrics() to record into the process registry.
	Metrics *PipelineMetrics
	// Tracer receives one structured decode trace per detected packet
	// (internal/obs): detection parameters, per-symbol assignment
	// decisions, BEC block outcomes, and a failure reason. Nil disables
	// tracing; the hot path is then a nil check per packet.
	Tracer *obs.Tracer
	// FaultCFOBiasCycles shifts every detection's CFO estimate by this
	// many cycles per symbol. It is a fault-injection hook for the
	// failure-attribution tests — it corrupts dechirping the way a wrong
	// sync lock would — and must stay zero in production.
	FaultCFOBiasCycles float64
}

// Decoded is one successfully decoded packet.
type Decoded struct {
	Payload   []uint8
	Header    lora.Header
	Start     float64 // packet start in rx samples
	CFOCycles float64
	SNRdB     float64 // estimated from preamble peaks vs the noise floor
	Rescued   int     // codewords fixed beyond the default decoder
	Pass      int     // 1 or 2 (second decoding attempt)
	// DataSymbols is the packet's on-air data symbol count, derived from
	// the decoded PHY header (LDRO-aware), and AirtimeSec the full on-air
	// time including the preamble — the fields reports and trace
	// summaries share.
	DataSymbols int
	AirtimeSec  float64
	// Trace is the packet's decode trace when the receiver has a Tracer.
	Trace *obs.PacketTrace
}

// Receiver is the TnB gateway-side decoder. Create with NewReceiver; a
// Receiver may be reused across traces but is not safe for concurrent use.
type Receiver struct {
	cfg      Config
	detector *detect.Detector
	demod    *lora.Demodulator
	met      *PipelineMetrics
	obs      *obs.Tracer
	// engine and calcs persist across Decode calls: the Thrive engine's
	// symbol pool and the calculators' signal-vector arenas are the decode
	// loop's two big recurring allocations, and reusing them makes the
	// steady-state loop allocation-light (pinned by the alloc-ceiling test).
	engine *thrive.Engine
	calcs  peaks.CalcPool
}

// NewReceiver builds a receiver for the parameter set in cfg.
func NewReceiver(cfg Config) *Receiver {
	if cfg.MaxPayloadLen == 0 {
		cfg.MaxPayloadLen = 48
	}
	d := detect.NewDetector(cfg.Params)
	d.Trace = cfg.Tracer
	d.CFOBiasCycles = cfg.FaultCFOBiasCycles
	d.Workers = cfg.Workers
	return &Receiver{
		cfg:      cfg,
		detector: d,
		demod:    d.Demodulator(),
		met:      cfg.Metrics,
		obs:      cfg.Tracer,
		engine:   thrive.NewEngine(cfg.Params, thrive.Config{Policy: cfg.Policy, Omega: cfg.Omega}),
	}
}

// packetRNG returns the BEC sampling source for one packet of one pass.
// Seeding per (pass, packet) instead of sharing one stream across packets
// makes the rare random-sampling fallback independent of decode order, which
// is what lets decodeAssigned fan out without changing its output.
func (r *Receiver) packetRNG(pass, idx int) *rand.Rand {
	return rand.New(rand.NewSource(r.cfg.Seed + 1 + int64(pass)*1_000_003 + int64(idx)*7919))
}

// prefillWorkers splits the pool across npkts packets: packets are the outer
// fan-out, and when the pool is wider than the packet count the remainder
// accelerates each packet's own vector prefill.
func prefillWorkers(workers, npkts int) int {
	if npkts <= 0 || workers <= npkts {
		return 1
	}
	return (workers + npkts - 1) / npkts
}

// Decode runs the full pipeline on a trace and returns the decoded packets
// in start-time order.
func (r *Receiver) Decode(tr *trace.Trace) []Decoded {
	return r.DecodeSamples(tr.Antennas)
}

// DecodeSamples is Decode for raw per-antenna sample slices.
func (r *Receiver) DecodeSamples(antennas [][]complex128) []Decoded {
	r.met.onPoolWorkers(parallel.Workers(r.cfg.Workers))
	t0 := r.met.now()
	pkts := r.detector.Detect(antennas)
	r.met.observeDetect(t0)
	r.met.onScanParallel(r.detector.ScanStats)
	r.met.onRefineParallel(r.detector.RefineStats)
	r.met.onDetected(len(pkts))
	if len(pkts) == 0 {
		return nil
	}
	traceLen := len(antennas[0])

	// Stage 2: per-packet calculators, prefilled so every later SigVec read
	// — Thrive, SNR estimation, list decoding — is a pure cached read.
	// Calculators come from the pool (drawn serially; the cursor is not
	// goroutine-safe), then packets fan out across the worker pool for the
	// prefill; leftover width speeds up each packet's own prefill. Traces
	// are opened serially afterwards so the tracer sees packets in
	// detection order.
	r.calcs.Rewind()
	window := r.obs.NextWindow()
	t0 = r.met.now()
	inner := prefillWorkers(parallel.Workers(r.cfg.Workers), len(pkts))
	states := make([]*thrive.PacketState, len(pkts))
	calcs := make([]*peaks.Calculator, len(pkts))
	for i := range pkts {
		calcs[i] = r.newCalc(antennas, pkts[i], traceLen)
	}
	sigSt := parallel.ForEach(r.cfg.Workers, len(pkts), func(_, i int) {
		calcs[i].Prefill(inner)
		states[i] = thrive.NewPacketState(i, calcs[i])
	})
	for i := range states {
		states[i].Trace = r.newTrace(window, i, 1, pkts[i], states[i])
	}
	r.met.observeSigCalc(t0)
	r.met.onSigCalcParallel(sigSt)

	// Thrive's greedy assignment is order-dependent by design and stays
	// serial; with prefilled calculators it only does pure reads.
	t0 = r.met.now()
	r.engine.Run(states, traceLen)
	r.met.observeThrive(t0)

	// Stage 4: decode every assigned packet concurrently into indexed
	// slots, then merge in detection order.
	type outcome struct {
		dec Decoded
		ok  bool
	}
	results := make([]outcome, len(states))
	decSt := parallel.ForEach(r.cfg.Workers, len(states), func(_, i int) {
		dec, ok := r.decodeAssigned(states[i], pkts[i], 1, i)
		results[i] = outcome{dec: dec, ok: ok}
	})
	r.met.onDecodeParallel(decSt)

	var out []Decoded
	decodedIdx := map[int]bool{}
	for i, res := range results {
		if res.ok {
			out = append(out, res.dec)
			decodedIdx[i] = true
		}
	}

	retrying := !r.cfg.DisableSecondPass && len(decodedIdx) > 0 && len(decodedIdx) < len(states)
	for i, st := range states {
		if pt := st.Trace; pt != nil {
			// A pass-1 failure about to be retried is not the packet's
			// final verdict.
			pt.Final = decodedIdx[i] || !retrying
			r.obs.Finish(pt)
		}
	}
	if retrying {
		out = append(out, r.secondPass(antennas, pkts, states, decodedIdx, traceLen, window)...)
	}
	return out
}

// newTrace opens the packet's decode trace; nil without a tracer.
func (r *Receiver) newTrace(window uint64, id, pass int, pk detect.Packet, st *thrive.PacketState) *obs.PacketTrace {
	if r.obs == nil {
		return nil
	}
	start := math.Floor(pk.Start)
	pt := r.obs.NewPacket(window, id, pass, obs.Detection{
		StartSample: int(start),
		FracTiming:  pk.Start - start,
		CFOCycles:   pk.CFOCycles,
		CFOHz:       pk.CFOCycles / r.cfg.Params.SymbolDuration(),
		Quality:     pk.Quality,
		SNRdB:       r.estimateSNR(st),
	})
	pt.SyncScore = r.syncScore(st)
	pt.InitSymbols(st.Calc.NumData())
	return pt
}

// syncScore measures how well the estimated sync explains the preamble: the
// fraction of upchirps whose signal-vector maximum lands within ±1 bin of
// bin 0. A correct lock scores near 1; a wrong timing/CFO lock scatters the
// maxima and scores near 0.
func (r *Receiver) syncScore(st *thrive.PacketState) float64 {
	n := r.cfg.Params.N()
	total, hits := 0, 0
	for k := 0; k < lora.PreambleUpchirps; k++ {
		idx := k - (lora.PreambleUpchirps + lora.SyncSymbols)
		if !st.Calc.InRange(idx) {
			continue
		}
		total++
		hb := peaks.HighestBin(st.Calc.SigVec(idx))
		if hb <= 1 || hb >= n-1 {
			hits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// newCalc draws a pooled signal-vector calculator with a provisional symbol
// count (the true count is learned from the PHY header after assignment).
// The pool cursor is not goroutine-safe: call serially, before any fan-out.
func (r *Receiver) newCalc(antennas [][]complex128, pk detect.Packet, traceLen int) *peaks.Calculator {
	p := r.cfg.Params
	lay, err := lora.NewLayout(p, r.cfg.MaxPayloadLen)
	maxSyms := 0
	if err == nil {
		maxSyms = lay.DataSymbols
	}
	dataStart := pk.Start + (lora.PreambleUpchirps+lora.SyncSymbols+
		float64(lora.DownchirpQuarters)/4)*float64(p.SymbolSamples())
	avail := int((float64(traceLen) - dataStart) / float64(p.SymbolSamples()))
	if avail < 0 {
		avail = 0
	}
	if maxSyms == 0 || avail < maxSyms {
		maxSyms = avail
	}
	return r.calcs.Get(r.demod, antennas, pk.Start, pk.CFOCycles, maxSyms)
}

// decodeAssigned turns a packet's assigned peak bins into a payload. idx is
// the packet's detection index, which seeds its BEC sampling stream. It runs
// concurrently across packets: everything it touches is either per-packet
// (state, trace, rng), atomic (metrics), or a pure read (prefilled
// calculator, shared demodulator).
func (r *Receiver) decodeAssigned(st *thrive.PacketState, pk detect.Packet, pass, idx int) (Decoded, bool) {
	t0 := r.met.now()
	defer r.met.observeDecode(t0)
	rng := r.packetRNG(pass, idx)
	p := r.cfg.Params
	shifts := make([]int, len(st.Assigned))
	for i, b := range st.Assigned {
		if b >= 0 {
			shifts[i] = b
		}
	}
	if len(shifts) < lora.HeaderSymbols {
		st.Trace.Fail(obs.FailTooShort)
		return Decoded{}, false
	}

	var hdr lora.Header
	var payload []uint8
	rescued := 0
	// Failure-attribution evidence, accumulated across decode attempts.
	var becInfo bec.PacketResult
	attempts := 0
	decodeOnce := func(sh []int) (lora.Header, []uint8, int, bool) {
		attempts++
		if r.cfg.UseBEC {
			pd := bec.NewPacketDecoder(r.cfg.W, rng)
			if attempts == 1 {
				// Block outcomes are traced for the first attempt only;
				// list-decode retries would append duplicate rows.
				pd.Trace = st.Trace
			}
			res := pd.DecodePacket(p, sh)
			becInfo.CRCTests += res.CRCTests
			becInfo.HeaderOK = becInfo.HeaderOK || res.HeaderOK
			becInfo.BlockFailed = becInfo.BlockFailed || res.BlockFailed
			becInfo.Exhausted = becInfo.Exhausted || res.Exhausted
			return res.Header, res.Payload, res.Rescued, res.OK
		}
		res := lora.DecodeDefault(p, sh)
		return res.Header, res.Payload, 0, res.OK
	}
	var ok bool
	hdr, payload, rescued, ok = decodeOnce(shifts)
	if !ok && r.cfg.ListDecode {
		hdr, payload, rescued, ok = r.listDecode(st, shifts, decodeOnce)
	}
	if !ok {
		if pt := st.Trace; pt != nil {
			pt.CRCTests = becInfo.CRCTests
			pt.ListDecodeTried = attempts - 1
			pt.BECExhausted = becInfo.Exhausted
			headerOK := becInfo.HeaderOK
			if !r.cfg.UseBEC {
				// The default decoder keeps no evidence; re-derive header
				// validity from the cleaned header block.
				_, headerOK = lora.HeaderFromCleanBlock(
					lora.CleanBlock(lora.HeaderBlockFromShifts(p, shifts), 4))
			}
			pt.Fail(attributeFailure(pt, headerOK, becInfo.BlockFailed, becInfo.Exhausted))
		}
		r.met.onDecodeFailed()
		return Decoded{}, false
	}

	// Mark decoded: re-encode to obtain the true on-air shifts for
	// masking in the second pass.
	pp := p
	pp.CR = hdr.CR
	if trueShifts, _, err := lora.Encode(pp, payload); err == nil {
		st.Known = true
		st.KnownShifts = trueShifts
	}

	dataSyms := pp.PayloadSymbols(hdr.PayloadLen)
	dec := Decoded{
		Payload:     payload,
		Header:      hdr,
		Start:       pk.Start,
		CFOCycles:   pk.CFOCycles,
		SNRdB:       r.estimateSNR(st),
		Rescued:     rescued,
		Pass:        pass,
		DataSymbols: dataSyms,
		AirtimeSec:  (pp.PreambleSymbols() + float64(dataSyms)) * pp.SymbolDuration(),
		Trace:       st.Trace,
	}
	if pt := st.Trace; pt != nil {
		pt.OK = true
		pt.Rescued = rescued
		pt.CRCTests = becInfo.CRCTests
		pt.ListDecodeTried = attempts - 1
		pt.DataSymbols = dec.DataSymbols
		pt.AirtimeSec = dec.AirtimeSec
	}
	r.met.onDecoded(dec)
	return dec, true
}

// attributeFailure maps the evidence of a failed decode to the taxonomy.
// Definite causes come first (wrong sync, no valid header, exhausted CRC
// budget); the peak-misassignment heuristic — an outsized share of
// near-coin-flip assignments — is consulted only after them, so forced
// faults in tests attribute deterministically.
func attributeFailure(pt *obs.PacketTrace, headerOK, blockFailed, exhausted bool) obs.FailureReason {
	if pt.SyncScore < 0.5 {
		return obs.FailNoSync
	}
	if !headerOK {
		return obs.FailHeaderInvalid
	}
	if exhausted {
		return obs.FailBECBudget
	}
	if amb, assigned := pt.AmbiguousSymbols(obs.AmbiguityMargin); assigned > 0 && 4*amb >= assigned {
		return obs.FailPeakMisassign
	}
	if blockFailed {
		return obs.FailBECUnrepairable
	}
	return obs.FailCRC
}

// listDecode retries the packet with the runner-up peak substituted one
// symbol at a time, most-ambiguous symbols first (smallest height gap
// between the chosen peak and its alternate).
func (r *Receiver) listDecode(st *thrive.PacketState, shifts []int,
	decodeOnce func([]int) (lora.Header, []uint8, int, bool)) (lora.Header, []uint8, int, bool) {

	budget := r.cfg.ListDecodeBudget
	if budget <= 0 {
		budget = 24
	}
	type cand struct {
		idx int
		gap float64
	}
	var cands []cand
	for i, alt := range st.Alternates {
		if i >= len(shifts) || alt < 0 || alt == shifts[i] {
			continue
		}
		// Ambiguity proxy: how close the alternate's signal level is to
		// the chosen peak's.
		chosen := st.Heights[i]
		altH := st.Calc.ValueAt(i, float64(alt))
		gap := chosen - altH
		cands = append(cands, cand{idx: i, gap: gap})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].gap < cands[b].gap })
	if len(cands) > budget {
		cands = cands[:budget]
	}
	trial := make([]int, len(shifts))
	for _, c := range cands {
		copy(trial, shifts)
		trial[c.idx] = st.Alternates[c.idx]
		if hdr, payload, rescued, ok := decodeOnce(trial); ok {
			return hdr, payload, rescued, true
		}
	}
	return lora.Header{}, nil, 0, false
}

// estimateSNR derives a per-packet SNR estimate from the preamble peak
// height against the noise floor read from the median signal-vector bin
// (exponential noise: median = ln2·mean).
func (r *Receiver) estimateSNR(st *thrive.PacketState) float64 {
	p := r.cfg.Params
	hs := st.Calc.PreamblePeakHeights()
	if len(hs) == 0 {
		return math.Inf(-1)
	}
	peak := stats.Median(hs)
	y := st.Calc.SigVec(-(lora.PreambleUpchirps + lora.SyncSymbols))
	floor := stats.Median(y) / math.Ln2
	if floor <= 0 {
		return math.Inf(1)
	}
	snr := peak / (floor * float64(p.N()))
	return 10 * math.Log10(snr)
}

// secondPass re-runs assignment with decoded packets' peaks masked and the
// failed packets' histories fitted over their first-pass observations.
func (r *Receiver) secondPass(antennas [][]complex128, pkts []detect.Packet,
	states []*thrive.PacketState, decodedIdx map[int]bool, traceLen int,
	window uint64) []Decoded {

	t0 := r.met.now()
	inner := prefillWorkers(parallel.Workers(r.cfg.Workers), len(pkts))
	retry := make([]*thrive.PacketState, len(pkts))
	calcs := make([]*peaks.Calculator, len(pkts))
	for i := range pkts {
		calcs[i] = r.newCalc(antennas, pkts[i], traceLen)
	}
	sigSt := parallel.ForEach(r.cfg.Workers, len(pkts), func(_, i int) {
		st := thrive.NewPacketState(i, calcs[i])
		if decodedIdx[i] {
			st.Known = true
			st.KnownShifts = states[i].KnownShifts
			// A known packet contributes only its masked peak positions and
			// preamble history; its data vectors are never read.
			st.Calc.PrefillPreamble()
		} else {
			st.PriorHeights = append([]float64(nil), states[i].Heights...)
			st.Calc.Prefill(inner)
		}
		retry[i] = st
	})
	for i := range retry {
		if !decodedIdx[i] {
			retry[i].Trace = r.newTrace(window, i, 2, pkts[i], retry[i])
		}
	}
	r.met.observeSigCalc(t0)
	r.met.onSigCalcParallel(sigSt)
	t0 = r.met.now()
	r.engine.Run(retry, traceLen)
	r.met.observeThrive(t0)

	type outcome struct {
		dec Decoded
		ok  bool
	}
	var retryIdx []int
	for i := range retry {
		if !decodedIdx[i] {
			retryIdx = append(retryIdx, i)
		}
	}
	results := make([]outcome, len(retryIdx))
	decSt := parallel.ForEach(r.cfg.Workers, len(retryIdx), func(_, j int) {
		i := retryIdx[j]
		dec, ok := r.decodeAssigned(retry[i], pkts[i], 2, i)
		results[j] = outcome{dec: dec, ok: ok}
	})
	r.met.onDecodeParallel(decSt)

	var out []Decoded
	for j, i := range retryIdx {
		if results[j].ok {
			out = append(out, results[j].dec)
		}
		if pt := retry[i].Trace; pt != nil {
			pt.Final = true
			r.obs.Finish(pt)
		}
	}
	return out
}
