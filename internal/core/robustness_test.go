package core

import (
	"bytes"
	"math/rand"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/trace"
)

// Failure-injection tests: the receiver must degrade gracefully, never
// panic, and never claim a CRC-passing decode that does not match a real
// transmission.

func TestReceiverTruncatedPacketAtTraceEnd(t *testing.T) {
	// A packet whose tail is cut off by the capture boundary: detection
	// may find the preamble but the payload cannot fully decode; the
	// receiver must not crash or mis-decode.
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(400))
	full := trace.NewBuilder(p, 1.0, 1, rng)
	payload := payloadOf(9)
	if err := full.AddPacket(0, 0, payload, 800_000, 12, 1500, nil); err != nil {
		t.Fatal(err)
	}
	tr, recs := full.Build()
	// Cut the trace in the middle of the packet's payload.
	cut := int(recs[0].StartSample) + recs[0].NumSamples/2
	tr.Antennas[0] = tr.Antennas[0][:cut]

	r := NewReceiver(Config{Params: p, UseBEC: true})
	decoded := r.Decode(tr)
	for _, d := range decoded {
		if bytes.Equal(d.Payload, payload) {
			t.Error("truncated packet cannot legitimately decode")
		}
	}
}

func TestReceiverPreambleOnlyAtTraceEnd(t *testing.T) {
	// Only the preamble fits: the provisional symbol count goes to ~0.
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(401))
	b := trace.NewBuilder(p, 1.0, 1, rng)
	if err := b.AddPacket(0, 0, payloadOf(1), 700_000, 15, 0, nil); err != nil {
		t.Fatal(err)
	}
	tr, recs := b.Build()
	cut := int(recs[0].StartSample) + p.PreambleSamples() + p.SymbolSamples()
	tr.Antennas[0] = tr.Antennas[0][:cut]
	r := NewReceiver(Config{Params: p, UseBEC: true})
	if decoded := r.Decode(tr); len(decoded) != 0 {
		t.Errorf("decoded %d packets from a preamble-only capture", len(decoded))
	}
}

func TestReceiverClippedIQ(t *testing.T) {
	// Saturated samples (as from an overloaded front end): decode should
	// still succeed for a strong clean packet.
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(402))
	b := trace.NewBuilder(p, 0.6, 1, rng)
	payload := payloadOf(2)
	if err := b.AddPacket(0, 0, payload, 20000, 15, 2000, nil); err != nil {
		t.Fatal(err)
	}
	tr, _ := b.Build()
	clip := 3.0
	for i, v := range tr.Antennas[0] {
		re, im := real(v), imag(v)
		if re > clip {
			re = clip
		} else if re < -clip {
			re = -clip
		}
		if im > clip {
			im = clip
		} else if im < -clip {
			im = -clip
		}
		tr.Antennas[0][i] = complex(re, im)
	}
	r := NewReceiver(Config{Params: p, UseBEC: true})
	decoded := r.Decode(tr)
	found := false
	for _, d := range decoded {
		if bytes.Equal(d.Payload, payload) {
			found = true
		}
	}
	if !found {
		t.Error("clipped but strong packet should still decode")
	}
}

func TestReceiverNeverFalselyDecodes(t *testing.T) {
	// Across noise-only and garbage traces, a CRC pass must never appear.
	p := lora.MustParams(8, 2, 125e3, 8)
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(410 + seed))
		b := trace.NewBuilder(p, 0.8, 1, rng)
		b.NoisePower = 2.5
		tr, _ := b.Build()
		r := NewReceiver(Config{Params: p, UseBEC: true, Seed: seed})
		if decoded := r.Decode(tr); len(decoded) != 0 {
			t.Errorf("seed %d: %d false decodes from noise", seed, len(decoded))
		}
	}
}

func TestReceiverTwoAntennas(t *testing.T) {
	// Two antennas with independent phases must combine coherently in the
	// signal vectors (power sum) and decode a weak packet at least as
	// well as one antenna.
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(420))
	b := trace.NewBuilder(p, 0.8, 2, rng)
	payload := payloadOf(5)
	if err := b.AddPacket(0, 0, payload, 30000.3, -2, 3000, nil); err != nil {
		t.Fatal(err)
	}
	tr, _ := b.Build()
	r := NewReceiver(Config{Params: p, UseBEC: true})
	decoded := r.Decode(tr)
	found := false
	for _, d := range decoded {
		if bytes.Equal(d.Payload, payload) {
			found = true
		}
	}
	if !found {
		t.Error("-2 dB packet should decode with 2 antennas")
	}
}

func TestReceiverMismatchedSF(t *testing.T) {
	// A trace of SF 10 packets processed with an SF 8 receiver: nothing
	// should decode (and nothing should crash).
	p10 := lora.MustParams(10, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(430))
	b := trace.NewBuilder(p10, 2.0, 1, rng)
	if err := b.AddPacket(0, 0, payloadOf(7), 50000, 15, 1000, nil); err != nil {
		t.Fatal(err)
	}
	tr, _ := b.Build()
	r := NewReceiver(Config{Params: lora.MustParams(8, 4, 125e3, 8), UseBEC: true})
	if decoded := r.Decode(tr); len(decoded) != 0 {
		t.Errorf("SF mismatch produced %d decodes", len(decoded))
	}
}

func TestReceiverBackToBackPackets(t *testing.T) {
	// Same node transmitting twice in quick succession (no overlap):
	// both must decode.
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(440))
	b := trace.NewBuilder(p, 1.5, 1, rng)
	pl1, pl2 := payloadOf(11), payloadOf(12)
	pkt := float64(p.PacketSamples(14))
	if err := b.AddPacket(0, 0, pl1, 20000, 10, 1500, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPacket(0, 1, pl2, 20000+pkt+float64(2*p.SymbolSamples()), 10, 1500, nil); err != nil {
		t.Fatal(err)
	}
	tr, _ := b.Build()
	r := NewReceiver(Config{Params: p, UseBEC: true})
	decoded := r.Decode(tr)
	got := map[string]bool{}
	for _, d := range decoded {
		got[string(d.Payload)] = true
	}
	if !got[string(pl1)] || !got[string(pl2)] {
		t.Errorf("back-to-back decode: got %d packets", len(decoded))
	}
}

func TestReceiverIdenticalStartTimes(t *testing.T) {
	// Two packets starting at the same instant with different CFOs: the
	// detector may merge them; the receiver must not crash and should
	// decode at least one.
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(450))
	b := trace.NewBuilder(p, 1.0, 1, rng)
	if err := b.AddPacket(0, 0, payloadOf(21), 20000, 12, 4000, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPacket(1, 0, payloadOf(22), 20000, 10, -4000, nil); err != nil {
		t.Fatal(err)
	}
	tr, recs := b.Build()
	r := NewReceiver(Config{Params: p, UseBEC: true})
	decoded := r.Decode(tr)
	if countDecoded(decoded, recs) < 1 {
		t.Error("no packet decoded from simultaneous starts")
	}
}

func TestListDecodeRescuesBorderlinePackets(t *testing.T) {
	// Across several hard collision scenarios, list decoding must decode
	// at least as many packets as the plain configuration, and the
	// configurations must agree on everything plain decoding already got.
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	plainTotal, listTotal := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		b := trace.NewBuilder(p, 1.4, 1, rng)
		for i := 0; i < 3; i++ {
			payload := payloadOf(int(seed)*10 + i)
			start := 20000.4 + float64(i)*(7.3+float64(seed))*sym
			if err := b.AddPacket(i, 0, payload, start, 10-4*float64(i), -3000+2500*float64(i), nil); err != nil {
				t.Fatal(err)
			}
		}
		tr, recs := b.Build()
		plain := NewReceiver(Config{Params: p, UseBEC: true, Seed: seed})
		plainDecoded := plain.Decode(tr)
		plainTotal += countDecoded(plainDecoded, recs)

		list := NewReceiver(Config{Params: p, UseBEC: true, ListDecode: true, Seed: seed})
		listDecoded := list.Decode(tr)
		listTotal += countDecoded(listDecoded, recs)
	}
	if listTotal < plainTotal {
		t.Errorf("list decoding decoded %d vs plain %d", listTotal, plainTotal)
	}
	t.Logf("plain %d, list %d packets decoded", plainTotal, listTotal)
}

func TestListDecodeNeverFalsePositive(t *testing.T) {
	// List substitution must not conjure CRC passes from noise.
	p := lora.MustParams(8, 2, 125e3, 8)
	rng := rand.New(rand.NewSource(1100))
	b := trace.NewBuilder(p, 0.8, 1, rng)
	b.NoisePower = 2
	tr, _ := b.Build()
	r := NewReceiver(Config{Params: p, UseBEC: true, ListDecode: true})
	if decoded := r.Decode(tr); len(decoded) != 0 {
		t.Errorf("%d false decodes with list decoding", len(decoded))
	}
}
