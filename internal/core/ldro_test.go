package core

import (
	"bytes"
	"math/rand"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/trace"
)

func TestReceiverLDROEndToEnd(t *testing.T) {
	// SF 11 with the low-data-rate optimization: the full pipeline
	// (detection, Thrive, BEC) must decode through the reduced-rate
	// payload symbols.
	p := lora.MustParams(11, 4, 125e3, 4) // OSF 4 keeps the trace small
	p.LDRO = true
	rng := rand.New(rand.NewSource(700))
	b := trace.NewBuilder(p, 5.0, 1, rng)
	payload := payloadOf(3)
	if err := b.AddPacket(0, 0, payload, 100000.5, 8, 2000, nil); err != nil {
		t.Fatal(err)
	}
	tr, _ := b.Build()
	r := NewReceiver(Config{Params: p, UseBEC: true})
	decoded := r.Decode(tr)
	found := false
	for _, d := range decoded {
		if bytes.Equal(d.Payload, payload) {
			found = true
		}
	}
	if !found {
		t.Errorf("LDRO SF11 packet not decoded (%d decodes)", len(decoded))
	}
}
