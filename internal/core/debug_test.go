package core

import (
	"testing"

	"tnb/internal/detect"
	"tnb/internal/lora"
	"tnb/internal/peaks"
	"tnb/internal/thrive"
)

func TestDebugPipeline(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic only")
	}
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	tr, recs := makeTrace(t, 210, p, 1.2, []txSpec{
		{start: 20000.4, snr: 12, cfo: 2100, payload: payloadOf(1)},
		{start: 20000.4 + 11.5*sym, snr: 7, cfo: -3300, payload: payloadOf(2)},
	})
	det := detect.NewDetector(p)
	pkts := det.Detect(tr.Antennas)
	t.Logf("detected %d packets", len(pkts))
	for i, pk := range pkts {
		t.Logf("pkt %d: start %.2f cfo %.4f", i, pk.Start, pk.CFOCycles)
	}
	for _, rec := range recs {
		t.Logf("true: start %.2f cfo %.4f len %d", rec.StartSample, rec.CFOHz*p.SymbolDuration(), len(rec.Shifts))
	}
	newCalc := func(pk detect.Packet) *peaks.Calculator {
		lay, err := lora.NewLayout(p, 48)
		maxSyms := 0
		if err == nil {
			maxSyms = lay.DataSymbols
		}
		dataStart := pk.Start + (lora.PreambleUpchirps+lora.SyncSymbols+
			float64(lora.DownchirpQuarters)/4)*float64(p.SymbolSamples())
		avail := int((float64(tr.Len()) - dataStart) / float64(p.SymbolSamples()))
		if avail < 0 {
			avail = 0
		}
		if maxSyms == 0 || avail < maxSyms {
			maxSyms = avail
		}
		return peaks.NewCalculator(det.Demodulator(), tr.Antennas, pk.Start, pk.CFOCycles, maxSyms)
	}
	states := make([]*thrive.PacketState, len(pkts))
	for i, pk := range pkts {
		states[i] = thrive.NewPacketState(i, newCalc(pk))
	}
	engine := thrive.NewEngine(p, thrive.Config{})
	engine.Run(states, tr.Len())
	for i, st := range states {
		if i >= len(recs) {
			break
		}
		rec := recs[i]
		errs, tot := 0, len(rec.Shifts)
		for j := range rec.Shifts {
			if j < len(st.Assigned) && st.Assigned[j] != rec.Shifts[j] {
				errs++
				if errs < 8 {
					y := st.Calc.SigVec(j)
					ps := peaks.Find(y, 0, 6)
					t.Logf(" pkt %d sym %d: got %d want %d trueY=%.3e peaks=%v",
						i, j, st.Assigned[j], rec.Shifts[j], y[rec.Shifts[j]], ps)
				}
			}
		}
		t.Logf("pkt %d: %d/%d symbol errors (numData=%d)", i, errs, tot, st.Calc.NumData())
	}
}
