package core

import (
	"testing"

	"tnb/internal/lora"
	"tnb/internal/peaks"
	"tnb/internal/thrive"
)

func TestDebugPipeline(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic only")
	}
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	tr, recs := makeTrace(t, 210, p, 1.2, []txSpec{
		{start: 20000.4, snr: 12, cfo: 2100, payload: payloadOf(1)},
		{start: 20000.4 + 11.5*sym, snr: 7, cfo: -3300, payload: payloadOf(2)},
	})
	r := NewReceiver(Config{Params: p, UseBEC: true})
	pkts := r.detector.Detect(tr.Antennas)
	t.Logf("detected %d packets", len(pkts))
	for i, pk := range pkts {
		t.Logf("pkt %d: start %.2f cfo %.4f", i, pk.Start, pk.CFOCycles)
	}
	for _, rec := range recs {
		t.Logf("true: start %.2f cfo %.4f len %d", rec.StartSample, rec.CFOHz*p.SymbolDuration(), len(rec.Shifts))
	}
	states := make([]*thrive.PacketState, len(pkts))
	for i, pk := range pkts {
		states[i] = thrive.NewPacketState(i, r.newCalc(tr.Antennas, pk, tr.Len()))
	}
	engine := thrive.NewEngine(p, thrive.Config{})
	engine.Run(states, tr.Len())
	for i, st := range states {
		if i >= len(recs) {
			break
		}
		rec := recs[i]
		errs, tot := 0, len(rec.Shifts)
		for j := range rec.Shifts {
			if j < len(st.Assigned) && st.Assigned[j] != rec.Shifts[j] {
				errs++
				if errs < 8 {
					y := st.Calc.SigVec(j)
					ps := peaks.Find(y, 0, 6)
					t.Logf(" pkt %d sym %d: got %d want %d trueY=%.3e peaks=%v",
						i, j, st.Assigned[j], rec.Shifts[j], y[rec.Shifts[j]], ps)
				}
			}
		}
		t.Logf("pkt %d: %d/%d symbol errors (numData=%d)", i, errs, tot, st.Calc.NumData())
	}
}
