package core

import (
	"bytes"
	"math/rand"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/thrive"
	"tnb/internal/trace"
)

type txSpec struct {
	start, snr, cfo float64
	payload         []uint8
}

func makeTrace(t *testing.T, seed int64, p lora.Params, dur float64, specs []txSpec) (*trace.Trace, []trace.TxRecord) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(p, dur, 1, rng)
	for i, s := range specs {
		if err := b.AddPacket(i, i, s.payload, s.start, s.snr, s.cfo, nil); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func payloadOf(i int) []uint8 {
	p := make([]uint8, 14)
	for j := range p {
		p[j] = uint8(i*31 + j)
	}
	return p
}

func countDecoded(decoded []Decoded, recs []trace.TxRecord) int {
	n := 0
	for _, rec := range recs {
		for _, d := range decoded {
			if bytes.Equal(d.Payload, rec.Payload) {
				n++
				break
			}
		}
	}
	return n
}

func TestReceiverSinglePacket(t *testing.T) {
	for _, cr := range []int{1, 2, 3, 4} {
		p := lora.MustParams(8, cr, 125e3, 8)
		tr, recs := makeTrace(t, 200+int64(cr), p, 1.0, []txSpec{
			{start: 20000.4, snr: 8, cfo: 2100, payload: payloadOf(1)},
		})
		r := NewReceiver(Config{Params: p, UseBEC: true})
		decoded := r.Decode(tr)
		if countDecoded(decoded, recs) != 1 {
			t.Errorf("CR%d: single packet not decoded", cr)
		}
	}
}

func TestReceiverTwoCollidedPackets(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	tr, recs := makeTrace(t, 210, p, 1.2, []txSpec{
		{start: 20000.4, snr: 12, cfo: 2100, payload: payloadOf(1)},
		{start: 20000.4 + 11.5*sym, snr: 7, cfo: -3300, payload: payloadOf(2)},
	})
	r := NewReceiver(Config{Params: p, UseBEC: true})
	decoded := r.Decode(tr)
	if got := countDecoded(decoded, recs); got != 2 {
		t.Errorf("decoded %d/2 collided packets", got)
	}
}

func TestReceiverThreeCollidedPackets(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	tr, recs := makeTrace(t, 211, p, 1.5, []txSpec{
		{start: 20000.4, snr: 15, cfo: 2100, payload: payloadOf(1)},
		{start: 20000.4 + 9.3*sym, snr: 10, cfo: -3300, payload: payloadOf(2)},
		{start: 20000.4 + 21.8*sym, snr: 6, cfo: 800, payload: payloadOf(3)},
	})
	r := NewReceiver(Config{Params: p, UseBEC: true})
	decoded := r.Decode(tr)
	if got := countDecoded(decoded, recs); got < 2 {
		t.Errorf("decoded %d/3 collided packets", got)
	}
}

func TestReceiverBECOutperformsDefault(t *testing.T) {
	// Across several collision scenarios, TnB (with BEC) must decode at
	// least as many packets as Thrive-only.
	p := lora.MustParams(8, 3, 125e3, 8)
	sym := float64(p.SymbolSamples())
	totalBEC, totalNoBEC := 0, 0
	for seed := int64(0); seed < 4; seed++ {
		tr, recs := makeTrace(t, 220+seed, p, 1.5, []txSpec{
			{start: 20000.4, snr: 9, cfo: 2100, payload: payloadOf(1)},
			{start: 20000.4 + (8.3+float64(seed))*sym, snr: 5, cfo: -3300, payload: payloadOf(2)},
			{start: 20000.4 + (19.6+2*float64(seed))*sym, snr: 3, cfo: 900, payload: payloadOf(3)},
		})
		rb := NewReceiver(Config{Params: p, UseBEC: true, Seed: seed})
		totalBEC += countDecoded(rb.Decode(tr), recs)
		rn := NewReceiver(Config{Params: p, UseBEC: false, Seed: seed})
		totalNoBEC += countDecoded(rn.Decode(tr), recs)
	}
	if totalBEC < totalNoBEC {
		t.Errorf("BEC decoded %d vs %d without", totalBEC, totalNoBEC)
	}
	if totalBEC == 0 {
		t.Error("BEC decoded nothing across all scenarios")
	}
}

func TestReceiverSNREstimate(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	for _, snr := range []float64{0, 10, 20} {
		tr, _ := makeTrace(t, 230, p, 1.0, []txSpec{
			{start: 20000, snr: snr, cfo: 1000, payload: payloadOf(1)},
		})
		r := NewReceiver(Config{Params: p, UseBEC: true})
		decoded := r.Decode(tr)
		if len(decoded) != 1 {
			t.Fatalf("snr %g: %d decoded", snr, len(decoded))
		}
		if est := decoded[0].SNRdB; est < snr-4 || est > snr+4 {
			t.Errorf("snr %g: estimate %.1f dB", snr, est)
		}
	}
}

func TestReceiverSecondPassRescues(t *testing.T) {
	// A strong and a weak packet heavily overlapped: the weak one often
	// needs the second pass (strong peaks masked).
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	rescuedByPass2 := false
	for seed := int64(0); seed < 6 && !rescuedByPass2; seed++ {
		tr, recs := makeTrace(t, 240+seed, p, 1.3, []txSpec{
			{start: 20000.4, snr: 18, cfo: 2100, payload: payloadOf(1)},
			{start: 20000.4 + (6.5+float64(seed))*sym, snr: 0, cfo: -3300, payload: payloadOf(2)},
		})
		r := NewReceiver(Config{Params: p, UseBEC: true, Seed: seed})
		decoded := r.Decode(tr)
		for _, d := range decoded {
			if d.Pass == 2 && bytes.Equal(d.Payload, recs[1].Payload) {
				rescuedByPass2 = true
			}
		}
	}
	// The second pass existing and producing *some* rescue across the
	// scenarios is the point; it is not guaranteed per-seed.
	t.Logf("second-pass rescue observed: %v", rescuedByPass2)
}

func TestReceiverPolicies(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	for _, pol := range []thrive.Policy{thrive.PolicyThrive, thrive.PolicySibling, thrive.PolicyAlignTrack} {
		tr, recs := makeTrace(t, 250, p, 1.2, []txSpec{
			{start: 20000.4, snr: 12, cfo: 2100, payload: payloadOf(1)},
			{start: 20000.4 + 12.5*sym, snr: 9, cfo: -3300, payload: payloadOf(2)},
		})
		r := NewReceiver(Config{Params: p, Policy: pol, UseBEC: true})
		decoded := r.Decode(tr)
		if got := countDecoded(decoded, recs); got < 1 {
			t.Errorf("policy %d: decoded %d/2", pol, got)
		}
	}
}

func TestReceiverEmptyTrace(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	r := NewReceiver(Config{Params: p, UseBEC: true})
	rng := rand.New(rand.NewSource(260))
	b := trace.NewBuilder(p, 0.5, 1, rng)
	tr, _ := b.Build()
	if decoded := r.Decode(tr); len(decoded) != 0 {
		t.Errorf("decoded %d packets from noise", len(decoded))
	}
}

func TestReceiverSF10(t *testing.T) {
	p := lora.MustParams(10, 2, 125e3, 8)
	sym := float64(p.SymbolSamples())
	tr, recs := makeTrace(t, 270, p, 4.0, []txSpec{
		{start: 50000.4, snr: 6, cfo: 2100, payload: payloadOf(1)},
		{start: 50000.4 + 10.5*sym, snr: 2, cfo: -3300, payload: payloadOf(2)},
	})
	r := NewReceiver(Config{Params: p, UseBEC: true})
	decoded := r.Decode(tr)
	if got := countDecoded(decoded, recs); got < 1 {
		t.Errorf("SF10: decoded %d/2", got)
	}
}
