package core

import (
	"bytes"
	"strings"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/obs"
)

// finalTraces returns the final-verdict traces in the tracer's ring.
func finalTraces(tracer *obs.Tracer) []*obs.PacketTrace {
	var out []*obs.PacketTrace
	for _, pt := range tracer.Snapshot() {
		if pt.Final {
			out = append(out, pt)
		}
	}
	return out
}

func TestTraceDecodedPacket(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	var jsonl bytes.Buffer
	tracer := obs.New(obs.Options{Sink: &jsonl, RingSize: 16})
	tr, _ := makeTrace(t, 200, p, 1.0, []txSpec{
		{start: 20000.4, snr: 8, cfo: 2100, payload: payloadOf(1)},
	})
	r := NewReceiver(Config{Params: p, UseBEC: true, Tracer: tracer})
	decoded := r.Decode(tr)
	if len(decoded) != 1 {
		t.Fatalf("decoded %d packets", len(decoded))
	}

	d := decoded[0]
	if d.Trace == nil {
		t.Fatal("Decoded.Trace not attached")
	}
	if d.DataSymbols <= 0 || d.AirtimeSec <= 0 {
		t.Errorf("airtime accounting missing: symbols=%d airtime=%g", d.DataSymbols, d.AirtimeSec)
	}
	// 14-byte payload + CRC at SF8 CR4: airtime is preamble plus the data
	// symbols, all lasting SymbolDuration.
	wantAir := (p.PreambleSymbols() + float64(d.DataSymbols)) * p.SymbolDuration()
	if d.AirtimeSec != wantAir {
		t.Errorf("airtime %g, want %g", d.AirtimeSec, wantAir)
	}

	pt := d.Trace
	if !pt.OK || !pt.Final || pt.Pass != 1 {
		t.Errorf("trace verdict: ok=%v final=%v pass=%d", pt.OK, pt.Final, pt.Pass)
	}
	if pt.FailureReason != "" {
		t.Errorf("decoded packet carries failure reason %q", pt.FailureReason)
	}
	if pt.SyncScore != 1 {
		t.Errorf("clean packet sync score %.2f, want 1", pt.SyncScore)
	}
	if len(pt.Symbols) == 0 {
		t.Fatal("no symbol decisions recorded")
	}
	assigned := 0
	for _, sd := range pt.Symbols {
		if sd.Bin >= 0 {
			assigned++
		}
	}
	if assigned == 0 {
		t.Error("all symbol decisions are fallbacks")
	}
	if len(pt.Blocks) == 0 {
		t.Error("no BEC block outcomes recorded")
	}

	counts, err := obs.ValidateJSONL(&jsonl)
	if err != nil {
		t.Fatalf("exported JSONL invalid: %v", err)
	}
	if counts[obs.TypePacket] == 0 || counts[obs.TypeDetect] == 0 {
		t.Errorf("JSONL missing record types: %v", counts)
	}
}

func TestFailureAttributionCFOBias(t *testing.T) {
	// Inject an integer-cycle CFO estimation error after detection: the
	// dechirped preamble no longer lands on bin 0, the sync score
	// collapses, and the verdict must attribute the loss to sync — the
	// stage the fault was injected into — not to BEC or the CRC.
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, _ := makeTrace(t, 200, p, 1.0, []txSpec{
		{start: 20000.4, snr: 8, cfo: 2100, payload: payloadOf(1)},
	})

	// Control: same trace decodes cleanly without the fault.
	if n := len(NewReceiver(Config{Params: p, UseBEC: true}).Decode(tr)); n != 1 {
		t.Fatalf("control decode: %d packets", n)
	}

	var jsonl bytes.Buffer
	tracer := obs.New(obs.Options{Sink: &jsonl, RingSize: 16})
	r := NewReceiver(Config{Params: p, UseBEC: true, Tracer: tracer, FaultCFOBiasCycles: 6})
	if n := len(r.Decode(tr)); n != 0 {
		t.Fatalf("decoded %d packets despite 6-cycle CFO fault", n)
	}

	final := finalTraces(tracer)
	if len(final) != 1 {
		t.Fatalf("%d final traces, want 1", len(final))
	}
	pt := final[0]
	if pt.OK {
		t.Fatal("trace claims success")
	}
	if pt.FailureReason != obs.FailNoSync {
		t.Errorf("failure reason %q, want %q", pt.FailureReason, obs.FailNoSync)
	}
	if pt.SyncScore >= 0.5 {
		t.Errorf("sync score %.2f under integer CFO error", pt.SyncScore)
	}
	if !strings.Contains(jsonl.String(), string(obs.FailNoSync)) {
		t.Error("exported JSONL does not name the injected failure stage")
	}
}

func TestFailureAttributionBECBudget(t *testing.T) {
	// A weak packet with a clean preamble whose payload is hit by a strong
	// collider: the default CRC-test budget recovers it, but W=1 starves
	// the BEC candidate search, and the verdict must say so.
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	specs := []txSpec{
		{start: 20000.4, snr: 4, cfo: -3300, payload: payloadOf(1)},
		{start: 20000.4 + 10.3*sym, snr: 14, cfo: 2100, payload: payloadOf(2)},
	}
	tr, recs := makeTrace(t, 308, p, 1.3, specs)

	// Control: the default budget decodes both packets.
	rd := NewReceiver(Config{Params: p, UseBEC: true, Seed: 7})
	if got := countDecoded(rd.Decode(tr), recs); got != 2 {
		t.Fatalf("control decode: %d/2 packets", got)
	}

	var jsonl bytes.Buffer
	tracer := obs.New(obs.Options{Sink: &jsonl, RingSize: 16})
	r := NewReceiver(Config{Params: p, UseBEC: true, Seed: 7, W: 1, Tracer: tracer})
	if got := countDecoded(r.Decode(tr), recs); got != 1 {
		t.Fatalf("W=1 decode: %d/2 packets, want exactly 1", got)
	}

	var failed *obs.PacketTrace
	for _, pt := range finalTraces(tracer) {
		if !pt.OK {
			if failed != nil {
				t.Fatal("more than one failed final trace")
			}
			failed = pt
		}
	}
	if failed == nil {
		t.Fatal("no failed final trace recorded")
	}
	if failed.FailureReason != obs.FailBECBudget {
		t.Errorf("failure reason %q, want %q", failed.FailureReason, obs.FailBECBudget)
	}
	if !failed.BECExhausted {
		t.Error("BECExhausted flag not set")
	}
	if !strings.Contains(jsonl.String(), string(obs.FailBECBudget)) {
		t.Error("exported JSONL does not name the exhausted-budget stage")
	}
}

func TestTracedDecodeMatchesUntraced(t *testing.T) {
	// Tracing must observe, never perturb: the decoded set with a Tracer
	// attached has to match the nil-Tracer run bit for bit.
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	tr, _ := makeTrace(t, 210, p, 1.2, []txSpec{
		{start: 20000.4, snr: 12, cfo: 2100, payload: payloadOf(1)},
		{start: 20000.4 + 11.5*sym, snr: 7, cfo: -3300, payload: payloadOf(2)},
	})

	bare := NewReceiver(Config{Params: p, UseBEC: true}).Decode(tr)
	traced := NewReceiver(Config{Params: p, UseBEC: true,
		Tracer: obs.New(obs.Options{RingSize: 16})}).Decode(tr)
	if len(bare) != len(traced) {
		t.Fatalf("traced run decoded %d packets, bare %d", len(traced), len(bare))
	}
	for i := range bare {
		if !bytes.Equal(bare[i].Payload, traced[i].Payload) {
			t.Errorf("packet %d payload differs between traced and bare runs", i)
		}
	}
}
