package core

import (
	"testing"

	"tnb/internal/lora"
	"tnb/internal/metrics"
)

// TestPipelineMetricsRecorded runs an instrumented receiver over a
// two-packet collision and checks every stage histogram and the pipeline
// counters observed the run.
func TestPipelineMetricsRecorded(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, recs := makeTrace(t, 640, p, 1.5, []txSpec{
		{start: 20000, snr: 10, cfo: 1500, payload: payloadOf(1)},
		{start: 52000, snr: 9, cfo: -2400, payload: payloadOf(2)},
	})

	reg := metrics.NewRegistry()
	met := NewPipelineMetrics(reg)
	r := NewReceiver(Config{Params: p, UseBEC: true, Metrics: met})
	decoded := r.Decode(tr)
	if n := countDecoded(decoded, recs); n != 2 {
		t.Fatalf("decoded %d/2 packets", n)
	}

	for name, h := range map[string]*metrics.Histogram{
		"detect":  met.DetectSeconds,
		"sigcalc": met.SigCalcSeconds,
		"thrive":  met.ThriveSeconds,
		"decode":  met.DecodeSeconds,
	} {
		if h.Count() == 0 {
			t.Errorf("stage %q recorded no observations", name)
		}
	}
	if v := met.PacketsDetected.Value(); v < 2 {
		t.Errorf("packets detected = %d, want >= 2", v)
	}
	if v := met.PacketsDecoded.Value(); v != uint64(len(decoded)) {
		t.Errorf("packets decoded counter = %d, want %d", v, len(decoded))
	}
	if v := met.Windows.Value(); v != 1 {
		t.Errorf("windows = %d, want 1", v)
	}
}

// TestNilMetricsIsNoop checks the un-instrumented receiver works. The
// nil-receiver safety of the stage hooks themselves is pinned in
// internal/stagegraph, where they live.
func TestNilMetricsIsNoop(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, recs := makeTrace(t, 641, p, 1.0, []txSpec{
		{start: 20000, snr: 10, cfo: 0, payload: payloadOf(3)},
	})
	r := NewReceiver(Config{Params: p, UseBEC: true})
	if n := countDecoded(r.Decode(tr), recs); n != 1 {
		t.Fatalf("decoded %d/1 packets", n)
	}
}

func TestDefaultPipelineMetricsShared(t *testing.T) {
	if DefaultPipelineMetrics() != DefaultPipelineMetrics() {
		t.Error("DefaultPipelineMetrics not a singleton")
	}
}
