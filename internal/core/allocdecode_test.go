package core

import (
	"bytes"
	"fmt"
	"testing"

	"tnb/internal/lora"
)

// summarize renders the decoded set without pipeline counters, for
// comparisons between receivers that carry no metrics registry.
func summarize(out []Decoded) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "decoded=%d\n", len(out))
	for _, d := range out {
		fmt.Fprintf(&buf, "payload=%x start=%.6f cfo=%.9f snr=%.9f pass=%d rescued=%d syms=%d air=%.9f\n",
			d.Payload, d.Start, d.CFOCycles, d.SNRdB, d.Pass, d.Rescued, d.DataSymbols, d.AirtimeSec)
	}
	return buf.String()
}

// decodeAllocCeiling bounds the steady-state allocations of one full decode
// of the six-packet collided benchmark trace. The seed of this repository
// measured 19,293 allocs/op here; the pooled calculators, persistent Thrive
// engine, and scan scratch reuse bring it under 2,000, and this ceiling
// keeps allocation regressions from creeping back in. It is a ceiling with
// headroom, not a target: lower is better.
const decodeAllocCeiling = 2000

// TestDecodeSteadyStateAllocs pins the decode loop's allocation budget: after
// a warmup decode has sized every pooled buffer (calculator arenas, engine
// symbol pool, detector scan scratch), re-decoding the same trace must stay
// under decodeAllocCeiling allocations.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, _ := buildCollidedTrace(t, p, 7)
	r := NewReceiver(Config{Params: p, UseBEC: true, Seed: 7, Workers: 1})
	if len(r.Decode(tr)) == 0 {
		t.Fatal("warmup decoded nothing")
	}
	allocs := testing.AllocsPerRun(3, func() {
		if len(r.Decode(tr)) == 0 {
			t.Fatal("steady-state decoded nothing")
		}
	})
	if allocs > decodeAllocCeiling {
		t.Fatalf("Decode allocates %.0f/op in steady state, ceiling %d", allocs, decodeAllocCeiling)
	}
	t.Logf("Decode steady state: %.0f allocs/op (ceiling %d)", allocs, decodeAllocCeiling)
}

// TestReceiverReuseDeterministic pins the pooling contract: a reused receiver
// (recycled calculator arenas, persistent engine scratch) must produce
// byte-identical output to a fresh receiver on every decode, including when
// a different trace ran in between.
func TestReceiverReuseDeterministic(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	trA, _ := buildCollidedTrace(t, p, 7)
	trB, _ := buildCollidedTrace(t, p, 21)

	refA := NewReceiver(Config{Params: p, UseBEC: true, Seed: 7, Workers: 1})
	refB := NewReceiver(Config{Params: p, UseBEC: true, Seed: 7, Workers: 1})
	wantA := summarize(refA.Decode(trA))
	wantB := summarize(refB.Decode(trB))
	if wantA == "decoded=0\n" || wantB == "decoded=0\n" {
		t.Fatal("reference decoded nothing")
	}

	reused := NewReceiver(Config{Params: p, UseBEC: true, Seed: 7, Workers: 1})
	for round := 0; round < 3; round++ {
		if got := summarize(reused.Decode(trA)); got != wantA {
			t.Fatalf("round %d trace A: reused receiver diverged from fresh\nfresh:\n%s\nreused:\n%s",
				round, wantA, got)
		}
		if got := summarize(reused.Decode(trB)); got != wantB {
			t.Fatalf("round %d trace B: reused receiver diverged from fresh\nfresh:\n%s\nreused:\n%s",
				round, wantB, got)
		}
	}
}
