package detect

import (
	"testing"

	"tnb/internal/lora"
)

// TestScanPreamblesSteadyStateAllocs pins the scan's reuse contract: after a
// warmup call sized every per-worker scratch, peak slot and run buffer, a
// serial scan allocates (almost) nothing.
func TestScanPreamblesSteadyStateAllocs(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr := buildScanTrace(t, p, 7)
	d := NewDetector(p)
	d.Workers = 1
	if cands := d.scanPreambles(tr.Antennas); len(cands) == 0 {
		t.Fatal("no candidates")
	}
	a := testing.AllocsPerRun(20, func() { d.scanPreambles(tr.Antennas) })
	t.Logf("scanPreambles allocs/op after warmup: %v", a)
	if a > 0 {
		t.Fatalf("scanPreambles allocates %v/op in steady state", a)
	}
}
