package detect

import (
	"math/rand"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/trace"
)

func TestDebugMissedCollider(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic only")
	}
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	rng := rand.New(rand.NewSource(210))
	b := trace.NewBuilder(p, 1.2, 1, rng)
	pay := make([]uint8, 14)
	b.AddPacket(0, 0, pay, 20000.4, 12, 2100, nil)
	b.AddPacket(1, 1, pay, 20000.4+11.5*sym, 7, -3300, nil)
	tr, recs := b.Build()
	d := NewDetector(p)
	cands := d.scanPreambles(tr.Antennas)
	for _, c := range cands {
		t.Logf("cand: window %d bin %d h %.3e", c.window, c.bin, c.height)
		pkt, reject := d.refine(tr.Antennas, c, d.newRefineScratch())
		t.Logf("  refine: %+v reject=%q", pkt, reject)
	}
	for _, r := range recs {
		t.Logf("true: start %.1f (window %.2f) cfo %.4f", r.StartSample, r.StartSample/sym, r.CFOHz*p.SymbolDuration())
	}
}

func TestDebugRefineSteps(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic only")
	}
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	rng := rand.New(rand.NewSource(210))
	b := trace.NewBuilder(p, 1.2, 1, rng)
	pay := make([]uint8, 14)
	b.AddPacket(0, 0, pay, 20000.4, 12, 2100, nil)
	b.AddPacket(1, 1, pay, 20000.4+11.5*sym, 7, -3300, nil)
	tr, _ := b.Build()
	d := NewDetector(p)
	n := p.N()
	c := candidate{window: 25, bin: 181}
	// replicate refine's down scan
	for g := c.window + 1; g <= c.window+8; g++ {
		start := float64(g * p.SymbolSamples())
		acc := make([]float64, n)
		for _, ant := range tr.Antennas {
			y := d.demod.DownSignalVector(ant, start, 0, 0)
			for i := range y {
				acc[i] += y[i]
			}
		}
		bi := 0
		for i, v := range acc {
			if v > acc[bi] {
				bi = i
			}
		}
		t.Logf("down window %d: bin %d h %.3e", g, bi, acc[bi])
	}
}
