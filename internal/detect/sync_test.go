package detect

import (
	"math"
	"math/rand"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/trace"
)

// Properties of the Q/Q* search surface (paper Fig. 8).

func qSurfaceSetup(t *testing.T) (*Detector, [][]complex128, float64, float64) {
	t.Helper()
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(500))
	b := trace.NewBuilder(p, 1.0, 1, rng)
	payload := make([]uint8, 14)
	start, cfoHz := 25000.0, 1830.0
	if err := b.AddPacket(0, 0, payload, start, 15, cfoHz, nil); err != nil {
		t.Fatal(err)
	}
	tr, _ := b.Build()
	return NewDetector(p), tr.Antennas, start, cfoHz * p.SymbolDuration()
}

func TestQPeaksAtTrueParameters(t *testing.T) {
	d, ants, start, cfo := qSurfaceSetup(t)
	at := func(dt, df float64) float64 {
		return d.evalQ(ants, start, cfo, dt, df, d.newRefineScratch()).energy
	}
	center := at(0, 0)
	// Fractional CFO errors collapse Q (Fig. 8 top: sharp ridges).
	if v := at(0, 0.5); v > center/10 {
		t.Errorf("Q at df=0.5 is %g vs center %g", v, center)
	}
	if v := at(0, 0.25); v > center/2 {
		t.Errorf("Q at df=0.25 is %g vs center %g", v, center)
	}
	// Chip-scale timing errors reduce Q.
	if v := at(4, 0); v > 0.7*center {
		t.Errorf("Q at dt=4 (half chip) is %g vs center %g", v, center)
	}
}

func TestQIntegerCFOAliasHasEqualEnergyButShiftedPeaks(t *testing.T) {
	// The ±1-cycle alias keeps Q's energy (integer cycles preserve
	// inter-symbol coherence) but moves the peaks off bin 0 — exactly why
	// Q* gates on the peak location.
	d, ants, start, cfo := qSurfaceSetup(t)
	center := d.evalQ(ants, start, cfo, 0, 0, d.newRefineScratch())
	alias := d.evalQ(ants, start, cfo, 0, 1, d.newRefineScratch())
	if alias.energy < 0.9*center.energy {
		t.Errorf("alias energy %g vs center %g: expected near-equal", alias.energy, center.energy)
	}
	if center.upBin != 0 || center.downBin != 0 {
		t.Errorf("center peaks at (%d, %d), want (0, 0)", center.upBin, center.downBin)
	}
	if alias.upBin == 0 && alias.downBin == 0 {
		t.Error("alias peaks also at bin 0; Q* could not disambiguate")
	}
	if d.qStar(center) == 0 {
		t.Error("Q* zero at the true parameters")
	}
	if d.qStar(alias) != 0 {
		t.Error("Q* nonzero at the alias")
	}
}

func TestQTimingCFOTradeoffBreaksOnDownchirps(t *testing.T) {
	// A (+1 chip, +1 cycle) error keeps upchirp peaks at bin 0 (the +1
	// chip window delay and the -1 cycle residual cancel) but moves the
	// downchirp peaks by -2 bins: the up/down combination is what makes
	// the coarse estimate identifiable.
	d, ants, start, cfo := qSurfaceSetup(t)
	p := lora.MustParams(8, 4, 125e3, 8)
	r := d.evalQ(ants, start+float64(p.OSF), cfo, 0, 1, d.newRefineScratch())
	if r.upBin != 0 {
		t.Fatalf("compensated up peak at %d, want 0", r.upBin)
	}
	if r.downBin == 0 {
		t.Error("down peak at 0 despite the timing/CFO tradeoff")
	}
	if d.qStar(r) != 0 {
		t.Error("Q* accepted the traded-off hypothesis")
	}
}

func TestFractionalSearchConvergesFromCoarseOffsets(t *testing.T) {
	// From any plausible coarse error (≤ half chip timing, ≤ 1 cycle
	// CFO), the 3-phase search lands within 1/OSF samples and 1/16 cycle.
	d, ants, start, cfo := qSurfaceSetup(t)
	cases := []struct{ dt, df float64 }{
		{0, 0}, {3.5, 0.4}, {-3.5, -0.4}, {2, -0.9}, {-2, 0.9},
	}
	for _, c := range cases {
		ft, fc, q := d.fractionalSearch(ants, start+c.dt, cfo+c.df, d.newRefineScratch())
		if q <= 0 {
			t.Fatalf("offset (%g, %g): search found nothing", c.dt, c.df)
		}
		gotStart := start + c.dt + ft
		gotCFO := cfo + c.df + fc
		if e := math.Abs(gotStart - start); e > 1.0 {
			t.Errorf("offset (%g, %g): timing error %.3f samples", c.dt, c.df, e)
		}
		if e := math.Abs(gotCFO - cfo); e > 1.0/12 {
			t.Errorf("offset (%g, %g): CFO error %.4f cycles", c.dt, c.df, e)
		}
	}
}
