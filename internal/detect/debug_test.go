package detect

import (
	"math/rand"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/trace"
)

// TestDebugSyncSurface is a diagnostic for the Q/Q* search; it prints the
// search surface for a low-CFO packet. Run with -run TestDebugSyncSurface -v.
func TestDebugSyncSurface(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic only")
	}
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(90))
	b := trace.NewBuilder(p, 1.2, 1, rng)
	payload := make([]uint8, 14)
	rng.Read(payload)
	cfoHz := 137.0
	if err := b.AddPacket(0, 0, payload, 25000, 15, cfoHz, nil); err != nil {
		t.Fatal(err)
	}
	tr, recs := b.Build()
	d := NewDetector(p)
	cands := d.scanPreambles(tr.Antennas)
	t.Logf("true start %.2f cfo %.4f cycles", recs[0].StartSample, cfoHz*p.SymbolDuration())
	t.Logf("candidates: %+v", cands)
	for _, c := range cands {
		pkt, reject := d.refine(tr.Antennas, c, d.newRefineScratch())
		t.Logf("refined: %+v reject=%q", pkt, reject)
	}
	// Examine the Q surface around the true parameters.
	start := recs[0].StartSample
	cfo := cfoHz * p.SymbolDuration()
	for _, df := range []float64{-1, -0.5, 0, 0.28, 0.5, 1} {
		r := d.evalQ(tr.Antennas, start, cfo, 0, df, d.newRefineScratch())
		t.Logf("df=%+.2f: E=%.3e up=%d down=%d qstar=%.3e", df, r.energy, r.upBin, r.downBin, d.qStar(r))
	}
	for _, dt := range []float64{-8, -4, 0, 4, 8} {
		r := d.evalQ(tr.Antennas, start, cfo, dt, 0, d.newRefineScratch())
		t.Logf("dt=%+.1f: E=%.3e up=%d down=%d qstar=%.3e", dt, r.energy, r.upBin, r.downBin, d.qStar(r))
	}
}
