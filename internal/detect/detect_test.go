package detect

import (
	"math"
	"math/rand"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/trace"
)

func buildTrace(t *testing.T, seed int64, p lora.Params, specs []pktSpec, noise bool) (*trace.Trace, []trace.TxRecord) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(p, 1.2, 1, rng)
	if !noise {
		b.NoisePower = 0
	}
	for i, s := range specs {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := b.AddPacket(i, i, payload, s.start, s.snr, s.cfo, nil); err != nil {
			t.Fatal(err)
		}
	}
	tr, recs := b.Build()
	return tr, recs
}

type pktSpec struct {
	start, snr, cfo float64
}

func TestDetectSinglePacket(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, recs := buildTrace(t, 80, p, []pktSpec{{start: 31234.56, snr: 10, cfo: 2700}}, true)
	d := NewDetector(p)
	pkts := d.Detect(tr.Antennas)
	if len(pkts) != 1 {
		t.Fatalf("detected %d packets, want 1", len(pkts))
	}
	got := pkts[0]
	rec := recs[0]
	if math.Abs(got.Start-rec.StartSample) > 1.0 {
		t.Errorf("start %g, want %g (err %.2f samples)", got.Start, rec.StartSample, got.Start-rec.StartSample)
	}
	wantCFO := rec.CFOHz * p.SymbolDuration()
	if math.Abs(got.CFOCycles-wantCFO) > 0.1 {
		t.Errorf("CFO %g cycles, want %g", got.CFOCycles, wantCFO)
	}
}

func TestDetectSinglePacketSF10(t *testing.T) {
	p := lora.MustParams(10, 2, 125e3, 8)
	rng := rand.New(rand.NewSource(81))
	b := trace.NewBuilder(p, 3.0, 1, rng)
	payload := make([]uint8, 14)
	if err := b.AddPacket(0, 0, payload, 50000.3, 5, -4000, nil); err != nil {
		t.Fatal(err)
	}
	tr, recs := b.Build()
	d := NewDetector(p)
	pkts := d.Detect(tr.Antennas)
	if len(pkts) != 1 {
		t.Fatalf("detected %d packets, want 1", len(pkts))
	}
	if math.Abs(pkts[0].Start-recs[0].StartSample) > 1.5 {
		t.Errorf("start error %.2f samples", pkts[0].Start-recs[0].StartSample)
	}
	wantCFO := recs[0].CFOHz * p.SymbolDuration()
	if math.Abs(pkts[0].CFOCycles-wantCFO) > 0.1 {
		t.Errorf("CFO %g, want %g", pkts[0].CFOCycles, wantCFO)
	}
}

func TestDetectLowSNR(t *testing.T) {
	// LoRa operates below the noise floor; SF8 has 24 dB of processing
	// gain, so -5 dB per-sample SNR must still detect.
	p := lora.MustParams(8, 4, 125e3, 8)
	tr, recs := buildTrace(t, 82, p, []pktSpec{{start: 40000, snr: -5, cfo: 1000}}, true)
	d := NewDetector(p)
	pkts := d.Detect(tr.Antennas)
	if len(pkts) != 1 {
		t.Fatalf("detected %d packets at -5 dB", len(pkts))
	}
	if math.Abs(pkts[0].Start-recs[0].StartSample) > 2.5 {
		t.Errorf("start error %.2f samples at -5 dB", pkts[0].Start-recs[0].StartSample)
	}
}

func TestDetectTwoCollidingPackets(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	sym := float64(p.SymbolSamples())
	specs := []pktSpec{
		{start: 30000.2, snr: 12, cfo: 2000},
		{start: 30000.2 + 7.3*sym, snr: 9, cfo: -3100}, // overlaps the first
	}
	tr, recs := buildTrace(t, 83, p, specs, true)
	if !recs[0].Overlaps(recs[1]) {
		t.Fatal("test setup: packets do not overlap")
	}
	d := NewDetector(p)
	pkts := d.Detect(tr.Antennas)
	if len(pkts) != 2 {
		t.Fatalf("detected %d packets, want 2", len(pkts))
	}
	for i, rec := range recs {
		if math.Abs(pkts[i].Start-rec.StartSample) > 2 {
			t.Errorf("packet %d start error %.2f", i, pkts[i].Start-rec.StartSample)
		}
		wantCFO := rec.CFOHz * p.SymbolDuration()
		if math.Abs(pkts[i].CFOCycles-wantCFO) > 0.15 {
			t.Errorf("packet %d CFO %g, want %g", i, pkts[i].CFOCycles, wantCFO)
		}
	}
}

func TestDetectNoFalsePositivesOnNoise(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(84))
	b := trace.NewBuilder(p, 1.0, 1, rng)
	tr, _ := b.Build() // noise only
	d := NewDetector(p)
	if pkts := d.Detect(tr.Antennas); len(pkts) != 0 {
		t.Errorf("detected %d packets in pure noise", len(pkts))
	}
}

func TestDetectEmptyInput(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	d := NewDetector(p)
	if pkts := d.Detect(nil); pkts != nil {
		t.Error("nil input should give nil")
	}
	if pkts := d.Detect([][]complex128{{}}); pkts != nil {
		t.Error("empty antenna should give nil")
	}
}

func TestFractionalTimingAccuracy(t *testing.T) {
	// The step-4 search should recover sub-sample timing: with U=8 the
	// resolution is 1/8 of an rx sample.
	p := lora.MustParams(8, 4, 125e3, 8)
	for _, frac := range []float64{0.125, 0.5, 0.875} {
		start := 20000 + frac
		tr, _ := buildTrace(t, 85+int64(frac*1000), p, []pktSpec{{start: start, snr: 15, cfo: 1234}}, true)
		d := NewDetector(p)
		pkts := d.Detect(tr.Antennas)
		if len(pkts) != 1 {
			t.Fatalf("frac %.3f: %d packets", frac, len(pkts))
		}
		if err := math.Abs(pkts[0].Start - start); err > 0.5 {
			t.Errorf("frac %.3f: timing error %.3f samples", frac, err)
		}
	}
}

func TestFractionalCFOAccuracy(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	for _, cfoHz := range []float64{137, -2411, 4600} {
		tr, _ := buildTrace(t, 90, p, []pktSpec{{start: 25000, snr: 15, cfo: cfoHz}}, true)
		d := NewDetector(p)
		pkts := d.Detect(tr.Antennas)
		if len(pkts) != 1 {
			t.Fatalf("cfo %g: %d packets", cfoHz, len(pkts))
		}
		want := cfoHz * p.SymbolDuration()
		if err := math.Abs(pkts[0].CFOCycles - want); err > 1.0/16 {
			t.Errorf("cfo %g Hz: error %.4f cycles", cfoHz, err)
		}
	}
}

func TestResolveAmbiguity(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	d := NewDetector(p)
	// A CFO of 3 bins and delta 40: x1 = 43, x2 = -37 → mod 256 = 219.
	cfo, delta := d.resolveAmbiguity((43+219)/2.0, (43-219)/2.0)
	if math.Abs(cfo-3) > 1e-9 {
		t.Errorf("cfo %g, want 3", cfo)
	}
	dd := math.Mod(delta+256, 256)
	if math.Abs(dd-40) > 1e-9 {
		t.Errorf("delta %g, want 40", dd)
	}
}

func TestBinDist(t *testing.T) {
	if binDist(0, 255, 256) != 1 {
		t.Error("circular distance across wrap failed")
	}
	if binDist(10, 10, 256) != 0 {
		t.Error("zero distance failed")
	}
	if binDist(0, 128, 256) != 128 {
		t.Error("max distance failed")
	}
}

func BenchmarkDetectOnePacketTrace(b *testing.B) {
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(91))
	bl := trace.NewBuilder(p, 0.6, 1, rng)
	payload := make([]uint8, 14)
	if err := bl.AddPacket(0, 0, payload, 10000, 10, 2000, nil); err != nil {
		b.Fatal(err)
	}
	tr, _ := bl.Build()
	d := NewDetector(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pkts := d.Detect(tr.Antennas); len(pkts) != 1 {
			b.Fatalf("%d packets", len(pkts))
		}
	}
}
