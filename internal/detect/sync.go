package detect

import (
	"tnb/internal/lora"
)

// Fractional synchronization (paper §7 step 4): a 3-phase search over
// Q(δt, δf), the coherent preamble peak energy, and Q*(δt, δf), which is Q
// gated on both the upchirp and downchirp peaks sitting at bin 0.
//
// δt is measured in receiver samples and δf in cycles per symbol (the bin
// unit), both relative to the coarse estimates.

// qResult carries one evaluation of the Q function.
type qResult struct {
	energy  float64
	upBin   int
	downBin int
}

// evalQ computes Q at the hypothesis (start+δt, cfo+δf): the complex signal
// vectors of the 8 preamble upchirps are summed coherently (phase-continuous
// CFO correction) and likewise the 2 full downchirps; Q is the summed peak
// energy of both. The sums and the per-antenna spectrum live in the worker's
// scratch — evalQ runs hundreds of times per candidate, so it must not
// allocate.
func (d *Detector) evalQ(antennas [][]complex128, start, cfo, dt, df float64, rs *refineScratch) qResult {
	sym := d.p.SymbolSamples()
	upSum, downSum := rs.upSum, rs.downSum
	for i := range upSum {
		upSum[i] = 0
	}
	for i := range downSum {
		downSum[i] = 0
	}
	s0 := start + dt
	c := cfo + df
	for k := 0; k < lora.PreambleUpchirps; k++ {
		s := s0 + float64(k*sym)
		if s < 0 {
			continue
		}
		for _, ant := range antennas {
			d.demod.ComplexSignalVectorInto(rs.buf, ant, s, c, k)
			for i := range upSum {
				upSum[i] += rs.buf[i]
			}
		}
	}
	for k := 0; k < 2; k++ {
		s := s0 + float64((10+k)*sym)
		if s < 0 {
			continue
		}
		for _, ant := range antennas {
			d.demod.ComplexDownVectorInto(rs.buf, ant, s, c, 10+k)
			for i := range downSum {
				downSum[i] += rs.buf[i]
			}
		}
	}
	ub, ue := maxEnergy(upSum)
	db, de := maxEnergy(downSum)
	return qResult{energy: ue + de, upBin: ub, downBin: db}
}

// maxEnergy returns the bin and squared magnitude of the strongest element.
func maxEnergy(v []complex128) (int, float64) {
	bi, best := 0, 0.0
	for i, x := range v {
		e := real(x)*real(x) + imag(x)*imag(x)
		if e > best {
			best, bi = e, i
		}
	}
	return bi, best
}

// qStar gates Q on the peak locations: nonzero only when both the up and
// down summed peaks sit exactly at bin 0 (the paper's "location 1"). A
// looser gate would let a ±1-cycle CFO alias through, since an integer
// cycle per symbol preserves inter-symbol coherence and only shifts both
// peaks by one bin.
func (d *Detector) qStar(r qResult) float64 {
	if r.upBin == 0 && r.downBin == 0 {
		return r.energy
	}
	return 0
}

// fractionalSearch runs the paper's 3-phase search and returns the
// fractional timing (receiver samples), fractional CFO (cycles/symbol) and
// the final Q energy.
func (d *Detector) fractionalSearch(antennas [][]complex128, start, cfo float64, rs *refineScratch) (dt, df, q float64) {
	// Phase 1: δt = 0, δf from −1 to 0 in steps of 1/16; maximize Q.
	bestF, bestQ := 0.0, -1.0
	for i := 0; i <= 16; i++ {
		f := -1 + float64(i)/16
		r := d.evalQ(antennas, start, cfo, 0, f, rs)
		if r.energy > bestQ {
			bestQ, bestF = r.energy, f
		}
	}

	// Phase 2: δt swept at half-sample steps on two lines δf* and δf*+1;
	// maximize Q*, which kills the ±1-cycle CFO alias. The paper sweeps
	// δt ∈ [−1, 1]; our coarse stage quantizes the timing to half a chip
	// (OSF/2 receiver samples), so the sweep covers that full range.
	halfChip := float64(d.p.OSF) / 2
	bestT, bestF2, bestQS := 0.0, bestF, -1.0
	for _, f := range []float64{bestF, bestF + 1} {
		steps := int(4*halfChip) + 3
		for i := 0; i < steps; i++ {
			t := -halfChip - 0.5 + float64(i)/2
			r := d.evalQ(antennas, start, cfo, t, f, rs)
			if qs := d.qStar(r); qs > bestQS {
				bestQS, bestT, bestF2 = qs, t, f
			}
		}
	}
	if bestQS < 0 {
		// No hypothesis put the peaks at bin 0; fall back to the phase-1
		// estimate.
		return 0, bestF, bestQ
	}

	// Phase 3: δt from bestT−1/2 to bestT+1/2 in steps of 1/U.
	u := d.p.OSF
	finalT, finalQ := bestT, -1.0
	for i := 0; i <= u; i++ {
		t := bestT - 0.5 + float64(i)/float64(u)
		r := d.evalQ(antennas, start, cfo, t, bestF2, rs)
		if qs := d.qStar(r); qs > finalQ {
			finalQ, finalT = qs, t
		}
	}
	if finalQ < 0 {
		return bestT, bestF2, bestQS
	}
	return finalT, bestF2, finalQ
}
