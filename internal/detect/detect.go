// Package detect implements TnB's packet detection (paper §7): preamble
// discovery from repeated dechirped peaks (step 1), start-time validation
// with ±2T adjustments (step 2), coarse timing/CFO estimation from the
// upchirp and downchirp peak locations (step 3), and the 3-phase fractional
// timing/CFO search over the Q/Q* functions (step 4).
//
// Candidate refinement (steps 2–4) is embarrassingly parallel: each
// candidate's ±2T × fractional Q/Q* search touches only read-shared trace
// samples and per-worker scratch, so Detect fans refinement out across
// Workers goroutines and merges results in candidate order — the output is
// identical for every worker count.
package detect

import (
	"math"
	"sort"

	"tnb/internal/lora"
	"tnb/internal/obs"
	"tnb/internal/parallel"
	"tnb/internal/peaks"
	"tnb/internal/stats"
)

// Packet is one detected LoRa packet.
type Packet struct {
	Start     float64 // packet (preamble) start, fractional rx samples
	CFOCycles float64 // CFO in cycles per symbol
	Quality   float64 // preamble peak energy, for ordering and SNR estimates
}

// Detector finds LoRa preambles in a trace. Construct with NewDetector.
type Detector struct {
	p     lora.Params
	demod *lora.Demodulator

	// MaxCFOCycles bounds the CFO search; the paper's hardware stays
	// within ±4.88 kHz (§8.5), i.e. ±4880/BW·N cycles per symbol.
	MaxCFOCycles float64
	// MinRun is the number of consecutive windows with a stable dechirped
	// peak required to declare a preamble candidate.
	MinRun int
	// MaxPeaksPerWindow bounds the peaks tracked per detection window.
	MaxPeaksPerWindow int
	// MinPeakHeight discards detection peaks below this height (absolute,
	// in signal-vector units). Zero selects an adaptive threshold.
	MinPeakHeight float64
	// Workers caps the goroutines used by the parallel detection stages —
	// the per-window transform of the preamble scan and the candidate
	// refinement (0 → GOMAXPROCS, 1 → serial). Both stages write into
	// index-addressed slots and merge serially, so the value never changes
	// the output.
	Workers int
	// RefineStats reports the last Detect call's refinement fan-out (wall
	// and summed busy time); the receiver exports it as a speedup gauge.
	RefineStats parallel.Stats
	// ScanStats reports the last Detect call's per-window scan fan-out.
	ScanStats parallel.Stats
	// Trace, when non-nil, receives one event per preamble candidate:
	// accepted with the refined estimates, or rejected with the reason.
	Trace *obs.Tracer
	// CFOBiasCycles is a fault-injection hook: it is added to every
	// refined packet's CFO estimate, corrupting downstream dechirping the
	// way a wrong sync lock would. Used by the failure-attribution tests;
	// zero in production.
	CFOBiasCycles float64

	scanPeaks     [][]peaks.Peak      // per-window peak slots, reused across calls
	scanScratches []*scanScratch      // per-worker scan state, reused across calls
	scanFn        func(w, lo, hi int) // bound scan worker, created once so the
	// fan-out does not allocate a fresh closure per call
	scanAnts     [][]complex128   // scan call arguments, set around the fan-out
	refScratches []*refineScratch // per-worker refine state, reused across calls
	runPrev      []runState       // trackRuns generations, reused across calls
	runCur       []runState
	runPrevStamp []int32
	runCurStamp  []int32
	cands        []candidate // candidate buffer, reused across calls
}

// NewDetector builds a detector with the paper's defaults.
func NewDetector(p lora.Params) *Detector {
	return &Detector{
		p:                 p,
		demod:             lora.NewDemodulator(p),
		MaxCFOCycles:      4880.0 / p.Bandwidth * float64(p.N()),
		MinRun:            5,
		MaxPeaksPerWindow: 8,
	}
}

// Demodulator exposes the detector's demodulator so downstream stages reuse
// its FFT plan and reference chirps.
func (d *Detector) Demodulator() *lora.Demodulator { return d.demod }

// candidate is a raw preamble hit before refinement.
type candidate struct {
	window int // grid window index where the run completed
	bin    int // stable up-peak bin
	height float64
}

// refineScratch is one worker's reusable buffers for steps 2–4: the
// accumulators refine and validatePreamble used to allocate per window and
// per hypothesis, the coherent sums of evalQ, and the median scratch of
// peakNearZero.
type refineScratch struct {
	acc     []float64    // summed signal vector (validate + down location)
	y       []float64    // per-antenna magnitude vector
	buf     []complex128 // dechirp/FFT buffer
	upSum   []complex128 // coherent preamble sum (evalQ)
	downSum []complex128 // coherent downchirp sum (evalQ)
	med     []float64    // MedianScratch working space, 2n for the distribute path
}

func (d *Detector) newRefineScratch() *refineScratch {
	n := d.p.N()
	return &refineScratch{
		acc:     make([]float64, n),
		y:       make([]float64, n),
		buf:     make([]complex128, n),
		upSum:   make([]complex128, n),
		downSum: make([]complex128, n),
		med:     make([]float64, 2*n),
	}
}

// Detect scans the trace (all antennas, signal vectors summed) and returns
// the refined packets sorted by start time.
func (d *Detector) Detect(antennas [][]complex128) []Packet {
	if len(antennas) == 0 || len(antennas[0]) == 0 {
		return nil
	}
	cands := d.scanPreambles(antennas)

	type refined struct {
		pkt    Packet
		reject string
	}
	results := make([]refined, len(cands))
	maxWorkers := parallel.Workers(d.Workers)
	if maxWorkers > len(cands) {
		maxWorkers = len(cands)
	}
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	for len(d.refScratches) < maxWorkers {
		d.refScratches = append(d.refScratches, nil)
	}
	d.RefineStats = parallel.ForEach(d.Workers, len(cands), func(w, i int) {
		if d.refScratches[w] == nil {
			d.refScratches[w] = d.newRefineScratch()
		}
		pkt, reject := d.refine(antennas, cands[i], d.refScratches[w])
		results[i] = refined{pkt: pkt, reject: reject}
	})

	// Merge in candidate order: trace events and the packet list are
	// byte-identical to the serial path regardless of scheduling.
	var pkts []Packet
	for i, c := range cands {
		r := results[i]
		if r.reject != "" {
			d.Trace.OnDetect(obs.DetectEvent{Window: c.window, Bin: c.bin, Reason: r.reject})
			continue
		}
		pkt := r.pkt
		pkt.CFOCycles += d.CFOBiasCycles
		d.Trace.OnDetect(obs.DetectEvent{Window: c.window, Bin: c.bin, Accepted: true,
			Start: pkt.Start, CFOCycles: pkt.CFOCycles})
		pkts = append(pkts, pkt)
	}
	pkts = dedup(pkts, float64(d.p.SymbolSamples())/2)
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].Start < pkts[j].Start })
	return pkts
}

// scanBatchRows is the number of consecutive windows a scan worker
// transforms per ScanKernel call: enough rows to amortize the batched FFT's
// per-call work while the batch (rows·N complex samples plus two rows·N
// float stacks) stays cache-resident.
const scanBatchRows = 8

// scanScratch is one scan worker's reusable state for the window transform:
// the batched scan kernel, the batch accumulator, the per-antenna batch
// vector (multi-antenna traces only) and the median scratch of the adaptive
// selectivity.
type scanScratch struct {
	kernel *lora.ScanKernel
	accb   []float64 // summed batch, scanBatchRows·n
	yb     []float64 // per-antenna batch, allocated on first multi-antenna use
	med    []float64 // MedianScratch working space, 2n for the distribute path
	// lastMed seeds the next window's median selection: neighboring windows
	// share a noise floor, so the previous median splits the distribute at
	// the rank error. A stale or useless seed only costs speed — the
	// selection returns the exact median under any pivot — so it never
	// resets, not even across traces.
	lastMed float64
}

func (d *Detector) newScanScratch() *scanScratch {
	n := d.p.N()
	return &scanScratch{
		kernel: d.demod.NewScanKernel(),
		accb:   make([]float64, scanBatchRows*n),
		med:    make([]float64, 2*n),
	}
}

// scanPreambles is step 1: windows of one symbol slide over the trace;
// a peak persisting across MinRun consecutive windows marks a preamble.
//
// The per-window work — dechirp + FFT per antenna, the median-based
// selectivity and the peak search — touches only the read-shared trace and
// per-worker scratch, so it fans out across workers. Each worker owns one
// contiguous window range (per-window hand-off measured slower than the
// serial scan at 4 workers: the per-item cursor and slot-neighbor cache
// traffic cost more than a window's work) and walks it in batches of
// scanBatchRows windows through the fused ScanKernel. Results land in
// window-indexed slots; every batch row is bit-identical to the
// SignalVectorInto path, so chunk and batch boundaries never change the
// output. The run-tracking pass that strings peaks into preamble candidates
// is inherently sequential (window g's runs extend window g−1's) and walks
// the slots serially in window order, so the candidate list is
// byte-identical at every pool width.
func (d *Detector) scanPreambles(antennas [][]complex128) []candidate {
	n := d.p.N()
	sym := d.p.SymbolSamples()
	nwin := len(antennas[0]) / sym
	if nwin == 0 {
		return nil
	}

	if cap(d.scanPeaks) < nwin {
		sp := make([][]peaks.Peak, nwin)
		copy(sp, d.scanPeaks)
		d.scanPeaks = sp
	}
	winPeaks := d.scanPeaks[:nwin]
	// Fan out over whole batches, not windows, so every worker's range is
	// batch-aligned and only the final batch of the whole scan can be
	// partial — otherwise each worker ends its range on a short kernel
	// call, an overhead that grows with the pool width.
	nbat := (nwin + scanBatchRows - 1) / scanBatchRows
	maxWorkers := parallel.Workers(d.Workers)
	if maxWorkers > nbat {
		maxWorkers = nbat
	}
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	for len(d.scanScratches) < maxWorkers {
		d.scanScratches = append(d.scanScratches, nil)
	}
	if d.scanFn == nil {
		d.scanFn = d.scanWorker
	}
	d.scanAnts = antennas
	d.ScanStats = parallel.ForEachChunks(d.Workers, nbat, d.scanFn)
	d.scanAnts = nil

	return d.trackRuns(winPeaks, n)
}

// scanWorker transforms the scan windows of batch range [blo, bhi) into
// d.scanPeaks slots, scanBatchRows consecutive windows per kernel call. It
// reads its call arguments from d.scanAnts (set by scanPreambles around the
// fan-out) so the bound d.scanFn closure is created once instead of per
// call.
func (d *Detector) scanWorker(w, blo, bhi int) {
	n := d.p.N()
	sym := d.p.SymbolSamples()
	antennas := d.scanAnts
	nwin := len(antennas[0]) / sym
	lo, hi := blo*scanBatchRows, bhi*scanBatchRows
	if hi > nwin {
		hi = nwin
	}
	sc := d.scanScratches[w]
	if sc == nil {
		sc = d.newScanScratch()
		d.scanScratches[w] = sc
	}
	for g0 := lo; g0 < hi; g0 += scanBatchRows {
		rows := hi - g0
		if rows > scanBatchRows {
			rows = scanBatchRows
		}
		acc := sc.accb[:rows*n]
		sc.kernel.UpVectorsInto(acc, antennas[0], g0*sym, sym, rows)
		for _, ant := range antennas[1:] {
			if sc.yb == nil {
				sc.yb = make([]float64, scanBatchRows*n)
			}
			y := sc.yb[:rows*n]
			sc.kernel.UpVectorsInto(y, ant, g0*sym, sym, rows)
			for i := range acc {
				acc[i] += y[i]
			}
		}
		for r := 0; r < rows; r++ {
			row := acc[r*n : (r+1)*n]
			// Selectivity tied to the noise floor (median bin) rather
			// than the window's range, so a weak preamble is tracked
			// next to a much stronger collider.
			g := g0 + r
			if sel := d.MinPeakHeight; sel != 0 {
				d.scanPeaks[g] = peaks.FindInto(d.scanPeaks[g], row, sel, d.MaxPeaksPerWindow)
			} else {
				med, rot := stats.MedianArgMin(row, sc.med, sc.lastMed)
				sc.lastMed = med
				if sel = 6 * med; sel > 0 {
					d.scanPeaks[g] = peaks.FindIntoAt(d.scanPeaks[g], row, sel, d.MaxPeaksPerWindow, rot)
				} else {
					// Degenerate window (median 0 or NaN): keep FindInto's
					// default-selectivity handling.
					d.scanPeaks[g] = peaks.FindInto(d.scanPeaks[g], row, sel, d.MaxPeaksPerWindow)
				}
			}
		}
	}
}

// runState is one bin's active run of consecutive-window peaks.
type runState struct {
	count   int
	height  float64
	emitted bool
}

// trackRuns strings the per-window peak lists into preamble candidates: a
// peak within ±1 bin of a peak in the previous window extends that run, and
// a run reaching MinRun windows emits a candidate once. The two generations
// (previous and current window) live in slice-backed rings keyed by bin with
// a window stamp marking live entries, so the tracking allocates nothing per
// window — the stamp check replaces both the map lookups and the per-window
// map churn.
func (d *Detector) trackRuns(winPeaks [][]peaks.Peak, n int) []candidate {
	if cap(d.runPrev) < n {
		d.runPrev, d.runCur = make([]runState, n), make([]runState, n)
		d.runPrevStamp, d.runCurStamp = make([]int32, n), make([]int32, n)
	}
	prev, cur := d.runPrev[:n], d.runCur[:n]
	prevStamp, curStamp := d.runPrevStamp[:n], d.runCurStamp[:n]
	for i := range prevStamp {
		prevStamp[i] = -1
		curStamp[i] = -1
	}

	cands := d.cands[:0]
	for g, ps := range winPeaks {
		for _, pk := range ps {
			best := (*runState)(nil)
			for _, db := range []int{0, -1, 1} {
				b := (pk.Bin + db + n) % n
				if prevStamp[b] == int32(g)-1 {
					if st := &prev[b]; best == nil || st.count > best.count {
						best = st
					}
				}
			}
			st := runState{count: 1, height: pk.Height}
			if best != nil {
				st.count = best.count + 1
				st.height = math.Max(best.height, pk.Height)
				st.emitted = best.emitted
			}
			stored := false
			if curStamp[pk.Bin] != int32(g) || st.count > cur[pk.Bin].count {
				cur[pk.Bin] = st
				curStamp[pk.Bin] = int32(g)
				stored = true
			}
			if st.count >= d.MinRun && !st.emitted {
				if stored {
					cur[pk.Bin].emitted = true
				}
				cands = append(cands, candidate{window: g, bin: pk.Bin, height: st.height})
			}
		}
		prev, cur = cur, prev
		prevStamp, curStamp = curStamp, prevStamp
	}
	d.cands = cands
	return cands
}

// refine runs steps 2–4 for one candidate and returns the packet estimate;
// a non-empty reject reason means the candidate was discarded. It touches
// only the read-shared trace and its own scratch, so candidates refine
// concurrently.
func (d *Detector) refine(antennas [][]complex128, c candidate, rs *refineScratch) (Packet, string) {
	n := d.p.N()
	sym := d.p.SymbolSamples()
	acc := rs.acc

	// Locate the downchirp: windows shortly after the run completion
	// should contain the 2.25 downchirps (the run completes MinRun
	// windows into the 8 upchirps, so the downchirps start 3–7 windows
	// later). Pick the window/bin with maximum down-dechirped energy.
	bestE, bestBin, bestWin := 0.0, 0, -1
	for g := c.window + 1; g <= c.window+8; g++ {
		start := float64(g * sym)
		if int(start)+sym >= len(antennas[0]) {
			break
		}
		for i := range acc {
			acc[i] = 0
		}
		for _, ant := range antennas {
			d.demod.DownSignalVectorInto(rs.y, rs.buf, ant, start, 0, 0)
			for i := range acc {
				acc[i] += rs.y[i]
			}
		}
		bi := peaks.HighestBin(acc)
		if acc[bi] > bestE {
			bestE, bestBin, bestWin = acc[bi], bi, g
		}
	}
	if bestWin < 0 {
		return Packet{}, "no_downchirp"
	}

	// Step 3: coarse timing and CFO from x1 (up peak) and x2 (down peak):
	// x1 = δ + c, x2 = c − δ (mod N), with δ the window offset in chips
	// and c the CFO in cycles/symbol. The N/2 ambiguity is resolved by
	// the CFO bound.
	x1, x2 := float64(c.bin), float64(bestBin)
	cfo := math.Mod((x1+x2)/2, float64(n))
	delta := math.Mod((x1-x2)/2, float64(n))
	cfo, delta = d.resolveAmbiguity(cfo, delta)
	if math.Abs(cfo) > d.MaxCFOCycles+2 {
		return Packet{}, "cfo_out_of_bounds"
	}

	// Anchor: the max-energy down window overlaps the downchirp section,
	// which starts 10 symbols after the preamble start.
	if delta < 0 {
		delta += float64(n)
	}
	start := float64(bestWin*sym) - delta*float64(d.p.OSF) - float64(10*sym)

	// Step 2: test adjustments of -2T..2T; every adjustment that passes
	// preamble validation is refined by the step-4 fractional search, and
	// the hypothesis with the highest gated energy Q* wins. Selecting on
	// Q* rather than the raw validation score disambiguates aliases under
	// collisions, where a foreign packet can inflate the validation
	// energy of a misaligned hypothesis.
	var best Packet
	found := false
	for adj := -2; adj <= 2; adj++ {
		s := start + float64(adj*sym)
		if s < -float64(sym) {
			continue
		}
		if _, ok := d.validatePreamble(antennas, s, cfo, rs); !ok {
			continue
		}
		ft, fc, q := d.fractionalSearch(antennas, s, cfo, rs)
		if !found || q > best.Quality {
			best = Packet{Start: s + ft, CFOCycles: cfo + fc, Quality: q}
			found = true
		}
	}
	if !found || math.Abs(best.CFOCycles) > d.MaxCFOCycles+2 {
		return Packet{}, "no_valid_start"
	}
	return best, ""
}

// resolveAmbiguity maps (cfo, delta) into the canonical range: cfo into
// (−N/2, N/2] and then, if the CFO bound is violated, shifts both by N/2
// (the inherent half-period ambiguity of the x1/x2 system).
func (d *Detector) resolveAmbiguity(cfo, delta float64) (float64, float64) {
	n := float64(d.p.N())
	norm := func(v float64) float64 {
		v = math.Mod(v, n)
		if v > n/2 {
			v -= n
		}
		if v <= -n/2 {
			v += n
		}
		return v
	}
	cfo = norm(cfo)
	if math.Abs(cfo) > d.MaxCFOCycles+2 {
		cfo = norm(cfo + n/2)
		delta += n / 2
	}
	return cfo, math.Mod(delta, n)
}

// validatePreamble checks that a hypothesized start time produces upchirp
// peaks at the expected location in most preamble symbols and a downchirp
// peak at the matching location, returning the total peak energy.
func (d *Detector) validatePreamble(antennas [][]complex128, start, cfo float64, rs *refineScratch) (float64, bool) {
	sym := d.p.SymbolSamples()
	acc := rs.acc
	hits, total := 0, 0
	var energy float64
	for k := 0; k < lora.PreambleUpchirps; k++ {
		s := start + float64(k*sym)
		if s < 0 || int(s)+sym >= len(antennas[0]) {
			continue
		}
		total++
		for i := range acc {
			acc[i] = 0
		}
		for _, ant := range antennas {
			d.demod.SignalVectorInto(rs.y, rs.buf, ant, s, cfo, k)
			for i := range acc {
				acc[i] += rs.y[i]
			}
		}
		if e, ok := peakNearZero(acc, rs.med); ok {
			hits++
			energy += e
		}
	}
	if total < 4 || hits < total-2 {
		return 0, false
	}
	// Downchirp check at start + 10T.
	s := start + float64(10*sym)
	if int(s)+sym < len(antennas[0]) && s >= 0 {
		for i := range acc {
			acc[i] = 0
		}
		for _, ant := range antennas {
			d.demod.DownSignalVectorInto(rs.y, rs.buf, ant, s, cfo, 10)
			for i := range acc {
				acc[i] += rs.y[i]
			}
		}
		e, ok := peakNearZero(acc, rs.med)
		if !ok {
			return 0, false
		}
		energy += e
	}
	return energy, true
}

// peakNearZero checks for a substantial peak within ±2 bins of bin 0. A
// stronger collider may own the global maximum of a preamble window, so the
// test is local: the neighborhood value must stand well above the noise
// floor (median bin, read without copying via the caller's scratch).
func peakNearZero(acc, med []float64) (float64, bool) {
	n := len(acc)
	best := 0.0
	for db := -2; db <= 2; db++ {
		if v := acc[(db+n)%n]; v > best {
			best = v
		}
	}
	floor := stats.MedianScratch(acc, med)
	if floor <= 0 {
		return best, best > 0
	}
	return best, best >= 8*floor
}

// binDist is the circular distance between two bin positions.
func binDist(a, b float64, n int) float64 {
	d := math.Abs(math.Mod(a-b, float64(n)))
	if d > float64(n)/2 {
		d = float64(n) - d
	}
	return d
}

func dedup(pkts []Packet, tol float64) []Packet {
	var out []Packet
	for _, p := range pkts {
		dup := false
		for i, o := range out {
			if math.Abs(p.Start-o.Start) < tol {
				dup = true
				if p.Quality > o.Quality {
					out[i] = p
				}
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}
