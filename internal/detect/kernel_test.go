package detect

import (
	"fmt"
	"math/rand"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/trace"
)

// buildScanTrace synthesizes the colliding multi-packet trace the scan and
// sync kernels are tested and benchmarked on.
func buildScanTrace(tb testing.TB, p lora.Params, seed int64) *trace.Trace {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(p, 1.2, 1, rng)
	starts := b.ScheduleUniform(4, 14)
	for i, s := range starts {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := b.AddPacket(i, 0, payload, s, 12, -2500+float64(i)*1500, nil); err != nil {
			tb.Fatal(err)
		}
	}
	tr, _ := b.Build()
	return tr
}

// TestScanPreamblesDeterministicAcrossWorkerCounts pins the contract of the
// parallel per-window scan: the candidate list (windows, bins, run heights,
// order) is identical at every pool width, because the window transforms
// land in indexed slots and the run tracking walks them serially.
func TestScanPreamblesDeterministicAcrossWorkerCounts(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	for _, seed := range []int64{7, 19} {
		tr := buildScanTrace(t, p, seed)
		ref := func(workers int) []candidate {
			d := NewDetector(p)
			d.Workers = workers
			return d.scanPreambles(tr.Antennas)
		}
		serial := ref(1)
		if len(serial) == 0 {
			t.Fatalf("seed %d: serial scan found no candidates", seed)
		}
		for _, workers := range []int{2, 3, 8, 0} {
			got := ref(workers)
			if len(got) != len(serial) {
				t.Fatalf("seed %d workers=%d: %d candidates, serial found %d",
					seed, workers, len(got), len(serial))
			}
			for i := range got {
				if got[i] != serial[i] {
					t.Errorf("seed %d workers=%d: candidate %d = %+v, serial %+v",
						seed, workers, i, got[i], serial[i])
				}
			}
		}
	}
}

// TestScanPreamblesScratchReuse runs the same detector over traces of
// different lengths to exercise the reused per-window peak slots.
func TestScanPreamblesScratchReuse(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr := buildScanTrace(t, p, 7)
	d := NewDetector(p)
	full := d.scanPreambles(tr.Antennas)
	// A shorter view of the same trace must agree with a fresh detector.
	short := [][]complex128{tr.Antennas[0][:len(tr.Antennas[0])/2]}
	got := d.scanPreambles(short)
	want := NewDetector(p).scanPreambles(short)
	if len(got) != len(want) {
		t.Fatalf("reused detector found %d candidates, fresh %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("candidate %d: reused %+v vs fresh %+v", i, got[i], want[i])
		}
	}
	// And re-scanning the full trace still reproduces the first result.
	again := d.scanPreambles(tr.Antennas)
	if len(again) != len(full) {
		t.Fatalf("rescan found %d candidates, first scan %d", len(again), len(full))
	}
}

// BenchmarkScanPreambles measures detection step 1 — the last serial stage
// before this PR — across pool widths.
func BenchmarkScanPreambles(b *testing.B) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr := buildScanTrace(b, p, 7)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			d := NewDetector(p)
			d.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if cands := d.scanPreambles(tr.Antennas); len(cands) == 0 {
					b.Fatal("no candidates")
				}
			}
		})
	}
}

// BenchmarkEvalQ measures one Q evaluation — the unit of the §7 fractional
// search, run hundreds of times per candidate — at a detection-like
// fractional start with a nonzero CFO hypothesis.
func BenchmarkEvalQ(b *testing.B) {
	p := lora.MustParams(8, 4, 125e3, 8)
	tr := buildScanTrace(b, p, 7)
	d := NewDetector(p)
	rs := d.newRefineScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := d.evalQ(tr.Antennas, 20000.37, -1.8, 0.25, -0.3, rs)
		if r.energy <= 0 {
			b.Fatal("no energy")
		}
	}
}
