package sim

import (
	"runtime"
	"sync"
)

// Job is one (config, scheme) evaluation in a batch.
type Job struct {
	Config Config
	Scheme Scheme
}

// JobResult pairs a job with its outcome.
type JobResult struct {
	Job    Job
	Result Result
	Err    error
}

// RunBatch evaluates the jobs concurrently on up to workers goroutines
// (0 → GOMAXPROCS) and returns results in job order. Each job generates
// its own trace, so jobs are fully independent; traces sharing a seed and
// config still produce identical transmissions, preserving the paper's
// shared-trace methodology when callers reuse (Config, differing Scheme)
// pairs.
func RunBatch(jobs []Job, workers int) []JobResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			res, err := Run(j.Config, j.Scheme)
			results[i] = JobResult{Job: j, Result: res, Err: err}
		}
		return results
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				res, err := Run(j.Config, j.Scheme)
				results[i] = JobResult{Job: j, Result: res, Err: err}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}
