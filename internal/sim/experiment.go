package sim

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"tnb/internal/baseline"
	"tnb/internal/channel"
	"tnb/internal/core"
	"tnb/internal/lora"
	"tnb/internal/obs"
	"tnb/internal/thrive"
	"tnb/internal/trace"
)

// tracer, when set, is handed to every TnB-family receiver runScheme
// builds, so offline figure runs export the same per-packet decode traces
// as a live gateway (tnbsim -trace-out). Baseline schemes (CIC, LoRaPHY,
// mLoRa, Choir) do not run the TnB pipeline and emit no traces.
var tracer *obs.Tracer

// SetTracer installs the process-wide experiment tracer. Call before the
// figure runs; not safe to change mid-run.
func SetTracer(t *obs.Tracer) { tracer = t }

// workers is the per-receiver worker-pool width handed to every TnB-family
// receiver runScheme builds (core.Config.Workers semantics: 0 → GOMAXPROCS,
// 1 → serial). Figure runs already fan out across runs and loads, so CLI
// users typically set 1 here and let ParallelRuns own the cores.
var workers int

// SetWorkers installs the process-wide per-receiver pool width. Call before
// the figure runs; not safe to change mid-run.
func SetWorkers(n int) { workers = n }

// Scheme identifies one decoder under test (paper §8.2, §8.4, §8.5).
type Scheme int

const (
	SchemeTnB        Scheme = iota // Thrive + BEC
	SchemeThrive                   // Thrive + default decoder (§8.4)
	SchemeSibling                  // sibling cost only + default decoder
	SchemeAlignTrack               // AlignTrack* + default decoder
	SchemeAlignTrackBEC
	SchemeCIC
	SchemeCICBEC
	SchemeLoRaPHY
	SchemeTnB2Ant // TnB with two receive antennas (§8.5)
	SchemeMLoRa   // successive interference cancellation (related work §2)
	SchemeChoir   // fractional-CFO peak matching (related work §2)
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case SchemeTnB:
		return "TnB"
	case SchemeThrive:
		return "Thrive"
	case SchemeSibling:
		return "Sibling"
	case SchemeAlignTrack:
		return "AlignTrack*"
	case SchemeAlignTrackBEC:
		return "AlignTrack*+"
	case SchemeCIC:
		return "CIC"
	case SchemeCICBEC:
		return "CIC+"
	case SchemeLoRaPHY:
		return "LoRaPHY"
	case SchemeMLoRa:
		return "mLoRa"
	case SchemeChoir:
		return "Choir"
	case SchemeTnB2Ant:
		return "TnB2ant"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Antennas returns the receive-antenna count the scheme uses.
func (s Scheme) Antennas() int {
	if s == SchemeTnB2Ant {
		return 2
	}
	return 1
}

// Config describes one experiment run (one trace).
type Config struct {
	Deployment Deployment
	SF, CR     int
	// LoadPktPerSec is the aggregate network traffic load (paper: 5–25).
	LoadPktPerSec float64
	// DurationSec is the trace length (paper: 30 s; tests use less).
	DurationSec float64
	// PayloadLen in bytes before the 16-bit CRC (paper: 16 bytes on air
	// including CRC → 14 here). 0 defaults to 14.
	PayloadLen int
	// ETU enables the LTE ETU fading channel with 5 Hz Doppler (§8.5).
	ETU bool
	// Seed makes the run reproducible; the trace depends only on the
	// seed and config, never on the scheme.
	Seed int64
}

func (c Config) params() lora.Params {
	return lora.MustParams(c.SF, c.CR, 125e3, 8)
}

func (c Config) payloadLen() int {
	if c.PayloadLen == 0 {
		return 14
	}
	return c.PayloadLen
}

// GroundTruth is the generated scenario for one run.
type GroundTruth struct {
	Trace   *trace.Trace
	Records []trace.TxRecord
	Params  lora.Params
}

// Generate builds the trace for a config with the given antenna count.
// The same seed and config produce the same transmissions regardless of
// antennas, so schemes compare on identical traffic.
func Generate(cfg Config, antennas int) (*GroundTruth, error) {
	p := cfg.params()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := trace.NewBuilder(p, cfg.DurationSec, antennas, rng)

	snrs := cfg.Deployment.NodeSNRs(rng)
	cfos := make([]float64, cfg.Deployment.Nodes)
	for i := range cfos {
		cfos[i] = -4880 + 2*4880*rng.Float64()
	}

	nPackets := int(cfg.LoadPktPerSec * cfg.DurationSec)
	starts := b.ScheduleUniform(nPackets, cfg.payloadLen())
	var fs float64 = p.SampleRate()
	seqPerNode := map[int]int{}
	for _, s := range starts {
		node := rng.Intn(cfg.Deployment.Nodes)
		seq := seqPerNode[node]
		seqPerNode[node]++
		payload := MakePayload(node, seq, cfg.payloadLen())

		var chans []channel.Model
		if cfg.ETU {
			chans = make([]channel.Model, antennas)
			for a := range chans {
				chans[a] = channel.NewFading(channel.ETUProfile, 5, fs,
					rand.New(rand.NewSource(cfg.Seed^int64(node*131+a*7+1))))
			}
		}
		if err := b.AddPacket(node, seq, payload, s, snrs[node], cfos[node], chans); err != nil {
			return nil, err
		}
	}
	tr, recs := b.Build()
	return &GroundTruth{Trace: tr, Records: recs, Params: p}, nil
}

// MakePayload builds the experiment payload: 2-byte node ID, 2-byte
// sequence number, filler (paper §8.1: node ID and sequence number are
// embedded in the data).
func MakePayload(node, seq, n int) []uint8 {
	p := make([]uint8, n)
	if n >= 4 {
		binary.BigEndian.PutUint16(p[0:2], uint16(node))
		binary.BigEndian.PutUint16(p[2:4], uint16(seq))
	}
	for i := 4; i < n; i++ {
		p[i] = uint8(0xA5 ^ i ^ node ^ seq)
	}
	return p
}

// decodedPacket is the scheme-independent view of a decode.
type decodedPacket struct {
	payload []uint8
	start   float64
	snrdB   float64
	rescued int
	pass    int
	hasSNR  bool
}

// runScheme decodes the trace with the scheme.
func runScheme(s Scheme, gt *GroundTruth, cfg Config) []decodedPacket {
	p := gt.Params
	var out []decodedPacket
	switch s {
	case SchemeTnB, SchemeThrive, SchemeSibling, SchemeAlignTrack, SchemeAlignTrackBEC, SchemeTnB2Ant:
		// Record into the process-wide pipeline instruments so offline
		// simulations share the live gateway's metrics schema (dumped by
		// tnbsim -metrics-out). Atomic counters: safe under ParallelRuns.
		rc := core.Config{Params: p, UseBEC: true, Seed: cfg.Seed,
			Workers: workers, Metrics: core.DefaultPipelineMetrics(), Tracer: tracer}
		switch s {
		case SchemeThrive:
			rc.UseBEC = false
		case SchemeSibling:
			rc.UseBEC = false
			rc.Policy = thrive.PolicySibling
		case SchemeAlignTrack:
			rc.UseBEC = false
			rc.Policy = thrive.PolicyAlignTrack
		case SchemeAlignTrackBEC:
			rc.Policy = thrive.PolicyAlignTrack
		}
		r := core.NewReceiver(rc)
		for _, d := range r.Decode(gt.Trace) {
			out = append(out, decodedPacket{payload: d.Payload, start: d.Start,
				snrdB: d.SNRdB, rescued: d.Rescued, pass: d.Pass, hasSNR: true})
		}
	case SchemeCIC, SchemeCICBEC:
		c := baseline.NewCIC(baseline.Config{Params: p, UseBEC: s == SchemeCICBEC, Seed: cfg.Seed})
		for _, d := range c.Decode(gt.Trace) {
			out = append(out, decodedPacket{payload: d.Payload, start: d.Start})
		}
	case SchemeLoRaPHY:
		l := baseline.NewLoRaPHY(baseline.Config{Params: p, Seed: cfg.Seed})
		for _, d := range l.Decode(gt.Trace) {
			out = append(out, decodedPacket{payload: d.Payload, start: d.Start})
		}
	case SchemeMLoRa:
		ml := baseline.NewMLoRa(baseline.Config{Params: p, Seed: cfg.Seed})
		for _, d := range ml.Decode(gt.Trace) {
			out = append(out, decodedPacket{payload: d.Payload, start: d.Start})
		}
	case SchemeChoir:
		ch := baseline.NewChoir(baseline.Config{Params: p, Seed: cfg.Seed})
		for _, d := range ch.Decode(gt.Trace) {
			out = append(out, decodedPacket{payload: d.Payload, start: d.Start})
		}
	}
	return out
}
