package sim

import (
	"bytes"
	"strings"
	"testing"
)

func tinyScale() FigureScale {
	return FigureScale{DurationSec: 1.0, Runs: 1, Loads: []float64{6}, Nodes: 4}
}

func TestFigThroughputSharedTrace(t *testing.T) {
	schemes := []Scheme{SchemeTnB, SchemeLoRaPHY}
	series, err := FigThroughput(Indoor, 8, 4, schemes, tinyScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 1 {
			t.Fatalf("%d points", len(s.Points))
		}
		if s.Points[0].Load != 6 {
			t.Errorf("load %g", s.Points[0].Load)
		}
	}
	if series[0].Points[0].Throughput < series[1].Points[0].Throughput {
		t.Error("TnB below LoRaPHY on a collided trace")
	}
}

func TestFigSNRCDFProducesSamples(t *testing.T) {
	cdf, err := FigSNRCDF(Indoor, 8, tinyScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Len() == 0 {
		t.Error("no SNR samples")
	}
}

func TestFigMediumUsageNonNegative(t *testing.T) {
	usage, err := FigMediumUsage(Indoor, 8, tinyScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(usage) == 0 {
		t.Fatal("no usage bins")
	}
	for _, u := range usage {
		if u < 0 {
			t.Error("negative usage")
		}
	}
}

func TestFigRescuedCDF(t *testing.T) {
	cdf, err := FigRescuedCDF(Indoor, 8, 3, tinyScale(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Rescued counts are non-negative by construction.
	if cdf.Len() > 0 && cdf.At(-1) != 0 {
		t.Error("negative rescued counts present")
	}
}

func TestFigPRRvsSNRBuckets(t *testing.T) {
	buckets, err := FigPRRvsSNR(Indoor, 8, 4, tinyScale(), 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range buckets {
		if b.PRRTnB < 0 || b.PRRTnB > 1 || b.PRRCIC < 0 || b.PRRCIC > 1 {
			t.Errorf("PRR outside [0,1]: %+v", b)
		}
		total += b.Packets
	}
	if total == 0 {
		t.Error("no packets bucketed")
	}
}

func TestFigCollisionLevelsDistribution(t *testing.T) {
	dist, err := FigCollisionLevels(Indoor, 8, tinyScale(), 6)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for l, f := range dist {
		if l < 0 || f < 0 {
			t.Errorf("bad entry %d:%g", l, f)
		}
		sum += f
	}
	if len(dist) > 0 && (sum < 0.99 || sum > 1.01) {
		t.Errorf("distribution sums to %g", sum)
	}
}

func TestFigETUAllSchemes(t *testing.T) {
	schemes := []Scheme{SchemeCIC, SchemeTnB, SchemeTnB2Ant}
	scale := tinyScale()
	scale.Loads = []float64{4}
	prr, err := FigETU(8, 3, schemes, scale, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range schemes {
		v, ok := prr[s]
		if !ok {
			t.Errorf("scheme %v missing", s)
		}
		if v < 0 || v > 1 {
			t.Errorf("scheme %v PRR %g", s, v)
		}
	}
}

func TestPrintHelpers(t *testing.T) {
	var buf bytes.Buffer
	PrintThroughput(&buf, []ThroughputSeries{
		{Scheme: SchemeTnB, Points: []ThroughputPoint{{Load: 5, Throughput: 4.5}}},
	})
	out := buf.String()
	if !strings.Contains(out, "TnB") || !strings.Contains(out, "4.50") {
		t.Errorf("throughput table output: %q", out)
	}
	buf.Reset()
	PrintDistribution(&buf, map[int]float64{2: 0.5, 0: 0.25})
	out = buf.String()
	if !strings.Contains(out, "level  0") || !strings.Contains(out, "50.0%") {
		t.Errorf("distribution output: %q", out)
	}
	buf.Reset()
	PrintThroughput(&buf, nil)
	if buf.Len() != 0 {
		t.Error("empty series should print nothing")
	}
}

func TestScaleHelpers(t *testing.T) {
	d := DefaultScale()
	if len(d.Loads) != 5 || d.Loads[4] != 25 {
		t.Error("default loads must match the paper")
	}
	b := BenchScale()
	if b.DurationSec >= d.DurationSec {
		t.Error("bench scale should be smaller")
	}
	dep := b.deployment(Indoor)
	if dep.Nodes != b.Nodes {
		t.Error("node override failed")
	}
	var zero FigureScale
	if zero.deployment(Indoor).Nodes != Indoor.Nodes {
		t.Error("zero scale must keep deployment nodes")
	}
}

func TestRunBatchOrderAndParity(t *testing.T) {
	cfg := Config{
		Deployment:    Deployment{Name: "batch", Nodes: 4, MeanDB: 12, SpreadDB: 3, MinDB: 5, MaxDB: 20},
		SF:            8,
		CR:            4,
		LoadPktPerSec: 4,
		DurationSec:   1.0,
		Seed:          42,
	}
	jobs := []Job{
		{Config: cfg, Scheme: SchemeTnB},
		{Config: cfg, Scheme: SchemeLoRaPHY},
		{Config: cfg, Scheme: SchemeTnB}, // duplicate: must match job 0
	}
	par := RunBatch(jobs, 3)
	seq := RunBatch(jobs, 1)
	for i := range jobs {
		if par[i].Err != nil || seq[i].Err != nil {
			t.Fatalf("job %d errored: %v %v", i, par[i].Err, seq[i].Err)
		}
		if par[i].Result.Decoded != seq[i].Result.Decoded {
			t.Errorf("job %d: parallel %d vs sequential %d decodes",
				i, par[i].Result.Decoded, seq[i].Result.Decoded)
		}
		if par[i].Job.Scheme != jobs[i].Scheme {
			t.Errorf("job %d: result order scrambled", i)
		}
	}
	if par[0].Result.Decoded != par[2].Result.Decoded {
		t.Error("identical jobs gave different results")
	}
	if out := RunBatch(nil, 4); len(out) != 0 {
		t.Error("empty batch should give empty results")
	}
}
