// Package sim is the evaluation harness: it reproduces the paper's
// experiments (§8) on synthetic traces. Deployments model the three
// testbeds' per-node SNR populations (Fig. 10); the runner generates
// traffic at a configured load, feeds every scheme exactly the same trace,
// and scores decoders against the ground truth.
package sim

import (
	"math"
	"math/rand"
)

// Deployment describes one testbed: a node population with an SNR
// distribution shaped like the paper's Fig. 10 CDFs.
type Deployment struct {
	Name  string
	Nodes int
	// SNR population: per-node SNR drawn from N(MeanDB, SpreadDB²),
	// clipped to [MinDB, MaxDB]; or uniform in [MinDB, MaxDB] when
	// Uniform is set (the §8.5 simulation setup).
	MeanDB, SpreadDB, MinDB, MaxDB float64
	Uniform                        bool
}

// The three deployments of §8.1. Node counts match the paper (19, 25, 25);
// the SNR shapes approximate Fig. 10: Indoor strongest, Outdoor 1 weakest,
// with >20 dB spread between nodes in each.
var (
	Indoor   = Deployment{Name: "Indoor", Nodes: 19, MeanDB: 12, SpreadDB: 6, MinDB: -5, MaxDB: 25}
	Outdoor1 = Deployment{Name: "Outdoor 1", Nodes: 25, MeanDB: 5, SpreadDB: 7, MinDB: -8, MaxDB: 20}
	Outdoor2 = Deployment{Name: "Outdoor 2", Nodes: 25, MeanDB: 9, SpreadDB: 7, MinDB: -6, MaxDB: 24}
)

// Deployments lists the three testbeds in paper order.
var Deployments = []Deployment{Indoor, Outdoor1, Outdoor2}

// NodeSNRs draws one SNR per node.
func (d Deployment) NodeSNRs(rng *rand.Rand) []float64 {
	out := make([]float64, d.Nodes)
	for i := range out {
		if d.Uniform {
			out[i] = d.MinDB + (d.MaxDB-d.MinDB)*rng.Float64()
			continue
		}
		v := d.MeanDB + d.SpreadDB*rng.NormFloat64()
		out[i] = math.Max(d.MinDB, math.Min(d.MaxDB, v))
	}
	return out
}

// UniformSNR returns a population with SNRs uniform in [lo, hi], matching
// the simulation setup of §8.5 (SF 8: [0, 20] dB, SF 10: [-6, 14] dB).
func UniformSNR(name string, nodes int, lo, hi float64) Deployment {
	return Deployment{Name: name, Nodes: nodes, MinDB: lo, MaxDB: hi, Uniform: true}
}
