package sim

import (
	"math/rand"
	"testing"

	"tnb/internal/trace"
)

func smallConfig(seed int64) Config {
	return Config{
		Deployment:    Deployment{Name: "test", Nodes: 6, MeanDB: 10, SpreadDB: 4, MinDB: 0, MaxDB: 20},
		SF:            8,
		CR:            4,
		LoadPktPerSec: 6,
		DurationSec:   1.5,
		Seed:          seed,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig(1)
	a, err := Generate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].StartSample != b.Records[i].StartSample ||
			a.Records[i].Node != b.Records[i].Node {
			t.Fatal("non-deterministic generation")
		}
	}
}

func TestGenerateLoadMatches(t *testing.T) {
	cfg := smallConfig(2)
	gt, err := Generate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := int(cfg.LoadPktPerSec * cfg.DurationSec)
	if len(gt.Records) != want {
		t.Errorf("%d packets generated, want %d", len(gt.Records), want)
	}
}

func TestMakePayloadDistinct(t *testing.T) {
	a := MakePayload(1, 2, 14)
	b := MakePayload(1, 3, 14)
	c := MakePayload(2, 2, 14)
	if string(a) == string(b) || string(a) == string(c) {
		t.Error("payloads must be distinct per (node, seq)")
	}
	if len(MakePayload(0, 0, 3)) != 3 {
		t.Error("short payload length wrong")
	}
}

func TestRunTnBDecodesMost(t *testing.T) {
	res, err := Run(smallConfig(3), SchemeTnB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("no packets sent")
	}
	if res.PRR < 0.55 {
		t.Errorf("TnB PRR %.2f (%d/%d) too low at light load", res.PRR, res.Decoded, res.Sent)
	}
	if len(res.EstimatedSNRs) != res.Decoded {
		t.Errorf("SNR estimates %d != decoded %d", len(res.EstimatedSNRs), res.Decoded)
	}
}

func TestSchemeOrderingAtModerateLoad(t *testing.T) {
	// The headline shape: TnB >= Thrive ablation and TnB >= LoRaPHY on a
	// collided trace.
	cfg := smallConfig(4)
	cfg.LoadPktPerSec = 10
	gt, err := Generate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	tnb := Score(cfg, SchemeTnB, gt)
	thr := Score(cfg, SchemeThrive, gt)
	phy := Score(cfg, SchemeLoRaPHY, gt)
	t.Logf("TnB %d, Thrive %d, LoRaPHY %d of %d", tnb.Decoded, thr.Decoded, phy.Decoded, tnb.Sent)
	if tnb.Decoded < thr.Decoded {
		t.Errorf("TnB (%d) below Thrive-only (%d)", tnb.Decoded, thr.Decoded)
	}
	if tnb.Decoded < phy.Decoded {
		t.Errorf("TnB (%d) below LoRaPHY (%d)", tnb.Decoded, phy.Decoded)
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		SchemeTnB: "TnB", SchemeCICBEC: "CIC+", SchemeAlignTrack: "AlignTrack*",
		SchemeTnB2Ant: "TnB2ant", Scheme(99): "Scheme(99)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d: %q != %q", int(s), s.String(), want)
		}
	}
	if SchemeTnB2Ant.Antennas() != 2 || SchemeTnB.Antennas() != 1 {
		t.Error("antenna counts wrong")
	}
}

func TestCollisionLevels(t *testing.T) {
	recs := []trace.TxRecord{
		{StartSample: 0, NumSamples: 100},
		{StartSample: 50, NumSamples: 100},
		{StartSample: 120, NumSamples: 100},
		{StartSample: 500, NumSamples: 50},
	}
	levels := CollisionLevels(recs)
	want := []int{1, 2, 1, 0} // packet 1 overlaps both neighbors
	for i := range want {
		if levels[i] != want[i] {
			t.Errorf("packet %d: level %d, want %d", i, levels[i], want[i])
		}
	}
}

func TestCollisionLevelsSimultaneous(t *testing.T) {
	// Three fully overlapping packets: each sees 2 others at once.
	recs := []trace.TxRecord{
		{StartSample: 0, NumSamples: 100},
		{StartSample: 10, NumSamples: 100},
		{StartSample: 20, NumSamples: 100},
	}
	for i, l := range CollisionLevels(recs) {
		if l != 2 {
			t.Errorf("packet %d: level %d, want 2", i, l)
		}
	}
}

func TestMediumUsage(t *testing.T) {
	recs := []trace.TxRecord{
		{StartSample: 0, NumSamples: 1000},    // 0..1 ms at 1 Msps
		{StartSample: 1500, NumSamples: 1000}, // 1.5..2.5 ms
	}
	usage := MediumUsage(recs, 1e6, 0.004, 0.001)
	want := []int{1, 2, 1, 0}
	for i := range want {
		if usage[i] != want[i] {
			t.Errorf("bin %d: %d, want %d", i, usage[i], want[i])
		}
	}
	if MediumUsage(recs, 1e6, 0, 0.001) != nil {
		t.Error("zero duration should give nil")
	}
}

func TestDeploymentSNRs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range Deployments {
		snrs := d.NodeSNRs(rng)
		if len(snrs) != d.Nodes {
			t.Fatalf("%s: %d SNRs", d.Name, len(snrs))
		}
		for _, v := range snrs {
			if v < d.MinDB || v > d.MaxDB {
				t.Errorf("%s: SNR %g outside [%g, %g]", d.Name, v, d.MinDB, d.MaxDB)
			}
		}
	}
	if Indoor.Nodes != 19 || Outdoor1.Nodes != 25 || Outdoor2.Nodes != 25 {
		t.Error("node counts must match the paper")
	}
}

func TestUniformSNR(t *testing.T) {
	d := UniformSNR("sim", 20, 0, 20)
	rng := rand.New(rand.NewSource(6))
	snrs := d.NodeSNRs(rng)
	lo, hi := false, false
	for _, v := range snrs {
		if v < 0 || v > 20 {
			t.Fatalf("SNR %g outside range", v)
		}
		if v < 7 {
			lo = true
		}
		if v > 13 {
			hi = true
		}
	}
	if !lo || !hi {
		t.Error("uniform SNRs should cover the range")
	}
}

func TestETUGenerateRuns(t *testing.T) {
	cfg := smallConfig(7)
	cfg.ETU = true
	cfg.LoadPktPerSec = 3
	cfg.DurationSec = 1.0
	gt, err := Generate(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Trace.NumAntennas() != 2 {
		t.Errorf("antennas = %d", gt.Trace.NumAntennas())
	}
	if len(gt.Records) != 3 {
		t.Errorf("%d records", len(gt.Records))
	}
}
