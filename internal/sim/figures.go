package sim

import (
	"fmt"
	"io"
	"sort"

	"tnb/internal/stats"
	"tnb/internal/trace"
)

// Figure runners: each regenerates one figure of the paper's evaluation as
// a printable series. The Scale parameter shrinks the experiment (duration
// and repetitions) so the same code drives both the full cmd/tnbsim runs
// and the CI-sized benchmarks; scheme ordering is preserved under scaling.

// FigureScale controls experiment size.
type FigureScale struct {
	DurationSec float64   // per-run trace length (paper: 30)
	Runs        int       // repetitions averaged per point (paper: 3)
	Loads       []float64 // traffic loads (paper: 5, 10, 15, 20, 25)
	Nodes       int       // 0 keeps the deployment's node count
}

// DefaultScale is a laptop-scale configuration that finishes in minutes.
func DefaultScale() FigureScale {
	return FigureScale{DurationSec: 4, Runs: 1, Loads: []float64{5, 10, 15, 20, 25}}
}

// BenchScale is small enough for go test -bench.
func BenchScale() FigureScale {
	return FigureScale{DurationSec: 1.5, Runs: 1, Loads: []float64{10, 20}, Nodes: 8}
}

func (s FigureScale) deployment(d Deployment) Deployment {
	if s.Nodes > 0 {
		d.Nodes = s.Nodes
	}
	return d
}

// ThroughputPoint is one point of a throughput-vs-load series.
type ThroughputPoint struct {
	Load       float64
	Throughput float64
}

// ThroughputSeries holds one scheme's curve.
type ThroughputSeries struct {
	Scheme Scheme
	Points []ThroughputPoint
}

// FigThroughput regenerates one panel of Figs. 12–14 (and, with the
// ablation schemes, Fig. 15): throughput vs load for each scheme on the
// given deployment.
func FigThroughput(dep Deployment, sf, cr int, schemes []Scheme, scale FigureScale, seed int64) ([]ThroughputSeries, error) {
	out := make([]ThroughputSeries, len(schemes))
	for i, s := range schemes {
		out[i].Scheme = s
	}
	for _, load := range scale.Loads {
		sums := make([]float64, len(schemes))
		for run := 0; run < scale.Runs; run++ {
			cfg := Config{
				Deployment: scale.deployment(dep),
				SF:         sf, CR: cr,
				LoadPktPerSec: load,
				DurationSec:   scale.DurationSec,
				Seed:          seed + int64(run)*1000 + int64(load),
			}
			// One trace per (load, run), shared across schemes — exactly
			// the paper's methodology.
			maxAnt := 1
			for _, s := range schemes {
				if s.Antennas() > maxAnt {
					maxAnt = s.Antennas()
				}
			}
			gt, err := Generate(cfg, maxAnt)
			if err != nil {
				return nil, err
			}
			for i, s := range schemes {
				view := gt
				if s.Antennas() < gt.Trace.NumAntennas() {
					sub := *gt.Trace
					sub.Antennas = gt.Trace.Antennas[:s.Antennas()]
					view = &GroundTruth{Trace: &sub, Records: gt.Records, Params: gt.Params}
				}
				sums[i] += Score(cfg, s, view).Throughput
			}
		}
		for i := range schemes {
			out[i].Points = append(out[i].Points, ThroughputPoint{
				Load: load, Throughput: sums[i] / float64(scale.Runs),
			})
		}
	}
	return out, nil
}

// FigSNRCDF regenerates Fig. 10: the CDF of estimated SNRs of decoded
// packets per deployment.
func FigSNRCDF(dep Deployment, sf int, scale FigureScale, seed int64) (*stats.CDF, error) {
	cfg := Config{
		Deployment: scale.deployment(dep),
		SF:         sf, CR: 4,
		LoadPktPerSec: 10,
		DurationSec:   scale.DurationSec,
		Seed:          seed,
	}
	res, err := Run(cfg, SchemeTnB)
	if err != nil {
		return nil, err
	}
	return stats.NewCDF(res.EstimatedSNRs), nil
}

// FigMediumUsage regenerates Fig. 11: medium usage over time at the
// highest load (lower bound over decoded packets).
func FigMediumUsage(dep Deployment, sf int, scale FigureScale, seed int64) ([]int, error) {
	load := scale.Loads[len(scale.Loads)-1]
	cfg := Config{
		Deployment: scale.deployment(dep),
		SF:         sf, CR: 1,
		LoadPktPerSec: load,
		DurationSec:   scale.DurationSec,
		Seed:          seed,
	}
	gt, err := Generate(cfg, 1)
	if err != nil {
		return nil, err
	}
	// Decoded packets only: the paper's lower-bound methodology.
	decodedRecs := matchedRecords(cfg, SchemeTnB, gt)
	return MediumUsage(decodedRecs, gt.Params.SampleRate(), cfg.DurationSec, 0.25), nil
}

// FigRescuedCDF regenerates Fig. 16: the CDF of BEC-rescued codewords per
// decoded packet.
func FigRescuedCDF(dep Deployment, sf, cr int, scale FigureScale, seed int64) (*stats.CDF, error) {
	load := scale.Loads[len(scale.Loads)-1]
	cfg := Config{
		Deployment: scale.deployment(dep),
		SF:         sf, CR: cr,
		LoadPktPerSec: load,
		DurationSec:   scale.DurationSec,
		Seed:          seed,
	}
	res, err := Run(cfg, SchemeTnB)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(res.Rescued))
	for i, r := range res.Rescued {
		vals[i] = float64(r)
	}
	return stats.NewCDF(vals), nil
}

// PRRBucket is one marker of the Fig. 17 scatter: PRR within an SNR range.
type PRRBucket struct {
	SNRLo, SNRHi float64
	PRRTnB       float64
	PRRCIC       float64
	Packets      int
}

// FigPRRvsSNR regenerates Fig. 17: PRR of TnB and CIC bucketed by node SNR.
func FigPRRvsSNR(dep Deployment, sf, cr int, scale FigureScale, seed int64) ([]PRRBucket, error) {
	load := scale.Loads[len(scale.Loads)-1]
	cfg := Config{
		Deployment: scale.deployment(dep),
		SF:         sf, CR: cr,
		LoadPktPerSec: load,
		DurationSec:   scale.DurationSec,
		Seed:          seed,
	}
	gt, err := Generate(cfg, 1)
	if err != nil {
		return nil, err
	}
	tnbRecs := matchedRecords(cfg, SchemeTnB, gt)
	cicRecs := matchedRecords(cfg, SchemeCIC, gt)

	edges := []float64{-10, 0, 5, 10, 15, 30}
	buckets := make([]PRRBucket, len(edges)-1)
	for i := range buckets {
		buckets[i].SNRLo, buckets[i].SNRHi = edges[i], edges[i+1]
	}
	countIn := func(snr float64) int {
		for i := range buckets {
			if snr >= buckets[i].SNRLo && snr < buckets[i].SNRHi {
				return i
			}
		}
		return -1
	}
	sentPer := make([]int, len(buckets))
	tnbPer := make([]int, len(buckets))
	cicPer := make([]int, len(buckets))
	for _, rec := range gt.Records {
		if b := countIn(rec.SNRdB); b >= 0 {
			sentPer[b]++
		}
	}
	for _, rec := range tnbRecs {
		if b := countIn(rec.SNRdB); b >= 0 {
			tnbPer[b]++
		}
	}
	for _, rec := range cicRecs {
		if b := countIn(rec.SNRdB); b >= 0 {
			cicPer[b]++
		}
	}
	for i := range buckets {
		buckets[i].Packets = sentPer[i]
		if sentPer[i] > 0 {
			buckets[i].PRRTnB = float64(tnbPer[i]) / float64(sentPer[i])
			buckets[i].PRRCIC = float64(cicPer[i]) / float64(sentPer[i])
		}
	}
	return buckets, nil
}

// FigCollisionLevels regenerates Fig. 18: the distribution of collision
// levels among packets decoded by TnB.
func FigCollisionLevels(dep Deployment, sf int, scale FigureScale, seed int64) (map[int]float64, error) {
	load := scale.Loads[len(scale.Loads)-1]
	cfg := Config{
		Deployment: scale.deployment(dep),
		SF:         sf, CR: 4,
		LoadPktPerSec: load,
		DurationSec:   scale.DurationSec,
		Seed:          seed,
	}
	gt, err := Generate(cfg, 1)
	if err != nil {
		return nil, err
	}
	recs := matchedRecords(cfg, SchemeTnB, gt)
	levels := CollisionLevels(recs)
	dist := map[int]float64{}
	for _, l := range levels {
		dist[l]++
	}
	for k := range dist {
		dist[k] /= float64(len(levels))
	}
	return dist, nil
}

// FigETU regenerates Fig. 19: PRR of every scheme in the ETU channel with
// the §8.5 SNR ranges.
func FigETU(sf, cr int, schemes []Scheme, scale FigureScale, seed int64) (map[Scheme]float64, error) {
	lo, hi := 0.0, 20.0
	if sf == 10 {
		lo, hi = -6, 14
	}
	nodes := 20
	if scale.Nodes > 0 {
		nodes = scale.Nodes
	}
	cfg := Config{
		Deployment: UniformSNR("etu", nodes, lo, hi),
		SF:         sf, CR: cr,
		LoadPktPerSec: scale.Loads[0],
		DurationSec:   scale.DurationSec,
		ETU:           true,
		Seed:          seed,
	}
	maxAnt := 1
	for _, s := range schemes {
		if s.Antennas() > maxAnt {
			maxAnt = s.Antennas()
		}
	}
	gt, err := Generate(cfg, maxAnt)
	if err != nil {
		return nil, err
	}
	out := map[Scheme]float64{}
	for _, s := range schemes {
		view := gt
		if s.Antennas() < gt.Trace.NumAntennas() {
			sub := *gt.Trace
			sub.Antennas = gt.Trace.Antennas[:s.Antennas()]
			view = &GroundTruth{Trace: &sub, Records: gt.Records, Params: gt.Params}
		}
		out[s] = Score(cfg, s, view).PRR
	}
	return out, nil
}

// matchedRecords returns the ground-truth records of packets the scheme
// decoded.
func matchedRecords(cfg Config, s Scheme, gt *GroundTruth) []trace.TxRecord {
	decoded := runScheme(s, gt, cfg)
	used := make([]bool, len(gt.Records))
	var out []trace.TxRecord
	for _, d := range decoded {
		for i, rec := range gt.Records {
			if used[i] || !payloadEqual(d.payload, rec.Payload) {
				continue
			}
			used[i] = true
			out = append(out, rec)
			break
		}
	}
	return out
}

func payloadEqual(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PrintThroughput writes a throughput table to w.
func PrintThroughput(w io.Writer, series []ThroughputSeries) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "%-14s", "load (pkt/s)")
	for _, p := range series[0].Points {
		fmt.Fprintf(w, "%8.0f", p.Load)
	}
	fmt.Fprintln(w)
	for _, s := range series {
		fmt.Fprintf(w, "%-14s", s.Scheme)
		for _, p := range s.Points {
			fmt.Fprintf(w, "%8.2f", p.Throughput)
		}
		fmt.Fprintln(w)
	}
}

// PrintDistribution writes a level→fraction map in sorted order.
func PrintDistribution(w io.Writer, dist map[int]float64) {
	keys := make([]int, 0, len(dist))
	for k := range dist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  level %2d: %5.1f%%\n", k, 100*dist[k])
	}
}
