package sim

import (
	"bytes"

	"tnb/internal/trace"
)

// Result scores one scheme on one trace.
type Result struct {
	Scheme  Scheme
	Config  Config
	Sent    int // packets transmitted
	Decoded int // packets decoded correctly (payload match)

	// Throughput is decoded packets per second (the y-axis of
	// Figs. 12–15).
	Throughput float64
	// PRR is Decoded/Sent (Figs. 17, 19).
	PRR float64

	// PerNodeSNR maps node → configured SNR, for SNR-bucketed analyses.
	PerNodeSNR map[int]float64
	// EstimatedSNRs holds the receiver's per-decoded-packet SNR
	// estimates when the scheme provides them (Fig. 10).
	EstimatedSNRs []float64
	// Rescued holds, per decoded packet, the number of BEC-rescued
	// codewords (Fig. 16).
	Rescued []int
	// CollisionLevels holds, per decoded packet, the highest number of
	// other decoded packets it overlapped simultaneously — the paper's
	// lower-bound estimate (Fig. 18).
	CollisionLevels []int
	// DecodedPerNode counts decodes by node.
	DecodedPerNode map[int]int
}

// Run generates the trace for cfg, decodes it with the scheme and scores
// the result.
func Run(cfg Config, s Scheme) (Result, error) {
	gt, err := Generate(cfg, s.Antennas())
	if err != nil {
		return Result{}, err
	}
	return Score(cfg, s, gt), nil
}

// Score evaluates a scheme against a pre-generated ground truth, letting
// callers reuse one trace across schemes (as the paper does).
func Score(cfg Config, s Scheme, gt *GroundTruth) Result {
	decoded := runScheme(s, gt, cfg)
	res := Result{
		Scheme: s, Config: cfg,
		Sent:           len(gt.Records),
		PerNodeSNR:     map[int]float64{},
		DecodedPerNode: map[int]int{},
	}
	for _, rec := range gt.Records {
		res.PerNodeSNR[rec.Node] = rec.SNRdB
	}

	// Match decodes to ground truth by payload; each transmission counts
	// once.
	used := make([]bool, len(gt.Records))
	var matched []trace.TxRecord
	for _, d := range decoded {
		for i, rec := range gt.Records {
			if used[i] || !bytes.Equal(d.payload, rec.Payload) {
				continue
			}
			used[i] = true
			res.Decoded++
			res.DecodedPerNode[rec.Node]++
			res.Rescued = append(res.Rescued, d.rescued)
			if d.hasSNR {
				res.EstimatedSNRs = append(res.EstimatedSNRs, d.snrdB)
			}
			matched = append(matched, rec)
			break
		}
	}
	if cfg.DurationSec > 0 {
		res.Throughput = float64(res.Decoded) / cfg.DurationSec
	}
	if res.Sent > 0 {
		res.PRR = float64(res.Decoded) / float64(res.Sent)
	}
	res.CollisionLevels = CollisionLevels(matched)
	return res
}

// CollisionLevels computes, per packet, the number of the given packets it
// collided with during its transmission (paper Fig. 18). Computing it over
// decoded packets only gives the paper's lower-bound estimate; over all
// records it is exact.
func CollisionLevels(recs []trace.TxRecord) []int {
	levels := make([]int, len(recs))
	for i, r := range recs {
		for j, o := range recs {
			if j != i && r.Overlaps(o) {
				levels[i]++
			}
		}
	}
	return levels
}

// MediumUsage computes the number of packets on air in consecutive bins of
// binSec seconds (Fig. 11). Passing only decoded packets yields the
// paper's lower bound.
func MediumUsage(recs []trace.TxRecord, sampleRate, durationSec, binSec float64) []int {
	if binSec <= 0 || durationSec <= 0 {
		return nil
	}
	nbins := int(durationSec / binSec)
	usage := make([]int, nbins)
	for _, r := range recs {
		s := int(r.StartSample / sampleRate / binSec)
		e := int(r.EndSample() / sampleRate / binSec)
		for b := s; b <= e && b < nbins; b++ {
			if b >= 0 {
				usage[b]++
			}
		}
	}
	return usage
}
