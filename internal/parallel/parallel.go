// Package parallel provides the small deterministic worker-pool primitive
// shared by the receiver pipeline: a bounded fan-out over an index range
// where every item writes its result into an index-addressed slot, so the
// output is independent of goroutine scheduling. The receiver's parallel
// joints (candidate refinement, per-packet signal-vector prefill, per-packet
// decoding) all follow the same shape: compute in any order, merge in index
// order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a configured worker count: n <= 0 selects GOMAXPROCS,
// anything else is returned as-is. Callers typically clamp to the item count
// via ForEach itself.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Stats reports one ForEach region: the wall-clock span, the summed busy
// time across workers, and the worker count actually used. Speedup is
// Busy/Wall (1.0 when serial); utilization is Busy/(Wall·Workers).
type Stats struct {
	Wall    time.Duration
	Busy    time.Duration
	Workers int
}

// SpeedupPermille returns the effective parallel speedup ×1000 (Busy/Wall),
// the integer form the metrics gauges store.
func (s Stats) SpeedupPermille() int64 {
	if s.Wall <= 0 {
		return 1000
	}
	return int64(1000 * float64(s.Busy) / float64(s.Wall))
}

// UtilizationPermille returns busy/(wall·workers) ×1000 — how much of the
// pool's capacity the region kept busy.
func (s Stats) UtilizationPermille() int64 {
	if s.Wall <= 0 || s.Workers <= 0 {
		return 1000
	}
	return int64(1000 * float64(s.Busy) / (float64(s.Wall) * float64(s.Workers)))
}

// ForEach runs fn(worker, i) for every i in [0, n) on up to workers
// goroutines (after Workers() resolution and clamping to n). Items are
// handed out dynamically (an atomic cursor), so uneven item costs balance;
// the worker id passed to fn is stable per goroutine and in [0, workers),
// letting callers maintain per-worker scratch. With workers <= 1 (or n <= 1)
// everything runs inline on the calling goroutine with worker id 0 — the
// serial path allocates nothing and spawns nothing.
//
// fn must not assume any ordering between items; determinism comes from
// writing results to index-addressed slots.
// ForEachChunks splits [0, n) into one contiguous range per worker (sizes
// differing by at most one, earlier workers taking the longer ranges) and
// runs fn(worker, lo, hi) once per range. It is the coarse-grained
// counterpart of ForEach for uniform-cost items: a worker owns a whole
// range, so per-item hand-off (and its cursor contention and cache-line
// ping-pong on neighboring slots) disappears, and fn can batch work across
// its range. With workers <= 1 (or n <= 1) the single range runs inline on
// the calling goroutine — the serial path allocates nothing and spawns
// nothing.
//
// fn must not assume any ordering between ranges; determinism comes from
// writing results to index-addressed slots.
func ForEachChunks(workers, n int, fn func(worker, lo, hi int)) Stats {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		t0 := time.Now()
		if n > 0 {
			fn(0, 0, n)
		}
		wall := time.Since(t0)
		return Stats{Wall: wall, Busy: wall, Workers: 1}
	}

	t0 := time.Now()
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	chunk, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			start := time.Now()
			fn(w, lo, hi)
			busy[w] = time.Since(start)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	st := Stats{Wall: time.Since(t0), Workers: workers}
	for _, b := range busy {
		st.Busy += b
	}
	return st
}

// ForEachChunksOrdered runs fn over [0, n) in fixed-size chunks on up to
// `workers` goroutines, and additionally calls done(lo, hi) for every chunk
// — serially, in ascending chunk order, as soon as the contiguous prefix of
// completed chunks extends past it. It is the pipelining primitive: fn is
// the parallel stage, done hands each in-order prefix to a downstream
// consumer (e.g. bounded commit queues) while later chunks are still being
// computed, instead of barriering on the whole range.
//
// done runs under an internal mutex on whichever worker completed the
// prefix; it may block (e.g. on a bounded channel) without deadlocking fn
// workers only if whatever drains that channel runs on other goroutines.
// With workers <= 1 (or a single chunk) everything runs inline on the
// calling goroutine: fn then done per chunk, in order.
func ForEachChunksOrdered(workers, n, chunk int, fn func(worker, lo, hi int), done func(lo, hi int)) Stats {
	if chunk <= 0 {
		chunk = 1
	}
	nchunks := (n + chunk - 1) / chunk
	workers = Workers(workers)
	if workers > nchunks {
		workers = nchunks
	}
	bounds := func(c int) (int, int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	if workers <= 1 {
		t0 := time.Now()
		for c := 0; c < nchunks; c++ {
			lo, hi := bounds(c)
			fn(0, lo, hi)
			done(lo, hi)
		}
		wall := time.Since(t0)
		return Stats{Wall: wall, Busy: wall, Workers: 1}
	}

	t0 := time.Now()
	var cursor atomic.Int64
	var mu sync.Mutex
	completed := make([]bool, nchunks)
	frontier := 0
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= nchunks {
					break
				}
				lo, hi := bounds(c)
				fn(w, lo, hi)
				mu.Lock()
				completed[c] = true
				for frontier < nchunks && completed[frontier] {
					flo, fhi := bounds(frontier)
					done(flo, fhi)
					frontier++
				}
				mu.Unlock()
			}
			busy[w] = time.Since(start)
		}(w)
	}
	wg.Wait()
	st := Stats{Wall: time.Since(t0), Workers: workers}
	for _, b := range busy {
		st.Busy += b
	}
	return st
}

func ForEach(workers, n int, fn func(worker, i int)) Stats {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		wall := time.Since(t0)
		return Stats{Wall: wall, Busy: wall, Workers: 1}
	}

	t0 := time.Now()
	var cursor atomic.Int64
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					break
				}
				fn(w, i)
			}
			busy[w] = time.Since(start)
		}(w)
	}
	wg.Wait()
	st := Stats{Wall: time.Since(t0), Workers: workers}
	for _, b := range busy {
		st.Busy += b
	}
	return st
}
