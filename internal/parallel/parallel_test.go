package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		st := ForEach(workers, n, func(_, i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
		want := workers
		if want > n {
			want = n
		}
		if st.Workers != want {
			t.Fatalf("workers=%d: Stats.Workers = %d, want %d", workers, st.Workers, want)
		}
	}
}

func TestForEachChunksCoversRangeExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 16, 1000} {
			counts := make([]atomic.Int32, n)
			var calls atomic.Int32
			st := ForEachChunks(workers, n, func(w, lo, hi int) {
				calls.Add(1)
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty range [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					counts[i].Add(1)
				}
			})
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
			want := workers
			if want > n {
				want = n
			}
			if n == 0 {
				if calls.Load() != 0 {
					t.Fatalf("n=0: fn called %d times", calls.Load())
				}
				continue
			}
			if int(calls.Load()) != want {
				t.Fatalf("workers=%d n=%d: fn called %d times, want one per worker (%d)",
					workers, n, calls.Load(), want)
			}
			if st.Workers != want {
				t.Fatalf("workers=%d n=%d: Stats.Workers = %d, want %d", workers, n, st.Workers, want)
			}
		}
	}
}

func TestForEachChunksBalanced(t *testing.T) {
	// 10 items over 4 workers: range sizes must differ by at most one.
	sizes := make([]int, 4)
	ForEachChunks(4, 10, func(w, lo, hi int) { sizes[w] = hi - lo })
	minS, maxS := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if maxS-minS > 1 {
		t.Fatalf("unbalanced chunks: %v", sizes)
	}
}

func TestForEachChunksSerialZeroAllocs(t *testing.T) {
	sink := 0
	fn := func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sink += i
		}
	}
	if a := testing.AllocsPerRun(100, func() { ForEachChunks(1, 64, fn) }); a != 0 {
		t.Fatalf("serial ForEachChunks allocates %v/op", a)
	}
}

func TestForEachWorkerIDsBounded(t *testing.T) {
	const workers, n = 4, 200
	var bad atomic.Int32
	ForEach(workers, n, func(w, _ int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker id out of [0, workers)")
	}
}

func TestForEachClampsToN(t *testing.T) {
	st := ForEach(16, 3, func(w, _ int) {
		if w > 2 {
			t.Errorf("worker id %d with only 3 items", w)
		}
	})
	if st.Workers > 3 {
		t.Fatalf("Stats.Workers = %d, want <= 3", st.Workers)
	}
}

func TestForEachDeterministicResults(t *testing.T) {
	const n = 512
	ref := make([]int, n)
	ForEach(1, n, func(_, i int) { ref[i] = i * i })
	for _, workers := range []int{2, 5, 8} {
		got := make([]int, n)
		ForEach(workers, n, func(_, i int) { got[i] = i * i })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(4, 0, func(_, _ int) { called = true })
	if called {
		t.Fatal("fn called with n=0")
	}
}

func TestStatsPermille(t *testing.T) {
	s := Stats{Wall: 100, Busy: 350, Workers: 4}
	if got := s.SpeedupPermille(); got != 3500 {
		t.Fatalf("SpeedupPermille = %d", got)
	}
	if got := s.UtilizationPermille(); got != 875 {
		t.Fatalf("UtilizationPermille = %d", got)
	}
	var zero Stats
	if zero.SpeedupPermille() != 1000 || zero.UtilizationPermille() != 1000 {
		t.Fatal("zero Stats should report neutral 1000 permille")
	}
}

// TestForEachChunksOrderedPrefixOrder: done is called exactly once per
// chunk, in ascending order, and only after fn completed that chunk —
// at every worker width, including partial final chunks.
func TestForEachChunksOrderedPrefixOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 7, 64, 101} {
			for _, chunk := range []int{1, 3, 16, 1000} {
				var mu sync.Mutex
				computed := make(map[int]bool)
				var doneOrder []int
				ForEachChunksOrdered(workers, n, chunk, func(_, lo, hi int) {
					if hi <= lo || hi > n {
						t.Fatalf("fn range [%d,%d) out of bounds n=%d", lo, hi, n)
					}
					mu.Lock()
					for i := lo; i < hi; i++ {
						computed[i] = true
					}
					mu.Unlock()
				}, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						if !computed[i] {
							t.Errorf("done([%d,%d)) before fn computed %d", lo, hi, i)
						}
					}
					doneOrder = append(doneOrder, lo)
				})
				next := 0
				for _, lo := range doneOrder {
					if lo != next {
						t.Fatalf("workers=%d n=%d chunk=%d: done order %v not the ascending chunk sequence", workers, n, chunk, doneOrder)
					}
					next = lo + chunk
					if next > n {
						next = n
					}
				}
				if next != n {
					t.Fatalf("workers=%d n=%d chunk=%d: done covered [0,%d), want [0,%d)", workers, n, chunk, next, n)
				}
			}
		}
	}
}

// TestForEachChunksOrderedPipelines: done hands prefixes to a consumer
// goroutine through a bounded channel while later chunks are still being
// computed — the netserver's verify→commit shape. The consumer must see
// every index exactly once, in order.
func TestForEachChunksOrderedPipelines(t *testing.T) {
	const n = 500
	q := make(chan int, 4) // deliberately tiny: done blocks, consumer drains
	var got []int
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for i := range q {
			got = append(got, i)
		}
	}()
	ForEachChunksOrdered(4, n, 7, func(_, lo, hi int) {}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			q <- i
		}
	})
	close(q)
	<-consumerDone
	if len(got) != n {
		t.Fatalf("consumer saw %d indexes, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("consumer order broke at position %d: got %d", i, v)
		}
	}
}
