package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"tnb/internal/dsp"
)

func constSignal(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

func TestFlatChannel(t *testing.T) {
	f := Flat{Gain: 2i}
	out := f.Apply([]complex128{1, 1 + 1i}, 1e6, 0)
	if out[0] != 2i || out[1] != -2+2i {
		t.Errorf("flat channel output %v", out)
	}
}

func TestFadingAveragePowerGainNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := NewFading(ETUProfile, 5, 1e6, rng)
	g := f.AveragePowerGain(100, 5000)
	if g < 0.7 || g > 1.3 {
		t.Errorf("average power gain %g, want ≈1", g)
	}
}

func TestFadingOutputLengthCoversDelaySpread(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := NewFading(ETUProfile, 5, 1e6, rng)
	in := constSignal(1000)
	out := f.Apply(in, 1e6, 0)
	// ETU max excess delay is 5 µs = 5 samples at 1 Msps.
	if len(out) < len(in)+5 {
		t.Errorf("output length %d does not cover the delay spread", len(out))
	}
}

func TestFadingEnvelopeVariesOverTime(t *testing.T) {
	// With 5 Hz Doppler the envelope must change substantially over
	// seconds — the channel fluctuation the paper stresses in §8.5.
	rng := rand.New(rand.NewSource(22))
	f := NewFading(ETUProfile, 5, 1e6, rng)
	in := constSignal(64)
	var powers []float64
	for s := 0; s < 40; s++ {
		start := s * 25_000_000 / 40 // spread over 25 s
		out := f.Apply(in, 1e6, start)
		powers = append(powers, dsp.Power(out[:64]))
	}
	minP, maxP := math.Inf(1), 0.0
	for _, p := range powers {
		minP = math.Min(minP, p)
		maxP = math.Max(maxP, p)
	}
	if maxP < 2*minP {
		t.Errorf("envelope variation too small: min %g max %g", minP, maxP)
	}
}

func TestFadingIsDeterministicGivenSeed(t *testing.T) {
	in := constSignal(256)
	f1 := NewFading(ETUProfile, 5, 1e6, rand.New(rand.NewSource(23)))
	f2 := NewFading(ETUProfile, 5, 1e6, rand.New(rand.NewSource(23)))
	o1 := f1.Apply(in, 1e6, 1000)
	o2 := f2.Apply(in, 1e6, 1000)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("non-deterministic output at %d", i)
		}
	}
}

func TestFadingZeroDopplerIsTimeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := NewFading([]Tap{{0, 0}}, 0, 1e6, rng)
	in := constSignal(128)
	a := f.Apply(in, 1e6, 0)
	b := f.Apply(in, 1e6, 10_000_000)
	for i := range in {
		if cmplx.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("zero-Doppler channel changed over time")
		}
	}
}

func TestFadingRayleighEnvelopeStatistics(t *testing.T) {
	// The single-tap envelope should be approximately Rayleigh: mean
	// power 1, and power below the mean ~63% of the time.
	rng := rand.New(rand.NewSource(25))
	f := NewFading([]Tap{{0, 0}}, 50, 1e6, rng)
	var below, total int
	var sum float64
	for s := 0; s < 4000; s++ {
		t0 := float64(s) * 0.05
		g := f.taps[0].gainAt(t0)
		p := real(g)*real(g) + imag(g)*imag(g)
		sum += p
		if p < 1 {
			below++
		}
		total++
	}
	meanP := sum / float64(total)
	if meanP < 0.75 || meanP > 1.3 {
		t.Errorf("mean tap power %g, want ≈1", meanP)
	}
	frac := float64(below) / float64(total)
	if frac < 0.5 || frac < 0.45 || frac > 0.8 {
		t.Errorf("P(power<mean) = %g, want ≈0.63", frac)
	}
}

func TestETUProfileMatchesSpec(t *testing.T) {
	if len(ETUProfile) != 9 {
		t.Fatalf("ETU has %d taps, want 9", len(ETUProfile))
	}
	if ETUProfile[8].DelayNs != 5000 {
		t.Errorf("last ETU tap delay %g ns, want 5000", ETUProfile[8].DelayNs)
	}
	if ETUProfile[3].PowerDB != 0 {
		t.Errorf("tap 4 power %g, want 0 dB", ETUProfile[3].PowerDB)
	}
}

func TestFractionalDelayInterpolation(t *testing.T) {
	// A single tap at 0.5 samples splits energy between adjacent samples.
	rng := rand.New(rand.NewSource(26))
	f := NewFading([]Tap{{500_000, 0}}, 0, 1e3, rng) // 0.5 samples at 1 kSps
	in := []complex128{1, 0, 0, 0}
	out := f.Apply(in, 1e3, 0)
	if cmplx.Abs(out[0]) == 0 || cmplx.Abs(out[1]) == 0 {
		t.Error("fractional delay should spread the impulse over two samples")
	}
	if cmplx.Abs(out[0]-out[1]) > 1e-9 {
		t.Error("0.5-sample delay should split the impulse evenly")
	}
}
