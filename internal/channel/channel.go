// Package channel models the propagation impairments used in the paper's
// evaluation: AWGN at a per-node SNR, carrier frequency offset (applied at
// waveform synthesis), and the LTE ETU multipath profile with Rayleigh
// fading taps (Jakes Doppler spectrum), as used in paper §8.5.
package channel

import (
	"math"
	"math/rand"

	"tnb/internal/dsp"
)

// Model transforms a transmitted baseband signal into its received form for
// one antenna. Implementations must be deterministic given their
// construction-time RNG.
type Model interface {
	// Apply convolves/filters the transmitted samples and returns the
	// received samples (possibly longer than the input when the model has
	// delay spread). sampleRate is in Hz; startSample is the absolute
	// receiver sample index of tx[0], letting time-varying channels
	// evolve coherently across packets.
	Apply(tx []complex128, sampleRate float64, startSample int) []complex128
}

// Flat is a time-invariant single-tap channel with the given complex gain.
type Flat struct{ Gain complex128 }

// Apply scales the signal by the flat gain.
func (f Flat) Apply(tx []complex128, _ float64, _ int) []complex128 {
	out := make([]complex128, len(tx))
	for i, v := range tx {
		out[i] = v * f.Gain
	}
	return out
}

// Tap describes one multipath component.
type Tap struct {
	DelayNs float64 // excess delay in nanoseconds
	PowerDB float64 // average relative power in dB
}

// ETUProfile is the LTE Extended Typical Urban tap set (3GPP TS 36.101
// Annex B.2). Delay spread 5 µs, as quoted in paper §8.5.
var ETUProfile = []Tap{
	{0, -1}, {50, -1}, {120, -1}, {200, 0}, {230, 0},
	{500, 0}, {1600, -3}, {2300, -5}, {5000, -7},
}

// jakesOscillators is the number of sinusoids in the sum-of-sinusoids
// Rayleigh fader. 16 gives a good approximation of the Jakes spectrum.
const jakesOscillators = 16

// fadingTap is one Rayleigh-faded path: a sum-of-sinusoids process with the
// classic Doppler spectrum, scaled to the tap's average power.
type fadingTap struct {
	delaySamples float64
	amp          float64 // sqrt(average linear power)
	freqs        []float64
	phasesI      []float64
	phasesQ      []float64
}

// gainAt returns the complex tap gain at time t seconds. The I and Q
// components are independent sums of cosines with Doppler-distributed
// frequencies, giving a Rayleigh-fading envelope.
func (ft *fadingTap) gainAt(t float64) complex128 {
	var re, im float64
	for k := range ft.freqs {
		re += math.Cos(2*math.Pi*ft.freqs[k]*t + ft.phasesI[k])
		im += math.Cos(2*math.Pi*ft.freqs[k]*t + ft.phasesQ[k])
	}
	norm := ft.amp / math.Sqrt(float64(len(ft.freqs)))
	return complex(norm*re, norm*im)
}

// Fading is a tapped-delay-line channel with independently Rayleigh-fading
// taps. The zero value is unusable; construct with NewFading.
type Fading struct {
	taps      []*fadingTap
	dopplerHz float64
}

// NewFading builds a fading channel from a tap profile, maximum Doppler
// shift and an RNG for the fading process. Tap powers are normalized so the
// average channel power gain is 1, keeping SNR definitions consistent with
// the flat channel.
func NewFading(profile []Tap, dopplerHz float64, sampleRate float64, rng *rand.Rand) *Fading {
	var totalLin float64
	for _, tp := range profile {
		totalLin += dsp.DBToLinear(tp.PowerDB)
	}
	f := &Fading{dopplerHz: dopplerHz}
	for _, tp := range profile {
		ft := &fadingTap{
			delaySamples: tp.DelayNs * 1e-9 * sampleRate,
			amp:          math.Sqrt(dsp.DBToLinear(tp.PowerDB) / totalLin),
			freqs:        make([]float64, jakesOscillators),
			phasesI:      make([]float64, jakesOscillators),
			phasesQ:      make([]float64, jakesOscillators),
		}
		for k := 0; k < jakesOscillators; k++ {
			// Doppler frequencies f_d·cos(α) with α uniform — the Jakes
			// arrival-angle model.
			alpha := 2 * math.Pi * rng.Float64()
			ft.freqs[k] = dopplerHz * math.Cos(alpha)
			ft.phasesI[k] = 2 * math.Pi * rng.Float64()
			ft.phasesQ[k] = 2 * math.Pi * rng.Float64()
		}
		f.taps = append(f.taps, ft)
	}
	return f
}

// Apply runs the tapped delay line. Fractional tap delays use linear
// interpolation; tap gains are updated once per symbol-scale granularity
// (every 64 samples) since the Doppler rate (≤ tens of Hz) is far below the
// sample rate.
func (f *Fading) Apply(tx []complex128, sampleRate float64, startSample int) []complex128 {
	maxDelay := 0.0
	for _, tp := range f.taps {
		if tp.delaySamples > maxDelay {
			maxDelay = tp.delaySamples
		}
	}
	out := make([]complex128, len(tx)+int(math.Ceil(maxDelay))+1)
	const gainUpdate = 64
	for _, tp := range f.taps {
		di := int(tp.delaySamples)
		frac := tp.delaySamples - float64(di)
		cf := complex(frac, 0)
		cf1 := complex(1-frac, 0)
		var g complex128
		for i, v := range tx {
			if i%gainUpdate == 0 {
				t := float64(startSample+i) / sampleRate
				g = tp.gainAt(t)
			}
			w := v * g
			out[i+di] += w * cf1
			if frac > 0 {
				out[i+di+1] += w * cf
			}
		}
	}
	return out
}

// AveragePowerGain estimates the channel's mean power gain by sampling the
// tap processes over the given duration. Used in tests to verify the
// normalization.
func (f *Fading) AveragePowerGain(duration float64, samples int) float64 {
	var sum float64
	for s := 0; s < samples; s++ {
		t := duration * float64(s) / float64(samples)
		for _, tp := range f.taps {
			g := tp.gainAt(t)
			sum += real(g)*real(g) + imag(g)*imag(g)
		}
	}
	return sum / float64(samples)
}
