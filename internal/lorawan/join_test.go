package lorawan

import (
	"bytes"
	"testing"
)

func appKey() []byte { return bytes.Repeat([]byte{0x88}, 16) }

func TestJoinRequestRoundTrip(t *testing.T) {
	j := &JoinRequestFrame{AppEUI: 0x70B3D57ED0000001, DevEUI: 0x0004A30B001C0530, DevNonce: 0xBEEF}
	wire, err := j.Marshal(appKey())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseJoinRequest(wire, appKey())
	if err != nil {
		t.Fatal(err)
	}
	if got.AppEUI != j.AppEUI || got.DevEUI != j.DevEUI || got.DevNonce != j.DevNonce {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestJoinRequestMIC(t *testing.T) {
	j := &JoinRequestFrame{AppEUI: 1, DevEUI: 2, DevNonce: 3}
	wire, err := j.Marshal(appKey())
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x80
		if _, err := ParseJoinRequest(bad, appKey()); err == nil {
			t.Errorf("tampering at byte %d undetected", i)
		}
	}
	if _, err := ParseJoinRequest(wire[:10], appKey()); err != ErrTooShort {
		t.Errorf("short frame: %v", err)
	}
}

func TestJoinAcceptRoundTrip(t *testing.T) {
	j := &JoinAcceptFrame{
		AppNonce: 0xABCDEF, NetID: 0x000013, DevAddr: 0x26012345,
		DLSettings: 0x03, RxDelay: 1,
	}
	wire, err := j.Marshal(appKey())
	if err != nil {
		t.Fatal(err)
	}
	// The content must be encrypted on the wire.
	if bytes.Contains(wire, []byte{0xEF, 0xCD, 0xAB}) {
		t.Error("join accept content visible on the wire")
	}
	got, err := ParseJoinAccept(wire, appKey())
	if err != nil {
		t.Fatal(err)
	}
	if got.AppNonce != j.AppNonce || got.NetID != j.NetID || got.DevAddr != j.DevAddr {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.DLSettings != 3 || got.RxDelay != 1 {
		t.Errorf("settings mismatch: %+v", got)
	}
}

func TestJoinAcceptWrongKey(t *testing.T) {
	j := &JoinAcceptFrame{AppNonce: 1, NetID: 2, DevAddr: 3}
	wire, err := j.Marshal(appKey())
	if err != nil {
		t.Fatal(err)
	}
	wrong := bytes.Repeat([]byte{0x99}, 16)
	if _, err := ParseJoinAccept(wire, wrong); err != ErrBadMIC {
		t.Errorf("wrong key: %v, want ErrBadMIC", err)
	}
}

func TestSessionKeyDerivationAndUse(t *testing.T) {
	// Full OTAA flow: join request, join accept, key derivation on both
	// sides, then a data frame protected by the derived keys.
	req := &JoinRequestFrame{AppEUI: 10, DevEUI: 20, DevNonce: 0x1234}
	acc := &JoinAcceptFrame{AppNonce: 0x010203, NetID: 0x000042, DevAddr: 0x26000001}

	nwk1, app1, err := DeriveSessionKeys(appKey(), acc.AppNonce, acc.NetID, req.DevNonce)
	if err != nil {
		t.Fatal(err)
	}
	nwk2, app2, err := DeriveSessionKeys(appKey(), acc.AppNonce, acc.NetID, req.DevNonce)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(nwk1, nwk2) || !bytes.Equal(app1, app2) {
		t.Fatal("derivation not deterministic")
	}
	if bytes.Equal(nwk1, app1) {
		t.Fatal("NwkSKey == AppSKey")
	}
	// Different nonces give different keys.
	nwk3, _, _ := DeriveSessionKeys(appKey(), acc.AppNonce, acc.NetID, req.DevNonce+1)
	if bytes.Equal(nwk1, nwk3) {
		t.Error("DevNonce change did not change the keys")
	}

	f := &DataFrame{MType: UnconfirmedDataUp, DevAddr: acc.DevAddr, FCnt: 1,
		HasPort: true, FPort: 1, FRMPayload: []byte("joined!")}
	wire, err := f.Marshal(nwk1, app1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDataFrame(wire, nwk2, app2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.FRMPayload) != "joined!" {
		t.Errorf("payload %q", got.FRMPayload)
	}
}

// TestParseJoinRequestBadMIC pins the exact failure mode: an authentic
// frame under the wrong key, or a frame with a damaged MIC, must fail
// with ErrBadMIC specifically (not a generic error), because the
// netserver's drop taxonomy keys off that sentinel.
func TestParseJoinRequestBadMIC(t *testing.T) {
	j := &JoinRequestFrame{AppEUI: 1, DevEUI: 2, DevNonce: 3}
	wire, err := j.Marshal(appKey())
	if err != nil {
		t.Fatal(err)
	}
	wrong := bytes.Repeat([]byte{0x99}, 16)
	if _, err := ParseJoinRequest(wire, wrong); err != ErrBadMIC {
		t.Errorf("wrong key: %v, want ErrBadMIC", err)
	}
	for i := len(wire) - 4; i < len(wire); i++ {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x01
		if _, err := ParseJoinRequest(bad, appKey()); err != ErrBadMIC {
			t.Errorf("MIC byte %d flipped: %v, want ErrBadMIC", i, err)
		}
	}
	bad := append([]byte(nil), wire...)
	bad[0] = uint8(JoinAccept) << 5
	if _, err := ParseJoinRequest(bad, appKey()); err != ErrBadMType {
		t.Errorf("wrong mtype: %v, want ErrBadMType", err)
	}
}

// TestParseJoinRequestNoReplayProtection documents the contract split: the
// stateless codec accepts a replayed-but-authentic frame every time, and
// refusing reused DevNonces is the network server's responsibility.
func TestParseJoinRequestNoReplayProtection(t *testing.T) {
	j := &JoinRequestFrame{AppEUI: 1, DevEUI: 2, DevNonce: 0x4444}
	wire, err := j.Marshal(appKey())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := ParseJoinRequest(wire, appKey())
		if err != nil {
			t.Fatalf("replay %d: %v (the codec must stay stateless; replay defense lives in the caller)", i, err)
		}
		if got.DevNonce != 0x4444 {
			t.Fatalf("replay %d: nonce %04x", i, got.DevNonce)
		}
	}
}

// TestDeriveSessionKeysBadKey: the only validation is the AES key length.
func TestDeriveSessionKeysBadKey(t *testing.T) {
	if _, _, err := DeriveSessionKeys([]byte("short"), 1, 2, 3); err == nil {
		t.Error("5-byte AppKey accepted")
	}
	if _, _, err := DeriveSessionKeys(nil, 1, 2, 3); err == nil {
		t.Error("nil AppKey accepted")
	}
}

func TestEUIString(t *testing.T) {
	if EUI(0xAB).String() != "00000000000000AB" {
		t.Errorf("EUI format: %s", EUI(0xAB))
	}
}

func TestParseJoinAcceptBadInput(t *testing.T) {
	if _, err := ParseJoinAccept(make([]byte, 5), appKey()); err != ErrTooShort {
		t.Errorf("short: %v", err)
	}
	wire := make([]byte, 17)
	wire[0] = uint8(JoinRequest) << 5
	if _, err := ParseJoinAccept(wire, appKey()); err != ErrBadMType {
		t.Errorf("wrong type: %v", err)
	}
}
