package lorawan

import (
	"encoding/binary"
	"fmt"
)

// Over-the-air activation (LoRaWAN 1.0 §6.2): the join request/accept
// exchange and the session key derivation.

// EUI is a 64-bit extended unique identifier.
type EUI uint64

// String renders the EUI as 16 upper-case hex digits (the "%016X" form),
// hand-rolled because the session cache builds it on the join path and
// fmt.Sprintf costs several allocations there.
func (e EUI) String() string {
	var b [16]byte
	v := uint64(e)
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = upperhex[v&0xF]
		v >>= 4
	}
	return string(b[:])
}

const upperhex = "0123456789ABCDEF"

// JoinRequestFrame is the device's join request.
type JoinRequestFrame struct {
	AppEUI   EUI
	DevEUI   EUI
	DevNonce uint16
}

// Marshal serializes the join request and appends its 4-byte MIC, the
// AES-CMAC of MHDR||AppEUI||DevEUI||DevNonce under the 16-byte AppKey.
func (j *JoinRequestFrame) Marshal(appKey []byte) ([]byte, error) {
	buf := make([]byte, 0, 1+8+8+2+micLen)
	buf = append(buf, uint8(JoinRequest)<<5)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(j.AppEUI))
	buf = append(buf, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], uint64(j.DevEUI))
	buf = append(buf, b8[:]...)
	var b2 [2]byte
	binary.LittleEndian.PutUint16(b2[:], j.DevNonce)
	buf = append(buf, b2[:]...)
	mac, err := CMAC(appKey, buf)
	if err != nil {
		return nil, err
	}
	return append(buf, mac[:micLen]...), nil
}

// ParseJoinRequest parses a join request and verifies its MIC under the
// AppKey in constant time, returning ErrBadMIC on any tampering and
// ErrTooShort/ErrBadMType on framing errors.
//
// It deliberately does NOT track DevNonce reuse: the codec is stateless,
// and a replayed-but-authentic frame parses successfully every time.
// Replay protection is the caller's job — the network server must refuse
// a (DevEUI, DevNonce) pair it has already activated (see
// internal/netserver), or an attacker who recorded one join can force a
// rekey at will.
func ParseJoinRequest(wire, appKey []byte) (*JoinRequestFrame, error) {
	kc, err := NewKeyCipher(appKey)
	if err != nil {
		return nil, err
	}
	var st Scratch
	jr, err := ParseJoinRequestCached(wire, kc, &st)
	if err != nil {
		return nil, err
	}
	return &jr, nil
}

// ParseJoinRequestCached is ParseJoinRequest under a cached AppKey cipher,
// returning the frame by value so the verify hot path allocates nothing.
func ParseJoinRequestCached(wire []byte, kc *KeyCipher, st *Scratch) (JoinRequestFrame, error) {
	if len(wire) != 1+8+8+2+micLen {
		return JoinRequestFrame{}, ErrTooShort
	}
	if MType(wire[0]>>5) != JoinRequest {
		return JoinRequestFrame{}, ErrBadMType
	}
	body := wire[:len(wire)-micLen]
	mac := kc.MAC(st, body)
	if !constantTimeEqual(wire[len(wire)-micLen:], mac[:micLen]) {
		return JoinRequestFrame{}, ErrBadMIC
	}
	return JoinRequestFrame{
		AppEUI:   EUI(binary.LittleEndian.Uint64(wire[1:9])),
		DevEUI:   EUI(binary.LittleEndian.Uint64(wire[9:17])),
		DevNonce: binary.LittleEndian.Uint16(wire[17:19]),
	}, nil
}

// JoinAcceptFrame is the network's join accept.
type JoinAcceptFrame struct {
	AppNonce   uint32 // 24 bits used
	NetID      uint32 // 24 bits used
	DevAddr    DevAddr
	DLSettings uint8
	RxDelay    uint8
}

// Marshal serializes the join accept: the content is MIC'd and then
// AES-*decrypted* under the AppKey (so the constrained device only ever
// needs the encrypt primitive, per the specification).
func (j *JoinAcceptFrame) Marshal(appKey []byte) ([]byte, error) {
	kc, err := NewKeyCipher(appKey)
	if err != nil {
		return nil, err
	}
	return j.MarshalCached(kc)
}

// MarshalCached is Marshal under a cached AppKey cipher.
func (j *JoinAcceptFrame) MarshalCached(kc *KeyCipher) ([]byte, error) {
	var st Scratch
	return j.MarshalScratch(kc, &st)
}

// MarshalScratch is MarshalCached with caller-owned scratch. It allocates
// nothing but the returned wire image: the content stages in st.b0, which
// MAC documents as alias-safe.
func (j *JoinAcceptFrame) MarshalScratch(kc *KeyCipher, st *Scratch) ([]byte, error) {
	content := st.b0[:0]
	content = append(content, uint8(j.AppNonce), uint8(j.AppNonce>>8), uint8(j.AppNonce>>16))
	content = append(content, uint8(j.NetID), uint8(j.NetID>>8), uint8(j.NetID>>16))
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(j.DevAddr))
	content = append(content, b4[:]...)
	content = append(content, j.DLSettings, j.RxDelay)

	mhdr := [1]byte{uint8(JoinAccept) << 5}
	mac := kc.MAC(st, mhdr[:], content)
	plain := append(content, mac[:micLen]...) // fits the blockSize cap
	if len(plain)%blockSize != 0 {
		return nil, fmt.Errorf("lorawan: join accept content %d bytes, want multiple of 16", len(plain))
	}
	out := make([]byte, 1+len(plain))
	out[0] = mhdr[0]
	for i := 0; i < len(plain); i += blockSize {
		kc.Decrypt(out[1+i:1+i+blockSize], plain[i:i+blockSize])
	}
	return out, nil
}

// ParseJoinAccept decrypts (by encrypting, as the device does), verifies
// and parses a join accept.
func ParseJoinAccept(wire, appKey []byte) (*JoinAcceptFrame, error) {
	if len(wire) != 1+16 {
		return nil, ErrTooShort
	}
	if MType(wire[0]>>5) != JoinAccept {
		return nil, ErrBadMType
	}
	kc, err := NewKeyCipher(appKey)
	if err != nil {
		return nil, err
	}
	plain := make([]byte, 16)
	kc.Encrypt(plain, wire[1:])

	var st Scratch
	content, mic := plain[:12], plain[12:]
	mac := kc.MAC(&st, wire[:1], content)
	if !constantTimeEqual(mic, mac[:micLen]) {
		return nil, ErrBadMIC
	}
	return &JoinAcceptFrame{
		AppNonce:   uint32(content[0]) | uint32(content[1])<<8 | uint32(content[2])<<16,
		NetID:      uint32(content[3]) | uint32(content[4])<<8 | uint32(content[5])<<16,
		DevAddr:    DevAddr(binary.LittleEndian.Uint32(content[6:10])),
		DLSettings: content[10],
		RxDelay:    content[11],
	}, nil
}

// DeriveSessionKeys computes NwkSKey and AppSKey from the join exchange
// (LoRaWAN 1.0 §6.2.5): each is one AES-ECB encryption of a tagged
// AppNonce||NetID||DevNonce block under the AppKey.
//
// The derivation is pure and deterministic — same inputs, same keys, on
// the device and the network alike — and performs no validation beyond
// the AES key length: it cannot tell a verified exchange from a forged
// one. Callers must only feed it nonces from a MIC-verified join
// (ParseJoinRequest / ParseJoinAccept), and both sides must use the
// exact nonce values from the wire, or the derived keys silently
// diverge and every subsequent frame fails its MIC.
func DeriveSessionKeys(appKey []byte, appNonce, netID uint32, devNonce uint16) (nwkSKey, appSKey []byte, err error) {
	kc, err := NewKeyCipher(appKey)
	if err != nil {
		return nil, nil, err
	}
	nwk, app := DeriveSessionKeysCached(kc, appNonce, netID, devNonce)
	return nwk[:], app[:], nil
}

// DeriveSessionKeysCached is DeriveSessionKeys under a cached AppKey
// cipher, returning the keys by value.
func DeriveSessionKeysCached(kc *KeyCipher, appNonce, netID uint32, devNonce uint16) (nwkSKey, appSKey [blockSize]byte) {
	var st Scratch
	return DeriveSessionKeysScratch(kc, &st, appNonce, netID, devNonce)
}

// DeriveSessionKeysScratch is DeriveSessionKeysCached with caller-owned
// scratch: the local Scratch above escapes through the cipher interface,
// so the per-join hot path passes its own instead and allocates nothing.
func DeriveSessionKeysScratch(kc *KeyCipher, st *Scratch, appNonce, netID uint32, devNonce uint16) (nwkSKey, appSKey [blockSize]byte) {
	in := &st.b0
	*in = [blockSize]byte{} // the tail of the block is zero padding
	in[1], in[2], in[3] = uint8(appNonce), uint8(appNonce>>8), uint8(appNonce>>16)
	in[4], in[5], in[6] = uint8(netID), uint8(netID>>8), uint8(netID>>16)
	binary.LittleEndian.PutUint16(in[7:9], devNonce)
	in[0] = 0x01
	kc.Encrypt(st.ks[:], in[:])
	nwkSKey = st.ks
	in[0] = 0x02
	kc.Encrypt(st.ks[:], in[:])
	appSKey = st.ks
	return nwkSKey, appSKey
}
