package lorawan

import (
	"crypto/aes"
	"encoding/binary"
	"errors"
	"fmt"
)

// MType is the LoRaWAN message type (MHDR bits 7..5).
type MType uint8

// LoRaWAN 1.0 message types.
const (
	JoinRequest MType = iota
	JoinAccept
	UnconfirmedDataUp
	UnconfirmedDataDown
	ConfirmedDataUp
	ConfirmedDataDown
	RFU
	Proprietary
)

// String names the message type.
func (m MType) String() string {
	names := []string{
		"JoinRequest", "JoinAccept", "UnconfirmedDataUp", "UnconfirmedDataDown",
		"ConfirmedDataUp", "ConfirmedDataDown", "RFU", "Proprietary",
	}
	if int(m) < len(names) {
		return names[m]
	}
	return fmt.Sprintf("MType(%d)", uint8(m))
}

// IsUplink reports whether the type travels node → gateway.
func (m MType) IsUplink() bool {
	return m == JoinRequest || m == UnconfirmedDataUp || m == ConfirmedDataUp
}

// DevAddr is the 32-bit device address.
type DevAddr uint32

// String formats the address in the conventional hex form.
func (a DevAddr) String() string { return fmt.Sprintf("%08X", uint32(a)) }

// FCtrl is the frame control octet.
type FCtrl struct {
	ADR       bool
	ADRACKReq bool
	ACK       bool
	FPending  bool
	FOptsLen  uint8 // 0..15
}

func (f FCtrl) octet() uint8 {
	var b uint8
	if f.ADR {
		b |= 0x80
	}
	if f.ADRACKReq {
		b |= 0x40
	}
	if f.ACK {
		b |= 0x20
	}
	if f.FPending {
		b |= 0x10
	}
	return b | f.FOptsLen&0x0F
}

func fctrlFrom(b uint8) FCtrl {
	return FCtrl{
		ADR:       b&0x80 != 0,
		ADRACKReq: b&0x40 != 0,
		ACK:       b&0x20 != 0,
		FPending:  b&0x10 != 0,
		FOptsLen:  b & 0x0F,
	}
}

// DataFrame is a LoRaWAN data frame (MType *DataUp / *DataDown).
type DataFrame struct {
	MType      MType
	DevAddr    DevAddr
	FCtrl      FCtrl
	FCnt       uint16
	FOpts      []byte
	FPort      uint8  // meaningful only when FRMPayload is present
	HasPort    bool   // whether FPort (and a payload) is present
	FRMPayload []byte // encrypted on the wire; plaintext in memory
}

// Errors returned by the frame codec.
var (
	ErrTooShort = errors.New("lorawan: frame too short")
	ErrBadMIC   = errors.New("lorawan: MIC verification failed")
	ErrBadMType = errors.New("lorawan: not a data frame")
)

const micLen = 4

// Marshal serializes the frame, encrypting FRMPayload with appSKey and
// appending the MIC computed under nwkSKey. Both keys are 16 bytes.
func (f *DataFrame) Marshal(nwkSKey, appSKey []byte) ([]byte, error) {
	if f.MType != UnconfirmedDataUp && f.MType != UnconfirmedDataDown &&
		f.MType != ConfirmedDataUp && f.MType != ConfirmedDataDown {
		return nil, ErrBadMType
	}
	if len(f.FOpts) > 15 {
		return nil, fmt.Errorf("lorawan: FOpts too long (%d)", len(f.FOpts))
	}
	f.FCtrl.FOptsLen = uint8(len(f.FOpts))

	buf := make([]byte, 0, 12+len(f.FOpts)+1+len(f.FRMPayload)+micLen)
	buf = append(buf, uint8(f.MType)<<5)
	var addr [4]byte
	binary.LittleEndian.PutUint32(addr[:], uint32(f.DevAddr))
	buf = append(buf, addr[:]...)
	buf = append(buf, f.FCtrl.octet())
	var fcnt [2]byte
	binary.LittleEndian.PutUint16(fcnt[:], f.FCnt)
	buf = append(buf, fcnt[:]...)
	buf = append(buf, f.FOpts...)
	if f.HasPort {
		buf = append(buf, f.FPort)
		enc, err := cryptPayload(appSKey, f.DevAddr, uint32(f.FCnt), f.MType.IsUplink(), f.FRMPayload)
		if err != nil {
			return nil, err
		}
		buf = append(buf, enc...)
	}

	mic, err := computeMIC(nwkSKey, f.DevAddr, uint32(f.FCnt), f.MType.IsUplink(), buf)
	if err != nil {
		return nil, err
	}
	return append(buf, mic...), nil
}

// ParseDataFrame parses and verifies a data frame, decrypting FRMPayload.
func ParseDataFrame(wire, nwkSKey, appSKey []byte) (*DataFrame, error) {
	if len(wire) < 1+7+micLen {
		return nil, ErrTooShort
	}
	mtype := MType(wire[0] >> 5)
	switch mtype {
	case UnconfirmedDataUp, UnconfirmedDataDown, ConfirmedDataUp, ConfirmedDataDown:
	default:
		return nil, ErrBadMType
	}
	body := wire[:len(wire)-micLen]
	mic := wire[len(wire)-micLen:]

	f := &DataFrame{MType: mtype}
	f.DevAddr = DevAddr(binary.LittleEndian.Uint32(wire[1:5]))
	f.FCtrl = fctrlFrom(wire[5])
	f.FCnt = binary.LittleEndian.Uint16(wire[6:8])

	want, err := computeMIC(nwkSKey, f.DevAddr, uint32(f.FCnt), mtype.IsUplink(), body)
	if err != nil {
		return nil, err
	}
	if !constantTimeEqual(mic, want) {
		return nil, ErrBadMIC
	}

	off := 8
	if int(f.FCtrl.FOptsLen) > len(body)-off {
		return nil, ErrTooShort
	}
	f.FOpts = append([]byte(nil), body[off:off+int(f.FCtrl.FOptsLen)]...)
	off += int(f.FCtrl.FOptsLen)
	if off < len(body) {
		f.HasPort = true
		f.FPort = body[off]
		off++
		plain, err := cryptPayload(appSKey, f.DevAddr, uint32(f.FCnt), mtype.IsUplink(), body[off:])
		if err != nil {
			return nil, err
		}
		f.FRMPayload = plain
	}
	return f, nil
}

// computeMIC builds the LoRaWAN B0 block and returns the first 4 bytes of
// the CMAC over B0 || msg.
func computeMIC(nwkSKey []byte, addr DevAddr, fcnt uint32, uplink bool, msg []byte) ([]byte, error) {
	b0 := make([]byte, blockSize, blockSize+len(msg))
	b0[0] = 0x49
	if !uplink {
		b0[5] = 1
	}
	binary.LittleEndian.PutUint32(b0[6:10], uint32(addr))
	binary.LittleEndian.PutUint32(b0[10:14], fcnt)
	b0[15] = uint8(len(msg))
	mac, err := CMAC(nwkSKey, append(b0, msg...))
	if err != nil {
		return nil, err
	}
	return mac[:micLen], nil
}

// cryptPayload applies the LoRaWAN counter-mode cipher (spec §4.3.3); it is
// its own inverse.
func cryptPayload(appSKey []byte, addr DevAddr, fcnt uint32, uplink bool, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(appSKey)
	if err != nil {
		return nil, fmt.Errorf("lorawan: %w", err)
	}
	out := make([]byte, len(data))
	var a, s [blockSize]byte
	a[0] = 0x01
	if !uplink {
		a[5] = 1
	}
	binary.LittleEndian.PutUint32(a[6:10], uint32(addr))
	binary.LittleEndian.PutUint32(a[10:14], fcnt)
	for i := 0; i < len(data); i += blockSize {
		a[15] = uint8(i/blockSize + 1)
		block.Encrypt(s[:], a[:])
		for j := 0; j < blockSize && i+j < len(data); j++ {
			out[i+j] = data[i+j] ^ s[j]
		}
	}
	return out, nil
}
