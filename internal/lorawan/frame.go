package lorawan

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MType is the LoRaWAN message type (MHDR bits 7..5).
type MType uint8

// LoRaWAN 1.0 message types.
const (
	JoinRequest MType = iota
	JoinAccept
	UnconfirmedDataUp
	UnconfirmedDataDown
	ConfirmedDataUp
	ConfirmedDataDown
	RFU
	Proprietary
)

// String names the message type.
func (m MType) String() string {
	names := []string{
		"JoinRequest", "JoinAccept", "UnconfirmedDataUp", "UnconfirmedDataDown",
		"ConfirmedDataUp", "ConfirmedDataDown", "RFU", "Proprietary",
	}
	if int(m) < len(names) {
		return names[m]
	}
	return fmt.Sprintf("MType(%d)", uint8(m))
}

// IsUplink reports whether the type travels node → gateway.
func (m MType) IsUplink() bool {
	return m == JoinRequest || m == UnconfirmedDataUp || m == ConfirmedDataUp
}

// DevAddr is the 32-bit device address.
type DevAddr uint32

// String renders the address as 8 upper-case hex digits (the "%08X"
// form), hand-rolled for the same reason as EUI.String.
func (a DevAddr) String() string {
	var b [8]byte
	v := uint32(a)
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = upperhex[v&0xF]
		v >>= 4
	}
	return string(b[:])
}

// FCtrl is the frame control octet.
type FCtrl struct {
	ADR       bool
	ADRACKReq bool
	ACK       bool
	FPending  bool
	FOptsLen  uint8 // 0..15
}

func (f FCtrl) octet() uint8 {
	var b uint8
	if f.ADR {
		b |= 0x80
	}
	if f.ADRACKReq {
		b |= 0x40
	}
	if f.ACK {
		b |= 0x20
	}
	if f.FPending {
		b |= 0x10
	}
	return b | f.FOptsLen&0x0F
}

func fctrlFrom(b uint8) FCtrl {
	return FCtrl{
		ADR:       b&0x80 != 0,
		ADRACKReq: b&0x40 != 0,
		ACK:       b&0x20 != 0,
		FPending:  b&0x10 != 0,
		FOptsLen:  b & 0x0F,
	}
}

// DataFrame is a LoRaWAN data frame (MType *DataUp / *DataDown).
type DataFrame struct {
	MType      MType
	DevAddr    DevAddr
	FCtrl      FCtrl
	FCnt       uint16
	FOpts      []byte
	FPort      uint8  // meaningful only when FRMPayload is present
	HasPort    bool   // whether FPort (and a payload) is present
	FRMPayload []byte // encrypted on the wire; plaintext in memory
}

// Errors returned by the frame codec.
var (
	ErrTooShort = errors.New("lorawan: frame too short")
	ErrBadMIC   = errors.New("lorawan: MIC verification failed")
	ErrBadMType = errors.New("lorawan: not a data frame")
)

const micLen = 4

// Marshal serializes the frame, encrypting FRMPayload with appSKey and
// appending the MIC computed under nwkSKey. Both keys are 16 bytes.
func (f *DataFrame) Marshal(nwkSKey, appSKey []byte) ([]byte, error) {
	if f.MType != UnconfirmedDataUp && f.MType != UnconfirmedDataDown &&
		f.MType != ConfirmedDataUp && f.MType != ConfirmedDataDown {
		return nil, ErrBadMType
	}
	if len(f.FOpts) > 15 {
		return nil, fmt.Errorf("lorawan: FOpts too long (%d)", len(f.FOpts))
	}
	f.FCtrl.FOptsLen = uint8(len(f.FOpts))

	buf := make([]byte, 0, 12+len(f.FOpts)+1+len(f.FRMPayload)+micLen)
	buf = append(buf, uint8(f.MType)<<5)
	var addr [4]byte
	binary.LittleEndian.PutUint32(addr[:], uint32(f.DevAddr))
	buf = append(buf, addr[:]...)
	buf = append(buf, f.FCtrl.octet())
	var fcnt [2]byte
	binary.LittleEndian.PutUint16(fcnt[:], f.FCnt)
	buf = append(buf, fcnt[:]...)
	buf = append(buf, f.FOpts...)
	if f.HasPort {
		buf = append(buf, f.FPort)
		enc, err := cryptPayload(appSKey, f.DevAddr, uint32(f.FCnt), f.MType.IsUplink(), f.FRMPayload)
		if err != nil {
			return nil, err
		}
		buf = append(buf, enc...)
	}

	mic, err := computeMIC(nwkSKey, f.DevAddr, uint32(f.FCnt), f.MType.IsUplink(), buf)
	if err != nil {
		return nil, err
	}
	return append(buf, mic...), nil
}

// ParseDataFrame parses and verifies a data frame, decrypting FRMPayload.
func ParseDataFrame(wire, nwkSKey, appSKey []byte) (*DataFrame, error) {
	if len(wire) < 1+7+micLen {
		return nil, ErrTooShort
	}
	mtype := MType(wire[0] >> 5)
	switch mtype {
	case UnconfirmedDataUp, UnconfirmedDataDown, ConfirmedDataUp, ConfirmedDataDown:
	default:
		return nil, ErrBadMType
	}
	body := wire[:len(wire)-micLen]
	mic := wire[len(wire)-micLen:]

	f := &DataFrame{MType: mtype}
	f.DevAddr = DevAddr(binary.LittleEndian.Uint32(wire[1:5]))
	f.FCtrl = fctrlFrom(wire[5])
	f.FCnt = binary.LittleEndian.Uint16(wire[6:8])

	want, err := computeMIC(nwkSKey, f.DevAddr, uint32(f.FCnt), mtype.IsUplink(), body)
	if err != nil {
		return nil, err
	}
	if !constantTimeEqual(mic, want) {
		return nil, ErrBadMIC
	}

	off := 8
	if int(f.FCtrl.FOptsLen) > len(body)-off {
		return nil, ErrTooShort
	}
	f.FOpts = append([]byte(nil), body[off:off+int(f.FCtrl.FOptsLen)]...)
	off += int(f.FCtrl.FOptsLen)
	if off < len(body) {
		f.HasPort = true
		f.FPort = body[off]
		off++
		plain, err := cryptPayload(appSKey, f.DevAddr, uint32(f.FCnt), mtype.IsUplink(), body[off:])
		if err != nil {
			return nil, err
		}
		f.FRMPayload = plain
	}
	return f, nil
}

// MIC computes the 4-byte LoRaWAN data-frame MIC under a cached NwkSKey:
// the first 4 bytes of the CMAC over the B0 block and msg, concatenated
// logically (never materialized). Zero allocations.
func (kc *KeyCipher) MIC(st *Scratch, addr DevAddr, fcnt uint32, uplink bool, msg []byte) [micLen]byte {
	b0 := &st.b0
	*b0 = [blockSize]byte{}
	b0[0] = 0x49
	if !uplink {
		b0[5] = 1
	}
	binary.LittleEndian.PutUint32(b0[6:10], uint32(addr))
	binary.LittleEndian.PutUint32(b0[10:14], fcnt)
	b0[15] = uint8(len(msg))
	mac := kc.MAC(st, b0[:], msg)
	var mic [micLen]byte
	copy(mic[:], mac[:micLen])
	return mic
}

// VerifyDataMIC checks a whole data-frame wire image (body || 4-byte MIC)
// against a cached NwkSKey in constant time, allocating nothing. The
// caller has already checked len(wire) > micLen.
func (kc *KeyCipher) VerifyDataMIC(st *Scratch, addr DevAddr, fcnt uint32, uplink bool, wire []byte) bool {
	body := wire[:len(wire)-micLen]
	want := kc.MIC(st, addr, fcnt, uplink, body)
	return constantTimeEqual(wire[len(wire)-micLen:], want[:])
}

// CryptPayload applies the LoRaWAN counter-mode cipher (spec §4.3.3) under
// a cached AppSKey, appending the result to dst (which may be nil) and
// returning the extended slice. The cipher is its own inverse, so the same
// call encrypts and decrypts.
func (kc *KeyCipher) CryptPayload(st *Scratch, dst []byte, addr DevAddr, fcnt uint32, uplink bool, data []byte) []byte {
	base := len(dst)
	dst = append(dst, data...)
	out := dst[base:]
	a, s := &st.b0, &st.ks
	*a = [blockSize]byte{}
	a[0] = 0x01
	if !uplink {
		a[5] = 1
	}
	binary.LittleEndian.PutUint32(a[6:10], uint32(addr))
	binary.LittleEndian.PutUint32(a[10:14], fcnt)
	for i := 0; i < len(out); i += blockSize {
		a[15] = uint8(i/blockSize + 1)
		kc.block.Encrypt(s[:], a[:])
		for j := 0; j < blockSize && i+j < len(out); j++ {
			out[i+j] ^= s[j]
		}
	}
	return dst
}

// computeMIC builds the LoRaWAN B0 block and returns the first 4 bytes of
// the CMAC over B0 || msg.
func computeMIC(nwkSKey []byte, addr DevAddr, fcnt uint32, uplink bool, msg []byte) ([]byte, error) {
	kc, err := NewKeyCipher(nwkSKey)
	if err != nil {
		return nil, err
	}
	var st Scratch
	mic := kc.MIC(&st, addr, fcnt, uplink, msg)
	return mic[:], nil
}

// cryptPayload applies the LoRaWAN counter-mode cipher (spec §4.3.3); it is
// its own inverse.
func cryptPayload(appSKey []byte, addr DevAddr, fcnt uint32, uplink bool, data []byte) ([]byte, error) {
	kc, err := NewKeyCipher(appSKey)
	if err != nil {
		return nil, err
	}
	var st Scratch
	return kc.CryptPayload(&st, nil, addr, fcnt, uplink, data), nil
}

// DataHeader is the fixed prefix of a data frame, extracted without
// verification, decryption or allocation: what an ingest pipeline needs to
// route the frame (session lookup, dedup key) before it spends crypto on
// it. HasPort additionally reports whether an FPort octet (and therefore a
// payload) is present; PayloadOff is the wire offset of the encrypted
// FRMPayload when it is.
type DataHeader struct {
	MType      MType
	DevAddr    DevAddr
	FCtrl      FCtrl
	FCnt       uint16
	FPort      uint8
	HasPort    bool
	PayloadOff int
}

// ParseDataHeader extracts the routing header of a data frame, reporting
// false for anything too short, of the wrong MType, or whose FOptsLen
// overruns the body. It performs no MIC check — callers verify with
// KeyCipher.VerifyDataMIC once the session key is known.
func ParseDataHeader(wire []byte) (DataHeader, bool) {
	var h DataHeader
	if len(wire) < 1+7+micLen {
		return h, false
	}
	h.MType = MType(wire[0] >> 5)
	switch h.MType {
	case UnconfirmedDataUp, UnconfirmedDataDown, ConfirmedDataUp, ConfirmedDataDown:
	default:
		return h, false
	}
	body := wire[:len(wire)-micLen]
	h.DevAddr = DevAddr(binary.LittleEndian.Uint32(wire[1:5]))
	h.FCtrl = fctrlFrom(wire[5])
	h.FCnt = binary.LittleEndian.Uint16(wire[6:8])
	off := 8 + int(h.FCtrl.FOptsLen)
	if off > len(body) {
		return h, false
	}
	if off < len(body) {
		h.HasPort = true
		h.FPort = body[off]
		h.PayloadOff = off + 1
	}
	return h, true
}
