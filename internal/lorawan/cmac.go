// Package lorawan implements the LoRaWAN 1.0.x MAC layer pieces a gateway
// needs to make use of decoded PHY payloads: data-frame parsing
// (MHDR/FHDR/FPort/FRMPayload), the AES-CMAC message integrity check, and
// the counter-mode payload encryption, all on the standard library's AES.
//
// The paper's system stops at the PHY (§3); this package is the substrate
// that turns its output into verified application data.
//
// Two API tiers share one implementation. The original helpers (CMAC,
// ParseDataFrame, ParseJoinRequest, ...) take a raw []byte key and expand
// it on every call — simple, but one aes.NewCipher plus subkey schedule
// per invocation. The cached tier takes a *KeyCipher, which pins the
// expanded AES block and the CMAC subkeys once per key, and writes into
// caller-provided buffers, so the network server's steady-state verify
// path performs zero allocations and zero key schedules per frame.
package lorawan

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"fmt"
	"sync"
)

// AES-CMAC per RFC 4493, used for the LoRaWAN MIC.

const blockSize = 16

// KeyCipher is one 16-byte key's expanded cipher state: the AES block and
// the two CMAC subkeys. Building it costs one aes.NewCipher and one block
// encryption; every MAC or counter-mode call after that is schedule-free.
// A KeyCipher is immutable after NewKeyCipher and safe for concurrent use
// (cipher.Block is; the subkeys are read-only).
type KeyCipher struct {
	block  cipher.Block
	k1, k2 [blockSize]byte
}

// cipherCache interns KeyCiphers process-wide. Key expansion is pure —
// the same 16 bytes always produce the same state — and a KeyCipher is
// immutable, so every caller asking for the same key can share one
// instance. This turns repeated server construction and rejoin-heavy
// churn (device AppKeys re-expanded per restart, session keys re-derived
// per join) from three heap allocations each into a map hit. The cache is
// dropped wholesale when it reaches cipherCacheMax live keys, bounding
// memory under adversarial key churn while keeping the steady fleet —
// whose working set is one AppKey plus two session keys per device —
// permanently warm.
var cipherCache = struct {
	sync.Mutex
	m map[[blockSize]byte]*KeyCipher
}{m: make(map[[blockSize]byte]*KeyCipher)}

const cipherCacheMax = 1 << 14

// NewKeyCipher expands key (16 bytes) into a reusable cipher state.
// Results are interned: two calls with equal keys may return the same
// (immutable, concurrency-safe) instance.
func NewKeyCipher(key []byte) (*KeyCipher, error) {
	if len(key) != blockSize {
		// Out-of-band lengths skip the cache; let aes report the error.
		_, err := aes.NewCipher(key)
		return nil, fmt.Errorf("lorawan: %w", err)
	}
	var k [blockSize]byte
	copy(k[:], key)
	cipherCache.Lock()
	if kc := cipherCache.m[k]; kc != nil {
		cipherCache.Unlock()
		return kc, nil
	}
	cipherCache.Unlock()

	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("lorawan: %w", err)
	}
	kc := &KeyCipher{block: block}
	// kc.k1 doubles as the encrypted-zero scratch: buffers passed through
	// the cipher.Block interface escape, so local arrays here would cost
	// two heap allocations per key; kc's own storage is already heap.
	kc.k1 = zeroBlock
	block.Encrypt(kc.k1[:], kc.k1[:])
	kc.k1, kc.k2 = cmacSubkeys(kc.k1)

	cipherCache.Lock()
	if len(cipherCache.m) >= cipherCacheMax {
		cipherCache.m = make(map[[blockSize]byte]*KeyCipher)
	}
	cipherCache.m[k] = kc
	cipherCache.Unlock()
	return kc, nil
}

// zeroBlock is the all-zero CMAC subkey seed.
var zeroBlock [blockSize]byte

// cmacSubkeys derives K1 and K2 from the block cipher.
func cmacSubkeys(encZero [blockSize]byte) (k1, k2 [blockSize]byte) {
	k1 = shiftLeft(encZero)
	if encZero[0]&0x80 != 0 {
		k1[blockSize-1] ^= 0x87
	}
	k2 = shiftLeft(k1)
	if k1[0]&0x80 != 0 {
		k2[blockSize-1] ^= 0x87
	}
	return k1, k2
}

func shiftLeft(b [blockSize]byte) [blockSize]byte {
	var out [blockSize]byte
	var carry byte
	for i := blockSize - 1; i >= 0; i-- {
		out[i] = b[i]<<1 | carry
		carry = b[i] >> 7
	}
	return out
}

// Scratch holds the block-sized work buffers the cached crypto paths hand
// to the AES cipher. They live in a caller-owned struct rather than as
// locals because arguments to a cipher.Block interface call are assumed by
// escape analysis to escape — as locals, every one would be a fresh heap
// allocation per frame. Hold one Scratch per goroutine (the netserver
// keeps one per verify worker); a Scratch must not be shared concurrently.
type Scratch struct {
	x, blk, b0, ks, mac [blockSize]byte
}

// MAC computes the AES-CMAC over the logical concatenation of the given
// segments without materializing it: the LoRaWAN MIC inputs are always a
// fixed header block followed by the frame bytes (B0 || msg), and gluing
// them here removes the per-frame append the raw-key path pays. It
// allocates nothing. Segments may alias st.b0 (the MIC path does); the
// other Scratch fields are clobbered.
func (kc *KeyCipher) MAC(st *Scratch, segs ...[]byte) [blockSize]byte {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	n := (total + blockSize - 1) / blockSize
	lastComplete := n > 0 && total%blockSize == 0
	if n == 0 {
		n = 1
	}

	// Assemble the concatenation block by block with a copy cursor,
	// encrypting every block but the last as it fills.
	x, blk := &st.x, &st.blk
	*x = [blockSize]byte{}
	blkLen, blocksDone := 0, 0
	for _, s := range segs {
		for len(s) > 0 {
			c := copy(blk[blkLen:], s)
			blkLen += c
			s = s[c:]
			if blkLen == blockSize && blocksDone < n-1 {
				for j := 0; j < blockSize; j++ {
					x[j] ^= blk[j]
				}
				kc.block.Encrypt(x[:], x[:])
				blocksDone++
				blkLen = 0
			}
		}
	}

	if lastComplete {
		for j := 0; j < blockSize; j++ {
			blk[j] ^= kc.k1[j]
		}
	} else {
		for j := blkLen; j < blockSize; j++ {
			blk[j] = 0
		}
		blk[blkLen] = 0x80
		for j := 0; j < blockSize; j++ {
			blk[j] ^= kc.k2[j]
		}
	}
	for j := 0; j < blockSize; j++ {
		x[j] ^= blk[j]
	}
	kc.block.Encrypt(st.mac[:], x[:])
	return st.mac
}

// Encrypt runs one raw AES block encryption (dst and src are 16 bytes).
// Exposed for the join-accept and key-derivation paths, which use the
// block primitive directly per the specification.
func (kc *KeyCipher) Encrypt(dst, src []byte) { kc.block.Encrypt(dst, src) }

// Decrypt runs one raw AES block decryption (dst and src are 16 bytes).
func (kc *KeyCipher) Decrypt(dst, src []byte) { kc.block.Decrypt(dst, src) }

// CMAC computes the 16-byte AES-CMAC of msg under key (16 bytes). It is
// the raw-key convenience over NewKeyCipher + MAC; callers on a hot path
// should hold a KeyCipher instead.
func CMAC(key, msg []byte) ([blockSize]byte, error) {
	kc, err := NewKeyCipher(key)
	if err != nil {
		return [blockSize]byte{}, err
	}
	var st Scratch
	return kc.MAC(&st, msg), nil
}

// constantTimeEqual compares MICs without leaking timing.
func constantTimeEqual(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}
