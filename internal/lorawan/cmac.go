// Package lorawan implements the LoRaWAN 1.0.x MAC layer pieces a gateway
// needs to make use of decoded PHY payloads: data-frame parsing
// (MHDR/FHDR/FPort/FRMPayload), the AES-CMAC message integrity check, and
// the counter-mode payload encryption, all on the standard library's AES.
//
// The paper's system stops at the PHY (§3); this package is the substrate
// that turns its output into verified application data.
package lorawan

import (
	"crypto/aes"
	"crypto/subtle"
	"fmt"
)

// AES-CMAC per RFC 4493, used for the LoRaWAN MIC.

const blockSize = 16

// cmacSubkeys derives K1 and K2 from the block cipher.
func cmacSubkeys(encZero [blockSize]byte) (k1, k2 [blockSize]byte) {
	k1 = shiftLeft(encZero)
	if encZero[0]&0x80 != 0 {
		k1[blockSize-1] ^= 0x87
	}
	k2 = shiftLeft(k1)
	if k1[0]&0x80 != 0 {
		k2[blockSize-1] ^= 0x87
	}
	return k1, k2
}

func shiftLeft(b [blockSize]byte) [blockSize]byte {
	var out [blockSize]byte
	var carry byte
	for i := blockSize - 1; i >= 0; i-- {
		out[i] = b[i]<<1 | carry
		carry = b[i] >> 7
	}
	return out
}

// CMAC computes the 16-byte AES-CMAC of msg under key (16 bytes).
func CMAC(key, msg []byte) ([blockSize]byte, error) {
	var mac [blockSize]byte
	block, err := aes.NewCipher(key)
	if err != nil {
		return mac, fmt.Errorf("lorawan: %w", err)
	}
	var zero, encZero [blockSize]byte
	block.Encrypt(encZero[:], zero[:])
	k1, k2 := cmacSubkeys(encZero)

	n := (len(msg) + blockSize - 1) / blockSize
	lastComplete := n > 0 && len(msg)%blockSize == 0
	if n == 0 {
		n = 1
	}

	var x [blockSize]byte
	for i := 0; i < n-1; i++ {
		for j := 0; j < blockSize; j++ {
			x[j] ^= msg[i*blockSize+j]
		}
		block.Encrypt(x[:], x[:])
	}

	var last [blockSize]byte
	if lastComplete {
		copy(last[:], msg[(n-1)*blockSize:])
		for j := 0; j < blockSize; j++ {
			last[j] ^= k1[j]
		}
	} else {
		rem := msg[(n-1)*blockSize:]
		copy(last[:], rem)
		last[len(rem)] = 0x80
		for j := 0; j < blockSize; j++ {
			last[j] ^= k2[j]
		}
	}
	for j := 0; j < blockSize; j++ {
		x[j] ^= last[j]
	}
	block.Encrypt(mac[:], x[:])
	return mac, nil
}

// constantTimeEqual compares MICs without leaking timing.
func constantTimeEqual(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}
