package lorawan

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestKeyCipherMACMatchesCMAC pins the cached CMAC against the raw-key
// reference across message lengths spanning the empty, partial-block,
// exact-block and multi-block regimes, and across segment splits: the MIC
// over B0 || msg must not depend on how the segments are sliced.
func TestKeyCipherMACMatchesCMAC(t *testing.T) {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(0xA0 + i)
	}
	kc, err := NewKeyCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var st Scratch
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 64, 222} {
		msg := make([]byte, n)
		rng.Read(msg)
		want, err := CMAC(key, msg)
		if err != nil {
			t.Fatal(err)
		}
		if got := kc.MAC(&st, msg); got != want {
			t.Errorf("len %d: single-segment MAC diverged from CMAC", n)
		}
		for _, split := range []int{0, 1, n / 2, n} {
			if split > n {
				continue
			}
			if got := kc.MAC(&st, msg[:split], msg[split:]); got != want {
				t.Errorf("len %d split %d: segmented MAC diverged", n, split)
			}
		}
		if got := kc.MAC(&st, nil, msg, nil); got != want {
			t.Errorf("len %d: empty segments perturbed the MAC", n)
		}
	}
}

// TestCachedDataFramePathsMatchLegacy round-trips a data frame through the
// legacy Marshal/ParseDataFrame pair and re-verifies it with the cached
// header-parse + MIC + payload-crypt pipeline an ingest hot path uses.
func TestCachedDataFramePathsMatchLegacy(t *testing.T) {
	nwk, app := make([]byte, 16), make([]byte, 16)
	for i := range nwk {
		nwk[i], app[i] = byte(i), byte(0x80+i)
	}
	f := &DataFrame{
		MType: ConfirmedDataUp, DevAddr: 0x26AA55EE, FCnt: 0xBEEF,
		FOpts: []byte{0x02, 0x30}, HasPort: true, FPort: 12,
		FRMPayload: []byte("cached-path payload"),
	}
	wire, err := f.Marshal(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ParseDataFrame(wire, nwk, app)
	if err != nil {
		t.Fatal(err)
	}

	h, ok := ParseDataHeader(wire)
	if !ok {
		t.Fatal("ParseDataHeader rejected a valid frame")
	}
	if h.MType != ref.MType || h.DevAddr != ref.DevAddr || h.FCnt != ref.FCnt ||
		h.FCtrl != ref.FCtrl || h.HasPort != ref.HasPort || h.FPort != ref.FPort {
		t.Errorf("header = %+v, legacy parse = %+v", h, ref)
	}
	nkc, _ := NewKeyCipher(nwk)
	akc, _ := NewKeyCipher(app)
	var st Scratch
	if !nkc.VerifyDataMIC(&st, h.DevAddr, uint32(h.FCnt), h.MType.IsUplink(), wire) {
		t.Error("cached MIC verification refused a valid frame")
	}
	tampered := append([]byte(nil), wire...)
	tampered[len(tampered)-2] ^= 0x40
	if nkc.VerifyDataMIC(&st, h.DevAddr, uint32(h.FCnt), h.MType.IsUplink(), tampered) {
		t.Error("cached MIC verification accepted a tampered frame")
	}
	enc := wire[h.PayloadOff : len(wire)-4]
	plain := akc.CryptPayload(&st, nil, h.DevAddr, uint32(h.FCnt), h.MType.IsUplink(), enc)
	if !bytes.Equal(plain, ref.FRMPayload) {
		t.Errorf("cached decrypt = %q, legacy = %q", plain, ref.FRMPayload)
	}
	// Append-into: decrypting onto a prefix extends without clobbering it.
	buf := append(make([]byte, 0, 64), 'x', 'y')
	buf = akc.CryptPayload(&st, buf, h.DevAddr, uint32(h.FCnt), h.MType.IsUplink(), enc)
	if string(buf[:2]) != "xy" || !bytes.Equal(buf[2:], ref.FRMPayload) {
		t.Errorf("append-into decrypt clobbered its destination: %q", buf)
	}
}

// TestParseDataHeaderRejects mirrors the codec's framing errors.
func TestParseDataHeaderRejects(t *testing.T) {
	if _, ok := ParseDataHeader([]byte{0x40, 1, 2}); ok {
		t.Error("short frame accepted")
	}
	if _, ok := ParseDataHeader(make([]byte, 16)); ok {
		t.Error("JoinRequest MType accepted as data")
	}
	// FOptsLen pointing past the body.
	w := make([]byte, 12)
	w[0] = uint8(UnconfirmedDataUp) << 5
	w[5] = 0x0F
	if _, ok := ParseDataHeader(w); ok {
		t.Error("FOptsLen overrun accepted")
	}
}

// TestCachedJoinPathsMatchLegacy pins the cached join request/accept and
// key-derivation variants byte-for-byte against the raw-key originals.
func TestCachedJoinPathsMatchLegacy(t *testing.T) {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(0x31 + i)
	}
	kc, _ := NewKeyCipher(key)

	jr := &JoinRequestFrame{AppEUI: 0xA1B2, DevEUI: 0xC3D4, DevNonce: 0x55AA}
	wire, err := jr.Marshal(key)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ParseJoinRequest(wire, key)
	if err != nil {
		t.Fatal(err)
	}
	var st Scratch
	got, err := ParseJoinRequestCached(wire, kc, &st)
	if err != nil || got != *ref {
		t.Errorf("cached join parse = %+v (%v), legacy = %+v", got, err, ref)
	}
	wire[3] ^= 1
	if _, err := ParseJoinRequestCached(wire, kc, &st); err != ErrBadMIC {
		t.Errorf("tampered cached join parse = %v, want ErrBadMIC", err)
	}

	acc := &JoinAcceptFrame{AppNonce: 0x00ABCD, NetID: 0x000013, DevAddr: 0x26000007, RxDelay: 1}
	legacy, err := acc.Marshal(key)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := acc.MarshalCached(kc)
	if err != nil || !bytes.Equal(legacy, cached) {
		t.Errorf("cached join accept diverged (%v):\n%x\n%x", err, legacy, cached)
	}

	nwkRef, appRef, err := DeriveSessionKeys(key, 0x00ABCD, 0x000013, 0x55AA)
	if err != nil {
		t.Fatal(err)
	}
	nwk, app := DeriveSessionKeysCached(kc, 0x00ABCD, 0x000013, 0x55AA)
	if !bytes.Equal(nwk[:], nwkRef) || !bytes.Equal(app[:], appRef) {
		t.Error("cached key derivation diverged from legacy")
	}
}

// TestCachedVerifyAllocs pins the zero-allocation contract of the cached
// verify path: header parse, MIC check, payload decrypt into a reused
// buffer, and a cached join-request parse must allocate nothing.
func TestCachedVerifyAllocs(t *testing.T) {
	nwk, app := make([]byte, 16), make([]byte, 16)
	for i := range nwk {
		nwk[i], app[i] = byte(i), byte(0x80+i)
	}
	f := &DataFrame{
		MType: UnconfirmedDataUp, DevAddr: 0x2600AA01, FCnt: 9,
		HasPort: true, FPort: 1, FRMPayload: []byte("steady-state payload"),
	}
	wire, err := f.Marshal(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	nkc, _ := NewKeyCipher(nwk)
	akc, _ := NewKeyCipher(app)
	var st Scratch
	scratch := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		h, ok := ParseDataHeader(wire)
		if !ok {
			t.Fatal("header parse failed")
		}
		if !nkc.VerifyDataMIC(&st, h.DevAddr, uint32(h.FCnt), true, wire) {
			t.Fatal("MIC failed")
		}
		scratch = akc.CryptPayload(&st, scratch[:0], h.DevAddr, uint32(h.FCnt), true, wire[h.PayloadOff:len(wire)-4])
	})
	if allocs != 0 {
		t.Errorf("cached data verify allocates %.1f/op, want 0", allocs)
	}

	dev := &JoinRequestFrame{AppEUI: 1, DevEUI: 2, DevNonce: 3}
	key := make([]byte, 16)
	jw, err := dev.Marshal(key)
	if err != nil {
		t.Fatal(err)
	}
	kc, _ := NewKeyCipher(key)
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := ParseJoinRequestCached(jw, kc, &st); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached join parse allocates %.1f/op, want 0", allocs)
	}
}
