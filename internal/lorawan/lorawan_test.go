package lorawan

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 4493 test vectors for AES-CMAC.
func TestCMACRFC4493Vectors(t *testing.T) {
	key, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	msg, _ := hex.DecodeString(
		"6bc1bee22e409f96e93d7e117393172a" +
			"ae2d8a571e03ac9c9eb76fac45af8e51" +
			"30c81c46a35ce411e5fbc1191a0a52ef" +
			"f69f2445df4f9b17ad2b417be66c3710")
	cases := []struct {
		n    int
		want string
	}{
		{0, "bb1d6929e95937287fa37d129b756746"},
		{16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{40, "dfa66747de9ae63030ca32611497c827"},
		{64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for _, c := range cases {
		mac, err := CMAC(key, msg[:c.n])
		if err != nil {
			t.Fatal(err)
		}
		if got := hex.EncodeToString(mac[:]); got != c.want {
			t.Errorf("len %d: %s, want %s", c.n, got, c.want)
		}
	}
}

func TestCMACBadKey(t *testing.T) {
	if _, err := CMAC([]byte{1, 2, 3}, nil); err == nil {
		t.Error("short key accepted")
	}
}

func testKeys() (nwk, app []byte) {
	nwk = bytes.Repeat([]byte{0x2B}, 16)
	app = bytes.Repeat([]byte{0x7E}, 16)
	return
}

func TestDataFrameRoundTrip(t *testing.T) {
	nwk, app := testKeys()
	f := &DataFrame{
		MType:      UnconfirmedDataUp,
		DevAddr:    0x26011F2A,
		FCtrl:      FCtrl{ADR: true},
		FCnt:       1234,
		FOpts:      []byte{0x02},
		HasPort:    true,
		FPort:      10,
		FRMPayload: []byte("hello lorawan"),
	}
	wire, err := f.Marshal(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDataFrame(wire, nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	if got.DevAddr != f.DevAddr || got.FCnt != f.FCnt || got.FPort != f.FPort {
		t.Errorf("header mismatch: %+v", got)
	}
	if !got.FCtrl.ADR || got.FCtrl.ACK {
		t.Errorf("FCtrl mismatch: %+v", got.FCtrl)
	}
	if !bytes.Equal(got.FOpts, f.FOpts) {
		t.Errorf("FOpts mismatch")
	}
	if !bytes.Equal(got.FRMPayload, f.FRMPayload) {
		t.Errorf("payload %q, want %q", got.FRMPayload, f.FRMPayload)
	}
}

func TestDataFramePayloadEncryptedOnWire(t *testing.T) {
	nwk, app := testKeys()
	payload := []byte("super secret payload bytes")
	f := &DataFrame{
		MType: UnconfirmedDataUp, DevAddr: 1, FCnt: 7,
		HasPort: true, FPort: 1, FRMPayload: payload,
	}
	wire, err := f.Marshal(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(wire, payload) {
		t.Error("plaintext payload leaked onto the wire")
	}
}

func TestDataFrameMICDetectsTampering(t *testing.T) {
	nwk, app := testKeys()
	f := &DataFrame{
		MType: ConfirmedDataUp, DevAddr: 0xA1B2C3D4, FCnt: 99,
		HasPort: true, FPort: 2, FRMPayload: []byte{1, 2, 3, 4},
	}
	wire, err := f.Marshal(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x01
		if _, err := ParseDataFrame(bad, nwk, app); err == nil {
			t.Errorf("tampering at byte %d undetected", i)
		}
	}
}

func TestDataFrameWrongKeyFails(t *testing.T) {
	nwk, app := testKeys()
	f := &DataFrame{MType: UnconfirmedDataUp, DevAddr: 5, FCnt: 1, HasPort: true, FPort: 3, FRMPayload: []byte("x")}
	wire, err := f.Marshal(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	wrong := bytes.Repeat([]byte{0xFF}, 16)
	if _, err := ParseDataFrame(wire, wrong, app); err != ErrBadMIC {
		t.Errorf("wrong NwkSKey: err = %v, want ErrBadMIC", err)
	}
}

func TestDataFrameNoPayload(t *testing.T) {
	nwk, app := testKeys()
	f := &DataFrame{MType: UnconfirmedDataUp, DevAddr: 9, FCnt: 3}
	wire, err := f.Marshal(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDataFrame(wire, nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasPort || len(got.FRMPayload) != 0 {
		t.Errorf("unexpected payload: %+v", got)
	}
}

func TestDataFrameDownlinkDirectionBit(t *testing.T) {
	nwk, app := testKeys()
	f := &DataFrame{MType: UnconfirmedDataDown, DevAddr: 77, FCnt: 5, HasPort: true, FPort: 1, FRMPayload: []byte("down")}
	wire, err := f.Marshal(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDataFrame(wire, nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.FRMPayload, []byte("down")) {
		t.Error("downlink payload mismatch")
	}
	// An uplink parse of the same bytes must fail the MIC (direction is
	// part of B0).
	wire[0] = uint8(UnconfirmedDataUp) << 5
	if _, err := ParseDataFrame(wire, nwk, app); err != ErrBadMIC {
		t.Errorf("direction flip: err = %v, want ErrBadMIC", err)
	}
}

func TestParseRejectsNonDataFrames(t *testing.T) {
	nwk, app := testKeys()
	wire := make([]byte, 16)
	wire[0] = uint8(JoinRequest) << 5
	if _, err := ParseDataFrame(wire, nwk, app); err != ErrBadMType {
		t.Errorf("err = %v, want ErrBadMType", err)
	}
	if _, err := ParseDataFrame([]byte{1, 2}, nwk, app); err != ErrTooShort {
		t.Errorf("err = %v, want ErrTooShort", err)
	}
}

func TestMarshalRejectsBadInput(t *testing.T) {
	nwk, app := testKeys()
	f := &DataFrame{MType: JoinRequest}
	if _, err := f.Marshal(nwk, app); err != ErrBadMType {
		t.Errorf("join-request marshal: %v", err)
	}
	f2 := &DataFrame{MType: UnconfirmedDataUp, FOpts: make([]byte, 16)}
	if _, err := f2.Marshal(nwk, app); err == nil {
		t.Error("oversized FOpts accepted")
	}
}

func TestCryptPayloadSelfInverse(t *testing.T) {
	_, app := testKeys()
	f := func(data []byte, addr uint32, fcnt uint32, up bool) bool {
		enc, err := cryptPayload(app, DevAddr(addr), fcnt, up, data)
		if err != nil {
			return false
		}
		dec, err := cryptPayload(app, DevAddr(addr), fcnt, up, enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMTypeHelpers(t *testing.T) {
	if !UnconfirmedDataUp.IsUplink() || UnconfirmedDataDown.IsUplink() {
		t.Error("IsUplink wrong")
	}
	if JoinRequest.String() != "JoinRequest" {
		t.Error("String wrong")
	}
	if MType(42).String() == "" {
		t.Error("out-of-range String empty")
	}
	if DevAddr(0xAB).String() != "000000AB" {
		t.Errorf("DevAddr format: %s", DevAddr(0xAB))
	}
}
