package tracestore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"tnb/internal/obs"
)

// DefaultQueryLimit is applied when Query.Limit is 0.
const DefaultQueryLimit = 100

// Query selects records. Zero-valued fields don't filter; Channel and SF
// are pointers because channel 0 is a real channel. Matching uses the same
// digest the tracer attached at append time (obs.RecordMeta), so a reason
// filter finds a packet's failure_reason, a conn record's event, and a net
// record's drop reason alike.
type Query struct {
	// Types keeps only records whose "type" is in the list.
	Types []string
	// Reason keeps only records with this digest reason.
	Reason string
	// Channel / SF keep only records whose origin matches.
	Channel *int
	SF      *int
	// Gateway keeps only records from this gateway id.
	Gateway string
	// Since prunes segments' index blocks whose newest append time (unix
	// seconds) is older. The index is sparse: pruning is at block
	// granularity, so records slightly older than Since can surface.
	Since int64
	// Limit caps the result, newest-first: 0 means DefaultQueryLimit,
	// negative means unlimited.
	Limit int
}

// Result is one matched record.
type Result struct {
	// Seq is the record's store-wide sequence number; higher = newer.
	Seq uint64 `json:"seq"`
	// Record is the original encoded trace record, byte-for-byte.
	Record json.RawMessage `json:"record"`
}

// Query returns matching records newest-first. Only durable (fsynced)
// records are visible. The error reports the first unreadable segment;
// results gathered before it are returned.
func (s *Store) Query(q Query) ([]Result, error) {
	if s == nil {
		return nil, nil
	}
	limit := q.Limit
	if limit == 0 {
		limit = DefaultQueryLimit
	}

	// Snapshot the queryable state. Sealed indexes are immutable; the
	// active one is still being extended by the writer, so deep-copy it.
	s.mu.Lock()
	segs := make([]*segIndex, 0, len(s.sealed)+1)
	segs = append(segs, s.sealed...)
	if s.active != nil && s.active.N > 0 {
		segs = append(segs, s.active.clone())
	}
	s.mu.Unlock()

	var out []Result
	for i := len(segs) - 1; i >= 0; i-- {
		ix := segs[i]
		matches, err := s.scanIndexed(ix, q)
		if err != nil {
			return out, err
		}
		// Within a segment matches are oldest-first; flip them.
		for j := len(matches) - 1; j >= 0; j-- {
			out = append(out, matches[j])
			if limit > 0 && len(out) >= limit {
				return out, nil
			}
		}
	}
	return out, nil
}

// scanIndexed reads one segment, visiting only the index blocks whose
// summary can match the query, and returns matching records oldest-first.
func (s *Store) scanIndexed(ix *segIndex, q Query) ([]Result, error) {
	var out []Result
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	rec := 0
	var buf []byte
	for _, b := range ix.Blocks {
		first := rec
		rec += b.N
		if !blockMatches(&b, q) {
			continue
		}
		if f == nil {
			var err error
			f, err = os.Open(filepath.Join(s.opt.Dir, segName(ix.Base)))
			if err != nil {
				return out, err
			}
		}
		if int64(cap(buf)) < b.Len {
			buf = make([]byte, b.Len)
		}
		buf = buf[:b.Len]
		if _, err := f.ReadAt(buf, b.Off); err != nil {
			return out, fmt.Errorf("segment %s block at %d: %w", segName(ix.Base), b.Off, err)
		}
		for i, off := 0, 0; i < b.N; i++ {
			nl := bytes.IndexByte(buf[off:], '\n')
			if nl < 0 {
				return out, fmt.Errorf("segment %s block at %d: record %d missing newline", segName(ix.Base), b.Off, i)
			}
			line := buf[off : off+nl]
			off += nl + 1
			m, err := obs.MetaOf(line)
			if err != nil {
				return out, fmt.Errorf("segment %s: %w", segName(ix.Base), err)
			}
			if recordMatches(m, q) {
				out = append(out, Result{
					Seq:    ix.Base + uint64(first+i),
					Record: append(json.RawMessage(nil), line...),
				})
			}
		}
	}
	return out, nil
}

// blockMatches reports whether a block can contain a matching record.
func blockMatches(b *blockSummary, q Query) bool {
	if q.Since > 0 && b.MaxUnix < q.Since {
		return false
	}
	if len(q.Types) > 0 {
		any := false
		for _, t := range q.Types {
			if containsString(b.Types, t) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	if q.Reason != "" && !containsString(b.Reasons, q.Reason) {
		return false
	}
	if q.Channel != nil && !containsInt(b.Channels, *q.Channel) {
		return false
	}
	if q.SF != nil && !containsInt(b.SFs, *q.SF) {
		return false
	}
	if q.Gateway != "" && !containsString(b.Gateways, q.Gateway) {
		return false
	}
	return true
}

// recordMatches applies the exact per-record filters.
func recordMatches(m obs.RecordMeta, q Query) bool {
	if len(q.Types) > 0 {
		any := false
		for _, t := range q.Types {
			if m.Type == t {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	if q.Reason != "" && m.Reason != q.Reason {
		return false
	}
	if q.Channel != nil && m.Channel != *q.Channel {
		return false
	}
	if q.SF != nil && m.SF != *q.SF {
		return false
	}
	if q.Gateway != "" && m.Gateway != q.Gateway {
		return false
	}
	return true
}

func containsString(sorted []string, v string) bool {
	i := sort.SearchStrings(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

func containsInt(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}
