// Package tracestore persists obs trace records in a crash-safe,
// append-only, segmented on-disk ring and serves indexed queries over it.
//
// A Store is an obs.Spill: it receives every record a Tracer exports,
// already encoded, and appends it to the active segment through a bounded
// queue drained by one writer goroutine — the decode hot path never waits
// on disk; when the queue is full the record is counted dropped instead.
// The writer batches records per wakeup and fsyncs once per batch, so a
// query only ever sees durable records. Full segments are sealed with a
// sparse-index sidecar and retention drops whole sealed segments oldest
// first. See DESIGN.md §13 for the on-disk format.
package tracestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tnb/internal/obs"
)

// Options configures Open.
type Options struct {
	// Dir is the store directory, created if missing.
	Dir string
	// SegmentBytes is the roll threshold: the active segment is sealed
	// once it reaches this size. Default 4 MiB.
	SegmentBytes int64
	// MaxBytes caps the store's total size; when a seal pushes the sum
	// over, whole sealed segments are dropped oldest-first. 0 = unlimited.
	MaxBytes int64
	// MaxAge drops sealed segments whose newest record (file mtime) is
	// older than this, checked at each seal. 0 = unlimited.
	MaxAge time.Duration
	// QueueSize bounds the append queue between the hot path and the
	// writer goroutine. Appends beyond a full queue are dropped and
	// counted. Default 1024.
	QueueSize int
	// ReadOnly opens the store for query only: no writer is started, no
	// recovery truncation is performed, and Append drops everything. The
	// directory must exist. Used by `tnbtrace -store`.
	ReadOnly bool
	// Metrics receives the store's instruments; nil disables them.
	Metrics *Metrics
}

// maxBatch caps how many queued records one writer wakeup folds into a
// single write+fsync.
const maxBatch = 512

// job is one queue entry: an encoded record, or a flush barrier (nil line)
// whose done channel is closed once all earlier records are durable.
type job struct {
	line []byte // includes trailing newline; nil for a barrier
	m    obs.RecordMeta
	unix int64
	done chan struct{}
}

// Store is the persistent trace ring. All methods are safe for concurrent
// use, and all are nil-safe no-ops except Open's result is never nil on
// success.
type Store struct {
	opt Options

	jobs    chan job
	quit    chan struct{}
	done    chan struct{}
	closed  atomic.Bool
	failed  atomic.Bool
	dropped atomic.Uint64

	// mu guards the queryable state: the sealed-segment indexes
	// (immutable once listed) and the active segment's index, which
	// covers exactly the durable (fsynced) prefix of the active file.
	mu     sync.Mutex
	sealed []*segIndex
	active *segIndex
	err    error

	// Writer-goroutine state, unguarded.
	activeFile *os.File
	noSeal     bool // test hook: crash() skips the close-time seal
}

// Open opens or creates a store in o.Dir, recovering from any previous
// crash: segments without an index sidecar are rescanned from their bytes,
// a torn final line (a write cut short by the crash) is truncated away, and
// the rescanned segment is sealed. The next record sequence number resumes
// after the highest recovered one.
func Open(o Options) (*Store, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("tracestore: Dir is required")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if !o.ReadOnly {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	bases, err := listSegments(o.Dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		opt:  o,
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	nextSeq := uint64(1)
	for _, base := range bases {
		path := filepath.Join(o.Dir, segName(base))
		ix, serr := readSidecar(o.Dir, base)
		if serr != nil {
			// No (or corrupt) sidecar: this was the active segment when
			// the process died. Rebuild its index from the bytes.
			var torn int64
			ix, torn, err = scanSegment(path, base, -1)
			if err != nil {
				return nil, fmt.Errorf("tracestore: recover %s: %w", segName(base), err)
			}
			if !o.ReadOnly {
				if ix.N == 0 {
					os.Remove(path)
					continue
				}
				if torn >= 0 {
					if err := os.Truncate(path, torn); err != nil {
						return nil, fmt.Errorf("tracestore: truncate torn tail of %s: %w", segName(base), err)
					}
				}
				if err := ix.writeSidecar(o.Dir); err != nil {
					return nil, err
				}
			} else if ix.N == 0 {
				continue
			}
		}
		s.sealed = append(s.sealed, ix)
		if end := ix.Base + uint64(ix.N); end > nextSeq {
			nextSeq = end
		}
	}
	if o.ReadOnly {
		s.closed.Store(true)
		close(s.done)
		s.publishDisk()
		return s, nil
	}
	if err := s.openActive(nextSeq); err != nil {
		return nil, err
	}
	s.jobs = make(chan job, o.QueueSize)
	s.publishDisk()
	go s.run()
	return s, nil
}

// Append enqueues one encoded record for durable storage. It never blocks:
// when the queue is full, or the store is closed or has failed, the record
// is dropped and counted. Append implements obs.Spill and copies the line
// before returning, as that contract requires.
func (s *Store) Append(line []byte, m obs.RecordMeta) {
	if s == nil {
		return
	}
	if s.closed.Load() || s.failed.Load() {
		s.drop(1)
		return
	}
	cp := make([]byte, len(line)+1)
	copy(cp, line)
	cp[len(line)] = '\n'
	select {
	case s.jobs <- job{line: cp, m: m, unix: time.Now().Unix()}:
	default:
		s.drop(1)
	}
}

// Dropped returns how many records were discarded because of a full queue,
// a failed writer, or appends after Close.
func (s *Store) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Err returns the first writer error (disk full, permission lost). A store
// with a non-nil Err drops all further appends but still serves queries
// over what was durably written.
func (s *Store) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush blocks until every record enqueued before the call is durable (or
// dropped). Unlike Append it may wait on disk; it is meant for tests and
// orderly handoffs, not the hot path.
func (s *Store) Flush() {
	if s == nil || s.closed.Load() {
		return
	}
	done := make(chan struct{})
	select {
	case s.jobs <- job{done: done}:
	case <-s.quit:
		return
	}
	select {
	case <-done:
	case <-s.done:
	}
}

// Close drains the queue, seals the active segment, and stops the writer.
// Appends racing Close may be dropped and counted.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	if s.closed.Swap(true) {
		<-s.done
		return s.Err()
	}
	close(s.quit)
	<-s.done
	return s.Err()
}

// drop counts n discarded records.
func (s *Store) drop(n int) {
	s.dropped.Add(uint64(n))
	for i := 0; i < n; i++ {
		s.opt.Metrics.onDropped()
	}
}

// openActive creates a fresh active segment whose first record will have
// sequence number base.
func (s *Store) openActive(base uint64) error {
	f, err := os.OpenFile(filepath.Join(s.opt.Dir, segName(base)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(s.opt.Dir); err != nil {
		f.Close()
		return err
	}
	s.activeFile = f
	s.mu.Lock()
	s.active = &segIndex{Base: base}
	s.mu.Unlock()
	return nil
}

// run is the writer goroutine: batch, write, fsync, publish.
func (s *Store) run() {
	defer close(s.done)
	batch := make([]job, 0, maxBatch)
	for {
		select {
		case j := <-s.jobs:
			batch = append(batch[:0], j)
		fill:
			for len(batch) < maxBatch {
				select {
				case j := <-s.jobs:
					batch = append(batch, j)
				default:
					break fill
				}
			}
			s.writeBatch(batch)
		case <-s.quit:
			batch = batch[:0]
			for {
				select {
				case j := <-s.jobs:
					batch = append(batch, j)
				default:
					s.writeBatch(batch)
					if !s.noSeal {
						s.sealActive(false)
					} else {
						s.activeFile.Close()
					}
					return
				}
			}
		}
	}
}

// writeBatch persists one batch with a single write and fsync, publishes
// the new durable state to queries, then releases any flush barriers.
// Failures fail the whole store: the batch is counted dropped and every
// later append drops too, but sealed data stays queryable.
func (s *Store) writeBatch(batch []job) {
	var buf bytes.Buffer
	n := 0
	for _, j := range batch {
		if j.line != nil {
			buf.Write(j.line)
			n++
		}
	}
	if n > 0 && !s.failed.Load() {
		start := time.Now()
		_, err := s.activeFile.Write(buf.Bytes())
		if err == nil {
			err = s.activeFile.Sync()
		}
		if err != nil {
			s.fail(err)
			s.drop(n)
		} else {
			s.opt.Metrics.observeFlush(time.Since(start).Seconds())
			s.mu.Lock()
			for _, j := range batch {
				if j.line != nil {
					s.active.addRecord(j.m, j.unix, len(j.line))
				}
			}
			s.mu.Unlock()
			s.opt.Metrics.onAppended(n)
			s.publishDisk()
		}
	}
	for _, j := range batch {
		if j.done != nil {
			close(j.done)
		}
	}
	if !s.failed.Load() && s.activeBytes() >= s.opt.SegmentBytes {
		s.roll()
	}
}

func (s *Store) activeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return 0
	}
	return s.active.Bytes
}

// sealActive writes the active segment's index sidecar and closes its
// file; empty active segments are removed instead. With reopen, a fresh
// active segment is started right after.
func (s *Store) sealActive(reopen bool) {
	s.mu.Lock()
	ix := s.active
	s.mu.Unlock()
	f := s.activeFile
	s.activeFile = nil
	if f != nil {
		f.Close()
	}
	if ix == nil {
		return
	}
	if ix.N == 0 {
		os.Remove(filepath.Join(s.opt.Dir, segName(ix.Base)))
		s.mu.Lock()
		s.active = nil
		s.mu.Unlock()
	} else {
		if err := ix.writeSidecar(s.opt.Dir); err != nil {
			s.fail(err)
			return
		}
		if err := syncDir(s.opt.Dir); err != nil {
			s.fail(err)
			return
		}
		s.mu.Lock()
		s.sealed = append(s.sealed, ix)
		s.active = nil
		s.mu.Unlock()
	}
	if reopen {
		if err := s.openActive(ix.Base + uint64(ix.N)); err != nil {
			s.fail(err)
		}
	}
}

// roll seals the full active segment, starts the next one, and applies
// retention.
func (s *Store) roll() {
	s.sealActive(true)
	s.retain()
	s.publishDisk()
}

// retain drops whole sealed segments oldest-first while the store exceeds
// its size or age budget. Only ever called from the writer goroutine, at
// seal time — retention latency is bounded by the segment size.
func (s *Store) retain() {
	for {
		s.mu.Lock()
		if len(s.sealed) == 0 {
			s.mu.Unlock()
			return
		}
		oldest := s.sealed[0]
		var total int64
		for _, ix := range s.sealed {
			total += ix.Bytes
		}
		if s.active != nil {
			total += s.active.Bytes
		}
		s.mu.Unlock()

		drop := s.opt.MaxBytes > 0 && total > s.opt.MaxBytes
		if !drop && s.opt.MaxAge > 0 {
			if st, err := os.Stat(filepath.Join(s.opt.Dir, segName(oldest.Base))); err == nil {
				drop = time.Since(st.ModTime()) > s.opt.MaxAge
			}
		}
		if !drop {
			return
		}
		os.Remove(filepath.Join(s.opt.Dir, segName(oldest.Base)))
		os.Remove(filepath.Join(s.opt.Dir, idxName(oldest.Base)))
		s.mu.Lock()
		s.sealed = s.sealed[1:]
		s.mu.Unlock()
	}
}

// fail poisons the store after an unrecoverable writer error.
func (s *Store) fail(err error) {
	s.failed.Store(true)
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// publishDisk refreshes the segment-count and bytes-on-disk gauges.
func (s *Store) publishDisk() {
	if s.opt.Metrics == nil {
		return
	}
	s.mu.Lock()
	n := len(s.sealed)
	var total int64
	for _, ix := range s.sealed {
		total += ix.Bytes
	}
	if s.active != nil {
		n++
		total += s.active.Bytes
	}
	s.mu.Unlock()
	s.opt.Metrics.setDisk(n, total)
}

// syncDir fsyncs a directory so entry creations and renames survive a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
