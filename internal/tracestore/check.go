package tracestore

import (
	"fmt"
	"os"
	"path/filepath"

	"tnb/internal/obs"
)

// CheckResult summarizes a store validation pass.
type CheckResult struct {
	// Segments is the number of segment files examined.
	Segments int
	// Records counts validated records per type, across all segments.
	Records map[string]int
	// TornTail reports that the unsealed segment ends in a torn line — a
	// writer killed mid-append. Open repairs it; Check only reports it.
	TornTail bool
}

// Check validates a store directory without modifying it: every record in
// every segment passes the obs schema, sealed segments agree with their
// index sidecars, and only unsealed segments may carry a torn final line.
// It backs `tnbtrace -store DIR -check` and may run against a live store
// (it can race a concurrent writer's final line, which then reads as torn).
func Check(dir string) (CheckResult, error) {
	res := CheckResult{Records: make(map[string]int)}
	bases, err := listSegments(dir)
	if err != nil {
		return res, err
	}
	for _, base := range bases {
		path := filepath.Join(dir, segName(base))
		ix, serr := readSidecar(dir, base)
		sealed := serr == nil

		f, err := os.Open(path)
		if err != nil {
			return res, err
		}
		counts, verr := obs.ValidateJSONLOptions(f, obs.ValidateOptions{AllowTornFinal: !sealed})
		f.Close()
		if verr != nil {
			return res, fmt.Errorf("%s: %w", segName(base), verr)
		}
		n := 0
		for typ, c := range counts {
			res.Records[typ] += c
			n += c
		}
		if sealed {
			if n != ix.N {
				return res, fmt.Errorf("%s: sidecar says %d records, file has %d", segName(base), ix.N, n)
			}
			st, err := os.Stat(path)
			if err != nil {
				return res, err
			}
			if st.Size() != ix.Bytes {
				return res, fmt.Errorf("%s: sidecar says %d bytes, file has %d", segName(base), ix.Bytes, st.Size())
			}
		} else {
			// Detect (but don't repair) a torn tail: the scan stops at the
			// first line it can't parse.
			if _, torn, err := scanSegment(path, base, -1); err == nil && torn >= 0 {
				res.TornTail = true
			}
		}
		res.Segments++
	}
	return res, nil
}
