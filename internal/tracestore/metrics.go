package tracestore

import "tnb/internal/metrics"

// Metrics instruments a Store. All methods on a nil *Metrics are safe
// no-ops (the PipelineMetrics pattern), so a store can run unobserved.
type Metrics struct {
	Records        *metrics.Counter   // records durably appended
	Dropped        *metrics.Counter   // records dropped (full queue, closed or failed store)
	SegmentsActive *metrics.Gauge     // on-disk segments (sealed + active)
	BytesOnDisk    *metrics.Gauge     // bytes across all segments
	FlushLatency   *metrics.Histogram // write+fsync latency per batch
}

// NewMetrics registers the trace-store instruments on reg. Registration is
// get-or-create, so calling it twice with the same registry returns the
// same instruments.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Records:        reg.Counter("tnb_tracestore_records_total"),
		Dropped:        reg.Counter("tnb_tracestore_dropped_total"),
		SegmentsActive: reg.Gauge("tnb_tracestore_segments_active"),
		BytesOnDisk:    reg.Gauge("tnb_tracestore_bytes_on_disk"),
		FlushLatency:   reg.Histogram("tnb_tracestore_flush_seconds", metrics.DurationBuckets),
	}
}

func (m *Metrics) onAppended(n int) {
	if m != nil {
		m.Records.Add(uint64(n))
	}
}

func (m *Metrics) onDropped() {
	if m != nil {
		m.Dropped.Inc()
	}
}

func (m *Metrics) setDisk(segments int, bytes int64) {
	if m != nil {
		m.SegmentsActive.Set(int64(segments))
		m.BytesOnDisk.Set(bytes)
	}
}

func (m *Metrics) observeFlush(sec float64) {
	if m != nil {
		m.FlushLatency.Observe(sec)
	}
}
