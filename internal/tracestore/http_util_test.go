package tracestore

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

func httpGetResp(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}
