package tracestore

// crash stops the writer without sealing the active segment, simulating a
// process killed after its last fsync: the segment file stays on disk with
// no index sidecar. Tests then mangle the file tail and reopen the store
// to exercise recovery.
func (s *Store) crash() {
	if s.closed.Swap(true) {
		<-s.done
		return
	}
	s.noSeal = true
	close(s.quit)
	<-s.done
}
