package tracestore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"tnb/internal/obs"
)

// Segment files are named seg-<base>.jsonl where <base> is the zero-padded
// sequence number of the segment's first record; a sealed segment carries a
// seg-<base>.idx JSON sidecar with its sparse index. A segment without a
// sidecar is (or was, before a crash) the active one.
const (
	segSuffix = ".jsonl"
	idxSuffix = ".idx"
	segPrefix = "seg-"

	// blockRecords is the sparse-index granularity: one summary per this
	// many records. Queries read only the blocks whose summary matches.
	blockRecords = 256
)

func segName(base uint64) string { return fmt.Sprintf("%s%020d%s", segPrefix, base, segSuffix) }

func idxName(base uint64) string { return fmt.Sprintf("%s%020d%s", segPrefix, base, idxSuffix) }

// parseSegBase extracts the base sequence number from a segment file name.
func parseSegBase(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// blockSummary is one sparse-index entry: the distinct digest values seen
// across a run of blockRecords consecutive records. A query skips the whole
// block (and its disk read) when its filter value is absent from the sets.
type blockSummary struct {
	// Off and Len bound the block's bytes within the segment file.
	Off int64 `json:"off"`
	Len int64 `json:"len"`
	// N is the record count (== blockRecords except for the last block).
	N int `json:"n"`
	// MinUnix and MaxUnix bound the records' append wall-clock times.
	// Rebuilt-after-crash segments widen this to [0, file mtime] so a
	// Since filter can only over-select, never drop.
	MinUnix int64 `json:"min_unix"`
	MaxUnix int64 `json:"max_unix"`
	// Distinct digest values present in the block, sorted.
	Types    []string `json:"types,omitempty"`
	Reasons  []string `json:"reasons,omitempty"`
	Channels []int    `json:"channels,omitempty"`
	SFs      []int    `json:"sfs,omitempty"`
	Gateways []string `json:"gateways,omitempty"`
}

func insertString(s []string, v string) []string {
	i := sort.SearchStrings(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	return append(s[:i], append([]string{v}, s[i:]...)...)
}

func insertInt(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	return append(s[:i], append([]int{v}, s[i:]...)...)
}

// add folds one record's digest and byte length into the summary.
func (b *blockSummary) add(m obs.RecordMeta, unix int64, lineLen int) {
	if b.N == 0 {
		b.MinUnix, b.MaxUnix = unix, unix
	} else {
		if unix < b.MinUnix {
			b.MinUnix = unix
		}
		if unix > b.MaxUnix {
			b.MaxUnix = unix
		}
	}
	b.N++
	b.Len += int64(lineLen)
	b.Types = insertString(b.Types, m.Type)
	b.Reasons = insertString(b.Reasons, m.Reason)
	b.Channels = insertInt(b.Channels, m.Channel)
	b.SFs = insertInt(b.SFs, m.SF)
	b.Gateways = insertString(b.Gateways, m.Gateway)
}

// clone deep-copies the summary so queries can use it lock-free while the
// writer keeps folding records into the original.
func (b *blockSummary) clone() blockSummary {
	c := *b
	c.Types = append([]string(nil), b.Types...)
	c.Reasons = append([]string(nil), b.Reasons...)
	c.Channels = append([]int(nil), b.Channels...)
	c.SFs = append([]int(nil), b.SFs...)
	c.Gateways = append([]string(nil), b.Gateways...)
	return c
}

// segIndex is the sidecar for one sealed segment, and the in-memory index
// of the active one.
type segIndex struct {
	// Base is the sequence number of the segment's first record.
	Base uint64 `json:"base"`
	// N is the total record count.
	N int `json:"n"`
	// Bytes is the segment file size the index describes.
	Bytes  int64          `json:"bytes"`
	Blocks []blockSummary `json:"blocks"`
}

func (ix *segIndex) addRecord(m obs.RecordMeta, unix int64, lineLen int) {
	if len(ix.Blocks) == 0 || ix.Blocks[len(ix.Blocks)-1].N >= blockRecords {
		ix.Blocks = append(ix.Blocks, blockSummary{Off: ix.Bytes})
	}
	ix.Blocks[len(ix.Blocks)-1].add(m, unix, lineLen)
	ix.N++
	ix.Bytes += int64(lineLen)
}

func (ix *segIndex) clone() *segIndex {
	c := &segIndex{Base: ix.Base, N: ix.N, Bytes: ix.Bytes, Blocks: make([]blockSummary, len(ix.Blocks))}
	for i := range ix.Blocks {
		c.Blocks[i] = ix.Blocks[i].clone()
	}
	return c
}

// writeSidecar persists the index next to its sealed segment, atomically
// (tmp + rename) so a crash mid-seal leaves either no sidecar — the
// segment is then rescanned like an active one — or a complete sidecar.
func (ix *segIndex) writeSidecar(dir string) error {
	data, err := json.Marshal(ix)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, idxName(ix.Base))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readSidecar(dir string, base uint64) (*segIndex, error) {
	data, err := os.ReadFile(filepath.Join(dir, idxName(base)))
	if err != nil {
		return nil, err
	}
	var ix segIndex
	if err := json.Unmarshal(data, &ix); err != nil {
		return nil, fmt.Errorf("sidecar %s: %w", idxName(base), err)
	}
	return &ix, nil
}

// scanSegment rebuilds a segment's index from its bytes alone — crash
// recovery for segments that died without a sidecar. It returns the index
// and the byte offset of the first torn (newline-less or unparseable
// final) line, or -1 if the file is clean. Records after `keep` bytes are
// ignored; pass -1 to scan the whole file. Unix bounds are widened to
// [0, mtime] since per-record append times are not stored in the bytes.
func scanSegment(path string, base uint64, keep int64) (*segIndex, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	mtime := st.ModTime().Unix()

	ix := &segIndex{Base: base}
	br := bufio.NewReaderSize(f, 1<<20)
	var off int64
	for keep < 0 || off < keep {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 || line[len(line)-1] != '\n' {
			if len(line) > 0 {
				return ix, off, nil // torn final line
			}
			break
		}
		if err != nil {
			return nil, 0, err
		}
		rec := bytes.TrimSuffix(line, []byte("\n"))
		m, merr := obs.MetaOf(rec)
		if merr != nil {
			// A corrupt line mid-file: treat everything from here on as
			// torn. Sealing will truncate it, preserving the prefix.
			return ix, off, nil
		}
		ix.addRecord(m, mtime, len(line))
		off += int64(len(line))
	}
	for i := range ix.Blocks {
		ix.Blocks[i].MinUnix = 0
	}
	return ix, -1, nil
}

// listSegments returns the base sequence numbers of every segment in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []uint64
	for _, e := range ents {
		if base, ok := parseSegBase(e.Name()); ok {
			bases = append(bases, base)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}
