package tracestore

import (
	"fmt"
	"testing"

	"tnb/internal/obs"
)

// benchLines pre-encodes a spread of records so append benchmarks measure
// the store, not JSON marshalling.
func benchLines(n int) ([][]byte, []obs.RecordMeta) {
	reasons := []string{"bec_budget_exhausted", "crc_fail", "no_sync", "bad_mic"}
	lines := make([][]byte, n)
	metas := make([]obs.RecordMeta, n)
	for i := range lines {
		line := []byte(fmt.Sprintf(
			`{"type":"net","event":"drop","reason":%q,"time_sec":%d,"origin":{"gateway":"gw-%d","channel":%d,"sf":%d}}`,
			reasons[i%len(reasons)], i, i%8, i%8, 7+i%6))
		m, err := obs.MetaOf(line)
		if err != nil {
			panic(err)
		}
		lines[i], metas[i] = line, m
	}
	return lines, metas
}

// BenchmarkStoreAppend measures the durable append path: hot-path enqueue
// plus the writer's batched write+fsync, reported as records/s. The flush
// per iteration loop makes drops impossible, so every record hits disk.
func BenchmarkStoreAppend(b *testing.B) {
	lines, metas := benchLines(1024)
	dir := b.TempDir()
	st, err := Open(Options{Dir: dir, SegmentBytes: 64 << 20, QueueSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(lines)
		st.Append(lines[k], metas[k])
		if k == len(lines)-1 {
			st.Flush()
		}
	}
	st.Flush()
	b.StopTimer()
	if st.Dropped() > 0 {
		b.Fatalf("benchmark dropped %d records", st.Dropped())
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkStoreQuery measures a filtered query against a sealed
// 100k-record store: the sparse index prunes blocks by reason, then the
// surviving blocks are read and match-checked.
func BenchmarkStoreQuery(b *testing.B) {
	const records = 100_000
	lines, metas := benchLines(records)
	dir := b.TempDir()
	st, err := Open(Options{Dir: dir, QueueSize: 8192})
	if err != nil {
		b.Fatal(err)
	}
	for i := range lines {
		st.Append(lines[i], metas[i])
		if i%4096 == 0 {
			st.Flush()
		}
	}
	st.Flush()
	if st.Dropped() > 0 {
		b.Fatalf("setup dropped %d records", st.Dropped())
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	ro, err := Open(Options{Dir: dir, ReadOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	ch := 0 // co-occurs with the queried reason (both period-lcm aligned)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ro.Query(Query{Reason: "bec_budget_exhausted", Channel: &ch, Limit: 100})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 100 {
			b.Fatalf("query returned %d rows, want 100", len(res))
		}
	}
}
