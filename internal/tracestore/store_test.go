package tracestore

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tnb/internal/metrics"
	"tnb/internal/obs"
)

// appendVia feeds records through a real obs.Tracer so the stored bytes
// are exactly what production emits.
func appendVia(t *testing.T, st *Store, gw string, channel, sf, n int, reason obs.FailureReason) {
	t.Helper()
	tr := obs.New(obs.Options{Spill: st}).WithOrigin(obs.Origin{Gateway: gw, Channel: channel, SF: sf})
	for i := 0; i < n; i++ {
		pt := tr.NewPacket(tr.NextWindow(), i, 1, obs.Detection{SNRdB: float64(i)})
		pt.Final = true
		if reason == "" {
			pt.OK = true
			pt.DataSymbols = 8
			pt.AirtimeSec = 0.05
		} else {
			pt.FailureReason = reason
		}
		tr.Finish(pt)
	}
}

func intp(v int) *int { return &v }

func TestAppendQueryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	st, err := Open(Options{Dir: dir, Metrics: NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	appendVia(t, st, "gw-a", 3, 8, 5, obs.FailBECBudget)
	appendVia(t, st, "gw-b", 1, 9, 4, "")
	tr := obs.New(obs.Options{Spill: st})
	tr.OnNet(obs.NetEvent{Event: obs.NetDrop, Reason: "bad_mic", TimeSec: 7,
		Origin: &obs.Origin{Gateway: "gw-a", Channel: 3, SF: 8}})
	st.Flush()

	// Reason+channel filter: the 5 failures, newest-first.
	res, err := st.Query(Query{Reason: string(obs.FailBECBudget), Channel: intp(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("reason+channel query: %d results, want 5", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Seq >= res[i-1].Seq {
			t.Fatalf("results not newest-first: seq %d then %d", res[i-1].Seq, res[i].Seq)
		}
	}

	// Type filter spans record kinds; gateway filter narrows.
	res, err = st.Query(Query{Types: []string{obs.TypeNet}})
	if err != nil || len(res) != 1 {
		t.Fatalf("net query: %d results (%v), want 1", len(res), err)
	}
	if !strings.Contains(string(res[0].Record), `"reason":"bad_mic"`) {
		t.Errorf("net record lost its bytes: %s", res[0].Record)
	}
	res, _ = st.Query(Query{Gateway: "gw-b", Limit: -1})
	if len(res) != 4 {
		t.Fatalf("gateway query: %d results, want 4", len(res))
	}

	// Limit truncates from the newest end.
	res, _ = st.Query(Query{Limit: 3})
	if len(res) != 3 {
		t.Fatalf("limit query: %d results, want 3", len(res))
	}
	if got := res[0].Seq; got != 10 {
		t.Errorf("newest seq = %d, want 10", got)
	}

	if got := reg.Counter("tnb_tracestore_records_total").Value(); got != 10 {
		t.Errorf("records_total = %d, want 10", got)
	}
	if got := st.Dropped(); got != 0 {
		t.Errorf("dropped = %d, want 0", got)
	}
}

func TestKillMidWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendVia(t, st, "gw-a", 3, 8, 7, obs.FailBECBudget)
	st.Flush()
	st.crash()

	// Simulate the torn final write of a killed process.
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment after crash, got %d", len(segs))
	}
	path := filepath.Join(dir, segName(segs[0]))
	if _, err := os.Stat(filepath.Join(dir, idxName(segs[0]))); err == nil {
		t.Fatal("crashed segment must not have a sidecar")
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"packet","window":9,"fail`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if res, err := Check(dir); err != nil {
		t.Fatalf("Check on torn store: %v", err)
	} else if !res.TornTail {
		t.Error("Check did not flag the torn tail")
	}

	// Reopen: the torn line is truncated away, sealed records survive.
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st2.Query(Query{Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7 {
		t.Fatalf("recovered %d records, want 7", len(res))
	}
	if res[0].Seq != 7 || res[6].Seq != 1 {
		t.Errorf("recovered seq range [%d..%d], want [7..1]", res[0].Seq, res[6].Seq)
	}

	// New appends resume the sequence after the recovered records.
	appendVia(t, st2, "gw-a", 3, 8, 1, obs.FailCRC)
	st2.Flush()
	res, _ = st2.Query(Query{Reason: string(obs.FailCRC)})
	if len(res) != 1 || res[0].Seq != 8 {
		t.Fatalf("post-recovery append got seq %v, want 8", res)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if chk, err := Check(dir); err != nil || chk.TornTail {
		t.Fatalf("Check after clean close: %v (torn=%v)", err, chk.TornTail)
	}
}

func TestRecoveryAcrossSealedSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	appendVia(t, st, "gw-a", 0, 7, 40, obs.FailNoSync)
	st.Flush()
	st.crash()

	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(segs))
	}
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	res, err := st2.Query(Query{Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 40 {
		t.Fatalf("recovered %d records across segments, want 40", len(res))
	}
}

func TestRetentionDropsWholeSegments(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	st, err := Open(Options{Dir: dir, SegmentBytes: 1024, MaxBytes: 4096, Metrics: NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 30; i++ {
		appendVia(t, st, fmt.Sprintf("gw-%02d", i), 0, 7, 1, obs.FailCRC)
		st.Flush() // one batch per record so rolls happen on record edges
	}
	segs, _ := listSegments(dir)
	var total int64
	for _, base := range segs {
		fi, err := os.Stat(filepath.Join(dir, segName(base)))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	if total > 4096+1024 {
		t.Fatalf("disk usage %d exceeds MaxBytes+SegmentBytes", total)
	}

	// The oldest records are gone; the newest survive.
	res, err := st.Query(Query{Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || len(res) >= 30 {
		t.Fatalf("retention kept %d of 30 records", len(res))
	}
	if res[0].Seq != 30 {
		t.Errorf("newest record seq %d, want 30", res[0].Seq)
	}
	if _, err := st.Query(Query{Gateway: "gw-00"}); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Query(Query{Gateway: "gw-00"}); len(got) != 0 {
		t.Errorf("oldest gateway's records still present after retention")
	}
	if g := reg.Gauge("tnb_tracestore_bytes_on_disk").Value(); g <= 0 || g > 4096+1024 {
		t.Errorf("bytes_on_disk gauge = %d", g)
	}
}

func TestQueueOverflowDropsAndCounts(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	line := []byte(`{"type":"net","event":"drop","reason":"bad_mic"}`)
	m, _ := obs.MetaOf(line)
	for i := 0; i < 10000; i++ {
		st.Append(line, m)
	}
	st.Flush()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(Query{Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(res))+st.Dropped() != 10000 {
		t.Fatalf("stored %d + dropped %d != 10000", len(res), st.Dropped())
	}
	if len(res) == 0 {
		t.Error("everything dropped; writer never drained")
	}
}

func TestAppendAfterCloseDrops(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	line := []byte(`{"type":"net","event":"drop","reason":"bad_mic"}`)
	m, _ := obs.MetaOf(line)
	st.Append(line, m)
	if st.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped())
	}
	st.Flush() // must not hang or panic on a closed store
}

func TestReadOnlyOpenDoesNotMutate(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendVia(t, st, "gw-a", 2, 8, 3, obs.FailCRC)
	st.Flush()
	st.crash()
	path := filepath.Join(dir, segName(1))
	before, _ := os.ReadFile(path)

	ro, err := Open(Options{Dir: dir, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ro.Query(Query{Limit: -1})
	if err != nil || len(res) != 3 {
		t.Fatalf("read-only query: %d results (%v), want 3", len(res), err)
	}
	ro.Append([]byte(`{"type":"net","event":"drop","reason":"x"}`), obs.RecordMeta{Type: "net"})
	if ro.Dropped() != 1 {
		t.Error("read-only append not counted as dropped")
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Error("read-only open modified the segment file")
	}
	if _, err := os.Stat(filepath.Join(dir, idxName(1))); err == nil {
		t.Error("read-only open wrote a sidecar")
	}
}

func TestHandlerQueryParams(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	appendVia(t, st, "gw-a", 3, 8, 4, obs.FailBECBudget)
	appendVia(t, st, "gw-a", 5, 8, 2, obs.FailCRC)
	st.Flush()

	srv := httptest.NewServer(st.Handler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/?reason=bec_budget_exhausted&channel=3&limit=100")
	lines := nonEmptyLines(body)
	if len(lines) != 4 {
		t.Fatalf("HTTP query returned %d rows, want 4:\n%s", len(lines), body)
	}
	for _, l := range lines {
		if !strings.Contains(l, `"failure_reason":"bec_budget_exhausted"`) {
			t.Errorf("row without the queried reason: %s", l)
		}
	}
	if body := httpGet(t, srv.URL+"/?type=packet&channel=5"); len(nonEmptyLines(body)) != 2 {
		t.Errorf("channel=5 query wrong:\n%s", body)
	}
	if resp, err := httpGetResp(srv.URL + "/?channel=zebra"); err != nil || resp != 400 {
		t.Errorf("bad channel param: status %d (%v), want 400", resp, err)
	}
}

func TestFlushLatencyObserved(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	st, err := Open(Options{Dir: dir, Metrics: NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	appendVia(t, st, "gw", 0, 7, 3, obs.FailCRC)
	st.Flush()
	h := reg.Histogram("tnb_tracestore_flush_seconds", metrics.DurationBuckets)
	deadline := time.Now().Add(2 * time.Second)
	for h.Count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.Count() == 0 {
		t.Error("flush histogram never observed a batch")
	}
}
