package tracestore

import (
	"net/http"
	"strconv"
	"strings"
)

// Handler serves the store's query API, mounted at /debug/traces/query on
// the metrics mux. Parameters mirror the Query fields:
//
//	type=packet[,conn,...]  record types
//	reason=bec_budget_exhausted
//	channel=3  sf=8  gateway=gw-0
//	since=<unix seconds>  limit=100 (-1 = unlimited)
//
// The response is NDJSON: one raw trace record per line, newest first.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q, err := ParseQuery(r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := s.Query(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Trace-Count", strconv.Itoa(len(res)))
		for _, rec := range res {
			w.Write(rec.Record)
			w.Write([]byte("\n"))
		}
	})
}

// ParseQuery builds a Query from URL parameters; shared by the HTTP
// handler and `tnbtrace -store`.
func ParseQuery(v map[string][]string) (Query, error) {
	var q Query
	get := func(k string) string {
		if vs := v[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	for _, t := range v["type"] {
		for _, part := range strings.Split(t, ",") {
			if part = strings.TrimSpace(part); part != "" {
				q.Types = append(q.Types, part)
			}
		}
	}
	q.Reason = get("reason")
	q.Gateway = get("gateway")
	if c := get("channel"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil {
			return q, badParam("channel", c)
		}
		q.Channel = &n
	}
	if c := get("sf"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil {
			return q, badParam("sf", c)
		}
		q.SF = &n
	}
	if c := get("since"); c != "" {
		n, err := strconv.ParseInt(c, 10, 64)
		if err != nil {
			return q, badParam("since", c)
		}
		q.Since = n
	}
	if c := get("limit"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil {
			return q, badParam("limit", c)
		}
		q.Limit = n
	}
	return q, nil
}

type paramError struct{ key, val string }

func (e paramError) Error() string { return "bad " + e.key + " value " + strconv.Quote(e.val) }

func badParam(k, v string) error { return paramError{k, v} }
