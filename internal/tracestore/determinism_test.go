package tracestore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"tnb/internal/core"
	"tnb/internal/lora"
	"tnb/internal/obs"
	"tnb/internal/trace"
)

// TestQueryDeterministicAcrossWorkerCounts pins the fleet-debugging
// contract end to end: the decode pipeline feeds a store through the
// tracer's spill, and because trace emission is deterministic at every
// worker-pool width (PR 3), a query over the resulting store returns a
// byte-identical result set whether the gateway ran -workers 1, 2 or 4.
func TestQueryDeterministicAcrossWorkerCounts(t *testing.T) {
	p := lora.MustParams(8, 4, 125e3, 8)
	rng := rand.New(rand.NewSource(7))
	b := trace.NewBuilder(p, 1.5, 1, rng)
	starts := b.ScheduleUniform(6, 14)
	for i, s := range starts {
		payload := make([]uint8, 14)
		rng.Read(payload)
		if err := b.AddPacket(i, 0, payload, s, 10, -3000+float64(i)*1200, nil); err != nil {
			t.Fatalf("add packet %d: %v", i, err)
		}
	}
	tr, _ := b.Build()

	run := func(workers int) string {
		dir := t.TempDir()
		st, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		tracer := obs.New(obs.Options{Spill: st}).WithOrigin(obs.Origin{Gateway: "gw-0", Channel: 3, SF: 8})
		r := core.NewReceiver(core.Config{Params: p, UseBEC: true, Seed: 7, Workers: workers, Tracer: tracer})
		if len(r.Decode(tr)) == 0 {
			t.Fatalf("workers=%d: decoded nothing", workers)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		ro, err := Open(Options{Dir: dir, ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ro.Query(Query{Limit: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 {
			t.Fatalf("workers=%d: store is empty", workers)
		}
		var buf bytes.Buffer
		for _, r := range res {
			fmt.Fprintf(&buf, "%d %s\n", r.Seq, r.Record)
		}
		return buf.String()
	}

	ref := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != ref {
			t.Errorf("workers=%d: query result diverged from serial run\nserial:\n%s\nworkers:\n%s", workers, ref, got)
		}
	}
}
