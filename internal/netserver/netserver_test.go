package netserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"tnb/internal/lorawan"
	"tnb/internal/metrics"
)

func testKey(b byte) []byte {
	k := make([]byte, 16)
	for i := range k {
		k[i] = b
	}
	return k
}

func testDevice(i int) Device {
	return Device{
		DevEUI: lorawan.EUI(0xA000 + uint64(i)),
		AppEUI: lorawan.EUI(0xB000),
		AppKey: testKey(byte(0x10 + i)),
		Tenant: "acme",
	}
}

func mustServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func joinWire(t testing.TB, dev Device, nonce uint16) []byte {
	t.Helper()
	jr := &lorawan.JoinRequestFrame{AppEUI: dev.AppEUI, DevEUI: dev.DevEUI, DevNonce: nonce}
	w, err := jr.Marshal(dev.AppKey)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func dataWire(t testing.TB, addr lorawan.DevAddr, fcnt uint16, nwk, app, payload []byte) []byte {
	t.Helper()
	f := &lorawan.DataFrame{
		MType: lorawan.UnconfirmedDataUp, DevAddr: addr, FCnt: fcnt,
		HasPort: true, FPort: 7, FRMPayload: payload,
	}
	w, err := f.Marshal(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func ingest(t testing.TB, s *Server, batch ...Uplink) []Event {
	t.Helper()
	evs, err := s.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func flush(t testing.TB, s *Server) []Event {
	t.Helper()
	evs, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestJoinFlow walks the full OTAA exchange end to end: two gateways hear
// the same join request, the netserver delivers one join with the best-SNR
// gateway credited, the device parses the returned JoinAccept with its
// AppKey and derives the same session keys — proven by a data frame built
// device-side decrypting to the original payload server-side.
func TestJoinFlow(t *testing.T) {
	dev := testDevice(1)
	s := mustServer(t, Config{Devices: []Device{dev}, Workers: 1})

	jw := joinWire(t, dev, 0x0001)
	evs := ingest(t, s,
		Uplink{GatewayID: "gw-b", Channel: 2, SF: 9, TimeSec: 0.00, SNRdB: -4, Payload: jw},
		Uplink{GatewayID: "gw-a", Channel: 2, SF: 9, TimeSec: 0.05, SNRdB: 3, Payload: jw},
	)
	if len(evs) != 0 {
		t.Fatalf("join delivered before its dedup window closed: %+v", evs)
	}
	evs = flush(t, s)
	if len(evs) != 1 || evs[0].Type != "join" {
		t.Fatalf("events after flush = %+v, want one join", evs)
	}
	join := evs[0]
	if join.Copies != 2 || join.Gateway != "gw-a" || join.SNRdB != 3 {
		t.Errorf("join credited %q (snr %v, copies %d), want gw-a/3/2", join.Gateway, join.SNRdB, join.Copies)
	}
	if want := []string{"gw-a", "gw-b"}; fmt.Sprint(join.Gateways) != fmt.Sprint(want) {
		t.Errorf("join gateways = %v, want %v", join.Gateways, want)
	}
	if join.Channel != 2 || join.SF != 9 {
		t.Errorf("join shard = c%d_sf%d, want c2_sf9", join.Channel, join.SF)
	}

	// Device side: decrypt the accept, derive keys, send an uplink.
	acc, err := lorawan.ParseJoinAccept(join.JoinAccept, dev.AppKey)
	if err != nil {
		t.Fatalf("device cannot parse the join accept: %v", err)
	}
	if acc.DevAddr.String() != join.DevAddr {
		t.Errorf("accept DevAddr %s, event says %s", acc.DevAddr, join.DevAddr)
	}
	nwk, app, err := lorawan.DeriveSessionKeys(dev.AppKey, acc.AppNonce, acc.NetID, 0x0001)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello tenant")
	dw := dataWire(t, acc.DevAddr, 1, nwk, app, payload)
	ingest(t, s, Uplink{GatewayID: "gw-a", Channel: 2, SF: 9, TimeSec: 1.0, SNRdB: 2, Payload: dw})
	evs = flush(t, s)
	if len(evs) != 1 || evs[0].Type != "delivery" {
		t.Fatalf("uplink events = %+v, want one delivery", evs)
	}
	if !bytes.Equal(evs[0].Payload, payload) {
		t.Errorf("delivered payload %q, want %q", evs[0].Payload, payload)
	}
	if evs[0].FCnt != 1 || evs[0].FPort != 7 || evs[0].Tenant != "acme" {
		t.Errorf("delivery metadata: %+v", evs[0])
	}
}

// TestDedupBestSNR: three copies, two tied for best SNR — the tie breaks
// toward the lexicographically smaller gateway, so arrival order of the
// tied copies cannot change the outcome.
func TestDedupBestSNR(t *testing.T) {
	dev := testDevice(2)
	s := mustServer(t, Config{Devices: []Device{dev}, Workers: 1})
	jw := joinWire(t, dev, 7)
	ingest(t, s,
		Uplink{GatewayID: "gw-c", TimeSec: 0.00, SNRdB: 5, Payload: jw},
		Uplink{GatewayID: "gw-b", TimeSec: 0.01, SNRdB: 9, Payload: jw},
		Uplink{GatewayID: "gw-a", TimeSec: 0.02, SNRdB: 9, Payload: jw},
	)
	evs := flush(t, s)
	if len(evs) != 1 {
		t.Fatalf("events = %+v, want one join", evs)
	}
	if evs[0].Gateway != "gw-a" || evs[0].SNRdB != 9 || evs[0].Copies != 3 {
		t.Errorf("best copy = %q/%v (copies %d), want gw-a/9/3", evs[0].Gateway, evs[0].SNRdB, evs[0].Copies)
	}
	st := s.Stats()
	if st.DupSuppressed != 2 {
		t.Errorf("dup_suppressed = %d, want 2", st.DupSuppressed)
	}
}

// TestDedupWindowExpiry: a copy arriving after the window closed is a new
// transmission as far as the netserver can tell — here it is a DevNonce
// replay and must be refused, not merged.
func TestDedupWindowExpiry(t *testing.T) {
	dev := testDevice(3)
	s := mustServer(t, Config{Devices: []Device{dev}, DedupWindowSec: 0.2, Workers: 1})
	jw := joinWire(t, dev, 9)
	ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: 0.0, SNRdB: 1, Payload: jw})
	// The late copy's commit first expires the original window (join
	// delivered), then finds its own nonce already burned — both events
	// come back from the same Ingest call.
	evs := ingest(t, s, Uplink{GatewayID: "gw-b", TimeSec: 1.0, SNRdB: 8, Payload: jw})
	if len(evs) != 2 || evs[0].Type != "join" || evs[0].Copies != 1 || evs[0].Gateway != "gw-a" {
		t.Fatalf("window-expiry events = %+v, want the gw-a join then a drop", evs)
	}
	if evs[1].Type != "drop" || evs[1].Reason != ReasonReplayedDevNonce {
		t.Fatalf("late copy event = %+v, want a replayed_devnonce drop", evs[1])
	}
	if evs := flush(t, s); len(evs) != 0 {
		t.Fatalf("flush after window expiry = %+v, want empty", evs)
	}
}

// TestDevNonceReplay: reusing a DevNonce after a completed join is refused.
func TestDevNonceReplay(t *testing.T) {
	dev := testDevice(4)
	s := mustServer(t, Config{Devices: []Device{dev}, Workers: 1})
	jw := joinWire(t, dev, 42)
	ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: 0, Payload: jw})
	if evs := flush(t, s); len(evs) != 1 || evs[0].Type != "join" {
		t.Fatalf("first join events = %+v", evs)
	}
	// The replay is refused immediately at commit, not windowed.
	evs := ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: 5, Payload: jw})
	if len(evs) != 1 || evs[0].Reason != ReasonReplayedDevNonce {
		t.Fatalf("replay events = %+v, want replayed_devnonce", evs)
	}
	// A fresh nonce still joins (and replaces the session).
	ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: 10, Payload: joinWire(t, dev, 43)})
	if evs := flush(t, s); len(evs) != 1 || evs[0].Type != "join" {
		t.Fatalf("rejoin events = %+v", evs)
	}
	if st := s.Stats(); st.Sessions != 1 || st.Joins != 2 {
		t.Errorf("sessions = %d joins = %d, want 1 and 2", st.Sessions, st.Joins)
	}
}

// activate joins one device and returns its session coordinates.
func activate(t testing.TB, s *Server, dev Device, nonce uint16, at float64) (lorawan.DevAddr, []byte, []byte) {
	t.Helper()
	ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: at, SNRdB: 1, Payload: joinWire(t, dev, nonce)})
	evs := flush(t, s)
	if len(evs) != 1 || evs[0].Type != "join" {
		t.Fatalf("activation events = %+v", evs)
	}
	acc, err := lorawan.ParseJoinAccept(evs[0].JoinAccept, dev.AppKey)
	if err != nil {
		t.Fatal(err)
	}
	nwk, app, err := lorawan.DeriveSessionKeys(dev.AppKey, acc.AppNonce, acc.NetID, nonce)
	if err != nil {
		t.Fatal(err)
	}
	return acc.DevAddr, nwk, app
}

// TestFCntReplay: a frame counter at or below the last delivered one is
// refused, whether it arrives after delivery or inside the same window
// with a different payload.
func TestFCntReplay(t *testing.T) {
	dev := testDevice(5)
	s := mustServer(t, Config{Devices: []Device{dev}, Workers: 1})
	addr, nwk, app := activate(t, s, dev, 1, 0)

	ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: 1, Payload: dataWire(t, addr, 3, nwk, app, []byte("x"))})
	if evs := flush(t, s); len(evs) != 1 || evs[0].Type != "delivery" {
		t.Fatalf("first uplink events = %+v", evs)
	}
	// Replay after delivery: same counter, refused immediately at commit.
	evs := ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: 2, Payload: dataWire(t, addr, 3, nwk, app, []byte("x"))})
	if len(evs) != 1 || evs[0].Reason != ReasonReplayedFCnt {
		t.Fatalf("post-delivery replay events = %+v, want replayed_fcnt", evs)
	}
	// Same counter, different payloads, both inside one window: distinct
	// dedup keys, so both frames pend — only the first may deliver.
	ingest(t, s,
		Uplink{GatewayID: "gw-a", TimeSec: 3.00, Payload: dataWire(t, addr, 4, nwk, app, []byte("a"))},
		Uplink{GatewayID: "gw-b", TimeSec: 3.01, Payload: dataWire(t, addr, 4, nwk, app, []byte("b"))},
	)
	evs = flush(t, s)
	if len(evs) != 2 || evs[0].Type != "delivery" || evs[1].Reason != ReasonReplayedFCnt {
		t.Fatalf("same-window conflict events = %+v, want delivery then replayed_fcnt", evs)
	}
	if string(evs[0].Payload) != "a" {
		t.Errorf("delivered %q, want the first-heard payload \"a\"", evs[0].Payload)
	}
}

// TestQuota: the tenant bucket admits its burst, then turns deliveries
// into quota_exceeded drops until logical time refills it.
func TestQuota(t *testing.T) {
	dev := testDevice(6)
	s := mustServer(t, Config{
		Devices: []Device{dev},
		Quotas:  map[string]Quota{"acme": {RatePerSec: 0.1, Burst: 1}},
		Workers: 1,
	})
	addr, nwk, app := activate(t, s, dev, 1, 0)
	// The second commit (t=1.5) expires the first frame's window (1.2), so
	// its delivery comes back from Ingest; the drop arrives on Flush.
	evs := ingest(t, s,
		Uplink{GatewayID: "gw-a", TimeSec: 1.0, Payload: dataWire(t, addr, 1, nwk, app, []byte("a"))},
		Uplink{GatewayID: "gw-a", TimeSec: 1.5, Payload: dataWire(t, addr, 2, nwk, app, []byte("b"))},
	)
	evs = append(evs, flush(t, s)...)
	if len(evs) != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Type != "delivery" {
		t.Errorf("first uplink: %+v, want delivery", evs[0])
	}
	if evs[1].Type != "drop" || evs[1].Reason != ReasonQuotaExceeded || evs[1].Tenant != "acme" {
		t.Errorf("second uplink: %+v, want quota_exceeded for acme", evs[1])
	}
	// 10 logical seconds refill one token.
	ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: 12, Payload: dataWire(t, addr, 3, nwk, app, []byte("c"))})
	if evs := flush(t, s); len(evs) != 1 || evs[0].Type != "delivery" {
		t.Fatalf("post-refill events = %+v, want delivery", evs)
	}
	if st := s.Stats(); st.QuotaDropped != 1 {
		t.Errorf("quota_dropped = %d, want 1", st.QuotaDropped)
	}
}

// TestDropReasons covers the immediate (non-windowed) drop taxonomy.
func TestDropReasons(t *testing.T) {
	dev := testDevice(7)
	s := mustServer(t, Config{Devices: []Device{dev}, Workers: 1})
	stranger := testDevice(8) // not provisioned

	badMIC := joinWire(t, dev, 1)
	badMIC[len(badMIC)-1] ^= 0xFF

	cases := []struct {
		name    string
		payload []byte
		reason  string
	}{
		{"empty", nil, ReasonMalformed},
		{"short_join", []byte{0x00, 1, 2}, ReasonMalformed},
		{"downlink_mtype", []byte{uint8(lorawan.JoinAccept) << 5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, ReasonUnsupportedMType},
		{"unknown_device", joinWire(t, stranger, 1), ReasonUnknownDevice},
		{"bad_mic", badMIC, ReasonBadMIC},
		{"unknown_devaddr", dataWire(t, 0x26FFFFFF, 1, testKey(1), testKey(2), []byte("x")), ReasonUnknownDevAddr},
	}
	for i, tc := range cases {
		evs := ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: float64(i), Payload: tc.payload})
		if len(evs) != 1 || evs[0].Type != "drop" || evs[0].Reason != tc.reason {
			t.Errorf("%s: events = %+v, want an immediate %s drop", tc.name, evs, tc.reason)
		}
	}
	st := s.Stats()
	if st.Dropped != uint64(len(cases)) {
		t.Errorf("dropped = %d, want %d", st.Dropped, len(cases))
	}
	for _, tc := range cases {
		if st.DropReasons[tc.reason] == 0 {
			t.Errorf("drop reason %s never counted", tc.reason)
		}
	}
}

// buildMixedBatch builds a worker-order-sensitive workload: joins, a data
// frame that verifies only after its same-batch join commits, gateway
// copies, and garbage. Determinism demands identical events at any width.
func buildMixedBatch(t testing.TB, devs []Device) []Uplink {
	t.Helper()
	var batch []Uplink
	at := 0.0
	push := func(gw string, snr float64, payload []byte) {
		batch = append(batch, Uplink{GatewayID: gw, Channel: len(batch) % 3, SF: 7 + len(batch)%3, TimeSec: at, SNRdB: snr, Payload: payload})
		at += 0.013
	}
	for i, d := range devs {
		jw := joinWire(t, d, uint16(100+i))
		push("gw-a", float64(i), jw)
		push("gw-b", float64(i)+0.5, jw) // copy: dedup merge
	}
	// First uplinks ride in the same logical stream: the join for device i
	// commits when the clock passes its window, after which the session
	// exists for the data frame (the vDefer → serial re-verify path once
	// these land in one batch). Keys are deterministic: join i is the
	// (i+1)-th join, so AppNonce = DevAddr counter = i+1.
	for i, d := range devs {
		addr := lorawan.DevAddr(DefaultDevAddrBase | uint32(i+1))
		nwk, app, err := lorawan.DeriveSessionKeys(d.AppKey, uint32(i+1), DefaultNetID, uint16(100+i))
		if err != nil {
			t.Fatal(err)
		}
		at += 0.3 // past the dedup window: the join has committed
		push("gw-a", 2, dataWire(t, addr, 1, nwk, app, []byte(fmt.Sprintf("data-%d", i))))
		push("gw-c", 6, dataWire(t, addr, 1, nwk, app, []byte(fmt.Sprintf("data-%d", i))))
	}
	push("gw-a", 0, []byte("not lorawan"))
	push("gw-b", 0, nil)
	return batch
}

// TestDeterministicAcrossWorkers pins the core Ingest contract: the event
// stream is byte-identical at every verification width, single batch or
// split arbitrarily.
func TestDeterministicAcrossWorkers(t *testing.T) {
	devs := []Device{testDevice(1), testDevice(2), testDevice(3)}
	run := func(workers, chunk int) []byte {
		s := mustServer(t, Config{Devices: []Device{devs[0], devs[1], devs[2]}, Workers: workers})
		batch := buildMixedBatch(t, devs)
		var evs []Event
		for i := 0; i < len(batch); i += chunk {
			end := i + chunk
			if end > len(batch) {
				end = len(batch)
			}
			evs = append(evs, ingest(t, s, batch[i:end]...)...)
		}
		evs = append(evs, flush(t, s)...)
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	want := run(1, 1<<30)
	if !bytes.Contains(want, []byte(`"type":"join"`)) || !bytes.Contains(want, []byte(`"type":"delivery"`)) {
		t.Fatalf("reference run missing joins or deliveries:\n%s", want)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, chunk := range []int{1, 3, 1 << 30} {
			if got := run(workers, chunk); !bytes.Equal(got, want) {
				t.Errorf("workers=%d chunk=%d diverged from the serial run:\n got: %s\nwant: %s", workers, chunk, got, want)
			}
		}
	}
}

// TestAdvanceTo delivers pending frames as logical time passes with the
// uplink stream quiet, and refuses to run the clock backwards.
func TestAdvanceTo(t *testing.T) {
	dev := testDevice(9)
	s := mustServer(t, Config{Devices: []Device{dev}, DedupWindowSec: 0.5, Workers: 1})
	ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: 1.0, Payload: joinWire(t, dev, 1)})
	evs, err := s.AdvanceTo(1.2)
	if err != nil || len(evs) != 0 {
		t.Fatalf("AdvanceTo(1.2) = %v, %v; window should still be open", evs, err)
	}
	evs, err = s.AdvanceTo(0.5) // backwards: clamps to the current clock
	if err != nil || len(evs) != 0 {
		t.Fatalf("AdvanceTo(0.5) = %v, %v", evs, err)
	}
	evs, err = s.AdvanceTo(1.5)
	if err != nil || len(evs) != 1 || evs[0].Type != "join" {
		t.Fatalf("AdvanceTo(1.5) = %v, %v; want the join delivered", evs, err)
	}
	if evs[0].TimeSec != 1.5 {
		t.Errorf("join delivered at %v, want the window expiry 1.5", evs[0].TimeSec)
	}
}

// TestConcurrentUseGuard: an overlapping driver call is refused with the
// typed sentinel instead of racing the pipeline state.
func TestConcurrentUseGuard(t *testing.T) {
	s := mustServer(t, Config{Workers: 1})
	s.inUse.Store(true)
	for name, call := range map[string]func() ([]Event, error){
		"Ingest":    func() ([]Event, error) { return s.Ingest(nil) },
		"AdvanceTo": func() ([]Event, error) { return s.AdvanceTo(1) },
		"Flush":     func() ([]Event, error) { return s.Flush() },
	} {
		if _, err := call(); err != ErrConcurrentUse {
			t.Errorf("%s under contention: %v, want ErrConcurrentUse", name, err)
		}
	}
	s.inUse.Store(false)
	if _, err := s.Ingest(nil); err != nil {
		t.Errorf("Ingest after release: %v", err)
	}
}

// TestConfigRejects: bad provisioning fails at New, not at traffic time.
func TestConfigRejects(t *testing.T) {
	if _, err := New(Config{Devices: []Device{{DevEUI: 1, AppKey: []byte("short")}}}); err == nil {
		t.Error("short AppKey accepted")
	}
	d := testDevice(1)
	if _, err := New(Config{Devices: []Device{d, d}}); err == nil {
		t.Error("duplicate DevEUI accepted")
	}
}

// TestStatsAndHandler: the ops snapshot and its HTTP surface agree with
// the traffic that flowed.
func TestStatsAndHandler(t *testing.T) {
	reg := metrics.NewRegistry()
	dev := testDevice(1)
	s := mustServer(t, Config{Devices: []Device{dev}, Workers: 1, Metrics: NewMetrics(reg)})
	jw := joinWire(t, dev, 1)
	ingest(t, s,
		Uplink{GatewayID: "gw-a", Channel: 1, SF: 8, TimeSec: 0.00, SNRdB: 1, Payload: jw},
		Uplink{GatewayID: "gw-b", Channel: 1, SF: 8, TimeSec: 0.01, SNRdB: 2, Payload: jw},
	)
	flush(t, s)

	st := s.Stats()
	if st.Uplinks != 2 || st.Joins != 1 || st.DupSuppressed != 1 || st.Sessions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.Shards) != 1 || st.Shards[0] != (ShardStats{Channel: 1, SF: 8, Uplinks: 2, Delivered: 1}) {
		t.Errorf("shard stats = %+v", st.Shards)
	}
	if st.Gateways["gw-a"] != 1 || st.Gateways["gw-b"] != 1 {
		t.Errorf("gateway stats = %+v", st.Gateways)
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/netserver", nil))
	var got Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("/netserver is not JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if got.Joins != st.Joins || got.Uplinks != st.Uplinks || got.Sessions != st.Sessions {
		t.Errorf("/netserver = %+v, Stats() = %+v", got, st)
	}

	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"tnb_netserver_uplinks_total":        2,
		"tnb_netserver_joins_total":          1,
		"tnb_netserver_dup_suppressed_total": 1,
		"tnb_netserver_sessions_active":      1,
		"tnb_netserver_dedup_pending":        0,
	} {
		if got := snap[name]; fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("metric %s = %v, want %d", name, got, want)
		}
	}
}

// BenchmarkNetserverIngest measures the verify+commit pipeline at several
// widths over a realistic mixed batch, reporting packets/sec and the
// dedup-table high-water memory.
func BenchmarkNetserverIngest(b *testing.B) {
	devs := []Device{testDevice(1), testDevice(2), testDevice(3)}
	batch := buildMixedBatch(b, devs)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var peakBytes int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := mustServer(b, Config{Devices: devs, Workers: workers})
				if _, err := s.Ingest(batch); err != nil {
					b.Fatal(err)
				}
				if db := s.Stats().DedupBytes; db > peakBytes {
					peakBytes = db
				}
				if _, err := s.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "packets/s")
			b.ReportMetric(float64(peakBytes), "dedup-bytes")
		})
	}
}
