package netserver

// nonceWindowCap bounds the per-device DevNonce replay history. The old
// map[uint16]bool grew one entry per join forever; a device that rejoins
// every few hours would leak state for the lifetime of the server. A fixed
// ring of the most recent nonces bounds that at a few hundred bytes per
// device while still refusing any replay of a recently used nonce — the
// only replays an attacker can actually mount, since LoRaWAN 1.0 DevNonces
// are random and a recorded join ages out of usefulness with its session.
// Evictions are counted on tnb_netserver_devnonce_evictions_total.
const nonceWindowCap = 128

// nonceWindow is a fixed-capacity ring of recently used DevNonces.
type nonceWindow struct {
	ring [nonceWindowCap]uint16
	n    int // live entries
	pos  int // next write slot
}

// contains reports whether nonce is in the retained history.
func (w *nonceWindow) contains(nonce uint16) bool {
	for i := 0; i < w.n; i++ {
		if w.ring[i] == nonce {
			return true
		}
	}
	return false
}

// add records nonce, evicting the oldest entry when full; it reports
// whether an eviction happened.
func (w *nonceWindow) add(nonce uint16) (evicted bool) {
	evicted = w.n == nonceWindowCap
	w.ring[w.pos] = nonce
	w.pos = (w.pos + 1) % nonceWindowCap
	if !evicted {
		w.n++
	}
	return evicted
}
