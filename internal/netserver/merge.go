package netserver

import (
	"encoding/binary"
	"math"
	"sort"

	"tnb/internal/lorawan"
	"tnb/internal/obs"
)

// The deterministic cross-shard merge.
//
// The serial engine emitted events in a single pass: before each uplink it
// closed every dedup window the uplink's (prefix-max) logical clock had
// expired, then committed the uplink itself. That order is exactly the
// ascending order of a sort key
//
//	windowed close  → (expiry, 0, entry seq)
//	immediate event → (clock,  1, item seq)
//
// because clocks are prefix maxima (nondecreasing in seq), window expiries
// are clock + constant (so also nondecreasing in seq), and an entry closes
// strictly before the first item whose clock reaches its expiry. Sequence
// numbers are globally unique, so keys are too, and the order is total.
//
// The sharded engine therefore doesn't need to commit serially: each shard
// produces its records in ascending key order on its own goroutine, the
// stateless route drops are keyed as they arrive, and this file merges the
// streams by picking ascending keys — reproducing the serial emission
// order bit for bit at every shard count and worker width.
//
// The slow lane cannot be pre-merged: its steps (joins, unknown-address
// data) mutate global state that later slow steps observe. It is executed
// lazily *during* the merge, each step at its key position, which is
// exactly the point the serial engine would have executed it.

// itemClass is the routing decision for one batch item.
type itemClass uint8

const (
	// icDropped is a stateless drop decided at route time (malformed,
	// unknown device, unsupported MType); routeInfo.reason holds why.
	icDropped itemClass = iota
	// icFast is a data frame for a known, quiescent device: verified in
	// parallel, committed on its device's shard.
	icFast
	// icSlowJoin is a syntactically valid join request for a provisioned
	// device: MIC-checked in parallel, executed serially at merge.
	icSlowJoin
	// icSlowData is a data frame whose session state is in motion (unknown
	// address, or a device with a join in flight): executed serially at
	// merge against the then-current session table.
	icSlowData
	// icDataPend is routeBatch-internal: a well-formed data frame whose
	// lane has not been chosen yet.
	icDataPend
)

// routeInfo is the per-item routing state threaded from the serial route
// pass through parallel verify to commit.
type routeInfo struct {
	class  itemClass
	shard  int32
	micOK  bool
	reason string  // icDropped only
	t      float64 // clamped (prefix-max) logical clock
	seq    uint64  // global arrival index
	hash   uint64  // fnv-1a of the frame bytes (set by verify)
	sess   *session
	dev    *deviceState
	hdr    lorawan.DataHeader
	join   lorawan.JoinRequestFrame
}

// recKey orders merge records; see the file comment for why ascending key
// order equals the serial engine's emission order.
type recKey struct {
	t         float64
	immediate bool
	seq       uint64
}

func (a recKey) less(b recKey) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.immediate != b.immediate {
		return !a.immediate // windowed closes land before same-time items
	}
	return a.seq < b.seq
}

// rec is one pre-finalized merge record: the event as the shard built it,
// plus what the serial finalizer still owes it (quota charge for
// deliveries, counters and tracing for drops).
type rec struct {
	t         float64
	immediate bool
	seq       uint64
	deliver   bool
	drop      bool
	sess      *session
	ev        Event
}

func (r *rec) key() recKey { return recKey{t: r.t, immediate: r.immediate, seq: r.seq} }

// recsByKey sorts merge records by ascending key without reflection
// (sort.Slice builds a swapper per call on the merge hot path).
type recsByKey []rec

func (r recsByKey) Len() int           { return len(r) }
func (r recsByKey) Less(i, j int) bool { return r[i].key().less(r[j].key()) }
func (r recsByKey) Swap(i, j int)      { r[i], r[j] = r[j], r[i] }

// immediateDropRec builds the record of a non-windowed drop. Like the
// serial engine's, the event carries only the reception metadata — no
// device identity, no copy accounting.
func immediateDropRec(u *Uplink, ri *routeInfo, reason string) rec {
	return rec{
		t: ri.t, immediate: true, seq: ri.seq, drop: true,
		ev: Event{
			Type:    "drop",
			TimeSec: ri.t,
			Channel: u.Channel, SF: u.SF,
			Gateway: u.GatewayID, SNRdB: u.SNRdB,
			Reason: reason,
		},
	}
}

// finalizeRec applies the serial tail of one record — quota, counters,
// tracing — and appends its event. Must be called in ascending key order:
// the quota buckets are global, and charging them in event order is what
// keeps their token state identical to the serial engine's.
func (s *Server) finalizeRec(evs []Event, r *rec) []Event {
	switch {
	case r.deliver:
		tenant := r.sess.tenant
		if !s.buckets[tenant].allow(r.t) {
			s.nQuota++
			s.met.onQuotaDropped()
			s.nDrops++
			s.met.onDropped()
			s.bumpDropReason(ReasonQuotaExceeded)
			ev := r.ev
			ev.Type, ev.Reason = "drop", ReasonQuotaExceeded
			ev.FCnt, ev.FPort, ev.Payload = 0, 0, nil
			s.traceDrop(ev)
			return append(evs, ev)
		}
		s.nDelivered++
		s.met.onDelivered()
		s.chStat(r.ev.Channel, r.ev.SF).Delivered++
		return append(evs, r.ev)
	case r.drop:
		s.nDrops++
		s.met.onDropped()
		s.bumpDropReason(r.ev.Reason)
		s.traceDrop(r.ev)
		return append(evs, r.ev)
	default: // join: counted by executeJoin at its key position
		return append(evs, r.ev)
	}
}

func (s *Server) finalizeImmediate(evs []Event, u *Uplink, ri *routeInfo, reason string) []Event {
	r := immediateDropRec(u, ri, reason)
	return s.finalizeRec(evs, &r)
}

// mergeAndFinalize is the serial back half of Ingest/AdvanceTo/Flush: it
// gathers the stateless and per-shard record streams, sorts them by key
// (each stream is already ascending; the sort just interleaves), and walks
// the global key order, executing slow-lane steps at their key positions
// and finalizing everything into the returned event slice. Slow windows
// close only up to the `limit` clock (the batch's final clock for Ingest,
// t for AdvanceTo, +Inf for Flush).
func (s *Server) mergeAndFinalize(evs []Event, batch []Uplink, sc *lorawan.Scratch, limit float64) []Event {
	nrec := len(s.statelessRecs)
	for _, sh := range s.shards {
		nrec += len(sh.recs)
	}
	if cap(s.mergeRecs) < nrec {
		s.mergeRecs = make([]rec, 0, nrec)
	}
	recs := s.mergeRecs[:0]
	recs = append(recs, s.statelessRecs...)
	for _, sh := range s.shards {
		recs = append(recs, sh.recs...)
	}
	sort.Sort(recsByKey(recs))
	if evs == nil {
		// One sized slab instead of append growth: every record and every
		// slow window already expired at entry emits exactly one event, and
		// each slow batch item at most one. (A window opened by a slow item
		// can additionally close within this call; append absorbs that
		// spill.)
		nClose := 0
		for _, e := range s.slow.pend {
			if e.expiry > limit {
				break
			}
			nClose++
		}
		if need := nrec + len(s.slowItems) + nClose; need > 0 {
			evs = make([]Event, 0, need)
		}
	}

	ri, si := 0, 0
	for {
		// Pick the smallest key among the sorted records, the slow lane's
		// next expiring window, and the slow lane's next batch item.
		const (
			srcNone = iota
			srcRec
			srcSlowClose
			srcSlowItem
		)
		src := srcNone
		var best recKey
		if ri < len(recs) {
			src, best = srcRec, recs[ri].key()
		}
		if len(s.slow.pend) > 0 && s.slow.pend[0].expiry <= limit {
			e := s.slow.pend[0]
			if k := (recKey{t: e.expiry, seq: e.seq}); src == srcNone || k.less(best) {
				src, best = srcSlowClose, k
			}
		}
		if si < len(s.slowItems) {
			it := &s.route[s.slowItems[si]]
			if k := (recKey{t: it.t, immediate: true, seq: it.seq}); src == srcNone || k.less(best) {
				src, best = srcSlowItem, k
			}
		}
		switch src {
		case srcNone:
			s.statelessRecs = s.statelessRecs[:0]
			s.slowItems = s.slowItems[:0]
			s.mergeRecs = recs[:0]
			var dups uint64
			for _, sh := range s.shards {
				dups += sh.dups
				sh.dups = 0
				sh.recs = sh.recs[:0]
			}
			if dups > 0 {
				s.nDups += dups
				s.met.onDupsSuppressed(dups)
			}
			return evs
		case srcRec:
			evs = s.finalizeRec(evs, &recs[ri])
			ri++
		case srcSlowClose:
			evs = s.closeSlowHead(evs, sc)
		case srcSlowItem:
			evs = s.execSlowItem(evs, batch, s.slowItems[si], sc)
			si++
		}
	}
}

// closeSlowHead closes the slow lane's next expiring window: joins execute
// (the only place the session table mutates), data windows deliver or drop
// exactly as fast-lane closes do.
func (s *Server) closeSlowHead(evs []Event, sc *lorawan.Scratch) []Event {
	e := s.slow.popHead()
	if e.isJoin {
		ev := s.executeJoin(e, sc)
		s.slowDevDone(e.dev.dev.DevEUI)
		recyclePend(e)
		return append(evs, ev)
	}
	r := s.closeDataEntry(sc, e)
	s.slowDevDone(e.sess.devEUI)
	recyclePend(e)
	return s.finalizeRec(evs, &r)
}

// slowDevDone releases one live slow-lane window of the device; at zero the
// device's new traffic routes fast again.
func (s *Server) slowDevDone(eui lorawan.EUI) {
	if n := s.slowDevs[eui]; n <= 1 {
		delete(s.slowDevs, eui)
	} else {
		s.slowDevs[eui] = n - 1
	}
}

// execSlowItem runs one slow-lane batch item at its key position, against
// the session table as this point in the global order sees it.
func (s *Server) execSlowItem(evs []Event, batch []Uplink, i int, sc *lorawan.Scratch) []Event {
	ri := &s.route[i]
	u := &batch[i]
	switch ri.class {
	case icSlowJoin:
		if !ri.micOK {
			return s.finalizeImmediate(evs, u, ri, ReasonBadMIC)
		}
		key := dedupKey{join: true, id: uint64(ri.join.DevEUI), ctr: uint32(ri.join.DevNonce), hash: ri.hash}
		if e := s.slow.byKey[key]; e != nil {
			s.nDups++
			s.met.onDupSuppressed()
			s.slow.bytes += mergeCopyInto(e, u)
			return evs
		}
		if ri.dev.nonces.contains(ri.join.DevNonce) {
			return s.finalizeImmediate(evs, u, ri, ReasonReplayedDevNonce)
		}
		e := newPendEntry()
		e.key = key
		e.isJoin = true
		e.dev = ri.dev
		e.devNonce = ri.join.DevNonce
		openEntry(&s.slow, e, u, ri, s.window)
		s.slowDevs[ri.dev.dev.DevEUI]++
		return evs

	case icSlowData:
		w := u.Payload
		addr := lorawan.DevAddr(binary.LittleEndian.Uint32(w[1:5]))
		sess := s.sessions[addr]
		if sess == nil {
			return s.finalizeImmediate(evs, u, ri, ReasonUnknownDevAddr)
		}
		hdr, ok := lorawan.ParseDataHeader(w)
		if !ok || !sess.nwkKC.VerifyDataMIC(sc, addr, uint32(hdr.FCnt), true, w) {
			return s.finalizeImmediate(evs, u, ri, ReasonBadMIC)
		}
		key := dedupKey{id: uint64(addr), ctr: uint32(hdr.FCnt), hash: ri.hash}
		if e := s.slow.byKey[key]; e != nil {
			s.nDups++
			s.met.onDupSuppressed()
			s.slow.bytes += mergeCopyInto(e, u)
			return evs
		}
		if int64(hdr.FCnt) <= sess.lastFCnt {
			return s.finalizeImmediate(evs, u, ri, ReasonReplayedFCnt)
		}
		e := newPendEntry()
		e.key = key
		e.sess = sess
		e.fcnt = hdr.FCnt
		e.fport, e.hasPort = hdr.FPort, hdr.HasPort
		e.enc = append(e.enc[:0], w[hdr.PayloadOff:len(w)-4]...)
		openEntry(&s.slow, e, u, ri, s.window)
		s.slowDevs[sess.devEUI]++
		return evs
	}
	return evs
}

// executeJoin activates a session at window expiry: records the DevNonce,
// assigns the deterministic DevAddr/AppNonce pair, derives the session keys
// (and their cached ciphers) and builds the JoinAccept downlink. Serial
// only — this is the one mutation point of the session table.
func (s *Server) executeJoin(e *pendEntry, sc *lorawan.Scratch) Event {
	at := e.expiry
	sort.Strings(e.gateways)
	dev := e.dev
	if dev.nonces.add(e.devNonce) {
		s.met.onNonceEvicted()
	}
	if dev.sess != nil {
		delete(s.sessions, dev.sess.devAddr) // rejoin replaces the session
	}
	s.joinCount++
	addr := lorawan.DevAddr(s.cfg.DevAddrBase | (s.joinCount & 0x00FFFFFF))
	appNonce := s.joinCount & 0x00FFFFFF

	nwk, app := lorawan.DeriveSessionKeysScratch(dev.appKC, sc, appNonce, s.cfg.NetID, e.devNonce)
	nwkKC, _ := lorawan.NewKeyCipher(nwk[:]) // 16 bytes by construction
	appKC, _ := lorawan.NewKeyCipher(app[:])
	sess := &session{
		devEUI: dev.dev.DevEUI, devAddr: addr, tenant: dev.dev.Tenant,
		devEUIStr: dev.dev.DevEUI.String(), devAddrStr: addr.String(),
		nwkKC: nwkKC, appKC: appKC, lastFCnt: -1,
		shard: s.shardOf(dev.dev.DevEUI),
	}
	dev.sess = sess
	s.sessions[addr] = sess
	s.nJoins++
	s.met.onJoin()
	s.chStat(e.channel, e.sf).Delivered++

	accept := &lorawan.JoinAcceptFrame{AppNonce: appNonce, NetID: s.cfg.NetID, DevAddr: addr, RxDelay: 1}
	wire, err := accept.MarshalScratch(dev.appKC, sc)
	if err != nil {
		wire = nil
	}
	return Event{
		Type:    "join",
		TimeSec: at,
		DevEUI:  sess.devEUIStr,
		DevAddr: sess.devAddrStr,
		Channel: e.channel, SF: e.sf,
		Gateway: e.bestGW, SNRdB: e.bestSNR,
		Copies: e.copies, Gateways: e.gateways,
		Tenant:     dev.dev.Tenant,
		JoinAccept: wire,
	}
}

// traceDrop mirrors one drop event into the trace stream. Serial (merge
// order), so record order is identical at every worker width and shard
// count.
func (s *Server) traceDrop(ev Event) {
	if s.cfg.Tracer == nil {
		return // OnNet would no-op, but the Origin below allocates
	}
	s.cfg.Tracer.OnNet(obs.NetEvent{
		Event:   obs.NetDrop,
		Reason:  ev.Reason,
		TimeSec: ev.TimeSec,
		DevEUI:  ev.DevEUI,
		DevAddr: ev.DevAddr,
		Origin:  &obs.Origin{Gateway: ev.Gateway, Channel: ev.Channel, SF: ev.SF},
	})
}

// drainLimitAll is the Flush() close limit: every window expires.
var drainLimitAll = math.Inf(1)
