// Package netserver is the LoRaWAN network-server layer above the gateway
// fleet: many gateways decode PHY payloads on their (channel, SF) shards
// and forward them here as Uplinks; the netserver turns that redundant,
// encrypted stream into exactly-once application deliveries.
//
// It implements the four MAC-layer jobs a deployment needs:
//
//   - Cross-gateway dedup: the same transmission is usually heard by
//     several gateways. Copies are matched by (DevAddr, FCnt, payload
//     hash) — (DevEUI, DevNonce, hash) for joins — inside a dedup window
//     anchored at the first copy's receive time; the frame is delivered
//     once, at window expiry, crediting the best-SNR gateway.
//   - OTAA joins: a verified JoinRequest from a provisioned device draws a
//     deterministic DevAddr/AppNonce, the LoRaWAN 1.0 session keys are
//     derived on both sides, and the JoinAccept downlink frame is returned
//     in the join event. DevNonce replay is refused.
//   - Session data: data frames are MIC-verified and decrypted against the
//     device session table, with FCnt replay protection.
//   - Per-tenant quotas: deliveries are charged to the device's tenant
//     token bucket in logical time; an exhausted bucket turns the delivery
//     into a quota_exceeded drop.
//
// Determinism contract: Ingest fans the CPU-heavy crypto verification over
// internal/parallel into index-addressed slots, then commits serially in
// batch order, so the event stream is byte-identical at every worker
// width. Time is logical (Uplink.TimeSec), never the wall clock, so a
// fixed fleet seed replays to the same bytes.
package netserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"tnb/internal/lorawan"
	"tnb/internal/obs"
	"tnb/internal/parallel"
)

// ErrConcurrentUse is returned by Ingest/AdvanceTo/Flush when a call
// overlaps another: the Server is a stateful single-consumer pipeline and
// must be driven from one goroutine at a time (the Streamer contract).
// Stats and the HTTP handler remain safe to call concurrently.
var ErrConcurrentUse = errors.New("netserver: concurrent Ingest/AdvanceTo/Flush call")

// Uplink is one decoded PHY payload forwarded by a gateway: the LoRaWAN
// frame bytes plus the reception metadata the netserver needs for dedup
// and shard accounting.
type Uplink struct {
	GatewayID string  `json:"gateway"`
	Channel   int     `json:"channel"`
	SF        int     `json:"sf"`
	TimeSec   float64 `json:"time_sec"` // logical receive time
	SNRdB     float64 `json:"snr_db"`
	Payload   []byte  `json:"payload"` // LoRaWAN frame bytes
}

// Device provisions one OTAA device: its identity, root key and tenant.
type Device struct {
	DevEUI lorawan.EUI
	AppEUI lorawan.EUI
	AppKey []byte
	Tenant string
}

// Quota is a per-tenant token bucket charged one token per delivery, in
// logical time. The zero value means unlimited.
type Quota struct {
	RatePerSec float64 // sustained deliveries per second
	Burst      float64 // bucket depth (0 with a rate selects 1)
}

// Defaults for Config zero values.
const (
	DefaultNetID          = 0x000013
	DefaultDevAddrBase    = 0x26000000
	DefaultDedupWindowSec = 0.2
)

// Config tunes a Server.
type Config struct {
	// NetID is the 24-bit network identifier placed in join accepts.
	// 0 selects DefaultNetID.
	NetID uint32
	// DevAddrBase is OR'd with the join counter to form assigned device
	// addresses. 0 selects DefaultDevAddrBase.
	DevAddrBase uint32
	// DedupWindowSec is how long after the first copy of a frame the
	// netserver waits for more gateway copies before delivering. 0 selects
	// DefaultDedupWindowSec; negative delivers immediately.
	DedupWindowSec float64
	// Workers is the verification fan-out width (parallel.Workers
	// semantics: 0 → GOMAXPROCS, 1 → serial). Output is byte-identical at
	// every width.
	Workers int
	// Devices is the OTAA provisioning table.
	Devices []Device
	// Quotas maps tenant → quota; tenants not listed are unlimited.
	Quotas map[string]Quota
	// Metrics receives the netserver instruments; nil disables them.
	Metrics *Metrics
	// Tracer, when non-nil, mirrors every drop event into the trace
	// stream as an obs "net" record (reason, logical time, origin), so a
	// trace store can answer "which gateway fed the bad_mic frames".
	// Emission happens in the serial commit phase, so record order is
	// identical at every Workers width.
	Tracer *obs.Tracer
}

// Event is one netserver output record, emitted as a JSON line by the
// drivers. Type is "join", "delivery" or "drop".
type Event struct {
	Type    string  `json:"type"`
	TimeSec float64 `json:"time_sec"`
	DevEUI  string  `json:"dev_eui,omitempty"`
	DevAddr string  `json:"dev_addr,omitempty"`
	FCnt    int     `json:"fcnt,omitempty"`
	FPort   int     `json:"fport,omitempty"`
	// Payload is the decrypted application payload on deliveries.
	Payload []byte `json:"payload,omitempty"`
	Channel int    `json:"channel"`
	SF      int    `json:"sf"`
	// Gateway is the best-SNR reception; Gateways lists every gateway that
	// contributed a copy (sorted); Copies counts the merged receptions.
	Gateway  string   `json:"gateway,omitempty"`
	SNRdB    float64  `json:"snr_db,omitempty"`
	Copies   int      `json:"copies,omitempty"`
	Gateways []string `json:"gateways,omitempty"`
	Tenant   string   `json:"tenant,omitempty"`
	// JoinAccept carries the encrypted downlink frame for the device on
	// join events; the device parses it with its AppKey and derives the
	// same session keys the netserver stored.
	JoinAccept []byte `json:"join_accept,omitempty"`
	// Reason classifies drops: malformed, unsupported_mtype,
	// unknown_device, unknown_devaddr, bad_mic, replayed_devnonce,
	// replayed_fcnt, quota_exceeded.
	Reason string `json:"reason,omitempty"`
}

// Drop reasons (Event.Reason).
const (
	ReasonMalformed        = "malformed"
	ReasonUnsupportedMType = "unsupported_mtype"
	ReasonUnknownDevice    = "unknown_device"
	ReasonUnknownDevAddr   = "unknown_devaddr"
	ReasonBadMIC           = "bad_mic"
	ReasonReplayedDevNonce = "replayed_devnonce"
	ReasonReplayedFCnt     = "replayed_fcnt"
	ReasonQuotaExceeded    = "quota_exceeded"
)

// session is one activated device: the derived keys and uplink state.
type session struct {
	devEUI   lorawan.EUI
	devAddr  lorawan.DevAddr
	tenant   string
	nwkSKey  []byte
	appSKey  []byte
	lastFCnt int64 // highest delivered FCnt; -1 before the first uplink
}

// deviceState is one provisioned device's server-side record.
type deviceState struct {
	dev        Device
	usedNonces map[uint16]bool
	sess       *session // nil until joined
}

// verdict kinds.
const (
	vDrop = iota
	vJoin
	vData
	vDefer // session unknown at verify time; re-verified serially
)

// verdict is the parallel verification result for one uplink.
type verdict struct {
	kind   int
	reason string
	join   *lorawan.JoinRequestFrame
	dev    *deviceState
	frame  *lorawan.DataFrame
	sess   *session // the session the frame was verified against
}

// pendEntry is one frame waiting out its dedup window.
type pendEntry struct {
	key      string
	first    float64 // receive time of the first copy
	channel  int
	sf       int
	copies   int
	gateways []string
	bestSNR  float64
	bestGW   string
	bytes    int64 // dedup-table memory charged for this entry

	isJoin bool
	dev    *deviceState
	join   *lorawan.JoinRequestFrame
	sess   *session
	frame  *lorawan.DataFrame
}

// shardStat accumulates per-(channel, SF) traffic.
type shardStat struct {
	Uplinks   uint64 `json:"uplinks"`
	Delivered uint64 `json:"delivered"`
}

// Server is the network server. Build it with New; drive it with Ingest
// (one goroutine), read it with Stats/Handler (any goroutine).
type Server struct {
	cfg    Config
	window float64
	met    *Metrics
	inUse  atomic.Bool

	mu         sync.Mutex
	devices    map[lorawan.EUI]*deviceState
	sessions   map[lorawan.DevAddr]*session
	pend       []*pendEntry // FIFO; first times are nondecreasing
	pendByKey  map[string]*pendEntry
	pendBytes  int64
	clock      float64
	joinCount  uint32
	buckets    map[string]*bucket
	shards     map[[2]int]*shardStat
	gateways   map[string]uint64
	dropReason map[string]uint64

	nUplinks, nJoins, nDelivered, nDups, nDrops, nQuota uint64
}

// New builds a Server from cfg. Devices with short keys are rejected.
func New(cfg Config) (*Server, error) {
	if cfg.NetID == 0 {
		cfg.NetID = DefaultNetID
	}
	if cfg.DevAddrBase == 0 {
		cfg.DevAddrBase = DefaultDevAddrBase
	}
	window := cfg.DedupWindowSec
	if window == 0 {
		window = DefaultDedupWindowSec
	}
	if window < 0 {
		window = 0
	}
	s := &Server{
		cfg:        cfg,
		window:     window,
		met:        cfg.Metrics,
		devices:    make(map[lorawan.EUI]*deviceState, len(cfg.Devices)),
		sessions:   make(map[lorawan.DevAddr]*session),
		pendByKey:  make(map[string]*pendEntry),
		buckets:    make(map[string]*bucket),
		shards:     make(map[[2]int]*shardStat),
		gateways:   make(map[string]uint64),
		dropReason: make(map[string]uint64),
	}
	for _, d := range cfg.Devices {
		if len(d.AppKey) != 16 {
			return nil, fmt.Errorf("netserver: device %s AppKey is %d bytes, want 16", d.DevEUI, len(d.AppKey))
		}
		if _, dup := s.devices[d.DevEUI]; dup {
			return nil, fmt.Errorf("netserver: device %s provisioned twice", d.DevEUI)
		}
		s.devices[d.DevEUI] = &deviceState{dev: d, usedNonces: make(map[uint16]bool)}
	}
	for tenant, q := range cfg.Quotas {
		if q.RatePerSec <= 0 {
			continue // unlimited
		}
		burst := q.Burst
		if burst <= 0 {
			burst = 1
		}
		s.buckets[tenant] = &bucket{rate: q.RatePerSec, burst: burst, tokens: burst}
	}
	return s, nil
}

// bucket is a logical-time token bucket.
type bucket struct {
	rate, burst, tokens, last float64
}

// allow charges one token at logical time t (nondecreasing).
func (b *bucket) allow(t float64) bool {
	if b == nil {
		return true
	}
	if t > b.last {
		b.tokens += (t - b.last) * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Ingest feeds one batch of uplinks, ordered by TimeSec, and returns the
// events they produced (including deliveries of earlier frames whose dedup
// window expired as the batch's logical clock advanced). MIC verification
// and payload decryption run on the worker pool; commits are serial in
// batch order, so the event stream is identical at every worker width.
func (s *Server) Ingest(batch []Uplink) ([]Event, error) {
	if !s.inUse.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer s.inUse.Store(false)

	// Phase 1 — parallel verify into index-addressed slots. Workers only
	// read the device/session tables; every mutation happens in phase 2.
	verdicts := make([]verdict, len(batch))
	parallel.ForEach(s.cfg.Workers, len(batch), func(_, i int) {
		verdicts[i] = s.verify(&batch[i])
	})

	// Phase 2 — serial commit in batch order.
	s.mu.Lock()
	defer s.mu.Unlock()
	var evs []Event
	for i := range batch {
		evs = s.commit(evs, &batch[i], &verdicts[i])
	}
	s.updateGauges()
	return evs, nil
}

// AdvanceTo moves the logical clock to t, delivering every pending frame
// whose dedup window expired by then. Use it when the uplink stream goes
// quiet but time still passes (the fleet drivers call it between phases).
func (s *Server) AdvanceTo(t float64) ([]Event, error) {
	if !s.inUse.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer s.inUse.Store(false)
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.clock {
		t = s.clock
	}
	s.clock = t
	evs := s.flushExpired(nil, t)
	s.updateGauges()
	return evs, nil
}

// Flush delivers every pending frame regardless of its window, each
// stamped at its own window expiry. Sessions and counters survive; only
// the dedup table drains. Call it at end of stream.
func (s *Server) Flush() ([]Event, error) {
	if !s.inUse.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer s.inUse.Store(false)
	s.mu.Lock()
	defer s.mu.Unlock()
	var evs []Event
	for len(s.pend) > 0 {
		evs = s.deliver(evs, s.pend[0])
		s.pend = s.pend[1:]
	}
	s.pendByKey = make(map[string]*pendEntry)
	s.pendBytes = 0
	s.updateGauges()
	return evs, nil
}

// verify classifies one uplink and runs its crypto without touching server
// state. Safe to run concurrently with other verify calls (read-only).
func (s *Server) verify(u *Uplink) verdict {
	w := u.Payload
	if len(w) < 1 {
		return verdict{kind: vDrop, reason: ReasonMalformed}
	}
	switch mtype := lorawan.MType(w[0] >> 5); mtype {
	case lorawan.JoinRequest:
		if len(w) != 23 {
			return verdict{kind: vDrop, reason: ReasonMalformed}
		}
		devEUI := lorawan.EUI(binary.LittleEndian.Uint64(w[9:17]))
		dev, ok := s.devices[devEUI]
		if !ok {
			return verdict{kind: vDrop, reason: ReasonUnknownDevice}
		}
		jr, err := lorawan.ParseJoinRequest(w, dev.dev.AppKey)
		if err != nil {
			return verdict{kind: vDrop, reason: ReasonBadMIC}
		}
		return verdict{kind: vJoin, join: jr, dev: dev}
	case lorawan.UnconfirmedDataUp, lorawan.ConfirmedDataUp:
		if len(w) < 12 {
			return verdict{kind: vDrop, reason: ReasonMalformed}
		}
		addr := lorawan.DevAddr(binary.LittleEndian.Uint32(w[1:5]))
		sess, ok := s.sessions[addr]
		if !ok {
			// The session may be created later in this very batch (join
			// and first uplink together); decide serially.
			return verdict{kind: vDefer}
		}
		f, err := lorawan.ParseDataFrame(w, sess.nwkSKey, sess.appSKey)
		if err != nil {
			return verdict{kind: vDrop, reason: ReasonBadMIC}
		}
		return verdict{kind: vData, frame: f, sess: sess}
	default:
		return verdict{kind: vDrop, reason: ReasonUnsupportedMType}
	}
}

// commit applies one uplink's verdict under the server lock, appending any
// events (window-expiry deliveries first, then this uplink's own outcome).
func (s *Server) commit(evs []Event, u *Uplink, v *verdict) []Event {
	t := u.TimeSec
	if t < s.clock {
		t = s.clock // logical time never runs backwards
	}
	s.clock = t
	evs = s.flushExpired(evs, t)

	s.nUplinks++
	s.met.onUplink()
	s.gateways[u.GatewayID]++
	s.shardStat(u.Channel, u.SF).Uplinks++

	// A deferred or stale verification re-runs serially: the session table
	// may have changed since phase 1 (same-batch join or rejoin).
	if v.kind == vDefer {
		*v = s.reverify(u)
	} else if v.kind == vData {
		if cur, ok := s.sessions[v.sess.devAddr]; !ok || cur != v.sess {
			*v = s.reverify(u)
		}
	}

	switch v.kind {
	case vDrop:
		return s.drop(evs, u, t, v.reason)
	case vJoin:
		key := fmt.Sprintf("j:%s:%04x:%x", v.join.DevEUI, v.join.DevNonce, payloadHash(u.Payload))
		if e, ok := s.pendByKey[key]; ok {
			s.mergeCopy(e, u)
			return evs
		}
		if v.dev.usedNonces[v.join.DevNonce] {
			return s.drop(evs, u, t, ReasonReplayedDevNonce)
		}
		e := &pendEntry{isJoin: true, dev: v.dev, join: v.join}
		s.addPend(e, key, u, t)
		return evs
	case vData:
		key := fmt.Sprintf("d:%s:%d:%x", v.sess.devAddr, v.frame.FCnt, payloadHash(u.Payload))
		if e, ok := s.pendByKey[key]; ok {
			s.mergeCopy(e, u)
			return evs
		}
		if int64(v.frame.FCnt) <= v.sess.lastFCnt {
			return s.drop(evs, u, t, ReasonReplayedFCnt)
		}
		e := &pendEntry{sess: v.sess, frame: v.frame}
		s.addPend(e, key, u, t)
		return evs
	}
	return evs
}

// reverify is the serial fallback for verdicts that phase 1 could not
// settle against a stable session table.
func (s *Server) reverify(u *Uplink) verdict {
	w := u.Payload
	addr := lorawan.DevAddr(binary.LittleEndian.Uint32(w[1:5]))
	sess, ok := s.sessions[addr]
	if !ok {
		return verdict{kind: vDrop, reason: ReasonUnknownDevAddr}
	}
	f, err := lorawan.ParseDataFrame(w, sess.nwkSKey, sess.appSKey)
	if err != nil {
		return verdict{kind: vDrop, reason: ReasonBadMIC}
	}
	return verdict{kind: vData, frame: f, sess: sess}
}

// addPend opens a dedup window for a first copy.
func (s *Server) addPend(e *pendEntry, key string, u *Uplink, t float64) {
	e.key = key
	e.first = t
	e.channel, e.sf = u.Channel, u.SF
	e.copies = 1
	e.gateways = []string{u.GatewayID}
	e.bestSNR, e.bestGW = u.SNRdB, u.GatewayID
	e.bytes = int64(len(u.Payload) + len(key) + pendOverheadBytes)
	s.pend = append(s.pend, e)
	s.pendByKey[key] = e
	s.pendBytes += e.bytes
}

// mergeCopy folds another gateway's copy into a pending frame, keeping the
// best-SNR reception (ties break toward the lexicographically smaller
// gateway so the outcome is order-independent).
func (s *Server) mergeCopy(e *pendEntry, u *Uplink) {
	e.copies++
	s.nDups++
	s.met.onDupSuppressed()
	if u.SNRdB > e.bestSNR || (u.SNRdB == e.bestSNR && u.GatewayID < e.bestGW) {
		e.bestSNR, e.bestGW = u.SNRdB, u.GatewayID
	}
	for _, g := range e.gateways {
		if g == u.GatewayID {
			return
		}
	}
	e.gateways = append(e.gateways, u.GatewayID)
	e.bytes += int64(len(u.GatewayID))
	s.pendBytes += int64(len(u.GatewayID))
}

// pendOverheadBytes approximates the fixed per-entry cost of the dedup
// table (entry struct, map slot, queue slot) for the memory gauge.
const pendOverheadBytes = 160

// flushExpired delivers, in arrival order, every pending frame whose dedup
// window closed by logical time t.
func (s *Server) flushExpired(evs []Event, t float64) []Event {
	for len(s.pend) > 0 && s.pend[0].first+s.window <= t {
		e := s.pend[0]
		s.pend = s.pend[1:]
		evs = s.deliver(evs, e)
	}
	return evs
}

// deliver closes one dedup window: executes the join or hands the data
// frame to the tenant's quota, emitting the event stamped at window expiry.
func (s *Server) deliver(evs []Event, e *pendEntry) []Event {
	delete(s.pendByKey, e.key)
	s.pendBytes -= e.bytes
	at := e.first + s.window
	sort.Strings(e.gateways)

	if e.isJoin {
		return append(evs, s.executeJoin(e, at))
	}

	// The world may have moved while the frame waited out its window:
	// a rejoin replaces the session (old keys are void), and an equal-FCnt
	// frame with a different payload opens its own window. Re-check both.
	sess := e.sess
	if cur, ok := s.sessions[sess.devAddr]; !ok || cur != sess {
		return append(evs, s.windowDrop(e, at, sess, ReasonUnknownDevAddr))
	}
	if int64(e.frame.FCnt) <= sess.lastFCnt {
		return append(evs, s.windowDrop(e, at, sess, ReasonReplayedFCnt))
	}
	tenant := sess.tenant
	if !s.buckets[tenant].allow(at) {
		s.nQuota++
		s.met.onQuotaDropped()
		ev := s.windowDrop(e, at, sess, ReasonQuotaExceeded)
		ev.Tenant = tenant
		return append(evs, ev)
	}
	sess.lastFCnt = int64(e.frame.FCnt)
	s.nDelivered++
	s.met.onDelivered()
	s.shardStat(e.channel, e.sf).Delivered++
	return append(evs, Event{
		Type:    "delivery",
		TimeSec: at,
		DevEUI:  sess.devEUI.String(),
		DevAddr: sess.devAddr.String(),
		FCnt:    int(e.frame.FCnt),
		FPort:   int(e.frame.FPort),
		Payload: e.frame.FRMPayload,
		Channel: e.channel, SF: e.sf,
		Gateway: e.bestGW, SNRdB: e.bestSNR,
		Copies: e.copies, Gateways: e.gateways,
		Tenant: tenant,
	})
}

// executeJoin activates a session at window expiry: marks the DevNonce
// used, assigns the deterministic DevAddr/AppNonce pair, derives the
// session keys and builds the JoinAccept downlink.
func (s *Server) executeJoin(e *pendEntry, at float64) Event {
	dev := e.dev
	dev.usedNonces[e.join.DevNonce] = true
	if dev.sess != nil {
		delete(s.sessions, dev.sess.devAddr) // rejoin replaces the session
	}
	s.joinCount++
	addr := lorawan.DevAddr(s.cfg.DevAddrBase | (s.joinCount & 0x00FFFFFF))
	appNonce := s.joinCount & 0x00FFFFFF

	nwk, app, err := lorawan.DeriveSessionKeys(dev.dev.AppKey, appNonce, s.cfg.NetID, e.join.DevNonce)
	if err != nil {
		// Keys were validated at provisioning; failure here is unreachable
		// short of memory corruption, but stay total.
		s.nDrops++
		s.met.onDropped()
		s.dropReason[ReasonMalformed]++
		ev := s.dropEvent(e, at, ReasonMalformed)
		s.traceDrop(ev)
		return ev
	}
	sess := &session{
		devEUI: dev.dev.DevEUI, devAddr: addr, tenant: dev.dev.Tenant,
		nwkSKey: nwk, appSKey: app, lastFCnt: -1,
	}
	dev.sess = sess
	s.sessions[addr] = sess
	s.nJoins++
	s.met.onJoin()
	s.shardStat(e.channel, e.sf).Delivered++

	accept := &lorawan.JoinAcceptFrame{AppNonce: appNonce, NetID: s.cfg.NetID, DevAddr: addr, RxDelay: 1}
	wire, err := accept.Marshal(dev.dev.AppKey)
	if err != nil {
		wire = nil
	}
	return Event{
		Type:    "join",
		TimeSec: at,
		DevEUI:  dev.dev.DevEUI.String(),
		DevAddr: addr.String(),
		Channel: e.channel, SF: e.sf,
		Gateway: e.bestGW, SNRdB: e.bestSNR,
		Copies: e.copies, Gateways: e.gateways,
		Tenant:     dev.dev.Tenant,
		JoinAccept: wire,
	}
}

// drop records an immediate (non-windowed) drop for one uplink.
func (s *Server) drop(evs []Event, u *Uplink, t float64, reason string) []Event {
	s.nDrops++
	s.met.onDropped()
	s.dropReason[reason]++
	ev := Event{
		Type:    "drop",
		TimeSec: t,
		Channel: u.Channel, SF: u.SF,
		Gateway: u.GatewayID, SNRdB: u.SNRdB,
		Reason: reason,
	}
	s.traceDrop(ev)
	return append(evs, ev)
}

// traceDrop mirrors one drop event into the trace stream.
func (s *Server) traceDrop(ev Event) {
	s.cfg.Tracer.OnNet(obs.NetEvent{
		Event:   obs.NetDrop,
		Reason:  ev.Reason,
		TimeSec: ev.TimeSec,
		DevEUI:  ev.DevEUI,
		DevAddr: ev.DevAddr,
		Origin:  &obs.Origin{Gateway: ev.Gateway, Channel: ev.Channel, SF: ev.SF},
	})
}

// dropEvent builds a drop event for a windowed entry.
func (s *Server) dropEvent(e *pendEntry, at float64, reason string) Event {
	return Event{
		Type:    "drop",
		TimeSec: at,
		Channel: e.channel, SF: e.sf,
		Gateway: e.bestGW, SNRdB: e.bestSNR,
		Copies: e.copies, Gateways: e.gateways,
		Reason: reason,
	}
}

// windowDrop records a deliver-time drop of a windowed data frame.
func (s *Server) windowDrop(e *pendEntry, at float64, sess *session, reason string) Event {
	s.nDrops++
	s.met.onDropped()
	s.dropReason[reason]++
	ev := s.dropEvent(e, at, reason)
	ev.DevEUI = sess.devEUI.String()
	ev.DevAddr = sess.devAddr.String()
	s.traceDrop(ev)
	return ev
}

func (s *Server) shardStat(ch, sf int) *shardStat {
	k := [2]int{ch, sf}
	st, ok := s.shards[k]
	if !ok {
		st = &shardStat{}
		s.shards[k] = st
	}
	return st
}

func (s *Server) updateGauges() {
	s.met.setSessions(len(s.sessions))
	s.met.setDedup(len(s.pend), s.pendBytes)
}

// payloadHash is the dedup fingerprint of the frame bytes.
func payloadHash(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// ShardStats is one (channel, SF) row of the ops surface.
type ShardStats struct {
	Channel   int    `json:"channel"`
	SF        int    `json:"sf"`
	Uplinks   uint64 `json:"uplinks"`
	Delivered uint64 `json:"delivered"`
}

// Stats is the /netserver ops snapshot.
type Stats struct {
	Devices       int               `json:"devices"`
	Sessions      int               `json:"sessions"`
	Uplinks       uint64            `json:"uplinks"`
	Joins         uint64            `json:"joins"`
	Delivered     uint64            `json:"delivered"`
	DupSuppressed uint64            `json:"dup_suppressed"`
	Dropped       uint64            `json:"dropped"`
	QuotaDropped  uint64            `json:"quota_dropped"`
	DedupPending  int               `json:"dedup_pending"`
	DedupBytes    int64             `json:"dedup_bytes"`
	Shards        []ShardStats      `json:"shards"`
	Gateways      map[string]uint64 `json:"gateways"`
	DropReasons   map[string]uint64 `json:"drop_reasons,omitempty"`
}

// Stats snapshots the server. Safe to call concurrently with Ingest.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Devices:       len(s.devices),
		Sessions:      len(s.sessions),
		Uplinks:       s.nUplinks,
		Joins:         s.nJoins,
		Delivered:     s.nDelivered,
		DupSuppressed: s.nDups,
		Dropped:       s.nDrops,
		QuotaDropped:  s.nQuota,
		DedupPending:  len(s.pend),
		DedupBytes:    s.pendBytes,
		Gateways:      make(map[string]uint64, len(s.gateways)),
		DropReasons:   make(map[string]uint64, len(s.dropReason)),
	}
	for k, v := range s.gateways {
		st.Gateways[k] = v
	}
	for k, v := range s.dropReason {
		st.DropReasons[k] = v
	}
	for k, v := range s.shards {
		st.Shards = append(st.Shards, ShardStats{Channel: k[0], SF: k[1], Uplinks: v.Uplinks, Delivered: v.Delivered})
	}
	sort.Slice(st.Shards, func(i, j int) bool {
		if st.Shards[i].Channel != st.Shards[j].Channel {
			return st.Shards[i].Channel < st.Shards[j].Channel
		}
		return st.Shards[i].SF < st.Shards[j].SF
	})
	return st
}
