// Package netserver is the LoRaWAN network-server layer above the gateway
// fleet: many gateways decode PHY payloads on their (channel, SF) shards
// and forward them here as Uplinks; the netserver turns that redundant,
// encrypted stream into exactly-once application deliveries.
//
// It implements the four MAC-layer jobs a deployment needs:
//
//   - Cross-gateway dedup: the same transmission is usually heard by
//     several gateways. Copies are matched by (DevAddr, FCnt, payload
//     hash) — (DevEUI, DevNonce, hash) for joins — inside a dedup window
//     anchored at the first copy's receive time; the frame is delivered
//     once, at window expiry, crediting the best-SNR gateway.
//   - OTAA joins: a verified JoinRequest from a provisioned device draws a
//     deterministic DevAddr/AppNonce, the LoRaWAN 1.0 session keys are
//     derived on both sides, and the JoinAccept downlink frame is returned
//     in the join event. DevNonce replay is refused.
//   - Session data: data frames are MIC-verified and decrypted against the
//     device session table, with FCnt replay protection.
//   - Per-tenant quotas: deliveries are charged to the device's tenant
//     token bucket in logical time; an exhausted bucket turns the delivery
//     into a quota_exceeded drop.
//
// Ingest is a sharded pipeline (DESIGN.md §14): a serial route pass stamps
// logical clocks and arrival indexes and splits the batch into a fast lane
// (data frames for known, quiescent devices — the steady state) and a slow
// lane (joins and frames whose session state is in motion). Fast frames
// are MIC-verified on the worker pool with cached per-session ciphers and
// committed concurrently on per-device-EUI state shards; the slow lane and
// all cross-cutting state (quotas, counters, tracing) run in a serial
// merge that interleaves every shard's records in logical-clock +
// arrival-index order. The event stream is byte-identical at every worker
// width and shard count. Time is logical (Uplink.TimeSec), never the wall
// clock, so a fixed fleet seed replays to the same bytes.
package netserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tnb/internal/lorawan"
	"tnb/internal/obs"
	"tnb/internal/parallel"
)

// ErrConcurrentUse is returned by Ingest/AdvanceTo/Flush when a call
// overlaps another: the Server is a stateful single-consumer pipeline and
// must be driven from one goroutine at a time (the Streamer contract).
// Stats and the HTTP handler remain safe to call concurrently.
var ErrConcurrentUse = errors.New("netserver: concurrent Ingest/AdvanceTo/Flush call")

// Uplink is one decoded PHY payload forwarded by a gateway: the LoRaWAN
// frame bytes plus the reception metadata the netserver needs for dedup
// and shard accounting.
type Uplink struct {
	GatewayID string  `json:"gateway"`
	Channel   int     `json:"channel"`
	SF        int     `json:"sf"`
	TimeSec   float64 `json:"time_sec"` // logical receive time
	SNRdB     float64 `json:"snr_db"`
	Payload   []byte  `json:"payload"` // LoRaWAN frame bytes
}

// Device provisions one OTAA device: its identity, root key and tenant.
type Device struct {
	DevEUI lorawan.EUI
	AppEUI lorawan.EUI
	AppKey []byte
	Tenant string
}

// Quota is a per-tenant token bucket charged one token per delivery, in
// logical time. The zero value means unlimited.
type Quota struct {
	RatePerSec float64 // sustained deliveries per second
	Burst      float64 // bucket depth (0 with a rate selects 1)
}

// Defaults for Config zero values.
const (
	DefaultNetID          = 0x000013
	DefaultDevAddrBase    = 0x26000000
	DefaultDedupWindowSec = 0.2
	DefaultShards         = 8
)

// Config tunes a Server.
type Config struct {
	// NetID is the 24-bit network identifier placed in join accepts.
	// 0 selects DefaultNetID.
	NetID uint32
	// DevAddrBase is OR'd with the join counter to form assigned device
	// addresses. 0 selects DefaultDevAddrBase.
	DevAddrBase uint32
	// DedupWindowSec is how long after the first copy of a frame the
	// netserver waits for more gateway copies before delivering. 0 selects
	// DefaultDedupWindowSec; negative delivers immediately.
	DedupWindowSec float64
	// Workers is the verification fan-out width (parallel.Workers
	// semantics: 0 → GOMAXPROCS, 1 → serial). Output is byte-identical at
	// every width.
	Workers int
	// Shards is the number of lock-striped state shards device state is
	// spread over; commit runs concurrently across shards. 0 selects
	// DefaultShards; negative selects 1. Output is byte-identical at every
	// shard count.
	Shards int
	// Devices is the OTAA provisioning table.
	Devices []Device
	// Quotas maps tenant → quota; tenants not listed are unlimited.
	Quotas map[string]Quota
	// Metrics receives the netserver instruments; nil disables them.
	Metrics *Metrics
	// Tracer, when non-nil, mirrors every drop event into the trace
	// stream as an obs "net" record (reason, logical time, origin), so a
	// trace store can answer "which gateway fed the bad_mic frames".
	// Emission happens in the serial merge phase, so record order is
	// identical at every Workers width and shard count.
	Tracer *obs.Tracer
}

// Event is one netserver output record, emitted as a JSON line by the
// drivers. Type is "join", "delivery" or "drop".
type Event struct {
	Type    string  `json:"type"`
	TimeSec float64 `json:"time_sec"`
	DevEUI  string  `json:"dev_eui,omitempty"`
	DevAddr string  `json:"dev_addr,omitempty"`
	FCnt    int     `json:"fcnt,omitempty"`
	FPort   int     `json:"fport,omitempty"`
	// Payload is the decrypted application payload on deliveries.
	Payload []byte `json:"payload,omitempty"`
	Channel int    `json:"channel"`
	SF      int    `json:"sf"`
	// Gateway is the best-SNR reception; Gateways lists every gateway that
	// contributed a copy (sorted); Copies counts the merged receptions.
	Gateway  string   `json:"gateway,omitempty"`
	SNRdB    float64  `json:"snr_db,omitempty"`
	Copies   int      `json:"copies,omitempty"`
	Gateways []string `json:"gateways,omitempty"`
	Tenant   string   `json:"tenant,omitempty"`
	// JoinAccept carries the encrypted downlink frame for the device on
	// join events; the device parses it with its AppKey and derives the
	// same session keys the netserver stored.
	JoinAccept []byte `json:"join_accept,omitempty"`
	// Reason classifies drops: malformed, unsupported_mtype,
	// unknown_device, unknown_devaddr, bad_mic, replayed_devnonce,
	// replayed_fcnt, quota_exceeded.
	Reason string `json:"reason,omitempty"`
}

// Drop reasons (Event.Reason).
const (
	ReasonMalformed        = "malformed"
	ReasonUnsupportedMType = "unsupported_mtype"
	ReasonUnknownDevice    = "unknown_device"
	ReasonUnknownDevAddr   = "unknown_devaddr"
	ReasonBadMIC           = "bad_mic"
	ReasonReplayedDevNonce = "replayed_devnonce"
	ReasonReplayedFCnt     = "replayed_fcnt"
	ReasonQuotaExceeded    = "quota_exceeded"
)

// session is one activated device: the derived key ciphers (expanded once
// at join, so per-frame verify/decrypt is schedule-free), the identity
// strings every event repeats, and the uplink state.
type session struct {
	devEUI     lorawan.EUI
	devAddr    lorawan.DevAddr
	tenant     string
	devEUIStr  string
	devAddrStr string
	nwkKC      *lorawan.KeyCipher
	appKC      *lorawan.KeyCipher
	lastFCnt   int64 // highest accepted FCnt; -1 before the first uplink
	shard      int   // shardOf(devEUI), cached
}

// deviceState is one provisioned device's server-side record.
type deviceState struct {
	dev    Device
	appKC  *lorawan.KeyCipher // cached root-key cipher
	nonces nonceWindow
	sess   *session // nil until joined
}

// shardStat accumulates per-(channel, SF) traffic.
type shardStat struct {
	Uplinks   uint64 `json:"uplinks"`
	Delivered uint64 `json:"delivered"`
}

// chCounter is one (channel, SF) tally row; gwCounter and reasonCounter
// are the per-gateway and per-drop-reason equivalents.
type chCounter struct {
	ch, sf int
	shardStat
}

type gwCounter struct {
	id string
	n  uint64
}

type reasonCounter struct {
	reason string
	n      uint64
}

// Pipeline thresholds: batches below pipelineMinBatch (or Workers=1) run
// inline — the goroutine plumbing costs more than it buys on small
// batches. pipelineChunk is the verify hand-off granularity; the committer
// queues are bounded so a slow shard back-pressures verify instead of
// buffering the whole batch (the old full-batch barrier).
const (
	pipelineMinBatch  = 32
	pipelineChunk     = 16
	committerQueueCap = 128
)

// Server is the network server. Build it with New; drive it with Ingest
// (one goroutine), read it with Stats/Handler (any goroutine).
type Server struct {
	cfg    Config
	window float64
	met    *Metrics
	inUse  atomic.Bool

	mu       sync.Mutex
	nshards  int
	devices  map[lorawan.EUI]*deviceState
	sessions map[lorawan.DevAddr]*session
	shards   []*ingestShard

	// Slow lane: windows owned by the serial merge — joins, and data for
	// devices with a join in flight. slowDevs refcounts each device's live
	// slow windows (while >0 its new traffic keeps routing slow);
	// batchSlow lists devices with a join in the current batch.
	slow      pendTable
	slowDevs  map[lorawan.EUI]int
	batchSlow []lorawan.EUI

	clock     float64
	seq       uint64 // global arrival index, monotone across batches
	joinCount uint32
	buckets   map[string]*bucket

	// Per-gateway, per-reason and per-(channel,SF) tallies. These are
	// linear-scanned slices, not maps: their cardinality is the deployment's
	// gateway / drop-reason / channel-plan count (a handful), and at that
	// size a scan beats hashing on the per-uplink increment path while
	// costing zero map-growth allocations.
	chStats    []chCounter
	gateways   []gwCounter
	dropReason []reasonCounter

	// Per-batch scratch, capacity-reused so the steady state allocates
	// nothing.
	route         []routeInfo
	statelessRecs []rec
	slowItems     []int
	mergeRecs     []rec
	verifySc      []lorawan.Scratch
	commitSc      []lorawan.Scratch
	mergeSc       lorawan.Scratch

	nUplinks, nJoins, nDelivered, nDups, nDrops, nQuota uint64
}

// New builds a Server from cfg. Devices with short keys are rejected.
func New(cfg Config) (*Server, error) {
	if cfg.NetID == 0 {
		cfg.NetID = DefaultNetID
	}
	if cfg.DevAddrBase == 0 {
		cfg.DevAddrBase = DefaultDevAddrBase
	}
	window := cfg.DedupWindowSec
	if window == 0 {
		window = DefaultDedupWindowSec
	}
	if window < 0 {
		window = 0
	}
	nshards := cfg.Shards
	if nshards == 0 {
		nshards = DefaultShards
	}
	if nshards < 1 {
		nshards = 1
	}
	s := &Server{
		cfg:      cfg,
		window:   window,
		met:      cfg.Metrics,
		nshards:  nshards,
		devices:  make(map[lorawan.EUI]*deviceState, len(cfg.Devices)),
		sessions: make(map[lorawan.DevAddr]*session, len(cfg.Devices)),
		shards:   make([]*ingestShard, nshards),
		slowDevs: make(map[lorawan.EUI]int),
	}
	// One backing array for the stripes; the per-stripe dedup key index is
	// created lazily on first insert (pendTable.add), so an idle shard
	// costs nothing.
	backing := make([]ingestShard, nshards)
	for i := range s.shards {
		s.shards[i] = &backing[i]
	}
	for _, d := range cfg.Devices {
		if len(d.AppKey) != 16 {
			return nil, fmt.Errorf("netserver: device %s AppKey is %d bytes, want 16", d.DevEUI, len(d.AppKey))
		}
		if _, dup := s.devices[d.DevEUI]; dup {
			return nil, fmt.Errorf("netserver: device %s provisioned twice", d.DevEUI)
		}
		kc, err := lorawan.NewKeyCipher(d.AppKey)
		if err != nil {
			return nil, fmt.Errorf("netserver: device %s: %w", d.DevEUI, err)
		}
		s.devices[d.DevEUI] = &deviceState{dev: d, appKC: kc}
	}
	if len(cfg.Quotas) > 0 {
		s.buckets = make(map[string]*bucket, len(cfg.Quotas))
		for tenant, q := range cfg.Quotas {
			if q.RatePerSec <= 0 {
				continue // unlimited
			}
			burst := q.Burst
			if burst <= 0 {
				burst = 1
			}
			s.buckets[tenant] = &bucket{rate: q.RatePerSec, burst: burst, tokens: burst}
		}
	}
	s.met.setShardCount(nshards)
	return s, nil
}

// bucket is a logical-time token bucket.
type bucket struct {
	rate, burst, tokens, last float64
}

// allow charges one token at logical time t (nondecreasing).
func (b *bucket) allow(t float64) bool {
	if b == nil {
		return true
	}
	if t > b.last {
		b.tokens += (t - b.last) * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Ingest feeds one batch of uplinks, ordered by TimeSec, and returns the
// events they produced (including deliveries of earlier frames whose dedup
// window expired as the batch's logical clock advanced). MIC verification
// runs on the worker pool and commits run concurrently per state shard,
// pipelined through bounded queues; the serial merge re-interleaves the
// records in logical-clock + arrival-index order, so the event stream is
// identical at every worker width and shard count.
func (s *Server) Ingest(batch []Uplink) ([]Event, error) {
	if !s.inUse.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer s.inUse.Store(false)
	s.mu.Lock()
	defer s.mu.Unlock()

	s.routeBatch(batch)

	workers := parallel.Workers(s.cfg.Workers)
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 || len(batch) < pipelineMinBatch {
		s.runInline(batch)
	} else {
		s.runPipelined(batch, workers)
	}

	evs := s.mergeAndFinalize(nil, batch, &s.mergeSc, s.clock)
	s.updateGauges()
	return evs, nil
}

// AdvanceTo moves the logical clock to t, delivering every pending frame
// whose dedup window expired by then. Use it when the uplink stream goes
// quiet but time still passes (the fleet drivers call it between phases).
func (s *Server) AdvanceTo(t float64) ([]Event, error) {
	if !s.inUse.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer s.inUse.Store(false)
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.clock {
		t = s.clock
	}
	s.clock = t
	for _, sh := range s.shards {
		s.flushShard(sh, &s.mergeSc, t)
	}
	evs := s.mergeAndFinalize(nil, nil, &s.mergeSc, t)
	s.updateGauges()
	return evs, nil
}

// Flush delivers every pending frame regardless of its window, each
// stamped at its own window expiry. Sessions and counters survive; only
// the dedup table drains. Call it at end of stream.
func (s *Server) Flush() ([]Event, error) {
	if !s.inUse.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer s.inUse.Store(false)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		s.flushShard(sh, &s.mergeSc, drainLimitAll)
	}
	evs := s.mergeAndFinalize(nil, nil, &s.mergeSc, drainLimitAll)
	s.updateGauges()
	return evs, nil
}

// routeBatch is the serial front half of Ingest: it stamps each item with
// its clamped logical clock and global arrival index, classifies it, and
// splits the batch into lanes. Pass A scans joins first so that a device
// with a join ANYWHERE in the batch routes all its data slow (a join
// earlier in arrival order may replace the session a later frame needs);
// the same sweep migrates the device's already-open fast windows into the
// slow lane. Pass B then assigns data frames and bumps the per-uplink
// counters in arrival order.
func (s *Server) routeBatch(batch []Uplink) {
	if cap(s.route) < len(batch) {
		s.route = make([]routeInfo, len(batch))
	}
	s.route = s.route[:len(batch)]
	s.statelessRecs = s.statelessRecs[:0]
	s.slowItems = s.slowItems[:0]
	s.batchSlow = s.batchSlow[:0]

	// Pass A — clocks, arrival indexes, join classification.
	for i := range batch {
		u := &batch[i]
		t := u.TimeSec
		if t < s.clock {
			t = s.clock // logical time never runs backwards
		}
		s.clock = t
		ri := &s.route[i]
		*ri = routeInfo{t: t, seq: s.seq}
		s.seq++
		w := u.Payload
		if len(w) < 1 {
			ri.reason = ReasonMalformed
			continue
		}
		switch lorawan.MType(w[0] >> 5) {
		case lorawan.JoinRequest:
			if len(w) != 23 {
				ri.reason = ReasonMalformed
				continue
			}
			devEUI := lorawan.EUI(binary.LittleEndian.Uint64(w[9:17]))
			dev := s.devices[devEUI]
			if dev == nil {
				ri.reason = ReasonUnknownDevice
				continue
			}
			ri.class = icSlowJoin
			ri.dev = dev
			if !euiIn(s.batchSlow, devEUI) {
				s.batchSlow = append(s.batchSlow, devEUI)
			}
		case lorawan.UnconfirmedDataUp, lorawan.ConfirmedDataUp:
			if len(w) < 12 {
				ri.reason = ReasonMalformed
				continue
			}
			ri.class = icDataPend
		default:
			ri.reason = ReasonUnsupportedMType
		}
	}

	if len(s.batchSlow) > 0 {
		for _, eui := range s.batchSlow {
			s.migrateToSlow(eui)
		}
		// Migrated entries interleave with existing slow windows; seq order
		// is expiry order (clocks are prefix maxima).
		sort.Sort(pendBySeq(s.slow.pend))
		if cap(s.slowItems) < len(batch) {
			// A join in the batch drags its device's data to the slow lane
			// too; size for the worst case once instead of growing through
			// the small append sizes.
			s.slowItems = make([]int, 0, len(batch))
		}
	}

	// Pass B — lane assignment and per-uplink accounting.
	for i := range batch {
		u := &batch[i]
		ri := &s.route[i]
		s.nUplinks++
		s.met.onUplink()
		s.bumpGateway(u.GatewayID)
		s.chStat(u.Channel, u.SF).Uplinks++
		switch ri.class {
		case icDropped:
			s.statelessRecs = append(s.statelessRecs, immediateDropRec(u, ri, ri.reason))
		case icSlowJoin:
			s.slowItems = append(s.slowItems, i)
			s.met.onSlowRouted()
		case icDataPend:
			addr := lorawan.DevAddr(binary.LittleEndian.Uint32(u.Payload[1:5]))
			sess := s.sessions[addr]
			if sess == nil || euiIn(s.batchSlow, sess.devEUI) || s.slowDevs[sess.devEUI] > 0 {
				// Unknown address (the session may be created later in this
				// very batch) or session state in motion: decide serially.
				ri.class = icSlowData
				s.slowItems = append(s.slowItems, i)
				s.met.onSlowRouted()
				continue
			}
			ri.class = icFast
			ri.sess = sess
			ri.shard = int32(sess.shard)
		}
	}
}

// verifyItem runs one item's parallel-safe work: the frame hash, and the
// MIC check for lanes whose key material is already pinned (fast data
// against its session, joins against the device root key). Reads only
// immutable state; every mutation happens at commit or merge.
func (s *Server) verifyItem(u *Uplink, ri *routeInfo, sc *lorawan.Scratch) {
	ri.hash = fnv64a(u.Payload)
	switch ri.class {
	case icFast:
		hdr, ok := lorawan.ParseDataHeader(u.Payload)
		if !ok {
			ri.micOK = false
			return
		}
		ri.hdr = hdr
		ri.micOK = ri.sess.nwkKC.VerifyDataMIC(sc, ri.sess.devAddr, uint32(hdr.FCnt), true, u.Payload)
	case icSlowJoin:
		jr, err := lorawan.ParseJoinRequestCached(u.Payload, ri.dev.appKC, sc)
		ri.micOK = err == nil
		ri.join = jr
	}
}

// runInline is the serial execution path: verify and commit each item in
// arrival order on the calling goroutine. Zero goroutines, zero channels —
// the right shape for small batches and Workers=1.
func (s *Server) runInline(batch []Uplink) {
	sc := &s.commitScratch(1)[0]
	for i := range batch {
		ri := &s.route[i]
		if ri.class != icDropped {
			s.verifyItem(&batch[i], ri, sc)
		}
		if ri.class == icFast {
			s.commitFast(sc, batch, i)
		}
	}
	for _, sh := range s.shards {
		s.flushShard(sh, sc, s.clock)
	}
}

// runPipelined is the concurrent execution path: verify chunks fan out on
// the worker pool, and as each prefix of the batch completes (in arrival
// order), its fast items are dispatched through bounded queues to shard
// committers running concurrently. Each committer owns a fixed set of
// shards (shard mod C), so one shard's items arrive in arrival order and
// commit without cross-shard coordination; back-pressure from a hot shard
// throttles verify instead of buffering the batch.
func (s *Server) runPipelined(batch []Uplink, workers int) {
	ncommit := s.nshards
	if ncommit > workers {
		ncommit = workers
	}
	queues := make([]chan int, ncommit)
	for c := range queues {
		queues[c] = make(chan int, committerQueueCap)
	}
	for len(s.verifySc) < workers {
		s.verifySc = append(s.verifySc, lorawan.Scratch{})
	}
	commitSc := s.commitScratch(ncommit)

	var wg sync.WaitGroup
	for c := 0; c < ncommit; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sc := &commitSc[c]
			for i := range queues[c] {
				s.commitFast(sc, batch, i)
			}
			for sh := c; sh < s.nshards; sh += ncommit {
				s.flushShard(s.shards[sh], sc, s.clock)
			}
		}(c)
	}

	parallel.ForEachChunksOrdered(workers, len(batch), pipelineChunk,
		func(worker, lo, hi int) {
			sc := &s.verifySc[worker]
			for i := lo; i < hi; i++ {
				ri := &s.route[i]
				if ri.class != icDropped {
					s.verifyItem(&batch[i], ri, sc)
				}
			}
		},
		func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ri := &s.route[i]
				if ri.class == icFast {
					queues[int(ri.shard)%ncommit] <- i
				}
			}
		})
	for _, q := range queues {
		close(q)
	}
	wg.Wait()
}

// commitScratch returns at least n committer scratch slots, sized lazily:
// serial servers never pay for scratch a pipelined width would need.
func (s *Server) commitScratch(n int) []lorawan.Scratch {
	if len(s.commitSc) < n {
		s.commitSc = make([]lorawan.Scratch, n)
	}
	return s.commitSc
}

// chStat returns the (channel, SF) tally row, creating it on first sight.
// The pointer aims into s.chStats' backing array: bump it immediately and
// don't hold it across another chStat call, which may grow the slice.
func (s *Server) chStat(ch, sf int) *shardStat {
	for i := range s.chStats {
		if c := &s.chStats[i]; c.ch == ch && c.sf == sf {
			return &c.shardStat
		}
	}
	s.chStats = append(s.chStats, chCounter{ch: ch, sf: sf})
	return &s.chStats[len(s.chStats)-1].shardStat
}

// bumpGateway counts one uplink against its gateway.
func (s *Server) bumpGateway(id string) {
	for i := range s.gateways {
		if s.gateways[i].id == id {
			s.gateways[i].n++
			return
		}
	}
	s.gateways = append(s.gateways, gwCounter{id: id, n: 1})
}

// bumpDropReason counts one drop against its reason.
func (s *Server) bumpDropReason(reason string) {
	for i := range s.dropReason {
		if s.dropReason[i].reason == reason {
			s.dropReason[i].n++
			return
		}
	}
	s.dropReason = append(s.dropReason, reasonCounter{reason: reason, n: 1})
}

// euiIn reports whether e appears in the (short, per-batch) list l.
func euiIn(l []lorawan.EUI, e lorawan.EUI) bool {
	for _, x := range l {
		if x == e {
			return true
		}
	}
	return false
}

// dedupTotals sums the pending-window count and charged bytes across every
// lane.
func (s *Server) dedupTotals() (int, int64) {
	n, b := len(s.slow.pend), s.slow.bytes
	for _, sh := range s.shards {
		n += len(sh.pend)
		b += sh.bytes
	}
	return n, b
}

func (s *Server) updateGauges() {
	s.met.setSessions(len(s.sessions))
	n, b := s.dedupTotals()
	s.met.setDedup(n, b)
}

// ShardStats is one (channel, SF) row of the ops surface.
type ShardStats struct {
	Channel   int    `json:"channel"`
	SF        int    `json:"sf"`
	Uplinks   uint64 `json:"uplinks"`
	Delivered uint64 `json:"delivered"`
}

// Stats is the /netserver ops snapshot.
type Stats struct {
	Devices       int               `json:"devices"`
	Sessions      int               `json:"sessions"`
	Uplinks       uint64            `json:"uplinks"`
	Joins         uint64            `json:"joins"`
	Delivered     uint64            `json:"delivered"`
	DupSuppressed uint64            `json:"dup_suppressed"`
	Dropped       uint64            `json:"dropped"`
	QuotaDropped  uint64            `json:"quota_dropped"`
	DedupPending  int               `json:"dedup_pending"`
	DedupBytes    int64             `json:"dedup_bytes"`
	StateShards   int               `json:"state_shards"`
	Shards        []ShardStats      `json:"shards"`
	Gateways      map[string]uint64 `json:"gateways"`
	DropReasons   map[string]uint64 `json:"drop_reasons,omitempty"`
}

// Stats snapshots the server. Safe to call concurrently with Ingest (it
// waits for the in-flight batch).
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	pendN, pendB := s.dedupTotals()
	st := Stats{
		Devices:       len(s.devices),
		Sessions:      len(s.sessions),
		Uplinks:       s.nUplinks,
		Joins:         s.nJoins,
		Delivered:     s.nDelivered,
		DupSuppressed: s.nDups,
		Dropped:       s.nDrops,
		QuotaDropped:  s.nQuota,
		DedupPending:  pendN,
		DedupBytes:    pendB,
		StateShards:   s.nshards,
		Gateways:      make(map[string]uint64, len(s.gateways)),
		DropReasons:   make(map[string]uint64, len(s.dropReason)),
	}
	for _, g := range s.gateways {
		st.Gateways[g.id] = g.n
	}
	for _, r := range s.dropReason {
		st.DropReasons[r.reason] = r.n
	}
	if len(s.chStats) > 0 {
		st.Shards = make([]ShardStats, 0, len(s.chStats))
	}
	for _, c := range s.chStats {
		st.Shards = append(st.Shards, ShardStats{Channel: c.ch, SF: c.sf, Uplinks: c.Uplinks, Delivered: c.Delivered})
	}
	sort.Sort(shardStatsOrder(st.Shards))
	return st
}

// shardStatsOrder sorts channel/SF rows for stable reporting.
type shardStatsOrder []ShardStats

func (s shardStatsOrder) Len() int      { return len(s) }
func (s shardStatsOrder) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s shardStatsOrder) Less(i, j int) bool {
	if s[i].Channel != s[j].Channel {
		return s[i].Channel < s[j].Channel
	}
	return s[i].SF < s[j].SF
}
