package netserver

import (
	"encoding/json"
	"net/http"
)

// Handler serves the netserver ops snapshot as JSON (the /netserver
// endpoint). Mount it on the metrics mux:
//
//	mux := http.NewServeMux()
//	mux.Handle("/", metrics.Handler(reg))
//	mux.Handle("/netserver", ns.Handler())
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats())
	})
}
