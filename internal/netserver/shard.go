package netserver

import (
	"sort"
	"sync"

	"tnb/internal/lorawan"
)

// The sharded dedup/commit layer. Ingest routes every data frame to the
// shard owning its device (shardOf(DevEUI)), so all state a frame's commit
// reads or writes — the session's frame counter, the device's pending
// dedup windows — is touched by exactly one committer per batch and shards
// commit concurrently without fine-grained locking. Anything whose
// semantics are inherently global (joins, quota buckets, unknown
// addresses, the trace stream) runs in the serial merge instead; see
// merge.go for the ordering argument.

// dedupKey is the fixed-size comparable dedup fingerprint of one frame:
// (DevAddr, FCnt, payload hash) for data, (DevEUI, DevNonce, payload
// hash) for joins. It replaces the old fmt.Sprintf string keys, which
// allocated on every uplink.
type dedupKey struct {
	join bool
	id   uint64 // DevAddr (data) or DevEUI (join)
	ctr  uint32 // FCnt or DevNonce
	hash uint64 // fnv-1a over the frame bytes
}

// dedupKeyBytes is the map-key share of the per-entry memory accounting.
const dedupKeyBytes = 24

// fnv64a is an inline FNV-1a, avoiding the hash.Hash64 allocation of
// hash/fnv on the per-uplink path.
func fnv64a(p []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// pendEntry is one frame waiting out its dedup window.
type pendEntry struct {
	key         dedupKey
	seq         uint64  // global arrival index of the first copy
	first       float64 // receive time of the first copy
	expiry      float64 // first + window
	channel, sf int
	copies      int
	gateways    []string
	bestSNR     float64
	bestGW      string
	bytes       int64 // dedup-table memory charged for this entry

	// Data frames: the owning session and the still-encrypted payload
	// (copied, so the caller may reuse its uplink buffers). Decryption is
	// deferred to delivery — duplicate copies and replays never pay it.
	sess    *session
	fcnt    uint16
	fport   uint8
	hasPort bool
	enc     []byte

	// Joins.
	isJoin   bool
	dev      *deviceState
	devNonce uint16
}

// pendPool recycles pendEntry structs (and their payload buffers) across
// windows, so the steady state opens and closes dedup windows without
// allocating.
var pendPool = sync.Pool{New: func() any { return new(pendEntry) }}

func newPendEntry() *pendEntry { return pendPool.Get().(*pendEntry) }

// recyclePend returns an entry to the pool. The gateways slice is NOT
// reused — its ownership moves into the emitted Event — and pointers are
// cleared so the pool does not retain sessions or devices.
func recyclePend(e *pendEntry) {
	enc := e.enc[:0]
	*e = pendEntry{enc: enc}
	pendPool.Put(e)
}

// pendOverheadBytes approximates the fixed per-entry cost of the dedup
// table (entry struct, map slot, queue slot) for the memory gauge.
const pendOverheadBytes = 160

// pendTable is one lane's dedup state: a seq-ordered FIFO (first times,
// and therefore expiries, are nondecreasing in seq) plus the key index.
type pendTable struct {
	pend  []*pendEntry
	byKey map[dedupKey]*pendEntry
	bytes int64
}

func (pt *pendTable) add(e *pendEntry) {
	if pt.byKey == nil {
		// First use of this lane: size the map and queue for a handful of
		// concurrent windows up front instead of growing through the small
		// sizes on the first batch.
		pt.byKey = make(map[dedupKey]*pendEntry, 8)
		if cap(pt.pend) == 0 {
			pt.pend = make([]*pendEntry, 0, 8)
		}
	}
	pt.pend = append(pt.pend, e)
	pt.byKey[e.key] = e
	pt.bytes += e.bytes
}

// popHead removes and returns the first pending entry.
func (pt *pendTable) popHead() *pendEntry {
	e := pt.pend[0]
	copy(pt.pend, pt.pend[1:])
	pt.pend[len(pt.pend)-1] = nil
	pt.pend = pt.pend[:len(pt.pend)-1]
	delete(pt.byKey, e.key)
	pt.bytes -= e.bytes
	return e
}

// pendBySeq re-sorts a pend queue by arrival index after a migration
// splices two seq-sorted runs together.
type pendBySeq []*pendEntry

func (p pendBySeq) Len() int           { return len(p) }
func (p pendBySeq) Less(i, j int) bool { return p[i].seq < p[j].seq }
func (p pendBySeq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }

// ingestShard is one lock stripe of the dedup table plus its per-batch
// commit output. During a batch exactly one committer goroutine touches a
// shard; the mutex makes the hand-off explicit and keeps the stripe safe
// if a future caller relaxes that discipline.
type ingestShard struct {
	mu sync.Mutex
	pendTable
	recs []rec  // this batch's merge records, key-ordered by construction
	dups uint64 // this batch's suppressed copies, summed into nDups at merge
}

// openEntry charges and registers a first copy in pt, anchoring the dedup
// window at the item's clock.
func openEntry(pt *pendTable, e *pendEntry, u *Uplink, ri *routeInfo, window float64) {
	e.seq = ri.seq
	e.first = ri.t
	e.expiry = ri.t + window
	e.channel, e.sf = u.Channel, u.SF
	e.copies = 1
	e.gateways = append(make([]string, 0, 4), u.GatewayID)
	e.bestSNR, e.bestGW = u.SNRdB, u.GatewayID
	e.bytes = int64(len(u.Payload)) + dedupKeyBytes + pendOverheadBytes
	pt.add(e)
}

// mergeCopyInto folds another gateway's copy into a pending frame, keeping
// the best-SNR reception (ties break toward the lexicographically smaller
// gateway so the outcome is order-independent). It returns the dedup-table
// bytes the new copy added.
func mergeCopyInto(e *pendEntry, u *Uplink) int64 {
	e.copies++
	if u.SNRdB > e.bestSNR || (u.SNRdB == e.bestSNR && u.GatewayID < e.bestGW) {
		e.bestSNR, e.bestGW = u.SNRdB, u.GatewayID
	}
	for _, g := range e.gateways {
		if g == u.GatewayID {
			return 0
		}
	}
	e.gateways = append(e.gateways, u.GatewayID)
	added := int64(len(u.GatewayID))
	e.bytes += added
	return added
}

// commitFast applies one routed fast-lane item to its shard: close every
// window the item's clock expired, then dedup-match, replay-check or open
// a window for the item itself. Runs concurrently across shards; items of
// one shard arrive in batch order.
func (s *Server) commitFast(sc *lorawan.Scratch, batch []Uplink, i int) {
	ri := &s.route[i]
	if ri.class != icFast {
		return
	}
	u := &batch[i]
	sh := s.shards[ri.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.flushShardLocked(sh, sc, ri.t)

	if !ri.micOK {
		sh.recs = append(sh.recs, immediateDropRec(u, ri, ReasonBadMIC))
		return
	}
	key := dedupKey{id: uint64(ri.sess.devAddr), ctr: uint32(ri.hdr.FCnt), hash: ri.hash}
	if e := sh.byKey[key]; e != nil {
		sh.dups++
		sh.bytes += mergeCopyInto(e, u)
		return
	}
	if int64(ri.hdr.FCnt) <= ri.sess.lastFCnt {
		sh.recs = append(sh.recs, immediateDropRec(u, ri, ReasonReplayedFCnt))
		return
	}
	e := newPendEntry()
	e.key = key
	e.sess = ri.sess
	e.fcnt = ri.hdr.FCnt
	e.fport, e.hasPort = ri.hdr.FPort, ri.hdr.HasPort
	e.enc = append(e.enc[:0], u.Payload[ri.hdr.PayloadOff:len(u.Payload)-4]...)
	openEntry(&sh.pendTable, e, u, ri, s.window)
}

// flushShard closes every window in sh that expired by logical time t,
// appending the resulting merge records.
func (s *Server) flushShard(sh *ingestShard, sc *lorawan.Scratch, t float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.flushShardLocked(sh, sc, t)
}

func (s *Server) flushShardLocked(sh *ingestShard, sc *lorawan.Scratch, t float64) {
	for len(sh.pend) > 0 && sh.pend[0].expiry <= t {
		e := sh.popHead()
		sh.recs = append(sh.recs, s.closeDataEntry(sc, e))
		recyclePend(e)
	}
}

// closeDataEntry closes one data-frame dedup window: the deliver-time
// session and counter re-checks, the (eager) counter advance, and the
// payload decryption. It builds the merge record but does NOT touch quota,
// global counters, metrics or the tracer — those belong to the serial
// merge, where the record is finalized in global event order. Safe to run
// concurrently as long as all frames of e's device flow through the same
// caller (the shard invariant).
//
// The counter advance is eager: a frame that later loses its quota toss
// still burns its FCnt. The serial engine advanced the counter only on
// accepted deliveries, which let an attacker replay any frame the quota
// had refused; eager advance closes that and — because a frame's replay
// status no longer depends on the cross-tenant bucket state — is what
// makes per-device commit decisions shardable at all (DESIGN.md §14).
func (s *Server) closeDataEntry(sc *lorawan.Scratch, e *pendEntry) rec {
	at := e.expiry
	sort.Strings(e.gateways)
	sess := e.sess
	ev := Event{
		TimeSec: at,
		Channel: e.channel, SF: e.sf,
		Gateway: e.bestGW, SNRdB: e.bestSNR,
		Copies: e.copies, Gateways: e.gateways,
		DevEUI:  sess.devEUIStr,
		DevAddr: sess.devAddrStr,
	}
	// The world may have moved while the frame waited out its window: a
	// rejoin replaces the session (old keys are void), and an equal-FCnt
	// frame with a different payload opens its own window.
	if cur, ok := s.sessions[sess.devAddr]; !ok || cur != sess {
		ev.Type, ev.Reason = "drop", ReasonUnknownDevAddr
		return rec{t: at, seq: e.seq, drop: true, ev: ev}
	}
	if int64(e.fcnt) <= sess.lastFCnt {
		ev.Type, ev.Reason = "drop", ReasonReplayedFCnt
		return rec{t: at, seq: e.seq, drop: true, ev: ev}
	}
	sess.lastFCnt = int64(e.fcnt)
	var plain []byte
	if e.hasPort {
		plain = sess.appKC.CryptPayload(sc, nil, sess.devAddr, uint32(e.fcnt), true, e.enc)
	}
	ev.Type = "delivery"
	ev.FCnt, ev.FPort, ev.Payload = int(e.fcnt), int(e.fport), plain
	ev.Tenant = sess.tenant
	return rec{t: at, seq: e.seq, deliver: true, sess: sess, ev: ev}
}

// migrateToSlow moves every live fast-lane window of the given device into
// the slow lane. Called at route time when a join for the device appears
// in the batch: from that point the device's session identity can change
// mid-batch, so its commits (including deliveries of already-open windows)
// must run in the serial merge. Caller re-sorts s.slow.pend afterwards.
func (s *Server) migrateToSlow(eui lorawan.EUI) {
	dev := s.devices[eui]
	if dev == nil || dev.sess == nil {
		return
	}
	sh := s.shards[dev.sess.shard]
	if len(sh.pend) == 0 {
		return
	}
	moved := 0
	keep := sh.pend[:0]
	for _, e := range sh.pend {
		if !e.isJoin && e.sess.devEUI == eui {
			delete(sh.byKey, e.key)
			sh.bytes -= e.bytes
			s.slow.add(e)
			s.slowDevs[eui]++
			moved++
		} else {
			keep = append(keep, e)
		}
	}
	for i := len(keep); i < len(sh.pend); i++ {
		sh.pend[i] = nil
	}
	sh.pend = keep
	if moved > 0 {
		s.met.onShardMigrated(moved)
	}
}

// shardOf maps a device to its lock stripe. FNV over the EUI bytes spreads
// sequentially provisioned devices evenly.
func (s *Server) shardOf(eui lorawan.EUI) int {
	h := uint64(14695981039346656037)
	v := uint64(eui)
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= 1099511628211
		v >>= 8
	}
	return int(h % uint64(s.nshards))
}
