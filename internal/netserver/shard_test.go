package netserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"tnb/internal/lorawan"
	"tnb/internal/metrics"
)

// TestDeterministicAcrossShards widens the determinism pin to the sharded
// engine: a batch large enough to take the pipelined path (parallel verify
// feeding concurrent shard committers) must produce the byte-identical
// event stream at every shard count × worker width, against the serial
// single-shard run.
func TestDeterministicAcrossShards(t *testing.T) {
	var devs []Device
	for i := 1; i <= 12; i++ {
		devs = append(devs, testDevice(i))
	}
	run := func(shards, workers, chunk int) []byte {
		s := mustServer(t, Config{Devices: devs, Workers: workers, Shards: shards})
		batch := buildMixedBatch(t, devs)
		if len(batch) < pipelineMinBatch {
			t.Fatalf("batch of %d items too small to exercise the pipelined path", len(batch))
		}
		var evs []Event
		for i := 0; i < len(batch); i += chunk {
			end := i + chunk
			if end > len(batch) {
				end = len(batch)
			}
			evs = append(evs, ingest(t, s, batch[i:end]...)...)
		}
		evs = append(evs, flush(t, s)...)
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	want := run(1, 1, 1<<30)
	if !bytes.Contains(want, []byte(`"type":"join"`)) || !bytes.Contains(want, []byte(`"type":"delivery"`)) {
		t.Fatalf("reference run missing joins or deliveries:\n%s", want)
	}
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 2, 4} {
			for _, chunk := range []int{5, 1 << 30} {
				if got := run(shards, workers, chunk); !bytes.Equal(got, want) {
					t.Errorf("shards=%d workers=%d chunk=%d diverged from the serial run", shards, workers, chunk)
				}
			}
		}
	}
}

// TestIngestSteadyStateAllocs pins the allocation budget of the fast path:
// an activated device streaming data frames. The per-uplink cost is one
// decrypted payload, one gateways slice and the event itself — the dedup
// entries, crypto scratch, route state and merge records are all pooled or
// capacity-reused. The ceiling is deliberately loose (amortized slice
// growth and map resizes land unevenly) but far below the old engine's
// ~30 allocs per uplink.
func TestIngestSteadyStateAllocs(t *testing.T) {
	dev := testDevice(1)
	s := mustServer(t, Config{Devices: []Device{dev}, Workers: 1, DedupWindowSec: -1})
	addr, nwk, app, at := activateAt(t, s, dev, 1, 0)

	const batchSize = 16
	const runs = 60
	wires := make([][]byte, 0, batchSize*(runs+2))
	for fcnt := 1; fcnt <= batchSize*(runs+2); fcnt++ {
		wires = append(wires, dataWire(t, addr, uint16(fcnt), nwk, app, []byte("steady-state")))
	}
	batch := make([]Uplink, batchSize)
	next := 0
	feed := func() {
		for i := range batch {
			at += 0.01
			batch[i] = Uplink{GatewayID: "gw-a", Channel: 1, SF: 7, TimeSec: at, SNRdB: 5, Payload: wires[next]}
			next++
		}
		evs, err := s.Ingest(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) == 0 {
			t.Fatal("steady-state batch produced no events")
		}
	}
	feed() // warm the pools and capacity-reused scratch
	perBatch := testing.AllocsPerRun(runs, feed)
	perUplink := perBatch / batchSize
	if perUplink > 4 {
		t.Errorf("steady-state Ingest allocates %.1f/uplink (%.0f/batch), want <= 4", perUplink, perBatch)
	}
}

// activateAt joins dev at logical time `at` and returns its session
// identity, keys, and the clock after activation.
func activateAt(t testing.TB, s *Server, dev Device, nonce uint16, at float64) (lorawan.DevAddr, []byte, []byte, float64) {
	t.Helper()
	evs := ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: at, SNRdB: 1, Payload: joinWire(t, dev, nonce)})
	more, err := s.AdvanceTo(at + 1)
	if err != nil {
		t.Fatal(err)
	}
	evs = append(evs, more...)
	var join *Event
	for i := range evs {
		if evs[i].Type == "join" {
			join = &evs[i]
		}
	}
	if join == nil {
		t.Fatalf("no join event in %+v", evs)
	}
	acc, err := lorawan.ParseJoinAccept(join.JoinAccept, dev.AppKey)
	if err != nil {
		t.Fatal(err)
	}
	nwk, app, err := lorawan.DeriveSessionKeys(dev.AppKey, acc.AppNonce, acc.NetID, nonce)
	if err != nil {
		t.Fatal(err)
	}
	return acc.DevAddr, nwk, app, at + 1
}

// TestDevNonceEviction: the per-device DevNonce history is a bounded ring.
// Filling it past nonceWindowCap evicts the oldest nonce (counted on the
// eviction metric), after which that nonce joins again instead of being
// refused — while a recent nonce is still refused as replayed_devnonce.
func TestDevNonceEviction(t *testing.T) {
	dev := testDevice(1)
	reg := metrics.NewRegistry()
	met := NewMetrics(reg)
	s := mustServer(t, Config{Devices: []Device{dev}, Workers: 1, DedupWindowSec: -1, Metrics: met})

	at := 0.0
	join := func(nonce uint16) []Event {
		at += 1
		return ingest(t, s, Uplink{GatewayID: "gw-a", TimeSec: at, Payload: joinWire(t, dev, nonce)})
	}
	for n := 1; n <= nonceWindowCap; n++ {
		join(uint16(n))
	}
	if got := met.NonceEvicted.Value(); got != 0 {
		t.Fatalf("evictions after filling the window = %d, want 0", got)
	}
	// A recent nonce is refused.
	evs := join(uint16(nonceWindowCap))
	if len(evs) != 1 || evs[0].Reason != ReasonReplayedDevNonce {
		t.Fatalf("recent nonce reuse = %+v, want replayed_devnonce", evs)
	}
	// One more distinct nonce evicts nonce 1...
	join(uint16(nonceWindowCap + 1))
	if got := met.NonceEvicted.Value(); got != 1 {
		t.Fatalf("evictions after overflow = %d, want 1", got)
	}
	// ...so nonce 1 is no longer remembered and joins again.
	evs = join(1)
	if len(evs) != 1 || evs[0].Type != "join" {
		t.Fatalf("evicted nonce reuse = %+v, want a join", evs)
	}
}

// TestConcurrentStatsSoak drives Ingest/AdvanceTo/Flush from one goroutine
// while others hammer Stats; run under -race it proves the ops surface
// never observes a half-committed batch.
func TestConcurrentStatsSoak(t *testing.T) {
	var devs []Device
	for i := 1; i <= 6; i++ {
		devs = append(devs, testDevice(i))
	}
	s := mustServer(t, Config{Devices: devs, Workers: 4, Shards: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				if got := st.Joins + st.Delivered + st.Dropped + st.DupSuppressed; got > st.Uplinks {
					t.Errorf("stats snapshot inconsistent: %+v", st)
					return
				}
			}
		}()
	}
	for round := 0; round < 20; round++ {
		batch := buildMixedBatch(t, devs)
		for i := range batch {
			batch[i].TimeSec += float64(round) * 10
		}
		if _, err := s.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AdvanceTo(float64(round)*10 + 9); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	st := s.Stats()
	if st.DedupPending != 0 || st.DedupBytes != 0 {
		t.Errorf("dedup table not drained: %+v", st)
	}
	if st.Joins == 0 || st.Delivered == 0 {
		t.Errorf("soak lost coverage: %+v", st)
	}
}

// TestShardCountIndependence: the same traffic through every shard count
// leaves identical externally visible state (stats counters), not just
// identical events.
func TestShardCountIndependence(t *testing.T) {
	var devs []Device
	for i := 1; i <= 5; i++ {
		devs = append(devs, testDevice(i))
	}
	snap := func(shards int) string {
		s := mustServer(t, Config{Devices: devs, Workers: 2, Shards: shards})
		ingest(t, s, buildMixedBatch(t, devs)...)
		flush(t, s)
		st := s.Stats()
		st.StateShards = 0 // the one field that legitimately differs
		return fmt.Sprintf("%+v", st)
	}
	want := snap(1)
	for _, shards := range []int{4, 16} {
		if got := snap(shards); got != want {
			t.Errorf("shards=%d stats diverged:\n got %s\nwant %s", shards, got, want)
		}
	}
}
