package netserver

import (
	"testing"

	"tnb/internal/lorawan"
)

// FuzzIngest throws arbitrary frame bytes at a provisioned server, mixed
// with a valid join so crypto-bearing paths stay reachable. Properties: no
// panic, every uplink is accounted for exactly once (delivered, dropped,
// suppressed as a copy, or pending), and Flush always drains the table.
func FuzzIngest(f *testing.F) {
	dev := Device{DevEUI: 0xA001, AppEUI: 0xB000, AppKey: make([]byte, 16), Tenant: "t"}
	for i := range dev.AppKey {
		dev.AppKey[i] = byte(i)
	}
	jr := &lorawan.JoinRequestFrame{AppEUI: dev.AppEUI, DevEUI: dev.DevEUI, DevNonce: 1}
	join, err := jr.Marshal(dev.AppKey)
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte{})
	f.Add(join)
	f.Add(append(append([]byte{}, join...), 0x00))
	f.Add([]byte{uint8(lorawan.UnconfirmedDataUp) << 5, 1, 0, 0, 0x26, 0, 1, 0, 7, 1, 2, 3, 4})
	f.Add([]byte{0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := New(Config{Devices: []Device{dev}, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		evs, err := s.Ingest([]Uplink{
			{GatewayID: "gw-a", TimeSec: 0.0, SNRdB: 1, Payload: join},
			{GatewayID: "gw-b", TimeSec: 0.1, SNRdB: 2, Payload: raw},
			{GatewayID: "gw-b", TimeSec: 0.2, SNRdB: 3, Payload: raw},
		})
		if err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		fl, err := s.Flush()
		if err != nil {
			t.Fatalf("Flush: %v", err)
		}
		evs = append(evs, fl...)

		st := s.Stats()
		if st.DedupPending != 0 || st.DedupBytes != 0 {
			t.Fatalf("dedup table not drained after Flush: %+v", st)
		}
		accounted := st.Joins + st.Delivered + st.Dropped + st.QuotaDropped + st.DupSuppressed
		if accounted != st.Uplinks {
			t.Fatalf("uplink accounting leak: joins %d + delivered %d + dropped %d + quota %d + dups %d != uplinks %d\nevents: %+v",
				st.Joins, st.Delivered, st.Dropped, st.QuotaDropped, st.DupSuppressed, st.Uplinks, evs)
		}
		for _, e := range evs {
			if e.Type != "join" && e.Type != "delivery" && e.Type != "drop" {
				t.Fatalf("unknown event type %q", e.Type)
			}
		}
	})
}
