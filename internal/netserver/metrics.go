package netserver

import "tnb/internal/metrics"

// Metrics bundles the netserver instruments. All methods are nil-safe so a
// Server without a registry pays only a pointer check.
type Metrics struct {
	Uplinks       *metrics.Counter // tnb_netserver_uplinks_total
	Joins         *metrics.Counter // tnb_netserver_joins_total
	Delivered     *metrics.Counter // tnb_netserver_delivered_total
	DupSuppressed *metrics.Counter // tnb_netserver_dup_suppressed_total
	Dropped       *metrics.Counter // tnb_netserver_dropped_total
	QuotaDropped  *metrics.Counter // tnb_netserver_quota_dropped_total
	Sessions      *metrics.Gauge   // tnb_netserver_sessions_active
	DedupPending  *metrics.Gauge   // tnb_netserver_dedup_pending
	DedupBytes    *metrics.Gauge   // tnb_netserver_dedup_bytes
	ShardCount    *metrics.Gauge   // tnb_netserver_shard_count
	SlowRouted    *metrics.Counter // tnb_netserver_shard_slow_routed_total
	ShardMigrated *metrics.Counter // tnb_netserver_shard_migrated_entries_total
	NonceEvicted  *metrics.Counter // tnb_netserver_devnonce_evictions_total
}

// NewMetrics registers the netserver instruments on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Uplinks:       reg.Counter("tnb_netserver_uplinks_total"),
		Joins:         reg.Counter("tnb_netserver_joins_total"),
		Delivered:     reg.Counter("tnb_netserver_delivered_total"),
		DupSuppressed: reg.Counter("tnb_netserver_dup_suppressed_total"),
		Dropped:       reg.Counter("tnb_netserver_dropped_total"),
		QuotaDropped:  reg.Counter("tnb_netserver_quota_dropped_total"),
		Sessions:      reg.Gauge("tnb_netserver_sessions_active"),
		DedupPending:  reg.Gauge("tnb_netserver_dedup_pending"),
		DedupBytes:    reg.Gauge("tnb_netserver_dedup_bytes"),
		ShardCount:    reg.Gauge("tnb_netserver_shard_count"),
		SlowRouted:    reg.Counter("tnb_netserver_shard_slow_routed_total"),
		ShardMigrated: reg.Counter("tnb_netserver_shard_migrated_entries_total"),
		NonceEvicted:  reg.Counter("tnb_netserver_devnonce_evictions_total"),
	}
}

func (m *Metrics) onUplink() {
	if m != nil {
		m.Uplinks.Inc()
	}
}

func (m *Metrics) onJoin() {
	if m != nil {
		m.Joins.Inc()
	}
}

func (m *Metrics) onDelivered() {
	if m != nil {
		m.Delivered.Inc()
	}
}

func (m *Metrics) onDupSuppressed() {
	if m != nil {
		m.DupSuppressed.Inc()
	}
}

func (m *Metrics) onDropped() {
	if m != nil {
		m.Dropped.Inc()
	}
}

func (m *Metrics) onQuotaDropped() {
	if m != nil {
		m.QuotaDropped.Inc()
	}
}

func (m *Metrics) setSessions(n int) {
	if m != nil {
		m.Sessions.Set(int64(n))
	}
}

func (m *Metrics) setDedup(pending int, bytes int64) {
	if m != nil {
		m.DedupPending.Set(int64(pending))
		m.DedupBytes.Set(bytes)
	}
}

func (m *Metrics) onDupsSuppressed(n uint64) {
	if m != nil {
		m.DupSuppressed.Add(n)
	}
}

func (m *Metrics) setShardCount(n int) {
	if m != nil {
		m.ShardCount.Set(int64(n))
	}
}

func (m *Metrics) onSlowRouted() {
	if m != nil {
		m.SlowRouted.Inc()
	}
}

func (m *Metrics) onShardMigrated(n int) {
	if m != nil {
		m.ShardMigrated.Add(uint64(n))
	}
}

func (m *Metrics) onNonceEvicted() {
	if m != nil {
		m.NonceEvicted.Inc()
	}
}
