package netserver

import (
	"testing"

	"tnb/internal/obs"
	"tnb/internal/tracestore"
)

// TestDropsFlowIntoTraceStore wires a netserver's tracer into a trace
// store and checks that drop-taxonomy events come back out of a query with
// their reason and gateway origin intact.
func TestDropsFlowIntoTraceStore(t *testing.T) {
	st, err := tracestore.Open(tracestore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	dev := testDevice(7)
	tracer := obs.New(obs.Options{Spill: st})
	s := mustServer(t, Config{Devices: []Device{dev}, Workers: 1, Tracer: tracer})

	badMIC := joinWire(t, dev, 1)
	badMIC[len(badMIC)-1] ^= 0xFF
	ingest(t, s, Uplink{GatewayID: "gw-x", Channel: 3, SF: 9, TimeSec: 1, Payload: badMIC})
	ingest(t, s, Uplink{GatewayID: "gw-y", Channel: 0, SF: 7, TimeSec: 2, Payload: nil})
	st.Flush()

	res, err := st.Query(tracestore.Query{Reason: ReasonBadMIC})
	if err != nil || len(res) != 1 {
		t.Fatalf("bad_mic query: %d results (%v), want 1", len(res), err)
	}
	m, err := obs.MetaOf(res[0].Record)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != obs.TypeNet || m.Gateway != "gw-x" || m.Channel != 3 || m.SF != 9 {
		t.Errorf("stored drop meta = %+v, want net/gw-x/3/9", m)
	}
	if res, _ := st.Query(tracestore.Query{Types: []string{obs.TypeNet}, Limit: -1}); len(res) != 2 {
		t.Errorf("net-type query returned %d records, want 2", len(res))
	}
}
