package stagegraph

import (
	"math"
	"math/rand"
	"sort"

	"tnb/internal/bec"
	"tnb/internal/detect"
	"tnb/internal/lora"
	"tnb/internal/obs"
	"tnb/internal/parallel"
	"tnb/internal/peaks"
	"tnb/internal/stats"
	"tnb/internal/thrive"
	"tnb/internal/trace"
)

// Config selects the receiver variant. The zero value of optional fields
// picks the paper's settings.
type Config struct {
	Params lora.Params
	// Policy selects the peak-assignment algorithm: Thrive (default),
	// Sibling (no history cost) or AlignTrack* (baseline).
	Policy thrive.Policy
	// UseBEC enables Block Error Correction; false uses the default
	// per-codeword Hamming decoder (the "Thrive" configuration of §8.4).
	UseBEC bool
	// SecondPass re-decodes failed packets with decoded packets' peaks
	// masked (paper §4). Default on; set DisableSecondPass to turn off.
	DisableSecondPass bool
	// W caps BEC's packet CRC tests; 0 selects the paper's defaults.
	W int
	// MaxPayloadLen bounds the provisional packet length before the PHY
	// header is decoded. 0 defaults to 48 bytes.
	MaxPayloadLen int
	// Omega overrides the history-cost weight ω (0 → paper's 0.1).
	Omega float64
	// ListDecode retries a failed packet with Thrive's runner-up peak
	// substituted one symbol at a time — a list-decoding extension in the
	// spirit of the papers §2 cites ([16, 17]), applied per collided
	// packet. Off by default to match the paper's configuration.
	ListDecode bool
	// ListDecodeBudget caps the substitution attempts per packet
	// (0 → 24).
	ListDecodeBudget int
	// Seed drives BEC's random candidate sampling. Each packet gets its own
	// deterministic stream derived from (Seed, pass, packet index), so the
	// sampling is independent of decode order and worker count.
	Seed int64
	// Workers caps the goroutines used by the parallel pipeline stages
	// (candidate refinement, signal-vector prefill, packet decoding).
	// 0 uses GOMAXPROCS; 1 runs fully serial. The decoded output is
	// byte-identical for every value.
	Workers int
	// Metrics receives per-stage latencies and pipeline counters; nil
	// disables instrumentation (the sample path is then a nil check).
	// Use DefaultPipelineMetrics() to record into the process registry.
	Metrics *PipelineMetrics
	// Tracer receives one structured decode trace per detected packet
	// (internal/obs): detection parameters, per-symbol assignment
	// decisions, BEC block outcomes, and a failure reason. Nil disables
	// tracing; the hot path is then a nil check per packet.
	Tracer *obs.Tracer
	// Recorder, when non-nil, snapshots every stage boundary the pipeline
	// crosses into a replayable recording (see record.go). Recording is a
	// debugging/testing facility: it copies boundary data per window and is
	// not meant for the steady-state hot path.
	Recorder *Recorder
	// FaultCFOBiasCycles shifts every detection's CFO estimate by this
	// many cycles per symbol. It is a fault-injection hook for the
	// failure-attribution tests — it corrupts dechirping the way a wrong
	// sync lock would — and must stay zero in production.
	FaultCFOBiasCycles float64
}

// Decoded is one successfully decoded packet.
type Decoded struct {
	Payload   []uint8
	Header    lora.Header
	Start     float64 // packet start in rx samples
	CFOCycles float64
	SNRdB     float64 // estimated from preamble peaks vs the noise floor
	Rescued   int     // codewords fixed beyond the default decoder
	Pass      int     // 1 or 2 (second decoding attempt)
	// DataSymbols is the packet's on-air data symbol count, derived from
	// the decoded PHY header (LDRO-aware), and AirtimeSec the full on-air
	// time including the preamble — the fields reports and trace
	// summaries share.
	DataSymbols int
	AirtimeSec  float64
	// Trace is the packet's decode trace when the receiver has a Tracer.
	Trace *obs.PacketTrace
}

// Pipeline is the TnB gateway-side decoder as a stage graph. Create with
// New; a Pipeline may be reused across traces but is not safe for
// concurrent use (core.Receiver is an alias of this type).
type Pipeline struct {
	cfg      Config
	detector *detect.Detector
	demod    *lora.Demodulator
	met      *PipelineMetrics
	obs      *obs.Tracer
	rec      *Recorder
	// engine and calcs persist across Decode calls: the Thrive engine's
	// symbol pool and the calculators' signal-vector arenas are the decode
	// loop's two big recurring allocations, and reusing them makes the
	// steady-state loop allocation-light (pinned by the alloc-ceiling test).
	engine *thrive.Engine
	calcs  peaks.CalcPool

	// graph runs a full window (pass 1); passGraph re-runs the window
	// tail for the masked second pass, skipping detection.
	graph     *Graph
	passGraph *Graph
}

// New builds a pipeline for the parameter set in cfg.
func New(cfg Config) *Pipeline {
	if cfg.MaxPayloadLen == 0 {
		cfg.MaxPayloadLen = 48
	}
	d := detect.NewDetector(cfg.Params)
	d.Trace = cfg.Tracer
	d.CFOBiasCycles = cfg.FaultCFOBiasCycles
	d.Workers = cfg.Workers
	p := &Pipeline{
		cfg:      cfg,
		detector: d,
		demod:    d.Demodulator(),
		met:      cfg.Metrics,
		obs:      cfg.Tracer,
		rec:      cfg.Recorder,
		engine:   thrive.NewEngine(cfg.Params, thrive.Config{Policy: cfg.Policy, Omega: cfg.Omega}),
	}
	p.graph = NewGraph(DetectStage{}, SigCalcStage{}, ThriveStage{}, BECStage{})
	p.passGraph = NewGraph(p.graph.Stages()[1:]...)
	if p.rec != nil {
		p.rec.init(&cfg)
	}
	return p
}

// Graph returns the pipeline's full stage graph (detect → sigcalc →
// thrive → bec); the second pass runs the same graph minus detection.
func (p *Pipeline) Graph() *Graph { return p.graph }

// packetRNG returns the BEC sampling source for one packet of one pass.
// Seeding per (pass, packet) instead of sharing one stream across packets
// makes the rare random-sampling fallback independent of decode order, which
// is what lets the BEC stage fan out without changing its output.
func (p *Pipeline) packetRNG(pass, idx int) *rand.Rand {
	return rand.New(rand.NewSource(p.cfg.Seed + 1 + int64(pass)*1_000_003 + int64(idx)*7919))
}

// prefillWorkers splits the pool across npkts packets: packets are the outer
// fan-out, and when the pool is wider than the packet count the remainder
// accelerates each packet's own vector prefill.
func prefillWorkers(workers, npkts int) int {
	if npkts <= 0 || workers <= npkts {
		return 1
	}
	return (workers + npkts - 1) / npkts
}

// Decode runs the full pipeline on a trace and returns the decoded packets
// in start-time order.
func (p *Pipeline) Decode(tr *trace.Trace) []Decoded {
	return p.DecodeSamples(tr.Antennas)
}

// DecodeSamples is Decode for raw per-antenna sample slices. It schedules
// the stage graph over one window, then — when the first pass decoded some
// but not all detections — a second window with the decoded packets' peaks
// masked (paper §4).
func (p *Pipeline) DecodeSamples(antennas [][]complex128) []Decoded {
	w := &Window{Antennas: antennas, Pass: 1}
	p.graph.Run(p, w)
	if len(w.Pkts) == 0 {
		return nil
	}

	var out []Decoded
	decodedIdx := map[int]bool{}
	for i, res := range w.Results {
		if res.OK {
			out = append(out, res.Dec)
			decodedIdx[i] = true
		}
	}

	retrying := !p.cfg.DisableSecondPass && len(decodedIdx) > 0 && len(decodedIdx) < len(w.States)
	for i, st := range w.States {
		if pt := st.Trace; pt != nil {
			// A pass-1 failure about to be retried is not the packet's
			// final verdict.
			pt.Final = decodedIdx[i] || !retrying
			p.obs.Finish(pt)
		}
	}
	if retrying {
		w2 := &Window{
			Antennas:   antennas,
			TraceLen:   w.TraceLen,
			Pass:       2,
			ObsWindow:  w.ObsWindow,
			Pkts:       w.Pkts,
			DecodedIdx: decodedIdx,
			Prior:      w.States,
		}
		p.passGraph.Run(p, w2)
		for j, i := range w2.RetryIdx {
			if w2.Results[j].OK {
				out = append(out, w2.Results[j].Dec)
			}
			if pt := w2.States[i].Trace; pt != nil {
				pt.Final = true
				p.obs.Finish(pt)
			}
		}
	}
	return out
}

// DetectStage scans the window for preambles and refines each candidate's
// timing/CFO estimate (paper §7). Its boundary output is Window.Pkts.
type DetectStage struct{}

// Name implements Stage.
func (DetectStage) Name() string { return StageDetect }

// Run implements Stage.
func (DetectStage) Run(p *Pipeline, w *Window) {
	p.met.onPoolWorkers(parallel.Workers(p.cfg.Workers))
	t0 := p.met.now()
	w.Pkts = p.detector.Detect(w.Antennas)
	p.met.observeDetect(t0)
	p.met.onScanParallel(p.detector.ScanStats)
	p.met.onRefineParallel(p.detector.RefineStats)
	p.met.onDetected(len(w.Pkts))
	if len(w.Pkts) > 0 {
		w.TraceLen = len(w.Antennas[0])
	}
}

// SigCalcStage builds one prefilled signal-vector calculator and one
// assignment state per detection, so every later SigVec read — Thrive, SNR
// estimation, list decoding — is a pure cached read. Calculators come from
// the pool (drawn serially; the cursor is not goroutine-safe), then packets
// fan out across the worker pool for the prefill; leftover width speeds up
// each packet's own prefill. Traces are opened serially afterwards so the
// tracer sees packets in detection order. In pass 2 a decoded packet keeps
// only its masked peak positions and preamble history, and a failed packet
// carries its pass-1 heights as the history prior (paper §5.3.3).
type SigCalcStage struct{}

// Name implements Stage.
func (SigCalcStage) Name() string { return StageSigCalc }

// Run implements Stage.
func (SigCalcStage) Run(p *Pipeline, w *Window) {
	if w.Pass == 1 {
		p.calcs.Rewind()
		w.ObsWindow = p.obs.NextWindow()
	}
	t0 := p.met.now()
	inner := prefillWorkers(parallel.Workers(p.cfg.Workers), len(w.Pkts))
	states := make([]*thrive.PacketState, len(w.Pkts))
	calcs := make([]*peaks.Calculator, len(w.Pkts))
	for i := range w.Pkts {
		calcs[i] = p.newCalc(w.Antennas, w.Pkts[i], w.TraceLen)
	}
	sigSt := parallel.ForEach(p.cfg.Workers, len(w.Pkts), func(_, i int) {
		st := thrive.NewPacketState(i, calcs[i])
		if w.Pass == 2 {
			if w.DecodedIdx[i] {
				st.Known = true
				st.KnownShifts = w.Prior[i].KnownShifts
				// A known packet contributes only its masked peak positions
				// and preamble history; its data vectors are never read.
				st.Calc.PrefillPreamble()
			} else {
				st.PriorHeights = append([]float64(nil), w.Prior[i].Heights...)
				st.Calc.Prefill(inner)
			}
		} else {
			calcs[i].Prefill(inner)
		}
		states[i] = st
	})
	for i := range states {
		if w.Pass == 1 {
			states[i].Trace = p.newTrace(w.ObsWindow, i, 1, w.Pkts[i], states[i])
		} else if !w.DecodedIdx[i] {
			states[i].Trace = p.newTrace(w.ObsWindow, i, 2, w.Pkts[i], states[i])
		}
	}
	p.met.observeSigCalc(t0)
	p.met.onSigCalcParallel(sigSt)
	w.Calcs, w.States = calcs, states
}

// ThriveStage runs the greedy peak assignment (paper §5). The assignment is
// order-dependent by design and stays serial; with prefilled calculators it
// only does pure reads. Its boundary output is each state's Assignment.
type ThriveStage struct{}

// Name implements Stage.
func (ThriveStage) Name() string { return StageThrive }

// Run implements Stage.
func (ThriveStage) Run(p *Pipeline, w *Window) {
	t0 := p.met.now()
	p.engine.Run(w.States, w.TraceLen)
	p.met.observeThrive(t0)
}

// BECStage decodes every assigned packet concurrently into indexed slots
// (Hamming or BEC per the config), then the pipeline merges in detection
// order. In pass 2 only the packets pass 1 failed are attempted.
type BECStage struct{}

// Name implements Stage.
func (BECStage) Name() string { return StageBEC }

// Run implements Stage.
func (BECStage) Run(p *Pipeline, w *Window) {
	w.RetryIdx = w.RetryIdx[:0]
	for i := range w.States {
		if w.Pass == 2 && w.DecodedIdx[i] {
			continue
		}
		w.RetryIdx = append(w.RetryIdx, i)
	}
	w.Results = make([]Outcome, len(w.RetryIdx))
	decSt := parallel.ForEach(p.cfg.Workers, len(w.RetryIdx), func(_, j int) {
		i := w.RetryIdx[j]
		dec, ok := p.decodeAssigned(w.States[i], w.Pkts[i], w.Pass, i)
		w.Results[j] = Outcome{Dec: dec, OK: ok}
	})
	p.met.onDecodeParallel(decSt)
}

// newTrace opens the packet's decode trace; nil without a tracer.
func (p *Pipeline) newTrace(window uint64, id, pass int, pk detect.Packet, st *thrive.PacketState) *obs.PacketTrace {
	if p.obs == nil {
		return nil
	}
	start := math.Floor(pk.Start)
	pt := p.obs.NewPacket(window, id, pass, obs.Detection{
		StartSample: int(start),
		FracTiming:  pk.Start - start,
		CFOCycles:   pk.CFOCycles,
		CFOHz:       pk.CFOCycles / p.cfg.Params.SymbolDuration(),
		Quality:     pk.Quality,
		SNRdB:       p.estimateSNR(st),
	})
	pt.SyncScore = p.syncScore(st)
	pt.InitSymbols(st.Calc.NumData())
	return pt
}

// syncScore measures how well the estimated sync explains the preamble: the
// fraction of upchirps whose signal-vector maximum lands within ±1 bin of
// bin 0. A correct lock scores near 1; a wrong timing/CFO lock scatters the
// maxima and scores near 0.
func (p *Pipeline) syncScore(st *thrive.PacketState) float64 {
	n := p.cfg.Params.N()
	total, hits := 0, 0
	for k := 0; k < lora.PreambleUpchirps; k++ {
		idx := k - (lora.PreambleUpchirps + lora.SyncSymbols)
		if !st.Calc.InRange(idx) {
			continue
		}
		total++
		hb := peaks.HighestBin(st.Calc.SigVec(idx))
		if hb <= 1 || hb >= n-1 {
			hits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// newCalc draws a pooled signal-vector calculator with a provisional symbol
// count (the true count is learned from the PHY header after assignment).
// The pool cursor is not goroutine-safe: call serially, before any fan-out.
func (p *Pipeline) newCalc(antennas [][]complex128, pk detect.Packet, traceLen int) *peaks.Calculator {
	pr := p.cfg.Params
	lay, err := lora.NewLayout(pr, p.cfg.MaxPayloadLen)
	maxSyms := 0
	if err == nil {
		maxSyms = lay.DataSymbols
	}
	dataStart := pk.Start + (lora.PreambleUpchirps+lora.SyncSymbols+
		float64(lora.DownchirpQuarters)/4)*float64(pr.SymbolSamples())
	avail := int((float64(traceLen) - dataStart) / float64(pr.SymbolSamples()))
	if avail < 0 {
		avail = 0
	}
	if maxSyms == 0 || avail < maxSyms {
		maxSyms = avail
	}
	return p.calcs.Get(p.demod, antennas, pk.Start, pk.CFOCycles, maxSyms)
}

// decodeAssigned turns a packet's assigned peak bins into a payload. idx is
// the packet's detection index, which seeds its BEC sampling stream. It runs
// concurrently across packets: everything it touches is either per-packet
// (state, trace, rng), atomic (metrics), or a pure read (prefilled
// calculator, shared demodulator).
func (p *Pipeline) decodeAssigned(st *thrive.PacketState, pk detect.Packet, pass, idx int) (Decoded, bool) {
	t0 := p.met.now()
	defer p.met.observeDecode(t0)
	rng := p.packetRNG(pass, idx)
	pr := p.cfg.Params
	shifts := make([]int, len(st.Assigned))
	for i, b := range st.Assigned {
		if b >= 0 {
			shifts[i] = b
		}
	}
	if len(shifts) < lora.HeaderSymbols {
		st.Trace.Fail(obs.FailTooShort)
		return Decoded{}, false
	}

	var hdr lora.Header
	var payload []uint8
	rescued := 0
	// Failure-attribution evidence, accumulated across decode attempts.
	var becInfo bec.PacketResult
	attempts := 0
	decodeOnce := func(sh []int) (lora.Header, []uint8, int, bool) {
		attempts++
		if p.cfg.UseBEC {
			pd := bec.NewPacketDecoder(p.cfg.W, rng)
			if attempts == 1 {
				// Block outcomes are traced for the first attempt only;
				// list-decode retries would append duplicate rows.
				pd.Trace = st.Trace
			}
			res := pd.DecodePacket(pr, sh)
			becInfo.CRCTests += res.CRCTests
			becInfo.HeaderOK = becInfo.HeaderOK || res.HeaderOK
			becInfo.BlockFailed = becInfo.BlockFailed || res.BlockFailed
			becInfo.Exhausted = becInfo.Exhausted || res.Exhausted
			return res.Header, res.Payload, res.Rescued, res.OK
		}
		res := lora.DecodeDefault(pr, sh)
		return res.Header, res.Payload, 0, res.OK
	}
	var ok bool
	hdr, payload, rescued, ok = decodeOnce(shifts)
	if !ok && p.cfg.ListDecode {
		hdr, payload, rescued, ok = p.listDecode(st, shifts, decodeOnce)
	}
	if !ok {
		if pt := st.Trace; pt != nil {
			pt.CRCTests = becInfo.CRCTests
			pt.ListDecodeTried = attempts - 1
			pt.BECExhausted = becInfo.Exhausted
			headerOK := becInfo.HeaderOK
			if !p.cfg.UseBEC {
				// The default decoder keeps no evidence; re-derive header
				// validity from the cleaned header block.
				_, headerOK = lora.HeaderFromCleanBlock(
					lora.CleanBlock(lora.HeaderBlockFromShifts(pr, shifts), 4))
			}
			pt.Fail(attributeFailure(pt, headerOK, becInfo.BlockFailed, becInfo.Exhausted))
		}
		p.met.onDecodeFailed()
		return Decoded{}, false
	}

	// Mark decoded: re-encode to obtain the true on-air shifts for
	// masking in the second pass.
	pp := pr
	pp.CR = hdr.CR
	if trueShifts, _, err := lora.Encode(pp, payload); err == nil {
		st.Known = true
		st.KnownShifts = trueShifts
	}

	dataSyms := pp.PayloadSymbols(hdr.PayloadLen)
	dec := Decoded{
		Payload:     payload,
		Header:      hdr,
		Start:       pk.Start,
		CFOCycles:   pk.CFOCycles,
		SNRdB:       p.estimateSNR(st),
		Rescued:     rescued,
		Pass:        pass,
		DataSymbols: dataSyms,
		AirtimeSec:  (pp.PreambleSymbols() + float64(dataSyms)) * pp.SymbolDuration(),
		Trace:       st.Trace,
	}
	if pt := st.Trace; pt != nil {
		pt.OK = true
		pt.Rescued = rescued
		pt.CRCTests = becInfo.CRCTests
		pt.ListDecodeTried = attempts - 1
		pt.DataSymbols = dec.DataSymbols
		pt.AirtimeSec = dec.AirtimeSec
	}
	p.met.onDecoded(dec)
	return dec, true
}

// attributeFailure maps the evidence of a failed decode to the taxonomy.
// Definite causes come first (wrong sync, no valid header, exhausted CRC
// budget); the peak-misassignment heuristic — an outsized share of
// near-coin-flip assignments — is consulted only after them, so forced
// faults in tests attribute deterministically.
func attributeFailure(pt *obs.PacketTrace, headerOK, blockFailed, exhausted bool) obs.FailureReason {
	if pt.SyncScore < 0.5 {
		return obs.FailNoSync
	}
	if !headerOK {
		return obs.FailHeaderInvalid
	}
	if exhausted {
		return obs.FailBECBudget
	}
	if amb, assigned := pt.AmbiguousSymbols(obs.AmbiguityMargin); assigned > 0 && 4*amb >= assigned {
		return obs.FailPeakMisassign
	}
	if blockFailed {
		return obs.FailBECUnrepairable
	}
	return obs.FailCRC
}

// listDecode retries the packet with the runner-up peak substituted one
// symbol at a time, most-ambiguous symbols first (smallest height gap
// between the chosen peak and its alternate).
func (p *Pipeline) listDecode(st *thrive.PacketState, shifts []int,
	decodeOnce func([]int) (lora.Header, []uint8, int, bool)) (lora.Header, []uint8, int, bool) {

	budget := p.cfg.ListDecodeBudget
	if budget <= 0 {
		budget = 24
	}
	type cand struct {
		idx int
		gap float64
	}
	var cands []cand
	for i, alt := range st.Alternates {
		if i >= len(shifts) || alt < 0 || alt == shifts[i] {
			continue
		}
		// Ambiguity proxy: how close the alternate's signal level is to
		// the chosen peak's.
		chosen := st.Heights[i]
		altH := st.Calc.ValueAt(i, float64(alt))
		gap := chosen - altH
		cands = append(cands, cand{idx: i, gap: gap})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].gap < cands[b].gap })
	if len(cands) > budget {
		cands = cands[:budget]
	}
	trial := make([]int, len(shifts))
	for _, c := range cands {
		copy(trial, shifts)
		trial[c.idx] = st.Alternates[c.idx]
		if hdr, payload, rescued, ok := decodeOnce(trial); ok {
			return hdr, payload, rescued, true
		}
	}
	return lora.Header{}, nil, 0, false
}

// estimateSNR derives a per-packet SNR estimate from the preamble peak
// height against the noise floor read from the median signal-vector bin
// (exponential noise: median = ln2·mean).
func (p *Pipeline) estimateSNR(st *thrive.PacketState) float64 {
	pr := p.cfg.Params
	hs := st.Calc.PreamblePeakHeights()
	if len(hs) == 0 {
		return math.Inf(-1)
	}
	peak := stats.Median(hs)
	y := st.Calc.SigVec(-(lora.PreambleUpchirps + lora.SyncSymbols))
	floor := stats.Median(y) / math.Ln2
	if floor <= 0 {
		return math.Inf(1)
	}
	snr := peak / (floor * float64(pr.N()))
	return 10 * math.Log10(snr)
}
