package stagegraph

import (
	"encoding/json"
	"testing"
)

// tinyRecordingBytes hand-frames a minimal valid recording: header, a
// four-sample window, pass 1, and an empty detect boundary. Small enough to
// mutate quickly, structured enough that mutations reach every parse path.
func tinyRecordingBytes() []byte {
	buf := []byte(recMagic)
	hdr, err := json.Marshal(RecHeader{Version: recVersion, SF: 7, CR: 4, Bandwidth: 125e3, OSF: 2})
	if err != nil {
		panic(err)
	}
	buf = appendRecord(buf, recNameHeader, hdr)
	var samples payloadEnc
	samples.uv(1)
	samples.c128s([]complex128{1, 2i, 3, 4i})
	buf = appendRecord(buf, recNameSamples, samples.b)
	var pass payloadEnc
	pass.uv(1)
	buf = appendRecord(buf, recNamePass, pass.b)
	var det payloadEnc
	det.uv(0)
	buf = appendRecord(buf, StageDetect, det.b)
	return buf
}

// FuzzStageRecordDecode pins the recording codec's decode contract:
// arbitrary input — truncated, bit-flipped, torn, or wholly synthetic —
// must either parse cleanly or return an error. It must never panic, hang,
// or allocate unboundedly (slice lengths are validated against the
// remaining payload before any make).
func FuzzStageRecordDecode(f *testing.F) {
	tiny := tinyRecordingBytes()
	f.Add(tiny)
	f.Add(tiny[:len(tiny)-3])     // torn tail
	f.Add(tiny[:len(recMagic)+1]) // truncated header frame
	f.Add([]byte(recMagic))
	f.Add([]byte{})
	flipped := append([]byte(nil), tiny...)
	flipped[len(recMagic)+10] ^= 0x40
	f.Add(flipped)

	tr, _ := collisionTrace(f, 4242)
	_, real := recordDecode(f, tr, Config{Params: collisionParams(), UseBEC: true, Workers: 1, MaxPayloadLen: 12})
	// The full recording is sample-heavy; seed the frame stream up to and
	// including the first boundary records so mutations explore the
	// boundary decoders without dragging a 600 KB corpus entry around.
	if len(real) > 1<<15 {
		f.Add(real[:1<<15])
	} else {
		f.Add(real)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ParseRecording(data)
		if err != nil {
			return
		}
		// Parsed recordings must also survive the pure accessors.
		for _, rw := range rec.Windows {
			for _, rp := range rw.Passes {
				rp.Stages()
				if _, ok := rp.Boundaries[StageDetect]; ok {
					if _, err := rp.Detections(); err != nil {
						t.Fatalf("boundary validated at parse time but Detections failed: %v", err)
					}
				}
				if _, ok := rp.Boundaries[StageBEC]; ok {
					if _, err := rp.Outcomes(); err != nil {
						t.Fatalf("boundary validated at parse time but Outcomes failed: %v", err)
					}
				}
			}
		}
	})
}
