package stagegraph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Stage boundary names. They double as record names in recordings and as
// the -stage argument of cmd/tnbreplay.
const (
	StageDetect  = "detect"
	StageSigCalc = "sigcalc"
	StageThrive  = "thrive"
	StageBEC     = "bec"
)

// The recording container is a sequence of framed, CRC-protected records:
//
//	file   := magic record*
//	magic  := "TNBSGR1\n"
//	record := nameLen:uvarint name payloadLen:uvarint payload crc32:4B-LE
//
// The CRC (IEEE) covers name and payload. Records are self-describing: a
// reader skips names it does not know, so the format can grow new boundary
// records without a version bump; incompatible changes bump the version in
// the "header" record (a reader rejects versions above its own). Any
// truncation, bit flip, or torn tail fails decoding with an error — never a
// panic — which FuzzStageRecordDecode pins.
const recMagic = "TNBSGR1\n"

// recVersion is the recording format version written into, and required
// from, the "header" record.
const recVersion = 1

const (
	maxRecordName = 64
	// maxRecordPayload is a hard sanity bound; real payloads are the raw
	// sample block (16 B/sample) and the signal-vector arenas.
	maxRecordPayload = 1 << 30
)

// ErrBadMagic marks a file that is not a stage recording.
var ErrBadMagic = errors.New("stagegraph: not a stage recording (bad magic)")

var crcTable = crc32.IEEETable

// appendRecord frames one record onto dst.
func appendRecord(dst []byte, name string, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.Update(crc32.Checksum([]byte(name), crcTable), crcTable, payload)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// recordReader iterates the framed records of a recording held in memory.
type recordReader struct {
	b   []byte
	off int
}

func newRecordReader(data []byte) (*recordReader, error) {
	if len(data) < len(recMagic) || string(data[:len(recMagic)]) != recMagic {
		return nil, ErrBadMagic
	}
	return &recordReader{b: data, off: len(recMagic)}, nil
}

// next returns the next record, io.EOF at a clean end, or a descriptive
// error for a truncated or corrupted frame.
func (r *recordReader) next() (name string, payload []byte, err error) {
	if r.off == len(r.b) {
		return "", nil, io.EOF
	}
	rest := r.b[r.off:]
	nameLen, n := binary.Uvarint(rest)
	if n <= 0 || nameLen > maxRecordName {
		return "", nil, fmt.Errorf("stagegraph: record at offset %d: bad name length", r.off)
	}
	rest = rest[n:]
	if uint64(len(rest)) < nameLen {
		return "", nil, fmt.Errorf("stagegraph: record at offset %d: truncated name", r.off)
	}
	nm := string(rest[:nameLen])
	rest = rest[nameLen:]
	payLen, n := binary.Uvarint(rest)
	if n <= 0 || payLen > maxRecordPayload {
		return "", nil, fmt.Errorf("stagegraph: record %q: bad payload length", nm)
	}
	rest = rest[n:]
	if uint64(len(rest)) < payLen+4 {
		return "", nil, fmt.Errorf("stagegraph: record %q: truncated payload (torn tail?)", nm)
	}
	pay := rest[:payLen]
	want := binary.LittleEndian.Uint32(rest[payLen : payLen+4])
	got := crc32.Update(crc32.Checksum([]byte(nm), crcTable), crcTable, pay)
	if got != want {
		return "", nil, fmt.Errorf("stagegraph: record %q: CRC mismatch (corrupted)", nm)
	}
	r.off = len(r.b) - len(rest) + int(payLen) + 4
	return nm, pay, nil
}

// payloadEnc builds a boundary payload. All integers are varints, floats
// are raw IEEE-754 bits little-endian: the encoding is exact, so a replayed
// stage that byte-matches its recorded payload is bit-identical.
type payloadEnc struct{ b []byte }

func (e *payloadEnc) uv(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *payloadEnc) iv(v int64)  { e.b = binary.AppendVarint(e.b, v) }
func (e *payloadEnc) bool(v bool) { e.b = append(e.b, b2u8(v)) }
func (e *payloadEnc) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

func (e *payloadEnc) bytes(v []byte) {
	e.uv(uint64(len(v)))
	e.b = append(e.b, v...)
}

func (e *payloadEnc) f64s(v []float64) {
	e.uv(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

func (e *payloadEnc) ints(v []int) {
	e.uv(uint64(len(v)))
	for _, x := range v {
		e.iv(int64(x))
	}
}

func (e *payloadEnc) c128s(v []complex128) {
	e.uv(uint64(len(v)))
	for _, x := range v {
		e.f64(real(x))
		e.f64(imag(x))
	}
}

func b2u8(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// payloadDec decodes a boundary payload. The first failure sticks: every
// accessor after it returns a zero value, and the caller checks err once.
// Allocation sizes are validated against the remaining input before any
// make, so hostile length prefixes cannot balloon memory.
type payloadDec struct {
	b   []byte
	err error
}

func (d *payloadDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("stagegraph: payload: "+format, args...)
	}
}

func (d *payloadDec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *payloadDec) iv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *payloadDec) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail("truncated bool")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	if v > 1 {
		d.fail("bad bool byte %d", v)
		return false
	}
	return v == 1
}

func (d *payloadDec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// sliceLen validates a length prefix against the remaining bytes at
// elemSize bytes minimum per element.
func (d *payloadDec) sliceLen(elemSize int) int {
	n := d.uv()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)/elemSize) {
		d.fail("slice length %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

func (d *payloadDec) bytes() []byte {
	n := d.sliceLen(1)
	if d.err != nil {
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[:n])
	d.b = d.b[n:]
	return v
}

func (d *payloadDec) f64s() []float64 {
	n := d.sliceLen(8)
	if d.err != nil {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

func (d *payloadDec) ints() []int {
	n := d.sliceLen(1)
	if d.err != nil {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = int(d.iv())
	}
	return v
}

func (d *payloadDec) c128s() []complex128 {
	n := d.sliceLen(16)
	if d.err != nil {
		return nil
	}
	v := make([]complex128, n)
	for i := range v {
		re := d.f64()
		im := d.f64()
		v[i] = complex(re, im)
	}
	return v
}

func (d *payloadDec) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("stagegraph: payload: %d trailing bytes", len(d.b))
	}
	return nil
}
