// Package stagegraph hosts the TnB receiver pipeline (paper Fig. 3) as an
// explicit stage graph: packet detection, per-packet signal calculation,
// Thrive peak assignment, and BEC decoding are concrete stage nodes wired
// in sequence by a deterministic scheduler. The stage boundaries are typed
// (detect.Packet, peaks.Calculator vectors, thrive.Assignment,
// bec/lora decode outcomes), which is what enables per-stage sharding,
// future async window hand-off, and — via the recording codec in this
// package — replaying any single stage from a recorded boundary snapshot.
//
// Determinism: the scheduler runs the stages of one window strictly in
// graph order, so the stage boundaries are serialization points. Each stage
// may fan out internally over the internal/parallel pool, but every fan-out
// writes into index-addressed slots and merges serially, so the bytes
// crossing each boundary are identical for every worker count. A recording
// taken at width 1 therefore replays byte-identically at any width — the
// property the golden and differential tests in this package pin.
package stagegraph

import (
	"tnb/internal/detect"
	"tnb/internal/peaks"
	"tnb/internal/thrive"
)

// Window is one decode unit flowing through the stage graph: a block of
// samples plus the per-stage products accumulated as the stages run. The
// second decoding pass (paper §4) is a second Window over the same samples
// carrying the first pass's outcome as input.
type Window struct {
	// Antennas and TraceLen are the DetectStage input.
	Antennas [][]complex128
	TraceLen int
	// Pass is 1 or 2 (the masked re-decode of paper §4).
	Pass int
	// ObsWindow is the tracer's window ID, shared by both passes.
	ObsWindow uint64

	// Pkts is the DetectStage output: refined detections in start order.
	Pkts []detect.Packet

	// Calcs and States are the SigCalcStage output: one prefilled
	// signal-vector calculator and one assignment state per detection.
	Calcs  []*peaks.Calculator
	States []*thrive.PacketState

	// DecodedIdx and Prior are pass-2 inputs: which detections pass 1
	// decoded, and the pass-1 states (known shifts, observed heights).
	DecodedIdx map[int]bool
	Prior      []*thrive.PacketState

	// Results is the BECStage output, one slot per detection the stage
	// attempted (pass 2 skips already-decoded packets; RetryIdx maps its
	// result slots back to detection indices).
	Results  []Outcome
	RetryIdx []int
}

// Outcome is one packet's decode attempt crossing the BEC boundary.
type Outcome struct {
	Dec Decoded
	OK  bool
}

// Stage is one node of the receiver graph. Run mutates the window in
// place; the pipeline carries the shared machinery (detector, engine,
// calculator pool, metrics, tracer).
type Stage interface {
	// Name is the stage's boundary label in recordings and replay.
	Name() string
	Run(p *Pipeline, w *Window)
}

// Graph is an ordered stage sequence with a deterministic scheduler.
type Graph struct {
	stages []Stage
}

// NewGraph wires the given stages in order.
func NewGraph(stages ...Stage) *Graph { return &Graph{stages: stages} }

// Stages returns the graph's nodes in execution order.
func (g *Graph) Stages() []Stage { return g.stages }

// Run executes the stages of one window in order, snapshotting each stage's
// output boundary into the pipeline's recorder when one is attached. It
// stops early when a stage leaves the window empty (no detections), which
// matches the hard-wired pipeline's early return.
func (g *Graph) Run(p *Pipeline, w *Window) {
	for _, s := range g.stages {
		s.Run(p, w)
		if p.rec != nil {
			p.rec.snapshot(s.Name(), w)
		}
		if len(w.Pkts) == 0 {
			return
		}
	}
}
