package stagegraph

import (
	"bytes"
	"math/rand"
	"testing"

	"tnb/internal/lora"
	"tnb/internal/trace"
)

type txSpec struct {
	start, snr, cfo float64
	payload         []uint8
}

func makeTrace(t testing.TB, seed int64, p lora.Params, dur float64, specs []txSpec) (*trace.Trace, []trace.TxRecord) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(p, dur, 1, rng)
	for i, s := range specs {
		if err := b.AddPacket(i, i, s.payload, s.start, s.snr, s.cfo, nil); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func payloadOf(i int) []uint8 {
	p := make([]uint8, 14)
	for j := range p {
		p[j] = uint8(i*31 + j)
	}
	return p
}

func countDecoded(decoded []Decoded, recs []trace.TxRecord) int {
	n := 0
	for _, rec := range recs {
		for _, d := range decoded {
			if bytes.Equal(d.Payload, rec.Payload) {
				n++
				break
			}
		}
	}
	return n
}

// collisionConfig is the seeded 2-packet collision the recording tests
// share: short SF8/OSF2 trace, both packets decodable, with enough overlap
// to exercise the sibling cost and (via a forced pass-1 failure elsewhere)
// the masked second pass.
func collisionParams() lora.Params { return lora.MustParams(8, 4, 125e3, 2) }

func collisionTrace(t testing.TB, seed int64) (*trace.Trace, []trace.TxRecord) {
	t.Helper()
	p := collisionParams()
	sym := float64(p.SymbolSamples())
	return makeTrace(t, seed, p, 0.125, []txSpec{
		{start: 1300.4, snr: 12, cfo: 2100, payload: payloadOf(1)[:8]},
		{start: 1300.4 + 11.5*sym, snr: 7, cfo: -3300, payload: payloadOf(2)[:8]},
	})
}

// recordDecode runs one recorded decode and returns the decoded packets and
// the recording bytes.
func recordDecode(t testing.TB, tr *trace.Trace, cfg Config) ([]Decoded, []byte) {
	t.Helper()
	rec := NewRecorder()
	cfg.Recorder = rec
	p := New(cfg)
	decoded := p.Decode(tr)
	return decoded, rec.Bytes()
}
