package stagegraph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tnb/internal/lora"
)

// TestDifferentialReplayChain is the receiver-vs-replay property test: for
// ~50 random collision scenarios, run the full receiver with a recorder
// attached, then replay every stage of every pass from the recording — the
// real stage implementations over reconstructed boundary inputs — and
// require byte-identical boundaries. The replay runs at a different worker
// width than the recording, so the property covers width-invariance too.
// Low-SNR packets make some seeds fail pass 1 and exercise the masked
// second pass.
func TestDifferentialReplayChain(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	p := lora.MustParams(8, 4, 125e3, 2)
	sym := float64(p.SymbolSamples())
	widths := []int{1, 2, 4}

	pass2Seen := false
	results := make([]bool, seeds)
	for s := 0; s < seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed%02d", s), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(9000 + s)))
			n := 1 + rng.Intn(3)
			specs := make([]txSpec, n)
			start := 1500 + rng.Float64()*1500
			for i := range specs {
				specs[i] = txSpec{
					start:   start,
					snr:     3 + rng.Float64()*9,
					cfo:     -4000 + rng.Float64()*8000,
					payload: payloadOf(s*8 + i)[:6+rng.Intn(8)],
				}
				start += (6 + rng.Float64()*14) * sym
			}
			tr, _ := makeTrace(t, int64(9100+s), p, 0.2, specs)

			cfg := Config{
				Params:        p,
				UseBEC:        true,
				Workers:       widths[s%3],
				Seed:          int64(s),
				MaxPayloadLen: 16,
			}
			decoded, data := recordDecode(t, tr, cfg)
			rec, err := ParseRecording(data)
			if err != nil {
				t.Fatal(err)
			}
			diffs, err := rec.ReplayChain(widths[(s+1)%3])
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diffs {
				if !d.Match {
					t.Error(d)
				}
				if d.Pass == 2 {
					results[s] = true
				}
			}

			// Cross-check: the outcomes decoded back from the recording are
			// bit-exactly the packets the receiver returned (traces aside —
			// the recording deliberately excludes them).
			var fromRec []Decoded
			for _, rw := range rec.Windows {
				for _, rp := range rw.Passes {
					outs, err := rp.Outcomes()
					if err != nil {
						t.Fatal(err)
					}
					for _, o := range outs {
						if o.OK {
							fromRec = append(fromRec, o.Dec)
						}
					}
				}
			}
			plain := make([]Decoded, len(decoded))
			copy(plain, decoded)
			for i := range plain {
				plain[i].Trace = nil
			}
			if len(fromRec) != len(plain) {
				t.Fatalf("recording holds %d decoded packets, receiver returned %d", len(fromRec), len(plain))
			}
			for _, want := range plain {
				found := false
				for _, got := range fromRec {
					if reflect.DeepEqual(want, got) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("receiver packet (start %.1f, pass %d) not bit-identical in recording", want.Start, want.Pass)
				}
			}
		})
	}
	t.Cleanup(func() {
		for _, saw := range results {
			if saw {
				pass2Seen = true
			}
		}
		if !testing.Short() && !pass2Seen {
			t.Error("no seed exercised the second decoding pass; adjust the SNR range")
		}
	})
}
