package stagegraph

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestRecordingRoundtrip records a collision decode, parses the recording
// back, and checks the structure and the bec outcomes agree with what the
// receiver returned.
func TestRecordingRoundtrip(t *testing.T) {
	tr, recs := collisionTrace(t, 4242)
	cfg := Config{Params: collisionParams(), UseBEC: true, Workers: 1, Seed: 7}
	decoded, data := recordDecode(t, tr, cfg)
	if n := countDecoded(decoded, recs); n != 2 {
		t.Fatalf("decoded %d/2 packets", n)
	}

	rec, err := ParseRecording(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Header.SF != 8 || rec.Header.OSF != 2 || !rec.Header.UseBEC || rec.Header.Seed != 7 {
		t.Fatalf("header = %+v", rec.Header)
	}
	if len(rec.Windows) != 1 {
		t.Fatalf("windows = %d, want 1", len(rec.Windows))
	}
	rw := rec.Windows[0]
	if len(rw.Antennas) != 1 || len(rw.Antennas[0]) != tr.Len() {
		t.Fatalf("samples = %dx%d, want 1x%d", len(rw.Antennas), len(rw.Antennas[0]), tr.Len())
	}
	p1 := rw.Passes[0]
	if got := p1.Stages(); len(got) != 4 {
		t.Fatalf("pass-1 stages = %v", got)
	}
	dets, err := p1.Detections()
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2", len(dets))
	}
	outs, err := p1.Outcomes()
	if err != nil {
		t.Fatal(err)
	}
	nOK := 0
	for _, o := range outs {
		if o.OK {
			nOK++
			found := false
			for _, d := range decoded {
				if string(d.Payload) == string(o.Dec.Payload) && d.Start == o.Dec.Start {
					found = true
				}
			}
			if !found {
				t.Errorf("recorded outcome for det %d not among receiver results", o.DetIdx)
			}
		}
	}
	if nOK != len(decoded) {
		t.Fatalf("recorded %d decoded outcomes, receiver returned %d", nOK, len(decoded))
	}
}

// TestRecordingRejectsCorruption flips single bits and truncates the
// recording at sampled offsets: every such mutation must produce a parse
// error (the per-record CRC catches all single-bit flips), never a panic.
func TestRecordingRejectsCorruption(t *testing.T) {
	tr, _ := collisionTrace(t, 4242)
	_, data := recordDecode(t, tr, Config{Params: collisionParams(), UseBEC: true, Workers: 1})
	if _, err := ParseRecording(data); err != nil {
		t.Fatalf("clean recording failed to parse: %v", err)
	}

	stride := len(data)/512 + 1
	for off := 0; off < len(data); off += stride {
		mut := append([]byte(nil), data...)
		mut[off] ^= 1 << (off % 8)
		if _, err := ParseRecording(mut); err == nil {
			t.Fatalf("bit flip at offset %d parsed cleanly", off)
		}
	}
	for off := 0; off < len(data); off += stride {
		if _, err := ParseRecording(data[:off]); err == nil {
			t.Fatalf("truncation to %d bytes parsed cleanly", off)
		}
	}
	if _, err := ParseRecording(nil); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty input: err = %v, want ErrBadMagic", err)
	}
}

// TestReplayConcurrentUse pins the CAS guard: a Replay while the handle is
// held fails with ErrConcurrentUse, and hammering one handle from many
// goroutines yields only clean results or ErrConcurrentUse (no races; the
// -race CI run covers the data-race half of the claim).
func TestReplayConcurrentUse(t *testing.T) {
	tr, _ := collisionTrace(t, 4242)
	_, data := recordDecode(t, tr, Config{Params: collisionParams(), UseBEC: true, Workers: 1})
	rec, err := ParseRecording(data)
	if err != nil {
		t.Fatal(err)
	}
	opt := ReplayOptions{Stage: StageThrive, Workers: 1}

	// Deterministic half: a held handle refuses both entry points.
	rec.inUse.Store(true)
	if _, err := rec.Replay(opt); !errors.Is(err, ErrConcurrentUse) {
		t.Fatalf("Replay on held handle: err = %v, want ErrConcurrentUse", err)
	}
	if _, err := rec.ReplayChain(1); !errors.Is(err, ErrConcurrentUse) {
		t.Fatalf("ReplayChain on held handle: err = %v, want ErrConcurrentUse", err)
	}
	rec.inUse.Store(false)
	if _, err := rec.Replay(opt); err != nil {
		t.Fatalf("Replay after release: %v", err)
	}

	// Concurrent half: every call either succeeds or reports the guard.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = rec.Replay(opt)
		}(i)
	}
	wg.Wait()
	okCalls := 0
	for i, err := range errs {
		switch {
		case err == nil:
			okCalls++
		case errors.Is(err, ErrConcurrentUse):
		default:
			t.Errorf("call %d: unexpected error %v", i, err)
		}
	}
	if okCalls == 0 {
		t.Error("no concurrent Replay call succeeded")
	}
}

// TestReplayUnknownStage checks option validation errors name the problem.
func TestReplayUnknownStage(t *testing.T) {
	tr, _ := collisionTrace(t, 4242)
	_, data := recordDecode(t, tr, Config{Params: collisionParams(), UseBEC: true, Workers: 1})
	rec, err := ParseRecording(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Replay(ReplayOptions{Stage: "nonsense"}); err == nil || !strings.Contains(err.Error(), "no nonsense boundary") {
		t.Fatalf("unknown stage: err = %v", err)
	}
	if _, err := rec.Replay(ReplayOptions{Window: 3, Stage: StageDetect}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad window: err = %v", err)
	}
	if _, err := rec.Replay(ReplayOptions{Pass: 2, Stage: StageDetect}); err == nil {
		t.Fatal("pass-2 detect replay should fail")
	}
}

// TestNilPipelineMetricsHooks pins the nil-receiver safety of every stage
// hook (moved here from internal/core with the pipeline).
func TestNilPipelineMetricsHooks(t *testing.T) {
	var m *PipelineMetrics
	m.observeDetect(m.now())
	m.observeSigCalc(m.now())
	m.observeThrive(m.now())
	m.observeDecode(m.now())
	m.onDetected(1)
	m.onDecoded(Decoded{Pass: 2, Rescued: 3})
	m.onDecodeFailed()
	m.onPoolWorkers(4)
}
