package stagegraph

import (
	"sync"
	"time"

	"tnb/internal/metrics"
	"tnb/internal/parallel"
)

// PipelineMetrics instruments the receiver pipeline of Fig. 3. All methods
// are safe on a nil receiver, so an un-instrumented Receiver pays only a
// nil check per stage. Create with NewPipelineMetrics, or use
// DefaultPipelineMetrics for the process-wide registry.
type PipelineMetrics struct {
	// Stage latencies, one histogram per pipeline stage of Fig. 3.
	DetectSeconds  *metrics.Histogram // packet detection over the window
	SigCalcSeconds *metrics.Histogram // per-packet signal-vector calculator setup
	ThriveSeconds  *metrics.Histogram // peak assignment (both passes)
	DecodeSeconds  *metrics.Histogram // Hamming/BEC decoding + CRC (both passes)

	// Pipeline counters.
	PacketsDetected  *metrics.Counter // detections entering assignment
	PacketsDecoded   *metrics.Counter // CRC-valid packets out (both passes)
	SecondPasspkts   *metrics.Counter // subset of decoded won by the second pass
	DecodeFailed     *metrics.Counter // assigned packets that failed header/CRC
	RescuedCodewords *metrics.Counter // codewords fixed by BEC beyond Hamming
	Windows          *metrics.Counter // DecodeSamples invocations

	// Worker-pool health: the configured pool width, and per-stage speedup
	// (busy/wall, 1000 = serial) plus pool utilization (busy/(wall·workers),
	// 1000 = every worker busy the whole stage), from the latest fan-out.
	PoolWorkers        *metrics.Gauge
	ScanSpeedup        *metrics.Gauge // detect: per-window preamble scan
	RefineSpeedup      *metrics.Gauge // detect: candidate refinement
	SigCalcSpeedup     *metrics.Gauge // calculator prefill + state build
	DecodeSpeedup      *metrics.Gauge // BEC/Hamming decode fan-out
	ScanUtilization    *metrics.Gauge
	RefineUtilization  *metrics.Gauge
	SigCalcUtilization *metrics.Gauge
	DecodeUtilization  *metrics.Gauge
}

// NewPipelineMetrics registers the pipeline instruments on reg.
func NewPipelineMetrics(reg *metrics.Registry) *PipelineMetrics {
	stage := func(s string) *metrics.Histogram {
		return reg.Histogram(`tnb_stage_duration_seconds{stage="`+s+`"}`, metrics.DurationBuckets)
	}
	return &PipelineMetrics{
		DetectSeconds:    stage("detect"),
		SigCalcSeconds:   stage("sigcalc"),
		ThriveSeconds:    stage("thrive"),
		DecodeSeconds:    stage("decode"),
		PacketsDetected:  reg.Counter("tnb_packets_detected_total"),
		PacketsDecoded:   reg.Counter("tnb_packets_decoded_total"),
		SecondPasspkts:   reg.Counter("tnb_packets_second_pass_total"),
		DecodeFailed:     reg.Counter("tnb_packets_decode_failed_total"),
		RescuedCodewords: reg.Counter("tnb_bec_rescued_codewords_total"),
		Windows:          reg.Counter("tnb_receiver_windows_total"),

		PoolWorkers:        reg.Gauge("tnb_parallel_workers"),
		ScanSpeedup:        reg.Gauge(`tnb_parallel_speedup_permille{stage="scan"}`),
		ScanUtilization:    reg.Gauge(`tnb_parallel_utilization_permille{stage="scan"}`),
		RefineSpeedup:      reg.Gauge(`tnb_parallel_speedup_permille{stage="refine"}`),
		SigCalcSpeedup:     reg.Gauge(`tnb_parallel_speedup_permille{stage="sigcalc"}`),
		DecodeSpeedup:      reg.Gauge(`tnb_parallel_speedup_permille{stage="decode"}`),
		RefineUtilization:  reg.Gauge(`tnb_parallel_utilization_permille{stage="refine"}`),
		SigCalcUtilization: reg.Gauge(`tnb_parallel_utilization_permille{stage="sigcalc"}`),
		DecodeUtilization:  reg.Gauge(`tnb_parallel_utilization_permille{stage="decode"}`),
	}
}

var (
	defaultPipelineOnce sync.Once
	defaultPipeline     *PipelineMetrics
)

// DefaultPipelineMetrics returns the shared instruments on metrics.Default —
// what cmd/tnbgateway serves and cmd/tnbsim dumps.
func DefaultPipelineMetrics() *PipelineMetrics {
	defaultPipelineOnce.Do(func() { defaultPipeline = NewPipelineMetrics(metrics.Default) })
	return defaultPipeline
}

// now returns the stage-timer start, or the zero time when disabled so the
// matching stage() call is a no-op and no clock is read.
func (m *PipelineMetrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// The observe* methods record one stage latency each; all are no-ops on a
// nil receiver or zero start, so call sites need no branching.

func (m *PipelineMetrics) observeDetect(start time.Time) {
	if m != nil {
		m.DetectSeconds.ObserveSince(start)
	}
}

func (m *PipelineMetrics) observeSigCalc(start time.Time) {
	if m != nil {
		m.SigCalcSeconds.ObserveSince(start)
	}
}

func (m *PipelineMetrics) observeThrive(start time.Time) {
	if m != nil {
		m.ThriveSeconds.ObserveSince(start)
	}
}

func (m *PipelineMetrics) observeDecode(start time.Time) {
	if m != nil {
		m.DecodeSeconds.ObserveSince(start)
	}
}

// onDecoded accounts one pipeline outcome.
func (m *PipelineMetrics) onDecoded(d Decoded) {
	if m == nil {
		return
	}
	m.PacketsDecoded.Inc()
	if d.Pass == 2 {
		m.SecondPasspkts.Inc()
	}
	if d.Rescued > 0 {
		m.RescuedCodewords.Add(uint64(d.Rescued))
	}
}

func (m *PipelineMetrics) onDecodeFailed() {
	if m != nil {
		m.DecodeFailed.Inc()
	}
}

func (m *PipelineMetrics) onDetected(n int) {
	if m != nil {
		m.Windows.Inc()
		m.PacketsDetected.Add(uint64(n))
	}
}

// onPoolWorkers records the resolved worker-pool width.
func (m *PipelineMetrics) onPoolWorkers(n int) {
	if m != nil {
		m.PoolWorkers.Set(int64(n))
	}
}

// The onStageParallel methods record one fan-out's speedup and utilization.

func (m *PipelineMetrics) onScanParallel(st parallel.Stats) {
	if m != nil {
		m.ScanSpeedup.Set(st.SpeedupPermille())
		m.ScanUtilization.Set(st.UtilizationPermille())
	}
}

func (m *PipelineMetrics) onRefineParallel(st parallel.Stats) {
	if m != nil {
		m.RefineSpeedup.Set(st.SpeedupPermille())
		m.RefineUtilization.Set(st.UtilizationPermille())
	}
}

func (m *PipelineMetrics) onSigCalcParallel(st parallel.Stats) {
	if m != nil {
		m.SigCalcSpeedup.Set(st.SpeedupPermille())
		m.SigCalcUtilization.Set(st.UtilizationPermille())
	}
}

func (m *PipelineMetrics) onDecodeParallel(st parallel.Stats) {
	if m != nil {
		m.DecodeSpeedup.Set(st.SpeedupPermille())
		m.DecodeUtilization.Set(st.UtilizationPermille())
	}
}
