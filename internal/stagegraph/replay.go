package stagegraph

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"tnb/internal/detect"
	"tnb/internal/lora"
	"tnb/internal/thrive"
)

// ErrConcurrentUse reports a Replay or ReplayChain call while another is in
// flight on the same Recording. A Recording caches the replay pipeline and
// its arenas between calls (same convention as stream.Player and the
// netserver shards), so the handle is single-flight by design.
var ErrConcurrentUse = errors.New("stagegraph: recording handle already in use")

// stageOrder is the canonical boundary order within one pass.
var stageOrder = [...]string{StageDetect, StageSigCalc, StageThrive, StageBEC}

// RecordedPass holds the stage boundaries captured for one decoding pass of
// one window.
type RecordedPass struct {
	// Pass is 1 or 2.
	Pass int
	// Boundaries maps a stage name to its recorded output payload.
	Boundaries map[string][]byte
}

// Stages returns the pass's recorded boundaries in pipeline order.
func (rp *RecordedPass) Stages() []string {
	var out []string
	for _, s := range stageOrder {
		if _, ok := rp.Boundaries[s]; ok {
			out = append(out, s)
		}
	}
	return out
}

// Detections decodes the pass's detect boundary.
func (rp *RecordedPass) Detections() ([]detect.Packet, error) {
	payload, ok := rp.Boundaries[StageDetect]
	if !ok {
		return nil, fmt.Errorf("stagegraph: pass %d has no detect boundary", rp.Pass)
	}
	return decodeDetect(payload)
}

// Outcomes decodes the pass's bec boundary.
func (rp *RecordedPass) Outcomes() ([]BECOutcome, error) {
	payload, ok := rp.Boundaries[StageBEC]
	if !ok {
		return nil, fmt.Errorf("stagegraph: pass %d has no bec boundary", rp.Pass)
	}
	return decodeBEC(payload)
}

// RecordedWindow is one decode window of a recording: the raw samples plus
// the boundaries of each pass run over them.
type RecordedWindow struct {
	Antennas [][]complex128
	Passes   []*RecordedPass
}

// pass returns the recorded pass with the given number, or nil.
func (rw *RecordedWindow) pass(n int) *RecordedPass {
	for _, rp := range rw.Passes {
		if rp.Pass == n {
			return rp
		}
	}
	return nil
}

// Recording is a parsed stage recording: a replay handle over the windows
// and boundaries a Recorder captured. It reuses one pipeline (engine,
// calculator arenas) across Replay calls and is therefore not safe for
// concurrent use; concurrent calls fail with ErrConcurrentUse.
type Recording struct {
	Header  RecHeader
	Windows []*RecordedWindow

	inUse       atomic.Bool
	demod       *lora.Demodulator
	pipe        *Pipeline
	pipeWorkers int
}

// ParseRecording parses and validates a recording. Every known record type
// is decoded (boundary payloads included), so corruption anywhere in the
// file surfaces here rather than mid-replay; unknown record names are
// skipped for forward compatibility. It never panics on hostile input —
// the contract FuzzStageRecordDecode pins.
func ParseRecording(data []byte) (*Recording, error) {
	rr, err := newRecordReader(data)
	if err != nil {
		return nil, err
	}
	name, payload, err := rr.next()
	if err != nil {
		return nil, fmt.Errorf("stagegraph: reading header record: %w", err)
	}
	if name != recNameHeader {
		return nil, fmt.Errorf("stagegraph: first record is %q, want %q", name, recNameHeader)
	}
	rec := &Recording{}
	if err := json.Unmarshal(payload, &rec.Header); err != nil {
		return nil, fmt.Errorf("stagegraph: header record: %w", err)
	}
	if rec.Header.Version < 1 || rec.Header.Version > recVersion {
		return nil, fmt.Errorf("stagegraph: recording version %d not supported (max %d)", rec.Header.Version, recVersion)
	}
	if _, err := lora.NewParams(rec.Header.SF, rec.Header.CR, rec.Header.Bandwidth, rec.Header.OSF); err != nil {
		return nil, fmt.Errorf("stagegraph: header record: %w", err)
	}

	var curWin *RecordedWindow
	var curPass *RecordedPass
	for {
		name, payload, err := rr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch name {
		case recNameHeader:
			return nil, errors.New("stagegraph: duplicate header record")
		case recNameSamples:
			ants, err := decodeSamples(payload)
			if err != nil {
				return nil, err
			}
			curWin = &RecordedWindow{Antennas: ants}
			curPass = nil
			rec.Windows = append(rec.Windows, curWin)
		case recNamePass:
			d := payloadDec{b: payload}
			pass := int(d.uv())
			if err := d.finish(); err != nil {
				return nil, fmt.Errorf("pass record: %w", err)
			}
			if pass != 1 && pass != 2 {
				return nil, fmt.Errorf("stagegraph: pass record with pass %d", pass)
			}
			if curWin == nil {
				return nil, errors.New("stagegraph: pass record before any samples record")
			}
			if curWin.pass(pass) != nil {
				return nil, fmt.Errorf("stagegraph: duplicate pass %d in window %d", pass, len(rec.Windows)-1)
			}
			curPass = &RecordedPass{Pass: pass, Boundaries: map[string][]byte{}}
			curWin.Passes = append(curWin.Passes, curPass)
		case StageDetect, StageSigCalc, StageThrive, StageBEC:
			if curPass == nil {
				return nil, fmt.Errorf("stagegraph: %s boundary before any pass record", name)
			}
			if _, dup := curPass.Boundaries[name]; dup {
				return nil, fmt.Errorf("stagegraph: duplicate %s boundary in pass %d", name, curPass.Pass)
			}
			if err := validateBoundary(name, payload); err != nil {
				return nil, err
			}
			curPass.Boundaries[name] = payload
		default:
			// Unknown record from a newer writer: skip.
		}
	}
	return rec, nil
}

// validateBoundary decodes a boundary payload purely (no calculator or
// pipeline construction) to reject corruption at parse time.
func validateBoundary(name string, payload []byte) error {
	var err error
	switch name {
	case StageDetect:
		_, err = decodeDetect(payload)
	case StageSigCalc:
		_, err = parseSigCalc(payload)
	case StageThrive:
		_, err = parseThrive(payload)
	case StageBEC:
		_, err = decodeBEC(payload)
	}
	return err
}

// LoadRecording reads and parses a recording file.
func LoadRecording(path string) (*Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseRecording(data)
}

// ReplayOptions selects what to replay.
type ReplayOptions struct {
	// Window indexes Recording.Windows.
	Window int
	// Pass is the decoding pass (1 or 2); 0 means 1.
	Pass int
	// Stage is the boundary to re-run (StageDetect..StageBEC).
	Stage string
	// Workers is the pipeline width for the replayed stage; 0 uses
	// GOMAXPROCS. Boundaries are worker-count-invariant, so any value
	// must produce the same diff.
	Workers int
}

// StageDiff is the outcome of replaying one stage against its recording.
type StageDiff struct {
	Window, Pass int
	Stage        string
	// Match reports whether the replayed boundary is byte-identical to
	// the recorded one.
	Match bool
	// Recorded and Replayed are the two boundary payloads.
	Recorded, Replayed []byte
}

// String renders the diff verdict for logs and the tnbreplay CLI.
func (d *StageDiff) String() string {
	if d.Match {
		return fmt.Sprintf("window %d pass %d %s: match (%d bytes)", d.Window, d.Pass, d.Stage, len(d.Recorded))
	}
	off := -1
	n := min(len(d.Recorded), len(d.Replayed))
	for i := 0; i < n; i++ {
		if d.Recorded[i] != d.Replayed[i] {
			off = i
			break
		}
	}
	if off < 0 {
		off = n
	}
	return fmt.Sprintf("window %d pass %d %s: MISMATCH (recorded %d bytes, replayed %d bytes, first difference at byte %d)",
		d.Window, d.Pass, d.Stage, len(d.Recorded), len(d.Replayed), off)
}

// Replay re-runs one recorded stage — the real stage implementation over
// the boundary inputs reconstructed from the recording — and diffs its
// output against the recorded boundary. A clean refactor of a stage leaves
// every diff empty; a divergent end-to-end golden bisects to the first
// stage whose diff is not.
func (rec *Recording) Replay(opt ReplayOptions) (*StageDiff, error) {
	if !rec.inUse.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer rec.inUse.Store(false)
	return rec.replayLocked(opt)
}

// ReplayChain replays every recorded boundary of every window and pass in
// pipeline order — the recording-wide differential check.
func (rec *Recording) ReplayChain(workers int) ([]*StageDiff, error) {
	if !rec.inUse.CompareAndSwap(false, true) {
		return nil, ErrConcurrentUse
	}
	defer rec.inUse.Store(false)
	var diffs []*StageDiff
	for wi, rw := range rec.Windows {
		for _, rp := range rw.Passes {
			for _, stage := range rp.Stages() {
				d, err := rec.replayLocked(ReplayOptions{Window: wi, Pass: rp.Pass, Stage: stage, Workers: workers})
				if err != nil {
					return diffs, err
				}
				diffs = append(diffs, d)
			}
		}
	}
	return diffs, nil
}

func (rec *Recording) replayLocked(opt ReplayOptions) (*StageDiff, error) {
	if opt.Pass == 0 {
		opt.Pass = 1
	}
	if opt.Window < 0 || opt.Window >= len(rec.Windows) {
		return nil, fmt.Errorf("stagegraph: window %d out of range [0,%d)", opt.Window, len(rec.Windows))
	}
	rw := rec.Windows[opt.Window]
	rp := rw.pass(opt.Pass)
	if rp == nil {
		return nil, fmt.Errorf("stagegraph: window %d has no pass %d", opt.Window, opt.Pass)
	}
	recorded, ok := rp.Boundaries[opt.Stage]
	if !ok {
		return nil, fmt.Errorf("stagegraph: window %d pass %d has no %s boundary (stages: %v)", opt.Window, opt.Pass, opt.Stage, rp.Stages())
	}

	p := rec.pipeline(opt.Workers)
	w, err := rec.windowBefore(rw, rp, opt)
	if err != nil {
		return nil, err
	}
	if opt.Stage == StageSigCalc {
		// A pass-1 sigcalc run rewinds the calculator pool itself; rewind
		// here too for pass 2, where each replay draws fresh calculators
		// that nothing retains between calls.
		p.calcs.Rewind()
	}
	stageFor(opt.Stage).Run(p, w)
	replayed := encodeStage(opt.Stage, w)
	return &StageDiff{
		Window:   opt.Window,
		Pass:     opt.Pass,
		Stage:    opt.Stage,
		Match:    bytes.Equal(recorded, replayed),
		Recorded: recorded,
		Replayed: replayed,
	}, nil
}

// pipeline returns the cached replay pipeline, rebuilt when the requested
// worker width changes.
func (rec *Recording) pipeline(workers int) *Pipeline {
	if rec.pipe == nil || rec.pipeWorkers != workers {
		cfg := rec.Header.Config()
		cfg.Workers = workers
		rec.pipe = New(cfg)
		rec.pipeWorkers = workers
	}
	return rec.pipe
}

func (rec *Recording) demodulator() *lora.Demodulator {
	if rec.demod == nil {
		rec.demod = lora.NewDemodulator(rec.Header.Config().Params)
	}
	return rec.demod
}

func stageFor(name string) Stage {
	switch name {
	case StageDetect:
		return DetectStage{}
	case StageSigCalc:
		return SigCalcStage{}
	case StageThrive:
		return ThriveStage{}
	case StageBEC:
		return BECStage{}
	}
	panic("stagegraph: unknown stage " + name)
}

func encodeStage(name string, w *Window) []byte {
	switch name {
	case StageDetect:
		return encodeDetect(w)
	case StageSigCalc:
		return encodeSigCalc(w)
	case StageThrive:
		return encodeThrive(w)
	case StageBEC:
		return encodeBEC(w)
	}
	panic("stagegraph: unknown stage " + name)
}

// windowBefore reconstructs the window exactly as it stood when the target
// stage ran: every upstream boundary of the same pass is loaded from the
// recording, and for pass 2 the pass-1 thrive and bec boundaries supply the
// prior states and decoded set the real pipeline would have carried over.
func (rec *Recording) windowBefore(rw *RecordedWindow, rp *RecordedPass, opt ReplayOptions) (*Window, error) {
	if opt.Stage == StageDetect {
		if opt.Pass != 1 {
			return nil, errors.New("stagegraph: detect only runs in pass 1")
		}
		return &Window{Antennas: rw.Antennas, Pass: 1}, nil
	}

	pass1 := rw.pass(1)
	if pass1 == nil {
		return nil, fmt.Errorf("stagegraph: window has no pass 1 (needed for detections)")
	}
	pkts, err := pass1.Detections()
	if err != nil {
		return nil, err
	}
	w := &Window{
		Antennas: rw.Antennas,
		TraceLen: len(rw.Antennas[0]),
		Pass:     opt.Pass,
		Pkts:     pkts,
	}
	if opt.Pass == 2 {
		w.DecodedIdx, w.Prior, err = priorFromPass1(pass1, len(pkts))
		if err != nil {
			return nil, err
		}
	}
	if opt.Stage == StageSigCalc {
		return w, nil
	}

	sigPkts, err := parseSigCalc(rp.Boundaries[StageSigCalc])
	if err != nil {
		return nil, err
	}
	sb, err := buildSigCalc(sigPkts, rec.demodulator())
	if err != nil {
		return nil, err
	}
	if len(sb.states) != len(pkts) {
		return nil, fmt.Errorf("stagegraph: sigcalc boundary has %d packets, detect boundary %d", len(sb.states), len(pkts))
	}
	w.Calcs, w.States = sb.calcs, sb.states
	if opt.Stage == StageThrive {
		return w, nil
	}

	assigns, err := parseThrive(rp.Boundaries[StageThrive])
	if err != nil {
		return nil, err
	}
	if err := applyThrive(assigns, w.States); err != nil {
		return nil, err
	}
	return w, nil
}

// priorFromPass1 rebuilds the pass-2 carry-over from the pass-1 thrive and
// bec boundaries: which detections decoded, their re-encoded true shifts,
// and the peak heights every failed packet observed.
func priorFromPass1(pass1 *RecordedPass, npkts int) (map[int]bool, []*thrive.PacketState, error) {
	tPayload, ok := pass1.Boundaries[StageThrive]
	if !ok {
		return nil, nil, errors.New("stagegraph: pass 1 has no thrive boundary (needed for pass-2 priors)")
	}
	assigns, err := parseThrive(tPayload)
	if err != nil {
		return nil, nil, err
	}
	outs, err := pass1.Outcomes()
	if err != nil {
		return nil, nil, err
	}
	if len(assigns) != npkts {
		return nil, nil, fmt.Errorf("stagegraph: pass-1 thrive boundary has %d packets, detect boundary %d", len(assigns), npkts)
	}
	decoded := map[int]bool{}
	prior := make([]*thrive.PacketState, npkts)
	for i, a := range assigns {
		prior[i] = &thrive.PacketState{ID: i, Heights: a.Heights}
	}
	for _, o := range outs {
		if o.DetIdx < 0 || o.DetIdx >= npkts {
			return nil, nil, fmt.Errorf("stagegraph: pass-1 bec boundary indexes detection %d of %d", o.DetIdx, npkts)
		}
		if o.OK {
			decoded[o.DetIdx] = true
		}
		prior[o.DetIdx].Known = o.Known
		if len(o.KnownShifts) > 0 {
			prior[o.DetIdx].KnownShifts = o.KnownShifts
		}
	}
	return decoded, prior, nil
}
