package stagegraph

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden stage recording")

const goldenRecording = "testdata/golden_2pkt.tnbsgr"

// goldenConfig is the exact pipeline configuration behind the committed
// golden: a seeded 2-packet collision recorded at worker width 1.
func goldenConfig() Config {
	// MaxPayloadLen 12 keeps the provisional calculators (and with them the
	// committed sigcalc boundary) small; the golden payloads are 8 bytes.
	return Config{Params: collisionParams(), UseBEC: true, Workers: 1, Seed: 7, MaxPayloadLen: 12}
}

func goldenBytes(t *testing.T) []byte {
	t.Helper()
	tr, recs := collisionTrace(t, 4242)
	decoded, data := recordDecode(t, tr, goldenConfig())
	if n := countDecoded(decoded, recs); n != 2 {
		t.Fatalf("golden trace decoded %d/2 packets", n)
	}
	return data
}

// TestGoldenRecordingUpToDate regenerates the recording from its seed and
// compares it byte-for-byte with the committed file, so any recorder or
// pipeline drift shows up as a golden diff. Run with -update to accept an
// intentional change.
func TestGoldenRecordingUpToDate(t *testing.T) {
	data := goldenBytes(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenRecording), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenRecording, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenRecording, len(data))
		return
	}
	want, err := os.ReadFile(goldenRecording)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("recording differs from %s: regenerated %d bytes, committed %d bytes (run with -update to accept)",
			goldenRecording, len(data), len(want))
	}
}

// TestGoldenRecordingWorkerInvariant records the same trace at widths 1, 2
// and 4: the stage boundaries are serialization points, so the recordings
// must be byte-identical.
func TestGoldenRecordingWorkerInvariant(t *testing.T) {
	tr, _ := collisionTrace(t, 4242)
	var ref []byte
	for _, workers := range []int{1, 2, 4} {
		cfg := goldenConfig()
		cfg.Workers = workers
		_, data := recordDecode(t, tr, cfg)
		if ref == nil {
			ref = data
			continue
		}
		if !bytes.Equal(ref, data) {
			t.Fatalf("recording at workers=%d differs from workers=1", workers)
		}
	}
}

// TestGoldenStageReplay replays every boundary of the committed golden at
// worker widths 1, 2 and 4; each stage must reproduce its recorded output
// byte-for-byte. This is the per-stage golden regression: a change that
// shifts any stage's numerics fails here, naming the stage.
func TestGoldenStageReplay(t *testing.T) {
	raw, err := os.ReadFile(goldenRecording)
	if err != nil {
		t.Fatalf("%v (run TestGoldenRecordingUpToDate with -update to create)", err)
	}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			rec, err := ParseRecording(raw)
			if err != nil {
				t.Fatal(err)
			}
			for wi, rw := range rec.Windows {
				for _, rp := range rw.Passes {
					for _, stage := range rp.Stages() {
						t.Run(fmt.Sprintf("pass%d_%s", rp.Pass, stage), func(t *testing.T) {
							d, err := rec.Replay(ReplayOptions{Window: wi, Pass: rp.Pass, Stage: stage, Workers: workers})
							if err != nil {
								t.Fatal(err)
							}
							if !d.Match {
								t.Error(d)
							}
						})
					}
				}
			}
		})
	}
}
