package stagegraph

import (
	"encoding/json"
	"fmt"
	"os"

	"tnb/internal/detect"
	"tnb/internal/lora"
	"tnb/internal/peaks"
	"tnb/internal/thrive"
)

// Auxiliary (non-boundary) record names. Boundary records use the Stage*
// constants in record.go.
const (
	recNameHeader  = "header"
	recNameSamples = "samples"
	recNamePass    = "pass"
)

// RecHeader is the recording's self-description: the format version plus
// every Config knob that shapes stage outputs, so a replay pipeline can be
// reconstructed from the recording alone. It is stored as JSON — the one
// human-greppable record in an otherwise binary file.
type RecHeader struct {
	Version int

	SF        int
	CR        int
	Bandwidth float64
	OSF       int
	LDRO      bool

	Policy            int
	UseBEC            bool
	DisableSecondPass bool
	W                 int
	MaxPayloadLen     int
	Omega             float64
	ListDecode        bool
	ListDecodeBudget  int
	Seed              int64
}

// headerFromConfig captures the replay-relevant subset of cfg.
func headerFromConfig(cfg *Config) RecHeader {
	return RecHeader{
		Version:           recVersion,
		SF:                cfg.Params.SF,
		CR:                cfg.Params.CR,
		Bandwidth:         cfg.Params.Bandwidth,
		OSF:               cfg.Params.OSF,
		LDRO:              cfg.Params.LDRO,
		Policy:            int(cfg.Policy),
		UseBEC:            cfg.UseBEC,
		DisableSecondPass: cfg.DisableSecondPass,
		W:                 cfg.W,
		MaxPayloadLen:     cfg.MaxPayloadLen,
		Omega:             cfg.Omega,
		ListDecode:        cfg.ListDecode,
		ListDecodeBudget:  cfg.ListDecodeBudget,
		Seed:              cfg.Seed,
	}
}

// Config rebuilds the pipeline configuration the recording was made with.
// Workers is left zero — replay chooses its own width, which must not (and,
// per the determinism tests, does not) change any boundary.
func (h *RecHeader) Config() Config {
	return Config{
		Params:            lora.MustParams(h.SF, h.CR, h.Bandwidth, h.OSF),
		Policy:            thrive.Policy(h.Policy),
		UseBEC:            h.UseBEC,
		DisableSecondPass: h.DisableSecondPass,
		W:                 h.W,
		MaxPayloadLen:     h.MaxPayloadLen,
		Omega:             h.Omega,
		ListDecode:        h.ListDecode,
		ListDecodeBudget:  h.ListDecodeBudget,
		Seed:              h.Seed,
	}
}

// Recorder accumulates a stage recording in memory. Attach one via
// Config.Recorder; the pipeline then snapshots every stage boundary it
// crosses (both decoding passes, every window of the Recorder's lifetime).
// A Recorder is not safe for concurrent use, matching the pipeline it
// records.
type Recorder struct {
	buf []byte
	// cur tracks the window currently being recorded so snapshot can emit
	// the samples and pass markers exactly once per graph run.
	cur *Window
}

// NewRecorder returns an empty recorder ready to attach to a Config.
func NewRecorder() *Recorder { return &Recorder{} }

// init writes the magic and header record. Called once by New.
func (r *Recorder) init(cfg *Config) {
	r.buf = append(r.buf, recMagic...)
	hdr, err := json.Marshal(headerFromConfig(cfg))
	if err != nil {
		// RecHeader is a plain struct of scalars; Marshal cannot fail.
		panic("stagegraph: encoding recording header: " + err.Error())
	}
	r.buf = appendRecord(r.buf, recNameHeader, hdr)
}

// Bytes returns the recording so far. The slice aliases the recorder's
// buffer; callers that keep recording afterwards should copy it.
func (r *Recorder) Bytes() []byte { return r.buf }

// WriteFile writes the recording to path.
func (r *Recorder) WriteFile(path string) error {
	return os.WriteFile(path, r.buf, 0o644)
}

// snapshot records one stage's output boundary. The first boundary of a
// pass-1 window is preceded by the window's raw samples; the first boundary
// of any pass by a pass marker.
func (r *Recorder) snapshot(name string, w *Window) {
	if w != r.cur {
		r.cur = w
		if w.Pass == 1 {
			var e payloadEnc
			e.uv(uint64(len(w.Antennas)))
			for _, ant := range w.Antennas {
				e.c128s(ant)
			}
			r.buf = appendRecord(r.buf, recNameSamples, e.b)
		}
		var e payloadEnc
		e.uv(uint64(w.Pass))
		r.buf = appendRecord(r.buf, recNamePass, e.b)
	}
	var payload []byte
	switch name {
	case StageDetect:
		payload = encodeDetect(w)
	case StageSigCalc:
		payload = encodeSigCalc(w)
	case StageThrive:
		payload = encodeThrive(w)
	case StageBEC:
		payload = encodeBEC(w)
	default:
		panic("stagegraph: unknown stage boundary " + name)
	}
	r.buf = appendRecord(r.buf, name, payload)
}

// encodeDetect serializes the detect boundary: the refined detections.
func encodeDetect(w *Window) []byte {
	var e payloadEnc
	e.uv(uint64(len(w.Pkts)))
	for _, pk := range w.Pkts {
		e.f64(pk.Start)
		e.f64(pk.CFOCycles)
		e.f64(pk.Quality)
	}
	return e.b
}

func decodeDetect(payload []byte) ([]detect.Packet, error) {
	d := payloadDec{b: payload}
	n := d.sliceLen(24)
	pkts := make([]detect.Packet, 0, n)
	for i := 0; i < n; i++ {
		pkts = append(pkts, detect.Packet{Start: d.f64(), CFOCycles: d.f64(), Quality: d.f64()})
	}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("detect boundary: %w", err)
	}
	return pkts, nil
}

// encodeSigCalc serializes the sigcalc boundary: per packet, the calculator
// geometry, the pass-2 carry-over (known shifts / prior heights), and every
// signal vector the stage materialized. Raw float64 bits keep it lossless:
// a replayed sigcalc stage matches byte-for-byte iff its vectors are
// bit-identical.
func encodeSigCalc(w *Window) []byte {
	var e payloadEnc
	e.uv(uint64(len(w.States)))
	for i, st := range w.States {
		c := w.Calcs[i]
		e.f64(c.Start())
		e.f64(c.CFOCycles())
		e.iv(int64(c.NumData()))
		e.bool(st.Known)
		e.ints(st.KnownShifts)
		e.bool(st.PriorHeights != nil)
		if st.PriorHeights != nil {
			e.f64s(st.PriorHeights)
		}
		lo, hi := peaks.SymbolRange(c.NumData())
		var present []int
		for idx := lo; idx < hi; idx++ {
			if _, ok := c.CachedVec(idx); ok {
				present = append(present, idx)
			}
		}
		e.uv(uint64(len(present)))
		for _, idx := range present {
			y, _ := c.CachedVec(idx)
			e.iv(int64(idx))
			e.f64s(y)
		}
	}
	return e.b
}

// maxReplayDataSymbols bounds a parsed packet's claimed data-symbol count.
// Real packets top out in the hundreds (255-byte payload ceiling); the
// bound keeps a corrupted count from driving a huge arena allocation when
// the replay calculator is built.
const maxReplayDataSymbols = 4096

// sigCalcPacket is one parsed sigcalc boundary entry. Parsing is pure and
// allocation-bounded by the payload size (fuzz-safe); building replay
// calculators from it is a separate step that needs a demodulator.
type sigCalcPacket struct {
	start, cfo  float64
	numData     int
	known       bool
	knownShifts []int
	prior       []float64
	hasPrior    bool
	vecs        map[int][]float64
}

func parseSigCalc(payload []byte) ([]sigCalcPacket, error) {
	d := payloadDec{b: payload}
	n := int(d.uv())
	var out []sigCalcPacket
	for i := 0; i < n && d.err == nil; i++ {
		p := sigCalcPacket{
			start:   d.f64(),
			cfo:     d.f64(),
			numData: int(d.iv()),
		}
		p.known = d.bool()
		p.knownShifts = d.ints()
		p.hasPrior = d.bool()
		if p.hasPrior {
			p.prior = d.f64s()
		}
		if d.err != nil {
			break
		}
		if p.numData < 0 || p.numData > maxReplayDataSymbols {
			d.fail("bad data symbol count %d", p.numData)
			break
		}
		nvec := int(d.uv())
		p.vecs = make(map[int][]float64, nvec)
		lo, hi := peaks.SymbolRange(p.numData)
		for v := 0; v < nvec && d.err == nil; v++ {
			idx := int(d.iv())
			y := d.f64s()
			if d.err != nil {
				break
			}
			if idx < lo || idx >= hi {
				d.fail("vector index %d outside [%d,%d)", idx, lo, hi)
				break
			}
			p.vecs[idx] = y
		}
		out = append(out, p)
	}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("sigcalc boundary: %w", err)
	}
	return out, nil
}

// sigCalcBoundary is the rebuilt sigcalc boundary of one pass: replay
// calculators over the recorded vectors plus the packet states as the
// thrive stage expects them.
type sigCalcBoundary struct {
	calcs  []*peaks.Calculator
	states []*thrive.PacketState
}

func buildSigCalc(pkts []sigCalcPacket, demod *lora.Demodulator) (*sigCalcBoundary, error) {
	n := demod.Params().N()
	b := &sigCalcBoundary{}
	for i, p := range pkts {
		for idx, y := range p.vecs {
			if len(y) != n {
				return nil, fmt.Errorf("sigcalc boundary: packet %d symbol %d has %d bins, want %d", i, idx, len(y), n)
			}
		}
		// Downstream stages read every preamble vector (history bootstrap,
		// SNR) and, for unknown packets, every data vector. Missing ones
		// would panic the replay calculator, so reject them here — a valid
		// recorder always captures them.
		lo, hi := peaks.SymbolRange(p.numData)
		if p.known {
			hi = 0
		}
		for idx := lo; idx < hi; idx++ {
			if _, ok := p.vecs[idx]; !ok {
				return nil, fmt.Errorf("sigcalc boundary: packet %d is missing the vector of symbol %d", i, idx)
			}
		}
		calc := peaks.NewReplayCalculator(demod, p.start, p.cfo, p.numData, p.vecs)
		st := thrive.NewPacketState(i, calc)
		st.Known = p.known
		if len(p.knownShifts) > 0 {
			st.KnownShifts = p.knownShifts
		}
		if p.hasPrior {
			st.PriorHeights = p.prior
			if st.PriorHeights == nil {
				st.PriorHeights = []float64{}
			}
		}
		b.calcs = append(b.calcs, calc)
		b.states = append(b.states, st)
	}
	return b, nil
}

// encodeThrive serializes the thrive boundary: each packet's assignment
// (chosen bin, height, runner-up per symbol).
func encodeThrive(w *Window) []byte {
	var e payloadEnc
	e.uv(uint64(len(w.States)))
	for _, st := range w.States {
		a := st.Assignment()
		e.ints(a.Assigned)
		e.f64s(a.Heights)
		e.ints(a.Alternates)
	}
	return e.b
}

// parseThrive decodes a thrive boundary into per-packet assignments.
func parseThrive(payload []byte) ([]thrive.Assignment, error) {
	d := payloadDec{b: payload}
	n := int(d.uv())
	var out []thrive.Assignment
	for i := 0; i < n && d.err == nil; i++ {
		a := thrive.Assignment{
			Assigned:   d.ints(),
			Heights:    d.f64s(),
			Alternates: d.ints(),
		}
		out = append(out, a)
	}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("thrive boundary: %w", err)
	}
	return out, nil
}

// applyThrive copies a recorded thrive boundary onto states rebuilt from
// the matching sigcalc boundary.
func applyThrive(assigns []thrive.Assignment, states []*thrive.PacketState) error {
	if len(assigns) != len(states) {
		return fmt.Errorf("thrive boundary: %d packets, sigcalc boundary has %d", len(assigns), len(states))
	}
	for i, a := range assigns {
		nd := states[i].Calc.NumData()
		if len(a.Assigned) != nd || len(a.Heights) != nd || len(a.Alternates) != nd {
			return fmt.Errorf("thrive boundary: packet %d has %d/%d/%d entries, want %d data symbols",
				i, len(a.Assigned), len(a.Heights), len(a.Alternates), nd)
		}
		copy(states[i].Assigned, a.Assigned)
		copy(states[i].Heights, a.Heights)
		copy(states[i].Alternates, a.Alternates)
	}
	return nil
}

// encodeBEC serializes the bec boundary: per attempted packet, the decode
// outcome plus the re-encoded true shifts that feed pass-2 masking. The
// per-packet obs trace is deliberately excluded — replay runs untraced and
// must still match byte-for-byte.
func encodeBEC(w *Window) []byte {
	var e payloadEnc
	e.uv(uint64(len(w.RetryIdx)))
	for j, i := range w.RetryIdx {
		res := w.Results[j]
		st := w.States[i]
		e.iv(int64(i))
		e.bool(res.OK)
		e.bool(st.Known)
		e.ints(st.KnownShifts)
		if !res.OK {
			continue
		}
		dec := res.Dec
		e.bytes(dec.Payload)
		e.iv(int64(dec.Header.PayloadLen))
		e.iv(int64(dec.Header.CR))
		e.bool(dec.Header.HasCRC)
		e.f64(dec.Start)
		e.f64(dec.CFOCycles)
		e.f64(dec.SNRdB)
		e.iv(int64(dec.Rescued))
		e.iv(int64(dec.Pass))
		e.iv(int64(dec.DataSymbols))
		e.f64(dec.AirtimeSec)
	}
	return e.b
}

// BECOutcome is one decoded bec boundary entry: the decode verdict of one
// detection, plus the re-encoded true shifts pass-2 masking consumes.
type BECOutcome struct {
	DetIdx      int
	OK          bool
	Known       bool
	KnownShifts []int
	Dec         Decoded
}

func decodeBEC(payload []byte) ([]BECOutcome, error) {
	d := payloadDec{b: payload}
	n := int(d.uv())
	var out []BECOutcome
	for j := 0; j < n && d.err == nil; j++ {
		o := BECOutcome{
			DetIdx:      int(d.iv()),
			OK:          d.bool(),
			Known:       d.bool(),
			KnownShifts: d.ints(),
		}
		if o.OK {
			o.Dec = Decoded{
				Payload: d.bytes(),
				Header: lora.Header{
					PayloadLen: int(d.iv()),
					CR:         int(d.iv()),
					HasCRC:     d.bool(),
				},
				Start:       d.f64(),
				CFOCycles:   d.f64(),
				SNRdB:       d.f64(),
				Rescued:     int(d.iv()),
				Pass:        int(d.iv()),
				DataSymbols: int(d.iv()),
				AirtimeSec:  d.f64(),
			}
		}
		out = append(out, o)
	}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("bec boundary: %w", err)
	}
	return out, nil
}

func decodeSamples(payload []byte) ([][]complex128, error) {
	d := payloadDec{b: payload}
	n := d.sliceLen(1)
	ants := make([][]complex128, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		ants = append(ants, d.c128s())
	}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("samples record: %w", err)
	}
	if len(ants) == 0 || len(ants[0]) == 0 {
		return nil, fmt.Errorf("samples record: empty trace")
	}
	for _, a := range ants[1:] {
		if len(a) != len(ants[0]) {
			return nil, fmt.Errorf("samples record: antenna length mismatch")
		}
	}
	return ants, nil
}
