// Package diag provides capture diagnostics: a short-time spectrogram and
// an ASCII waterfall renderer, the quickest way to eyeball chirps,
// collisions and interference in a trace (the pictures behind the paper's
// Fig. 4/5 intuition).
package diag

import (
	"fmt"
	"io"
	"math"
	"strings"

	"tnb/internal/dsp"
)

// Spectrogram holds |STFT|² of a sample stream: Rows[t][f], with time
// advancing by Hop samples per row and FFTSize frequency bins per row.
type Spectrogram struct {
	FFTSize int
	Hop     int
	Rows    [][]float64
}

// Compute builds a spectrogram with a Hann window. fftSize must be a power
// of two; hop defaults to fftSize/2 when 0.
func Compute(samples []complex128, fftSize, hop int) (*Spectrogram, error) {
	if fftSize < 2 || fftSize&(fftSize-1) != 0 {
		return nil, fmt.Errorf("diag: fftSize %d is not a power of two", fftSize)
	}
	if hop <= 0 {
		hop = fftSize / 2
	}
	plan := dsp.MustPlan(fftSize)
	window := make([]float64, fftSize)
	for i := range window {
		window[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(fftSize-1)))
	}

	sg := &Spectrogram{FFTSize: fftSize, Hop: hop}
	buf := make([]complex128, fftSize)
	for off := 0; off+fftSize <= len(samples); off += hop {
		for i := 0; i < fftSize; i++ {
			buf[i] = samples[off+i] * complex(window[i], 0)
		}
		plan.Forward(buf)
		row := make([]float64, fftSize)
		// FFT-shift so frequency runs -fs/2..fs/2 left to right.
		for i := 0; i < fftSize; i++ {
			v := buf[(i+fftSize/2)%fftSize]
			row[i] = real(v)*real(v) + imag(v)*imag(v)
		}
		sg.Rows = append(sg.Rows, row)
	}
	return sg, nil
}

// asciiShades maps increasing power to denser glyphs.
var asciiShades = []byte(" .:-=+*#%@")

// RenderASCII writes the spectrogram as text: one line per time row,
// downsampled to width columns, log-scaled over dynamicRangeDB below the
// peak.
func (s *Spectrogram) RenderASCII(w io.Writer, width int, dynamicRangeDB float64) error {
	if width <= 0 {
		width = 64
	}
	if dynamicRangeDB <= 0 {
		dynamicRangeDB = 40
	}
	var peak float64
	for _, row := range s.Rows {
		for _, v := range row {
			if v > peak {
				peak = v
			}
		}
	}
	if peak == 0 {
		peak = 1
	}
	var sb strings.Builder
	for _, row := range s.Rows {
		sb.Reset()
		binsPerCol := (len(row) + width - 1) / width
		for c := 0; c < width; c++ {
			var m float64
			for b := c * binsPerCol; b < (c+1)*binsPerCol && b < len(row); b++ {
				if row[b] > m {
					m = row[b]
				}
			}
			db := 10 * math.Log10(m/peak+1e-30)
			frac := 1 + db/dynamicRangeDB // 1 at peak, 0 at -range
			if frac < 0 {
				frac = 0
			}
			idx := int(frac * float64(len(asciiShades)-1))
			if idx >= len(asciiShades) {
				idx = len(asciiShades) - 1
			}
			sb.WriteByte(asciiShades[idx])
		}
		sb.WriteByte('\n')
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}
