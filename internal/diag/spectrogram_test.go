package diag

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tnb/internal/dsp"
	"tnb/internal/lora"
)

func TestComputeRejectsBadSize(t *testing.T) {
	if _, err := Compute(nil, 100, 0); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := Compute(nil, 1, 0); err == nil {
		t.Error("size 1 accepted")
	}
}

func TestComputeToneConcentratesInOneColumn(t *testing.T) {
	n := 4096
	x := make([]complex128, n)
	f := 0.1 // cycles/sample → column at center + 0.1*fftSize
	for i := range x {
		x[i] = dsp.Cis(2 * math.Pi * f * float64(i))
	}
	sg, err := Compute(x, 256, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Rows) == 0 {
		t.Fatal("no rows")
	}
	wantBin := 128 + int(f*256)
	for r, row := range sg.Rows {
		bi, best := 0, 0.0
		for i, v := range row {
			if v > best {
				best, bi = v, i
			}
		}
		if bi < wantBin-1 || bi > wantBin+1 {
			t.Fatalf("row %d: peak at bin %d, want ≈%d", r, bi, wantBin)
		}
	}
}

func TestComputeChirpSweepsColumns(t *testing.T) {
	// A LoRa upchirp sweeps the whole band: the per-row peak column must
	// migrate across most of the spectrogram width.
	p := lora.MustParams(8, 4, 125e3, 8)
	sig := make([]complex128, p.SymbolSamples())
	lora.ModulateSymbol(sig, 0, p.N(), p.Bandwidth, p.OSF)
	sg, err := Compute(sig, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	minBin, maxBin := 128, 0
	for _, row := range sg.Rows {
		bi, best := 0, 0.0
		for i, v := range row {
			if v > best {
				best, bi = v, i
			}
		}
		if bi < minBin {
			minBin = bi
		}
		if bi > maxBin {
			maxBin = bi
		}
	}
	if maxBin-minBin < 10 {
		t.Errorf("chirp swept only bins [%d, %d]", minBin, maxBin)
	}
}

func TestRenderASCII(t *testing.T) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = dsp.Cis(2 * math.Pi * 0.2 * float64(i))
	}
	sg, err := Compute(x, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sg.RenderASCII(&buf, 40, 30); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(sg.Rows) {
		t.Fatalf("%d lines for %d rows", len(lines), len(sg.Rows))
	}
	for _, l := range lines {
		if len(l) != 40 {
			t.Fatalf("line width %d, want 40", len(l))
		}
		if !strings.ContainsAny(l, "@%#") {
			t.Error("tone row missing a strong glyph")
		}
	}
	// Defaults path.
	var buf2 bytes.Buffer
	if err := sg.RenderASCII(&buf2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if buf2.Len() == 0 {
		t.Error("default render empty")
	}
}

func TestRenderASCIIAllZero(t *testing.T) {
	sg, err := Compute(make([]complex128, 512), 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sg.RenderASCII(&buf, 20, 40); err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(buf.String(), "@#%") {
		t.Error("silence rendered as signal")
	}
}
