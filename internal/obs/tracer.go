package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Options configures a Tracer.
type Options struct {
	// Sink receives one JSON record per line (JSONL). Nil disables export;
	// the ring and counters still work.
	Sink io.Writer
	// Spill additionally receives every encoded record with its index
	// digest — the hook the persistent trace store attaches to. Sink and
	// Spill see the same bytes in the same order.
	Spill Spill
	// RingSize caps the in-memory ring of finished packet traces served at
	// /debug/traces. 0 disables the ring.
	RingSize int
}

// Tracer collects decode traces from every pipeline stage. A nil *Tracer is
// fully inert: every method is safe to call and does nothing, so the
// instrumented hot path pays one nil check (the PipelineMetrics pattern).
//
// One Tracer may serve many receivers (e.g. a gateway with several
// connections); all methods are safe for concurrent use. WithOrigin derives
// per-connection views that share the sink, spill, ring and counters while
// stamping each record with its fleet position.
type Tracer struct {
	s      *tracerState
	origin *Origin
}

// tracerState is the shared core behind a Tracer and all its WithOrigin
// views.
type tracerState struct {
	mu     sync.Mutex
	out    io.Writer
	spill  Spill
	ring   []*PacketTrace
	ringAt int
	full   bool

	window   uint64
	packets  uint64
	decoded  uint64
	failures map[FailureReason]uint64
	conns    map[string]uint64
}

// New builds a Tracer. All options may be zero: the Tracer then only
// counts, which is still useful for FailureCounts.
func New(o Options) *Tracer {
	s := &tracerState{
		out:      o.Sink,
		spill:    o.Spill,
		failures: make(map[FailureReason]uint64),
		conns:    make(map[string]uint64),
	}
	if o.RingSize > 0 {
		s.ring = make([]*PacketTrace, o.RingSize)
	}
	return &Tracer{s: s}
}

// WithOrigin returns a view of the tracer that stamps every record it emits
// with the given fleet origin (gateway, channel, SF). The view shares the
// parent's sink, spill, ring and counters; the parent and other views are
// unaffected. Nil receivers stay nil, preserving the inert-tracer pattern.
func (t *Tracer) WithOrigin(o Origin) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{s: t.s, origin: &o}
}

// emit marshals rec once and fans it out to the sink and the spill, in that
// order. Callers hold s.mu, so lines land in both in one global order.
// Encoding or write errors (closed file, full disk) drop the sink rather
// than failing the decode: tracing is diagnostic, not load-bearing.
func (s *tracerState) emit(rec any, m RecordMeta) {
	if s.out == nil && s.spill == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	if s.spill != nil {
		s.spill.Append(line, m)
	}
	if s.out != nil {
		if _, err := s.out.Write(append(line, '\n')); err != nil {
			s.out = nil
		}
	}
}

// NextWindow advances and returns the receiver-window sequence number.
// Receivers call it once per processed window so packet IDs from different
// windows (or different receivers sharing the tracer) never collide.
func (t *Tracer) NextWindow() uint64 {
	if t == nil {
		return 0
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.s.window++
	return t.s.window
}

// NewPacket opens a trace for one detected packet in the given window and
// pass. Returns nil on a nil tracer, which the PacketTrace methods accept.
func (t *Tracer) NewPacket(window uint64, id, pass int, det Detection) *PacketTrace {
	if t == nil {
		return nil
	}
	return &PacketTrace{Window: window, ID: id, Pass: pass, Detection: det}
}

// Finish seals a trace: stamps its type and origin, writes the JSONL
// record, inserts it into the ring, and updates the failure counters.
// Final=false traces (pass-1 failures about to be retried) are exported but
// not counted, so FailureCounts reflects per-packet verdicts, not
// per-attempt ones.
func (t *Tracer) Finish(pt *PacketTrace) {
	if t == nil || pt == nil {
		return
	}
	pt.Type = TypePacket
	if pt.Origin == nil {
		pt.Origin = t.origin
	}
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit(pt, metaFor(TypePacket, string(pt.FailureReason), pt.Origin))
	if len(s.ring) > 0 {
		s.ring[s.ringAt] = pt
		s.ringAt++
		if s.ringAt == len(s.ring) {
			s.ringAt = 0
			s.full = true
		}
	}
	if pt.Final {
		s.packets++
		if pt.OK {
			s.decoded++
		} else if pt.FailureReason != "" {
			s.failures[pt.FailureReason]++
		}
	}
}

// OnDetect exports one detection-stage event.
func (t *Tracer) OnDetect(ev DetectEvent) {
	if t == nil {
		return
	}
	ev.Type = TypeDetect
	if ev.Origin == nil {
		ev.Origin = t.origin
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.s.emit(&ev, metaFor(TypeDetect, ev.Reason, ev.Origin))
}

// OnStream exports one stream-layer event.
func (t *Tracer) OnStream(event string, absStart float64) {
	if t == nil {
		return
	}
	ev := StreamEvent{Type: TypeStream, Event: event, AbsStart: absStart, Origin: t.origin}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.s.emit(&ev, metaFor(TypeStream, event, ev.Origin))
}

// OnConn exports and counts one gateway connection-level event. The event
// should be one of the ConnEvents taxonomy; unknown events are still
// exported (they fail ValidateJSONL, which is the point — the taxonomy and
// the emitters are kept in sync by the schema check).
func (t *Tracer) OnConn(event, remote, detail string) {
	if t == nil {
		return
	}
	ev := ConnEvent{Type: TypeConn, Event: event, Remote: remote, Detail: detail, Origin: t.origin}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.s.conns[event]++
	t.s.emit(&ev, metaFor(TypeConn, event, ev.Origin))
}

// OnNet exports one network-server event. The event's own Origin (built
// from the uplink's gateway/channel/SF metadata) wins over the tracer's.
func (t *Tracer) OnNet(ev NetEvent) {
	if t == nil {
		return
	}
	ev.Type = TypeNet
	if ev.Origin == nil {
		ev.Origin = t.origin
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.s.emit(&ev, metaFor(TypeNet, ev.Reason, ev.Origin))
}

// ConnCounts returns the per-event connection-failure tallies.
func (t *Tracer) ConnCounts() map[string]uint64 {
	if t == nil {
		return nil
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	m := make(map[string]uint64, len(t.s.conns))
	for k, v := range t.s.conns {
		m[k] = v
	}
	return m
}

// SetAbsStart backfills the stream-absolute start on a finished trace.
// Taken under the tracer lock because the trace may already be visible to
// the /debug/traces handler via the ring.
func (t *Tracer) SetAbsStart(pt *PacketTrace, abs float64) {
	if t == nil || pt == nil {
		return
	}
	t.s.mu.Lock()
	pt.AbsStart = abs
	t.s.mu.Unlock()
}

// Snapshot returns copies of the ring's finished traces, oldest first. The
// copies are detached from the ring, so callers may hold or encode them
// without the tracer lock (Symbols/Blocks slices are shared but immutable
// after Finish).
func (t *Tracer) Snapshot() []*PacketTrace {
	if t == nil {
		return nil
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	var out []*PacketTrace
	appendCopies := func(src []*PacketTrace) {
		for _, pt := range src {
			cp := *pt
			out = append(out, &cp)
		}
	}
	if t.s.full {
		appendCopies(t.s.ring[t.s.ringAt:])
	}
	appendCopies(t.s.ring[:t.s.ringAt])
	return out
}

// FailureCounts returns (total final packets, decoded, failures by reason).
func (t *Tracer) FailureCounts() (packets, decoded uint64, byReason map[FailureReason]uint64) {
	if t == nil {
		return 0, 0, nil
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	m := make(map[FailureReason]uint64, len(t.s.failures))
	for k, v := range t.s.failures {
		m[k] = v
	}
	return t.s.packets, t.s.decoded, m
}
