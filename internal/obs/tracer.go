package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Options configures a Tracer.
type Options struct {
	// Sink receives one JSON record per line (JSONL). Nil disables export;
	// the ring and counters still work.
	Sink io.Writer
	// RingSize caps the in-memory ring of finished packet traces served at
	// /debug/traces. 0 disables the ring.
	RingSize int
}

// Tracer collects decode traces from every pipeline stage. A nil *Tracer is
// fully inert: every method is safe to call and does nothing, so the
// instrumented hot path pays one nil check (the PipelineMetrics pattern).
//
// One Tracer may serve many receivers (e.g. a gateway with several
// connections); all methods are safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	enc    *json.Encoder
	ring   []*PacketTrace
	ringAt int
	full   bool

	window   uint64
	packets  uint64
	decoded  uint64
	failures map[FailureReason]uint64
	conns    map[string]uint64
}

// New builds a Tracer. Both options may be zero: the Tracer then only
// counts, which is still useful for FailureCounts.
func New(o Options) *Tracer {
	t := &Tracer{failures: make(map[FailureReason]uint64), conns: make(map[string]uint64)}
	if o.Sink != nil {
		t.enc = json.NewEncoder(o.Sink)
	}
	if o.RingSize > 0 {
		t.ring = make([]*PacketTrace, o.RingSize)
	}
	return t
}

// NextWindow advances and returns the receiver-window sequence number.
// Receivers call it once per processed window so packet IDs from different
// windows (or different receivers sharing the tracer) never collide.
func (t *Tracer) NextWindow() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.window++
	return t.window
}

// NewPacket opens a trace for one detected packet in the given window and
// pass. Returns nil on a nil tracer, which the PacketTrace methods accept.
func (t *Tracer) NewPacket(window uint64, id, pass int, det Detection) *PacketTrace {
	if t == nil {
		return nil
	}
	return &PacketTrace{Window: window, ID: id, Pass: pass, Detection: det}
}

// Finish seals a trace: stamps its type, writes the JSONL record, inserts
// it into the ring, and updates the failure counters. Final=false traces
// (pass-1 failures about to be retried) are exported but not counted, so
// FailureCounts reflects per-packet verdicts, not per-attempt ones.
func (t *Tracer) Finish(pt *PacketTrace) {
	if t == nil || pt == nil {
		return
	}
	pt.Type = TypePacket
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.enc != nil {
		// Encoding errors (closed file, full disk) drop the sink rather
		// than failing the decode: tracing is diagnostic, not load-bearing.
		if err := t.enc.Encode(pt); err != nil {
			t.enc = nil
		}
	}
	if len(t.ring) > 0 {
		t.ring[t.ringAt] = pt
		t.ringAt++
		if t.ringAt == len(t.ring) {
			t.ringAt = 0
			t.full = true
		}
	}
	if pt.Final {
		t.packets++
		if pt.OK {
			t.decoded++
		} else if pt.FailureReason != "" {
			t.failures[pt.FailureReason]++
		}
	}
}

// OnDetect exports one detection-stage event.
func (t *Tracer) OnDetect(ev DetectEvent) {
	if t == nil {
		return
	}
	ev.Type = TypeDetect
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.enc != nil {
		if err := t.enc.Encode(ev); err != nil {
			t.enc = nil
		}
	}
}

// OnStream exports one stream-layer event.
func (t *Tracer) OnStream(event string, absStart float64) {
	if t == nil {
		return
	}
	ev := StreamEvent{Type: TypeStream, Event: event, AbsStart: absStart}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.enc != nil {
		if err := t.enc.Encode(ev); err != nil {
			t.enc = nil
		}
	}
}

// OnConn exports and counts one gateway connection-level event. The event
// should be one of the ConnEvents taxonomy; unknown events are still
// exported (they fail ValidateJSONL, which is the point — the taxonomy and
// the emitters are kept in sync by the schema check).
func (t *Tracer) OnConn(event, remote, detail string) {
	if t == nil {
		return
	}
	ev := ConnEvent{Type: TypeConn, Event: event, Remote: remote, Detail: detail}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.conns[event]++
	if t.enc != nil {
		if err := t.enc.Encode(ev); err != nil {
			t.enc = nil
		}
	}
}

// ConnCounts returns the per-event connection-failure tallies.
func (t *Tracer) ConnCounts() map[string]uint64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m := make(map[string]uint64, len(t.conns))
	for k, v := range t.conns {
		m[k] = v
	}
	return m
}

// SetAbsStart backfills the stream-absolute start on a finished trace.
// Taken under the tracer lock because the trace may already be visible to
// the /debug/traces handler via the ring.
func (t *Tracer) SetAbsStart(pt *PacketTrace, abs float64) {
	if t == nil || pt == nil {
		return
	}
	t.mu.Lock()
	pt.AbsStart = abs
	t.mu.Unlock()
}

// Snapshot returns the ring's finished traces, oldest first.
func (t *Tracer) Snapshot() []*PacketTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*PacketTrace
	if t.full {
		out = append(out, t.ring[t.ringAt:]...)
	}
	out = append(out, t.ring[:t.ringAt]...)
	return out
}

// FailureCounts returns (total final packets, decoded, failures by reason).
func (t *Tracer) FailureCounts() (packets, decoded uint64, byReason map[FailureReason]uint64) {
	if t == nil {
		return 0, 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m := make(map[FailureReason]uint64, len(t.failures))
	for k, v := range t.failures {
		m[k] = v
	}
	return t.packets, t.decoded, m
}
