package obs

import (
	"bytes"
	"strings"
	"testing"
)

// recordingSpill captures every spilled line and digest, copying the line as
// the Spill contract requires.
type recordingSpill struct {
	lines []string
	metas []RecordMeta
}

func (s *recordingSpill) Append(line []byte, m RecordMeta) {
	s.lines = append(s.lines, string(line))
	s.metas = append(s.metas, m)
}

func TestSpillSeesSameBytesAsSink(t *testing.T) {
	var buf bytes.Buffer
	sp := &recordingSpill{}
	tr := New(Options{Sink: &buf, Spill: sp, RingSize: 4})
	tr = tr.WithOrigin(Origin{Gateway: "gw-a", Channel: 3, SF: 8})

	pt := tr.NewPacket(tr.NextWindow(), 0, 1, Detection{SNRdB: -5})
	pt.Final = true
	pt.FailureReason = FailBECBudget
	tr.Finish(pt)
	tr.OnConn(ConnShardOverload, "1.2.3.4:5", "queue full")
	tr.OnNet(NetEvent{Event: NetDrop, Reason: "bad_mic", TimeSec: 1.5})

	sinkLines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(sinkLines) != 3 || len(sp.lines) != 3 {
		t.Fatalf("want 3 records in sink and spill, got %d and %d", len(sinkLines), len(sp.lines))
	}
	for i := range sinkLines {
		if sinkLines[i] != sp.lines[i] {
			t.Errorf("record %d: sink and spill bytes differ:\n  sink:  %s\n  spill: %s", i, sinkLines[i], sp.lines[i])
		}
	}

	want := []RecordMeta{
		{Type: TypePacket, Reason: "bec_budget_exhausted", Channel: 3, SF: 8, Gateway: "gw-a"},
		{Type: TypeConn, Reason: "shard_overload", Channel: 3, SF: 8, Gateway: "gw-a"},
		{Type: TypeNet, Reason: "bad_mic", Channel: 3, SF: 8, Gateway: "gw-a"},
	}
	for i, m := range sp.metas {
		if m != want[i] {
			t.Errorf("record %d meta = %+v, want %+v", i, m, want[i])
		}
	}
}

// TestMetaOfInvertsSpillDigest pins the contract the trace store relies on:
// re-parsing a spilled line yields exactly the digest the tracer attached,
// for every record type, with and without an origin.
func TestMetaOfInvertsSpillDigest(t *testing.T) {
	run := func(name string, tr *Tracer) {
		sp := &recordingSpill{}
		tr.s.spill = sp
		pt := tr.NewPacket(1, 0, 2, Detection{Quality: 1})
		pt.Final = true
		pt.OK = true
		pt.DataSymbols = 10
		pt.AirtimeSec = 0.1
		tr.Finish(pt)
		tr.OnDetect(DetectEvent{Accepted: false, Reason: "weak_peak"})
		tr.OnStream("dedup", 123)
		tr.OnConn(ConnReadTimeout, "r", "")
		tr.OnNet(NetEvent{Event: NetDrop, Reason: "replayed_fcnt"})
		for i, line := range sp.lines {
			got, err := MetaOf([]byte(line))
			if err != nil {
				t.Fatalf("%s record %d: MetaOf: %v", name, i, err)
			}
			if got != sp.metas[i] {
				t.Errorf("%s record %d: MetaOf = %+v, spill digest %+v", name, i, got, sp.metas[i])
			}
		}
	}
	run("no-origin", New(Options{}))
	run("origin", New(Options{}).WithOrigin(Origin{Gateway: "g", Channel: 0, SF: 12}))
}

func TestMetaOfRejectsGarbage(t *testing.T) {
	if _, err := MetaOf([]byte(`{"type":`)); err == nil {
		t.Error("MetaOf accepted truncated JSON")
	}
	if _, err := MetaOf([]byte(`{"event":"drop"}`)); err == nil {
		t.Error("MetaOf accepted record without type")
	}
}

func TestWithOriginNilTracer(t *testing.T) {
	var tr *Tracer
	got := tr.WithOrigin(Origin{Channel: 1})
	if got != nil {
		t.Fatal("WithOrigin on nil tracer must stay nil")
	}
	got.OnNet(NetEvent{Event: NetDrop, Reason: "x"}) // must not panic
}

// TestWithOriginSharesState checks that derived views feed the parent's
// counters and ring rather than forking them.
func TestWithOriginSharesState(t *testing.T) {
	tr := New(Options{RingSize: 4})
	v1 := tr.WithOrigin(Origin{Channel: 1, SF: 7})
	v2 := tr.WithOrigin(Origin{Channel: 2, SF: 8})
	for i, v := range []*Tracer{v1, v2} {
		pt := v.NewPacket(v.NextWindow(), i, 1, Detection{})
		pt.Final = true
		pt.FailureReason = FailCRC
		v.Finish(pt)
	}
	packets, _, byReason := tr.FailureCounts()
	if packets != 2 || byReason[FailCRC] != 2 {
		t.Fatalf("parent counters = (%d, %v), want both finishes visible", packets, byReason)
	}
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("parent ring has %d traces, want 2", len(snap))
	}
	if snap[0].Origin == nil || snap[0].Origin.Channel != 1 || snap[1].Origin.Channel != 2 {
		t.Errorf("ring traces missing per-view origins: %+v, %+v", snap[0].Origin, snap[1].Origin)
	}
}

// TestSnapshotCopiesDetached pins the satellite-1 fix: mutating a trace
// after Finish (SetAbsStart) must not alter an already-taken snapshot,
// because the HTTP handler encodes snapshots outside the tracer lock.
func TestSnapshotCopiesDetached(t *testing.T) {
	tr := New(Options{RingSize: 2})
	pt := tr.NewPacket(1, 0, 1, Detection{})
	pt.Final = true
	pt.OK = true
	pt.DataSymbols = 1
	pt.AirtimeSec = 0.01
	tr.Finish(pt)
	snap := tr.Snapshot()
	tr.SetAbsStart(pt, 999)
	if snap[0].AbsStart == 999 {
		t.Fatal("snapshot shares memory with the live ring entry")
	}
}
