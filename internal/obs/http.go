package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the trace ring for live inspection. GET returns the ring's
// packet traces as a JSON array (oldest first) plus the failure-reason
// tallies; `?n=K` limits to the K most recent.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		traces := t.Snapshot()
		if q := r.URL.Query().Get("n"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(traces) {
				traces = traces[len(traces)-n:]
			}
		}
		packets, decoded, byReason := t.FailureCounts()
		resp := struct {
			Packets  uint64                   `json:"packets"`
			Decoded  uint64                   `json:"decoded"`
			Failures map[FailureReason]uint64 `json:"failures,omitempty"`
			Traces   []*PacketTrace           `json:"traces"`
		}{packets, decoded, byReason, traces}
		if resp.Traces == nil {
			resp.Traces = []*PacketTrace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Snapshot returned detached copies, so encoding happens entirely
		// outside the tracer lock: a slow reader can't stall the decoders.
		_ = enc.Encode(resp)
	})
}
