package obs

import (
	"encoding/json"
	"errors"
)

// RecordMeta is the queryable digest of one trace record: the fields the
// persistent trace store (internal/tracestore) indexes. Reason collapses
// each record type's discriminating string into one column — a packet's
// failure_reason, a detect rejection's reason, a stream or conn record's
// event, a net record's drop reason — so one filter answers "show me the
// bec_budget_exhausted packets" and "show me the shard_overload conns"
// alike. Channel and SF are -1 when the record carries no Origin.
type RecordMeta struct {
	Type    string
	Reason  string
	Channel int
	SF      int
	Gateway string
}

// Spill receives every record a Tracer exports, already encoded as one
// JSONL line (without the trailing newline), together with its index
// digest. The line is only valid for the duration of the call;
// implementations that retain it must copy. Spill calls happen under the
// tracer lock, in emission order, so a store sees the exact byte sequence
// the JSONL sink would — the property that makes query results identical
// across worker-pool widths.
type Spill interface {
	Append(line []byte, m RecordMeta)
}

// MetaOf parses the index digest back out of an encoded record line. It is
// the exact inverse of the digests a Tracer hands its Spill, so a store can
// rebuild its index from segment bytes alone: crash recovery and offline
// query need nothing but the JSONL files.
func MetaOf(line []byte) (RecordMeta, error) {
	var p struct {
		Type          string  `json:"type"`
		FailureReason string  `json:"failure_reason"`
		Reason        string  `json:"reason"`
		Event         string  `json:"event"`
		Origin        *Origin `json:"origin"`
	}
	if err := json.Unmarshal(line, &p); err != nil {
		return RecordMeta{}, err
	}
	if p.Type == "" {
		return RecordMeta{}, errors.New(`record has no "type" field`)
	}
	var reason string
	switch p.Type {
	case TypePacket:
		reason = p.FailureReason
	case TypeDetect, TypeNet:
		reason = p.Reason
	case TypeStream, TypeConn:
		reason = p.Event
	}
	return metaFor(p.Type, reason, p.Origin), nil
}

// metaFor builds the digest the Tracer attaches to each spilled record.
func metaFor(typ, reason string, o *Origin) RecordMeta {
	m := RecordMeta{Type: typ, Reason: reason, Channel: -1, SF: -1}
	if o != nil {
		m.Channel, m.SF, m.Gateway = o.Channel, o.SF, o.Gateway
	}
	return m
}
