package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ValidateRecord checks one JSONL trace line against the schema: known
// record type, required fields present, and values within the taxonomy. It
// backs the CI smoke test (`tnbtrace -check`).
func ValidateRecord(line []byte) error {
	var head struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(line, &head); err != nil {
		return fmt.Errorf("not a JSON object: %w", err)
	}
	switch head.Type {
	case TypePacket:
		var pt PacketTrace
		if err := json.Unmarshal(line, &pt); err != nil {
			return fmt.Errorf("packet record: %w", err)
		}
		return validatePacket(&pt)
	case TypeDetect:
		var ev DetectEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("detect record: %w", err)
		}
		if !ev.Accepted && ev.Reason == "" {
			return fmt.Errorf("detect record: rejected candidate without a reason")
		}
		return nil
	case TypeStream:
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("stream record: %w", err)
		}
		switch ev.Event {
		case "deferred", "dedup", "flush", "sanitized":
			return nil
		default:
			return fmt.Errorf("stream record: unknown event %q", ev.Event)
		}
	case TypeConn:
		var ev ConnEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("conn record: %w", err)
		}
		for _, k := range ConnEvents {
			if ev.Event == k {
				return nil
			}
		}
		return fmt.Errorf("conn record: unknown event %q", ev.Event)
	case "":
		return fmt.Errorf("record has no \"type\" field")
	default:
		return fmt.Errorf("unknown record type %q", head.Type)
	}
}

func validatePacket(pt *PacketTrace) error {
	if pt.Pass != 1 && pt.Pass != 2 {
		return fmt.Errorf("packet record: pass %d out of range", pt.Pass)
	}
	if pt.OK {
		if pt.FailureReason != "" {
			return fmt.Errorf("packet record: decoded packet carries failure reason %q", pt.FailureReason)
		}
		if pt.DataSymbols <= 0 {
			return fmt.Errorf("packet record: decoded packet without data_symbols")
		}
		if pt.AirtimeSec <= 0 {
			return fmt.Errorf("packet record: decoded packet without airtime_sec")
		}
	} else if pt.FailureReason == "" || !pt.FailureReason.Valid() {
		return fmt.Errorf("packet record: failed packet needs a valid failure reason, got %q", pt.FailureReason)
	}
	if pt.SyncScore < 0 || pt.SyncScore > 1 {
		return fmt.Errorf("packet record: sync_score %v out of [0,1]", pt.SyncScore)
	}
	for _, s := range pt.Symbols {
		if s.Idx < 0 || s.Idx >= len(pt.Symbols) {
			return fmt.Errorf("packet record: symbol idx %d out of range", s.Idx)
		}
	}
	for _, b := range pt.Blocks {
		if b.CR < 1 || b.CR > 4 {
			return fmt.Errorf("packet record: block cr %d out of range", b.CR)
		}
	}
	return nil
}

// ValidateJSONL validates every line of a JSONL stream, returning the
// per-type record counts or the first error annotated with its line number.
func ValidateJSONL(r io.Reader) (map[string]int, error) {
	counts := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := ValidateRecord(line); err != nil {
			return counts, fmt.Errorf("line %d: %w", n, err)
		}
		var head struct {
			Type string `json:"type"`
		}
		_ = json.Unmarshal(line, &head)
		counts[head.Type]++
	}
	if err := sc.Err(); err != nil {
		return counts, err
	}
	return counts, nil
}
