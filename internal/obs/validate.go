package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ValidateRecord checks one JSONL trace line against the schema: known
// record type, required fields present, and values within the taxonomy. It
// backs the CI smoke test (`tnbtrace -check`).
func ValidateRecord(line []byte) error {
	var head struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(line, &head); err != nil {
		return fmt.Errorf("not a JSON object: %w", err)
	}
	switch head.Type {
	case TypePacket:
		var pt PacketTrace
		if err := json.Unmarshal(line, &pt); err != nil {
			return fmt.Errorf("packet record: %w", err)
		}
		return validatePacket(&pt)
	case TypeDetect:
		var ev DetectEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("detect record: %w", err)
		}
		if !ev.Accepted && ev.Reason == "" {
			return fmt.Errorf("detect record: rejected candidate without a reason")
		}
		return nil
	case TypeStream:
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("stream record: %w", err)
		}
		switch ev.Event {
		case "deferred", "dedup", "flush", "sanitized":
			return nil
		default:
			return fmt.Errorf("stream record: unknown event %q", ev.Event)
		}
	case TypeConn:
		var ev ConnEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("conn record: %w", err)
		}
		for _, k := range ConnEvents {
			if ev.Event == k {
				return nil
			}
		}
		return fmt.Errorf("conn record: unknown event %q", ev.Event)
	case TypeNet:
		var ev NetEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("net record: %w", err)
		}
		if ev.Event != NetDrop {
			return fmt.Errorf("net record: unknown event %q", ev.Event)
		}
		if ev.Reason == "" {
			return fmt.Errorf("net record: drop without a reason")
		}
		return nil
	case "":
		return fmt.Errorf("record has no \"type\" field")
	default:
		return fmt.Errorf("unknown record type %q", head.Type)
	}
}

func validatePacket(pt *PacketTrace) error {
	if pt.Pass != 1 && pt.Pass != 2 {
		return fmt.Errorf("packet record: pass %d out of range", pt.Pass)
	}
	if pt.OK {
		if pt.FailureReason != "" {
			return fmt.Errorf("packet record: decoded packet carries failure reason %q", pt.FailureReason)
		}
		if pt.DataSymbols <= 0 {
			return fmt.Errorf("packet record: decoded packet without data_symbols")
		}
		if pt.AirtimeSec <= 0 {
			return fmt.Errorf("packet record: decoded packet without airtime_sec")
		}
	} else if pt.FailureReason == "" || !pt.FailureReason.Valid() {
		return fmt.Errorf("packet record: failed packet needs a valid failure reason, got %q", pt.FailureReason)
	}
	if pt.SyncScore < 0 || pt.SyncScore > 1 {
		return fmt.Errorf("packet record: sync_score %v out of [0,1]", pt.SyncScore)
	}
	for _, s := range pt.Symbols {
		if s.Idx < 0 || s.Idx >= len(pt.Symbols) {
			return fmt.Errorf("packet record: symbol idx %d out of range", s.Idx)
		}
	}
	for _, b := range pt.Blocks {
		if b.CR < 1 || b.CR > 4 {
			return fmt.Errorf("packet record: block cr %d out of range", b.CR)
		}
	}
	return nil
}

// ValidateOptions tunes ValidateJSONLOptions.
type ValidateOptions struct {
	// AllowTornFinal accepts a final line that lacks a trailing newline and
	// fails to parse: the signature of a writer killed mid-append. Only the
	// very last line gets this leniency, and only when it is actually torn —
	// a complete final line that parses is still validated. Use it when
	// checking the live segment of a trace store.
	AllowTornFinal bool
}

// snippet truncates a trace line for inclusion in an error message.
func snippet(line []byte) string {
	const max = 80
	if len(line) <= max {
		return string(line)
	}
	return string(line[:max]) + "..."
}

// ValidateJSONL validates every line of a JSONL stream, returning the
// per-type record counts or the first error annotated with its line number
// and a truncated copy of the offending line.
func ValidateJSONL(r io.Reader) (map[string]int, error) {
	return ValidateJSONLOptions(r, ValidateOptions{})
}

// ValidateJSONLOptions is ValidateJSONL with explicit options.
func ValidateJSONLOptions(r io.Reader, o ValidateOptions) (map[string]int, error) {
	counts := make(map[string]int)
	br := bufio.NewReaderSize(r, 1<<20)
	n := 0
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return counts, err
		}
		atEOF := err == io.EOF
		torn := atEOF && len(line) > 0 // data without a trailing newline
		if len(line) > 0 && line[len(line)-1] == '\n' {
			line = line[:len(line)-1]
		}
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) > 0 {
			n++
			if verr := ValidateRecord(line); verr != nil {
				// A newline-less final line that isn't even valid JSON is
				// the torn-write signature; a complete JSON object that
				// merely fails the schema is a real error either way.
				if torn && o.AllowTornFinal && !json.Valid(line) {
					return counts, nil
				}
				return counts, fmt.Errorf("line %d: %w (line: %s)", n, verr, snippet(line))
			}
			var head struct {
				Type string `json:"type"`
			}
			_ = json.Unmarshal(line, &head)
			counts[head.Type]++
		}
		if atEOF {
			return counts, nil
		}
	}
}
