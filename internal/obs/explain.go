package obs

import (
	"fmt"
	"io"
)

// Explain renders one packet trace as a human-readable report: the
// detection line, the verdict, the BEC block table, and the per-symbol cost
// table with ambiguous decisions flagged. It is the `tnbdecode -explain`
// backend.
func Explain(w io.Writer, pt *PacketTrace) {
	if pt == nil {
		fmt.Fprintln(w, "no trace")
		return
	}
	fmt.Fprintf(w, "packet window=%d id=%d pass=%d\n", pt.Window, pt.ID, pt.Pass)
	d := pt.Detection
	fmt.Fprintf(w, "  detect: start=%d+%.3f  cfo=%.3f cyc (%.1f Hz)  q=%.3g  snr=%.1f dB  sync_score=%.2f\n",
		d.StartSample, d.FracTiming, d.CFOCycles, d.CFOHz, d.Quality, d.SNRdB, pt.SyncScore)
	if pt.OK {
		fmt.Fprintf(w, "  verdict: decoded  symbols=%d airtime=%.1f ms rescued=%d crc_tests=%d\n",
			pt.DataSymbols, pt.AirtimeSec*1e3, pt.Rescued, pt.CRCTests)
	} else {
		fmt.Fprintf(w, "  verdict: FAILED (%s)  crc_tests=%d\n", pt.FailureReason, pt.CRCTests)
	}
	if pt.MaskedPeaks > 0 {
		fmt.Fprintf(w, "  masking: %d known peaks masked from this packet's symbols\n", pt.MaskedPeaks)
	}
	if pt.ListDecodeTried > 0 {
		fmt.Fprintf(w, "  list decode: %d runner-up substitutions tried\n", pt.ListDecodeTried)
	}

	if len(pt.Blocks) > 0 {
		fmt.Fprintf(w, "  bec blocks:\n")
		fmt.Fprintf(w, "    %-6s %-3s %-5s %-5s %s\n", "block", "cr", "errs", "cands", "outcome")
		for _, b := range pt.Blocks {
			name := fmt.Sprintf("%d", b.Index)
			if b.Index < 0 {
				name = "hdr"
			}
			outcome := "repaired"
			switch {
			case b.Failed:
				outcome = "FAILED"
			case b.NoError:
				outcome = "clean"
			}
			if b.Companion {
				outcome += "+companion"
			}
			fmt.Fprintf(w, "    %-6s %-3d %-5d %-5d %s\n", name, b.CR, b.ErrorCols, b.Candidates, outcome)
		}
	}

	if len(pt.Symbols) == 0 {
		return
	}
	fmt.Fprintf(w, "  symbols (margin < %.2g flagged '?'):\n", AmbiguityMargin)
	fmt.Fprintf(w, "    %-4s %-5s %-5s %-8s %-9s %-9s %-9s %-9s\n",
		"idx", "bin", "alt", "height", "sib", "hist", "cost", "margin")
	for _, s := range pt.Symbols {
		if s.Bin < 0 {
			fmt.Fprintf(w, "    %-4d (unassigned)\n", s.Idx)
			continue
		}
		flag := ""
		if s.Fallback {
			flag = " fallback"
		} else if s.Ambiguous(AmbiguityMargin) {
			flag = " ?"
		}
		margin := "-"
		if s.Margin >= 0 {
			margin = fmt.Sprintf("%.4f", s.Margin)
		}
		alt := "-"
		if s.Alt >= 0 {
			alt = fmt.Sprintf("%d", s.Alt)
		}
		fmt.Fprintf(w, "    %-4d %-5d %-5s %-8.3g %-9.4f %-9.4f %-9.4f %-9s%s\n",
			s.Idx, s.Bin, alt, s.Height, s.SiblingCost, s.HistoryCost, s.Cost, margin, flag)
	}
}
