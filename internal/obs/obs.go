// Package obs is the per-packet diagnostic counterpart to the aggregate
// internal/metrics subsystem: where metrics answer "how many packets failed",
// obs answers "why did THIS packet fail". Every detected packet gets a
// structured decode trace — detection parameters, per-symbol Thrive
// assignment decisions with the sibling/history cost split, per-block BEC
// outcomes, second-pass masking events, and a final verdict with a
// machine-readable failure reason.
//
// The Tracer is nil-safe throughout: a receiver configured without a tracer
// pays one nil check per packet, the same zero-cost pattern as
// core.PipelineMetrics. Traces are exported as JSONL (one record per line,
// discriminated by a "type" field), kept in a ring buffer for the
// /debug/traces ops endpoint, and summarized per report by the gateway.
package obs

// FailureReason classifies why a detected packet did not decode. The
// taxonomy is machine-readable: regression triage filters on it, and the
// failure-attribution tests assert an injected fault maps to its reason.
type FailureReason string

const (
	// FailTooShort: the trace ended before the packet's header symbols.
	FailTooShort FailureReason = "too_short"
	// FailNoSync: the preamble peaks do not align at the estimated
	// timing/CFO — detection's Q(δt, δf) search locked onto the wrong
	// synchronization (paper §7).
	FailNoSync FailureReason = "no_sync"
	// FailHeaderInvalid: no checksum-valid PHY header candidate was found.
	FailHeaderInvalid FailureReason = "header_invalid"
	// FailBECBudget: BEC produced candidate repairs but the W-capped CRC
	// test budget ran out before the candidate space was covered (§6.9).
	FailBECBudget FailureReason = "bec_budget_exhausted"
	// FailPeakMisassign: the decode failed and an outsized share of symbols
	// were assigned with near-zero cost margin or by fallback — the likely
	// culprit is Thrive picking the wrong peak (paper §5).
	FailPeakMisassign FailureReason = "peak_misassign_suspect"
	// FailBECUnrepairable: a payload block's error pattern exceeded BEC's
	// correction capability (§6.3, Table 1).
	FailBECUnrepairable FailureReason = "bec_unrepairable"
	// FailCRC: every candidate payload was tested and none passed the
	// packet CRC.
	FailCRC FailureReason = "crc_fail"
)

// FailureReasons lists the full taxonomy, for validation and summaries.
var FailureReasons = []FailureReason{
	FailTooShort, FailNoSync, FailHeaderInvalid, FailBECBudget,
	FailPeakMisassign, FailBECUnrepairable, FailCRC,
}

// Valid reports whether r is in the taxonomy.
func (r FailureReason) Valid() bool {
	for _, k := range FailureReasons {
		if r == k {
			return true
		}
	}
	return false
}

// Record type discriminators, the "type" field of every JSONL line.
const (
	TypePacket = "packet"
	TypeDetect = "detect"
	TypeStream = "stream"
	TypeConn   = "conn"
	TypeNet    = "net"
)

// Types lists every record type, for validation and query parsing.
var Types = []string{TypePacket, TypeDetect, TypeStream, TypeConn, TypeNet}

// Origin locates a record in the fleet: which gateway heard the samples, on
// which logical uplink channel, at which spreading factor. Records written
// by a single-process tool (tnbsim, tnbdecode) carry no origin; the gateway
// stamps each connection's records via Tracer.WithOrigin, and the netserver
// stamps its events from the uplink metadata. The persistent trace store
// indexes these three fields, so "channel 3, SF 8, gateway gw-2" is a
// selective query instead of a full scan.
type Origin struct {
	Gateway string `json:"gateway,omitempty"`
	Channel int    `json:"channel"`
	SF      int    `json:"sf"`
}

// NetEvent records one network-server verdict about an uplink that did not
// become a delivery: the drop-taxonomy counterpart to the gateway's
// ConnEvent. Reason carries the netserver drop taxonomy (bad_mic,
// replayed_fcnt, quota_exceeded, ...); TimeSec is the logical uplink time.
type NetEvent struct {
	Type    string  `json:"type"` // TypeNet
	Event   string  `json:"event"`
	Reason  string  `json:"reason,omitempty"`
	TimeSec float64 `json:"time_sec"`
	DevEUI  string  `json:"dev_eui,omitempty"`
	DevAddr string  `json:"dev_addr,omitempty"`
	Origin  *Origin `json:"origin,omitempty"`
}

// NetDrop is the NetEvent kind for a dropped uplink (the only kind today;
// deliveries and joins stay on the netserver's own event stream).
const NetDrop = "drop"

// Connection-level event reasons: how a gateway connection degraded or
// died. Where FailureReason explains one packet, these explain one client —
// every fault the ingest path survives maps to exactly one of them, so a
// chaos run is attributable from the trace stream alone.
const (
	// ConnReadTimeout: the client stalled past the read deadline.
	ConnReadTimeout = "read_timeout"
	// ConnWriteTimeout: the client stopped draining replies past the
	// write deadline.
	ConnWriteTimeout = "write_timeout"
	// ConnHelloRejected: the opening hello line was unparseable or out of
	// range (covers corrupted hello bytes).
	ConnHelloRejected = "hello_rejected"
	// ConnOverloadShed: the server refused the connection at its
	// connection budget before building a receiver.
	ConnOverloadShed = "overload_shed"
	// ConnSampleLimit: the client exceeded the per-connection sample cap.
	ConnSampleLimit = "sample_limit"
	// ConnStreamOverflow: the decode buffer hit its hard ceiling.
	ConnStreamOverflow = "stream_overflow"
	// ConnClientAbort: the transport died mid-stream (reset, broken pipe)
	// without the protocol's half-close.
	ConnClientAbort = "client_abort"
	// ConnShardOverload: the connection's (channel, SF) decode shard kept a
	// full queue past the grace period and the client was shed.
	ConnShardOverload = "shard_overload"
)

// ConnEvents lists the connection-event taxonomy, for validation.
var ConnEvents = []string{
	ConnReadTimeout, ConnWriteTimeout, ConnHelloRejected, ConnOverloadShed,
	ConnSampleLimit, ConnStreamOverflow, ConnClientAbort, ConnShardOverload,
}

// ConnEvent records one gateway connection-level failure or degradation.
type ConnEvent struct {
	Type  string `json:"type"` // TypeConn
	Event string `json:"event"`
	// Remote is the client address, when known.
	Remote string `json:"remote,omitempty"`
	// Detail carries the underlying error text.
	Detail string `json:"detail,omitempty"`
	// Origin is the connection's fleet position once the hello settled it;
	// pre-hello events (overload_shed, hello_rejected) have none.
	Origin *Origin `json:"origin,omitempty"`
}

// Detection holds the packet's synchronization estimate (paper §7): the
// integer and fractional start time, the CFO, and the preamble-derived
// quality and SNR estimates.
type Detection struct {
	// StartSample is the integer part of the packet start (rx samples).
	StartSample int `json:"start_sample"`
	// FracTiming is the fractional part of the start, in [0, 1) samples.
	FracTiming float64 `json:"frac_timing"`
	// CFOCycles is the carrier frequency offset in cycles per symbol.
	CFOCycles float64 `json:"cfo_cycles"`
	// CFOHz is the same CFO in Hz.
	CFOHz float64 `json:"cfo_hz"`
	// Quality is the gated preamble energy Q* that won the sync search.
	Quality float64 `json:"quality"`
	// SNRdB is the preamble-peak SNR estimate.
	SNRdB float64 `json:"snr_db"`
}

// SymbolDecision records one Thrive peak assignment (paper §5.3.4): the
// winning peak, the runner-up, the sibling/history cost split, and the cost
// margin separating the two.
type SymbolDecision struct {
	// Idx is the data-symbol index within the packet.
	Idx int `json:"idx"`
	// Bin is the assigned peak bin; -1 if the symbol was never assigned.
	Bin int `json:"bin"`
	// Alt is the runner-up peak bin (-1 when the symbol had no second
	// candidate).
	Alt int `json:"alt"`
	// Height is the assigned peak's signal-vector height.
	Height float64 `json:"height"`
	// SiblingCost and HistoryCost split the winning peak's matching cost
	// into its Eq. 1 and Eq. 2 components.
	SiblingCost float64 `json:"sib_cost"`
	HistoryCost float64 `json:"hist_cost"`
	// Cost is the winning peak's total matching cost.
	Cost float64 `json:"cost"`
	// Margin is the runner-up's total cost minus the winner's — how
	// decisively this peak won. -1 when there was no runner-up.
	Margin float64 `json:"margin"`
	// Fallback marks a symbol assigned its highest raw bin because no
	// located peak survived masking.
	Fallback bool `json:"fallback,omitempty"`
}

// Ambiguous reports whether the decision was a coin flip: assigned by
// fallback, or won by less than the given cost margin.
func (d SymbolDecision) Ambiguous(marginBelow float64) bool {
	return d.Fallback || (d.Margin >= 0 && d.Margin < marginBelow)
}

// BlockOutcome records one BEC block decode (paper §6).
type BlockOutcome struct {
	// Index is the payload block index; -1 is the PHY header block.
	Index int `json:"index"`
	// CR is the block's coding rate.
	CR int `json:"cr"`
	// ErrorCols is |Ξ|: the error columns observed against the cleaned
	// block Γ before companion expansion.
	ErrorCols int `json:"error_cols"`
	// Candidates is the number of BEC-fixed candidate blocks produced.
	Candidates int `json:"candidates"`
	// NoError reports the default decoder sufficed (R == Γ up to one
	// column for CR ≥ 3).
	NoError bool `json:"no_error,omitempty"`
	// Failed reports the error pattern exceeded BEC's capability.
	Failed bool `json:"failed,omitempty"`
	// Companion reports companion columns were added to the repair set
	// (§6.2).
	Companion bool `json:"companion,omitempty"`
}

// PacketTrace is one packet's decode trace — the unit of the JSONL export
// and the /debug/traces ring. All recording methods are safe on a nil
// receiver so call sites need no branching.
type PacketTrace struct {
	Type string `json:"type"` // TypePacket, set at Finish
	// Window is the tracer-global receiver-window sequence number.
	Window uint64 `json:"window"`
	// ID is the packet's detection index within the window.
	ID int `json:"id"`
	// Pass is the decoding attempt: 1, or 2 for the masked second pass.
	Pass int `json:"pass"`
	// Final marks the packet's last attempt: a pass-1 failure that will be
	// retried by the second pass is recorded with Final=false.
	Final bool `json:"final"`

	Detection Detection `json:"detection"`
	// SyncScore is the fraction of preamble upchirps whose signal-vector
	// maximum lands within ±1 bin of 0 at the estimated sync — near 1 for
	// a correct lock, near 0 for a wrong one.
	SyncScore float64 `json:"sync_score"`

	Symbols []SymbolDecision `json:"symbols,omitempty"`
	// MaskedPeaks counts known peaks of already-decoded packets masked out
	// of this packet's symbols (second-pass masking, paper §4).
	MaskedPeaks int `json:"masked_peaks,omitempty"`

	Blocks []BlockOutcome `json:"bec_blocks,omitempty"`
	// CRCTests is the number of packet-CRC evaluations spent (§6.9).
	CRCTests int `json:"crc_tests,omitempty"`
	// BECExhausted reports the W budget ran out with candidates untested.
	BECExhausted bool `json:"bec_exhausted,omitempty"`
	// ListDecodeTried counts runner-up substitution retries.
	ListDecodeTried int `json:"list_decode_tried,omitempty"`

	// Decode outcome. DataSymbols and AirtimeSec come from the decoded PHY
	// header and match core.Decoded's fields.
	OK            bool          `json:"ok"`
	FailureReason FailureReason `json:"failure_reason,omitempty"`
	Rescued       int           `json:"rescued,omitempty"`
	DataSymbols   int           `json:"data_symbols,omitempty"`
	AirtimeSec    float64       `json:"airtime_sec,omitempty"`
	// AbsStart is the packet start in stream-absolute samples, backfilled
	// by the stream layer (ring and summaries only; the JSONL line is
	// written at decode time with the window-relative Detection).
	AbsStart float64 `json:"abs_start,omitempty"`
	// Origin is stamped by the tracer at Finish (see Tracer.WithOrigin).
	Origin *Origin `json:"origin,omitempty"`
}

// InitSymbols pre-sizes the per-symbol decision table so Thrive can record
// decisions by index in any assignment order.
func (pt *PacketTrace) InitSymbols(n int) {
	if pt == nil {
		return
	}
	pt.Symbols = make([]SymbolDecision, n)
	for i := range pt.Symbols {
		pt.Symbols[i] = SymbolDecision{Idx: i, Bin: -1, Alt: -1, Margin: -1}
	}
}

// SetSymbol records one assignment decision. Out-of-range indices are
// dropped rather than panicking — a provisional symbol count can shrink
// once the PHY header is decoded.
func (pt *PacketTrace) SetSymbol(d SymbolDecision) {
	if pt == nil || d.Idx < 0 || d.Idx >= len(pt.Symbols) {
		return
	}
	pt.Symbols[d.Idx] = d
}

// AddBlock records one BEC block outcome.
func (pt *PacketTrace) AddBlock(b BlockOutcome) {
	if pt == nil {
		return
	}
	pt.Blocks = append(pt.Blocks, b)
}

// OnMask counts n known-peak maskings applied to this packet's symbols.
func (pt *PacketTrace) OnMask(n int) {
	if pt == nil {
		return
	}
	pt.MaskedPeaks += n
}

// Fail records the verdict for a failed decode.
func (pt *PacketTrace) Fail(reason FailureReason) {
	if pt == nil {
		return
	}
	pt.OK = false
	pt.FailureReason = reason
}

// AmbiguousSymbols counts decisions that were near coin flips (fallback or
// margin below the threshold) among the assigned symbols.
func (pt *PacketTrace) AmbiguousSymbols(marginBelow float64) (ambiguous, assigned int) {
	if pt == nil {
		return 0, 0
	}
	for _, s := range pt.Symbols {
		if s.Bin < 0 {
			continue
		}
		assigned++
		if s.Ambiguous(marginBelow) {
			ambiguous++
		}
	}
	return ambiguous, assigned
}

// DetectEvent records one detection-stage decision: a preamble candidate
// accepted as a packet or rejected with a reason (paper §7 steps 2–4).
type DetectEvent struct {
	Type string `json:"type"` // TypeDetect
	// Window and Bin locate the preamble candidate in the scan grid.
	Window int `json:"window"`
	Bin    int `json:"bin"`
	// Accepted is true when the candidate refined into a packet.
	Accepted bool `json:"accepted"`
	// Reason explains a rejection: "no_downchirp", "cfo_out_of_bounds",
	// "no_valid_start".
	Reason string `json:"reason,omitempty"`
	// Start and CFOCycles are the refined estimates of accepted packets.
	Start     float64 `json:"start,omitempty"`
	CFOCycles float64 `json:"cfo_cycles,omitempty"`
	// Origin is stamped by the tracer (see Tracer.WithOrigin).
	Origin *Origin `json:"origin,omitempty"`
}

// StreamEvent records a stream-layer decision about a decoded packet:
// "deferred" (straddles the commit boundary, re-seen next window), "dedup"
// (already emitted by an overlapping window), or "flush".
type StreamEvent struct {
	Type  string `json:"type"` // TypeStream
	Event string `json:"event"`
	// AbsStart is the packet start in stream-absolute samples.
	AbsStart float64 `json:"abs_start,omitempty"`
	// Origin is stamped by the tracer (see Tracer.WithOrigin).
	Origin *Origin `json:"origin,omitempty"`
}

// Summary is the compact per-packet digest the gateway attaches to each
// report when the client requests tracing.
type Summary struct {
	Pass             int           `json:"pass"`
	SyncScore        float64       `json:"sync_score"`
	DataSymbols      int           `json:"data_symbols,omitempty"`
	AirtimeSec       float64       `json:"airtime_sec,omitempty"`
	Rescued          int           `json:"rescued,omitempty"`
	CRCTests         int           `json:"crc_tests,omitempty"`
	MaskedPeaks      int           `json:"masked_peaks,omitempty"`
	AmbiguousSymbols int           `json:"ambiguous_symbols"`
	MinMargin        float64       `json:"min_margin"`
	FailureReason    FailureReason `json:"failure_reason,omitempty"`
}

// AmbiguityMargin is the cost-margin threshold below which an assignment
// counts as ambiguous, shared by summaries and failure attribution.
const AmbiguityMargin = 0.02

// Summarize digests a packet trace into the per-report summary.
func Summarize(pt *PacketTrace) Summary {
	if pt == nil {
		return Summary{}
	}
	amb, _ := pt.AmbiguousSymbols(AmbiguityMargin)
	minMargin := -1.0
	for _, s := range pt.Symbols {
		if s.Bin < 0 || s.Margin < 0 {
			continue
		}
		if minMargin < 0 || s.Margin < minMargin {
			minMargin = s.Margin
		}
	}
	return Summary{
		Pass:             pt.Pass,
		SyncScore:        pt.SyncScore,
		DataSymbols:      pt.DataSymbols,
		AirtimeSec:       pt.AirtimeSec,
		Rescued:          pt.Rescued,
		CRCTests:         pt.CRCTests,
		MaskedPeaks:      pt.MaskedPeaks,
		AmbiguousSymbols: amb,
		MinMargin:        minMargin,
		FailureReason:    pt.FailureReason,
	}
}
