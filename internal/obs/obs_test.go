package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func sampleTrace(win uint64, id int, ok bool) *PacketTrace {
	pt := &PacketTrace{
		Window: win, ID: id, Pass: 1, Final: true,
		Detection: Detection{StartSample: 1000, FracTiming: 0.25, CFOCycles: 1.5, CFOHz: 732, Quality: 3.2, SNRdB: 5},
		SyncScore: 0.875,
	}
	pt.InitSymbols(4)
	pt.SetSymbol(SymbolDecision{Idx: 0, Bin: 17, Alt: 42, Height: 1.2, SiblingCost: 0.1, HistoryCost: 0.2, Cost: 0.3, Margin: 0.5})
	pt.SetSymbol(SymbolDecision{Idx: 1, Bin: 99, Alt: -1, Height: 0.9, Cost: 0.4, Margin: -1})
	pt.SetSymbol(SymbolDecision{Idx: 2, Bin: 5, Alt: 6, Height: 0.8, Cost: 0.41, Margin: 0.001})
	pt.SetSymbol(SymbolDecision{Idx: 3, Bin: 7, Alt: -1, Margin: -1, Fallback: true})
	pt.AddBlock(BlockOutcome{Index: -1, CR: 4, ErrorCols: 1, Candidates: 2})
	pt.AddBlock(BlockOutcome{Index: 0, CR: 2, ErrorCols: 2, Candidates: 4, Companion: true})
	pt.OnMask(3)
	if ok {
		pt.OK = true
		pt.DataSymbols = 36
		pt.AirtimeSec = 0.04
		pt.Rescued = 2
		pt.CRCTests = 5
	} else {
		pt.Fail(FailBECBudget)
		pt.CRCTests = 1
	}
	return pt
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if w := tr.NextWindow(); w != 0 {
		t.Fatalf("nil NextWindow = %d", w)
	}
	pt := tr.NewPacket(1, 0, 1, Detection{})
	if pt != nil {
		t.Fatalf("nil tracer NewPacket returned %v", pt)
	}
	// All PacketTrace methods must accept the nil trace.
	pt.InitSymbols(8)
	pt.SetSymbol(SymbolDecision{Idx: 0})
	pt.AddBlock(BlockOutcome{})
	pt.OnMask(1)
	pt.Fail(FailCRC)
	if a, n := pt.AmbiguousSymbols(0.1); a != 0 || n != 0 {
		t.Fatalf("nil AmbiguousSymbols = %d,%d", a, n)
	}
	tr.Finish(pt)
	tr.OnDetect(DetectEvent{})
	tr.OnStream("dedup", 1)
	tr.SetAbsStart(pt, 5)
	if s := tr.Snapshot(); s != nil {
		t.Fatalf("nil Snapshot = %v", s)
	}
}

func TestJSONLRoundTripAndValidate(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Sink: &buf, RingSize: 8})
	win := tr.NextWindow()

	ok := sampleTrace(win, 0, true)
	tr.Finish(ok)
	bad := sampleTrace(win, 1, false)
	tr.Finish(bad)
	tr.OnDetect(DetectEvent{Window: 3, Bin: 40, Accepted: false, Reason: "no_downchirp"})
	tr.OnDetect(DetectEvent{Window: 3, Bin: 41, Accepted: true, Start: 1000.25, CFOCycles: 1.5})
	tr.OnStream("dedup", 123456)
	tr.OnStream("deferred", 123456)

	counts, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateJSONL: %v\n%s", err, buf.String())
	}
	if counts[TypePacket] != 2 || counts[TypeDetect] != 2 || counts[TypeStream] != 2 {
		t.Fatalf("record counts = %v", counts)
	}

	packets, decoded, byReason := tr.FailureCounts()
	if packets != 2 || decoded != 1 || byReason[FailBECBudget] != 1 {
		t.Fatalf("FailureCounts = %d, %d, %v", packets, decoded, byReason)
	}
}

func TestValidateRejectsBadRecords(t *testing.T) {
	bad := []string{
		`{"no_type": true}`,
		`{"type": "mystery"}`,
		`{"type": "packet", "pass": 3, "final": true, "ok": false, "failure_reason": "crc_fail"}`,
		`{"type": "packet", "pass": 1, "ok": false}`,
		`{"type": "packet", "pass": 1, "ok": false, "failure_reason": "made_up"}`,
		`{"type": "packet", "pass": 1, "ok": true}`,
		`{"type": "packet", "pass": 1, "ok": true, "data_symbols": 8, "airtime_sec": 0.1, "sync_score": 2}`,
		`{"type": "detect", "accepted": false}`,
		`{"type": "stream", "event": "mystery"}`,
		`not json`,
	}
	for _, line := range bad {
		if err := ValidateRecord([]byte(line)); err == nil {
			t.Errorf("ValidateRecord accepted %s", line)
		}
	}
	good := `{"type": "packet", "pass": 2, "final": true, "ok": true, "data_symbols": 36, "airtime_sec": 0.04, "sync_score": 1}`
	if err := ValidateRecord([]byte(good)); err != nil {
		t.Errorf("ValidateRecord rejected %s: %v", good, err)
	}
}

func TestRingEvictionAndFinalCounting(t *testing.T) {
	tr := New(Options{RingSize: 4})
	for i := 0; i < 6; i++ {
		pt := tr.NewPacket(1, i, 1, Detection{})
		pt.Fail(FailNoSync)
		pt.Final = i%2 == 0 // half the attempts are retried later
		tr.Finish(pt)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring len = %d, want 4", len(snap))
	}
	if snap[0].ID != 2 || snap[3].ID != 5 {
		t.Fatalf("ring order = %d..%d, want 2..5", snap[0].ID, snap[3].ID)
	}
	packets, _, byReason := tr.FailureCounts()
	if packets != 3 || byReason[FailNoSync] != 3 {
		t.Fatalf("final counting = %d packets, %v", packets, byReason)
	}
}

func TestHandlerServesRing(t *testing.T) {
	tr := New(Options{RingSize: 8})
	tr.Finish(sampleTrace(1, 0, true))
	tr.Finish(sampleTrace(1, 1, false))

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{`"packets": 2`, `"decoded": 1`, `"bec_budget_exhausted"`, `"sync_score"`} {
		if !strings.Contains(body, want) {
			t.Errorf("body missing %s:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=1", nil))
	if got := strings.Count(rec.Body.String(), `"type": "packet"`); got != 1 {
		t.Errorf("n=1 returned %d traces", got)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/traces", nil))
	if rec.Code != 405 {
		t.Errorf("POST status %d, want 405", rec.Code)
	}
}

func TestSummarizeAndExplain(t *testing.T) {
	pt := sampleTrace(2, 0, false)
	s := Summarize(pt)
	if s.Pass != 1 || s.FailureReason != FailBECBudget {
		t.Fatalf("summary = %+v", s)
	}
	// Symbols 2 (margin 0.001) and 3 (fallback) are ambiguous.
	if s.AmbiguousSymbols != 2 {
		t.Fatalf("ambiguous = %d, want 2", s.AmbiguousSymbols)
	}
	if s.MinMargin != 0.001 {
		t.Fatalf("min margin = %v", s.MinMargin)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Fatalf("nil summary = %+v", got)
	}

	var buf bytes.Buffer
	Explain(&buf, pt)
	out := buf.String()
	for _, want := range []string{"FAILED (bec_budget_exhausted)", "fallback", "hdr", "+companion", "sync_score=0.88"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	Explain(&buf, nil)
	if !strings.Contains(buf.String(), "no trace") {
		t.Errorf("nil explain = %q", buf.String())
	}
}

func TestSinkErrorDropsExport(t *testing.T) {
	tr := New(Options{Sink: failWriter{}, RingSize: 2})
	tr.Finish(sampleTrace(1, 0, true))
	tr.Finish(sampleTrace(1, 1, true)) // must not panic after sink failure
	if len(tr.Snapshot()) != 2 {
		t.Fatal("ring should keep working after sink failure")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errFail }

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink closed" }
